#pragma once
// OpenMP helpers.
//
// The paper analyses algorithms in an abstract work/depth model; we realise
// the data parallelism with OpenMP.  All parallel loops in the library go
// through parallel_for / parallel_reduce so that thread counts can be
// controlled centrally (PMTE benches sweep threads for the scaling
// experiment E11).

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

// ThreadSanitizer cannot see the happens-before edge of the OpenMP join
// barrier when the runtime itself is uninstrumented (gcc's libgomp; llvm's
// libomp without the Archer OMPT tool), so worker-thread writes look
// unordered against the caller's post-region reads and every parallel_for
// user false-positives.  PMTE_TSAN_ACTIVE gates a join fence that restates
// the barrier's edge in plain C++ atomics: each iteration publishes with a
// release increment, the caller acquires once after the region.  Normal
// builds compile the fence away entirely.
#if defined(__SANITIZE_THREAD__)
#define PMTE_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PMTE_TSAN_ACTIVE 1
#endif
#endif
#ifndef PMTE_TSAN_ACTIVE
#define PMTE_TSAN_ACTIVE 0
#endif

namespace pmte {

namespace detail {
#if PMTE_TSAN_ACTIVE
struct TsanJoin {
  std::atomic<unsigned> token{0};
  // Fork edge: the constructor runs on the calling thread before the
  // region opens; enter()'s acquire load picks up that release store, so
  // the caller's prior writes are ordered before every worker.  (The
  // pthread_create edge only covers a pool thread's *first* region.)
  TsanJoin() noexcept { token.store(1, std::memory_order_release); }
  void enter() noexcept { (void)token.load(std::memory_order_acquire); }
  // Join edge: release-RMWs continue one release sequence, so the single
  // acquire load synchronises with every publish() on every worker.
  void publish() noexcept { token.fetch_add(1, std::memory_order_release); }
  void collect() noexcept { (void)token.load(std::memory_order_acquire); }
};
#else
struct TsanJoin {
  void enter() noexcept {}
  void publish() noexcept {}
  void collect() noexcept {}
};
#endif
}  // namespace detail

/// Number of threads OpenMP will use for parallel regions.
[[nodiscard]] inline int num_threads() noexcept {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Set the number of OpenMP threads (global).
inline void set_num_threads(int n) noexcept {
#ifdef _OPENMP
  if (n > 0) omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// Index of the calling thread inside a parallel region (0 outside).
[[nodiscard]] inline int thread_index() noexcept {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// True iff the caller is already inside an OpenMP parallel region (in
/// which case nested parallel_for calls run serially).
[[nodiscard]] inline bool in_parallel() noexcept {
#ifdef _OPENMP
  return omp_in_parallel() != 0;
#else
  return false;
#endif
}

/// Parallel loop over [0, n) with dynamic scheduling; body(i) must be
/// independent across iterations (no shared writes without synchronisation).
template <typename Body>
void parallel_for(std::size_t n, Body&& body, std::size_t grain = 64) {
#ifdef _OPENMP
  if (n >= 2 * grain && omp_get_max_threads() > 1 && !in_parallel()) {
    detail::TsanJoin join;
#pragma omp parallel for schedule(dynamic, static_cast<long>(grain))
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
      join.enter();
      body(static_cast<std::size_t>(i));
      join.publish();
    }
    join.collect();
    return;
  }
#else
  (void)grain;
#endif
  for (std::size_t i = 0; i < n; ++i) body(i);
}

/// Parallel loop over [0, n) where iteration i costs ≈ cost(i) units (for
/// the engine: a vertex's degree).  schedule(dynamic, grain) deals badly
/// with skewed costs — a star centre makes one 64-iteration chunk carry
/// almost all the work while every other chunk finishes instantly.  Here a
/// serial greedy scan cuts [0, n) into contiguous chunks of near-equal
/// *total cost* (several per thread, so dynamic scheduling can still
/// rebalance), and the chunks are dispatched dynamically.  Each index runs
/// exactly once, in ascending order within its chunk, so outputs written
/// per index and WorkDepth counters are bit-identical to the serial loop
/// and to parallel_for — only the thread assignment changes.
template <typename CostFn, typename Body>
void parallel_for_balanced(std::size_t n, CostFn&& cost, Body&& body,
                           std::uint64_t min_chunk_cost = 512) {
#ifdef _OPENMP
  if (n >= 2 && omp_get_max_threads() > 1 && !in_parallel()) {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      total += static_cast<std::uint64_t>(cost(i)) + 1;  // +1: item overhead
    }
    const auto threads = static_cast<std::uint64_t>(omp_get_max_threads());
    const std::uint64_t target =
        std::max<std::uint64_t>(min_chunk_cost, total / (8 * threads) + 1);
    if (total > 2 * target) {
      // Chunk boundaries: cut whenever the running cost reaches `target`.
      std::vector<std::size_t> starts;
      starts.reserve(static_cast<std::size_t>(total / target) + 2);
      std::uint64_t acc = 0;
      starts.push_back(0);
      for (std::size_t i = 0; i < n; ++i) {
        acc += static_cast<std::uint64_t>(cost(i)) + 1;
        if (acc >= target && i + 1 < n) {
          starts.push_back(i + 1);
          acc = 0;
        }
      }
      starts.push_back(n);
      const auto chunks = static_cast<std::int64_t>(starts.size() - 1);
      detail::TsanJoin join;
#pragma omp parallel for schedule(dynamic, 1)
      for (std::int64_t c = 0; c < chunks; ++c) {
        join.enter();
        const std::size_t hi = starts[static_cast<std::size_t>(c) + 1];
        for (std::size_t i = starts[static_cast<std::size_t>(c)]; i < hi;
             ++i) {
          body(i);
        }
        join.publish();
      }
      join.collect();
      return;
    }
  }
#else
  (void)cost;
  (void)min_chunk_cost;
#endif
  for (std::size_t i = 0; i < n; ++i) body(i);
}

/// Parallel sum-reduction of body(i) over [0, n).
template <typename Body>
double parallel_reduce_sum(std::size_t n, Body&& body) {
#if PMTE_TSAN_ACTIVE && defined(_OPENMP)
  // The omp reduction clause merges the private copies inside the runtime,
  // invisible to TSan; fold through parallel_for (which carries the join
  // fence) into per-thread slots and combine serially instead.  Partial
  // sums still depend on the schedule, exactly as with the clause — pmte
  // only reduces exactly-representable values (0/1 flags, degrees), so the
  // result is bit-identical either way.
  std::vector<double> partial(
      static_cast<std::size_t>(std::max(num_threads(), 1)), 0.0);
  parallel_for(n, [&](std::size_t i) {
    partial[static_cast<std::size_t>(thread_index())] += body(i);
  });
  double total = 0.0;
  for (const double p : partial) total += p;
  return total;
#else
  double total = 0.0;
#ifdef _OPENMP
#pragma omp parallel for reduction(+ : total) schedule(static)
#endif
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    total += body(static_cast<std::size_t>(i));
  }
  return total;
#endif
}

/// Per-thread append buffers for parallel set collection (frontiers, edge
/// lists).  Each OpenMP thread appends to its own cache-line-separated
/// vector without synchronisation; draining concatenates all buffers and
/// sorts, so the merged result is *deterministic* — independent of the
/// thread count and of which thread produced which element.  Buffers keep
/// their capacity across clear()/drain cycles, so steady-state use
/// allocates nothing.
template <typename T>
class PerThreadBuffers {
 public:
  PerThreadBuffers() { ensure_slots(); }

  /// Buffer of the calling thread.  Only valid to touch from within the
  /// parallel region (or serially); never resize the slot array while a
  /// parallel region is appending.
  [[nodiscard]] std::vector<T>& local() noexcept {
    return slots_[static_cast<std::size_t>(thread_index())].buf;
  }

  /// Empty all buffers (capacity retained) and make sure one slot exists
  /// per OpenMP thread.  Call outside parallel regions.
  void clear() {
    ensure_slots();
    for (auto& s : slots_) s.buf.clear();
  }

  /// Move all buffered elements into `out`, sorted ascending.
  void drain_sorted(std::vector<T>& out) {
    concat(out);
    std::sort(out.begin(), out.end());
  }

  /// Move all buffered elements into `out`, sorted ascending, duplicates
  /// removed.
  void drain_sorted_unique(std::vector<T>& out) {
    drain_sorted(out);
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }

 private:
  struct alignas(64) Slot {
    std::vector<T> buf;
  };

  void ensure_slots() {
    const auto want = static_cast<std::size_t>(std::max(num_threads(), 1));
    if (slots_.size() < want) slots_.resize(want);
  }

  void concat(std::vector<T>& out) {
    std::size_t total = 0;
    for (const auto& s : slots_) total += s.buf.size();
    out.clear();
    out.reserve(total);
    for (auto& s : slots_) {
      out.insert(out.end(), s.buf.begin(), s.buf.end());
      s.buf.clear();
    }
  }

  std::vector<Slot> slots_;
};

/// Parallel max-reduction of body(i) over [0, n).
template <typename Body>
double parallel_reduce_max(std::size_t n, Body&& body, double init = 0.0) {
#if PMTE_TSAN_ACTIVE && defined(_OPENMP)
  // Same runtime-invisible merge as parallel_reduce_sum; max is order-free,
  // so the per-thread-slot fold is bit-identical to the reduction clause.
  std::vector<double> partial(
      static_cast<std::size_t>(std::max(num_threads(), 1)), init);
  parallel_for(n, [&](std::size_t i) {
    const double v = body(i);
    auto& slot = partial[static_cast<std::size_t>(thread_index())];
    if (v > slot) slot = v;
  });
  double best = init;
  for (const double p : partial) {
    if (p > best) best = p;
  }
  return best;
#else
  double best = init;
#ifdef _OPENMP
#pragma omp parallel for reduction(max : best) schedule(static)
#endif
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    const double v = body(static_cast<std::size_t>(i));
    if (v > best) best = v;
  }
  return best;
#endif
}

}  // namespace pmte
