#pragma once
// OpenMP helpers.
//
// The paper analyses algorithms in an abstract work/depth model; we realise
// the data parallelism with OpenMP.  All parallel loops in the library go
// through parallel_for / parallel_reduce so that thread counts can be
// controlled centrally (PMTE benches sweep threads for the scaling
// experiment E11).

#include <cstddef>
#include <cstdint>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace pmte {

/// Number of threads OpenMP will use for parallel regions.
[[nodiscard]] inline int num_threads() noexcept {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Set the number of OpenMP threads (global).
inline void set_num_threads(int n) noexcept {
#ifdef _OPENMP
  if (n > 0) omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// Index of the calling thread inside a parallel region (0 outside).
[[nodiscard]] inline int thread_index() noexcept {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Parallel loop over [0, n) with dynamic scheduling; body(i) must be
/// independent across iterations (no shared writes without synchronisation).
template <typename Body>
void parallel_for(std::size_t n, Body&& body, std::size_t grain = 64) {
#ifdef _OPENMP
  if (n >= 2 * grain && omp_get_max_threads() > 1 && !omp_in_parallel()) {
#pragma omp parallel for schedule(dynamic, static_cast<long>(grain))
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
      body(static_cast<std::size_t>(i));
    }
    return;
  }
#else
  (void)grain;
#endif
  for (std::size_t i = 0; i < n; ++i) body(i);
}

/// Parallel sum-reduction of body(i) over [0, n).
template <typename Body>
double parallel_reduce_sum(std::size_t n, Body&& body) {
  double total = 0.0;
#ifdef _OPENMP
#pragma omp parallel for reduction(+ : total) schedule(static)
#endif
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    total += body(static_cast<std::size_t>(i));
  }
  return total;
}

/// Parallel max-reduction of body(i) over [0, n).
template <typename Body>
double parallel_reduce_max(std::size_t n, Body&& body, double init = 0.0) {
  double best = init;
#ifdef _OPENMP
#pragma omp parallel for reduction(max : best) schedule(static)
#endif
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    const double v = body(static_cast<std::size_t>(i));
    if (v > best) best = v;
  }
  return best;
}

}  // namespace pmte
