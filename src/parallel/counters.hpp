#pragma once
// Work/depth instrumentation.
//
// The paper's cost model (Section 1.2, "Model of Computation") counts the
// nodes of the computation DAG as *work* and its longest path as *depth*.
// We approximate: every semiring/semimodule element operation increments a
// work counter, and each global sequential phase (one MBF-like iteration,
// one sort pass, …) increments a depth counter.  The engine additionally
// tracks *relaxations* (edge relax applications, the unit the frontier
// optimisation saves) and *edges touched* (half-edges scanned, including
// the cheap frontier-membership tests of sparse rounds).  All four are
// counts of logical operations, so they are deterministic for a fixed
// input — independent of thread count and scheduling; the CI bench gate
// (scripts/check_bench_regression.py) relies on this.  Counters are
// per-thread to avoid contention and merged on read.

#include <array>
#include <atomic>
#include <cstdint>

#include "src/parallel/parallel.hpp"

namespace pmte {

/// Global work/depth counters.  Adds are cheap (per-thread cache line);
/// depth adds happen outside parallel regions.  Each slot is written only
/// by its owning thread, but read() helpers may sum the slots while other
/// threads are mid-update (e.g. a WorkDepthScope inside one branch of a
/// parallel tree build), so the fields are relaxed atomics: plain
/// load/store on every target, no RMW in the hot path, no data-race UB.
/// Concurrent reads are then snapshots — exact once the region joins.
class WorkDepth {
 public:
  static constexpr int kMaxThreads = 256;

  /// Record `n` units of work on the calling thread.
  static void add_work(std::uint64_t n) noexcept { bump(&Slot::work, n); }

  /// Record `n` edge relaxations (relax applications) on the calling thread.
  static void add_relaxations(std::uint64_t n) noexcept {
    bump(&Slot::relaxations, n);
  }

  /// Record `n` half-edges scanned on the calling thread.
  static void add_edges_touched(std::uint64_t n) noexcept {
    bump(&Slot::edges, n);
  }

  /// Record `n` units of sequential depth.  Depth is a critical-path
  /// (span) metric: branches running concurrently must not both count, so
  /// call this outside parallel regions — the engine helpers use
  /// add_depth_serial() to drop contributions from nested (source-
  /// parallel) invocations instead of summing them across branches.
  static void add_depth(std::uint64_t n) noexcept { depth_ += n; }

  /// add_depth, but a no-op when called from inside a parallel region
  /// (where the phase runs on one of many concurrent branches and would
  /// otherwise inflate the span by the branch count).
  static void add_depth_serial(std::uint64_t n) noexcept {
    if (!in_parallel()) depth_ += n;
  }

  static void reset() noexcept {
    for (auto& s : slots_) {
      s.work.store(0, std::memory_order_relaxed);
      s.relaxations.store(0, std::memory_order_relaxed);
      s.edges.store(0, std::memory_order_relaxed);
    }
    depth_ = 0;
  }

  [[nodiscard]] static std::uint64_t work() noexcept {
    std::uint64_t total = 0;
    for (const auto& s : slots_) {
      total += s.work.load(std::memory_order_relaxed);
    }
    return total;
  }

  [[nodiscard]] static std::uint64_t relaxations() noexcept {
    std::uint64_t total = 0;
    for (const auto& s : slots_) {
      total += s.relaxations.load(std::memory_order_relaxed);
    }
    return total;
  }

  [[nodiscard]] static std::uint64_t edges_touched() noexcept {
    std::uint64_t total = 0;
    for (const auto& s : slots_) {
      total += s.edges.load(std::memory_order_relaxed);
    }
    return total;
  }

  [[nodiscard]] static std::uint64_t depth() noexcept { return depth_; }

 private:
  struct alignas(64) Slot {
    // zero-initialised via the array's {} value-init
    std::atomic<std::uint64_t> work;
    std::atomic<std::uint64_t> relaxations;
    std::atomic<std::uint64_t> edges;
  };

  /// Increment of the calling thread's counter.  Threads 0..kMaxThreads−1
  /// own their slot exclusively, so a relaxed load + store suffices
  /// (compiles to the same mov/add/mov as a plain +=).  Any further
  /// threads share one dedicated overflow slot written only with
  /// fetch_add — increments are never lost, so the totals stay
  /// thread-count independent at any oversubscription.
  static void bump(std::atomic<std::uint64_t> Slot::* member,
                   std::uint64_t n) noexcept {
    const auto idx = static_cast<std::size_t>(thread_index());
    if (idx < kMaxThreads) {
      auto& c = slots_[idx].*member;
      c.store(c.load(std::memory_order_relaxed) + n,
              std::memory_order_relaxed);
    } else {
      (slots_[kMaxThreads].*member).fetch_add(n, std::memory_order_relaxed);
    }
  }

  static inline std::array<Slot, kMaxThreads + 1> slots_ = {};
  static inline std::atomic<std::uint64_t> depth_{0};
};

/// RAII scope that snapshots all counters and reports the deltas.
class WorkDepthScope {
 public:
  WorkDepthScope() noexcept
      : work0_(WorkDepth::work()),
        relax0_(WorkDepth::relaxations()),
        edges0_(WorkDepth::edges_touched()),
        depth0_(WorkDepth::depth()) {}

  [[nodiscard]] std::uint64_t work_delta() const noexcept {
    return WorkDepth::work() - work0_;
  }
  [[nodiscard]] std::uint64_t relaxations_delta() const noexcept {
    return WorkDepth::relaxations() - relax0_;
  }
  [[nodiscard]] std::uint64_t edges_touched_delta() const noexcept {
    return WorkDepth::edges_touched() - edges0_;
  }
  [[nodiscard]] std::uint64_t depth_delta() const noexcept {
    return WorkDepth::depth() - depth0_;
  }

 private:
  std::uint64_t work0_;
  std::uint64_t relax0_;
  std::uint64_t edges0_;
  std::uint64_t depth0_;
};

}  // namespace pmte
