#pragma once
// Work/depth instrumentation.
//
// The paper's cost model (Section 1.2, "Model of Computation") counts the
// nodes of the computation DAG as *work* and its longest path as *depth*.
// We approximate: every semiring/semimodule element operation increments a
// work counter, and each global sequential phase (one MBF-like iteration,
// one sort pass, …) increments a depth counter.  Counters are per-thread to
// avoid contention and merged on read.

#include <array>
#include <atomic>
#include <cstdint>

#include "src/parallel/parallel.hpp"

namespace pmte {

/// Global work/depth counters.  Work adds are cheap (per-thread cache line);
/// depth adds happen outside parallel regions.
class WorkDepth {
 public:
  static constexpr int kMaxThreads = 256;

  /// Record `n` units of work on the calling thread.
  static void add_work(std::uint64_t n) noexcept {
    slots_[static_cast<std::size_t>(thread_index()) % kMaxThreads].value +=
        n;
  }

  /// Record `n` units of sequential depth (call outside parallel regions).
  static void add_depth(std::uint64_t n) noexcept { depth_ += n; }

  static void reset() noexcept {
    for (auto& s : slots_) s.value = 0;
    depth_ = 0;
  }

  [[nodiscard]] static std::uint64_t work() noexcept {
    std::uint64_t total = 0;
    for (const auto& s : slots_) total += s.value;
    return total;
  }

  [[nodiscard]] static std::uint64_t depth() noexcept { return depth_; }

 private:
  struct alignas(64) Slot {
    std::uint64_t value;  // zero-initialised via the array's {}
  };
  static inline std::array<Slot, kMaxThreads> slots_ = {};
  static inline std::atomic<std::uint64_t> depth_{0};
};

/// RAII scope that snapshots work/depth and reports the delta.
class WorkDepthScope {
 public:
  WorkDepthScope() noexcept
      : work0_(WorkDepth::work()), depth0_(WorkDepth::depth()) {}

  [[nodiscard]] std::uint64_t work_delta() const noexcept {
    return WorkDepth::work() - work0_;
  }
  [[nodiscard]] std::uint64_t depth_delta() const noexcept {
    return WorkDepth::depth() - depth0_;
  }

 private:
  std::uint64_t work0_;
  std::uint64_t depth0_;
};

}  // namespace pmte
