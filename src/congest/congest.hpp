#pragma once
// Congest-model distributed FRT algorithms (Section 8).
//
// We simulate the synchronous Congest model [38]: per round every vertex
// may send one O(log n)-bit message (one rank–distance pair) over each
// incident edge.  The simulator executes the algorithms at the level of
// their communication pattern and counts the rounds they would take:
//
//  * Khan et al. (§8.1): iterate the LE-list MBF algorithm on G directly.
//    An iteration in which the largest per-edge transfer is ℓ pairs costs
//    ℓ rounds (all edges pipeline in parallel), giving O(SPD(G)·log n)
//    rounds w.h.p.
//
//  * Skeleton algorithm (in the spirit of §8.2–8.3): sample a skeleton S
//    of ~√n vertices ordered first; build the skeleton graph from ℓ-hop
//    distances (ℓ ≈ √n); sparsify it with a Baswana–Sen spanner; broadcast
//    the spanner over a BFS tree (O(|E'_S| + D(G)) rounds, pipelined);
//    jump-start LE lists from the locally-computed skeleton lists and
//    finish with ℓ MBF iterations on G with weights stretched by the
//    spanner stretch (Equation (8.9)).  Round complexity Õ(√n + D(G)).
//
// The simulation preserves the exact message counts of the abstract
// algorithms; hardware effects are out of scope (see DESIGN.md §3).

#include <cstdint>

#include "src/frt/le_lists.hpp"
#include "src/graph/graph.hpp"
#include "src/util/rng.hpp"

namespace pmte {

struct CongestRun {
  LeListsResult le;             ///< LE lists of the embedding used
  double embedding_stretch = 1; ///< stretch of that embedding w.r.t. G
  std::uint64_t rounds = 0;     ///< total simulated Congest rounds
  std::uint64_t rounds_setup = 0;      ///< BFS / sampling / broadcast part
  std::uint64_t rounds_iterations = 0; ///< MBF iteration part
  std::size_t skeleton_size = 0;
  std::size_t skeleton_spanner_edges = 0;
};

/// Khan et al. [26]: LE lists of G itself, O(SPD(G)·log n) rounds w.h.p.
[[nodiscard]] CongestRun congest_frt_khan(const Graph& g,
                                          const VertexOrder& order);

struct SkeletonOptions {
  /// ℓ — skeleton sampling/propagation radius; 0 → ⌈√n⌉.
  unsigned ell = 0;
  /// c — skeleton size multiplier (|S| = min(n, ⌈c·ℓ·log₂ n⌉)… capped).
  double size_constant = 1.0;
  /// Spanner parameter for sparsifying the skeleton graph.
  unsigned spanner_k = 2;
};

/// Skeleton-based algorithm: LE lists of the virtual graph H (G stretched
/// by 2k−1 plus the skeleton spanner), Õ(√n + D(G)) rounds.
/// The vertex order is adjusted so skeleton vertices come first (the
/// requirement before Equation (8.9)); the returned lists use that order.
struct SkeletonRun {
  CongestRun run;
  VertexOrder order;  ///< order actually used (skeleton ranks first)
  Graph virtual_graph;  ///< the explicit H (for validation)
};
[[nodiscard]] SkeletonRun congest_frt_skeleton(const Graph& g,
                                               const SkeletonOptions& opts,
                                               Rng& rng);

}  // namespace pmte
