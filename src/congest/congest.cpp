#include "src/congest/congest.hpp"

#include <algorithm>
#include <cmath>

#include "src/graph/shortest_paths.hpp"
#include "src/mbf/algorithms.hpp"
#include "src/obs/obs.hpp"
#include "src/parallel/parallel.hpp"
#include "src/spanner/baswana_sen.hpp"
#include "src/util/assertions.hpp"

namespace pmte {

namespace {

/// Incremental max_v |x_v| across engine iterations.  The round accounting
/// needs the maximum before *every* step, and a full Θ(n) rescan per
/// iteration would dwarf the o(n) work of the engine's sparse rounds.
/// List sizes change only at the engine's frontier (the vertices whose
/// state the last step changed), so the tracker keeps a per-vertex size
/// array plus a size histogram and updates both from the frontier —
/// O(|frontier|) per iteration, same maxima as the rescan, and
/// deterministic because the frontier is.
class ListSizeTracker {
 public:
  explicit ListSizeTracker(const std::vector<DistanceMap>& states) {
    size_of_.resize(states.size());
    for (std::size_t v = 0; v < states.size(); ++v) {
      size_of_[v] = states[v].size();
      grow_histogram(size_of_[v]);
      ++count_[size_of_[v]];
      max_ = std::max(max_, size_of_[v]);
    }
  }

  /// Apply the state changes of one step (`changed` = engine frontier).
  void apply(const std::vector<Vertex>& changed,
             const std::vector<DistanceMap>& states) {
    for (const Vertex v : changed) {
      const std::size_t now = states[v].size();
      const std::size_t was = size_of_[v];
      if (now == was) continue;
      --count_[was];
      grow_histogram(now);
      ++count_[now];
      size_of_[v] = now;
      max_ = std::max(max_, now);
    }
    while (max_ > 0 && count_[max_] == 0) --max_;
  }

  [[nodiscard]] std::size_t max() const noexcept { return max_; }

 private:
  void grow_histogram(std::size_t size) {
    if (size >= count_.size()) count_.resize(size + 1, 0);
  }

  std::vector<std::size_t> size_of_;
  std::vector<std::size_t> count_;  // histogram: count_[s] lists of size s
  std::size_t max_ = 0;
};

/// Unweighted hop diameter estimate via double BFS (exact on trees, a
/// 2-approximation in general — good enough for round accounting).
unsigned hop_diameter_estimate(const Graph& g) {
  if (g.num_vertices() == 0) return 0;
  auto h0 = bfs_hops(g, 0);
  Vertex far = 0;
  unsigned best = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (h0[v] != ~0U && h0[v] > best) {
      best = h0[v];
      far = v;
    }
  }
  auto h1 = bfs_hops(g, far);
  unsigned diam = 0;
  for (unsigned h : h1) {
    if (h != ~0U) diam = std::max(diam, h);
  }
  return diam;
}

}  // namespace

CongestRun congest_frt_khan(const Graph& g, const VertexOrder& order) {
  PMTE_OBS_SPAN("congest.khan",
                static_cast<std::int64_t>(g.num_vertices()), "vertices");
  PMTE_CHECK(order.n() == g.num_vertices(), "order size mismatch");
  CongestRun run;
  run.embedding_stretch = 1.0;
  const LeListAlgebra alg;
  MbfEngine<LeListAlgebra> engine(g, alg, le_initial_state(order));
  ListSizeTracker sizes(engine.states());
  const unsigned cap = std::max<unsigned>(1, g.num_vertices());
  for (unsigned i = 0; i < cap; ++i) {
    // Every vertex transmits its current list over each incident edge; the
    // per-edge pipeline makes an iteration cost max_v |x_v| rounds.
    run.rounds_iterations += sizes.max();
    const bool changed = engine.step();
    sizes.apply(engine.frontier(), engine.states());
    ++run.le.iterations;
    if (!changed) {
      run.le.converged = true;
      break;
    }
  }
  run.le.lists = engine.take_states();
  run.rounds = run.rounds_setup + run.rounds_iterations;
  return run;
}

SkeletonRun congest_frt_skeleton(const Graph& g, const SkeletonOptions& opts,
                                 Rng& rng) {
  PMTE_OBS_SPAN("congest.skeleton",
                static_cast<std::int64_t>(g.num_vertices()), "vertices");
  const Vertex n = g.num_vertices();
  PMTE_CHECK(n >= 2, "skeleton algorithm needs n >= 2");
  SkeletonRun out;
  CongestRun& run = out.run;

  const auto ell = opts.ell != 0
                       ? opts.ell
                       : static_cast<unsigned>(std::ceil(std::sqrt(
                             static_cast<double>(n))));
  const double log_n = std::log2(std::max<double>(n, 2));
  auto skeleton_target = static_cast<std::size_t>(
      std::ceil(opts.size_constant * ell * log_n));
  skeleton_target = std::min<std::size_t>(std::max<std::size_t>(1, skeleton_target), n);

  // Sample S and draw the vertex order with S ranked first (§8.2 requires
  // s < v for all s ∈ S, v ∈ V∖S; Lemma 4.9 of [22] shows the induced
  // dependence keeps the expected stretch O(log n)).
  auto shuffled = random_permutation(n, rng);
  std::vector<Vertex> skeleton(shuffled.begin(),
                               shuffled.begin() + skeleton_target);
  out.order.vertex_of = shuffled;
  out.order.rank_of = invert_permutation(shuffled);
  run.skeleton_size = skeleton.size();

  // Setup: BFS tree + ID threshold search (O(D) rounds, §8.2 step (1)).
  const unsigned diam = hop_diameter_estimate(g);
  run.rounds_setup += diam + 1;

  // Skeleton graph: ℓ-hop distances between skeleton vertices, via the
  // frontier-driven engine (dist^ℓ = ℓ scalar MBF iterations).  Round cost
  // per the partial-distance-estimation routine of [31]: Õ(ℓ + |S|).
  std::vector<std::vector<Weight>> sk_dist(skeleton.size());
  parallel_for(skeleton.size(), [&](std::size_t i) {
    sk_dist[i] = mbf_sssp(g, skeleton[i], ell);
  });
  run.rounds_setup += ell + static_cast<std::uint64_t>(skeleton.size() *
                                                       std::ceil(log_n));

  // Relabel skeleton to 0..|S|-1, build G_S, sparsify with Baswana–Sen.
  // (The relabelling is positional: skeleton[i] ↔ i, so no reverse lookup
  // table is needed anywhere below.)
  std::vector<WeightedEdge> gs_edges;
  for (std::size_t i = 0; i < skeleton.size(); ++i) {
    for (std::size_t j = i + 1; j < skeleton.size(); ++j) {
      const Weight d = sk_dist[i][skeleton[j]];
      if (is_finite(d) && d > 0.0) {
        gs_edges.push_back(WeightedEdge{static_cast<Vertex>(i),
                                        static_cast<Vertex>(j), d});
      }
    }
  }
  const Graph gs = Graph::from_edges(static_cast<Vertex>(skeleton.size()),
                                     std::move(gs_edges));
  const auto spanner = baswana_sen_spanner(gs, opts.spanner_k, rng);
  run.skeleton_spanner_edges = spanner.edges;

  // Broadcasting the spanner over the BFS tree costs O(|E'_S| + D) rounds
  // (pipelined); afterwards the skeleton lists are local knowledge.
  run.rounds_setup += spanner.edges + diam;

  // Virtual graph H: G stretched by (2k−1) plus the skeleton spanner
  // (Equations (8.6)–(8.8)).
  const double alpha = 2.0 * opts.spanner_k - 1.0;
  std::vector<WeightedEdge> h_edges;
  for (const auto& e : g.edge_list()) {
    h_edges.push_back(WeightedEdge{e.u, e.v, alpha * e.weight});
  }
  for (const auto& e : spanner.spanner.edge_list()) {
    h_edges.push_back(WeightedEdge{skeleton[e.u], skeleton[e.v], e.weight});
  }
  out.virtual_graph = Graph::from_edges(n, std::move(h_edges));
  run.embedding_stretch = alpha;

  // Jump start: x̄⁽⁰⁾ = r^V A^{|S|}_{G'_S} x⁽⁰⁾ — local computation (the
  // spanner is global knowledge), zero rounds.  Simulated by iterating the
  // LE algebra on the spanner edges.  Non-skeleton vertices are isolated
  // in the spanner graph — they stay singleton and make no offers — so the
  // engine starts from the skeleton support instead of a full frontier.
  const LeListAlgebra alg;
  std::vector<WeightedEdge> spanner_on_v;
  for (const auto& e : spanner.spanner.edge_list()) {
    spanner_on_v.push_back(WeightedEdge{skeleton[e.u], skeleton[e.v], e.weight});
  }
  const Graph spanner_graph = Graph::from_edges(n, std::move(spanner_on_v));
  MbfEngine<LeListAlgebra> jump_engine(spanner_graph, alg);
  std::vector<Vertex> jump_frontier;
  for (Vertex v = 0; v < n; ++v) {
    if (spanner_graph.degree(v) > 0) jump_frontier.push_back(v);
  }
  jump_engine.reset_with_frontier(le_initial_state(out.order),
                                  std::move(jump_frontier));
  for (std::size_t i = 0; i <= skeleton.size(); ++i) {
    if (!jump_engine.step()) break;
  }

  // Finish: ℓ iterations of r^V A_{G,2k−1} (Equation (8.10)); each costs
  // max_v |x_v| rounds as in the Khan algorithm.  The jump-start states
  // are already filtered fixpoint states, so the initial filter is skipped.
  MbfEngine<LeListAlgebra> engine(
      g, alg, jump_engine.take_states(),
      MbfOptions{.weight_scale = alpha, .filter_initial = false});
  ListSizeTracker sizes(engine.states());
  for (unsigned i = 0; i < ell; ++i) {
    run.rounds_iterations += sizes.max();
    const bool changed = engine.step();
    sizes.apply(engine.frontier(), engine.states());
    ++run.le.iterations;
    if (!changed) {
      run.le.converged = true;
      break;
    }
  }
  run.le.lists = engine.take_states();
  run.rounds = run.rounds_setup + run.rounds_iterations;
  return out;
}

}  // namespace pmte
