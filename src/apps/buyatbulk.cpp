#include "src/apps/buyatbulk.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "src/frt/paths.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/serve/frt_index.hpp"
#include "src/util/assertions.hpp"

namespace pmte {

double cable_cost_per_unit_length(double flow,
                                  const std::vector<CableType>& cables) {
  PMTE_CHECK(!cables.empty(), "need at least one cable type");
  if (flow <= 0.0) return 0.0;
  double best = inf_weight();
  for (const auto& c : cables) {
    PMTE_CHECK(c.capacity > 0.0 && c.cost > 0.0, "invalid cable type");
    best = std::min(best, c.cost * std::ceil(flow / c.capacity));
  }
  return best;
}

double price_paths(const Graph& g,
                   const std::vector<std::vector<Vertex>>& paths,
                   const std::vector<double>& amounts,
                   const std::vector<CableType>& cables) {
  PMTE_CHECK(paths.size() == amounts.size(), "paths/amounts mismatch");
  // Aggregate flow per undirected edge.  The per-edge sums are folded
  // into `total` below by iterating this map, so it must be ordered:
  // std::map walks keys ascending, making the FP accumulation order (and
  // hence the returned cost bits) a pure function of the inputs rather
  // than of a hash table's layout.
  std::map<std::uint64_t, double> flow;
  auto key = [](Vertex a, Vertex b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  for (std::size_t p = 0; p < paths.size(); ++p) {
    for (std::size_t i = 1; i < paths[p].size(); ++i) {
      flow[key(paths[p][i - 1], paths[p][i])] += amounts[p];
    }
  }
  double total = 0.0;
  for (const auto& [k, f] : flow) {
    const auto u = static_cast<Vertex>(k >> 32);
    const auto v = static_cast<Vertex>(k & 0xffffffffULL);
    const Weight w = g.edge_weight(u, v);
    PMTE_CHECK(is_finite(w), "path uses a non-edge");
    total += cable_cost_per_unit_length(f, cables) * w;
  }
  return total;
}

namespace {

/// Trace the shortest s→t path from a Dijkstra run.
std::vector<Vertex> trace_path(const SsspResult& sp, Vertex s, Vertex t) {
  std::vector<Vertex> rev;
  PMTE_CHECK(is_finite(sp.dist[t]), "demand endpoints disconnected");
  for (Vertex v = t; v != no_vertex(); v = sp.parent[v]) {
    rev.push_back(v);
    if (v == s) break;
  }
  PMTE_CHECK(rev.back() == s, "path trace failed");
  std::reverse(rev.begin(), rev.end());
  return rev;
}

}  // namespace

BabResult buy_at_bulk(const Graph& g, const std::vector<Demand>& demands,
                      const std::vector<CableType>& cables,
                      const BabOptions& opts, Rng& rng) {
  PMTE_CHECK(!demands.empty(), "no demands");
  BabResult out;

  // --- Baselines -----------------------------------------------------
  const double unit_rate = [&] {
    double r = inf_weight();
    for (const auto& c : cables) r = std::min(r, c.cost / c.capacity);
    return r;
  }();
  {
    // pmte-lint: ordered-ok(memo cache: find/emplace by source vertex only, never iterated — demand order drives all output)
    std::unordered_map<Vertex, SsspResult> sssp_cache;
    std::vector<std::vector<Vertex>> paths;
    std::vector<double> amounts;
    for (const auto& d : demands) {
      auto it = sssp_cache.find(d.s);
      if (it == sssp_cache.end()) {
        it = sssp_cache.emplace(d.s, dijkstra(g, d.s)).first;
      }
      paths.push_back(trace_path(it->second, d.s, d.t));
      amounts.push_back(d.amount);
      out.lower_bound += d.amount * it->second.dist[d.t] * unit_rate;
    }
    out.direct_cost = price_paths(g, paths, amounts, cables);
  }

  // --- (1) Tree embedding --------------------------------------------
  FrtSample sample = opts.use_oracle_pipeline
                         ? sample_frt_oracle(g, rng, opts.frt)
                         : sample_frt_direct(g, rng, opts.frt);
  const FrtTree& tree = sample.tree;

  // --- (2) Route demands on the tree, accumulate per-edge flow -------
  // A leaf-to-leaf path climbs to the LCA; flows are accumulated bottom-up
  // with a difference trick: +amount at both leaves, −2·amount at the LCA.
  // Node ids, child order, and bottom-up order are identical between the
  // two variants (the index preserves the tree's numbering), so the
  // floating-point folds — and therefore every output — are bit-identical.
  std::vector<double> edge_flow(tree.num_nodes(), 0.0);
  if (opts.use_flat_index) {
    const auto index = serve::FrtIndex::build(tree);
    std::vector<double> updo(index.num_nodes(), 0.0);
    for (const auto& d : demands) {
      if (d.s == d.t) continue;
      const auto la = index.leaf_node(d.s);
      const auto lb = index.leaf_node(d.t);
      const auto top = index.lca(d.s, d.t);  // O(1): two RMQ probes
      out.counters.lca_probes += serve::FrtIndex::kLcaProbesPerQuery;
      updo[la] += d.amount;
      updo[lb] += d.amount;
      updo[top] -= 2.0 * d.amount;
    }
    // flow over a node's parent edge = Σ subtree deltas; ids descending =
    // children before parents, CSR children in tree child order.
    const auto root = index.root();
    for (auto id = static_cast<FrtTree::NodeId>(index.num_nodes());
         id-- > 0;) {
      ++out.counters.tree_lookups;
      double f = updo[id];
      for (const auto c : index.children(id)) f += edge_flow[c];
      edge_flow[id] = f;
      if (id != root && f > 1e-12) {
        out.tree_cost += cable_cost_per_unit_length(f, cables) *
                         index.edge_weight(index.level(id));
        ++out.loaded_tree_edges;
      }
    }
  } else {
    std::vector<double> updo(tree.num_nodes(), 0.0);
    auto lca = [&](FrtTree::NodeId a, FrtTree::NodeId b) {
      // Leaves sit at equal depth; walk up in lockstep.
      while (a != b) {
        a = tree.node(a).parent;
        b = tree.node(b).parent;
        out.counters.tree_node_visits += 2;
        PMTE_CHECK(a != FrtTree::invalid_node && b != FrtTree::invalid_node,
                   "leaves have no common ancestor");
      }
      return a;
    };
    for (const auto& d : demands) {
      if (d.s == d.t) continue;
      const auto la = tree.leaf_of(d.s);
      const auto lb = tree.leaf_of(d.t);
      const auto top = lca(la, lb);
      updo[la] += d.amount;
      updo[lb] += d.amount;
      updo[top] -= 2.0 * d.amount;
    }
    // flow over a node's parent edge = Σ subtree deltas.
    for (const auto id : tree.bottom_up_order()) {
      const auto& nd = tree.node(id);
      ++out.counters.tree_node_visits;
      double f = updo[id];
      for (const auto c : nd.children) f += edge_flow[c];
      edge_flow[id] = f;
      if (nd.parent != FrtTree::invalid_node && f > 1e-12) {
        out.tree_cost +=
            cable_cost_per_unit_length(f, cables) * nd.parent_edge;
        ++out.loaded_tree_edges;
      }
    }
  }

  // --- (3) Map loaded tree edges back to graph paths -----------------
  PathUnfolder unfolder(g, tree);
  std::vector<std::vector<Vertex>> g_paths;
  std::vector<double> g_amounts;
  for (FrtTree::NodeId id = 0; id < tree.num_nodes(); ++id) {
    const auto& nd = tree.node(id);
    if (nd.parent == FrtTree::invalid_node || edge_flow[id] <= 1e-12) continue;
    auto unfolded = unfolder.unfold(id);
    if (unfolded.path.size() < 2) continue;  // degenerate: zero-length walk
    g_paths.push_back(std::move(unfolded.path));
    g_amounts.push_back(edge_flow[id]);
  }
  out.dijkstra_runs = unfolder.dijkstra_runs();
  out.cost = price_paths(g, g_paths, g_amounts, cables);
  return out;
}

}  // namespace pmte
