#pragma once
// Distance sketches from LE lists.
//
// LE lists are more than tree-embedding fodder: Cohen [12] and Cohen–
// Kaplan [14] (both cited by the paper as the origin of LE lists) use them
// as per-vertex *sketches* whose pairwise intersection estimates distances:
//
//     est(u, v) = min over ranks r in both lists of  L(u)[r] + L(v)[r],
//
// an upper bound on dist(u, v) by the triangle inequality, and never ∞ on
// connected graphs (the rank-0 vertex is in every list).  Averaging the
// minimum over several independent permutations tightens the estimate.
// Expected sketch size is T·O(log n) entries per vertex; queries take
// O(T·log n).
//
// This is a natural "extension" application of the paper's machinery: the
// sketches can be built with any of the LE-list pipelines, including the
// oracle pipeline at polylog depth.

#include <cstddef>
#include <vector>

#include "src/frt/le_lists.hpp"
#include "src/graph/graph.hpp"
#include "src/util/rng.hpp"

namespace pmte {

class DistanceSketches {
 public:
  /// Build sketches from `permutations` independent LE-list computations
  /// using the sequential pipeline.
  static DistanceSketches build(const Graph& g, std::size_t permutations,
                                Rng& rng);

  /// Build from pre-computed LE-list results (one per permutation); allows
  /// plugging the oracle pipeline.
  static DistanceSketches from_lists(std::vector<LeListsResult> runs,
                                     Vertex n);

  /// Upper-bound distance estimate; exact 0 for u == v.
  [[nodiscard]] Weight query(Vertex u, Vertex v) const;

  [[nodiscard]] std::size_t permutations() const noexcept {
    return runs_.size();
  }

  /// Average number of stored (rank, dist) entries per vertex.
  [[nodiscard]] double average_entries_per_vertex() const;

 private:
  std::vector<std::vector<DistanceMap>> runs_;  // per permutation, per vertex
  Vertex n_ = 0;
};

}  // namespace pmte
