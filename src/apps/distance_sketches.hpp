#pragma once
// Distance sketches from LE lists.
//
// LE lists are more than tree-embedding fodder: Cohen [12] and Cohen–
// Kaplan [14] (both cited by the paper as the origin of LE lists) use them
// as per-vertex *sketches* whose pairwise intersection estimates distances:
//
//     est(u, v) = min over ranks r in both lists of  L(u)[r] + L(v)[r],
//
// an upper bound on dist(u, v) by the triangle inequality, and never ∞ on
// connected graphs (the rank-0 vertex is in every list).  Averaging the
// minimum over several independent permutations tightens the estimate.
// Expected sketch size is T·O(log n) entries per vertex; queries take
// O(T·log n).
//
// This is a natural "extension" application of the paper's machinery: the
// sketches can be built with any of the LE-list pipelines, including the
// oracle pipeline at polylog depth.
//
// EnsembleSketches is the serving-layer counterpart: instead of storing
// per-vertex LE lists and intersecting them at O(T·log n) per query, it
// holds a serve::FrtEnsemble — k flat FRT indices — and serves the min
// over k O(1) tree-distance lookups through FrtEnsemble::query_batch
// (parallel batches, deterministic counters, optional hot-pair cache).
// Every FRT tree dominates dist_G under the dominating weight rule, so the
// min is a valid upper-bound sketch just like the LE intersection, and the
// answers are bit-identical to folding FrtTree::distance over the same k
// trees (pinned by test_sketches' differential suite).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/frt/le_lists.hpp"
#include "src/graph/graph.hpp"
#include "src/serve/frt_ensemble.hpp"
#include "src/util/rng.hpp"

namespace pmte {

class DistanceSketches {
 public:
  /// Build sketches from `permutations` independent LE-list computations
  /// using the sequential pipeline.
  static DistanceSketches build(const Graph& g, std::size_t permutations,
                                Rng& rng);

  /// Build from pre-computed LE-list results (one per permutation); allows
  /// plugging the oracle pipeline.
  static DistanceSketches from_lists(std::vector<LeListsResult> runs,
                                     Vertex n);

  /// Upper-bound distance estimate; exact 0 for u == v.
  [[nodiscard]] Weight query(Vertex u, Vertex v) const;

  [[nodiscard]] std::size_t permutations() const noexcept {
    return runs_.size();
  }

  /// Average number of stored (rank, dist) entries per vertex.
  [[nodiscard]] double average_entries_per_vertex() const;

 private:
  std::vector<std::vector<DistanceMap>> runs_;  // per permutation, per vertex
  Vertex n_ = 0;
};

/// Distance sketches served through the flat FRT-ensemble layer: k
/// independently-seeded serving indices, answers = min over the k O(1)
/// tree-distance lookups.  Dominating trees make every answer an upper
/// bound on dist_G; more trees only tighten it.
class EnsembleSketches {
 public:
  /// Build k trees over `g` from one master seed (the FrtEnsemble seeding
  /// scheme — reproducible at any build parallelism).
  [[nodiscard]] static EnsembleSketches build(
      const Graph& g, std::size_t trees, std::uint64_t master_seed,
      const serve::EnsembleOptions& base = {});

  /// Serve from an already-built (or loaded) ensemble.
  [[nodiscard]] static EnsembleSketches from_ensemble(serve::FrtEnsemble e);

  /// Upper-bound distance estimate; exact 0 for u == v.
  [[nodiscard]] Weight query(Vertex u, Vertex v) const;

  /// Batched queries through FrtEnsemble::query_batch (min policy):
  /// bit-identical outputs and deterministic counters at any thread
  /// count.  With enable_cache(), repeated pairs are served from the
  /// hot-pair cache — same values, fewer tree lookups.  Non-const
  /// because a batch mutates the attached cache (one batch at a time;
  /// point query() stays const and cache-free).
  serve::FrtEnsemble::BatchStats query_batch(
      const std::vector<std::pair<Vertex, Vertex>>& pairs,
      std::vector<Weight>& out);

  /// Attach a hot-pair cache of (at least) `capacity` slots to this
  /// sketch's query stream; capacity 0 detaches it.
  void enable_cache(std::size_t capacity);

  [[nodiscard]] std::size_t trees() const noexcept {
    return ensemble_.num_trees();
  }
  [[nodiscard]] Vertex num_vertices() const noexcept {
    return ensemble_.num_vertices();
  }
  [[nodiscard]] const serve::FrtEnsemble& ensemble() const noexcept {
    return ensemble_;
  }
  [[nodiscard]] const serve::HotPairCache* cache() const noexcept {
    return cache_ ? &*cache_ : nullptr;
  }

 private:
  serve::FrtEnsemble ensemble_;
  std::optional<serve::HotPairCache> cache_;
};

}  // namespace pmte
