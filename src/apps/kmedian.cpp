#include "src/apps/kmedian.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/graph/shortest_paths.hpp"
#include "src/parallel/parallel.hpp"
#include "src/util/assertions.hpp"

namespace pmte {

double kmedian_cost(const Graph& g, const std::vector<Vertex>& centers) {
  PMTE_CHECK(!centers.empty(), "k-median cost needs at least one center");
  const auto ms = multi_source_dijkstra(g, centers);
  double total = 0.0;
  for (Weight d : ms.dist) {
    PMTE_CHECK(is_finite(d), "disconnected client in k-median objective");
    total += d;
  }
  return total;
}

KMedianResult kmedian_random(const Graph& g, std::size_t k, Rng& rng) {
  const Vertex n = g.num_vertices();
  PMTE_CHECK(k >= 1 && k <= n, "k out of range");
  auto perm = random_permutation(n, rng);
  KMedianResult r;
  r.centers.assign(perm.begin(), perm.begin() + static_cast<std::ptrdiff_t>(k));
  r.cost = kmedian_cost(g, r.centers);
  return r;
}

KMedianResult kmedian_local_search(const Graph& g, std::size_t k,
                                   unsigned max_rounds, Rng& rng) {
  const Vertex n = g.num_vertices();
  PMTE_CHECK(k >= 1 && k <= n, "k out of range");
  KMedianResult r = kmedian_random(g, k, rng);
  // Single-swap local search; candidate insertions are sampled to keep the
  // baseline tractable on larger instances.
  const std::size_t swap_candidates = std::min<std::size_t>(n, 64);
  for (unsigned round = 0; round < max_rounds; ++round) {
    bool improved = false;
    for (std::size_t ci = 0; ci < r.centers.size(); ++ci) {
      std::vector<Vertex> trial = r.centers;
      double best_cost = r.cost;
      Vertex best_swap = no_vertex();
      std::vector<double> costs(swap_candidates, inf_weight());
      std::vector<Vertex> cands(swap_candidates);
      for (std::size_t t = 0; t < swap_candidates; ++t) {
        cands[t] = static_cast<Vertex>(rng.below(n));
      }
      parallel_for(swap_candidates, [&](std::size_t t) {
        const Vertex cand = cands[t];
        if (std::find(trial.begin(), trial.end(), cand) != trial.end()) return;
        auto attempt = trial;
        attempt[ci] = cand;
        costs[t] = kmedian_cost(g, attempt);
      });
      for (std::size_t t = 0; t < swap_candidates; ++t) {
        if (costs[t] < best_cost) {
          best_cost = costs[t];
          best_swap = cands[t];
        }
      }
      if (best_swap != no_vertex() && best_cost < r.cost * (1.0 - 1e-6)) {
        r.centers[ci] = best_swap;
        r.cost = best_cost;
        improved = true;
      }
    }
    if (!improved) break;
  }
  return r;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Condensed HST: unary chains of the FRT tree are contracted, keeping
/// leaves, branching nodes and the root.  Divergence levels (and therefore
/// leaf-to-leaf distances) are preserved because the LCA of two leaves is
/// always a branching node.
struct CondensedTree {
  struct Node {
    unsigned level = 0;                 // original FRT level
    std::vector<std::uint32_t> children;
    Vertex leaf_vertex = no_vertex();   // tree-local vertex for leaves
  };
  std::vector<Node> nodes;  // nodes[0] is the root; children after parents
  std::vector<double> div_dist;  // div_dist[s] = leaf-leaf distance with
                                 // LCA at level s; last slot = ∞ sentinel
};

/// Shared condensation walk: `Source` answers root()/level/leaf_vertex/
/// children for either the pointer-based tree or the flat index, and the
/// traversal (explicit stack, children pushed in source order, popped
/// LIFO) is byte-for-byte the same — so both sources yield the identical
/// CondensedTree, including child order, hence identical DP fold order.
template <typename Source>
CondensedTree condense_via(const Source& src, unsigned levels) {
  CondensedTree ct;
  ct.div_dist.assign(levels + 1, 0.0);
  for (unsigned s = 1; s < levels; ++s) {
    ct.div_dist[s] = ct.div_dist[s - 1] + 2.0 * src.edge_weight(s - 1);
  }
  ct.div_dist[levels] = kInf;  // "no external facility"

  // Map FRT nodes to condensed ids, walking top-down; a node is kept if it
  // is the root, a leaf, or has ≥ 2 children.
  struct Item {
    FrtTree::NodeId frt;
    std::uint32_t parent;  // condensed parent
  };
  std::vector<Item> stack;
  ct.nodes.push_back(CondensedTree::Node{});
  ct.nodes[0].level = src.level(src.root());
  ct.nodes[0].leaf_vertex = src.leaf_vertex(src.root());
  for (const auto c : src.children(src.root())) {
    stack.push_back(Item{c, 0});
  }
  while (!stack.empty()) {
    const auto [id, parent] = stack.back();
    stack.pop_back();
    // By-reference for TreeSource's vector, lifetime-extended temporary
    // for IndexSource's span — no per-node copies either way.
    const auto& children = src.children(id);
    const Vertex leaf = src.leaf_vertex(id);
    const bool keep = children.size() >= 2 || leaf != no_vertex();
    std::uint32_t next_parent = parent;
    if (keep) {
      const auto me = static_cast<std::uint32_t>(ct.nodes.size());
      CondensedTree::Node cn;
      cn.level = src.level(id);
      cn.leaf_vertex = leaf;
      ct.nodes.push_back(cn);
      ct.nodes[parent].children.push_back(me);
      next_parent = me;
    }
    for (const auto c : children) stack.push_back(Item{c, next_parent});
  }
  // Degenerate case: the root kept a single child chain to a lone leaf.
  return ct;
}

/// Pointer-climbing source (the pre-serving reference): every accessor is
/// a FrtTree::Node dereference, counted as tree_node_visits.
struct TreeSource {
  const FrtTree& tree;
  mutable AppQueryCounters counters;

  [[nodiscard]] FrtTree::NodeId root() const { return tree.root(); }
  [[nodiscard]] unsigned level(FrtTree::NodeId id) const {
    return tree.node(id).level;
  }
  [[nodiscard]] Vertex leaf_vertex(FrtTree::NodeId id) const {
    return tree.node(id).leaf_vertex;
  }
  [[nodiscard]] const std::vector<FrtTree::NodeId>& children(
      FrtTree::NodeId id) const {
    // One count per visited node (children() is called exactly once per
    // walked node); level/leaf_vertex read the same record.
    ++counters.tree_node_visits;
    return tree.node(id).children;
  }
  [[nodiscard]] Weight edge_weight(unsigned l) const {
    return tree.edge_weight(l);
  }
};

/// Flat source: contiguous array reads against the serving index, counted
/// as tree_lookups; no FrtTree::Node is touched.
struct IndexSource {
  const serve::FrtIndex& index;
  mutable AppQueryCounters counters;

  [[nodiscard]] serve::FrtIndex::NodeId root() const { return index.root(); }
  [[nodiscard]] unsigned level(serve::FrtIndex::NodeId id) const {
    return index.level(id);
  }
  [[nodiscard]] Vertex leaf_vertex(serve::FrtIndex::NodeId id) const {
    return index.leaf_vertex(id);
  }
  [[nodiscard]] std::span<const serve::FrtIndex::NodeId> children(
      serve::FrtIndex::NodeId id) const {
    ++counters.tree_lookups;
    return index.children(id);
  }
  [[nodiscard]] Weight edge_weight(unsigned l) const {
    return index.edge_weight(l);
  }
};

/// Exact weighted k-median DP on the condensed HST.  dp[v][j][s] = optimal
/// cost of subtree(v) with j facilities opened inside and the nearest
/// *external* facility diverging from v's leaves at level s (s = levels ⇒
/// none).  See DESIGN.md §2 for the recurrence discussion.
class TreeDp {
 public:
  TreeDp(const CondensedTree& ct, const std::vector<double>& leaf_weight,
         std::size_t k)
      : ct_(ct), weight_(leaf_weight), k_(k), slots_(ct.div_dist.size()) {
    dp_.resize(ct.nodes.size());
    for (std::uint32_t v = static_cast<std::uint32_t>(ct.nodes.size()); v-- > 0;) {
      compute(v);
    }
  }

  [[nodiscard]] double best_cost() const {
    const auto& root = dp_[0];
    double best = kInf;
    for (std::size_t j = 0; j <= k_; ++j) {
      best = std::min(best, root[index(j, slots_ - 1)]);
    }
    return best;
  }

  void collect_centers(std::vector<Vertex>& out) const {
    const auto& root = dp_[0];
    std::size_t best_j = 0;
    double best = kInf;
    for (std::size_t j = 0; j <= k_; ++j) {
      const double c = root[index(j, slots_ - 1)];
      if (c < best) {
        best = c;
        best_j = j;
      }
    }
    backtrack(0, best_j, slots_ - 1, out);
  }

 private:
  [[nodiscard]] std::size_t index(std::size_t j, std::size_t s) const {
    return j * slots_ + s;
  }

  [[nodiscard]] double leaf_cost(std::uint32_t v, std::size_t j,
                                 std::size_t s) const {
    if (j == 0) return weight_[ct_.nodes[v].leaf_vertex] * ct_.div_dist[s];
    if (j == 1) return 0.0;
    return kInf;
  }

  void compute(std::uint32_t v) {
    const auto& nd = ct_.nodes[v];
    auto& table = dp_[v];
    table.assign((k_ + 1) * slots_, kInf);
    if (nd.children.empty()) {
      for (std::size_t j = 0; j <= k_; ++j) {
        for (std::size_t s = 0; s < slots_; ++s) {
          table[index(j, s)] = leaf_cost(v, j, s);
        }
      }
      return;
    }
    const std::size_t ell = nd.level;  // divergence level inside v
    // Knapsack over children with every child priced at divergence ℓ;
    // count ∈ {0,1,2} tracks how many children hold facilities (2 = "≥2").
    std::vector<double> knap((k_ + 1) * 3, kInf);
    knap[0 * 3 + 0] = 0.0;
    for (const auto c : nd.children) {
      std::vector<double> next((k_ + 1) * 3, kInf);
      for (std::size_t j = 0; j <= k_; ++j) {
        for (int cnt = 0; cnt < 3; ++cnt) {
          const double base = knap[j * 3 + cnt];
          if (base == kInf) continue;
          for (std::size_t jc = 0; j + jc <= k_; ++jc) {
            const double child_cost = dp_[c][index(jc, ell)];
            if (child_cost == kInf) continue;
            const int ncnt = std::min(2, cnt + (jc > 0 ? 1 : 0));
            auto& slot = next[(j + jc) * 3 + ncnt];
            slot = std::min(slot, base + child_cost);
          }
        }
      }
      knap = std::move(next);
    }
    // T0 = Σ_t dp[c_t][0][ℓ] for the single-carrier option.
    double t0 = 0.0;
    for (const auto c : nd.children) t0 += dp_[c][index(0, ell)];
    for (std::size_t s = 0; s < slots_; ++s) {
      // j = 0: every child serves externally at divergence s.
      double all_zero = 0.0;
      for (const auto c : nd.children) {
        const double cc = dp_[c][index(0, s)];
        all_zero = cc == kInf ? kInf : all_zero + cc;
        if (all_zero == kInf) break;
      }
      table[index(0, s)] = all_zero;
      for (std::size_t j = 1; j <= k_; ++j) {
        double best = knap[j * 3 + 2];  // ≥ 2 carrier children
        for (const auto c : nd.children) {
          // Single carrier child c: it still sees the external facility at
          // divergence s; its siblings see the carrier at divergence ℓ.
          const double carrier = dp_[c][index(j, s)];
          const double zero_at_ell = dp_[c][index(0, ell)];
          if (carrier == kInf || t0 == kInf || zero_at_ell == kInf) continue;
          best = std::min(best, carrier + (t0 - zero_at_ell));
        }
        table[index(j, s)] = best;
      }
    }
  }

  void backtrack(std::uint32_t v, std::size_t j, std::size_t s,
                 std::vector<Vertex>& out) const {
    const auto& nd = ct_.nodes[v];
    if (nd.children.empty()) {
      if (j >= 1) out.push_back(nd.leaf_vertex);
      return;
    }
    const double target = dp_[v][index(j, s)];
    if (target == kInf) return;
    const std::size_t ell = nd.level;
    if (j == 0) {
      for (const auto c : nd.children) backtrack(c, 0, s, out);
      return;
    }
    // Single-carrier option?
    double t0 = 0.0;
    for (const auto c : nd.children) t0 += dp_[c][index(0, ell)];
    for (const auto c : nd.children) {
      const double carrier = dp_[c][index(j, s)];
      const double zero_at_ell = dp_[c][index(0, ell)];
      if (carrier == kInf || zero_at_ell == kInf) continue;
      if (carrier + (t0 - zero_at_ell) <= target * (1 + 1e-12) + 1e-12) {
        backtrack(c, j, s, out);
        for (const auto t : nd.children) {
          if (t != c) backtrack(t, 0, ell, out);
        }
        return;
      }
    }
    // Otherwise a ≥2 split: peel children greedily against the knapsack.
    // Recompute suffix knapsacks to identify a consistent split.
    const std::size_t r = nd.children.size();
    // suffix[i] = knapsack over children[i..r) priced at ℓ.
    std::vector<std::vector<double>> suffix(r + 1);
    suffix[r].assign((k_ + 1) * 3, kInf);
    suffix[r][0] = 0.0;
    for (std::size_t i = r; i-- > 0;) {
      suffix[i].assign((k_ + 1) * 3, kInf);
      const auto c = nd.children[i];
      for (std::size_t jj = 0; jj <= k_; ++jj) {
        for (int cnt = 0; cnt < 3; ++cnt) {
          const double base = suffix[i + 1][jj * 3 + cnt];
          if (base == kInf) continue;
          for (std::size_t jc = 0; jj + jc <= k_; ++jc) {
            const double cc = dp_[c][index(jc, ell)];
            if (cc == kInf) continue;
            const int ncnt = std::min(2, cnt + (jc > 0 ? 1 : 0));
            auto& slot = suffix[i][(jj + jc) * 3 + ncnt];
            slot = std::min(slot, base + cc);
          }
        }
      }
    }
    std::size_t rem_j = j;
    int rem_cnt = 2;
    double rem_cost = suffix[0][rem_j * 3 + rem_cnt];
    PMTE_ASSERT(rem_cost < kInf, "knapsack backtrack inconsistent");
    for (std::size_t i = 0; i < r; ++i) {
      const auto c = nd.children[i];
      bool advanced = false;
      for (std::size_t jc = 0; jc <= rem_j && !advanced; ++jc) {
        const double cc = dp_[c][index(jc, ell)];
        if (cc == kInf) continue;
        // Count still needed from the remaining suffix.
        for (int need = 0; need < 3 && !advanced; ++need) {
          if (std::min(2, need + (jc > 0 ? 1 : 0)) != rem_cnt &&
              !(rem_cnt == 2 && std::min(2, need + (jc > 0 ? 1 : 0)) >= 2)) {
            continue;
          }
          const double tail = suffix[i + 1][(rem_j - jc) * 3 + need];
          if (tail == kInf) continue;
          if (cc + tail <= rem_cost * (1 + 1e-12) + 1e-12) {
            backtrack(c, jc, ell, out);
            rem_j -= jc;
            rem_cnt = need;
            rem_cost = tail;
            advanced = true;
          }
        }
      }
      PMTE_ASSERT(advanced, "knapsack backtrack failed to advance");
    }
  }

  const CondensedTree& ct_;
  const std::vector<double>& weight_;
  std::size_t k_;
  std::size_t slots_;
  std::vector<std::vector<double>> dp_;
};

}  // namespace

namespace {

TreeKMedian solve_on_condensed(const CondensedTree& ct,
                               const std::vector<double>& leaf_weight,
                               std::size_t k, Vertex leaves) {
  TreeDp dp(ct, leaf_weight, std::min<std::size_t>(k, leaves));
  TreeKMedian out;
  out.cost = dp.best_cost();
  dp.collect_centers(out.centers);
  PMTE_CHECK(!out.centers.empty() && out.centers.size() <= k,
             "tree DP produced an invalid center set");
  return out;
}

}  // namespace

TreeKMedian solve_kmedian_on_tree(const FrtTree& tree,
                                  const std::vector<double>& leaf_weight,
                                  std::size_t k) {
  PMTE_CHECK(leaf_weight.size() == tree.num_leaves(),
             "leaf weight count mismatch");
  PMTE_CHECK(k >= 1, "k must be positive");
  TreeSource src{tree, {}};
  const auto ct = condense_via(src, tree.num_levels());
  auto out = solve_on_condensed(ct, leaf_weight, k, tree.num_leaves());
  out.counters = src.counters;
  return out;
}

TreeKMedian solve_kmedian_on_index(const serve::FrtIndex& index,
                                   const std::vector<double>& leaf_weight,
                                   std::size_t k) {
  PMTE_CHECK(leaf_weight.size() == index.num_leaves(),
             "leaf weight count mismatch");
  PMTE_CHECK(k >= 1, "k must be positive");
  IndexSource src{index, {}};
  const auto ct = condense_via(src, index.num_levels());
  auto out = solve_on_condensed(ct, leaf_weight, k, index.num_leaves());
  out.counters = src.counters;
  return out;
}

KMedianResult kmedian_frt(const Graph& g, std::size_t k,
                          const KMedianOptions& opts, Rng& rng) {
  const Vertex n = g.num_vertices();
  PMTE_CHECK(k >= 1 && k <= n, "k out of range");

  // (1) Successive sampling (Mettu–Plaxton style): halve the candidate pool
  // per round, keeping everything sampled along the way.
  std::vector<Vertex> pool(n);
  for (Vertex v = 0; v < n; ++v) pool[v] = v;
  std::vector<Vertex> candidates;
  const std::size_t per_round = std::max<std::size_t>(
      opts.min_candidates,
      static_cast<std::size_t>(std::ceil(opts.candidate_factor * k)));
  while (pool.size() > per_round) {
    shuffle(pool.begin(), pool.end(), rng);
    std::vector<Vertex> sampled(pool.begin(),
                                pool.begin() + static_cast<std::ptrdiff_t>(per_round));
    candidates.insert(candidates.end(), sampled.begin(), sampled.end());
    // Distance of every pool vertex to the sampled set; drop the closest
    // half (they are well-served by existing candidates).
    const auto ms = multi_source_dijkstra(g, sampled);
    std::sort(pool.begin(), pool.end(), [&](Vertex a, Vertex b) {
      return ms.dist[a] > ms.dist[b];
    });
    pool.resize(pool.size() / 2);
  }
  candidates.insert(candidates.end(), pool.begin(), pool.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  PMTE_CHECK(candidates.size() >= k, "candidate sampling lost too many");

  // (2) Client weights: every vertex attaches to its closest candidate.
  const auto owners = multi_source_dijkstra(g, candidates);
  std::vector<double> weight(candidates.size(), 0.0);
  std::vector<Vertex> cand_index(n, no_vertex());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    cand_index[candidates[i]] = static_cast<Vertex>(i);
  }
  for (Vertex v = 0; v < n; ++v) {
    PMTE_CHECK(owners.owner[v] != no_vertex(), "graph must be connected");
    weight[cand_index[owners.owner[v]]] += 1.0;
  }

  // Submetric on the candidates (|Q| Dijkstras, |Q| ∈ O(k log(n/k))).
  const auto q = static_cast<Vertex>(candidates.size());
  std::vector<Weight> sub(static_cast<std::size_t>(q) * q, inf_weight());
  std::vector<std::vector<Weight>> cand_dist(q);
  parallel_for(q, [&](std::size_t i) {
    cand_dist[i] = dijkstra(g, candidates[i]).dist;
  });
  Weight sub_min = inf_weight();
  for (Vertex i = 0; i < q; ++i) {
    for (Vertex j = 0; j < q; ++j) {
      const Weight d = cand_dist[i][candidates[j]];
      sub[static_cast<std::size_t>(i) * q + j] = d;
      if (i != j && d > 0.0) sub_min = std::min(sub_min, d);
    }
  }
  if (!is_finite(sub_min)) sub_min = 1.0;  // single candidate: any hint works

  // (3) FRT trees over the submetric; DP; evaluate on the graph objective.
  KMedianResult best;
  best.cost = inf_weight();
  best.candidates = candidates.size();
  for (std::size_t t = 0; t < std::max<std::size_t>(opts.trees, 1); ++t) {
    const double beta = sample_beta(rng);
    auto order = VertexOrder::random(q, rng);
    auto le = le_lists_from_metric(sub, order);
    auto tree = FrtTree::build(le.lists, order, beta, sub_min);
    // The flat path compacts the sampled tree into the serving index and
    // condenses over its arrays — bit-identical solution, no pointer
    // chasing (the reference stays selectable for the differential suite).
    auto sol = opts.use_flat_index
                   ? solve_kmedian_on_index(serve::FrtIndex::build(tree),
                                            weight, k)
                   : solve_kmedian_on_tree(tree, weight, k);
    best.counters += sol.counters;
    std::vector<Vertex> centers;
    centers.reserve(sol.centers.size());
    for (Vertex c : sol.centers) centers.push_back(candidates[c]);
    const double cost = kmedian_cost(g, centers);
    if (cost < best.cost) {
      best.cost = cost;
      best.centers = std::move(centers);
      best.tree_cost = sol.cost;
    }
  }
  return best;
}

}  // namespace pmte
