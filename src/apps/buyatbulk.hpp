#pragma once
// Buy-at-bulk network design via FRT trees (Section 10, Theorem 10.2).
//
// Following Awerbuch–Azar [5] / Blelloch et al. [10]:
//   (1) embed G into an FRT tree T (expected stretch O(log n)),
//   (2) route every demand along its unique tree path and buy, per tree
//       edge, the cable mix minimising c_i·⌈d_e/u_i⌉ (Definition 10.1),
//   (3) map the tree solution back to G by realising each loaded tree edge
//       as a graph path (Section 7.5), aggregating flow per graph edge and
//       re-pricing — an O(1)-factor loss.
//
// Baselines: direct shortest-path routing (no consolidation) and the
// fractional lower bound Σ_j d_j·dist(s_j,t_j)·min_i c_i/u_i.
//
// Step (2) runs on the flat serving index by default: the sampled tree is
// compacted into a serve::FrtIndex, demand LCAs are O(1) sparse-table
// probes instead of lockstep parent climbs, and the bottom-up flow
// accumulation folds over the index's CSR children in the tree's child
// order — flows, costs, and loaded-edge counts are bit-identical to the
// pointer-climbing reference (pinned by test_buyatbulk's differential
// suite); AppQueryCounters records the eliminated pointer chases.

#include <vector>

#include "src/apps/app_counters.hpp"
#include "src/frt/pipelines.hpp"
#include "src/graph/graph.hpp"
#include "src/util/rng.hpp"

namespace pmte {

/// A cable type: buying one copy on edge e adds capacity `capacity` at
/// price `cost` · ω(e).  Multiple copies and mixes are allowed.
struct CableType {
  double capacity = 1.0;
  double cost = 1.0;
};

struct Demand {
  Vertex s = 0;
  Vertex t = 0;
  double amount = 1.0;
};

/// Cheapest cable purchase covering flow f on a unit-length edge.
/// Exact for a single type; for mixes we use the standard greedy-over-types
/// bound min_i c_i·⌈f/u_i⌉ that the algorithm of [10] optimises.
[[nodiscard]] double cable_cost_per_unit_length(
    double flow, const std::vector<CableType>& cables);

struct BabResult {
  double cost = 0.0;        ///< total cost of the solution in G
  double tree_cost = 0.0;   ///< cost of the tree solution (T weights)
  double direct_cost = 0.0; ///< direct shortest-path routing baseline
  double lower_bound = 0.0; ///< fractional LB (no solution can beat it)
  std::size_t loaded_tree_edges = 0;
  std::size_t dijkstra_runs = 0;  ///< path-unfolding cost
  AppQueryCounters counters;      ///< LCA + flow-walk cost on the tree
};

struct BabOptions {
  FrtOptions frt;
  bool use_oracle_pipeline = false;  ///< default: direct LE iteration
  /// Route over the flat serve::FrtIndex (default) or by climbing
  /// FrtTree parent pointers (the pre-serving reference, kept for the
  /// differential tests).  Results are bit-identical either way.
  bool use_flat_index = true;
};

/// Run the FRT-based buy-at-bulk approximation and both baselines.
[[nodiscard]] BabResult buy_at_bulk(const Graph& g,
                                    const std::vector<Demand>& demands,
                                    const std::vector<CableType>& cables,
                                    const BabOptions& opts, Rng& rng);

/// Price a fixed routing: per-edge flows aggregated over the given paths.
[[nodiscard]] double price_paths(const Graph& g,
                                 const std::vector<std::vector<Vertex>>& paths,
                                 const std::vector<double>& amounts,
                                 const std::vector<CableType>& cables);

}  // namespace pmte
