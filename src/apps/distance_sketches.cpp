#include "src/apps/distance_sketches.hpp"

#include <algorithm>

#include "src/util/assertions.hpp"

namespace pmte {

DistanceSketches DistanceSketches::build(const Graph& g,
                                         std::size_t permutations, Rng& rng) {
  PMTE_CHECK(permutations >= 1, "need at least one permutation");
  std::vector<LeListsResult> runs;
  runs.reserve(permutations);
  for (std::size_t t = 0; t < permutations; ++t) {
    const auto order = VertexOrder::random(g.num_vertices(), rng);
    runs.push_back(le_lists_sequential(g, order));
  }
  return from_lists(std::move(runs), g.num_vertices());
}

DistanceSketches DistanceSketches::from_lists(std::vector<LeListsResult> runs,
                                              Vertex n) {
  PMTE_CHECK(!runs.empty(), "no LE-list runs provided");
  DistanceSketches s;
  s.n_ = n;
  s.runs_.reserve(runs.size());
  for (auto& r : runs) {
    PMTE_CHECK(r.lists.size() == n, "LE-list run has wrong vertex count");
    s.runs_.push_back(std::move(r.lists));
  }
  return s;
}

Weight DistanceSketches::query(Vertex u, Vertex v) const {
  PMTE_CHECK(u < n_ && v < n_, "query vertex out of range");
  if (u == v) return 0.0;
  Weight best = inf_weight();
  for (const auto& lists : runs_) {
    // Sorted-merge intersection on ranks.
    const auto a = lists[u].entries();
    const auto b = lists[v].entries();
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i].key < b[j].key) {
        ++i;
      } else if (b[j].key < a[i].key) {
        ++j;
      } else {
        best = std::min(best, a[i].dist + b[j].dist);
        ++i;
        ++j;
      }
    }
  }
  return best;
}

double DistanceSketches::average_entries_per_vertex() const {
  std::size_t total = 0;
  for (const auto& lists : runs_) {
    for (const auto& l : lists) total += l.size();
  }
  return static_cast<double>(total) / static_cast<double>(n_);
}

EnsembleSketches EnsembleSketches::build(const Graph& g, std::size_t trees,
                                         std::uint64_t master_seed,
                                         const serve::EnsembleOptions& base) {
  serve::EnsembleOptions opts = base;
  opts.trees = trees;
  return from_ensemble(serve::FrtEnsemble::build(g, master_seed, opts));
}

EnsembleSketches EnsembleSketches::from_ensemble(serve::FrtEnsemble e) {
  PMTE_CHECK(e.num_trees() >= 1, "EnsembleSketches: empty ensemble");
  EnsembleSketches s;
  s.ensemble_ = std::move(e);
  return s;
}

Weight EnsembleSketches::query(Vertex u, Vertex v) const {
  return ensemble_.query(u, v, serve::AggregatePolicy::min);
}

serve::FrtEnsemble::BatchStats EnsembleSketches::query_batch(
    const std::vector<std::pair<Vertex, Vertex>>& pairs,
    std::vector<Weight>& out) {
  return ensemble_.query_batch(pairs, serve::AggregatePolicy::min, out,
                               cache_ ? &*cache_ : nullptr);
}

void EnsembleSketches::enable_cache(std::size_t capacity) {
  cache_.reset();
  if (capacity > 0) cache_.emplace(capacity);
}

}  // namespace pmte
