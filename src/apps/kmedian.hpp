#pragma once
// k-median approximation via FRT trees (Section 9, Theorem 9.2).
//
// Pipeline (following Blelloch et al. [10], generalised from metric inputs
// to graphs):
//   (1) Mettu–Plaxton-style successive sampling produces a candidate set Q
//       with |Q| ∈ O(k·log(n/k)) containing an O(1)-approximate solution.
//   (2) Sample an FRT tree of the submetric spanned by Q (LE lists with
//       sources restricted to Q); every vertex of V is attached to its
//       closest candidate, giving client weights on the leaves.
//   (3) An exact dynamic program solves weighted k-median on the HST; its
//       expected cost is an O(log k)-approximation of the graph optimum.
//
// The returned centers are evaluated on the *graph* objective
// Σ_v dist(v, F, G), the quantity Definition 9.1 asks for.
//
// The HST step runs on the flat serving index by default: the sampled
// FrtTree is compacted into a serve::FrtIndex and the condensation walks
// the index's Euler-tour/CSR arrays instead of FrtTree::Node pointers —
// bit-identical condensed tree, DP table, centers, and costs (pinned by
// test_kmedian's differential suite over the 50-graph corpus), zero
// pointer chasing on the query path (AppQueryCounters).

#include <cstddef>
#include <vector>

#include "src/apps/app_counters.hpp"
#include "src/frt/frt_tree.hpp"
#include "src/graph/graph.hpp"
#include "src/serve/frt_index.hpp"
#include "src/util/rng.hpp"

namespace pmte {

struct KMedianOptions {
  std::size_t trees = 3;            ///< FRT samples; best result is kept
  double candidate_factor = 3.0;    ///< per-round sample size = factor·k
  std::size_t min_candidates = 8;
  /// Solve the HST DP over the flat serve::FrtIndex (default) or over the
  /// pointer-based FrtTree (the pre-serving reference, kept for the
  /// differential tests).  Results are bit-identical either way.
  bool use_flat_index = true;
};

struct KMedianResult {
  std::vector<Vertex> centers;  ///< |centers| ≤ k
  double cost = 0.0;            ///< Σ_v dist(v, centers, G)
  double tree_cost = 0.0;       ///< DP objective on the chosen tree
  std::size_t candidates = 0;   ///< |Q|
  AppQueryCounters counters;    ///< tree-walk cost, summed over all trees
};

/// Graph k-median objective Σ_v dist(v, F, G).
[[nodiscard]] double kmedian_cost(const Graph& g,
                                  const std::vector<Vertex>& centers);

/// The FRT-based approximation (Theorem 9.2).
[[nodiscard]] KMedianResult kmedian_frt(const Graph& g, std::size_t k,
                                        const KMedianOptions& opts, Rng& rng);

/// Local-search baseline (single swaps, 5-approximation in the limit);
/// `max_rounds` bounds the number of improving sweeps.
[[nodiscard]] KMedianResult kmedian_local_search(const Graph& g,
                                                 std::size_t k,
                                                 unsigned max_rounds,
                                                 Rng& rng);

/// Uniformly random centers (sanity baseline).
[[nodiscard]] KMedianResult kmedian_random(const Graph& g, std::size_t k,
                                           Rng& rng);

/// Exact weighted k-median on an FRT tree (exposed for testing):
/// clients sit at the leaves with weights, facilities may open at any leaf,
/// at most k open.  Returns chosen leaf vertices and the optimal tree cost.
struct TreeKMedian {
  std::vector<Vertex> centers;  ///< leaf vertices (tree-local ids)
  double cost = 0.0;
  AppQueryCounters counters;
};
[[nodiscard]] TreeKMedian solve_kmedian_on_tree(
    const FrtTree& tree, const std::vector<double>& leaf_weight,
    std::size_t k);

/// The same exact DP over a flat serving index of the tree.  The
/// condensation walks the index's CSR children (identical traversal
/// order), its divergence-distance table is the index's LCA-level table
/// (copied verbatim from the tree), and the DP is shared code — centers
/// and cost are bit-identical to solve_kmedian_on_tree of the source tree.
[[nodiscard]] TreeKMedian solve_kmedian_on_index(
    const serve::FrtIndex& index, const std::vector<double>& leaf_weight,
    std::size_t k);

}  // namespace pmte
