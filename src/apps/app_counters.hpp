#pragma once
// Deterministic query-path counters shared by the paper applications.
//
// The apps historically answered every tree question by climbing
// FrtTree::Node records — heap-allocated children vectors, parent chains,
// one cache miss per hop.  After the rebase onto the flat serving layer
// (serve::FrtIndex / serve::FrtEnsemble) the same questions are flat array
// reads and O(1) sparse-table LCA probes.  These counters make the switch
// auditable: they are logical-operation counts (thread-count independent,
// machine independent), emitted by the app benches' --counters modes and
// gated in CI next to the engine counters
// (scripts/check_bench_regression.py).
//
//   tree_node_visits — FrtTree::Node dereferences (pointer chases).  The
//                      flat paths keep this at exactly 0; the legacy paths
//                      report the cost the rebase removed.
//   tree_lookups     — flat node/array reads against an FrtIndex (cheap,
//                      contiguous; counted for transparency) and, for
//                      ensemble-served batches, per-tree index lookups.
//   lca_probes       — sparse-table RMQ probes (2 per O(1) LCA).

#include <cstdint>

namespace pmte {

struct AppQueryCounters {
  std::uint64_t tree_node_visits = 0;
  std::uint64_t tree_lookups = 0;
  std::uint64_t lca_probes = 0;

  AppQueryCounters& operator+=(const AppQueryCounters& o) noexcept {
    tree_node_visits += o.tree_node_visits;
    tree_lookups += o.tree_lookups;
    lca_probes += o.lca_probes;
    return *this;
  }
};

}  // namespace pmte
