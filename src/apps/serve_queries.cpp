// serve_queries — build (or load) a flat FRT-ensemble distance index and
// replay a query workload against it, reporting throughput.
//
//   ./serve_queries [--graph=gnm] [--n=4096] [--seed=42] [--trees=8]
//                   [--pipeline=oracle|direct|sequential]
//                   [--policy=min|median]
//                   [--workload=uniform|bfs_local|zipf] [--queries=200000]
//                   [--zipf-s=1.1] [--repeat=3]
//                   [--cache] [--cache-capacity=65536]
//                   [--save=FILE] [--load=FILE] [--threads=N] [--roundtrip]
//                   [--mmap] [--stretch]
//                   [--tenants=N [--batches=8] [--swap-at=BATCH]
//                    [--update-file=FILE]]
//                   [--metrics-out=FILE] [--trace-out=FILE]
//
// The embedding lifecycle end to end: sample k FRT trees (one master
// seed, split per tree), compact them into O(1)-query FrtIndex layouts,
// optionally persist/restore the whole ensemble in the versioned binary
// format, then serve batched pair queries via the parallel batch API.
// --roundtrip additionally pushes the ensemble through an in-memory
// save→load cycle and fails loudly if anything changes.
// --mmap switches the replay onto the zero-copy serving path: the
// ensemble is mapped straight from a format-v3 artefact (--load/--save
// when given, else a temp file written and unlinked on the spot), the
// load-path counters must report zero bulk bytes copied, and the mapped
// ensemble must compare equal to the built/loaded one before it takes
// over — served doubles and counters are bit-identical either way.
// --cache attaches a hot-pair cache to the replay (deterministic
// first-touch admission; served values are bit-identical to the uncached
// run, and the hit/miss counters are logical — thread-count independent).
// --stretch measures the served quality exactly against brute-force
// Dijkstra over every pair — the Kao–Lee–Wagner distance-weighted average
// stretch plus mean/max/min — and is meant for corpus-size graphs (it runs
// n Dijkstras and n²/2 queries).
//
// --tenants N switches to the many-tenant scenario (src/serve/server.hpp):
// N tenant streams with alternating zipf/uniform shapes and min/median
// policies, interleaved deterministically into --batches batches and
// served through the Server's route/execute/scatter pipeline, one hot-pair
// cache per stream.  --swap-at B builds a second ensemble (master seed
// seed+1) while the first epoch serves and stages a hot-swap of tenant 0
// that flips at the start of batch B; the drained epoch retires from the
// registry.  The final per-tenant counter table (pairs, tree lookups, LCA
// probes, cache hits/misses, result hash) is bit-identical at any thread
// count — the same quantities the CI gate pins in BENCH_server.json.
//
// --update-file FILE replays live edge-weight updates through the
// dynamic-maintenance path (docs/DYNAMIC.md): each non-comment line is
// "<batch> <edge-index> <factor>" — before serving batch <batch>, edge
// <edge-index> of the graph's canonical edge list re-weights to
// old·<factor> in a maintained DynamicEnsemble, and the fresh snapshot is
// loaded and staged to *every* tenant, so the new metric flips in at the
// batch boundary.  Requires --tenants and --pipeline=oracle.
//
// --metrics-out FILE / --trace-out FILE turn the observability layer on
// (docs/OBSERVABILITY.md) and, when the process exits, write Prometheus
// text exposition / Chrome trace-event JSON for the whole run.  Purely
// additive: enabling them never changes served doubles or counters.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/obs/obs.hpp"
#include "src/serve/dynamic_ensemble.hpp"
#include "src/serve/frt_ensemble.hpp"
#include "src/serve/hot_pair_cache.hpp"
#include "src/serve/server.hpp"
#include "src/serve/stretch_report.hpp"
#include "src/serve/workloads.hpp"
#include "src/util/cli.hpp"
#include "src/util/stats.hpp"
#include "src/util/timer.hpp"

namespace {

using namespace pmte;

serve::EnsemblePipeline parse_pipeline(const std::string& name) {
  if (name == "oracle") return serve::EnsemblePipeline::oracle;
  if (name == "direct") return serve::EnsemblePipeline::direct;
  if (name == "sequential") return serve::EnsemblePipeline::sequential;
  std::cerr << "unknown pipeline: " << name << "\n";
  std::exit(2);
}

std::string fp_hex(std::uint64_t fp) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << fp;
  return os.str();
}

/// Writes the requested exports when main() returns — through *any* exit
/// path, including the early `return 1`s — so a failed run still leaves
/// its metrics/trace behind for diagnosis.
struct ObsExportGuard {
  std::string metrics_path;
  std::string trace_path;

  ~ObsExportGuard() {
#if PMTE_OBS
    if (!metrics_path.empty()) {
      std::ofstream os(metrics_path);
      if (os) {
        obs::registry().write_prometheus(os);
        std::cout << "metrics: wrote Prometheus exposition to "
                  << metrics_path << "\n";
      } else {
        std::cerr << "cannot open " << metrics_path << " for writing\n";
      }
    }
    if (!trace_path.empty()) {
      std::ofstream os(trace_path);
      if (os) {
        obs::trace_sink().write_chrome_trace(os);
        std::cout << "trace: wrote " << obs::trace_sink().num_events()
                  << " events to " << trace_path << "\n";
      } else {
        std::cerr << "cannot open " << trace_path << " for writing\n";
      }
    }
#else
    if (!metrics_path.empty() || !trace_path.empty()) {
      std::cerr << "warning: built with PMTE_OBS=0 — "
                   "--metrics-out/--trace-out ignored\n";
    }
#endif
  }
};

/// The many-tenant scenario: N interleaved tenant streams through one
/// Server, optionally with a mid-stream epoch hot-swap of tenant 0.
int run_tenant_scenario(const Graph& g, serve::FrtEnsemble base,
                        std::uint64_t seed, const Cli& cli) {
  const auto tenants = static_cast<std::size_t>(cli.get_int("tenants", 4));
  const auto batches =
      static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("batches", 8)));
  const auto swap_at = cli.get_int("swap-at", -1);
  const auto total_queries =
      static_cast<std::size_t>(cli.get_int("queries", 200000));
  const auto cache_capacity =
      static_cast<std::size_t>(cli.get_int("cache-capacity", 4096));
  const std::size_t trees = base.num_trees();

  serve::Server server;
  const std::uint64_t fp0 = server.load(std::move(base));
  std::cout << "registry: serving ensemble " << fp_hex(fp0) << " ("
            << trees << " trees)\n";

  // Load the replacement epoch *before* any flip: the expensive build
  // happens while the old epoch still serves; the flip itself is a
  // pointer assignment at a batch boundary.
  std::uint64_t fp_next = 0;
  if (swap_at >= 0) {
    serve::EnsembleOptions opts;
    opts.trees = trees;
    opts.pipeline = parse_pipeline(cli.get("pipeline", "oracle"));
    const Timer t;
    fp_next = server.load(serve::FrtEnsemble::build(g, seed + 1, opts));
    std::cout << "registry: loaded replacement " << fp_hex(fp_next)
              << " (master seed " << seed + 1 << ") in " << t.millis()
              << " ms, old epoch still serving\n";
  }

  // --- Dynamic update replay (--update-file, docs/DYNAMIC.md). ----------
  // Each non-comment line is "<batch> <edge-index> <factor>": before
  // serving that batch, the edge re-weights to old·factor through the
  // maintained DynamicEnsemble and the fresh snapshot is staged to every
  // tenant — the new metric flips in at the batch boundary.
  struct UpdateEvent {
    std::size_t batch;
    std::size_t edge;
    double factor;
  };
  std::vector<UpdateEvent> updates;
  std::optional<serve::DynamicEnsemble> dyn;
  std::vector<WeightedEdge> edge_list;
  const auto update_path = cli.get("update-file", "");
  if (!update_path.empty()) {
    std::ifstream in(update_path);
    if (!in) {
      std::cerr << "cannot open " << update_path << "\n";
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream ls(line);
      UpdateEvent ev;
      if (ls >> ev.batch >> ev.edge >> ev.factor) {
        if (ev.factor <= 0.0 || ev.edge >= g.num_edges()) {
          std::cerr << "bad update line (want \"<batch> <edge-index> "
                       "<factor>\" with factor > 0 and a valid edge): "
                    << line << "\n";
          return 1;
        }
        updates.push_back(ev);
      }
    }
    if (cli.get("pipeline", "oracle") != std::string("oracle")) {
      std::cerr << "--update-file needs --pipeline=oracle (the dynamic "
                   "path maintains the oracle's level caches)\n";
      return 1;
    }
    serve::EnsembleOptions dopts;
    dopts.trees = trees;
    dopts.pipeline = serve::EnsemblePipeline::oracle;
    const Timer t;
    dyn.emplace(g, seed, dopts);
    edge_list = g.edge_list();
    std::cout << "dynamic: maintaining " << trees << " trees for "
              << updates.size() << " update(s), built in " << t.millis()
              << " ms\n";
  }

  // Tenant streams: alternating zipf/uniform shapes, min/median policies,
  // one hot-pair cache per stream.
  std::vector<serve::TenantStreamSpec> specs(tenants);
  for (std::size_t t = 0; t < tenants; ++t) {
    specs[t].kind = (t % 2 == 0) ? serve::WorkloadKind::zipf
                                 : serve::WorkloadKind::uniform;
    specs[t].opts.pairs = std::max<std::size_t>(1, total_queries / tenants);
    specs[t].opts.zipf_s = cli.get_double("zipf-s", 1.1);
    serve::TenantConfig cfg;
    cfg.ensemble = fp0;
    cfg.policy = ((t / 2) % 2 == 0) ? serve::AggregatePolicy::min
                                    : serve::AggregatePolicy::median;
    cfg.cache_capacity = cache_capacity;
    server.add_tenant(cfg);
  }

  const auto stream = serve::make_multi_tenant_workload(g, specs, seed);
  std::cout << tenants << " tenants, " << stream.size()
            << " interleaved queries in " << batches << " batches, "
            << num_threads() << " threads\n";

  std::vector<Weight> out;
  double total_seconds = 0.0;
  for (std::size_t b = 0; b < batches; ++b) {
    for (const auto& ev : updates) {
      if (ev.batch != b) continue;
      const WeightedEdge& e = edge_list[ev.edge];
      const Weight w_old = dyn->graph().edge_weight(e.u, e.v);
      const Weight w_new = w_old * ev.factor;
      const auto us = dyn->update(e.u, e.v, w_new);
      const std::uint64_t fp = server.load(dyn->snapshot());
      for (std::size_t ten = 0; ten < tenants; ++ten) {
        server.stage_swap(static_cast<serve::TenantId>(ten), fp);
      }
      std::cout << "batch " << b << ": update edge #" << ev.edge << " {"
                << e.u << "," << e.v << "} " << w_old << " -> " << w_new
                << (us.incremental ? " (incremental, " : " (invalidate, ")
                << us.levels_recomputed << " levels recomputed, "
                << us.levels_skipped << " skipped, " << us.trees_rebuilt
                << "/" << trees << " trees rebuilt) -> staged "
                << fp_hex(fp) << " for all tenants\n";
    }
    if (swap_at >= 0 && b == static_cast<std::size_t>(swap_at)) {
      server.stage_swap(0, fp_next);
      std::cout << "batch " << b << ": staged swap tenant 0 -> "
                << fp_hex(fp_next) << " (flips at this batch boundary)\n";
    }
    const std::size_t lo = stream.size() * b / batches;
    const std::size_t hi = stream.size() * (b + 1) / batches;
    const Timer t;
    server.serve(std::span(stream).subspan(lo, hi - lo), out);
    const double s = t.seconds();
    total_seconds += s;
    std::cout << "batch " << b << ": " << hi - lo << " queries in "
              << s * 1e3 << " ms\n";
  }
  std::cout << "total: " << stream.size() << " queries in "
            << total_seconds * 1e3 << " ms = "
            << static_cast<double>(stream.size()) / total_seconds / 1e6
            << " Mq/s; registry holds " << server.registry().size()
            << " ensemble(s), " << server.epochs_retired()
            << " epoch(s) retired\n";

  // The deterministic per-stream ledger: every column is bit-identical at
  // any thread count (the quantities BENCH_server.json gates in CI).
  std::cout << "tenant  workload  policy  epoch  pairs  tree_lookups  "
               "lca_probes  cache_hits  cache_misses  result_hash32\n";
  for (std::size_t t = 0; t < tenants; ++t) {
    const auto& c = server.counters(static_cast<serve::TenantId>(t));
    std::cout << t << "  " << serve::workload_name(specs[t].kind) << "  "
              << serve::policy_name(
                     server.tenant_config(static_cast<serve::TenantId>(t))
                         .policy)
              << "  " << c.epoch << "  " << c.pairs << "  "
              << c.tree_lookups << "  " << c.lca_probes << "  "
              << c.cache_hits << "  " << c.cache_misses << "  "
              << c.result_hash32() << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto threads = cli.get_int("threads", 0);
  if (threads > 0) set_num_threads(static_cast<int>(threads));

  // Observability opt-in: either flag switches the layer on for the whole
  // run; exports are written when main() exits (see ObsExportGuard).
  const ObsExportGuard obs_guard{cli.get("metrics-out", ""),
                                 cli.get("trace-out", "")};
  if (!obs_guard.metrics_path.empty() || !obs_guard.trace_path.empty()) {
    obs::ObsConfig cfg;
    cfg.metrics = true;
    cfg.trace = !obs_guard.trace_path.empty();
    obs::configure(cfg);
  }

  const auto family = cli.get("graph", "gnm");
  const auto n = static_cast<Vertex>(cli.get_int("n", 4096));
  const std::uint64_t seed = cli.seed(42);
  // The shared family dispatcher: a (family, n, seed) triple names the
  // same graph here, in the test fixtures, and across runs — which is
  // what makes the persisted fingerprint check on --load meaningful.
  const Graph g = make_family_graph(family, n, seed);
  std::cout << "graph: " << family << ", " << g.num_vertices()
            << " vertices, " << g.num_edges() << " edges\n";

  // --- Build or load the ensemble. ---------------------------------------
  serve::FrtEnsemble ensemble;
  const auto load_path = cli.get("load", "");
  if (!load_path.empty()) {
    std::ifstream in(load_path, std::ios::binary);
    if (!in) {
      std::cerr << "cannot open " << load_path << "\n";
      return 1;
    }
    const Timer t;
    ensemble = serve::FrtEnsemble::load(in);
    std::cout << "loaded " << ensemble.num_trees() << "-tree ensemble from "
              << load_path << " in " << t.millis() << " ms\n";
    if (ensemble.num_vertices() != g.num_vertices()) {
      std::cerr << "ensemble was built for " << ensemble.num_vertices()
                << " vertices, graph has " << g.num_vertices() << "\n";
      return 1;
    }
    // The persisted fingerprint pins the exact graph (structure + weight
    // bits); refusing a mismatch beats silently serving another graph's
    // distances.
    if (ensemble.graph_fingerprint() !=
        serve::FrtEnsemble::fingerprint(g)) {
      std::cerr << "ensemble fingerprint does not match this graph — it "
                   "was built over a different graph/seed/family\n";
      return 1;
    }
  } else {
    serve::EnsembleOptions opts;
    opts.trees = static_cast<std::size_t>(cli.get_int("trees", 8));
    opts.pipeline = parse_pipeline(cli.get("pipeline", "oracle"));
    ensemble = serve::FrtEnsemble::build(g, seed, opts);
    const auto& st = ensemble.build_stats();
    std::cout << "built " << ensemble.num_trees() << " trees ("
              << cli.get("pipeline", "oracle") << ") in "
              << st.seconds * 1e3 << " ms: " << st.index_nodes
              << " flat nodes, " << st.relaxations << " relaxations, "
              << st.work << " semiring ops\n";
  }

  const auto save_path = cli.get("save", "");
  if (!save_path.empty()) {
    std::ofstream out(save_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot open " << save_path << " for writing\n";
      return 1;
    }
    ensemble.save(out);
    std::cout << "saved ensemble to " << save_path << " ("
              << out.tellp() << " bytes)\n";
  }

  if (cli.has("roundtrip")) {
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    ensemble.save(buf);
    const auto reloaded = serve::FrtEnsemble::load(buf);
    if (!(reloaded == ensemble)) {
      std::cerr << "FATAL: save->load round-trip changed the ensemble\n";
      return 1;
    }
    std::cout << "round-trip OK (" << buf.str().size() << " bytes)\n";
  }

  // --- Zero-copy mmap serving path. --------------------------------------
  if (cli.has("mmap")) {
    // Map an existing artefact when one is on disk (--load, or the file
    // --save just wrote — both must be v3 for the mapped reader);
    // otherwise persist to a temp file named after the registry
    // fingerprint and unlink it right after mapping (POSIX keeps the
    // inode alive for the mapping's lifetime).
    std::string map_path = !load_path.empty() ? load_path : save_path;
    bool unlink_after = false;
    if (map_path.empty()) {
      map_path = "pmte_mmap_" + fp_hex(ensemble.registry_fingerprint()) +
                 ".tmp";
      std::ofstream tmp(map_path,
                        std::ios::binary | std::ios::trunc);
      if (!tmp) {
        std::cerr << "cannot open " << map_path << " for writing\n";
        return 1;
      }
      ensemble.save(tmp);
      tmp.close();
      unlink_after = true;
    }
    serve::reset_load_path_counters();
    const Timer t;
    auto mapped = serve::FrtEnsemble::load_mapped(map_path);
    const double load_ms = t.millis();
    if (unlink_after) std::remove(map_path.c_str());
    const auto& lc = serve::load_path_counters();
    std::cout << "mapped " << mapped.num_trees() << "-tree ensemble from "
              << map_path << " in " << load_ms << " ms ("
              << mapped.mapped_bytes() << " bytes mapped, "
              << lc.sections_mapped << " sections mapped, "
              << lc.sections_copied << " sections copied, "
              << lc.bulk_bytes_copied << " bulk bytes copied)\n";
    if (lc.bulk_bytes_copied != 0) {
      std::cerr << "FATAL: mapped load copied bulk array bytes — the "
                   "zero-copy contract is broken\n";
      return 1;
    }
    if (!(mapped == ensemble)) {
      std::cerr << "FATAL: mapped ensemble differs from the "
                   "built/loaded one\n";
      return 1;
    }
    ensemble = std::move(mapped);
  }

  // --- Many-tenant scenario (exclusive with the single-workload replay). --
  if (cli.get_int("tenants", 0) > 0) {
    return run_tenant_scenario(g, std::move(ensemble), seed, cli);
  }

  // --- Replay the workload. ----------------------------------------------
  serve::WorkloadOptions wopts;
  wopts.pairs = static_cast<std::size_t>(cli.get_int("queries", 200000));
  wopts.zipf_s = cli.get_double("zipf-s", 1.1);
  const auto kind = serve::parse_workload(cli.get("workload", "uniform"));
  // Stream ids ≥ 2^32 are reserved for non-tree consumers of the master
  // seed (tree slots use 0..k), so workload draws never alias tree draws.
  Rng workload_rng(split_seed(seed, std::uint64_t{1} << 32));
  const auto pairs = serve::make_workload(g, kind, wopts, workload_rng);
  const auto policy = serve::parse_policy(cli.get("policy", "min"));

  const auto repeat = std::max<std::int64_t>(1, cli.get_int("repeat", 3));
  // Caller-owned hot-pair cache: persists across the repeat loop, so
  // repeats after the first serve the hot set from the cache.
  std::optional<serve::HotPairCache> cache;
  if (cli.has("cache")) {
    cache.emplace(
        static_cast<std::size_t>(cli.get_int("cache-capacity", 65536)));
  }
  std::vector<Weight> out;
  serve::FrtEnsemble::BatchStats stats;
  double best_seconds = 0.0;
  for (std::int64_t r = 0; r < repeat; ++r) {
    const Timer t;
    stats = ensemble.query_batch(pairs, policy, out,
                                 cache ? &*cache : nullptr);
    const double s = t.seconds();
    if (r == 0 || s < best_seconds) best_seconds = s;
  }

  RunningStats dist;
  for (const Weight d : out) dist.add(d);
  const double qps = static_cast<double>(stats.pairs) / best_seconds;
  std::cout << "workload " << serve::workload_name(kind) << ", policy "
            << serve::policy_name(policy) << ": " << stats.pairs
            << " queries in " << best_seconds * 1e3 << " ms (best of "
            << repeat << ") = " << qps / 1e6 << " Mq/s, "
            << best_seconds * 1e9 / static_cast<double>(stats.pairs)
            << " ns/query, " << num_threads() << " threads\n";
  std::cout << "counters: " << stats.tree_lookups << " tree lookups, "
            << stats.lca_probes << " LCA probes\n";
  if (cache) {
    const auto& cs = cache->stats();
    std::cout << "cache (" << cache->capacity() << " slots): "
              << stats.cache_hits << " hits / " << stats.cache_misses
              << " misses last batch; cumulative " << cs.hits << " hits, "
              << cs.misses << " misses, " << cs.admissions << " admissions, "
              << cs.conflicts << " conflicts\n";
  }
  std::cout << "distances: mean " << dist.mean() << ", max " << dist.max()
            << "\n";

  if (cli.has("stretch")) {
    // Exact quality of the served values: n Dijkstras + n²/2 queries.
    const Timer t;
    const auto q = serve::measure_stretch_quality(g, ensemble, policy);
    std::cout << "stretch (exact, " << q.pairs << " pairs, policy "
              << serve::policy_name(policy) << ", " << t.millis()
              << " ms): distance-weighted avg " << q.weighted_stretch
              << ", mean " << q.mean_stretch << ", max " << q.max_stretch
              << ", min " << q.min_stretch << "\n";
    if (q.pairs > 0 && q.min_stretch < 1.0) {
      std::cerr << "FATAL: served distance below dist_G — dominance "
                   "violated\n";
      return 1;
    }
  }
  return 0;
}
