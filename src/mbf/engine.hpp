#pragma once
// The generic MBF-like iteration engine (Definition 2.11).
//
// An MBF-like algorithm is (semimodule M over semiring S, representative
// projection r, initial vector x⁽⁰⁾); h iterations compute
//     A^h(G) = r^V A^h x⁽⁰⁾  =  (r^V A)^h x⁽⁰⁾        (Corollary 2.17),
// i.e. per iteration every vertex *propagates* its state along incident
// edges, *aggregates* incoming states, and *filters* the result.
//
// The engine is templated over an Algebra policy:
//
//   struct Algebra {
//     using State = …;                       // an element of M
//     State bottom() const;                  // ⊥
//     // acc ⊕= a_{to,from} ⊙ x_from   for the edge {from,to} of weight w
//     void relax(State& acc, Weight w, Vertex from, Vertex to,
//                const State& x_from) const;
//     void filter(State& x) const;           // representative projection r
//     bool equal(const State&, const State&) const;  // for fixpoint tests
//   };
//
// The iteration is *pull-based*: vertex v starts from its own previous
// state (the adjacency diagonal is the semiring one, and 1 ⊙ x = x by
// (2.1)) and relaxes over incident edges.  Pulls write only to out[v], so
// the loop parallelises without synchronisation — this is the map of the
// paper's depth-O(1)-per-iteration propagate/aggregate phases onto OpenMP.

#include <concepts>
#include <cstdint>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/parallel/counters.hpp"
#include "src/parallel/parallel.hpp"
#include "src/util/assertions.hpp"

namespace pmte {

template <typename A>
concept MbfAlgebra = requires(const A& alg, typename A::State& acc,
                              const typename A::State& x, Weight w, Vertex u,
                              Vertex v) {
  { alg.bottom() } -> std::same_as<typename A::State>;
  { alg.relax(acc, w, u, v, x) };
  { alg.filter(acc) };
  { alg.equal(x, x) } -> std::convertible_to<bool>;
};

/// One MBF-like iteration x ↦ r^V(A x); `weight_scale` numerically scales
/// edge weights before they enter the semiring — this realises the
/// stretched matrices A_λ = (1+ε̂)^{Λ−λ} · A_G of Lemma 5.1.  With
/// `apply_filter == false` the raw product A x is returned (the framework
/// guarantees both variants are ~-equivalent, Corollary 2.17).
template <MbfAlgebra Algebra>
[[nodiscard]] std::vector<typename Algebra::State> mbf_step(
    const Graph& g, const Algebra& alg,
    const std::vector<typename Algebra::State>& x, double weight_scale = 1.0,
    bool apply_filter = true) {
  using State = typename Algebra::State;
  const Vertex n = g.num_vertices();
  PMTE_CHECK(x.size() == n, "mbf_step: state vector size mismatch");
  std::vector<State> out(n);
  parallel_for(n, [&](std::size_t vi) {
    const auto v = static_cast<Vertex>(vi);
    State acc = x[vi];  // diagonal: 1 ⊙ x_v = x_v   (2.1)
    for (const auto& e : g.neighbors(v)) {
      alg.relax(acc, e.weight * weight_scale, e.to, v, x[e.to]);
    }
    if (apply_filter) alg.filter(acc);
    out[vi] = std::move(acc);
  });
  WorkDepth::add_depth(1);
  return out;
}

/// Apply the filter r^V to every component in parallel.
template <MbfAlgebra Algebra>
void mbf_filter(const Algebra& alg,
                std::vector<typename Algebra::State>& x) {
  parallel_for(x.size(), [&](std::size_t v) { alg.filter(x[v]); });
  WorkDepth::add_depth(1);
}

/// Result of running an MBF-like algorithm to fixpoint / iteration budget.
template <typename State>
struct MbfRun {
  std::vector<State> states;
  unsigned iterations = 0;    ///< iterations actually executed
  bool reached_fixpoint = false;
};

/// Run up to `max_iterations` MBF-like iterations, stopping early at the
/// filtered fixpoint x⁽ⁱ⁺¹⁾ = x⁽ⁱ⁾ (reached after ≤ SPD(G) iterations,
/// Definition 2.11).
template <MbfAlgebra Algebra>
[[nodiscard]] MbfRun<typename Algebra::State> mbf_run(
    const Graph& g, const Algebra& alg,
    std::vector<typename Algebra::State> x0, unsigned max_iterations,
    double weight_scale = 1.0) {
  MbfRun<typename Algebra::State> run;
  mbf_filter(alg, x0);  // r^V x⁽⁰⁾ — harmless by Corollary 2.17
  run.states = std::move(x0);
  for (unsigned i = 0; i < max_iterations; ++i) {
    auto next = mbf_step(g, alg, run.states, weight_scale, /*filter=*/true);
    ++run.iterations;
    bool same = true;
    for (Vertex v = 0; v < g.num_vertices() && same; ++v) {
      same = alg.equal(next[v], run.states[v]);
    }
    run.states = std::move(next);
    if (same) {
      run.reached_fixpoint = true;
      break;
    }
  }
  return run;
}

}  // namespace pmte
