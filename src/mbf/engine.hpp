#pragma once
// The generic MBF-like iteration engine (Definition 2.11).
//
// An MBF-like algorithm is (semimodule M over semiring S, representative
// projection r, initial vector x⁽⁰⁾); h iterations compute
//     A^h(G) = r^V A^h x⁽⁰⁾  =  (r^V A)^h x⁽⁰⁾        (Corollary 2.17),
// i.e. per iteration every vertex *propagates* its state along incident
// edges, *aggregates* incoming states, and *filters* the result.
//
// The engine is templated over an Algebra policy:
//
//   struct Algebra {
//     using State = …;                       // an element of M
//     State bottom() const;                  // ⊥
//     // acc ⊕= a_{to,from} ⊙ x_from   for the edge {from,to} of weight w
//     void relax(State& acc, Weight w, Vertex from, Vertex to,
//                const State& x_from) const;
//     void filter(State& x) const;           // representative projection r
//     bool equal(const State&, const State&) const;  // for fixpoint tests
//   };
//
// == Frontier-driven iteration ==
//
// Because the adjacency diagonal is the semiring one (1 ⊙ x = x by (2.1)),
// x⁽ⁱ⁺¹⁾_v is a function of x⁽ⁱ⁾_v and the states of v's neighbours.  So v
// can only change in iteration i+1 if v itself or a neighbour changed in
// iteration i — the changed set (the *frontier*) shrinks as the iteration
// converges, and once it is empty the filtered fixpoint is reached.
// MbfEngine exploits this: each step recomputes only the vertices affected
// by the previous frontier and relaxes only edges whose source is in the
// frontier, falling back to the dense all-edges pull when the frontier is
// too large for sparsity to pay off (direction-optimizing style).
//
// Restricting relaxation to frontier sources is exact — not merely
// ~-equivalent — because every semimodule aggregation ⊕ of the framework
// is associative, commutative and idempotent, and every filter r is an
// idempotent selection: an offer w ⊙ x_u already made in an earlier
// iteration is either contained in x_v (idempotence) or was discarded by r
// in favour of entries that are still present (selection stability), so
// repeating it cannot change r(x_v ⊕ …).  All Section-3 algebras and the
// LE-list algebra (Section 7) satisfy this; an algebra that does not can
// force MbfMode::kDense.
//
// The two state vectors are double-buffered inside the engine and per-
// vertex results are committed by swapping vector elements, so steady-
// state iterations perform no allocations (state-internal buffers are
// recycled across rounds).  Frontiers are collected into per-thread
// buffers (PerThreadBuffers) and merged by sorting, which makes every
// output — states, frontiers, iteration counts, WorkDepth counters —
// bit-identical across OpenMP thread counts.

#include <concepts>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/parallel/counters.hpp"
#include "src/parallel/parallel.hpp"
#include "src/util/assertions.hpp"

namespace pmte {

template <typename A>
concept MbfAlgebra = requires(const A& alg, typename A::State& acc,
                              const typename A::State& x, Weight w, Vertex u,
                              Vertex v) {
  { alg.bottom() } -> std::same_as<typename A::State>;
  { alg.relax(acc, w, u, v, x) };
  { alg.filter(acc) };
  { alg.equal(x, x) } -> std::convertible_to<bool>;
};

/// One MBF-like iteration x ↦ r^V(A x); `weight_scale` numerically scales
/// edge weights before they enter the semiring — this realises the
/// stretched matrices A_λ = (1+ε̂)^{Λ−λ} · A_G of Lemma 5.1.  With
/// `apply_filter == false` the raw product A x is returned (the framework
/// guarantees both variants are ~-equivalent, Corollary 2.17).
///
/// This is the dense reference implementation; iterate through MbfEngine /
/// mbf_run instead when running to a fixpoint.
template <MbfAlgebra Algebra>
[[nodiscard]] std::vector<typename Algebra::State> mbf_step(
    const Graph& g, const Algebra& alg,
    const std::vector<typename Algebra::State>& x, double weight_scale = 1.0,
    bool apply_filter = true) {
  using State = typename Algebra::State;
  const Vertex n = g.num_vertices();
  PMTE_CHECK(x.size() == n, "mbf_step: state vector size mismatch");
  std::vector<State> out(n);
  parallel_for(n, [&](std::size_t vi) {
    const auto v = static_cast<Vertex>(vi);
    State acc = x[vi];  // diagonal: 1 ⊙ x_v = x_v   (2.1)
    for (const auto& e : g.neighbors(v)) {
      alg.relax(acc, e.weight * weight_scale, e.to, v, x[e.to]);
    }
    if (apply_filter) alg.filter(acc);
    out[vi] = std::move(acc);
  });
  const auto half_edges = static_cast<std::uint64_t>(2 * g.num_edges());
  WorkDepth::add_relaxations(half_edges);
  WorkDepth::add_edges_touched(half_edges);
  WorkDepth::add_depth_serial(1);
  return out;
}

/// Apply the filter r^V to every component in parallel.
template <MbfAlgebra Algebra>
void mbf_filter(const Algebra& alg,
                std::vector<typename Algebra::State>& x) {
  parallel_for(x.size(), [&](std::size_t v) { alg.filter(x[v]); });
  WorkDepth::add_depth_serial(1);
}

/// Parallel component-wise equality of two state vectors (the fixpoint
/// test, folded out of the serial scan it used to be).
template <MbfAlgebra Algebra>
[[nodiscard]] bool mbf_states_equal(
    const Algebra& alg, const std::vector<typename Algebra::State>& a,
    const std::vector<typename Algebra::State>& b) {
  PMTE_CHECK(a.size() == b.size(), "mbf_states_equal: size mismatch");
  return parallel_reduce_sum(a.size(), [&](std::size_t v) {
           return alg.equal(a[v], b[v]) ? 0.0 : 1.0;
         }) == 0.0;
}

/// Iteration mode of MbfEngine.
enum class MbfMode : std::uint8_t {
  kAuto,    ///< frontier-driven, dense fallback above the density threshold
  kDense,   ///< always the dense all-edges pull (the reference behaviour)
  /// Sparse frontier gathers regardless of density (for tests/ablation).
  /// The first round after reset() still executes as the dense pull: with
  /// every vertex in the frontier the two are the same edge set, and the
  /// dense pull skips the pointless membership tests.
  kSparse,
};

/// Tunables of MbfEngine.
struct MbfOptions {
  double weight_scale = 1.0;  ///< edge-weight prescale (Lemma 5.1)
  MbfMode mode = MbfMode::kAuto;
  /// kAuto switches to the dense pull when scanning the frontier's incident
  /// edges would touch more than this fraction of all half-edges: sparse
  /// rounds cost Σ_{v affected} deg(v) edge scans, so once the frontier
  /// covers a constant fraction of the graph the dense pull is cheaper and
  /// has no membership tests.
  double dense_fraction = 0.25;
  /// Apply r^V to x⁽⁰⁾ on construction/reset (harmless by Corollary 2.17;
  /// disable when x⁽⁰⁾ is known to be filtered already).
  bool filter_initial = true;
  /// Consumed by the oracle (mbf_oracle.hpp), ignored by MbfEngine itself:
  /// reuse the per-level engine states across H-iterations (warm restarts
  /// from cached per-level fixpoints, wholesale skips of levels whose
  /// projected input did not change).  false restores the pre-reuse
  /// behaviour — a fresh full-frontier run per level — which is kept
  /// compilable as the reference for differential tests.
  bool oracle_level_reuse = true;
};

/// Result of running an MBF-like algorithm to fixpoint / iteration budget.
template <typename State>
struct MbfRun {
  std::vector<State> states;
  unsigned iterations = 0;    ///< iterations actually executed
  bool reached_fixpoint = false;
};

/// Frontier-driven MBF-like iterator: owns the double-buffered state
/// vectors and the frontier, and advances one filtered iteration per
/// step().  States are readable between steps (states()), so callers that
/// need per-iteration accounting (CONGEST round costs, oracle levels) can
/// interleave without copying.
template <MbfAlgebra Algebra>
class MbfEngine {
 public:
  using State = typename Algebra::State;

  /// Engine with an empty (all-⊥-like, default-constructed) state vector;
  /// call reset() before stepping.  The graph and algebra must outlive the
  /// engine.
  MbfEngine(const Graph& g, const Algebra& alg, MbfOptions opts = {})
      : g_(&g), alg_(&alg), opts_(opts) {
    const Vertex n = g.num_vertices();
    cur_.resize(n);
    out_.resize(n);
    in_frontier_.assign(n, 0);
    changed_.assign(n, 0);
    frontier_all_ = false;  // nothing to do until reset()
  }

  MbfEngine(const Graph& g, const Algebra& alg, std::vector<State> x0,
            MbfOptions opts = {})
      : MbfEngine(g, alg, opts) {
    reset(std::move(x0));
  }

  /// Install a fresh x⁽⁰⁾ (must have one state per vertex) and restart the
  /// iteration with a full frontier.  Buffers are reused, so resetting an
  /// engine is cheaper than constructing one.
  void reset(std::vector<State> x0) {
    PMTE_CHECK(x0.size() == g_->num_vertices(),
               "MbfEngine: state vector size mismatch");
    cur_ = std::move(x0);
    if (opts_.filter_initial) mbf_filter(*alg_, cur_);
    frontier_.clear();
    frontier_all_ = true;
    iterations_ = 0;
  }

  /// Install x⁽⁰⁾ together with an explicit initial frontier (sorted
  /// ascending, duplicate-free) instead of the implicit all-vertices one.
  /// No initial filter is applied.  Exactness is the *caller's* contract:
  /// every state must already be filtered, and every vertex outside
  /// `frontier` must be unable to change or make a changing offer in the
  /// first step — either its state is ⊥ (⊥ offers aggregate to nothing),
  /// or the states are a fixpoint of this engine under the same weight
  /// scale and only `frontier` vertices were modified since.  "Modified"
  /// covers edge weights as well as states: every round reads e.weight
  /// live from the graph, so an in-place weight *decrease* is absorbed by
  /// putting the edge's endpoints into the frontier with their states
  /// unchanged — their offers changed, not their inputs (the dynamic
  /// update path of MbfOracle::update relies on this, docs/DYNAMIC.md).
  /// The oracle (mbf_oracle.hpp) uses all three shapes: support-seeded
  /// level starts, warm restarts from cached per-level fixpoints, and
  /// post-update endpoint-seeded restarts.
  void reset_with_frontier(std::vector<State> x0,
                           std::vector<Vertex> frontier) {
    PMTE_CHECK(x0.size() == g_->num_vertices(),
               "MbfEngine: state vector size mismatch");
    cur_ = std::move(x0);
    frontier_ = std::move(frontier);
    frontier_all_ = false;
    iterations_ = 0;
  }

  /// Change the weight prescale for subsequent steps (the oracle reuses
  /// one engine across the per-level matrices A_λ).
  void set_weight_scale(double s) noexcept { opts_.weight_scale = s; }

  /// One filtered iteration x ↦ r^V(A x).  Returns true iff any state
  /// changed; false means the filtered fixpoint was already reached.
  bool step() {
    if (at_fixpoint()) return false;
    const Vertex n = g_->num_vertices();
    const auto half_edges = static_cast<std::uint64_t>(2 * g_->num_edges());

    bool dense = frontier_all_ || opts_.mode == MbfMode::kDense;
    if (!dense && opts_.mode == MbfMode::kAuto) {
      // Degrees are integers < 2^53: the double sum is exact, hence the
      // threshold decision is deterministic across thread counts.
      const double frontier_deg = parallel_reduce_sum(
          frontier_.size(),
          [&](std::size_t i) {
            return static_cast<double>(g_->degree(frontier_[i]));
          });
      dense = frontier_deg + static_cast<double>(frontier_.size()) >
              opts_.dense_fraction *
                  static_cast<double>(half_edges + n);
    }

    if (dense) {
      dense_round();
    } else {
      sparse_round();
    }
    WorkDepth::add_depth_serial(1);
    ++iterations_;
    frontier_all_ = false;
    frontier_.swap(next_frontier_);
    return !frontier_.empty();
  }

  /// True once step() can no longer change any state.
  [[nodiscard]] bool at_fixpoint() const noexcept {
    return !frontier_all_ && frontier_.empty();
  }

  [[nodiscard]] const std::vector<State>& states() const noexcept {
    return cur_;
  }

  /// Move the states out (the engine needs reset() afterwards).
  [[nodiscard]] std::vector<State> take_states() noexcept {
    frontier_.clear();
    frontier_all_ = false;
    return std::move(cur_);
  }

  /// Vertices whose state changed in the last step (sorted ascending).
  /// Before the first step every vertex is implicitly in the frontier.
  [[nodiscard]] const std::vector<Vertex>& frontier() const noexcept {
    return frontier_;
  }

  [[nodiscard]] std::size_t frontier_size() const noexcept {
    return frontier_all_ ? cur_.size() : frontier_.size();
  }

  [[nodiscard]] unsigned iterations() const noexcept { return iterations_; }

 private:
  // Full pull: recompute every vertex from all incident edges, folding the
  // fixpoint equality test into the same parallel loop (no serial scan).
  void dense_round() {
    const Vertex n = g_->num_vertices();
    const double scale = opts_.weight_scale;
    parallel_for_balanced(
        n, [&](std::size_t vi) { return g_->degree(static_cast<Vertex>(vi)); },
        [&](std::size_t vi) {
          const auto v = static_cast<Vertex>(vi);
          State& acc = out_[vi];
          acc = cur_[vi];  // diagonal: 1 ⊙ x_v = x_v   (2.1)
          for (const auto& e : g_->neighbors(v)) {
            alg_->relax(acc, e.weight * scale, e.to, v, cur_[e.to]);
          }
          alg_->filter(acc);
          changed_[vi] = alg_->equal(acc, cur_[vi]) ? 0 : 1;
        });
    const auto half_edges = static_cast<std::uint64_t>(2 * g_->num_edges());
    WorkDepth::add_relaxations(half_edges);
    WorkDepth::add_edges_touched(half_edges);

    buffers_.clear();
    parallel_for(n, [&](std::size_t vi) {
      if (changed_[vi]) buffers_.local().push_back(static_cast<Vertex>(vi));
    });
    buffers_.drain_sorted(next_frontier_);
    commit();
  }

  // Sparse gather: only vertices adjacent to (or in) the frontier can
  // change, and only offers from frontier sources can change them.
  void sparse_round() {
    const double scale = opts_.weight_scale;

    parallel_for(frontier_.size(),
                 [&](std::size_t i) { in_frontier_[frontier_[i]] = 1; });

    // affected = frontier ∪ N(frontier), sorted+deduped so the gather
    // order (and hence the counters) is canonical.
    buffers_.clear();
    parallel_for(frontier_.size(), [&](std::size_t i) {
      const Vertex u = frontier_[i];
      auto& buf = buffers_.local();
      buf.push_back(u);
      for (const auto& e : g_->neighbors(u)) buf.push_back(e.to);
    });
    buffers_.drain_sorted_unique(affected_);

    parallel_for_balanced(
        affected_.size(), [&](std::size_t i) { return g_->degree(affected_[i]); },
        [&](std::size_t i) {
          const Vertex v = affected_[i];
          State& acc = out_[v];
          acc = cur_[v];
          std::uint64_t relaxed = 0;
          for (const auto& e : g_->neighbors(v)) {
            if (in_frontier_[e.to]) {
              alg_->relax(acc, e.weight * scale, e.to, v, cur_[e.to]);
              ++relaxed;
            }
          }
          alg_->filter(acc);
          changed_[v] = alg_->equal(acc, cur_[v]) ? 0 : 1;
          WorkDepth::add_relaxations(relaxed);
          WorkDepth::add_edges_touched(
              static_cast<std::uint64_t>(g_->degree(v)));
        });

    parallel_for(frontier_.size(),
                 [&](std::size_t i) { in_frontier_[frontier_[i]] = 0; });

    buffers_.clear();
    parallel_for(affected_.size(), [&](std::size_t i) {
      const Vertex v = affected_[i];
      if (changed_[v]) buffers_.local().push_back(v);
    });
    buffers_.drain_sorted(next_frontier_);
    commit();
  }

  // Publish the recomputed states of changed vertices by swapping the
  // per-vertex buffers: cur_[v] receives the new state, out_[v] keeps the
  // old one whose capacity the next round recycles.
  void commit() {
    parallel_for(next_frontier_.size(), [&](std::size_t i) {
      const Vertex v = next_frontier_[i];
      std::swap(cur_[v], out_[v]);
    });
  }

  const Graph* g_;
  const Algebra* alg_;
  MbfOptions opts_;
  std::vector<State> cur_;   // x⁽ⁱ⁾
  std::vector<State> out_;   // recompute buffer / previous states
  std::vector<Vertex> frontier_;       // changed in the last step (sorted)
  std::vector<Vertex> next_frontier_;  // being built by the current step
  std::vector<Vertex> affected_;       // frontier ∪ N(frontier)
  std::vector<std::uint8_t> in_frontier_;
  std::vector<std::uint8_t> changed_;
  PerThreadBuffers<Vertex> buffers_;
  bool frontier_all_ = false;  // before the first step after reset()
  unsigned iterations_ = 0;
};

/// Run up to `max_iterations` MBF-like iterations, stopping early at the
/// filtered fixpoint x⁽ⁱ⁺¹⁾ = x⁽ⁱ⁾ (reached after ≤ SPD(G) iterations,
/// Definition 2.11).  Frontier-driven: per iteration only edges incident
/// to the changed set are relaxed (dense fallback per `mode`).
template <MbfAlgebra Algebra>
[[nodiscard]] MbfRun<typename Algebra::State> mbf_run(
    const Graph& g, const Algebra& alg,
    std::vector<typename Algebra::State> x0, unsigned max_iterations,
    double weight_scale = 1.0, MbfMode mode = MbfMode::kAuto) {
  MbfEngine<Algebra> engine(
      g, alg, std::move(x0),
      MbfOptions{.weight_scale = weight_scale, .mode = mode});
  MbfRun<typename Algebra::State> run;
  for (unsigned i = 0; i < max_iterations; ++i) {
    const bool changed = engine.step();
    ++run.iterations;
    if (!changed) {
      run.reached_fixpoint = true;
      break;
    }
  }
  run.states = engine.take_states();
  return run;
}

}  // namespace pmte
