#pragma once
// Concrete MBF-like algebras: the policy objects plugged into mbf_step /
// mbf_run.  Each corresponds to one of the paper's example instantiations
// (Section 3) or to the LE-list algorithm (Section 7, see src/frt).

#include <algorithm>
#include <vector>

#include "src/algebra/distance_map.hpp"
#include "src/algebra/path_set.hpp"
#include "src/algebra/semiring.hpp"
#include "src/algebra/width_map.hpp"
#include "src/mbf/engine.hpp"
#include "src/util/types.hpp"

namespace pmte {

/// M = Smin,+ viewed as a semimodule over itself: plain scalar distances.
/// With a distance cap this is the anonymous "forest fire" detector of
/// Example 3.7; with cap = ∞ it is single-source MBF (Example 3.3).
struct ScalarDistanceAlgebra {
  using State = Weight;

  Weight cap = inf_weight();  ///< filter: discard states beyond this radius

  [[nodiscard]] State bottom() const { return inf_weight(); }

  void relax(State& acc, Weight w, Vertex /*from*/, Vertex /*to*/,
             const State& x_from) const {
    acc = MinPlus::plus(acc, MinPlus::times(w, x_from));
    WorkDepth::add_work(1);
  }

  void aggregate(State& acc, const State& y) const {
    acc = MinPlus::plus(acc, y);
  }

  void filter(State& x) const {
    if (x > cap) x = inf_weight();
  }

  [[nodiscard]] bool equal(const State& a, const State& b) const {
    return a == b;
  }
};

/// M = D over Smin,+ with the source-detection filter (Example 3.2):
/// keep at most k entries, each within distance `max_dist`, smallest
/// (dist, key) first.  k = n, max_dist = ∞ degenerates to plain
/// multi-source distance maps: APSP (Ex. 3.5), k-SSP (Ex. 3.4),
/// MSSP (Ex. 3.6) are parametrisations of this algebra.
struct SourceDetectionAlgebra {
  using State = DistanceMap;

  std::size_t k = static_cast<std::size_t>(-1);
  Weight max_dist = inf_weight();

  [[nodiscard]] State bottom() const { return DistanceMap{}; }

  void relax(State& acc, Weight w, Vertex /*from*/, Vertex /*to*/,
             const State& x_from) const {
    acc.merge_min(x_from, w);
  }

  void aggregate(State& acc, const State& y) const { acc.merge_min(y); }

  void filter(State& x) const {
    if (is_finite(max_dist)) x.drop_beyond(max_dist);
    x.keep_k_smallest(k);
  }

  [[nodiscard]] bool equal(const State& a, const State& b) const {
    return a == b;
  }
};

/// M = W over Smax,min: widest paths (Section 3.2, Examples 3.13–3.15).
struct WidestPathAlgebra {
  using State = WidthMap;

  [[nodiscard]] State bottom() const { return WidthMap{}; }

  void relax(State& acc, Weight w, Vertex /*from*/, Vertex /*to*/,
             const State& x_from) const {
    acc.merge_max(x_from, w);
    WorkDepth::add_work(x_from.size() + 1);
  }

  void aggregate(State& acc, const State& y) const { acc.merge_max(y); }

  void filter(State& /*x*/) const {}

  [[nodiscard]] bool equal(const State& a, const State& b) const {
    return a == b;
  }
};

/// M = B^V over the Boolean semiring: h-hop reachability (Example 3.25).
/// States are sorted vertex sets.
struct ReachabilityAlgebra {
  using State = std::vector<Vertex>;  // sorted set of reached sources

  [[nodiscard]] State bottom() const { return {}; }

  void relax(State& acc, Weight /*w*/, Vertex /*from*/, Vertex /*to*/,
             const State& x_from) const {
    // acc ∨= x_from  (edge weight plays no role over B)
    State merged;
    merged.reserve(acc.size() + x_from.size());
    std::set_union(acc.begin(), acc.end(), x_from.begin(), x_from.end(),
                   std::back_inserter(merged));
    acc = std::move(merged);
    WorkDepth::add_work(acc.size());
  }

  void aggregate(State& acc, const State& y) const {
    relax(acc, 0.0, 0, 0, y);
  }

  void filter(State& /*x*/) const {}

  [[nodiscard]] bool equal(const State& a, const State& b) const {
    return a == b;
  }
};

/// M = Pmin,+ over itself with the k-SDP / k-DSDP filter (Section 3.3,
/// Examples 3.23–3.24).  Exponential without filtering — the filter is what
/// makes it tractable, exactly the framework's point.
struct KsdpAlgebra {
  using State = PathSet;

  Vertex target = 0;
  std::size_t k = 1;
  bool distinct_weights = false;

  [[nodiscard]] State bottom() const { return PathSet::zero(); }

  void relax(State& acc, Weight w, Vertex from, Vertex to,
             const State& x_from) const {
    // a_{to,from} = {(to,from) ↦ w}  (Equation (3.18))
    const PathSet edge = PathSet::single(VertexPath{{to, from}}, w);
    acc = acc.plus(edge.times(x_from));
    WorkDepth::add_work(x_from.size() + 1);
  }

  void aggregate(State& acc, const State& y) const { acc = acc.plus(y); }

  void filter(State& x) const {
    x = x.filter_k_shortest(target, k, distinct_weights);
  }

  [[nodiscard]] bool equal(const State& a, const State& b) const {
    return a == b;
  }
};

static_assert(MbfAlgebra<ScalarDistanceAlgebra>);
static_assert(MbfAlgebra<SourceDetectionAlgebra>);
static_assert(MbfAlgebra<WidestPathAlgebra>);
static_assert(MbfAlgebra<ReachabilityAlgebra>);
static_assert(MbfAlgebra<KsdpAlgebra>);

}  // namespace pmte
