#pragma once
// User-facing wrappers for the MBF-like algorithm collection of Section 3.
// Each function assembles (algebra, x⁽⁰⁾, h) per the corresponding example
// and runs the generic engine.  They double as reference users of the
// public API and as test subjects against classical baselines.

#include <span>
#include <vector>

#include "src/algebra/distance_map.hpp"
#include "src/algebra/path_set.hpp"
#include "src/algebra/width_map.hpp"
#include "src/graph/graph.hpp"

namespace pmte {

/// SSSP (Example 3.3): h-hop distances dist^h(source, ·, G).
/// h defaults to n−1 (the fixpoint, i.e. exact distances).
[[nodiscard]] std::vector<Weight> mbf_sssp(const Graph& g, Vertex source,
                                           unsigned hops = ~0U);

/// Source detection (Example 3.2): for every vertex the k smallest
/// (dist^h(v,s), s) with s ∈ sources and dist ≤ max_dist.
/// Keys of the returned maps are source vertex ids.
[[nodiscard]] std::vector<DistanceMap> mbf_source_detection(
    const Graph& g, std::span<const Vertex> sources, unsigned hops,
    std::size_t k, Weight max_dist = inf_weight());

/// k-SSP (Example 3.4): the k closest vertices for every vertex.
[[nodiscard]] std::vector<DistanceMap> mbf_kssp(const Graph& g, std::size_t k,
                                                unsigned hops = ~0U);

/// APSP (Example 3.5): n×n row-major h-hop distance matrix.
[[nodiscard]] std::vector<Weight> mbf_apsp(const Graph& g,
                                           unsigned hops = ~0U);

/// Forest fire (Example 3.7): which vertices are within distance d of a
/// burning vertex, via the anonymous scalar semimodule.
struct ForestFire {
  std::vector<bool> alarmed;
  std::vector<Weight> dist;  ///< distance to the nearest fire (∞ if > d)
};
[[nodiscard]] ForestFire mbf_forest_fire(const Graph& g,
                                         std::span<const Vertex> burning,
                                         Weight d);

/// SSWP (Example 3.13): h-hop widest-path widths from `source`.
[[nodiscard]] std::vector<Weight> mbf_sswp(const Graph& g, Vertex source,
                                           unsigned hops = ~0U);

/// APWP (Example 3.14): n×n row-major h-hop widest-path matrix,
/// width^h(v,w,G); diagonal ∞ by convention (3.10).
[[nodiscard]] std::vector<Weight> mbf_apwp(const Graph& g,
                                           unsigned hops = ~0U);

/// MSWP (Example 3.15): widest-path widths to each source.
[[nodiscard]] std::vector<WidthMap> mbf_mswp(const Graph& g,
                                             std::span<const Vertex> sources,
                                             unsigned hops = ~0U);

/// k-SDP / k-DSDP (Examples 3.23/3.24): per vertex the k (distinct-)shortest
/// v→target paths with weights.
[[nodiscard]] std::vector<PathSet> mbf_ksdp(const Graph& g, Vertex target,
                                            std::size_t k,
                                            unsigned hops = ~0U,
                                            bool distinct_weights = false);

/// h-hop connectivity (Example 3.25): per vertex the set of `sources`
/// reachable within h hops.  Works on disconnected graphs.
[[nodiscard]] std::vector<std::vector<Vertex>> mbf_reachability(
    const Graph& g, std::span<const Vertex> sources, unsigned hops);

}  // namespace pmte
