#include "src/mbf/algorithms.hpp"

#include <algorithm>

#include "src/mbf/algebras.hpp"
#include "src/mbf/engine.hpp"
#include "src/util/assertions.hpp"

namespace pmte {

namespace {

unsigned clamp_hops(const Graph& g, unsigned hops) {
  const unsigned fix = g.num_vertices() == 0 ? 0 : g.num_vertices() - 1;
  return std::min(hops, std::max(fix, 1U));
}

}  // namespace

std::vector<Weight> mbf_sssp(const Graph& g, Vertex source, unsigned hops) {
  PMTE_CHECK(source < g.num_vertices(), "mbf_sssp: source out of range");
  ScalarDistanceAlgebra alg;
  std::vector<Weight> x0(g.num_vertices(), inf_weight());
  x0[source] = 0.0;
  auto run = mbf_run(g, alg, std::move(x0), clamp_hops(g, hops));
  return run.states;
}

std::vector<DistanceMap> mbf_source_detection(const Graph& g,
                                              std::span<const Vertex> sources,
                                              unsigned hops, std::size_t k,
                                              Weight max_dist) {
  SourceDetectionAlgebra alg{.k = k, .max_dist = max_dist};
  std::vector<DistanceMap> x0(g.num_vertices());
  for (Vertex s : sources) {
    PMTE_CHECK(s < g.num_vertices(), "source out of range");
    x0[s] = DistanceMap::singleton(s, 0.0);
  }
  auto run = mbf_run(g, alg, std::move(x0), clamp_hops(g, hops));
  return run.states;
}

std::vector<DistanceMap> mbf_kssp(const Graph& g, std::size_t k,
                                  unsigned hops) {
  std::vector<Vertex> all(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) all[v] = v;
  return mbf_source_detection(g, all, hops, k);
}

std::vector<Weight> mbf_apsp(const Graph& g, unsigned hops) {
  const Vertex n = g.num_vertices();
  auto maps = mbf_kssp(g, static_cast<std::size_t>(-1), hops);
  std::vector<Weight> dist(static_cast<std::size_t>(n) * n, inf_weight());
  for (Vertex v = 0; v < n; ++v) {
    for (const auto& e : maps[v].entries()) {
      dist[static_cast<std::size_t>(v) * n + e.key] = e.dist;
    }
  }
  return dist;
}

ForestFire mbf_forest_fire(const Graph& g, std::span<const Vertex> burning,
                           Weight d) {
  ScalarDistanceAlgebra alg{.cap = d};
  std::vector<Weight> x0(g.num_vertices(), inf_weight());
  for (Vertex v : burning) {
    PMTE_CHECK(v < g.num_vertices(), "burning vertex out of range");
    x0[v] = 0.0;
  }
  auto run = mbf_run(g, alg, std::move(x0), clamp_hops(g, ~0U));
  ForestFire out;
  out.dist = std::move(run.states);
  out.alarmed.resize(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    out.alarmed[v] = is_finite(out.dist[v]);
  return out;
}

namespace {

/// Scalar widest-path algebra: M = Smax,min over itself (Example 3.13).
struct ScalarWidthAlgebra {
  using State = Weight;
  [[nodiscard]] State bottom() const { return 0.0; }
  void relax(State& acc, Weight w, Vertex, Vertex, const State& x) const {
    acc = MaxMin::plus(acc, MaxMin::times(w, x));
  }
  void filter(State&) const {}
  [[nodiscard]] bool equal(const State& a, const State& b) const {
    return a == b;
  }
};

}  // namespace

std::vector<Weight> mbf_sswp(const Graph& g, Vertex source, unsigned hops) {
  PMTE_CHECK(source < g.num_vertices(), "mbf_sswp: source out of range");
  ScalarWidthAlgebra alg;
  std::vector<Weight> x0(g.num_vertices(), 0.0);
  x0[source] = inf_weight();  // width of the trivial path (3.10)
  auto run = mbf_run(g, alg, std::move(x0), clamp_hops(g, hops));
  return run.states;
}

std::vector<WidthMap> mbf_mswp(const Graph& g, std::span<const Vertex> sources,
                               unsigned hops) {
  WidestPathAlgebra alg;
  std::vector<WidthMap> x0(g.num_vertices());
  for (Vertex s : sources) {
    PMTE_CHECK(s < g.num_vertices(), "source out of range");
    x0[s] = WidthMap::singleton(s, inf_weight());
  }
  auto run = mbf_run(g, alg, std::move(x0), clamp_hops(g, hops));
  return run.states;
}

std::vector<Weight> mbf_apwp(const Graph& g, unsigned hops) {
  const Vertex n = g.num_vertices();
  std::vector<Vertex> all(n);
  for (Vertex v = 0; v < n; ++v) all[v] = v;
  auto maps = mbf_mswp(g, all, hops);
  std::vector<Weight> width(static_cast<std::size_t>(n) * n, 0.0);
  for (Vertex v = 0; v < n; ++v) {
    for (const auto& e : maps[v].entries())
      width[static_cast<std::size_t>(v) * n + e.key] = e.width;
  }
  return width;
}

std::vector<PathSet> mbf_ksdp(const Graph& g, Vertex target, std::size_t k,
                              unsigned hops, bool distinct_weights) {
  PMTE_CHECK(target < g.num_vertices(), "mbf_ksdp: target out of range");
  KsdpAlgebra alg{.target = target, .k = k, .distinct_weights = distinct_weights};
  std::vector<PathSet> x0;
  x0.reserve(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    x0.push_back(PathSet::single(VertexPath{{v}}, 0.0));  // (3.19)
  }
  auto run = mbf_run(g, alg, std::move(x0), clamp_hops(g, hops));
  return run.states;
}

std::vector<std::vector<Vertex>> mbf_reachability(
    const Graph& g, std::span<const Vertex> sources, unsigned hops) {
  ReachabilityAlgebra alg;
  std::vector<std::vector<Vertex>> x0(g.num_vertices());
  for (Vertex s : sources) {
    PMTE_CHECK(s < g.num_vertices(), "source out of range");
    x0[s] = {s};
  }
  auto run = mbf_run(g, alg, std::move(x0), clamp_hops(g, hops));
  return run.states;
}

}  // namespace pmte
