#include "src/hopset/hopset.hpp"

#include <algorithm>
#include <cmath>

#include "src/graph/shortest_paths.hpp"
#include "src/mbf/algorithms.hpp"
#include "src/parallel/parallel.hpp"
#include "src/util/assertions.hpp"

namespace pmte {

HopSet build_hub_hopset(const Graph& g, HubHopSetParams params, Rng& rng) {
  const Vertex n = g.num_vertices();
  PMTE_CHECK(n >= 1, "hop set needs a non-empty graph");
  HopSet hs;
  hs.method = "hub";
  hs.epsilon = 0.0;

  unsigned d0 = params.window;
  if (d0 == 0) {
    d0 = static_cast<unsigned>(
        std::ceil(std::sqrt(static_cast<double>(n) *
                            std::log(std::max<double>(n, 2)))));
  }
  d0 = std::max(1U, std::min(d0, n));
  hs.d = std::max(2 * d0, 1U);

  const double ln_n = std::log(std::max<double>(n, 2));
  const double p = std::min(1.0, params.sampling_constant * ln_n /
                                     static_cast<double>(d0));
  std::vector<Vertex> hubs;
  for (Vertex v = 0; v < n; ++v) {
    if (rng.flip(p)) hubs.push_back(v);
  }
  if (hubs.empty()) hubs.push_back(static_cast<Vertex>(rng.below(n)));
  if (params.max_hubs > 0 && hubs.size() > params.max_hubs) {
    shuffle(hubs.begin(), hubs.end(), rng);
    hubs.resize(params.max_hubs);
    std::sort(hubs.begin(), hubs.end());
  }
  hs.num_hubs = hubs.size();

  // Exact distances from every hub; hub↔hub shortcuts preserve distances
  // exactly (an edge of weight dist(a,b) can never shorten a path).
  std::vector<std::vector<Weight>> hub_dist(hubs.size());
  parallel_for(hubs.size(), [&](std::size_t i) {
    hub_dist[i] = dijkstra(g, hubs[i]).dist;
  });
  for (std::size_t i = 0; i < hubs.size(); ++i) {
    for (std::size_t j = i + 1; j < hubs.size(); ++j) {
      const Weight d = hub_dist[i][hubs[j]];
      if (is_finite(d) && d > 0.0) {
        hs.edges.push_back(WeightedEdge{hubs[i], hubs[j], d});
      }
    }
  }
  return hs;
}

HopSet build_exact_hopset(const Graph& g) {
  const Vertex n = g.num_vertices();
  HopSet hs;
  hs.method = "exact";
  hs.d = 1;
  hs.epsilon = 0.0;
  hs.num_hubs = n;
  std::vector<std::vector<Weight>> dist(n);
  parallel_for(n, [&](std::size_t v) {
    dist[v] = dijkstra(g, static_cast<Vertex>(v)).dist;
  });
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      if (is_finite(dist[u][v]) && dist[u][v] > 0.0) {
        hs.edges.push_back(WeightedEdge{u, v, dist[u][v]});
      }
    }
  }
  return hs;
}

HopSet build_trivial_hopset(const Graph& g) {
  HopSet hs;
  hs.method = "trivial";
  hs.d = g.num_vertices() > 0 ? g.num_vertices() - 1 : 0;
  hs.d = std::max(hs.d, 1U);
  hs.epsilon = 0.0;
  return hs;
}

double measure_hopset_stretch(const Graph& g, const HopSet& hopset,
                              std::size_t sample_sources, Rng& rng) {
  const Vertex n = g.num_vertices();
  if (n == 0) return 1.0;
  const Graph gp = hopset.apply(g);
  std::vector<Vertex> sources;
  if (sample_sources >= n) {
    sources.resize(n);
    for (Vertex v = 0; v < n; ++v) sources[v] = v;
  } else {
    for (std::size_t i = 0; i < sample_sources; ++i)
      sources.push_back(static_cast<Vertex>(rng.below(n)));
    std::sort(sources.begin(), sources.end());
    sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  }
  std::vector<double> worst(sources.size(), 1.0);
  parallel_for(sources.size(), [&](std::size_t i) {
    const Vertex s = sources[i];
    const auto exact = dijkstra(g, s).dist;
    // dist^d(s,·,G') through the frontier-driven engine: identical values
    // to d-hop Bellman-Ford, but only edges incident to the shrinking
    // changed set are relaxed per round.
    const auto hop = mbf_sssp(gp, s, hopset.d);
    double w = 1.0;
    for (Vertex v = 0; v < n; ++v) {
      if (v == s || !is_finite(exact[v]) || exact[v] <= 0.0) continue;
      w = std::max(w, hop[v] / exact[v]);
    }
    worst[i] = w;
  });
  return *std::max_element(worst.begin(), worst.end());
}

}  // namespace pmte
