#pragma once
// (d, ε̂)-hop sets (Equation (1.3)).
//
// A hop set for G is a set of extra weighted edges E' such that in
// G' = G + E' every distance is (1+ε̂)-approximated by a d-hop path:
//     dist^d(v, w, G') ≤ (1 + ε̂) · dist(v, w, G)   for all v, w.
//
// The paper uses Cohen's construction [13] as a black box.  We substitute
// the *hub hop set* (see DESIGN.md §3): sample each vertex as a hub with
// probability min(1, c·ln n / d0), connect all hub pairs by shortcut edges
// carrying exact distances (computed by parallel Dijkstras).  W.h.p. every
// min-hop shortest path visits a hub within any window of d0 consecutive
// vertices, hence d = 2·d0 hops suffice and ε̂ = 0.  Trade-off relative to
// Cohen: to keep the shortcut clique near-linear one chooses
// d0 ≈ √(n·ln n), i.e. d ∈ Θ̃(√n) instead of polylog — everything
// downstream (Sections 4–7) is agnostic to this, as the paper notes.

#include <cstddef>
#include <string>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/util/rng.hpp"

namespace pmte {

/// A constructed hop set: the extra edges plus its certified parameters.
struct HopSet {
  std::vector<WeightedEdge> edges;  ///< shortcut edges to add to G
  unsigned d = 1;                   ///< certified hop bound
  double epsilon = 0.0;             ///< certified stretch slack ε̂
  std::size_t num_hubs = 0;
  std::string method;

  /// G' = G + E'.
  [[nodiscard]] Graph apply(const Graph& g) const { return g.augmented(edges); }
};

struct HubHopSetParams {
  /// Hitting-window length d0; 0 → auto ⌈√(n·ln n)⌉ (near-linear clique).
  unsigned window = 0;
  /// Oversampling constant c in the hub probability c·ln(n)/d0.
  double sampling_constant = 2.0;
  /// Hard cap on the number of hubs (0 = none); guards against parameter
  /// choices that would produce a quadratic shortcut clique.
  std::size_t max_hubs = 0;
};

/// Build a hub hop set for connected G.  ε̂ = 0, d = 2·window (w.h.p.).
[[nodiscard]] HopSet build_hub_hopset(const Graph& g, HubHopSetParams params,
                                      Rng& rng);

/// Exhaustive exact hop set: an edge per connected vertex pair (full APSP),
/// making d = 1, ε̂ = 0.  Θ(n²) size — test/baseline use only.
[[nodiscard]] HopSet build_exact_hopset(const Graph& g);

/// The empty hop set: d = n−1, ε̂ = 0 (G itself).  Baseline.
[[nodiscard]] HopSet build_trivial_hopset(const Graph& g);

/// Empirical validation of (1.3): returns the maximum over sampled vertex
/// pairs of dist^d(v,w,G') / dist(v,w,G).  Values ≤ 1+ε̂ certify the hop
/// set on the sample; exact when sample_sources == n.
[[nodiscard]] double measure_hopset_stretch(const Graph& g,
                                            const HopSet& hopset,
                                            std::size_t sample_sources,
                                            Rng& rng);

}  // namespace pmte
