#pragma once
// Versioned binary (de)serialisation for the serving layer.
//
// The format is deliberately dumb: an 8-byte magic string, a u32 format
// version, then length-prefixed flat arrays written as raw bytes.  Doubles
// round-trip bit-exactly (the differential suites pin save→load→query
// identity), and fixed-width integer types keep the layout unambiguous.
// Byte order is the native one; a u32 probe word after the magic rejects
// files from a machine of the opposite endianness instead of silently
// mis-reading them.  Bumping kFormatVersion invalidates old files — the
// reader refuses anything it does not understand rather than guessing.
//
// The normative byte-level specification (field order, rejection rules,
// version history) lives in docs/FORMAT.md; keep the two in sync when
// changing anything here or in FrtIndex/FrtEnsemble::save.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/util/types.hpp"

namespace pmte::serve {

/// Format version shared by all serving-layer artefacts (index, ensemble).
/// History (docs/FORMAT.md):
///   1 — initial layout (PR 4).
///   2 — FrtIndex grew the per-level parent-edge-weight table
///       (edge_weight_by_level, appended after dist_by_lca_level) so the
///       apps' flat tree walks never consult FrtTree.  v1 files are
///       refused, not migrated.
inline constexpr std::uint32_t kFormatVersion = 2;

/// Endianness probe written after each magic; reads back differently when
/// the producing machine's byte order does not match.
inline constexpr std::uint32_t kEndianProbe = 0x01020304U;

inline constexpr char kIndexMagic[8] = {'P', 'M', 'T', 'E', 'I', 'D', 'X', '1'};
inline constexpr char kEnsembleMagic[8] = {'P', 'M', 'T', 'E', 'E', 'N', 'S', '1'};

/// Registry fingerprint of a serving artefact: 64-bit FNV-1a over the
/// words of its serialized v2 prelude — the 16-byte header (magic bytes,
/// endian probe, format version) followed by the identity words that open
/// the payload (for an ensemble: master seed, graph fingerprint, tree
/// count).  Two artefacts share a fingerprint iff they agree on artefact
/// kind, format version, source graph, master seed, and tree count — the
/// exact tuple that makes a deterministic build reproducible — so the
/// fingerprint is a content identity, not a file hash: it is the same
/// whether the ensemble was just built or reloaded from disk.  The
/// many-tenant server keys its EnsembleRegistry on this value
/// (src/serve/server.hpp); docs/FORMAT.md documents the derivation.
/// Callers pass the identity words in serialized order.
[[nodiscard]] std::uint64_t registry_fingerprint(
    const char (&magic)[8], std::uint64_t master_seed,
    std::uint64_t graph_fingerprint, std::uint64_t tree_count) noexcept;

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os) : os_(os) {}

  void magic(const char (&m)[8]);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void vec_u32(const std::vector<std::uint32_t>& v);
  void vec_f64(const std::vector<double>& v);

 private:
  void bytes(const void* data, std::size_t n);
  std::ostream& os_;
};

/// Reader with hard validation: every primitive read PMTE_CHECKs that the
/// stream still has bytes; magic/probe/version mismatches throw.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& is) : is_(is) {}

  void expect_magic(const char (&m)[8]);
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::vector<std::uint32_t> vec_u32();
  [[nodiscard]] std::vector<double> vec_f64();

 private:
  void bytes(void* data, std::size_t n);
  /// Reject a length prefix that cannot fit in the remaining stream
  /// *before* allocating for it (a corrupt length must fail like a
  /// truncation, not as a multi-gigabyte bad_alloc).
  void check_capacity(std::uint64_t n, std::size_t elem_size);
  std::istream& is_;
};

}  // namespace pmte::serve
