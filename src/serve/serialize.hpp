#pragma once
// Versioned binary (de)serialisation for the serving layer.
//
// The format is deliberately dumb: an 8-byte magic string, a u32 format
// version, then length-prefixed flat arrays written as raw bytes.  Doubles
// round-trip bit-exactly (the differential suites pin save→load→query
// identity), and fixed-width integer types keep the layout unambiguous.
// Byte order is the native one; a u32 probe word after the magic rejects
// files from a machine of the opposite endianness instead of silently
// mis-reading them.  Bumping kFormatVersion invalidates old files — the
// reader refuses anything it does not understand rather than guessing.
//
// Since v3 every array payload is aligned to a 64-byte file offset (the
// length prefix is followed by zero padding).  That buys the zero-copy
// path: MappedFile mmaps an artefact and MappedReader returns spans that
// point straight into the mapping — cache-line- (and therefore element-)
// aligned, so FrtIndex can serve off the file image without copying a
// byte.  v2 files (unpadded) stay readable through the stream reader;
// the mmap path requires v3.
//
// The normative byte-level specification (field order, alignment rules,
// rejection rules, version history) lives in docs/FORMAT.md; keep the two
// in sync when changing anything here or in FrtIndex/FrtEnsemble::save.

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/util/types.hpp"

namespace pmte::serve {

/// Format version shared by all serving-layer artefacts (index, ensemble).
/// History (docs/FORMAT.md):
///   1 — initial layout (PR 4).
///   2 — FrtIndex grew the per-level parent-edge-weight table
///       (edge_weight_by_level, appended after dist_by_lca_level) so the
///       apps' flat tree walks never consult FrtTree.  v1 files are
///       refused, not migrated.
///   3 — every vec payload is preceded by zero padding to a 64-byte file
///       offset, enabling the zero-copy mmap load path.  Field order and
///       values are unchanged; v2 files remain readable (stream path).
inline constexpr std::uint32_t kFormatVersion = 3;

/// Oldest version the stream reader still accepts.  v2 differs from v3
/// only by the absence of section padding, so one reader serves both.
inline constexpr std::uint32_t kMinFormatVersion = 2;

/// File-offset alignment of every vec payload since v3.  One cache line,
/// and a multiple of every element size we serialise — mmap returns
/// page-aligned bases, so a 64-byte file offset is a 64-byte address.
inline constexpr std::size_t kSectionAlign = 64;

/// Endianness probe written after each magic; reads back differently when
/// the producing machine's byte order does not match.
inline constexpr std::uint32_t kEndianProbe = 0x01020304U;

inline constexpr char kIndexMagic[8] = {'P', 'M', 'T', 'E', 'I', 'D', 'X', '1'};
inline constexpr char kEnsembleMagic[8] = {'P', 'M', 'T', 'E', 'E', 'N', 'S', '1'};

/// Registry fingerprint of a serving artefact: 64-bit FNV-1a over the
/// words of its serialized prelude — the 16-byte header (magic bytes,
/// endian probe, format version) followed by the identity words that open
/// the payload (for an ensemble: master seed, graph fingerprint, tree
/// count).  Two artefacts share a fingerprint iff they agree on artefact
/// kind, format version, source graph, master seed, and tree count — the
/// exact tuple that makes a deterministic build reproducible — so the
/// fingerprint is a content identity, not a file hash: it is the same
/// whether the ensemble was just built or reloaded from disk.  The magic
/// bytes fold as an explicitly little-endian word, so the value is
/// host-independent (test_server pins it).  The many-tenant server keys
/// its EnsembleRegistry on this value (src/serve/server.hpp);
/// docs/FORMAT.md documents the derivation.  Callers pass the identity
/// words in serialized order.
[[nodiscard]] std::uint64_t registry_fingerprint(
    const char (&magic)[8], std::uint64_t master_seed,
    std::uint64_t graph_fingerprint, std::uint64_t tree_count) noexcept;

/// Deterministic accounting of the load path: how many vec-section payload
/// bytes were memcpy'd into owned storage versus served straight from a
/// mapping.  A mapped load of the five bulk FrtIndex arrays must report
/// zero copied bytes — bench_serve emits these counters and the CI gate
/// pins them (BENCH_serve.json).  Process-wide and NOT synchronised: loads
/// are single-threaded, reset before measuring.
struct LoadPathCounters {
  std::uint64_t bulk_bytes_copied = 0;  ///< vec payload bytes copied
  std::uint64_t sections_copied = 0;    ///< vec sections read by copy
  std::uint64_t sections_mapped = 0;    ///< vec sections served zero-copy
};
[[nodiscard]] LoadPathCounters& load_path_counters() noexcept;
void reset_load_path_counters() noexcept;

/// Owned-or-mapped read-only array.  The serving indices store their
/// persisted arrays through this: a loaded-by-copy (or freshly built)
/// section owns a vector; a mapped section views the file image and owns
/// nothing.  Copying always deep-copies into owned storage (so copies
/// never dangle when a mapping goes away); moving preserves the view
/// (std::vector's move keeps the heap buffer alive).  Equality compares
/// contents, mirroring the vector semantics it replaces.
template <typename T>
class ArraySection {
 public:
  ArraySection() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): vector is the natural source
  ArraySection(std::vector<T> own) noexcept
      : own_(std::move(own)), view_(own_) {}

  /// A section viewing externally owned memory (the caller keeps the
  /// backing mapping alive for the section's lifetime).
  [[nodiscard]] static ArraySection mapped(std::span<const T> view) noexcept {
    ArraySection s;
    s.view_ = view;
    return s;
  }

  ArraySection(const ArraySection& o) : own_(o.begin(), o.end()), view_(own_) {}
  ArraySection& operator=(const ArraySection& o) {
    if (this != &o) {
      own_.assign(o.begin(), o.end());
      view_ = own_;
    }
    return *this;
  }
  ArraySection(ArraySection&& o) noexcept
      : own_(std::move(o.own_)), view_(o.view_) {
    o.view_ = {};
    o.own_.clear();
  }
  ArraySection& operator=(ArraySection&& o) noexcept {
    if (this != &o) {
      own_ = std::move(o.own_);
      view_ = o.view_;
      o.view_ = {};
      o.own_.clear();
    }
    return *this;
  }
  ~ArraySection() = default;

  [[nodiscard]] std::span<const T> view() const noexcept { return view_; }
  // NOLINTNEXTLINE(google-explicit-constructor): sections read as spans
  operator std::span<const T>() const noexcept { return view_; }
  [[nodiscard]] const T* data() const noexcept { return view_.data(); }
  [[nodiscard]] std::size_t size() const noexcept { return view_.size(); }
  [[nodiscard]] bool empty() const noexcept { return view_.empty(); }
  [[nodiscard]] const T& operator[](std::size_t i) const { return view_[i]; }
  [[nodiscard]] const T& front() const { return view_.front(); }
  [[nodiscard]] const T* begin() const noexcept { return view_.data(); }
  [[nodiscard]] const T* end() const noexcept {
    return view_.data() + view_.size();
  }
  /// Whether the section views memory it does not own (a file mapping).
  [[nodiscard]] bool is_mapped() const noexcept {
    return view_.data() != nullptr && view_.data() != own_.data();
  }

  friend bool operator==(const ArraySection& a, const ArraySection& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }

 private:
  std::vector<T> own_;
  std::span<const T> view_;
};

class BinaryWriter {
 public:
  /// Writes `version` headers and, for version ≥ 3, section padding.
  /// Writing an old version is supported only down to kMinFormatVersion
  /// (compatibility fixtures; production writers use the default).  The
  /// writer must start at the artefact's first byte: padding is computed
  /// from the bytes written so far, so artefacts meant for mmap must
  /// start at file offset 0.
  explicit BinaryWriter(std::ostream& os,
                        std::uint32_t version = kFormatVersion);

  void magic(const char (&m)[8]);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void vec_u32(std::span<const std::uint32_t> v);
  void vec_f64(std::span<const double> v);
  void vec_u32(std::initializer_list<std::uint32_t> v) {
    vec_u32(std::span<const std::uint32_t>(v.begin(), v.size()));
  }
  void vec_f64(std::initializer_list<double> v) {
    vec_f64(std::span<const double>(v.begin(), v.size()));
  }

  /// Bytes written since construction (= offset within the artefact).
  [[nodiscard]] std::uint64_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }

 private:
  void bytes(const void* data, std::size_t n);
  /// Zero-fill up to the next kSectionAlign boundary (version ≥ 3).
  void pad_to_section();
  std::ostream& os_;
  std::uint64_t pos_ = 0;
  std::uint32_t version_;
};

/// Reader with hard validation: every primitive read PMTE_CHECKs that the
/// stream still has bytes; magic/probe/version mismatches throw.  The
/// remaining stream size is probed ONCE at construction (one tellg/seekg
/// round-trip for the whole load, not one per array) and tracked against a
/// running position from then on; corrupt length prefixes are rejected
/// before any allocation.  Accepts versions kMinFormatVersion through
/// kFormatVersion; all magics within one artefact must agree on the
/// version.  Like the writer, construct it at the artefact's first byte.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& is);

  void expect_magic(const char (&m)[8]);
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::vector<std::uint32_t> vec_u32();
  [[nodiscard]] std::vector<double> vec_f64();

  /// Format version of the artefact (0 until the first expect_magic).
  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }

 private:
  void bytes(void* data, std::size_t n);
  /// Consume padding up to the next kSectionAlign boundary (version ≥ 3).
  void skip_section_padding();
  /// Reject a length prefix that cannot fit in the remaining stream
  /// *before* allocating for it (a corrupt length must fail like a
  /// truncation, not as a multi-gigabyte bad_alloc).
  void check_capacity(std::uint64_t n, std::size_t elem_size);
  std::istream& is_;
  std::uint64_t pos_ = 0;        ///< bytes consumed since construction
  std::uint64_t remaining_ = 0;  ///< bytes from construction to stream end
  bool size_known_ = false;      ///< false on non-seekable streams
  std::uint32_t version_ = 0;    ///< pinned by the first expect_magic
};

/// RAII read-only file mapping (POSIX mmap; on platforms without it the
/// file is read into an aligned heap buffer instead, preserving the API at
/// the cost of the copy).  The mapped address stays valid across moves —
/// spans into the mapping survive as long as some MappedFile owns it.
class MappedFile {
 public:
  MappedFile() = default;
  /// Map `path` read-only; throws (PMTE_CHECK) on open/map failure or an
  /// empty file.
  explicit MappedFile(const std::string& path);
  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& o) noexcept;
  MappedFile& operator=(MappedFile&& o) noexcept;

  [[nodiscard]] const std::byte* data() const noexcept {
    return static_cast<const std::byte*>(addr_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {data(), size_};
  }

 private:
  void unmap() noexcept;
  void* addr_ = nullptr;
  std::size_t size_ = 0;
  std::vector<std::byte> fallback_;  ///< non-POSIX: owned aligned copy
};

/// Zero-copy reader over a mapped (or in-memory) artefact image.  Scalar
/// reads memcpy a few bytes; view_u32/view_f64 return spans pointing
/// straight into the buffer and copy nothing.  Requires format v3 — only
/// v3 guarantees the 64-byte payload alignment the views rely on — and a
/// 64-byte-aligned base (mmap's page alignment always satisfies this).
/// The caller keeps the backing memory alive for as long as the returned
/// views are in use.
class MappedReader {
 public:
  explicit MappedReader(std::span<const std::byte> image);

  void expect_magic(const char (&m)[8]);
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::span<const std::uint32_t> view_u32();
  [[nodiscard]] std::span<const double> view_f64();

  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }
  [[nodiscard]] std::uint64_t pos() const noexcept { return pos_; }

 private:
  void bytes(void* data, std::size_t n);
  void skip_section_padding();
  const std::byte* base_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  std::uint32_t version_ = 0;
};

}  // namespace pmte::serve
