#include "src/serve/stretch_report.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/graph/shortest_paths.hpp"
#include "src/parallel/parallel.hpp"
#include "src/util/assertions.hpp"

namespace pmte::serve {

StretchQuality measure_stretch_quality(const Graph& g,
                                       const FrtEnsemble& ensemble,
                                       AggregatePolicy policy) {
  const Vertex n = g.num_vertices();
  PMTE_CHECK(ensemble.num_vertices() == n,
             "stretch report: ensemble/graph vertex count mismatch");

  // One row per source u: exact Dijkstra distances, served batch over the
  // pairs (u, v > u), and serially-accumulated row statistics.  Rows are
  // independent (parallel); the cross-row fold below is serial and in
  // ascending u, so every sum has a fixed accumulation order.
  struct Row {
    double sum_exact = 0.0;
    double sum_served = 0.0;
    double sum_ratio = 0.0;
    double max_ratio = 0.0;
    double min_ratio = inf_weight();
    std::size_t pairs = 0;
  };
  std::vector<Row> rows(n);
  parallel_for(n, [&](std::size_t ui) {
    const auto u = static_cast<Vertex>(ui);
    const auto sp = dijkstra(g, u);
    std::vector<std::pair<Vertex, Vertex>> pairs;
    std::vector<Vertex> targets;
    pairs.reserve(n - u);
    for (Vertex v = u + 1; v < n; ++v) {
      if (!is_finite(sp.dist[v]) || sp.dist[v] <= 0.0) continue;
      pairs.emplace_back(u, v);
      targets.push_back(v);
    }
    std::vector<Weight> served;
    (void)ensemble.query_batch(pairs, policy, served);
    Row& r = rows[ui];
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const double exact = sp.dist[targets[i]];
      const double ratio = served[i] / exact;
      r.sum_exact += exact;
      r.sum_served += served[i];
      r.sum_ratio += ratio;
      r.max_ratio = std::max(r.max_ratio, ratio);
      r.min_ratio = std::min(r.min_ratio, ratio);
      ++r.pairs;
    }
  }, /*grain=*/1);

  StretchQuality q;
  double sum_ratio = 0.0;
  double min_ratio = inf_weight();
  for (const Row& r : rows) {
    q.pairs += r.pairs;
    q.sum_exact += r.sum_exact;
    q.sum_served += r.sum_served;
    sum_ratio += r.sum_ratio;
    q.max_stretch = std::max(q.max_stretch, r.max_ratio);
    min_ratio = std::min(min_ratio, r.min_ratio);
  }
  if (q.pairs > 0) {
    q.weighted_stretch = q.sum_served / q.sum_exact;
    q.mean_stretch = sum_ratio / static_cast<double>(q.pairs);
    q.min_stretch = min_ratio;
  }
  return q;
}

}  // namespace pmte::serve
