#pragma once
// Shard-per-tenant routing of interleaved multi-tenant query streams.
//
// The many-tenant server (server.hpp) receives one interleaved stream of
// (tenant, u, v) queries per batch.  Correctness and determinism require
// that each tenant's queries execute *in their stream order* against that
// tenant's state (its epoch's ensemble, its hot-pair cache), while
// throughput requires that independent tenants execute concurrently.
// TenantRouter separates the two concerns:
//
//   Routing     — route() is a SERIAL classification pass over the batch:
//                 each query is appended to its tenant's shard (pairs in
//                 tenant-stream order) together with its batch position.
//                 Serial by design, exactly like HotPairCache admission:
//                 shard contents become a pure function of the query
//                 sequence, never of thread interleaving.
//   Shards      — one TenantShard per tenant, owned by the router and
//                 reused across batches (steady state allocates nothing
//                 beyond high-water growth).  The shard also carries the
//                 per-batch outputs and BatchStats its executor fills in.
//   Scatter     — scatter() writes each shard's outputs back to the
//                 original interleaved positions, serially.
//
// The router never touches an ensemble or a cache: execution belongs to
// the server, which runs one shard per task under parallel_for_balanced.
// Thread-safety: route()/scatter() are serial-phase only; between them,
// distinct shards may be filled concurrently (disjoint state).

#include <cstdint>
#include <span>
#include <vector>

#include "src/serve/frt_ensemble.hpp"
#include "src/util/types.hpp"

namespace pmte::serve {

/// Numeric tenant handle (dense, assigned by Server::add_tenant in order).
using TenantId = std::uint32_t;

/// One query of an interleaved multi-tenant stream.
struct TenantQuery {
  TenantId tenant = 0;
  Vertex u = 0;
  Vertex v = 0;
};

/// Per-tenant slice of one batch.  `pairs[j]` came from batch position
/// `positions[j]`, and j increases in tenant-stream order; `out` and
/// `stats` are filled by the executor (Server::serve) after route().
struct TenantShard {
  std::vector<std::pair<Vertex, Vertex>> pairs;
  std::vector<std::uint32_t> positions;
  std::vector<Weight> out;
  FrtEnsemble::BatchStats stats;
};

class TenantRouter {
 public:
  TenantRouter() = default;

  /// Size the router for `tenants` shards (existing shard buffers keep
  /// their capacity).  Serial-phase only.
  void reset(std::uint32_t tenants);

  [[nodiscard]] std::uint32_t num_tenants() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }

  /// Serial classification pass: split `batch` into per-tenant shards,
  /// preserving each tenant's stream order.  PMTE_CHECKs that every
  /// tenant id is < num_tenants().  Clears previous shard contents
  /// (capacity retained) and resets each shard's stats.
  void route(std::span<const TenantQuery> batch);

  /// Shard of tenant `t` (valid until the next route()/reset()).
  [[nodiscard]] TenantShard& shard(TenantId t) { return shards_[t]; }
  [[nodiscard]] const TenantShard& shard(TenantId t) const {
    return shards_[t];
  }

  /// Scatter every shard's outputs back into interleaved batch order:
  /// out[positions[j]] = shard.out[j].  `out` must already be sized to the
  /// routed batch; each shard's out must match its pairs.  Serial-phase
  /// only (after the executors finished).
  void scatter(std::vector<Weight>& out) const;

 private:
  std::vector<TenantShard> shards_;
};

}  // namespace pmte::serve
