#include "src/serve/server.hpp"

#include <algorithm>

#include "src/parallel/parallel.hpp"
#include "src/util/assertions.hpp"

namespace pmte::serve {

std::uint64_t EnsembleRegistry::add(FrtEnsemble e) {
  const std::uint64_t fp = e.registry_fingerprint();
  const auto it = entries_.find(fp);
  if (it != entries_.end()) {
    PMTE_CHECK(*it->second == e,
               "EnsembleRegistry::add: fingerprint collision between "
               "different ensembles (same build identity, different "
               "content)");
    return fp;
  }
  entries_.emplace(fp, std::make_shared<const FrtEnsemble>(std::move(e)));
  return fp;
}

std::shared_ptr<const FrtEnsemble> EnsembleRegistry::find(
    std::uint64_t fingerprint) const {
  const auto it = entries_.find(fingerprint);
  return it == entries_.end() ? nullptr : it->second;
}

std::vector<std::uint64_t> EnsembleRegistry::fingerprints() const {
  std::vector<std::uint64_t> fps;
  fps.reserve(entries_.size());
  for (const auto& [fp, e] : entries_) fps.push_back(fp);
  return fps;
}

TenantId Server::add_tenant(const TenantConfig& cfg) {
  Tenant t;
  t.cfg = cfg;
  t.ensemble = registry_.find(cfg.ensemble);
  PMTE_CHECK(t.ensemble != nullptr,
             "Server::add_tenant: ensemble fingerprint not registered");
  t.fingerprint = cfg.ensemble;
  if (cfg.cache_capacity > 0) t.cache.emplace(cfg.cache_capacity);
  tenants_.push_back(std::move(t));
  return static_cast<TenantId>(tenants_.size() - 1);
}

void Server::stage_swap(TenantId t, std::uint64_t fingerprint) {
  PMTE_CHECK(t < tenants_.size(), "Server::stage_swap: no such tenant");
  tenants_[t].staged = fingerprint;
  tenants_[t].has_staged = true;
}

void Server::apply_staged_swaps() {
  std::vector<std::uint64_t> swapped_out;
  for (auto& ten : tenants_) {
    if (!ten.has_staged) continue;
    auto next = registry_.find(ten.staged);
    PMTE_CHECK(next != nullptr,
               "Server::serve: staged swap targets an unregistered "
               "ensemble fingerprint");
    swapped_out.push_back(ten.fingerprint);
    ten.ensemble = std::move(next);
    ten.fingerprint = ten.staged;
    ten.has_staged = false;
    // A new epoch is a new stream: the cache restarts empty (its salt is
    // bound to the old ensemble's identity anyway, so carrying entries
    // over could only produce conflicts, never hits).  The tenant's
    // cumulative ledger is unaffected — every batch folds its admission /
    // conflict counts into TenantCounters before any reset can happen, so
    // pre-swap contributions are never lost.
    if (ten.cache) ten.cache->clear();
    ++ten.counters.epoch;
  }
  // Retire drained epochs: a swapped-out fingerprint no tenant serves any
  // more leaves the registry.  Only fingerprints that were actually
  // flipped away from are candidates — ensembles loaded for a future swap
  // are never collected out from under the operator.
  std::sort(swapped_out.begin(), swapped_out.end());
  swapped_out.erase(std::unique(swapped_out.begin(), swapped_out.end()),
                    swapped_out.end());
  for (const std::uint64_t fp : swapped_out) {
    bool referenced = false;
    for (const auto& ten : tenants_) referenced |= ten.fingerprint == fp;
    if (!referenced && registry_.erase(fp)) ++retired_;
  }
}

void Server::serve(std::span<const TenantQuery> batch,
                   std::vector<Weight>& out) {
  apply_staged_swaps();
  if (router_.num_tenants() != tenants_.size()) {
    router_.reset(static_cast<std::uint32_t>(tenants_.size()));
  }
  router_.route(batch);

  // Parallel shard execution: one task per tenant, cost-balanced by the
  // shard's aggregate volume.  Each tenant's query_batch detects the
  // enclosing region and runs serially, so its outputs, cache state, and
  // counters depend only on its own stream — never on which thread ran
  // the shard or how many tenants share the batch.  (With a single
  // tenant no region opens and query_batch parallelises internally —
  // bit-identical either way by its own contract.)
  const std::size_t nt = tenants_.size();
  parallel_for_balanced(
      nt,
      [&](std::size_t t) {
        return router_.shard(static_cast<TenantId>(t)).pairs.size() *
               tenants_[t].ensemble->num_trees();
      },
      [&](std::size_t t) {
        auto& shard = router_.shard(static_cast<TenantId>(t));
        if (shard.pairs.empty()) return;
        auto& ten = tenants_[t];
        shard.stats = ten.ensemble->query_batch(
            shard.pairs, ten.cfg.policy, shard.out,
            ten.cache ? &*ten.cache : nullptr);
      });

  out.assign(batch.size(), 0.0);
  router_.scatter(out);

  // Serial counter fold, tenant id order: cumulative logical counts plus
  // the running FNV-1a over this tenant's served doubles in stream order.
  for (std::size_t t = 0; t < nt; ++t) {
    const auto& shard = router_.shard(static_cast<TenantId>(t));
    if (shard.pairs.empty()) continue;
    auto& c = tenants_[t].counters;
    ++c.batches;
    c.pairs += shard.stats.pairs;
    c.tree_lookups += shard.stats.tree_lookups;
    c.lca_probes += shard.stats.lca_probes;
    c.cache_hits += shard.stats.cache_hits;
    c.cache_misses += shard.stats.cache_misses;
    c.cache_admissions += shard.stats.cache_admissions;
    c.cache_conflicts += shard.stats.cache_conflicts;
    for (const Weight w : shard.out) {
      std::uint64_t bits;
      std::memcpy(&bits, &w, sizeof(bits));
      c.result_hash64 = fnv1a_fold(c.result_hash64, bits);
    }
  }
}

}  // namespace pmte::serve
