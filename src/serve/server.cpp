#include "src/serve/server.hpp"

#include <algorithm>

#include "src/parallel/parallel.hpp"
#include "src/util/assertions.hpp"

namespace pmte::serve {

#if PMTE_OBS
namespace {

/// Server-wide instruments, bound once on first use (the registry returns
/// stable references for the process lifetime).
struct ServerObs {
  obs::Counter& swaps;
  obs::Gauge& ensembles;
  obs::Gauge& tenants;
};

ServerObs& server_obs() {
  auto& reg = obs::registry();
  static ServerObs o{
      reg.counter("pmte_server_epoch_swaps_total", {},
                  "Tenant epoch hot-swaps applied at batch boundaries"),
      reg.gauge("pmte_registry_ensembles", {},
                "Ensembles resident in the registry"),
      reg.gauge("pmte_server_tenants", {}, "Tenant streams registered"),
  };
  return o;
}

}  // namespace

void Server::ensure_tenant_obs() {
  auto& reg = obs::registry();
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    Tenant& ten = tenants_[t];
    if (ten.obs.batches != nullptr) continue;
    const obs::Labels labels{{"tenant", std::to_string(t)}};
    ten.obs.batches =
        &reg.counter("pmte_server_batches_total", labels,
                     "Batches carrying at least one query for this tenant");
    ten.obs.pairs = &reg.counter("pmte_server_pairs_total", labels,
                                 "Query pairs served for this tenant");
    ten.obs.shard_pairs =
        &reg.histogram("pmte_server_shard_pairs", labels,
                       "Per-batch shard size in pairs (logical value — "
                       "deterministic bucket counts)");
    ten.obs.shard_ns =
        &reg.histogram("pmte_server_shard_duration_ns", labels,
                       "Per-batch shard execution wall time in ns "
                       "(informational, never gated)");
  }
  server_obs().ensembles.set(static_cast<std::int64_t>(registry_.size()));
  server_obs().tenants.set(static_cast<std::int64_t>(tenants_.size()));
}
#endif  // PMTE_OBS

std::uint64_t EnsembleRegistry::add(FrtEnsemble e) {
  const std::uint64_t fp = e.registry_fingerprint();
  const auto it = entries_.find(fp);
  if (it != entries_.end()) {
    PMTE_CHECK(*it->second == e,
               "EnsembleRegistry::add: fingerprint collision between "
               "different ensembles (same build identity, different "
               "content)");
    return fp;
  }
  entries_.emplace(fp, std::make_shared<const FrtEnsemble>(std::move(e)));
  return fp;
}

std::shared_ptr<const FrtEnsemble> EnsembleRegistry::find(
    std::uint64_t fingerprint) const {
  const auto it = entries_.find(fingerprint);
  return it == entries_.end() ? nullptr : it->second;
}

std::vector<std::uint64_t> EnsembleRegistry::fingerprints() const {
  std::vector<std::uint64_t> fps;
  fps.reserve(entries_.size());
  for (const auto& [fp, e] : entries_) fps.push_back(fp);
  return fps;
}

TenantId Server::add_tenant(const TenantConfig& cfg) {
  Tenant t;
  t.cfg = cfg;
  t.ensemble = registry_.find(cfg.ensemble);
  PMTE_CHECK(t.ensemble != nullptr,
             "Server::add_tenant: ensemble fingerprint not registered");
  t.fingerprint = cfg.ensemble;
  if (cfg.cache_capacity > 0) t.cache.emplace(cfg.cache_capacity);
  tenants_.push_back(std::move(t));
  return static_cast<TenantId>(tenants_.size() - 1);
}

void Server::stage_swap(TenantId t, std::uint64_t fingerprint) {
  PMTE_CHECK(t < tenants_.size(), "Server::stage_swap: no such tenant");
  tenants_[t].staged = fingerprint;
  tenants_[t].has_staged = true;
}

void Server::apply_staged_swaps() {
  std::vector<std::uint64_t> swapped_out;
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    Tenant& ten = tenants_[t];
    if (!ten.has_staged) continue;
    PMTE_OBS_SPAN("server.swap", static_cast<std::int64_t>(t), "tenant");
    PMTE_OBS_ONLY(if (obs::metrics_on()) server_obs().swaps.add(1));
    auto next = registry_.find(ten.staged);
    PMTE_CHECK(next != nullptr,
               "Server::serve: staged swap targets an unregistered "
               "ensemble fingerprint");
    swapped_out.push_back(ten.fingerprint);
    ten.ensemble = std::move(next);
    ten.fingerprint = ten.staged;
    ten.has_staged = false;
    // A new epoch is a new stream: the cache restarts empty (its salt is
    // bound to the old ensemble's identity anyway, so carrying entries
    // over could only produce conflicts, never hits).  The tenant's
    // cumulative ledger is unaffected — every batch folds its admission /
    // conflict counts into TenantCounters before any reset can happen, so
    // pre-swap contributions are never lost.
    if (ten.cache) ten.cache->clear();
    ++ten.counters.epoch;
  }
  // Retire drained epochs: a swapped-out fingerprint no tenant serves any
  // more leaves the registry.  Only fingerprints that were actually
  // flipped away from are candidates — ensembles loaded for a future swap
  // are never collected out from under the operator.
  std::sort(swapped_out.begin(), swapped_out.end());
  swapped_out.erase(std::unique(swapped_out.begin(), swapped_out.end()),
                    swapped_out.end());
  for (const std::uint64_t fp : swapped_out) {
    bool referenced = false;
    for (const auto& ten : tenants_) referenced |= ten.fingerprint == fp;
    if (!referenced && registry_.erase(fp)) ++retired_;
  }
}

void Server::serve(std::span<const TenantQuery> batch,
                   std::vector<Weight>& out) {
  PMTE_OBS_SPAN("server.serve", static_cast<std::int64_t>(batch.size()),
                "batch");
  {
    PMTE_OBS_SPAN("server.flip");
    apply_staged_swaps();
  }
#if PMTE_OBS
  if (obs::metrics_on()) ensure_tenant_obs();
#endif
  {
    PMTE_OBS_SPAN("server.route", static_cast<std::int64_t>(batch.size()),
                  "batch");
    if (router_.num_tenants() != tenants_.size()) {
      router_.reset(static_cast<std::uint32_t>(tenants_.size()));
    }
    router_.route(batch);
  }

  // Parallel shard execution: one task per tenant, cost-balanced by the
  // shard's aggregate volume.  Each tenant's query_batch detects the
  // enclosing region and runs serially, so its outputs, cache state, and
  // counters depend only on its own stream — never on which thread ran
  // the shard or how many tenants share the batch.  (With a single
  // tenant no region opens and query_batch parallelises internally —
  // bit-identical either way by its own contract.)
  const std::size_t nt = tenants_.size();
  {
    PMTE_OBS_SPAN("server.execute", static_cast<std::int64_t>(nt),
                  "tenants");
    parallel_for_balanced(
        nt,
        [&](std::size_t t) {
          return router_.shard(static_cast<TenantId>(t)).pairs.size() *
                 tenants_[t].ensemble->num_trees();
        },
        [&](std::size_t t) {
          auto& shard = router_.shard(static_cast<TenantId>(t));
          if (shard.pairs.empty()) return;
          auto& ten = tenants_[t];
          PMTE_OBS_SPAN("server.shard", static_cast<std::int64_t>(t),
                        "tenant", ten.obs.shard_ns);
          shard.stats = ten.ensemble->query_batch(
              shard.pairs, ten.cfg.policy, shard.out,
              ten.cache ? &*ten.cache : nullptr);
        });
  }

  {
    PMTE_OBS_SPAN("server.scatter");
    out.assign(batch.size(), 0.0);
    router_.scatter(out);
  }

  // Serial counter fold, tenant id order: cumulative logical counts plus
  // the running FNV-1a over this tenant's served doubles in stream order.
  PMTE_OBS_SPAN("server.fold");
  PMTE_OBS_ONLY(const bool obs_metrics = obs::metrics_on());
  for (std::size_t t = 0; t < nt; ++t) {
    const auto& shard = router_.shard(static_cast<TenantId>(t));
    if (shard.pairs.empty()) continue;
    auto& c = tenants_[t].counters;
    ++c.batches;
    c.pairs += shard.stats.pairs;
    c.tree_lookups += shard.stats.tree_lookups;
    c.lca_probes += shard.stats.lca_probes;
    c.cache_hits += shard.stats.cache_hits;
    c.cache_misses += shard.stats.cache_misses;
    c.cache_admissions += shard.stats.cache_admissions;
    c.cache_conflicts += shard.stats.cache_conflicts;
    for (const Weight w : shard.out) {
      std::uint64_t bits;
      std::memcpy(&bits, &w, sizeof(bits));
      c.result_hash64 = fnv1a_fold(c.result_hash64, bits);
    }
    PMTE_OBS_ONLY(if (obs_metrics && tenants_[t].obs.batches != nullptr) {
      tenants_[t].obs.batches->add(1);
      tenants_[t].obs.pairs->add(shard.stats.pairs);
      tenants_[t].obs.shard_pairs->record(shard.stats.pairs);
    });
  }
}

}  // namespace pmte::serve
