#pragma once
// Many-tenant resident serving core: ensemble registry, per-tenant query
// streams, epoch-based hot-swap.
//
// serve_queries (PR 4/5) replayed one workload against one ensemble; the
// north-star traffic is many independent *tenants* — each with its own
// ensemble (Blelloch–Gu–Sun motivates serving many independently built
// embeddings side by side), its own aggregation policy, and its own
// hot-pair cache — interleaved in one query stream.  Server carries that
// traffic in three deterministic phases per batch:
//
//   Flip        — staged epoch swaps apply at the batch boundary (serial):
//                 the tenant's ensemble pointer moves to the staged
//                 registry entry, its cache resets (a fresh stream epoch),
//                 and any swapped-out ensemble no tenant references any
//                 more is retired from the registry.  Load/build of the
//                 replacement happens *before* the flip, while the old
//                 epoch serves — the flip itself is a pointer assignment.
//   Route       — a serial classification pass (TenantRouter) splits the
//                 interleaved batch into per-tenant shards, preserving
//                 each tenant's stream order.
//   Execute     — shards run in parallel via parallel_for_balanced (cost =
//                 shard pairs × that tenant's tree count); inside a shard,
//                 the tenant's FrtEnsemble::query_batch runs serially (it
//                 detects the enclosing region), so each tenant's outputs,
//                 cache evolution, and counters are a pure function of its
//                 own query subsequence.  Results scatter back to
//                 interleaved positions and counters fold in tenant id
//                 order, serially.
//
// Determinism contract (per stream): for every tenant, the served doubles,
// the cumulative counters, and the running result hash are bit-identical
// at any thread count and any tenant interleaving — they depend only on
// the tenant's own (ensemble epoch sequence, query subsequence).  A swap
// staged at batch boundary B is equivalent to serially replaying the
// tenant's queries before B against the old ensemble (fresh cache) and the
// queries from B on against the new one (fresh cache) — pinned by
// test_server.cpp at 1/2/8 threads and gated in BENCH_server.json.
//
// Thread-safety: Server is externally synchronised — one serve() at a
// time, and load/add_tenant/stage_swap only between batches (the epoch
// lifecycle is documented in docs/SERVING.md).  The *ensembles* are
// immutable and shared; it is the per-tenant caches and counters that make
// the server single-writer.

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/obs/obs.hpp"
#include "src/serve/frt_ensemble.hpp"
#include "src/serve/hot_pair_cache.hpp"
#include "src/serve/tenant_router.hpp"
#include "src/util/rng.hpp"

namespace pmte::serve {

/// Fingerprint-keyed store of loaded ensembles (the key is
/// FrtEnsemble::registry_fingerprint — FNV-1a over the serialized v2
/// header + master seed + graph fingerprint + tree count, see
/// serialize.hpp).  Entries are immutable and shared: tenants hold
/// shared_ptr references, so erasing an entry retires it from *new*
/// lookups while any tenant still serving from it keeps it alive.
/// Deterministic: keyed and iterated by fingerprint value (std::map), no
/// pointer identity anywhere.  Not internally synchronised — mutate only
/// between batches.
class EnsembleRegistry {
 public:
  /// Register an ensemble under its registry fingerprint and return the
  /// fingerprint.  Idempotent for equal content; PMTE_CHECK-fails on a
  /// fingerprint collision between *different* ensembles (the fingerprint
  /// covers the deterministic build identity, so a collision means two
  /// builds disagreed on content for the same inputs — a bug, not a case
  /// to paper over).
  std::uint64_t add(FrtEnsemble e);

  /// Look up by fingerprint; nullptr when absent.
  [[nodiscard]] std::shared_ptr<const FrtEnsemble> find(
      std::uint64_t fingerprint) const;

  [[nodiscard]] bool contains(std::uint64_t fingerprint) const {
    return entries_.count(fingerprint) != 0;
  }

  /// Remove an entry (tenants still referencing it keep it alive — see
  /// class comment).  Returns whether anything was removed.
  bool erase(std::uint64_t fingerprint) {
    return entries_.erase(fingerprint) != 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// All registered fingerprints, ascending (deterministic iteration).
  [[nodiscard]] std::vector<std::uint64_t> fingerprints() const;

 private:
  std::map<std::uint64_t, std::shared_ptr<const FrtEnsemble>> entries_;
};

/// Static description of one tenant's stream.
struct TenantConfig {
  std::uint64_t ensemble = 0;      ///< registry fingerprint to serve from
  AggregatePolicy policy = AggregatePolicy::min;
  std::size_t cache_capacity = 0;  ///< hot-pair cache slots; 0 = uncached
};

/// Cumulative deterministic counters of one tenant stream.  Every field is
/// a logical count (thread-count invariant); result_hash64 folds each
/// served double in stream order, so result_hash32() pins the entire
/// stream's values bit-for-bit (same FNV-1a formula as the bench gate's
/// result_hash32 — server hashes line up with BENCH_server.json).
struct TenantCounters {
  std::uint64_t batches = 0;       ///< serve() calls with ≥ 1 query for us
  std::uint64_t pairs = 0;
  std::uint64_t tree_lookups = 0;  ///< computed pairs × trees
  std::uint64_t lca_probes = 0;    ///< sparse-table probes
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Misses split by slot outcome, folded per batch into this ledger —
  /// cumulative across epochs, so they survive the cache reset at a
  /// hot-swap (the cache's own stats() restart with each epoch).
  std::uint64_t cache_admissions = 0;  ///< misses that claimed a slot
  std::uint64_t cache_conflicts = 0;   ///< misses bypassed (slot taken)
  std::uint64_t epoch = 0;         ///< completed hot-swaps (0 = first epoch)
  std::uint64_t result_hash64 = kFnv1aInit;

  /// 32-bit fold of result_hash64 (survives JSON double rewriting).
  [[nodiscard]] std::uint64_t result_hash32() const noexcept {
    return (result_hash64 >> 32) ^ (result_hash64 & 0xffffffffULL);
  }
};

class Server {
 public:
  Server() = default;

  /// Register an ensemble (see EnsembleRegistry::add) so tenants can serve
  /// from it or swap to it.  Between batches only.
  std::uint64_t load(FrtEnsemble e) { return registry_.add(std::move(e)); }

  [[nodiscard]] const EnsembleRegistry& registry() const noexcept {
    return registry_;
  }

  /// Create a tenant stream serving from cfg.ensemble (must be
  /// registered).  Tenant ids are dense and assigned in call order, so a
  /// fixed setup sequence names fixed ids.  Between batches only.
  TenantId add_tenant(const TenantConfig& cfg);

  [[nodiscard]] std::size_t num_tenants() const noexcept {
    return tenants_.size();
  }

  /// Stage an epoch hot-swap: at the start of the *next* serve() batch,
  /// tenant `t` flips to `fingerprint` (must be registered by then —
  /// checked at flip time, so the replacement can be loaded after
  /// staging), its cache resets, and its epoch counter increments.  The
  /// current batch boundary model makes the flip atomic with respect to
  /// queries: no batch ever sees both epochs.  Restaging before the flip
  /// overwrites the previous staging.  Staging the *current* fingerprint
  /// is a cache/epoch reset.  Between batches only.
  void stage_swap(TenantId t, std::uint64_t fingerprint);

  /// Whether a staged swap is waiting for the next batch boundary.
  [[nodiscard]] bool swap_pending(TenantId t) const {
    return tenants_[t].has_staged;
  }

  /// Fingerprint of the epoch tenant `t` currently serves from.
  [[nodiscard]] std::uint64_t tenant_fingerprint(TenantId t) const {
    return tenants_[t].fingerprint;
  }

  [[nodiscard]] const TenantConfig& tenant_config(TenantId t) const {
    return tenants_[t].cfg;
  }

  /// Cumulative counters of tenant `t` (see TenantCounters).
  [[nodiscard]] const TenantCounters& counters(TenantId t) const {
    return tenants_[t].counters;
  }

  /// Swapped-out ensembles retired from the registry so far (drained: no
  /// tenant reference remained at a flip boundary).
  [[nodiscard]] std::uint64_t epochs_retired() const noexcept {
    return retired_;
  }

  /// Serve one interleaved batch: apply staged flips, route serially,
  /// execute shards in parallel, scatter results into `out` (resized to
  /// the batch, interleaved order), fold counters serially.  Outputs and
  /// all per-tenant counters are bit-identical at any thread count.
  void serve(std::span<const TenantQuery> batch, std::vector<Weight>& out);

 private:
#if PMTE_OBS
  /// Lazily bound per-tenant metric handles (labels like tenant="3").
  /// Raw pointers into the process-wide registry, which never dies;
  /// nullptr until metrics are first enabled (see ensure_tenant_obs).
  struct TenantObsHandles {
    obs::Counter* batches = nullptr;
    obs::Counter* pairs = nullptr;
    obs::Histogram* shard_pairs = nullptr;  ///< logical — deterministic
    obs::Histogram* shard_ns = nullptr;     ///< wall-time — informational
  };
#endif

  struct Tenant {
    TenantConfig cfg;
    std::shared_ptr<const FrtEnsemble> ensemble;
    std::uint64_t fingerprint = 0;
    std::optional<HotPairCache> cache;
    std::uint64_t staged = 0;
    bool has_staged = false;
    TenantCounters counters;
#if PMTE_OBS
    TenantObsHandles obs;
#endif
  };

  /// Serial flip phase: apply staged swaps, then retire drained epochs.
  void apply_staged_swaps();

#if PMTE_OBS
  /// Bind metric handles for any tenant that lacks them and refresh the
  /// registry/tenant gauges.  Serial phase, called only when metrics are
  /// on — tenants added before obs was enabled get their handles at the
  /// next batch.
  void ensure_tenant_obs();
#endif

  EnsembleRegistry registry_;
  std::vector<Tenant> tenants_;
  TenantRouter router_;
  std::uint64_t retired_ = 0;
};

}  // namespace pmte::serve
