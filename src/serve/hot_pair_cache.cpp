#include "src/serve/hot_pair_cache.hpp"

#include <bit>

#include "src/obs/obs.hpp"
#include "src/util/assertions.hpp"

namespace pmte::serve {

#if PMTE_OBS
namespace {

/// Process-wide admission/conflict/hit stream, aggregated across every
/// cache instance (per-tenant splits live in TenantCounters and the
/// pmte_server_* series).  All logical counts — deterministic, but kept
/// ungated: the gated per-scenario cache counters in BENCH_*.json already
/// pin the same quantities per stream.
struct CacheObs {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& admissions;
  obs::Counter& conflicts;
  obs::Counter& resets;
};

CacheObs& cache_obs() {
  auto& reg = obs::registry();
  static CacheObs o{
      reg.counter("pmte_cache_hits_total", {}, "Hot-pair cache hits"),
      reg.counter("pmte_cache_misses_total", {}, "Hot-pair cache misses"),
      reg.counter("pmte_cache_admissions_total", {},
                  "Misses that claimed an empty slot"),
      reg.counter("pmte_cache_conflicts_total", {},
                  "Misses bypassed because the slot was taken"),
      reg.counter("pmte_cache_resets_total", {},
                  "Cache clears (epoch hot-swaps and explicit resets)"),
  };
  return o;
}

}  // namespace
#endif  // PMTE_OBS

HotPairCache::HotPairCache(std::size_t capacity) {
  PMTE_CHECK(capacity >= 1, "HotPairCache: capacity must be positive");
  PMTE_CHECK(capacity <= (std::size_t{1} << 30),
             "HotPairCache: implausible capacity");
  const std::size_t rounded = std::bit_ceil(std::max<std::size_t>(capacity, 2));
  slots_.assign(rounded, Slot{});
  mask_ = rounded - 1;
}

void HotPairCache::clear() {
  for (auto& s : slots_) s = Slot{};
  stats_ = HotPairCacheStats{};
  PMTE_OBS_ONLY(if (obs::metrics_on()) cache_obs().resets.add(1));
}

HotPairCache::Outcome HotPairCache::probe(std::uint64_t key,
                                          std::uint32_t* slot) {
  const std::uint32_t s = slot_of(key);
  *slot = s;
  ++stats_.lookups;
  PMTE_OBS_ONLY(const bool obs_metrics = obs::metrics_on());
  Slot& sl = slots_[s];
  if (!sl.valid) {
    sl.valid = true;
    sl.key = key;
    ++stats_.misses;
    ++stats_.admissions;
    PMTE_OBS_ONLY(if (obs_metrics) {
      cache_obs().misses.add(1);
      cache_obs().admissions.add(1);
    });
    return Outcome::fill;
  }
  if (sl.key == key) {
    ++stats_.hits;
    PMTE_OBS_ONLY(if (obs_metrics) cache_obs().hits.add(1));
    return Outcome::hit;
  }
  ++stats_.misses;
  ++stats_.conflicts;
  PMTE_OBS_ONLY(if (obs_metrics) {
    cache_obs().misses.add(1);
    cache_obs().conflicts.add(1);
  });
  return Outcome::bypass;
}

}  // namespace pmte::serve
