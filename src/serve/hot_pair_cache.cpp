#include "src/serve/hot_pair_cache.hpp"

#include <bit>

#include "src/util/assertions.hpp"

namespace pmte::serve {

HotPairCache::HotPairCache(std::size_t capacity) {
  PMTE_CHECK(capacity >= 1, "HotPairCache: capacity must be positive");
  PMTE_CHECK(capacity <= (std::size_t{1} << 30),
             "HotPairCache: implausible capacity");
  const std::size_t rounded = std::bit_ceil(std::max<std::size_t>(capacity, 2));
  slots_.assign(rounded, Slot{});
  mask_ = rounded - 1;
}

void HotPairCache::clear() {
  for (auto& s : slots_) s = Slot{};
  stats_ = HotPairCacheStats{};
}

HotPairCache::Outcome HotPairCache::probe(std::uint64_t key,
                                          std::uint32_t* slot) {
  const std::uint32_t s = slot_of(key);
  *slot = s;
  ++stats_.lookups;
  Slot& sl = slots_[s];
  if (!sl.valid) {
    sl.valid = true;
    sl.key = key;
    ++stats_.misses;
    ++stats_.admissions;
    return Outcome::fill;
  }
  if (sl.key == key) {
    ++stats_.hits;
    return Outcome::hit;
  }
  ++stats_.misses;
  ++stats_.conflicts;
  return Outcome::bypass;
}

}  // namespace pmte::serve
