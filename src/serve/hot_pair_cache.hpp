#pragma once
// Opt-in hot-pair cache for ensemble serving.
//
// Zipf-shaped traffic concentrates on a small hot set of vertex pairs
// (src/serve/workloads.hpp); recomputing the k-tree aggregate for the same
// pair thousands of times per batch is pure waste.  HotPairCache is a
// fixed-capacity, direct-mapped cache over *served aggregates*:
//
//   Layout      — `capacity` slots (rounded up to a power of two), each
//                 holding one (key, value) entry.  A pair maps to exactly
//                 one slot via a splitmix64 hash of its normalised key
//                 (min(u,v), max(u,v), salt) — no probing chains, so a
//                 lookup is one array read.
//   Admission   — deterministic first-touch: an empty slot is claimed by
//                 the first pair (in batch order) that hashes to it; a
//                 later pair hashing to an occupied slot with a different
//                 key bypasses the cache (counted as a conflict) and does
//                 NOT evict.  Under Zipf traffic the hot pairs appear
//                 first with overwhelming probability, so first-touch
//                 keeps them pinned; under uniform traffic the cache
//                 degrades to a no-op plus counters, never to wrong
//                 answers.
//   Determinism — admission decisions happen in a serial classification
//                 pass over the batch (FrtEnsemble::query_batch), so the
//                 cache contents, the hit/miss/conflict counters, and the
//                 served values are pure functions of the query sequence —
//                 independent of thread count.  Cached values are the
//                 exact doubles the aggregate computed once, so serving
//                 with the cache on is bit-identical to serving with it
//                 off (pinned by test_serve).
//
// The cache is external state owned by the caller (FrtEnsemble stays
// immutable and shareable across threads); pass one cache per logical
// query stream.  It is NOT internally synchronised — one batch at a time.

#include <cstdint>
#include <vector>

#include "src/util/rng.hpp"
#include "src/util/types.hpp"

namespace pmte::serve {

/// Cumulative logical counters (deterministic; see header comment).
struct HotPairCacheStats {
  std::uint64_t lookups = 0;     ///< cacheable (u ≠ v) probes
  std::uint64_t hits = 0;        ///< served from a slot
  std::uint64_t misses = 0;      ///< computed (fills + conflicts)
  std::uint64_t admissions = 0;  ///< slots claimed (first touch)
  std::uint64_t conflicts = 0;   ///< bypassed: slot owned by another pair
};

class HotPairCache {
 public:
  /// What a probe decided; `fill` means the caller must compute the value
  /// and store it with set_value() before anyone reads the slot.
  enum class Outcome : unsigned char { hit, fill, bypass };

  /// `capacity` is rounded up to a power of two (minimum 2 slots).
  explicit HotPairCache(std::size_t capacity = 1 << 16);

  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.size();
  }
  [[nodiscard]] const HotPairCacheStats& stats() const noexcept {
    return stats_;
  }

  /// Drop all entries and counters (capacity retained) — a full stream
  /// restart, e.g. at an epoch hot-swap.  Callers needing counters that
  /// survive resets must fold stats() (or the per-batch BatchStats) into
  /// their own ledger before clearing; Server does this every batch, so
  /// its TenantCounters stay cumulative across swaps.
  void clear();

  /// Normalised cache key of an unordered pair; `salt` separates logical
  /// namespaces sharing one cache (FrtEnsemble folds the aggregation
  /// policy, its master seed, and the graph fingerprint in, so entries
  /// can never leak across ensembles).  Requires u ≠ v.
  [[nodiscard]] static std::uint64_t pair_key(Vertex u, Vertex v,
                                              std::uint64_t salt) noexcept {
    if (u > v) {
      const Vertex t = u;
      u = v;
      v = t;
    }
    std::uint64_t s = (static_cast<std::uint64_t>(u) << 32) | v;
    s ^= salt * 0x9e3779b97f4a7c15ULL;
    return s;
  }

  /// Probe the slot of `key` (serial classification pass only).  Returns
  /// the outcome and writes the slot id to `slot`; updates the counters.
  /// A `fill` outcome claims the slot immediately — the caller MUST store
  /// the computed value with set_value() before the batch ends (and must
  /// therefore validate its inputs before probing; FrtEnsemble does), or
  /// later batches would hit a claimed slot holding a default value.
  Outcome probe(std::uint64_t key, std::uint32_t* slot);

  /// Value of a slot previously decided `hit`, or filled this batch.
  [[nodiscard]] Weight value(std::uint32_t slot) const noexcept {
    return slots_[slot].value;
  }

  /// Store the computed aggregate for a slot decided `fill`.  Safe to call
  /// from parallel code: each fill owns a distinct slot.
  void set_value(std::uint32_t slot, Weight v) noexcept {
    slots_[slot].value = v;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    Weight value = 0.0;
    bool valid = false;
  };

  [[nodiscard]] std::uint32_t slot_of(std::uint64_t key) const noexcept {
    std::uint64_t s = key;
    return static_cast<std::uint32_t>(splitmix64(s) & mask_);
  }

  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;
  HotPairCacheStats stats_;
};

}  // namespace pmte::serve
