#include "src/serve/workloads.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/assertions.hpp"

namespace pmte::serve {

WorkloadKind parse_workload(const std::string& name) {
  if (name == "uniform") return WorkloadKind::uniform;
  if (name == "bfs" || name == "bfs_local") return WorkloadKind::bfs_local;
  if (name == "zipf") return WorkloadKind::zipf;
  PMTE_CHECK(false, "unknown workload: " + name +
                        " (expected uniform|bfs_local|zipf)");
  return WorkloadKind::uniform;  // unreachable
}

const char* workload_name(WorkloadKind kind) noexcept {
  switch (kind) {
    case WorkloadKind::uniform:
      return "uniform";
    case WorkloadKind::bfs_local:
      return "bfs_local";
    case WorkloadKind::zipf:
    default:
      return "zipf";
  }
}

namespace {

std::vector<std::pair<Vertex, Vertex>> uniform_pairs(Vertex n,
                                                     std::size_t count,
                                                     Rng& rng) {
  std::vector<std::pair<Vertex, Vertex>> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pairs.emplace_back(static_cast<Vertex>(rng.below(n)),
                       static_cast<Vertex>(rng.below(n)));
  }
  return pairs;
}

/// Hop-limited BFS ball around `centre`, capped at `cap` vertices.
std::vector<Vertex> bfs_ball(const Graph& g, Vertex centre, unsigned hops,
                             std::size_t cap,
                             std::vector<unsigned>& hop_of) {
  std::vector<Vertex> ball{centre};
  hop_of[centre] = 0;
  for (std::size_t head = 0; head < ball.size() && ball.size() < cap;
       ++head) {
    const Vertex u = ball[head];
    if (hop_of[u] == hops) continue;
    for (const auto& e : g.neighbors(u)) {
      if (hop_of[e.to] != static_cast<unsigned>(-1)) continue;
      hop_of[e.to] = hop_of[u] + 1;
      ball.push_back(e.to);
      if (ball.size() == cap) break;
    }
  }
  for (const Vertex v : ball) hop_of[v] = static_cast<unsigned>(-1);
  return ball;
}

std::vector<std::pair<Vertex, Vertex>> bfs_local_pairs(
    const Graph& g, const WorkloadOptions& opts, Rng& rng) {
  const Vertex n = g.num_vertices();
  std::vector<std::pair<Vertex, Vertex>> pairs;
  pairs.reserve(opts.pairs);
  std::vector<unsigned> hop_of(n, static_cast<unsigned>(-1));
  while (pairs.size() < opts.pairs) {
    const auto centre = static_cast<Vertex>(rng.below(n));
    const auto ball =
        bfs_ball(g, centre, opts.bfs_hops, opts.bfs_ball_cap, hop_of);
    // A handful of pairs per ball keeps the centres varied.
    const std::size_t burst =
        std::min<std::size_t>(8, opts.pairs - pairs.size());
    for (std::size_t i = 0; i < burst; ++i) {
      pairs.emplace_back(ball[rng.below(ball.size())],
                         ball[rng.below(ball.size())]);
    }
  }
  return pairs;
}

std::vector<std::pair<Vertex, Vertex>> zipf_pairs(Vertex n,
                                                  const WorkloadOptions& opts,
                                                  Rng& rng) {
  // Popularity rank r (0 = hottest) gets mass 1/(r+1)^s; a random
  // permutation maps ranks to vertices so the hot set is seed-dependent.
  std::vector<double> cdf(n);
  double acc = 0.0;
  for (Vertex r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), opts.zipf_s);
    cdf[r] = acc;
  }
  const auto vertex_of_rank = random_permutation(n, rng);
  auto draw = [&]() -> Vertex {
    const double x = rng.uniform() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), x);
    const auto rank = static_cast<std::size_t>(it - cdf.begin());
    return vertex_of_rank[std::min<std::size_t>(rank, n - 1)];
  };
  std::vector<std::pair<Vertex, Vertex>> pairs;
  pairs.reserve(opts.pairs);
  for (std::size_t i = 0; i < opts.pairs; ++i) {
    pairs.emplace_back(draw(), draw());
  }
  return pairs;
}

}  // namespace

std::vector<std::pair<Vertex, Vertex>> make_workload(
    const Graph& g, WorkloadKind kind, const WorkloadOptions& opts,
    Rng& rng) {
  PMTE_CHECK(g.num_vertices() >= 1, "make_workload: empty graph");
  switch (kind) {
    case WorkloadKind::uniform:
      return uniform_pairs(g.num_vertices(), opts.pairs, rng);
    case WorkloadKind::bfs_local:
      return bfs_local_pairs(g, opts, rng);
    case WorkloadKind::zipf:
    default:
      return zipf_pairs(g.num_vertices(), opts, rng);
  }
}

std::vector<TenantQuery> make_multi_tenant_workload(
    const Graph& g, const std::vector<TenantStreamSpec>& specs,
    std::uint64_t seed) {
  PMTE_CHECK(!specs.empty(), "make_multi_tenant_workload: no tenant specs");
  PMTE_CHECK(specs.size() < (std::uint64_t{1} << 32),
             "make_multi_tenant_workload: too many tenants");

  // Per-tenant substreams, each from its own split_seed stream so a
  // tenant's queries never depend on the other tenants' specs.
  std::vector<std::vector<std::pair<Vertex, Vertex>>> streams(specs.size());
  std::size_t total = 0;
  for (std::size_t t = 0; t < specs.size(); ++t) {
    Rng rng(split_seed(seed, kTenantWorkloadStreamBase + t));
    streams[t] = make_workload(g, specs[t].kind, specs[t].opts, rng);
    total += streams[t].size();
  }

  // Interleaving: Fisher–Yates over the multiset of tenant tags, from its
  // own stream.  Consuming each tenant's substream in tag order preserves
  // the substream's internal order exactly.
  std::vector<TenantId> tags;
  tags.reserve(total);
  for (std::size_t t = 0; t < specs.size(); ++t) {
    tags.insert(tags.end(), streams[t].size(), static_cast<TenantId>(t));
  }
  Rng shuffle_rng(split_seed(seed, kTenantInterleaveStream));
  for (std::size_t i = tags.size(); i > 1; --i) {
    std::swap(tags[i - 1], tags[shuffle_rng.below(i)]);
  }

  std::vector<TenantQuery> merged;
  merged.reserve(total);
  std::vector<std::size_t> next(specs.size(), 0);
  for (const TenantId t : tags) {
    const auto& [u, v] = streams[t][next[t]++];
    merged.push_back(TenantQuery{t, u, v});
  }
  return merged;
}

}  // namespace pmte::serve
