#include "src/serve/tenant_router.hpp"

#include "src/util/assertions.hpp"

namespace pmte::serve {

void TenantRouter::reset(std::uint32_t tenants) {
  shards_.resize(tenants);
  for (auto& s : shards_) {
    s.pairs.clear();
    s.positions.clear();
    s.out.clear();
    s.stats = {};
  }
}

void TenantRouter::route(std::span<const TenantQuery> batch) {
  for (auto& s : shards_) {
    s.pairs.clear();
    s.positions.clear();
    s.out.clear();
    s.stats = {};
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const TenantQuery& q = batch[i];
    PMTE_CHECK(q.tenant < shards_.size(),
               "TenantRouter::route: tenant id out of range");
    auto& s = shards_[q.tenant];
    s.pairs.emplace_back(q.u, q.v);
    s.positions.push_back(static_cast<std::uint32_t>(i));
  }
}

void TenantRouter::scatter(std::vector<Weight>& out) const {
  for (const auto& s : shards_) {
    PMTE_CHECK(s.out.size() == s.positions.size(),
               "TenantRouter::scatter: shard outputs not filled");
    for (std::size_t j = 0; j < s.positions.size(); ++j) {
      out[s.positions[j]] = s.out[j];
    }
  }
}

}  // namespace pmte::serve
