#pragma once
// Exact stretch-quality report for a served ensemble.
//
// The FRT guarantee bounds the *expected* stretch of a random tree;
// src/frt/stretch.hpp estimates that expectation over sampled pairs.  A
// serving system needs a different number: the quality of the value it
// actually serves — the policy-aggregated ensemble distance.  This module
// measures it *exactly*, against brute-force Dijkstra over every connected
// pair u < v (n single-source runs — corpus-size graphs only, say
// n ≲ 4096):
//
//   distance-weighted average stretch (Kao–Lee–Wagner)
//       Σ_{u<v} dist_served(u,v)  /  Σ_{u<v} dist_G(u,v)
//     = Σ w_p · stretch(p) / Σ w_p with weights w_p = dist_G(p) — long
//       pairs count proportionally to their length, so the metric reflects
//       total routed cost rather than giving a 2-hop pair the same vote as
//       a diameter pair.
//   mean / max / min stretch
//       unweighted mean, worst pair, and best pair of
//       dist_served / dist_G.  min ≥ 1 must hold for dominating policies
//       (min and median over dominating trees both dominate dist_G).
//
// Accumulation order is fixed (ascending u, then ascending v), so the
// report is deterministic for a fixed ensemble at any thread count — the
// parallelism is per-source Dijkstra + per-row query batches.

#include <cstddef>

#include "src/graph/graph.hpp"
#include "src/serve/frt_ensemble.hpp"

namespace pmte::serve {

struct StretchQuality {
  std::size_t pairs = 0;         ///< connected u < v pairs evaluated
  double weighted_stretch = 0.0; ///< Σ served / Σ exact (KLW metric)
  double mean_stretch = 0.0;     ///< unweighted mean of served/exact
  double max_stretch = 0.0;      ///< worst pair
  double min_stretch = 0.0;      ///< best pair (< 1 falsifies dominance)
  double sum_exact = 0.0;        ///< Σ dist_G over the pairs
  double sum_served = 0.0;       ///< Σ served values over the pairs
};

/// Measure the served quality of `ensemble` under `policy` against exact
/// graph distances (n Dijkstras).  Pairs with dist_G = ∞ or 0 (identical
/// or disconnected vertices) are skipped.  Exact and deterministic; cost
/// is O(n·(m + n log n)) plus n²/2 ensemble queries — keep to corpus-size
/// graphs.
[[nodiscard]] StretchQuality measure_stretch_quality(
    const Graph& g, const FrtEnsemble& ensemble, AggregatePolicy policy);

}  // namespace pmte::serve
