#include "src/serve/frt_index.hpp"

#include <bit>
#include <cmath>
#include <utility>

#include "src/serve/serialize.hpp"
#include "src/util/assertions.hpp"

namespace pmte::serve {

FrtIndex FrtIndex::build(const FrtTree& tree) {
  const std::size_t nodes = tree.num_nodes();
  PMTE_CHECK(nodes >= 1, "FrtIndex: empty tree");
  PMTE_CHECK(nodes <= 0x7fffffffULL, "FrtIndex: tree too large for u32 ids");

  FrtIndex idx;
  idx.levels_ = tree.num_levels();
  idx.beta_ = tree.beta();
  idx.dist_by_lca_level_ = tree.distance_by_lca_level();
  // Build into plain vectors, then hand them to the owned-or-mapped
  // sections once finished (ArraySection is read-only by design).
  std::vector<Weight> edge_weight(idx.levels_);
  for (unsigned l = 0; l < idx.levels_; ++l) {
    edge_weight[l] = tree.edge_weight(l);
  }
  idx.edge_weight_by_level_ = std::move(edge_weight);

  std::vector<std::uint32_t> node_level(nodes);
  std::vector<Weight> wdepth(nodes);
  for (NodeId id = 0; id < nodes; ++id) {
    const auto& nd = tree.node(id);
    node_level[id] = nd.level;
    // Nodes are created top-down (parents precede children), so parents'
    // prefix sums are ready when a child is reached.
    wdepth[id] = nd.parent == FrtTree::invalid_node
                     ? 0.0
                     : wdepth[nd.parent] + nd.parent_edge;
  }
  idx.node_level_ = std::move(node_level);
  idx.wdepth_ = std::move(wdepth);

  // Euler tour: visit a node, recurse into each child, revisit after each
  // return → 2·nodes − 1 positions.  Iterative via an explicit stack of
  // (node, next-child) frames; tree height is num_levels so the stack is
  // tiny, but the explicit form also records revisit positions naturally.
  const std::size_t tour_len = 2 * nodes - 1;
  std::vector<std::uint32_t> euler_node;
  std::vector<std::uint32_t> euler_level;
  euler_node.reserve(tour_len);
  euler_level.reserve(tour_len);
  std::vector<std::uint32_t> leaf_pos(tree.num_leaves(), 0);
  std::vector<std::pair<NodeId, std::size_t>> stack;
  stack.reserve(idx.levels_ + 1);
  stack.emplace_back(tree.root(), 0);
  auto visit = [&](NodeId id) {
    const auto& nd = tree.node(id);
    if (nd.leaf_vertex != no_vertex()) {
      leaf_pos[nd.leaf_vertex] =
          static_cast<std::uint32_t>(euler_node.size());
    }
    euler_node.push_back(id);
    euler_level.push_back(nd.level);
  };
  visit(tree.root());
  while (!stack.empty()) {
    auto& [id, next_child] = stack.back();
    const auto& children = tree.node(id).children;
    if (next_child == children.size()) {
      stack.pop_back();
      if (!stack.empty()) visit(stack.back().first);
      continue;
    }
    const NodeId child = children[next_child++];
    stack.emplace_back(child, 0);
    visit(child);
  }
  PMTE_CHECK(euler_node.size() == tour_len,
             "FrtIndex: malformed Euler tour");
  idx.euler_node_ = std::move(euler_node);
  idx.euler_level_ = std::move(euler_level);
  idx.leaf_pos_ = std::move(leaf_pos);

  idx.build_sparse_table();
  idx.build_structure_maps();
  return idx;
}

void FrtIndex::build_structure_maps() {
  const std::size_t nodes = node_level_.size();
  // Children CSR from the tour: position i is a child visit of position
  // i−1 exactly when the level drops by 1 (a revisit rises by 1).  Tour
  // order of a node's child visits equals the source tree's child order,
  // so the CSR preserves it — the apps' flat walks fold floating-point
  // sums in the same order as the pointer-based reference.
  child_offset_.assign(nodes + 1, 0);
  for (std::size_t i = 1; i < euler_node_.size(); ++i) {
    if (euler_level_[i] + 1 == euler_level_[i - 1]) {
      ++child_offset_[euler_node_[i - 1] + 1];
    }
  }
  for (std::size_t id = 0; id < nodes; ++id) {
    child_offset_[id + 1] += child_offset_[id];
  }
  child_list_.assign(euler_node_.empty() ? 0 : (euler_node_.size() - 1) / 2,
                     0);
  std::vector<std::uint32_t> cursor(child_offset_.begin(),
                                    child_offset_.end() - 1);
  for (std::size_t i = 1; i < euler_node_.size(); ++i) {
    if (euler_level_[i] + 1 == euler_level_[i - 1]) {
      child_list_[cursor[euler_node_[i - 1]]++] = euler_node_[i];
    }
  }
  node_leaf_vertex_.assign(nodes, no_vertex());
  for (std::size_t v = 0; v < leaf_pos_.size(); ++v) {
    node_leaf_vertex_[euler_node_[leaf_pos_[v]]] = static_cast<Vertex>(v);
  }
}

void FrtIndex::build_sparse_table() {
  const std::size_t len = euler_level_.size();
  // Rows 0..⌊log₂ len⌋: a range of length L is answered from row
  // ⌊log₂ L⌋ ≤ ⌊log₂ len⌋, so bit_width(len) rows exactly suffice.
  sparse_rows_ = static_cast<unsigned>(std::bit_width(len));
  sparse_.assign(static_cast<std::size_t>(sparse_rows_) * len, 0);
  for (std::size_t i = 0; i < len; ++i) {
    sparse_[i] = static_cast<std::uint32_t>(i);
  }
  for (unsigned j = 1; j < sparse_rows_; ++j) {
    const std::uint32_t* prev = sparse_.data() + (j - 1) * len;
    std::uint32_t* row = sparse_.data() + static_cast<std::size_t>(j) * len;
    const std::size_t half = std::size_t{1} << (j - 1);
    for (std::size_t i = 0; i + 2 * half <= len; ++i) {
      const std::uint32_t a = prev[i];
      const std::uint32_t b = prev[i + half];
      row[i] = euler_level_[a] >= euler_level_[b] ? a : b;
    }
  }
}

std::uint32_t FrtIndex::lca_pos(std::uint32_t a, std::uint32_t b) const {
  if (a > b) std::swap(a, b);
  const std::uint32_t len = b - a + 1;
  const unsigned k = static_cast<unsigned>(std::bit_width(len)) - 1U;
  const std::uint32_t* row =
      sparse_.data() + static_cast<std::size_t>(k) * euler_level_.size();
  const std::uint32_t p1 = row[a];
  const std::uint32_t p2 = row[b + 1 - (std::uint32_t{1} << k)];
  // Every node strictly between two leaf visits is a descendant of their
  // LCA except the LCA itself, so the max level is unique — either probe
  // winning returns the same node.
  return euler_level_[p1] >= euler_level_[p2] ? p1 : p2;
}

Weight FrtIndex::distance(Vertex u, Vertex v) const {
  PMTE_CHECK(u < leaf_pos_.size() && v < leaf_pos_.size(),
             "FrtIndex::distance: vertex out of range");
  if (u == v) return 0.0;
  const std::uint32_t pos = lca_pos(leaf_pos_[u], leaf_pos_[v]);
  return dist_by_lca_level_[euler_level_[pos]];
}

FrtIndex::NodeId FrtIndex::lca(Vertex u, Vertex v) const {
  PMTE_CHECK(u < leaf_pos_.size() && v < leaf_pos_.size(),
             "FrtIndex::lca: vertex out of range");
  return euler_node_[lca_pos(leaf_pos_[u], leaf_pos_[v])];
}

unsigned FrtIndex::lca_level(Vertex u, Vertex v) const {
  PMTE_CHECK(u < leaf_pos_.size() && v < leaf_pos_.size(),
             "FrtIndex::lca_level: vertex out of range");
  return euler_level_[lca_pos(leaf_pos_[u], leaf_pos_[v])];
}

void FrtIndex::validate() const {
  const std::size_t nodes = node_level_.size();
  PMTE_CHECK(nodes >= 1, "FrtIndex: empty");
  PMTE_CHECK(euler_node_.size() == 2 * nodes - 1,
             "FrtIndex: Euler tour length mismatch");
  PMTE_CHECK(euler_level_.size() == euler_node_.size(),
             "FrtIndex: Euler arrays disagree");
  PMTE_CHECK(wdepth_.size() == nodes, "FrtIndex: wdepth size mismatch");
  PMTE_CHECK(dist_by_lca_level_.size() == levels_,
             "FrtIndex: level table size mismatch");
  for (std::size_t i = 0; i < euler_node_.size(); ++i) {
    PMTE_CHECK(euler_node_[i] < nodes, "FrtIndex: tour node out of range");
    PMTE_CHECK(euler_level_[i] == node_level_[euler_node_[i]],
               "FrtIndex: tour level mismatch");
    if (i > 0) {
      const unsigned a = euler_level_[i - 1];
      const unsigned b = euler_level_[i];
      PMTE_CHECK(a + 1 == b || b + 1 == a,
                 "FrtIndex: tour levels must change by exactly 1");
    }
  }
  // The tour must be a closed DFS of a tree: every node except the first
  // position's (the root) is entered by exactly one down-step.  ±1 level
  // steps alone do not guarantee this, and build_structure_maps() sizes
  // its child CSR to N−1 down-steps — a crafted file re-entering a node
  // would overflow it.
  {
    std::vector<std::uint32_t> child_entries(nodes, 0);
    for (std::size_t i = 1; i < euler_node_.size(); ++i) {
      if (euler_level_[i] + 1 == euler_level_[i - 1]) {
        ++child_entries[euler_node_[i]];
      }
    }
    for (std::size_t id = 0; id < nodes; ++id) {
      const std::uint32_t expected = id == euler_node_[0] ? 0 : 1;
      PMTE_CHECK(child_entries[id] == expected,
                 "FrtIndex: tour is not a single DFS of a tree");
    }
  }
  PMTE_CHECK(!leaf_pos_.empty(), "FrtIndex: no leaves");
  std::vector<bool> position_used(euler_node_.size(), false);
  for (std::size_t v = 0; v < leaf_pos_.size(); ++v) {
    PMTE_CHECK(leaf_pos_[v] < euler_node_.size(),
               "FrtIndex: leaf position out of range");
    PMTE_CHECK(euler_level_[leaf_pos_[v]] == 0,
               "FrtIndex: leaf position not at level 0");
    // Injectivity: aliased leaf positions would silently serve distance 0
    // for distinct vertices — reject the file instead.
    PMTE_CHECK(!position_used[leaf_pos_[v]],
               "FrtIndex: two vertices share a leaf position");
    position_used[leaf_pos_[v]] = true;
  }
  std::size_t level0_nodes = 0;
  for (std::size_t id = 0; id < nodes; ++id) {
    level0_nodes += node_level_[id] == 0 ? 1 : 0;
  }
  PMTE_CHECK(level0_nodes == leaf_pos_.size(),
             "FrtIndex: leaf count does not match level-0 node count");
  for (std::size_t id = 0; id < nodes; ++id) {
    PMTE_CHECK(node_level_[id] < levels_, "FrtIndex: node level out of range");
    PMTE_CHECK(wdepth_[id] >= 0.0 && is_finite(wdepth_[id]),
               "FrtIndex: bad weighted depth");
  }
  for (unsigned l = 1; l < levels_; ++l) {
    PMTE_CHECK(dist_by_lca_level_[l] > dist_by_lca_level_[l - 1],
               "FrtIndex: LCA distance table not increasing");
  }
  PMTE_CHECK(edge_weight_by_level_.size() == levels_,
             "FrtIndex: edge weight table size mismatch");
  for (unsigned l = 0; l < levels_; ++l) {
    PMTE_CHECK(edge_weight_by_level_[l] > 0.0 &&
                   is_finite(edge_weight_by_level_[l]),
               "FrtIndex: bad per-level edge weight");
    // dist_by_lca_level_ is Σ_{l'<l} 2·w_{l'} accumulated ascending, so the
    // two persisted tables must agree exactly.
    if (l + 1 < levels_) {
      PMTE_CHECK(dist_by_lca_level_[l + 1] ==
                     dist_by_lca_level_[l] + 2.0 * edge_weight_by_level_[l],
                 "FrtIndex: edge weights inconsistent with LCA table");
    }
  }
  // Cross-check the two distance representations: for every node,
  // 2·(wdepth[leaf] − wdepth[node]) must equal the LCA-level table entry
  // (up to summation-order rounding — the table accumulates bottom-up,
  // wdepth top-down).
  const Weight wleaf = wdepth_[euler_node_[leaf_pos_[0]]];
  for (std::size_t id = 0; id < nodes; ++id) {
    const Weight via_wdepth = 2.0 * (wleaf - wdepth_[id]);
    const Weight via_table = dist_by_lca_level_[node_level_[id]];
    PMTE_CHECK(std::abs(via_wdepth - via_table) <=
                   1e-9 * (1.0 + std::abs(via_table)),
               "FrtIndex: wdepth inconsistent with LCA distance table");
  }
}

// Field order is normative — docs/FORMAT.md documents this exact layout.
void FrtIndex::save_into(BinaryWriter& w) const {
  w.magic(kIndexMagic);
  w.u32(levels_);
  w.f64(beta_);
  w.vec_u32(node_level_);
  w.vec_f64(wdepth_);
  w.vec_u32(euler_node_);
  w.vec_u32(euler_level_);
  w.vec_u32(leaf_pos_);
  w.vec_f64(dist_by_lca_level_);
  w.vec_f64(edge_weight_by_level_);
}

void FrtIndex::save(std::ostream& os, std::uint32_t version) const {
  BinaryWriter w(os, version);
  save_into(w);
}

void FrtIndex::finish_load() {
  validate();
  build_sparse_table();
  build_structure_maps();
}

FrtIndex FrtIndex::load_from(BinaryReader& r) {
  r.expect_magic(kIndexMagic);
  FrtIndex idx;
  idx.levels_ = r.u32();
  idx.beta_ = r.f64();
  idx.node_level_ = r.vec_u32();
  idx.wdepth_ = r.vec_f64();
  idx.euler_node_ = r.vec_u32();
  idx.euler_level_ = r.vec_u32();
  idx.leaf_pos_ = r.vec_u32();
  idx.dist_by_lca_level_ = r.vec_f64();
  idx.edge_weight_by_level_ = r.vec_f64();
  idx.finish_load();
  return idx;
}

FrtIndex FrtIndex::load_mapped_from(MappedReader& r) {
  r.expect_magic(kIndexMagic);
  FrtIndex idx;
  idx.levels_ = r.u32();
  idx.beta_ = r.f64();
  // The bulk arrays stay in the file image — zero bytes copied; only the
  // derived tables below (sparse RMQ, CSR, leaf maps) allocate.
  using U32Section = ArraySection<std::uint32_t>;
  using F64Section = ArraySection<Weight>;
  idx.node_level_ = U32Section::mapped(r.view_u32());
  idx.wdepth_ = F64Section::mapped(r.view_f64());
  idx.euler_node_ = U32Section::mapped(r.view_u32());
  idx.euler_level_ = U32Section::mapped(r.view_u32());
  idx.leaf_pos_ = U32Section::mapped(r.view_u32());
  idx.dist_by_lca_level_ = F64Section::mapped(r.view_f64());
  idx.edge_weight_by_level_ = F64Section::mapped(r.view_f64());
  idx.finish_load();
  return idx;
}

FrtIndex FrtIndex::load(std::istream& is) {
  BinaryReader r(is);
  return load_from(r);
}

}  // namespace pmte::serve
