#pragma once
// Ensemble of independently-seeded FRT serving indices.
//
// A single FRT tree only guarantees O(log n) *expected* stretch; serving
// systems (Blelloch–Gu–Sun, PAPERS.md) recover the practical quality by
// querying k independent trees and aggregating.  FrtEnsemble builds k
// FrtIndex instances over the same graph:
//
//   Randomness  — per-tree RNG streams derive from one master seed via
//                 split_seed(master, 1 + t) (stream 0 feeds the shared
//                 hop-set / simulated-graph randomness of the oracle
//                 pipeline).  Each tree is a fixed function of (graph,
//                 master, t), so the ensemble is reproducible regardless
//                 of build order and thread count.
//   Build       — trees build in parallel (parallel_for over slots; the
//                 per-tree engine loops detect the enclosing region and
//                 run serially).  The oracle pipeline shares one simulated
//                 graph across all trees, amortising the hop set.
//   Queries     — query(u, v, policy) aggregates the k O(1) index lookups
//                 with `min` (tightest dominating estimate; every tree
//                 dominates dist_G, hence so does the min) or `median`
//                 (robust distance-weighted-stretch estimate; the upper
//                 median for even k, so it stays dominating too).
//   Batches     — query_batch answers a pair list via
//                 parallel_for_balanced and reports deterministic logical
//                 counters (pairs, per-tree lookups, sparse-table probes)
//                 for the CI bench gate; outputs are bit-identical across
//                 thread counts.
//   Hot pairs   — an optional caller-owned HotPairCache short-circuits
//                 repeated pairs (Zipf traffic): a serial classification
//                 pass decides hit/fill/bypass per pair, fills compute
//                 once in parallel, everything else is an array read.
//                 Served values are bit-identical with the cache on or
//                 off, and the hit/miss counters are deterministic at any
//                 thread count (see hot_pair_cache.hpp).
//
// save()/load() persist the whole ensemble (master seed + every index)
// in the versioned binary format; round-trips are exact.  load_mapped()
// mmaps a v3 artefact instead: every index's persisted arrays become
// views into the file image (zero bulk bytes copied — the load-path
// counters in serialize.hpp prove it) and only the derived tables are
// rebuilt.  The ensemble owns the mapping via shared_ptr, so registry
// entries, tenants, and copies of the shared_ptr keep it alive for as
// long as any query can touch it; served doubles and all logical
// counters are bit-identical between the two load paths.
//
// Query path layout: alongside the per-index arrays the ensemble keeps a
// structure-of-arrays copy of the leaf tour positions (leaf_pos_soa_,
// [vertex·k + tree]) so the min-over-k inner loop reads its k inputs
// contiguously, plus a two-phase kernel that software-prefetches the k
// sparse-table rows before consuming them (see frt_ensemble.cpp).

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/frt/pipelines.hpp"
#include "src/serve/frt_index.hpp"
#include "src/serve/hot_pair_cache.hpp"

namespace pmte::serve {

/// Which sampling pipeline produces the ensemble's trees.
enum class EnsemblePipeline { oracle, direct, sequential };

/// How per-tree distances collapse into one served value.
enum class AggregatePolicy { min, median };

struct EnsembleOptions {
  std::size_t trees = 8;
  EnsemblePipeline pipeline = EnsemblePipeline::oracle;
  FrtOptions frt;             ///< weight rule, ε̂, hop-set, engine tunables
  bool parallel_build = true; ///< results identical either way (split seeds)
};

/// Deterministic build accounting, summed over all trees (WorkDepth
/// logical-op deltas — thread-count independent; wall time is not).
struct EnsembleBuildStats {
  std::uint64_t work = 0;
  std::uint64_t relaxations = 0;
  std::uint64_t edges_touched = 0;
  std::uint64_t iterations = 0;    ///< top-level MBF iterations, summed
  std::uint64_t index_nodes = 0;   ///< flat nodes across all indices
  double seconds = 0.0;
};

class FrtEnsemble {
 public:
  FrtEnsemble() = default;

  /// Build `opts.trees` indices over `g` from one master seed.
  [[nodiscard]] static FrtEnsemble build(const Graph& g,
                                         std::uint64_t master_seed,
                                         const EnsembleOptions& opts = {});

  /// Assemble a servable ensemble from already-built indices — the
  /// dynamic-maintenance snapshot path (serve::DynamicEnsemble rebuilds
  /// only the indices whose trees an update changed and re-wraps them
  /// all).  `graph_fingerprint` must be fingerprint() of the graph the
  /// indices currently embed; with indices equal to build()'s the result
  /// compares == to build()'s and carries the same registry fingerprint.
  /// Build stats are not populated (nothing was built here).
  [[nodiscard]] static FrtEnsemble assemble(std::vector<FrtIndex> indices,
                                            std::uint64_t master_seed,
                                            std::uint64_t graph_fingerprint);

  [[nodiscard]] std::size_t num_trees() const noexcept {
    return indices_.size();
  }
  [[nodiscard]] Vertex num_vertices() const noexcept {
    return indices_.empty() ? 0 : indices_.front().num_leaves();
  }
  [[nodiscard]] std::uint64_t master_seed() const noexcept {
    return master_seed_;
  }
  /// Fingerprint of the graph this ensemble was built over (persisted, so
  /// loaders can refuse to serve a different graph's distances).
  [[nodiscard]] std::uint64_t graph_fingerprint() const noexcept {
    return graph_fingerprint_;
  }

  /// FNV-1a over (n, every half-edge's target and weight bits) — a cheap
  /// structural identity for "same graph as at build time" checks.
  [[nodiscard]] static std::uint64_t fingerprint(const Graph& g);

  /// Registry identity of this ensemble: serve::registry_fingerprint over
  /// its serialized v2 prelude (header + master seed + graph fingerprint +
  /// tree count).  A pure function of the deterministic build inputs, so a
  /// freshly built ensemble and its save→load round-trip fingerprint
  /// identically; the many-tenant server keys its EnsembleRegistry on it.
  [[nodiscard]] std::uint64_t registry_fingerprint() const noexcept;
  [[nodiscard]] const FrtIndex& index(std::size_t t) const {
    return indices_[t];
  }
  /// Whether this ensemble serves straight from a file mapping.
  [[nodiscard]] bool is_mapped() const noexcept { return mapping_ != nullptr; }
  /// Size of the backing mapping in bytes (0 when not mapped).
  [[nodiscard]] std::size_t mapped_bytes() const noexcept {
    return mapping_ ? mapping_->size() : 0;
  }
  [[nodiscard]] const EnsembleBuildStats& build_stats() const noexcept {
    return stats_;
  }

  /// Aggregated point query: k O(1) lookups + the policy fold.
  [[nodiscard]] Weight query(Vertex u, Vertex v,
                             AggregatePolicy policy) const;

  /// Deterministic logical counters of one batch (the bench-gate metrics).
  /// With a cache, tree_lookups / lca_probes count only the aggregates
  /// actually computed (fills + bypasses) — the quantity the cache saves.
  struct BatchStats {
    std::uint64_t pairs = 0;
    std::uint64_t tree_lookups = 0;  ///< computed pairs × trees
    std::uint64_t lca_probes = 0;    ///< sparse-table probes (u≠v only)
    std::uint64_t cache_hits = 0;    ///< pairs served from the cache
    std::uint64_t cache_misses = 0;  ///< cacheable pairs computed
    std::uint64_t cache_admissions = 0;  ///< misses that claimed a slot
    std::uint64_t cache_conflicts = 0;   ///< misses bypassed (slot taken)
  };

  /// Answer `pairs` into `out` (resized to match) under `policy`, in
  /// parallel via parallel_for_balanced.  Outputs and the returned
  /// counters are bit-identical across thread counts.  An optional
  /// caller-owned `cache` short-circuits repeated pairs; served values are
  /// bit-identical with and without it (one cache per query stream — the
  /// classification pass mutates it, so no concurrent batches).
  BatchStats query_batch(const std::vector<std::pair<Vertex, Vertex>>& pairs,
                         AggregatePolicy policy, std::vector<Weight>& out,
                         HotPairCache* cache = nullptr) const;

  /// Persist / restore through the versioned format (one position-tracking
  /// writer/reader spans the whole artefact).  `version` exists for
  /// compatibility fixtures — production saves use the default (v3).
  void save(std::ostream& os, std::uint32_t version = kFormatVersion) const;
  [[nodiscard]] static FrtEnsemble load(std::istream& is);
  /// Zero-copy load: mmap `path` (format v3 required) and point every
  /// index's persisted arrays straight at the mapping; only the derived
  /// tables are rebuilt.  The returned ensemble owns the mapping (shared,
  /// so moves/copies through the registry keep it alive).
  [[nodiscard]] static FrtEnsemble load_mapped(const std::string& path);
  [[nodiscard]] static FrtEnsemble load_mapped(MappedFile file);

  friend bool operator==(const FrtEnsemble& a, const FrtEnsemble& b) {
    return a.master_seed_ == b.master_seed_ &&
           a.graph_fingerprint_ == b.graph_fingerprint_ &&
           a.indices_ == b.indices_;
  }

 private:
  /// Rebuild the derived structure-of-arrays query layout (leaf_pos_soa_).
  /// Every path that produces a servable ensemble (build/load/load_mapped)
  /// ends here.
  void finalize_query_layout();

  std::vector<FrtIndex> indices_;
  std::uint64_t master_seed_ = 0;
  std::uint64_t graph_fingerprint_ = 0;
  EnsembleBuildStats stats_{};  // build-time only; not persisted
  // Derived: leaf tour positions interleaved [vertex·k + tree] so the
  // batch kernel's per-pair loop over trees reads contiguous words.
  std::vector<std::uint32_t> leaf_pos_soa_;
  // Keeps a mapped file image alive for the indices' views (null when the
  // ensemble owns its arrays).  shared_ptr: registry entries and tenant
  // references all pin the same mapping.
  std::shared_ptr<const MappedFile> mapping_;
};

[[nodiscard]] AggregatePolicy parse_policy(const std::string& name);
[[nodiscard]] const char* policy_name(AggregatePolicy policy) noexcept;

}  // namespace pmte::serve
