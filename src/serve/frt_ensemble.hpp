#pragma once
// Ensemble of independently-seeded FRT serving indices.
//
// A single FRT tree only guarantees O(log n) *expected* stretch; serving
// systems (Blelloch–Gu–Sun, PAPERS.md) recover the practical quality by
// querying k independent trees and aggregating.  FrtEnsemble builds k
// FrtIndex instances over the same graph:
//
//   Randomness  — per-tree RNG streams derive from one master seed via
//                 split_seed(master, 1 + t) (stream 0 feeds the shared
//                 hop-set / simulated-graph randomness of the oracle
//                 pipeline).  Each tree is a fixed function of (graph,
//                 master, t), so the ensemble is reproducible regardless
//                 of build order and thread count.
//   Build       — trees build in parallel (parallel_for over slots; the
//                 per-tree engine loops detect the enclosing region and
//                 run serially).  The oracle pipeline shares one simulated
//                 graph across all trees, amortising the hop set.
//   Queries     — query(u, v, policy) aggregates the k O(1) index lookups
//                 with `min` (tightest dominating estimate; every tree
//                 dominates dist_G, hence so does the min) or `median`
//                 (robust distance-weighted-stretch estimate; the upper
//                 median for even k, so it stays dominating too).
//   Batches     — query_batch answers a pair list via
//                 parallel_for_balanced and reports deterministic logical
//                 counters (pairs, per-tree lookups, sparse-table probes)
//                 for the CI bench gate; outputs are bit-identical across
//                 thread counts.
//   Hot pairs   — an optional caller-owned HotPairCache short-circuits
//                 repeated pairs (Zipf traffic): a serial classification
//                 pass decides hit/fill/bypass per pair, fills compute
//                 once in parallel, everything else is an array read.
//                 Served values are bit-identical with the cache on or
//                 off, and the hit/miss counters are deterministic at any
//                 thread count (see hot_pair_cache.hpp).
//
// save()/load() persist the whole ensemble (master seed + every index)
// in the versioned binary format; round-trips are exact.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "src/frt/pipelines.hpp"
#include "src/serve/frt_index.hpp"
#include "src/serve/hot_pair_cache.hpp"

namespace pmte::serve {

/// Which sampling pipeline produces the ensemble's trees.
enum class EnsemblePipeline { oracle, direct, sequential };

/// How per-tree distances collapse into one served value.
enum class AggregatePolicy { min, median };

struct EnsembleOptions {
  std::size_t trees = 8;
  EnsemblePipeline pipeline = EnsemblePipeline::oracle;
  FrtOptions frt;             ///< weight rule, ε̂, hop-set, engine tunables
  bool parallel_build = true; ///< results identical either way (split seeds)
};

/// Deterministic build accounting, summed over all trees (WorkDepth
/// logical-op deltas — thread-count independent; wall time is not).
struct EnsembleBuildStats {
  std::uint64_t work = 0;
  std::uint64_t relaxations = 0;
  std::uint64_t edges_touched = 0;
  std::uint64_t iterations = 0;    ///< top-level MBF iterations, summed
  std::uint64_t index_nodes = 0;   ///< flat nodes across all indices
  double seconds = 0.0;
};

class FrtEnsemble {
 public:
  FrtEnsemble() = default;

  /// Build `opts.trees` indices over `g` from one master seed.
  [[nodiscard]] static FrtEnsemble build(const Graph& g,
                                         std::uint64_t master_seed,
                                         const EnsembleOptions& opts = {});

  [[nodiscard]] std::size_t num_trees() const noexcept {
    return indices_.size();
  }
  [[nodiscard]] Vertex num_vertices() const noexcept {
    return indices_.empty() ? 0 : indices_.front().num_leaves();
  }
  [[nodiscard]] std::uint64_t master_seed() const noexcept {
    return master_seed_;
  }
  /// Fingerprint of the graph this ensemble was built over (persisted, so
  /// loaders can refuse to serve a different graph's distances).
  [[nodiscard]] std::uint64_t graph_fingerprint() const noexcept {
    return graph_fingerprint_;
  }

  /// FNV-1a over (n, every half-edge's target and weight bits) — a cheap
  /// structural identity for "same graph as at build time" checks.
  [[nodiscard]] static std::uint64_t fingerprint(const Graph& g);

  /// Registry identity of this ensemble: serve::registry_fingerprint over
  /// its serialized v2 prelude (header + master seed + graph fingerprint +
  /// tree count).  A pure function of the deterministic build inputs, so a
  /// freshly built ensemble and its save→load round-trip fingerprint
  /// identically; the many-tenant server keys its EnsembleRegistry on it.
  [[nodiscard]] std::uint64_t registry_fingerprint() const noexcept;
  [[nodiscard]] const FrtIndex& index(std::size_t t) const {
    return indices_[t];
  }
  [[nodiscard]] const EnsembleBuildStats& build_stats() const noexcept {
    return stats_;
  }

  /// Aggregated point query: k O(1) lookups + the policy fold.
  [[nodiscard]] Weight query(Vertex u, Vertex v,
                             AggregatePolicy policy) const;

  /// Deterministic logical counters of one batch (the bench-gate metrics).
  /// With a cache, tree_lookups / lca_probes count only the aggregates
  /// actually computed (fills + bypasses) — the quantity the cache saves.
  struct BatchStats {
    std::uint64_t pairs = 0;
    std::uint64_t tree_lookups = 0;  ///< computed pairs × trees
    std::uint64_t lca_probes = 0;    ///< sparse-table probes (u≠v only)
    std::uint64_t cache_hits = 0;    ///< pairs served from the cache
    std::uint64_t cache_misses = 0;  ///< cacheable pairs computed
  };

  /// Answer `pairs` into `out` (resized to match) under `policy`, in
  /// parallel via parallel_for_balanced.  Outputs and the returned
  /// counters are bit-identical across thread counts.  An optional
  /// caller-owned `cache` short-circuits repeated pairs; served values are
  /// bit-identical with and without it (one cache per query stream — the
  /// classification pass mutates it, so no concurrent batches).
  BatchStats query_batch(const std::vector<std::pair<Vertex, Vertex>>& pairs,
                         AggregatePolicy policy, std::vector<Weight>& out,
                         HotPairCache* cache = nullptr) const;

  void save(std::ostream& os) const;
  [[nodiscard]] static FrtEnsemble load(std::istream& is);

  friend bool operator==(const FrtEnsemble& a, const FrtEnsemble& b) {
    return a.master_seed_ == b.master_seed_ &&
           a.graph_fingerprint_ == b.graph_fingerprint_ &&
           a.indices_ == b.indices_;
  }

 private:
  [[nodiscard]] Weight aggregate(Vertex u, Vertex v, AggregatePolicy policy,
                                 Weight* scratch) const;

  std::vector<FrtIndex> indices_;
  std::uint64_t master_seed_ = 0;
  std::uint64_t graph_fingerprint_ = 0;
  EnsembleBuildStats stats_{};  // build-time only; not persisted
};

[[nodiscard]] AggregatePolicy parse_policy(const std::string& name);
[[nodiscard]] const char* policy_name(AggregatePolicy policy) noexcept;

}  // namespace pmte::serve
