#pragma once
// Deterministic query-pair workload generators for the serving layer.
//
// Three traffic shapes cover the regimes a distance service sees:
//
//   uniform    — both endpoints uniform over V; the textbook benchmark and
//                the worst case for any locality-exploiting cache.
//   bfs_local  — pairs inside small hop neighbourhoods (pick a centre,
//                collect a bounded-hop BFS ball, draw both endpoints from
//                it): models "nearby" traffic such as map or social
//                queries, and exercises the low tree levels where FRT
//                stretch is worst relative to dist_G.
//   zipf       — endpoints drawn from a Zipf(s) popularity ranking over a
//                random vertex permutation: models skewed entity
//                popularity; a handful of hot vertices dominate.
//
// All generators draw only from the caller's Rng, so a (graph, kind, seed)
// triple fixes the workload exactly — the bench gate and the thread-count
// determinism tests replay identical pair lists.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/util/rng.hpp"

namespace pmte::serve {

enum class WorkloadKind { uniform, bfs_local, zipf };

struct WorkloadOptions {
  std::size_t pairs = 1000;
  unsigned bfs_hops = 3;        ///< ball radius of bfs_local, in hops
  std::size_t bfs_ball_cap = 256;  ///< stop growing a ball beyond this
  double zipf_s = 1.1;          ///< Zipf exponent (popularity skew)
};

[[nodiscard]] std::vector<std::pair<Vertex, Vertex>> make_workload(
    const Graph& g, WorkloadKind kind, const WorkloadOptions& opts, Rng& rng);

[[nodiscard]] WorkloadKind parse_workload(const std::string& name);
[[nodiscard]] const char* workload_name(WorkloadKind kind) noexcept;

}  // namespace pmte::serve
