#pragma once
// Deterministic query-pair workload generators for the serving layer.
//
// Three traffic shapes cover the regimes a distance service sees:
//
//   uniform    — both endpoints uniform over V; the textbook benchmark and
//                the worst case for any locality-exploiting cache.
//   bfs_local  — pairs inside small hop neighbourhoods (pick a centre,
//                collect a bounded-hop BFS ball, draw both endpoints from
//                it): models "nearby" traffic such as map or social
//                queries, and exercises the low tree levels where FRT
//                stretch is worst relative to dist_G.
//   zipf       — endpoints drawn from a Zipf(s) popularity ranking over a
//                random vertex permutation: models skewed entity
//                popularity; a handful of hot vertices dominate.
//
// All generators draw only from the caller's Rng, so a (graph, kind, seed)
// triple fixes the workload exactly — the bench gate and the thread-count
// determinism tests replay identical pair lists.
//
// The multi-tenant generator composes single-tenant streams for the
// many-tenant server (server.hpp): per-tenant substreams draw from
// split_seed-derived streams and a separate seeded shuffle fixes the
// interleaving, so both the interleaved batch and every tenant's
// subsequence are pure functions of (graph, specs, seed).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/serve/tenant_router.hpp"
#include "src/util/rng.hpp"

namespace pmte::serve {

enum class WorkloadKind { uniform, bfs_local, zipf };

struct WorkloadOptions {
  std::size_t pairs = 1000;
  unsigned bfs_hops = 3;        ///< ball radius of bfs_local, in hops
  std::size_t bfs_ball_cap = 256;  ///< stop growing a ball beyond this
  double zipf_s = 1.1;          ///< Zipf exponent (popularity skew)
};

/// Generate opts.pairs query pairs of the given shape, drawing only from
/// `rng` — deterministic for a fixed (graph, kind, opts, rng state).
/// Self-pairs (u == v) may occur; the serving layer answers them as 0.
[[nodiscard]] std::vector<std::pair<Vertex, Vertex>> make_workload(
    const Graph& g, WorkloadKind kind, const WorkloadOptions& opts, Rng& rng);

/// Parse "uniform" | "bfs_local" ("bfs") | "zipf"; PMTE_CHECK-fails on
/// anything else.
[[nodiscard]] WorkloadKind parse_workload(const std::string& name);
[[nodiscard]] const char* workload_name(WorkloadKind kind) noexcept;

// --- Multi-tenant interleaved streams --------------------------------------

/// One tenant's substream inside an interleaved multi-tenant workload.
struct TenantStreamSpec {
  WorkloadKind kind = WorkloadKind::uniform;
  WorkloadOptions opts;
};

/// split_seed stream ids of the multi-tenant generator.  Streams ≥ 2³² are
/// reserved for non-tree consumers of a master seed (docs/ARCHITECTURE.md);
/// 2³² itself is the single-workload stream of serve_queries, tenant t
/// draws from kTenantWorkloadStreamBase + t, and the interleaving shuffle
/// from kTenantInterleaveStream — no consumer ever shares a stream.
inline constexpr std::uint64_t kTenantWorkloadStreamBase = std::uint64_t{1}
                                                           << 33;
inline constexpr std::uint64_t kTenantInterleaveStream =
    (std::uint64_t{1} << 33) - 1;

/// Interleaved multi-tenant query stream: tenant t's subsequence is
/// exactly make_workload(g, specs[t], Rng(split_seed(seed,
/// kTenantWorkloadStreamBase + t))) in order, and the positions of the
/// tenants in the merged stream are a Fisher–Yates shuffle of the tenant
/// tags drawn from kTenantInterleaveStream.  Total length = Σ
/// specs[t].opts.pairs.  Deterministic in (g, specs, seed); per-tenant
/// subsequences are independent of the other tenants' specs, so adding a
/// tenant never perturbs existing streams' queries (only their
/// interleaving).
[[nodiscard]] std::vector<TenantQuery> make_multi_tenant_workload(
    const Graph& g, const std::vector<TenantStreamSpec>& specs,
    std::uint64_t seed);

}  // namespace pmte::serve
