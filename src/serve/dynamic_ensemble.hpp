#pragma once
// Incrementally maintained FRT ensemble (docs/DYNAMIC.md).
//
// FrtEnsemble is immutable by design — the serving layer shares it across
// tenants and epochs.  DynamicEnsemble is the mutable build-side
// counterpart for live edge-weight updates: it owns a mutable copy of the
// graph, the shared simulated graph H (stream 0 of the master seed,
// exactly as FrtEnsemble::build constructs it), one retained DynamicFrt
// maintainer per tree (streams 1..k), and the current flat indices.
//
//   update(u, v, w)  — applies the re-weighting to the graph and to H's
//                      base *once* (all maintainers observe one shared H;
//                      the engines read weights live), lets every
//                      maintainer converge to the new fixpoint (decrease:
//                      warm continuation; increase: invalidate + re-run),
//                      and rebuilds only the indices whose trees changed.
//   snapshot()       — wraps copies of the current indices into an
//                      immutable FrtEnsemble, fingerprinted over the
//                      *mutated* graph: with zero updates it compares ==
//                      to FrtEnsemble::build(g, seed, opts), and after
//                      updates it carries a new registry fingerprint, so
//                      Server::load + stage_swap republish it to tenants
//                      at the next batch boundary without colliding with
//                      the pre-update epoch.
//
// Update semantics: the re-weighting applies to G' — the hop-set-augmented
// graph the oracle iterates on.  Shortcut edges the hop set derived from
// the old weight of {u,v} are *not* re-derived (a full static rebuild
// would sample a different hop set); the maintained metric is exactly
// "the built H with this base edge re-weighted", and the
// rebuild-differential harness pins it against a fresh oracle run on that
// same H.  Only weight *changes* of existing edges are supported —
// insertions/deletions change the CSR shape and the hop set.
//
// Not copyable/movable: the maintainers point at the member H.
// Single-writer, like Server: one update()/snapshot() at a time.

#include <cstdint>
#include <memory>
#include <vector>

#include "src/frt/dynamic_frt.hpp"
#include "src/serve/frt_ensemble.hpp"

namespace pmte::serve {

class DynamicEnsemble {
 public:
  /// Build the maintained state over `g` — same randomness layout as
  /// FrtEnsemble::build (oracle pipeline required: the incremental path
  /// *is* the retained oracle).
  DynamicEnsemble(const Graph& g, std::uint64_t master_seed,
                  const EnsembleOptions& opts = {});

  DynamicEnsemble(const DynamicEnsemble&) = delete;
  DynamicEnsemble& operator=(const DynamicEnsemble&) = delete;

  /// Deterministic per-update accounting (logical counts — identical at
  /// any thread count; relaxations is the bench_dynamic gate metric).
  struct UpdateStats {
    /// Warm (no-invalidation) path taken: the *G'* weight did not grow.
    /// Judged against G', not the input graph — a cheaper hop-set
    /// shortcut merged into {u,v} can make a graph-level decrease a
    /// G'-level increase, which must invalidate.
    bool incremental = false;
    std::size_t trees_rebuilt = 0;  ///< indices rebuilt (tree changed)
    std::uint64_t levels_recomputed = 0;  ///< warm + full level runs
    std::uint64_t levels_skipped = 0;     ///< absorbed-input skips
    std::uint64_t relaxations = 0;        ///< engine relaxations this update
  };

  /// Re-weight the existing edge {u,v} to `new_weight` and converge every
  /// maintainer.  The change is visible to snapshot() immediately and to
  /// tenants once the snapshot is republished through the Server.
  UpdateStats update(Vertex u, Vertex v, Weight new_weight);

  /// Immutable serving snapshot of the current state (see class comment).
  [[nodiscard]] FrtEnsemble snapshot() const;

  [[nodiscard]] const Graph& graph() const noexcept { return g_; }
  [[nodiscard]] std::uint64_t master_seed() const noexcept {
    return master_seed_;
  }
  [[nodiscard]] std::size_t num_trees() const noexcept {
    return maintainers_.size();
  }
  [[nodiscard]] std::uint64_t updates_applied() const noexcept {
    return updates_;
  }
  [[nodiscard]] const DynamicFrt& maintainer(std::size_t t) const {
    return *maintainers_[t];
  }

 private:
  /// Stream-0 shared randomness, exactly as FrtEnsemble::build: hub hop
  /// set + level sampling.
  [[nodiscard]] static SimulatedGraph make_h(const Graph& g,
                                             std::uint64_t master_seed,
                                             const EnsembleOptions& opts);

  Graph g_;  ///< mutable copy; fingerprints and hints read the live state
  std::uint64_t master_seed_;
  EnsembleOptions opts_;
  SimulatedGraph h_;  ///< shared by every maintainer's engine
  std::vector<std::unique_ptr<DynamicFrt>> maintainers_;  // per tree
  std::vector<FrtIndex> indices_;  ///< current flat indices, kept in sync
  std::uint64_t updates_ = 0;
};

}  // namespace pmte::serve
