#pragma once
// Flat, read-only serving index over one FRT tree.
//
// FrtTree is a build-time structure: nodes own std::vector children, and
// distance() walks tuple suffixes — fine for construction-side checks, too
// pointer-heavy for query traffic.  FrtIndex compacts a finished tree into
// a handful of flat arrays sized once at build time:
//
//   euler_node_ / euler_level_   Euler tour of the tree (2·nodes − 1
//                                positions); the tour visits a node once
//                                per child boundary, so the LCA of two
//                                leaves is the maximum-level node between
//                                their tour positions.
//   sparse_                      sparse-table RMQ (range *max* of
//                                euler_level_, ⌈log₂⌉ rows): any range
//                                query is 2 table probes → O(1) LCA.
//   wdepth_                      per-node prefix sum of root-path edge
//                                weights, so in general
//                                dist_T(u,v) = wdepth[u] + wdepth[v]
//                                              − 2·wdepth[lca].
//   dist_by_lca_level_           the same quantity specialised to FRT
//                                trees: all leaves sit at level 0 and edge
//                                weights are uniform per level, so
//                                2·(wdepth[leaf] − wdepth[lca]) depends
//                                only on the LCA level.  The table is
//                                copied verbatim from
//                                FrtTree::distance_by_lca_level(), which
//                                makes distance() bit-identical to
//                                FrtTree::distance — no re-derived
//                                floating-point sums.
//   edge_weight_by_level_        per-level parent-edge weight, copied
//                                verbatim from FrtTree::edge_weight(l); the
//                                apps' flat tree walks (buy-at-bulk flow
//                                pricing) read it instead of per-node
//                                parent_edge fields.
//
// distance() is O(1): two array reads to map leaves to tour positions, two
// sparse-table probes, one compare, one table lookup.  No allocation, no
// pointer chasing; the index is immutable after build, so concurrent
// queries from any number of threads are safe.
//
// Beyond point queries the index exposes the flat tree *structure* so the
// applications (src/apps/) never touch FrtTree's pointer-based nodes on
// their query paths: euler_nodes()/euler_levels() (the tour itself),
// children(id) (CSR adjacency derived from the tour, in the source tree's
// child order), leaf_vertex(id), and root().  Node ids are the source
// tree's numbering, and parents always precede children, so iterating ids
// descending is a valid bottom-up (children-first) order.
//
// save()/load() persist every non-derived array through the versioned
// binary format of serialize.hpp (normative layout: docs/FORMAT.md); the
// sparse table and the CSR/leaf-vertex maps are rebuilt deterministically
// on load, so save→load→save is byte-identical.  The persisted arrays are
// ArraySections — owned vectors after build() or a stream load, zero-copy
// views into a file mapping after load_mapped_from() (only the derived
// tables are materialised then; the mapping's owner keeps it alive, see
// FrtEnsemble).  Queries read through the view either way, so served
// doubles are bit-identical between the two load paths.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "src/frt/frt_tree.hpp"
#include "src/serve/serialize.hpp"
#include "src/util/types.hpp"

namespace pmte::serve {

class FrtIndex {
 public:
  using NodeId = FrtTree::NodeId;

  FrtIndex() = default;

  /// Flatten a built FRT tree.  O(nodes·log nodes) time and space (the
  /// sparse table dominates).
  [[nodiscard]] static FrtIndex build(const FrtTree& tree);

  [[nodiscard]] Vertex num_leaves() const noexcept {
    return static_cast<Vertex>(leaf_pos_.size());
  }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return node_level_.size();
  }
  [[nodiscard]] unsigned num_levels() const noexcept { return levels_; }
  [[nodiscard]] double beta() const noexcept { return beta_; }
  [[nodiscard]] bool empty() const noexcept { return node_level_.empty(); }
  /// Whether the persisted arrays view a file mapping (zero-copy load).
  [[nodiscard]] bool is_mapped() const noexcept {
    return node_level_.is_mapped();
  }

  /// Tree distance between the leaves of u and v — O(1), two sparse-table
  /// probes (kLcaProbesPerQuery), no per-query allocation.  Bit-identical
  /// to FrtTree::distance of the source tree.
  [[nodiscard]] Weight distance(Vertex u, Vertex v) const;

  /// Lowest common ancestor of the leaves of u and v (node id of the
  /// source tree's numbering) and its level.
  [[nodiscard]] NodeId lca(Vertex u, Vertex v) const;
  [[nodiscard]] unsigned lca_level(Vertex u, Vertex v) const;

  /// Root-path weight prefix sum of a node (0 at the root).
  [[nodiscard]] Weight weighted_depth(NodeId id) const {
    return wdepth_[id];
  }
  [[nodiscard]] unsigned level(NodeId id) const { return node_level_[id]; }

  /// dist_T for an LCA at `level` (copied from the source tree).
  [[nodiscard]] Weight distance_at_lca_level(unsigned lvl) const {
    return dist_by_lca_level_[lvl];
  }
  /// The full LCA-level distance table (levels_ entries, strictly
  /// increasing; entry 0 is 0.0).
  [[nodiscard]] std::span<const Weight> distance_by_lca_level()
      const noexcept {
    return dist_by_lca_level_;
  }

  /// Weight of the edge from a level-`lvl` node to its parent, copied
  /// verbatim from FrtTree::edge_weight(lvl).  The root level has no
  /// parent edge; reading it returns the tree's value anyway (uniform-rule
  /// extrapolation) — callers skip the root explicitly.
  [[nodiscard]] Weight edge_weight(unsigned lvl) const {
    return edge_weight_by_level_[lvl];
  }

  // --- Flat structure (query-path substitute for FrtTree::Node) ---------

  /// Root node id (the first tour position).
  [[nodiscard]] NodeId root() const { return euler_node_.front(); }

  /// Children of `id` in the source tree's child order — a CSR view
  /// derived from the Euler tour, no per-node heap vectors.
  [[nodiscard]] std::span<const NodeId> children(NodeId id) const {
    return {child_list_.data() + child_offset_[id],
            child_offset_[id + 1] - child_offset_[id]};
  }

  /// Original graph vertex of a leaf node (no_vertex() for inner nodes).
  [[nodiscard]] Vertex leaf_vertex(NodeId id) const {
    return node_leaf_vertex_[id];
  }

  /// Leaf node id of a graph vertex (inverse of leaf_vertex on leaves).
  [[nodiscard]] NodeId leaf_node(Vertex v) const {
    return euler_node_[leaf_pos_[v]];
  }

  /// Euler tour views (tour position → node id / level).
  [[nodiscard]] std::span<const std::uint32_t> euler_nodes() const noexcept {
    return euler_node_;
  }
  [[nodiscard]] std::span<const std::uint32_t> euler_levels() const noexcept {
    return euler_level_;
  }

  // --- Query-kernel internals (FrtEnsemble's SoA batch kernel) -----------

  /// Per-vertex leaf tour positions (vertex → tour position).
  [[nodiscard]] std::span<const std::uint32_t> leaf_positions()
      const noexcept {
    return leaf_pos_;
  }
  /// The RMQ sparse table, row-major with stride euler_levels().size():
  /// row j, column i holds the tour position of the max level in
  /// [i, i + 2^j).  Derived (never persisted) and rebuilt on every load.
  [[nodiscard]] std::span<const std::uint32_t> sparse_table()
      const noexcept {
    return sparse_;
  }

  /// Sparse-table probes per u ≠ v distance query (u == v costs none).
  /// bench_serve's deterministic counters are multiples of this.
  static constexpr std::uint64_t kLcaProbesPerQuery = 2;

  /// Structural validation of the flat arrays (tour shape, leaf positions,
  /// wdepth consistency with dist_by_lca_level_).  Throws on violation.
  void validate() const;

  /// Persist / restore through the versioned format.  The writer/reader
  /// variants share one position-tracking writer across an enclosing
  /// artefact (FrtEnsemble embeds k index artefacts in one file); the
  /// stream variants wrap them for standalone files.  `version` exists for
  /// compatibility fixtures — production saves use the default.
  void save(std::ostream& os, std::uint32_t version = kFormatVersion) const;
  void save_into(BinaryWriter& w) const;
  [[nodiscard]] static FrtIndex load(std::istream& is);
  [[nodiscard]] static FrtIndex load_from(BinaryReader& r);
  /// Zero-copy load: the persisted arrays become views into the reader's
  /// image; only the derived tables (sparse RMQ, children CSR, leaf maps)
  /// are materialised.  The caller owns the backing memory and must keep
  /// it alive for the index's lifetime (FrtEnsemble holds the MappedFile).
  [[nodiscard]] static FrtIndex load_mapped_from(MappedReader& r);

  /// Equality over the persisted state (derived tables excluded — they are
  /// a function of it).  Backs the round-trip tests; sections compare by
  /// content, so a mapped index equals its by-copy twin.
  friend bool operator==(const FrtIndex& a, const FrtIndex& b) {
    return a.levels_ == b.levels_ && a.beta_ == b.beta_ &&
           a.node_level_ == b.node_level_ && a.wdepth_ == b.wdepth_ &&
           a.euler_node_ == b.euler_node_ &&
           a.euler_level_ == b.euler_level_ && a.leaf_pos_ == b.leaf_pos_ &&
           a.dist_by_lca_level_ == b.dist_by_lca_level_ &&
           a.edge_weight_by_level_ == b.edge_weight_by_level_;
  }

 private:
  /// Tour position of the maximum-level node in the inclusive position
  /// range spanned by a and b (the LCA when a, b are leaf positions).
  [[nodiscard]] std::uint32_t lca_pos(std::uint32_t a, std::uint32_t b) const;

  /// Validate + rebuild every derived table (shared load tail).
  void finish_load();
  /// (Re)derive the sparse table from the Euler arrays.
  void build_sparse_table();
  /// (Re)derive the children CSR and leaf-vertex map from the tour.
  void build_structure_maps();

  unsigned levels_ = 1;
  double beta_ = 1.0;
  // Persisted arrays: owned after build()/load(), mapped views after
  // load_mapped_from() (see ArraySection).
  ArraySection<std::uint32_t> node_level_;   // node → level
  ArraySection<Weight> wdepth_;              // node → root-path weight
  ArraySection<std::uint32_t> euler_node_;   // tour position → node
  ArraySection<std::uint32_t> euler_level_;  // tour position → level
  ArraySection<std::uint32_t> leaf_pos_;     // vertex → tour position
  ArraySection<Weight> dist_by_lca_level_;   // LCA level → dist_T
  ArraySection<Weight> edge_weight_by_level_;  // level → parent-edge weight
  // Derived, rebuilt on load: row j holds, per position i, the tour
  // position of the max level in [i, i + 2^j); row-major, stride = tour
  // length.
  std::vector<std::uint32_t> sparse_;
  unsigned sparse_rows_ = 0;
  // Derived, rebuilt on load: children in CSR layout (source child order)
  // and the leaf-node → graph-vertex inverse of leaf_pos_.
  std::vector<std::uint32_t> child_offset_;      // node → first child slot
  std::vector<NodeId> child_list_;               // concatenated children
  std::vector<Vertex> node_leaf_vertex_;         // node → vertex (leaves)
};

}  // namespace pmte::serve
