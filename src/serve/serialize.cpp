#include "src/serve/serialize.hpp"

#include <cstring>
#include <istream>
#include <ostream>

#include "src/util/assertions.hpp"
#include "src/util/rng.hpp"

namespace pmte::serve {

std::uint64_t registry_fingerprint(const char (&magic)[8],
                                   std::uint64_t master_seed,
                                   std::uint64_t graph_fingerprint,
                                   std::uint64_t tree_count) noexcept {
  // Fold the serialized prelude word by word: the 8 magic bytes as one
  // little-endian-in-memory u64, then the header/identity words in the
  // order BinaryWriter emits them.
  std::uint64_t magic_word = 0;
  std::memcpy(&magic_word, magic, sizeof(magic_word));
  std::uint64_t hash = fnv1a_fold(kFnv1aInit, magic_word);
  hash = fnv1a_fold(hash, kEndianProbe);
  hash = fnv1a_fold(hash, kFormatVersion);
  hash = fnv1a_fold(hash, master_seed);
  hash = fnv1a_fold(hash, graph_fingerprint);
  return fnv1a_fold(hash, tree_count);
}

void BinaryWriter::bytes(const void* data, std::size_t n) {
  os_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  PMTE_CHECK(os_.good(), "serve serialisation: write failed");
}

void BinaryWriter::magic(const char (&m)[8]) {
  bytes(m, sizeof(m));
  u32(kEndianProbe);
  u32(kFormatVersion);
}

void BinaryWriter::u32(std::uint32_t v) { bytes(&v, sizeof(v)); }
void BinaryWriter::u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
void BinaryWriter::f64(double v) { bytes(&v, sizeof(v)); }

void BinaryWriter::vec_u32(const std::vector<std::uint32_t>& v) {
  u64(v.size());
  bytes(v.data(), v.size() * sizeof(std::uint32_t));
}

void BinaryWriter::vec_f64(const std::vector<double>& v) {
  u64(v.size());
  bytes(v.data(), v.size() * sizeof(double));
}

void BinaryReader::bytes(void* data, std::size_t n) {
  is_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  PMTE_CHECK(static_cast<std::size_t>(is_.gcount()) == n,
             "serve serialisation: truncated input");
}

void BinaryReader::expect_magic(const char (&m)[8]) {
  char got[8];
  bytes(got, sizeof(got));
  PMTE_CHECK(std::memcmp(got, m, sizeof(got)) == 0,
             "serve serialisation: bad magic (not a serving-layer file, or "
             "the wrong artefact kind)");
  PMTE_CHECK(u32() == kEndianProbe,
             "serve serialisation: endianness mismatch");
  const std::uint32_t version = u32();
  PMTE_CHECK(version == kFormatVersion,
             "serve serialisation: unsupported format version");
}

std::uint32_t BinaryReader::u32() {
  std::uint32_t v;
  bytes(&v, sizeof(v));
  return v;
}

std::uint64_t BinaryReader::u64() {
  std::uint64_t v;
  bytes(&v, sizeof(v));
  return v;
}

double BinaryReader::f64() {
  double v;
  bytes(&v, sizeof(v));
  return v;
}

void BinaryReader::check_capacity(std::uint64_t n, std::size_t elem_size) {
  const auto cur = is_.tellg();
  if (cur != std::istream::pos_type(-1)) {
    is_.seekg(0, std::ios::end);
    const auto end = is_.tellg();
    is_.seekg(cur);
    if (end != std::istream::pos_type(-1) && end >= cur) {
      const auto remaining = static_cast<std::uint64_t>(end - cur);
      PMTE_CHECK(n <= remaining / elem_size,
                 "serve serialisation: length prefix exceeds remaining input");
      return;
    }
  }
  // Non-seekable stream: fall back to a hard cap (2^28 elements ≈ 2 GiB
  // of doubles — far above any real index, far below an OOM-killer trip).
  PMTE_CHECK(n <= (1ULL << 28), "serve serialisation: absurd array length");
}

std::vector<std::uint32_t> BinaryReader::vec_u32() {
  const std::uint64_t n = u64();
  check_capacity(n, sizeof(std::uint32_t));
  std::vector<std::uint32_t> v(n);
  bytes(v.data(), v.size() * sizeof(std::uint32_t));
  return v;
}

std::vector<double> BinaryReader::vec_f64() {
  const std::uint64_t n = u64();
  check_capacity(n, sizeof(double));
  std::vector<double> v(n);
  bytes(v.data(), v.size() * sizeof(double));
  return v;
}

}  // namespace pmte::serve
