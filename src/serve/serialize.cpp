#include "src/serve/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "src/util/assertions.hpp"
#include "src/util/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PMTE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define PMTE_HAVE_MMAP 0
#endif

namespace pmte::serve {

namespace {

/// Padding bytes needed to advance `pos` to the next section boundary.
[[nodiscard]] constexpr std::size_t section_pad(std::uint64_t pos) noexcept {
  return static_cast<std::size_t>((kSectionAlign - pos % kSectionAlign) %
                                  kSectionAlign);
}

}  // namespace

std::uint64_t registry_fingerprint(const char (&magic)[8],
                                   std::uint64_t master_seed,
                                   std::uint64_t graph_fingerprint,
                                   std::uint64_t tree_count) noexcept {
  // Fold the serialized prelude word by word: the 8 magic bytes packed
  // explicitly little-endian (byte i into bits 8i — NOT a native-order
  // memcpy, which would make the fingerprint differ between hosts of
  // opposite endianness), then the header/identity words in the order
  // BinaryWriter emits them.
  std::uint64_t magic_word = 0;
  for (std::size_t i = 0; i < sizeof(magic); ++i) {
    magic_word |= static_cast<std::uint64_t>(
                      static_cast<unsigned char>(magic[i]))
                  << (8 * i);
  }
  std::uint64_t hash = fnv1a_fold(kFnv1aInit, magic_word);
  hash = fnv1a_fold(hash, kEndianProbe);
  hash = fnv1a_fold(hash, kFormatVersion);
  hash = fnv1a_fold(hash, master_seed);
  hash = fnv1a_fold(hash, graph_fingerprint);
  return fnv1a_fold(hash, tree_count);
}

LoadPathCounters& load_path_counters() noexcept {
  static LoadPathCounters counters;
  return counters;
}

void reset_load_path_counters() noexcept {
  load_path_counters() = LoadPathCounters{};
}

// --- BinaryWriter ----------------------------------------------------------

BinaryWriter::BinaryWriter(std::ostream& os, std::uint32_t version)
    : os_(os), version_(version) {
  PMTE_CHECK(version >= kMinFormatVersion && version <= kFormatVersion,
             "serve serialisation: writer version out of supported range");
}

void BinaryWriter::bytes(const void* data, std::size_t n) {
  if (n == 0) return;  // data may be null for an empty array
  os_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  PMTE_CHECK(os_.good(), "serve serialisation: write failed");
  pos_ += n;
}

void BinaryWriter::pad_to_section() {
  if (version_ < 3) return;
  static constexpr char kZeros[kSectionAlign] = {};
  bytes(kZeros, section_pad(pos_));
}

void BinaryWriter::magic(const char (&m)[8]) {
  bytes(m, sizeof(m));
  u32(kEndianProbe);
  u32(version_);
}

void BinaryWriter::u32(std::uint32_t v) { bytes(&v, sizeof(v)); }
void BinaryWriter::u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
void BinaryWriter::f64(double v) { bytes(&v, sizeof(v)); }

void BinaryWriter::vec_u32(std::span<const std::uint32_t> v) {
  u64(v.size());
  pad_to_section();
  bytes(v.data(), v.size() * sizeof(std::uint32_t));
}

void BinaryWriter::vec_f64(std::span<const double> v) {
  u64(v.size());
  pad_to_section();
  bytes(v.data(), v.size() * sizeof(double));
}

// --- BinaryReader ----------------------------------------------------------

BinaryReader::BinaryReader(std::istream& is) : is_(is) {
  // One size probe per load: remember how many bytes lie between here and
  // the stream end, then track the running position — vec reads validate
  // their length prefix against (remaining_ - pos_) without any further
  // tellg/seekg round-trips.
  const auto cur = is_.tellg();
  if (cur != std::istream::pos_type(-1)) {
    is_.seekg(0, std::ios::end);
    const auto end = is_.tellg();
    is_.seekg(cur);
    if (end != std::istream::pos_type(-1) && end >= cur) {
      remaining_ = static_cast<std::uint64_t>(end - cur);
      size_known_ = true;
    }
  }
}

void BinaryReader::bytes(void* data, std::size_t n) {
  if (n == 0) return;  // data may be null for an empty array
  is_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  PMTE_CHECK(static_cast<std::size_t>(is_.gcount()) == n,
             "serve serialisation: truncated input");
  pos_ += n;
}

void BinaryReader::expect_magic(const char (&m)[8]) {
  char got[8];
  bytes(got, sizeof(got));
  PMTE_CHECK(std::memcmp(got, m, sizeof(got)) == 0,
             "serve serialisation: bad magic (not a serving-layer file, or "
             "the wrong artefact kind)");
  PMTE_CHECK(u32() == kEndianProbe,
             "serve serialisation: endianness mismatch");
  const std::uint32_t version = u32();
  PMTE_CHECK(version >= kMinFormatVersion && version <= kFormatVersion,
             "serve serialisation: unsupported format version");
  PMTE_CHECK(version_ == 0 || version_ == version,
             "serve serialisation: artefacts in one file disagree on the "
             "format version");
  version_ = version;
}

std::uint32_t BinaryReader::u32() {
  std::uint32_t v;
  bytes(&v, sizeof(v));
  return v;
}

std::uint64_t BinaryReader::u64() {
  std::uint64_t v;
  bytes(&v, sizeof(v));
  return v;
}

double BinaryReader::f64() {
  double v;
  bytes(&v, sizeof(v));
  return v;
}

void BinaryReader::skip_section_padding() {
  PMTE_CHECK(version_ != 0,
             "serve serialisation: array read before any magic");
  if (version_ < 3) return;
  char sink[kSectionAlign];
  bytes(sink, section_pad(pos_));  // content ignored; writers zero it
}

void BinaryReader::check_capacity(std::uint64_t n, std::size_t elem_size) {
  if (size_known_) {
    const std::uint64_t avail = remaining_ - pos_;
    PMTE_CHECK(n <= avail / elem_size,
               "serve serialisation: length prefix exceeds remaining input");
    return;
  }
  // Non-seekable stream: fall back to a hard cap (2^28 elements ≈ 2 GiB
  // of doubles — far above any real index, far below an OOM-killer trip).
  PMTE_CHECK(n <= (1ULL << 28), "serve serialisation: absurd array length");
}

std::vector<std::uint32_t> BinaryReader::vec_u32() {
  const std::uint64_t n = u64();
  skip_section_padding();
  check_capacity(n, sizeof(std::uint32_t));
  std::vector<std::uint32_t> v(n);
  bytes(v.data(), v.size() * sizeof(std::uint32_t));
  load_path_counters().bulk_bytes_copied += n * sizeof(std::uint32_t);
  ++load_path_counters().sections_copied;
  return v;
}

std::vector<double> BinaryReader::vec_f64() {
  const std::uint64_t n = u64();
  skip_section_padding();
  check_capacity(n, sizeof(double));
  std::vector<double> v(n);
  bytes(v.data(), v.size() * sizeof(double));
  load_path_counters().bulk_bytes_copied += n * sizeof(double);
  ++load_path_counters().sections_copied;
  return v;
}

// --- MappedFile ------------------------------------------------------------

MappedFile::MappedFile(const std::string& path) {
#if PMTE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  PMTE_CHECK(fd >= 0, "MappedFile: cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    PMTE_CHECK(false, "MappedFile: cannot stat (or empty file) " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the inode alive
  PMTE_CHECK(addr != MAP_FAILED, "MappedFile: mmap failed for " + path);
  addr_ = addr;
  size_ = size;
#else
  // No mmap on this platform: read the file into a heap buffer whose base
  // is aligned to kSectionAlign, so MappedReader's alignment contract (and
  // the spans handed out) hold identically.  Not zero-copy — the load-path
  // counters still report sections as mapped because the *sections* are
  // views; the one-time whole-file read is the platform tax.
  std::ifstream in(path, std::ios::binary);
  PMTE_CHECK(in.good(), "MappedFile: cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  PMTE_CHECK(end > 0, "MappedFile: cannot stat (or empty file) " + path);
  const auto size = static_cast<std::size_t>(end);
  in.seekg(0);
  fallback_.resize(size + kSectionAlign);
  // pmte-lint: allow(pointer-hash-order: alignment adjustment of a fresh buffer, no ordering/hash on the value)
  const auto raw = reinterpret_cast<std::uintptr_t>(fallback_.data());
  const std::size_t mis = raw % kSectionAlign;
  auto* base = fallback_.data() + (mis != 0 ? kSectionAlign - mis : 0);
  in.read(reinterpret_cast<char*>(base), static_cast<std::streamsize>(size));
  PMTE_CHECK(static_cast<std::size_t>(in.gcount()) == size,
             "MappedFile: short read of " + path);
  addr_ = base;
  size_ = size;
#endif
}

void MappedFile::unmap() noexcept {
#if PMTE_HAVE_MMAP
  if (addr_ != nullptr) ::munmap(addr_, size_);
#endif
  addr_ = nullptr;
  size_ = 0;
  fallback_.clear();
}

MappedFile::~MappedFile() { unmap(); }

MappedFile::MappedFile(MappedFile&& o) noexcept
    : addr_(o.addr_), size_(o.size_), fallback_(std::move(o.fallback_)) {
  o.addr_ = nullptr;
  o.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& o) noexcept {
  if (this != &o) {
    unmap();
    addr_ = o.addr_;
    size_ = o.size_;
    fallback_ = std::move(o.fallback_);
    o.addr_ = nullptr;
    o.size_ = 0;
  }
  return *this;
}

// --- MappedReader ----------------------------------------------------------

MappedReader::MappedReader(std::span<const std::byte> image)
    : base_(image.data()), size_(image.size()) {
  PMTE_CHECK(base_ != nullptr && size_ > 0,
             "MappedReader: empty image");
  // The zero-copy views below derive their element alignment from the
  // base being section-aligned; mmap's page alignment always satisfies
  // this, a sub-span or hand-built buffer might not.
  // pmte-lint: allow(pointer-hash-order: alignment probe of a fixed base, no ordering/hash on the value)
  PMTE_CHECK(reinterpret_cast<std::uintptr_t>(base_) % kSectionAlign == 0,
             "MappedReader: image base is not 64-byte aligned");
}

void MappedReader::bytes(void* data, std::size_t n) {
  PMTE_CHECK(n <= size_ - pos_, "serve serialisation: truncated input");
  if (n == 0) return;
  std::memcpy(data, base_ + pos_, n);
  pos_ += n;
}

void MappedReader::expect_magic(const char (&m)[8]) {
  char got[8];
  bytes(got, sizeof(got));
  PMTE_CHECK(std::memcmp(got, m, sizeof(got)) == 0,
             "serve serialisation: bad magic (not a serving-layer file, or "
             "the wrong artefact kind)");
  PMTE_CHECK(u32() == kEndianProbe,
             "serve serialisation: endianness mismatch");
  const std::uint32_t version = u32();
  PMTE_CHECK(version >= 3 && version <= kFormatVersion,
             "serve serialisation: mapped load requires format v3 "
             "(re-save with the current writer, or load by stream)");
  PMTE_CHECK(version_ == 0 || version_ == version,
             "serve serialisation: artefacts in one file disagree on the "
             "format version");
  version_ = version;
}

std::uint32_t MappedReader::u32() {
  std::uint32_t v;
  bytes(&v, sizeof(v));
  return v;
}

std::uint64_t MappedReader::u64() {
  std::uint64_t v;
  bytes(&v, sizeof(v));
  return v;
}

double MappedReader::f64() {
  double v;
  bytes(&v, sizeof(v));
  return v;
}

void MappedReader::skip_section_padding() {
  PMTE_CHECK(version_ != 0,
             "serve serialisation: array read before any magic");
  const std::size_t pad = section_pad(pos_);
  PMTE_CHECK(pad <= size_ - pos_, "serve serialisation: truncated input");
  pos_ += pad;
}

std::span<const std::uint32_t> MappedReader::view_u32() {
  const std::uint64_t n = u64();
  skip_section_padding();
  PMTE_CHECK(pos_ % kSectionAlign == 0,
             "serve serialisation: misaligned v3 section");
  PMTE_CHECK(n <= (size_ - pos_) / sizeof(std::uint32_t),
             "serve serialisation: length prefix exceeds remaining input");
  const auto* p = reinterpret_cast<const std::uint32_t*>(base_ + pos_);
  pos_ += n * sizeof(std::uint32_t);
  ++load_path_counters().sections_mapped;
  return {p, static_cast<std::size_t>(n)};
}

std::span<const double> MappedReader::view_f64() {
  const std::uint64_t n = u64();
  skip_section_padding();
  PMTE_CHECK(pos_ % kSectionAlign == 0,
             "serve serialisation: misaligned v3 section");
  PMTE_CHECK(n <= (size_ - pos_) / sizeof(double),
             "serve serialisation: length prefix exceeds remaining input");
  const auto* p = reinterpret_cast<const double*>(base_ + pos_);
  pos_ += n * sizeof(double);
  ++load_path_counters().sections_mapped;
  return {p, static_cast<std::size_t>(n)};
}

}  // namespace pmte::serve
