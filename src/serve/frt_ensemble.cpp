#include "src/serve/frt_ensemble.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <optional>
#include <string>

#include "src/obs/obs.hpp"
#include "src/parallel/counters.hpp"
#include "src/parallel/parallel.hpp"
#include "src/serve/serialize.hpp"
#include "src/util/assertions.hpp"
#include "src/util/timer.hpp"

namespace pmte::serve {

namespace {

#if PMTE_OBS
/// Ensemble-wide instruments, bound once on first use.  batch_pairs is a
/// logical-value histogram (deterministic bucket counts); *_duration_ns
/// histograms are wall-time and informational only.
struct EnsembleObs {
  obs::Counter& builds;
  obs::Counter& loads_copied;
  obs::Counter& loads_mapped;
  obs::Histogram& build_ns;
  obs::Histogram& batch_pairs;
  obs::Histogram& batch_ns;
};

EnsembleObs& ensemble_obs() {
  auto& reg = obs::registry();
  static EnsembleObs o{
      reg.counter("pmte_ensemble_builds_total", {}, "FrtEnsemble builds"),
      reg.counter("pmte_ensemble_loads_copied_total", {},
                  "Ensemble loads through the copying stream reader"),
      reg.counter("pmte_ensemble_loads_mapped_total", {},
                  "Ensemble loads through the zero-copy mmap reader"),
      reg.histogram("pmte_ensemble_build_duration_ns", {},
                    "Ensemble build wall time in ns (informational)"),
      reg.histogram("pmte_serve_batch_pairs", {},
                    "query_batch size in pairs (logical value — "
                    "deterministic bucket counts)"),
      reg.histogram("pmte_serve_batch_duration_ns", {},
                    "query_batch wall time in ns (informational)"),
  };
  return o;
}
#endif  // PMTE_OBS

inline void prefetch_ro(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

/// Flat per-tree pointers for the batch kernel — one cheap array of these
/// per batch keeps the hot loop free of FrtIndex indirection.  The
/// pointers alias the indices' sections (owned or mapped), which outlive
/// the batch.
struct TreeView {
  const std::uint32_t* sparse;       ///< RMQ table, row-major
  const std::uint32_t* euler_level;  ///< tour position → level
  std::size_t tour_len;              ///< sparse-table row stride
  const Weight* dist_by_level;       ///< LCA level → dist_T
};

[[nodiscard]] std::vector<TreeView> tree_views(
    const std::vector<FrtIndex>& indices) {
  std::vector<TreeView> views(indices.size());
  for (std::size_t t = 0; t < indices.size(); ++t) {
    const FrtIndex& idx = indices[t];
    views[t] = TreeView{idx.sparse_table().data(), idx.euler_levels().data(),
                        idx.euler_levels().size(),
                        idx.distance_by_lca_level().data()};
  }
  return views;
}

/// Per-thread workspace of the kernel: k distances plus the per-tree probe
/// coordinates staged between the two phases.
struct KernelScratch {
  Weight* dist;               ///< k aggregation inputs, contiguous
  const std::uint32_t** row;  ///< k sparse-table rows
  std::uint32_t* lo;          ///< k left probe columns
  std::uint32_t* hi;          ///< k right probe columns
};

/// The min-over-k / median-over-k aggregate for one u ≠ v pair, reading
/// the SoA leaf positions.  Two phases over the trees: phase 1 computes
/// every probe address and prefetches the two sparse-table words per tree
/// (the only cache-cold reads — each tree's table is ~N·log N words);
/// phase 2 consumes them and writes the k distances contiguously, so the
/// min fold is a vectorizable horizontal reduction.  Fold order and
/// values are identical to the scalar FrtIndex::distance path —
/// bit-identical serving, just denser.
[[nodiscard]] Weight aggregate_soa(const TreeView* tv, std::size_t k,
                                   const std::uint32_t* pos_u,
                                   const std::uint32_t* pos_v,
                                   AggregatePolicy policy,
                                   const KernelScratch& ws) {
  for (std::size_t t = 0; t < k; ++t) {
    std::uint32_t a = pos_u[t];
    std::uint32_t b = pos_v[t];
    if (a > b) std::swap(a, b);
    const std::uint32_t len = b - a + 1;
    const unsigned j = static_cast<unsigned>(std::bit_width(len)) - 1U;
    const std::uint32_t* row =
        tv[t].sparse + static_cast<std::size_t>(j) * tv[t].tour_len;
    ws.row[t] = row;
    ws.lo[t] = a;
    ws.hi[t] = b + 1 - (std::uint32_t{1} << j);
    prefetch_ro(row + a);
    prefetch_ro(row + ws.hi[t]);
  }
  for (std::size_t t = 0; t < k; ++t) {
    const std::uint32_t p1 = ws.row[t][ws.lo[t]];
    const std::uint32_t p2 = ws.row[t][ws.hi[t]];
    const std::uint32_t l1 = tv[t].euler_level[p1];
    const std::uint32_t l2 = tv[t].euler_level[p2];
    ws.dist[t] = tv[t].dist_by_level[l1 >= l2 ? l1 : l2];
  }
  if (policy == AggregatePolicy::min) {
    Weight best = ws.dist[0];
    for (std::size_t t = 1; t < k; ++t) best = std::min(best, ws.dist[t]);
    return best;
  }
  // Upper median: stays a per-tree value (no averaging), and every tree
  // dominates dist_G, so the served value does too.
  std::nth_element(ws.dist, ws.dist + k / 2, ws.dist + k);
  return ws.dist[k / 2];
}

}  // namespace

AggregatePolicy parse_policy(const std::string& name) {
  if (name == "min") return AggregatePolicy::min;
  if (name == "median") return AggregatePolicy::median;
  PMTE_CHECK(false, "unknown aggregation policy: " + name +
                        " (expected min|median)");
  return AggregatePolicy::min;  // unreachable
}

const char* policy_name(AggregatePolicy policy) noexcept {
  return policy == AggregatePolicy::min ? "min" : "median";
}

std::uint64_t FrtEnsemble::fingerprint(const Graph& g) {
  std::uint64_t hash = fnv1a_fold(kFnv1aInit, g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const auto& e : g.neighbors(v)) {
      hash = fnv1a_fold(hash, e.to);
      std::uint64_t bits;
      std::memcpy(&bits, &e.weight, sizeof(bits));
      hash = fnv1a_fold(hash, bits);
    }
  }
  return hash;
}

std::uint64_t FrtEnsemble::registry_fingerprint() const noexcept {
  return serve::registry_fingerprint(kEnsembleMagic, master_seed_,
                                     graph_fingerprint_, indices_.size());
}

void FrtEnsemble::finalize_query_layout() {
  const std::size_t k = indices_.size();
  const std::size_t n = indices_.empty()
                            ? 0
                            : static_cast<std::size_t>(
                                  indices_.front().num_leaves());
  leaf_pos_soa_.assign(n * k, 0);
  for (std::size_t t = 0; t < k; ++t) {
    const auto lp = indices_[t].leaf_positions();
    for (std::size_t v = 0; v < n; ++v) {
      leaf_pos_soa_[v * k + t] = lp[v];
    }
  }
}

FrtEnsemble FrtEnsemble::build(const Graph& g, std::uint64_t master_seed,
                               const EnsembleOptions& opts) {
  PMTE_CHECK(opts.trees >= 1, "FrtEnsemble: needs at least one tree");
  PMTE_CHECK(g.num_vertices() >= 1, "FrtEnsemble: empty graph");
  PMTE_OBS_SPAN("ensemble.build", static_cast<std::int64_t>(opts.trees),
                "trees", &ensemble_obs().build_ns);
  PMTE_OBS_ONLY(if (obs::metrics_on()) ensemble_obs().builds.add(1));
  const Timer timer;
  const WorkDepthScope scope;

  FrtEnsemble e;
  e.master_seed_ = master_seed;
  e.graph_fingerprint_ = fingerprint(g);
  e.indices_.resize(opts.trees);

  // Stream 0 of the master seed covers the randomness shared by all trees
  // (hub hop set + level sampling); streams 1..k seed the per-tree
  // β/permutation draws.  See split_seed in src/util/rng.hpp.
  std::optional<SimulatedGraph> h;
  if (opts.pipeline == EnsemblePipeline::oracle) {
    Rng shared(split_seed(master_seed, 0));
    const auto hopset = build_hub_hopset(g, opts.frt.hopset, shared);
    h.emplace(build_simulated_graph(
        g, hopset, resolve_eps_hat(opts.frt.eps_hat, g.num_vertices()),
        shared));
  }

  std::vector<std::uint64_t> iterations(opts.trees, 0);
  auto build_one = [&](std::size_t t) {
    PMTE_OBS_SPAN("ensemble.build_tree", static_cast<std::int64_t>(t),
                  "tree");
    Rng rng(split_seed(master_seed, 1 + t));
    FrtSample sample = [&] {
      switch (opts.pipeline) {
        case EnsemblePipeline::oracle:
          return sample_frt_oracle_on(*h, rng, opts.frt);
        case EnsemblePipeline::direct:
          return sample_frt_direct(g, rng, opts.frt);
        case EnsemblePipeline::sequential:
        default:
          return sample_frt_sequential(g, rng, opts.frt);
      }
    }();
    iterations[t] = sample.iterations;
    e.indices_[t] = FrtIndex::build(sample.tree);
  };
  if (opts.parallel_build) {
    // Tree slots are independent (own RNG stream, write only their own
    // index), so any schedule produces the same ensemble; the per-tree
    // engine loops detect the enclosing region and run serially.
    parallel_for(opts.trees, build_one, /*grain=*/1);
  } else {
    for (std::size_t t = 0; t < opts.trees; ++t) build_one(t);
  }

  for (std::size_t t = 0; t < opts.trees; ++t) {
    e.stats_.iterations += iterations[t];
    e.stats_.index_nodes += e.indices_[t].num_nodes();
  }
  e.stats_.work = scope.work_delta();
  e.stats_.relaxations = scope.relaxations_delta();
  e.stats_.edges_touched = scope.edges_touched_delta();
  e.stats_.seconds = timer.seconds();
  e.finalize_query_layout();
  return e;
}

FrtEnsemble FrtEnsemble::assemble(std::vector<FrtIndex> indices,
                                  std::uint64_t master_seed,
                                  std::uint64_t graph_fingerprint) {
  PMTE_CHECK(!indices.empty(), "FrtEnsemble::assemble: needs >= 1 index");
  for (const auto& idx : indices) {
    PMTE_CHECK(idx.num_leaves() == indices.front().num_leaves(),
               "FrtEnsemble::assemble: indices disagree on the vertex set");
  }
  FrtEnsemble e;
  e.indices_ = std::move(indices);
  e.master_seed_ = master_seed;
  e.graph_fingerprint_ = graph_fingerprint;
  e.finalize_query_layout();
  return e;
}

Weight FrtEnsemble::query(Vertex u, Vertex v, AggregatePolicy policy) const {
  PMTE_CHECK(!indices_.empty(), "FrtEnsemble::query: empty ensemble");
  PMTE_CHECK(u < num_vertices() && v < num_vertices(),
             "FrtEnsemble::query: vertex out of range");
  if (u == v) return 0.0;
  const std::size_t k = indices_.size();
  const auto views = tree_views(indices_);
  std::vector<Weight> dist(k);
  std::vector<const std::uint32_t*> row(k);
  std::vector<std::uint32_t> cols(2 * k);
  const KernelScratch ws{dist.data(), row.data(), cols.data(),
                         cols.data() + k};
  return aggregate_soa(views.data(), k,
                       leaf_pos_soa_.data() + std::size_t{u} * k,
                       leaf_pos_soa_.data() + std::size_t{v} * k, policy, ws);
}

FrtEnsemble::BatchStats FrtEnsemble::query_batch(
    const std::vector<std::pair<Vertex, Vertex>>& pairs,
    AggregatePolicy policy, std::vector<Weight>& out,
    HotPairCache* cache) const {
  PMTE_CHECK(!indices_.empty(), "FrtEnsemble::query_batch: empty ensemble");
  const std::size_t q = pairs.size();
  const std::size_t k = indices_.size();
  PMTE_OBS_SPAN("ensemble.query_batch", static_cast<std::int64_t>(q),
                "pairs", &ensemble_obs().batch_ns);
  PMTE_OBS_ONLY(if (obs::metrics_on()) {
    ensemble_obs().batch_pairs.record(q);
  });
  out.assign(q, 0.0);

  // Validate every pair *before* touching the cache or the parallel
  // phases: probe() claims slots at classification time, and the kernel
  // below indexes the SoA arrays unchecked.
  const auto n = static_cast<Vertex>(indices_.front().num_leaves());
  for (const auto& [u, v] : pairs) {
    PMTE_CHECK(u < n && v < n,
               "FrtEnsemble::query_batch: vertex out of range");
  }

  // Kernel workspace: one k-slot slice per thread, allocated once per
  // batch; the per-tree TreeView table is shared read-only.
  const auto views = tree_views(indices_);
  const auto nthreads =
      static_cast<std::size_t>(std::max(num_threads(), 1));
  std::vector<Weight> dist_ws(nthreads * k);
  std::vector<const std::uint32_t*> row_ws(nthreads * k);
  std::vector<std::uint32_t> col_ws(nthreads * 2 * k);
  auto compute = [&](Vertex u, Vertex v) -> Weight {
    if (u == v) return 0.0;
    const auto ti = static_cast<std::size_t>(thread_index());
    const KernelScratch ws{dist_ws.data() + ti * k, row_ws.data() + ti * k,
                           col_ws.data() + ti * 2 * k,
                           col_ws.data() + ti * 2 * k + k};
    return aggregate_soa(views.data(), k,
                         leaf_pos_soa_.data() + std::size_t{u} * k,
                         leaf_pos_soa_.data() + std::size_t{v} * k, policy,
                         ws);
  };

  BatchStats stats;
  stats.pairs = q;

  if (cache == nullptr) {
    parallel_for_balanced(
        q, [k](std::size_t) { return k; },
        [&](std::size_t i) {
          out[i] = compute(pairs[i].first, pairs[i].second);
        });
    // Logical costs: every pair consults every tree; each u ≠ v lookup is
    // exactly kLcaProbesPerQuery sparse-table probes (u==v short-circuits).
    stats.tree_lookups = static_cast<std::uint64_t>(q) * k;
    std::uint64_t distinct = 0;
    for (const auto& [u, v] : pairs) distinct += u != v ? 1 : 0;
    stats.lca_probes = distinct * k * FrtIndex::kLcaProbesPerQuery;
    return stats;
  }

  // Cached batch, three phases.
  // (0) A *serial* classification pass probes the cache per pair, so
  // admissions, counters, and cache state depend only on the query
  // sequence — never on thread interleaving.  The salt binds entries to
  // this ensemble's identity (seed + graph) as well as the policy, so a
  // cache accidentally reused across ensembles can only miss (stale slots
  // become conflicts), never serve another ensemble's distances.
  enum class Action : unsigned char { self, hit, fill, bypass };
  const auto salt = static_cast<std::uint64_t>(policy) ^ master_seed_ ^
                    graph_fingerprint_;
  std::vector<Action> action(q);
  std::vector<std::uint32_t> slot(q, 0);
  std::vector<std::size_t> fills;
  {
    PMTE_OBS_SPAN("ensemble.classify", static_cast<std::int64_t>(q),
                  "pairs");
    for (std::size_t i = 0; i < q; ++i) {
      const auto [u, v] = pairs[i];
      if (u == v) {
        action[i] = Action::self;
        continue;
      }
      switch (cache->probe(HotPairCache::pair_key(u, v, salt), &slot[i])) {
        case HotPairCache::Outcome::hit:
          action[i] = Action::hit;
          ++stats.cache_hits;
          break;
        case HotPairCache::Outcome::fill:
          action[i] = Action::fill;
          fills.push_back(i);
          ++stats.cache_misses;
          ++stats.cache_admissions;
          break;
        case HotPairCache::Outcome::bypass:
          action[i] = Action::bypass;
          ++stats.cache_misses;
          ++stats.cache_conflicts;
          break;
      }
    }
  }

  // (1) Compute each admitted pair once; every fill owns a distinct slot,
  // so the parallel writes never collide.
  {
    PMTE_OBS_SPAN("ensemble.fill", static_cast<std::int64_t>(fills.size()),
                  "fills");
    parallel_for_balanced(
        fills.size(), [k](std::size_t) { return k; },
        [&](std::size_t f) {
          const std::size_t i = fills[f];
          cache->set_value(slot[i],
                           compute(pairs[i].first, pairs[i].second));
        });
  }

  // (2) Serve: hits and fills read their slot (the exact double phase 1
  // stored — bit-identical to recomputing), bypasses compute directly.
  {
    PMTE_OBS_SPAN("ensemble.serve", static_cast<std::int64_t>(q), "pairs");
    parallel_for_balanced(
        q,
        [&](std::size_t i) {
          return action[i] == Action::bypass ? k : std::size_t{1};
        },
        [&](std::size_t i) {
          switch (action[i]) {
            case Action::self:
              out[i] = 0.0;
              break;
            case Action::hit:
            case Action::fill:
              out[i] = cache->value(slot[i]);
              break;
            case Action::bypass:
              out[i] = compute(pairs[i].first, pairs[i].second);
              break;
          }
        });
  }

  // Logical costs: only computed aggregates consult the trees.  u == v
  // pairs short-circuit to 0.0 without lookups (the uncached path's k
  // zero-distance reads are equally free — both serve the same double).
  stats.tree_lookups = (stats.cache_admissions + stats.cache_conflicts) * k;
  stats.lca_probes = (stats.cache_admissions + stats.cache_conflicts) * k *
                     FrtIndex::kLcaProbesPerQuery;
  return stats;
}

void FrtEnsemble::save(std::ostream& os, std::uint32_t version) const {
  // One writer spans the whole artefact: section padding is computed from
  // the absolute in-artefact offset, so the embedded index payloads stay
  // 64-byte aligned for the mmap path.
  BinaryWriter w(os, version);
  w.magic(kEnsembleMagic);
  w.u64(master_seed_);
  w.u64(graph_fingerprint_);
  w.u64(indices_.size());
  for (const auto& idx : indices_) idx.save_into(w);
}

FrtEnsemble FrtEnsemble::load(std::istream& is) {
  PMTE_OBS_SPAN("ensemble.load");
  PMTE_OBS_ONLY(if (obs::metrics_on()) ensemble_obs().loads_copied.add(1));
  // One reader spans the whole artefact: the stream size is probed once,
  // and the running position drives the v3 padding arithmetic.
  BinaryReader r(is);
  r.expect_magic(kEnsembleMagic);
  FrtEnsemble e;
  e.master_seed_ = r.u64();
  e.graph_fingerprint_ = r.u64();
  const std::uint64_t trees = r.u64();
  PMTE_CHECK(trees >= 1 && trees <= (1ULL << 20),
             "FrtEnsemble::load: implausible tree count");
  e.indices_.reserve(trees);
  for (std::uint64_t t = 0; t < trees; ++t) {
    e.indices_.push_back(FrtIndex::load_from(r));
    PMTE_CHECK(e.indices_.back().num_leaves() ==
                   e.indices_.front().num_leaves(),
               "FrtEnsemble::load: indices disagree on the vertex set");
  }
  e.finalize_query_layout();
  return e;
}

FrtEnsemble FrtEnsemble::load_mapped(MappedFile file) {
  PMTE_OBS_SPAN("ensemble.load_mapped");
  PMTE_OBS_ONLY(if (obs::metrics_on()) ensemble_obs().loads_mapped.add(1));
  // Pin the mapping first: the index sections below are views into it,
  // and the shared_ptr travels with the ensemble through moves and the
  // registry, keeping the address range alive until the last reference
  // drops.
  auto mapping = std::make_shared<const MappedFile>(std::move(file));
  MappedReader r(mapping->bytes());
  r.expect_magic(kEnsembleMagic);
  FrtEnsemble e;
  e.mapping_ = std::move(mapping);
  e.master_seed_ = r.u64();
  e.graph_fingerprint_ = r.u64();
  const std::uint64_t trees = r.u64();
  PMTE_CHECK(trees >= 1 && trees <= (1ULL << 20),
             "FrtEnsemble::load_mapped: implausible tree count");
  e.indices_.reserve(trees);
  for (std::uint64_t t = 0; t < trees; ++t) {
    e.indices_.push_back(FrtIndex::load_mapped_from(r));
    PMTE_CHECK(e.indices_.back().num_leaves() ==
                   e.indices_.front().num_leaves(),
               "FrtEnsemble::load_mapped: indices disagree on the vertex "
               "set");
  }
  e.finalize_query_layout();
  return e;
}

FrtEnsemble FrtEnsemble::load_mapped(const std::string& path) {
  return load_mapped(MappedFile(path));
}

}  // namespace pmte::serve
