#include "src/serve/frt_ensemble.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <string>

#include "src/parallel/counters.hpp"
#include "src/parallel/parallel.hpp"
#include "src/serve/serialize.hpp"
#include "src/util/assertions.hpp"
#include "src/util/timer.hpp"

namespace pmte::serve {

AggregatePolicy parse_policy(const std::string& name) {
  if (name == "min") return AggregatePolicy::min;
  if (name == "median") return AggregatePolicy::median;
  PMTE_CHECK(false, "unknown aggregation policy: " + name +
                        " (expected min|median)");
  return AggregatePolicy::min;  // unreachable
}

const char* policy_name(AggregatePolicy policy) noexcept {
  return policy == AggregatePolicy::min ? "min" : "median";
}

std::uint64_t FrtEnsemble::fingerprint(const Graph& g) {
  std::uint64_t hash = fnv1a_fold(kFnv1aInit, g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const auto& e : g.neighbors(v)) {
      hash = fnv1a_fold(hash, e.to);
      std::uint64_t bits;
      std::memcpy(&bits, &e.weight, sizeof(bits));
      hash = fnv1a_fold(hash, bits);
    }
  }
  return hash;
}

std::uint64_t FrtEnsemble::registry_fingerprint() const noexcept {
  return serve::registry_fingerprint(kEnsembleMagic, master_seed_,
                                     graph_fingerprint_, indices_.size());
}

FrtEnsemble FrtEnsemble::build(const Graph& g, std::uint64_t master_seed,
                               const EnsembleOptions& opts) {
  PMTE_CHECK(opts.trees >= 1, "FrtEnsemble: needs at least one tree");
  PMTE_CHECK(g.num_vertices() >= 1, "FrtEnsemble: empty graph");
  const Timer timer;
  const WorkDepthScope scope;

  FrtEnsemble e;
  e.master_seed_ = master_seed;
  e.graph_fingerprint_ = fingerprint(g);
  e.indices_.resize(opts.trees);

  // Stream 0 of the master seed covers the randomness shared by all trees
  // (hub hop set + level sampling); streams 1..k seed the per-tree
  // β/permutation draws.  See split_seed in src/util/rng.hpp.
  std::optional<SimulatedGraph> h;
  if (opts.pipeline == EnsemblePipeline::oracle) {
    Rng shared(split_seed(master_seed, 0));
    const auto hopset = build_hub_hopset(g, opts.frt.hopset, shared);
    h.emplace(build_simulated_graph(
        g, hopset, resolve_eps_hat(opts.frt.eps_hat, g.num_vertices()),
        shared));
  }

  std::vector<std::uint64_t> iterations(opts.trees, 0);
  auto build_one = [&](std::size_t t) {
    Rng rng(split_seed(master_seed, 1 + t));
    FrtSample sample = [&] {
      switch (opts.pipeline) {
        case EnsemblePipeline::oracle:
          return sample_frt_oracle_on(*h, rng, opts.frt);
        case EnsemblePipeline::direct:
          return sample_frt_direct(g, rng, opts.frt);
        case EnsemblePipeline::sequential:
        default:
          return sample_frt_sequential(g, rng, opts.frt);
      }
    }();
    iterations[t] = sample.iterations;
    e.indices_[t] = FrtIndex::build(sample.tree);
  };
  if (opts.parallel_build) {
    // Tree slots are independent (own RNG stream, write only their own
    // index), so any schedule produces the same ensemble; the per-tree
    // engine loops detect the enclosing region and run serially.
    parallel_for(opts.trees, build_one, /*grain=*/1);
  } else {
    for (std::size_t t = 0; t < opts.trees; ++t) build_one(t);
  }

  for (std::size_t t = 0; t < opts.trees; ++t) {
    e.stats_.iterations += iterations[t];
    e.stats_.index_nodes += e.indices_[t].num_nodes();
  }
  e.stats_.work = scope.work_delta();
  e.stats_.relaxations = scope.relaxations_delta();
  e.stats_.edges_touched = scope.edges_touched_delta();
  e.stats_.seconds = timer.seconds();
  return e;
}

Weight FrtEnsemble::aggregate(Vertex u, Vertex v, AggregatePolicy policy,
                              Weight* scratch) const {
  const std::size_t k = indices_.size();
  if (policy == AggregatePolicy::min) {
    Weight best = indices_[0].distance(u, v);
    for (std::size_t t = 1; t < k; ++t) {
      best = std::min(best, indices_[t].distance(u, v));
    }
    return best;
  }
  for (std::size_t t = 0; t < k; ++t) scratch[t] = indices_[t].distance(u, v);
  // Upper median: stays a per-tree value (no averaging), and every tree
  // dominates dist_G, so the served value does too.
  std::nth_element(scratch, scratch + k / 2, scratch + k);
  return scratch[k / 2];
}

Weight FrtEnsemble::query(Vertex u, Vertex v, AggregatePolicy policy) const {
  PMTE_CHECK(!indices_.empty(), "FrtEnsemble::query: empty ensemble");
  std::vector<Weight> scratch(
      policy == AggregatePolicy::median ? indices_.size() : 0);
  return aggregate(u, v, policy, scratch.data());
}

FrtEnsemble::BatchStats FrtEnsemble::query_batch(
    const std::vector<std::pair<Vertex, Vertex>>& pairs,
    AggregatePolicy policy, std::vector<Weight>& out,
    HotPairCache* cache) const {
  PMTE_CHECK(!indices_.empty(), "FrtEnsemble::query_batch: empty ensemble");
  const std::size_t q = pairs.size();
  const std::size_t k = indices_.size();
  out.assign(q, 0.0);

  // Median scratch: one k-slot slice per thread, allocated once per batch.
  const bool median = policy == AggregatePolicy::median;
  std::vector<Weight> scratch(
      median ? static_cast<std::size_t>(std::max(num_threads(), 1)) * k : 0);
  auto thread_scratch = [&]() -> Weight* {
    return median
               ? scratch.data() + static_cast<std::size_t>(thread_index()) * k
               : nullptr;
  };

  BatchStats stats;
  stats.pairs = q;

  if (cache == nullptr) {
    parallel_for_balanced(
        q, [k](std::size_t) { return k; },
        [&](std::size_t i) {
          out[i] = aggregate(pairs[i].first, pairs[i].second, policy,
                             thread_scratch());
        });
    // Logical costs: every pair consults every tree; each u ≠ v lookup is
    // exactly kLcaProbesPerQuery sparse-table probes (u==v short-circuits).
    stats.tree_lookups = static_cast<std::uint64_t>(q) * k;
    std::uint64_t distinct = 0;
    for (const auto& [u, v] : pairs) distinct += u != v ? 1 : 0;
    stats.lca_probes = distinct * k * FrtIndex::kLcaProbesPerQuery;
    return stats;
  }

  // Cached batch, three phases.  Validate every pair *before* the cache
  // sees any of them: probe() claims a slot at classification time and the
  // value lands only in phase 1, so an exception in between would leave a
  // claimed-but-unfilled slot behind in the caller-owned cache — checked
  // here, the phases below cannot throw.
  const auto n = static_cast<Vertex>(indices_.front().num_leaves());
  for (const auto& [u, v] : pairs) {
    PMTE_CHECK(u < n && v < n,
               "FrtEnsemble::query_batch: vertex out of range");
  }
  // (0) A *serial* classification pass probes the cache per pair, so
  // admissions, counters, and cache state depend only on the query
  // sequence — never on thread interleaving.  The salt binds entries to
  // this ensemble's identity (seed + graph) as well as the policy, so a
  // cache accidentally reused across ensembles can only miss (stale slots
  // become conflicts), never serve another ensemble's distances.
  enum class Action : unsigned char { self, hit, fill, bypass };
  const auto salt = static_cast<std::uint64_t>(policy) ^ master_seed_ ^
                    graph_fingerprint_;
  std::vector<Action> action(q);
  std::vector<std::uint32_t> slot(q, 0);
  std::vector<std::size_t> fills;
  for (std::size_t i = 0; i < q; ++i) {
    const auto [u, v] = pairs[i];
    if (u == v) {
      action[i] = Action::self;
      continue;
    }
    switch (cache->probe(HotPairCache::pair_key(u, v, salt), &slot[i])) {
      case HotPairCache::Outcome::hit:
        action[i] = Action::hit;
        ++stats.cache_hits;
        break;
      case HotPairCache::Outcome::fill:
        action[i] = Action::fill;
        fills.push_back(i);
        ++stats.cache_misses;
        break;
      case HotPairCache::Outcome::bypass:
        action[i] = Action::bypass;
        ++stats.cache_misses;
        break;
    }
  }

  // (1) Compute each admitted pair once; every fill owns a distinct slot,
  // so the parallel writes never collide.
  parallel_for_balanced(
      fills.size(), [k](std::size_t) { return k; },
      [&](std::size_t f) {
        const std::size_t i = fills[f];
        cache->set_value(slot[i], aggregate(pairs[i].first, pairs[i].second,
                                            policy, thread_scratch()));
      });

  // (2) Serve: hits and fills read their slot (the exact double phase 1
  // stored — bit-identical to recomputing), bypasses compute directly.
  std::uint64_t bypasses = 0;
  for (std::size_t i = 0; i < q; ++i) bypasses += action[i] == Action::bypass;
  parallel_for_balanced(
      q,
      [&](std::size_t i) {
        return action[i] == Action::bypass ? k : std::size_t{1};
      },
      [&](std::size_t i) {
        switch (action[i]) {
          case Action::self:
            out[i] = 0.0;
            break;
          case Action::hit:
          case Action::fill:
            out[i] = cache->value(slot[i]);
            break;
          case Action::bypass:
            out[i] = aggregate(pairs[i].first, pairs[i].second, policy,
                               thread_scratch());
            break;
        }
      });

  // Logical costs: only computed aggregates consult the trees.  u == v
  // pairs short-circuit to 0.0 without lookups (the uncached path's k
  // zero-distance reads are equally free — both serve the same double).
  stats.tree_lookups = (fills.size() + bypasses) * k;
  stats.lca_probes =
      (fills.size() + bypasses) * k * FrtIndex::kLcaProbesPerQuery;
  return stats;
}

void FrtEnsemble::save(std::ostream& os) const {
  BinaryWriter w(os);
  w.magic(kEnsembleMagic);
  w.u64(master_seed_);
  w.u64(graph_fingerprint_);
  w.u64(indices_.size());
  for (const auto& idx : indices_) idx.save(os);
}

FrtEnsemble FrtEnsemble::load(std::istream& is) {
  BinaryReader r(is);
  r.expect_magic(kEnsembleMagic);
  FrtEnsemble e;
  e.master_seed_ = r.u64();
  e.graph_fingerprint_ = r.u64();
  const std::uint64_t trees = r.u64();
  PMTE_CHECK(trees >= 1 && trees <= (1ULL << 20),
             "FrtEnsemble::load: implausible tree count");
  e.indices_.reserve(trees);
  for (std::uint64_t t = 0; t < trees; ++t) {
    e.indices_.push_back(FrtIndex::load(is));
    PMTE_CHECK(e.indices_.back().num_leaves() ==
                   e.indices_.front().num_leaves(),
               "FrtEnsemble::load: indices disagree on the vertex set");
  }
  return e;
}

}  // namespace pmte::serve
