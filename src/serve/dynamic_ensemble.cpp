#include "src/serve/dynamic_ensemble.hpp"

#include "src/obs/obs.hpp"
#include "src/parallel/counters.hpp"
#include "src/parallel/parallel.hpp"
#include "src/util/assertions.hpp"

namespace pmte::serve {

namespace {

#if PMTE_OBS
/// Dynamic-maintenance instruments, bound once on first use.  All logical
/// counts — deterministic at any thread count (the per-scenario values
/// stay gated through BENCH_dynamic.json).
struct DynamicObs {
  obs::Counter& updates;
  obs::Counter& updates_incremental;
  obs::Counter& levels_recomputed;
  obs::Counter& levels_skipped;
  obs::Counter& trees_rebuilt;
  obs::Histogram& update_ns;
};

DynamicObs& dynamic_obs() {
  auto& reg = obs::registry();
  static DynamicObs o{
      reg.counter("pmte_dynamic_updates_total", {},
                  "Edge-weight updates applied to a DynamicEnsemble"),
      reg.counter("pmte_dynamic_updates_incremental_total", {},
                  "Updates absorbed on the warm (decrease) path"),
      reg.counter("pmte_dynamic_levels_recomputed_total", {},
                  "Oracle level runs (warm + full) spent on updates"),
      reg.counter("pmte_dynamic_levels_skipped_total", {},
                  "Oracle level runs skipped during updates"),
      reg.counter("pmte_dynamic_trees_rebuilt_total", {},
                  "Serving indices rebuilt by updates"),
      reg.histogram("pmte_dynamic_update_duration_ns", {},
                    "update() wall time in ns (informational)"),
  };
  return o;
}
#endif  // PMTE_OBS

}  // namespace

SimulatedGraph DynamicEnsemble::make_h(const Graph& g,
                                       std::uint64_t master_seed,
                                       const EnsembleOptions& opts) {
  PMTE_CHECK(opts.pipeline == EnsemblePipeline::oracle,
             "DynamicEnsemble: oracle pipeline only (the incremental path "
             "is the retained per-level oracle)");
  PMTE_CHECK(opts.trees >= 1, "DynamicEnsemble: needs at least one tree");
  PMTE_CHECK(g.num_vertices() >= 1, "DynamicEnsemble: empty graph");
  Rng shared(split_seed(master_seed, 0));
  const auto hopset = build_hub_hopset(g, opts.frt.hopset, shared);
  return build_simulated_graph(
      g, hopset, resolve_eps_hat(opts.frt.eps_hat, g.num_vertices()), shared);
}

DynamicEnsemble::DynamicEnsemble(const Graph& g, std::uint64_t master_seed,
                                 const EnsembleOptions& opts)
    : g_(g),
      master_seed_(master_seed),
      opts_(opts),
      h_(make_h(g_, master_seed, opts)) {
  PMTE_OBS_SPAN("dynamic.build", static_cast<std::int64_t>(opts.trees),
                "trees");
  maintainers_.resize(opts.trees);
  indices_.resize(opts.trees);
  auto build_one = [&](std::size_t t) {
    // Streams 1..k, as FrtEnsemble::build — slots are independent, so any
    // schedule produces the same maintainers and indices.
    Rng rng(split_seed(master_seed, 1 + t));
    maintainers_[t] = std::make_unique<DynamicFrt>(h_, rng, opts_.frt);
    indices_[t] = FrtIndex::build(maintainers_[t]->tree());
  };
  if (opts.parallel_build) {
    parallel_for(opts.trees, build_one, /*grain=*/1);
  } else {
    for (std::size_t t = 0; t < opts.trees; ++t) build_one(t);
  }
}

DynamicEnsemble::UpdateStats DynamicEnsemble::update(Vertex u, Vertex v,
                                                     Weight new_weight) {
  PMTE_OBS_SPAN("dynamic.update", static_cast<std::int64_t>(updates_ + 1),
                "update", &dynamic_obs().update_ns);
  const Weight old_weight = g_.edge_weight(u, v);
  PMTE_CHECK(u != v && is_finite(old_weight),
             "DynamicEnsemble::update: {u,v} must be an existing edge");
  // Decrease/increase is decided against the weight the engines actually
  // iterate on: G' may have merged a cheaper hop-set shortcut into {u,v}
  // (augmented() keeps the minimum of parallel edges), so the G'-weight
  // can sit below the graph weight and a graph-level decrease can still
  // *raise* it — which must invalidate, not warm-restart.
  const Weight old_prime = h_.base().edge_weight(u, v);
  const WorkDepthScope scope;
  std::uint64_t runs_before = 0;
  std::uint64_t skips_before = 0;
  for (const auto& m : maintainers_) {
    const auto& s = m->oracle_stats();
    runs_before += s.levels_warm + s.levels_full;
    skips_before += s.levels_skipped;
  }

  // Mutate the shared graph exactly once — every maintainer's engine reads
  // the weight live from H's base, and the oracles must all observe the
  // same old→new transition (the first maintainer must not change what the
  // others see).
  g_.set_edge_weight(u, v, new_weight);
  h_.set_base_edge_weight(u, v, new_weight);

  const WeightedEdge edge{u, v, old_prime};
  std::vector<std::uint8_t> rebuilt(maintainers_.size(), 0);
  auto apply_one = [&](std::size_t t) {
    PMTE_OBS_SPAN("dynamic.update_tree", static_cast<std::int64_t>(t),
                  "tree");
    if (maintainers_[t]->apply_update(edge, new_weight)) {
      indices_[t] = FrtIndex::build(maintainers_[t]->tree());
      rebuilt[t] = 1;
    }
  };
  if (opts_.parallel_build) {
    parallel_for(maintainers_.size(), apply_one, /*grain=*/1);
  } else {
    for (std::size_t t = 0; t < maintainers_.size(); ++t) apply_one(t);
  }

  UpdateStats stats;
  stats.incremental = new_weight <= old_prime;
  for (std::size_t t = 0; t < maintainers_.size(); ++t) {
    stats.trees_rebuilt += rebuilt[t];
  }
  std::uint64_t runs_after = 0;
  std::uint64_t skips_after = 0;
  for (const auto& m : maintainers_) {
    const auto& s = m->oracle_stats();
    runs_after += s.levels_warm + s.levels_full;
    skips_after += s.levels_skipped;
  }
  stats.levels_recomputed = runs_after - runs_before;
  stats.levels_skipped = skips_after - skips_before;
  stats.relaxations = scope.relaxations_delta();
  ++updates_;

  PMTE_OBS_ONLY(if (obs::metrics_on()) {
    auto& o = dynamic_obs();
    o.updates.add(1);
    if (stats.incremental) o.updates_incremental.add(1);
    o.levels_recomputed.add(stats.levels_recomputed);
    o.levels_skipped.add(stats.levels_skipped);
    o.trees_rebuilt.add(stats.trees_rebuilt);
  });
  return stats;
}

FrtEnsemble DynamicEnsemble::snapshot() const {
  PMTE_OBS_SPAN("dynamic.snapshot");
  return FrtEnsemble::assemble(indices_, master_seed_,
                               FrtEnsemble::fingerprint(g_));
}

}  // namespace pmte::serve
