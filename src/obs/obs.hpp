#pragma once
// Entry point of the observability layer (docs/OBSERVABILITY.md): the
// compile-time PMTE_OBS toggle, the runtime ObsConfig switches, the
// process-wide MetricsRegistry / TraceSink singletons, and the RAII
// ScopedSpan that instrumented code uses through the PMTE_OBS_SPAN /
// PMTE_OBS_ONLY macros.
//
// Cost model — three independent levels:
//
//   1. Compile-time: building with -DPMTE_OBS=0 (CMake option PMTE_OBS=OFF)
//      expands every macro below to `static_cast<void>(0)` — instrumented
//      translation units contain no obs code at all.
//   2. Runtime off (the default): metrics_on()/trace_on() are single
//      relaxed atomic loads; spans read no clock and record nothing, and
//      instrumented code never touches the registry.
//   3. Runtime on: counters/histograms are relaxed atomic adds, spans are
//      two steady_clock reads plus a wait-free per-thread ring write.
//
// In every mode the obs layer is write-only with respect to algorithmic
// state: it never feeds a value back into BatchStats, TenantCounters,
// result hashes, or any control decision (the determinism bar in
// docs/DETERMINISM.md), which is why enabling it cannot perturb gated
// counters — pinned by test_obs.cpp's on/off differential test.

#ifndef PMTE_OBS
#define PMTE_OBS 1
#endif

#include <cstddef>
#include <cstdint>

#if PMTE_OBS
#include <atomic>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#endif

namespace pmte::obs {

/// Runtime switches, applied atomically by configure().  All default to
/// off: a binary built with PMTE_OBS=1 records nothing until an app (e.g.
/// serve_queries --metrics-out/--trace-out) or test opts in.
struct ObsConfig {
  bool metrics = false;
  bool trace = false;
  /// Per-thread trace ring capacity (most recent events win).
  std::size_t trace_events_per_thread = std::size_t{1} << 12;
};

#if PMTE_OBS

namespace detail {
extern std::atomic<bool> g_metrics_on;
extern std::atomic<bool> g_trace_on;
}  // namespace detail

/// Hot-path switches: one relaxed load each.
[[nodiscard]] inline bool metrics_on() noexcept {
  return detail::g_metrics_on.load(std::memory_order_relaxed);
}
[[nodiscard]] inline bool trace_on() noexcept {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

/// Apply a config.  Serial-phase only (resizes trace rings when the
/// capacity changes).  configure({}) turns everything back off.
void configure(const ObsConfig& cfg);

/// Process-wide instrument store.  Never destroyed (function-local
/// static), so handles cached by instrumented code stay valid for the
/// process lifetime.
[[nodiscard]] MetricsRegistry& registry();

/// Process-wide trace sink.  Same lifetime guarantee.
[[nodiscard]] TraceSink& trace_sink();

/// RAII span: measures from construction to destruction and records a
/// complete trace event (and optionally a latency histogram sample) on
/// close.  Inactive spans — tracing off and no histogram wanted — skip
/// the clock reads entirely.  Use through PMTE_OBS_SPAN unless a span
/// must outlive a scope.
class ScopedSpan {
 public:
  /// `name`/`arg_name` must be string literals (stored by pointer).
  /// `arg` ≥ 0 attaches a numeric argument under `arg_name`.  `latency`,
  /// if non-null, receives the span duration in ns when metrics are on —
  /// by convention such histograms are named *_duration_ns and are never
  /// gated (see docs/OBSERVABILITY.md).
  explicit ScopedSpan(const char* name, std::int64_t arg = -1,
                      const char* arg_name = nullptr,
                      Histogram* latency = nullptr) noexcept;
  ~ScopedSpan() { finish(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void finish() noexcept;

  const char* name_;
  const char* arg_name_;
  Histogram* latency_;
  std::int64_t arg_;
  std::uint64_t start_ns_;  ///< 0 ⇒ inactive, nothing to record
};

#else  // !PMTE_OBS

[[nodiscard]] inline bool metrics_on() noexcept { return false; }
[[nodiscard]] inline bool trace_on() noexcept { return false; }
inline void configure(const ObsConfig&) {}

#endif  // PMTE_OBS

}  // namespace pmte::obs

// Instrumentation macros.  PMTE_OBS_SPAN declares an anonymous ScopedSpan
// covering the rest of the enclosing scope; PMTE_OBS_ONLY compiles its
// argument only when the obs layer is built in (use it to guard metric
// handle lookups and counter adds).  Both vanish entirely at PMTE_OBS=0.
#if PMTE_OBS
#define PMTE_OBS_CONCAT_IMPL(a, b) a##b
#define PMTE_OBS_CONCAT(a, b) PMTE_OBS_CONCAT_IMPL(a, b)
#define PMTE_OBS_SPAN(...) \
  const ::pmte::obs::ScopedSpan PMTE_OBS_CONCAT(pmte_obs_span_, \
                                                __LINE__)(__VA_ARGS__)
#define PMTE_OBS_ONLY(...) __VA_ARGS__
#else
#define PMTE_OBS_SPAN(...) static_cast<void>(0)
#define PMTE_OBS_ONLY(...) static_cast<void>(0)
#endif
