#include "src/obs/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace pmte::obs {

void TraceSink::configure_capacity(std::size_t events_per_thread) {
  if (events_per_thread == 0) events_per_thread = 1;
  capacity_ = events_per_thread;
  for (Ring& r : rings_) {
    r.buf.clear();
    r.buf.shrink_to_fit();
    r.next = 0;
    r.wrapped = false;
  }
}

void TraceSink::record(std::uint32_t tid, const TraceEvent& ev) noexcept {
  if (tid >= kMaxThreads) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Ring& r = rings_[tid];
  if (r.buf.size() != capacity_) r.buf.resize(capacity_);
  r.buf[r.next] = ev;
  if (++r.next == capacity_) {
    r.next = 0;
    r.wrapped = true;
  }
}

std::size_t TraceSink::num_events() const {
  std::size_t n = 0;
  for (const Ring& r : rings_) n += r.wrapped ? r.buf.size() : r.next;
  return n;
}

void TraceSink::clear() {
  for (Ring& r : rings_) {
    r.next = 0;
    r.wrapped = false;
  }
}

void TraceSink::write_chrome_trace(std::ostream& os) const {
  std::vector<TraceEvent> events;
  events.reserve(num_events());
  for (const Ring& r : rings_) {
    const std::size_t n = r.wrapped ? r.buf.size() : r.next;
    events.insert(events.end(), r.buf.begin(),
                  r.buf.begin() + static_cast<std::ptrdiff_t>(n));
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              // Equal-start same-thread spans: the longer one encloses the
              // shorter, and viewers want parents first.
              return a.dur_ns > b.dur_ns;
            });
  const std::uint64_t base = events.empty() ? 0 : events.front().ts_ns;

  // Chrome trace-event format, "JSON Object Format" flavour.  ts/dur are
  // microseconds; emitting 3 decimals keeps nanosecond precision.  One
  // event per line so line-oriented validators can parse without a JSON
  // library.
  const auto write_us = [&os](std::uint64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    os << buf;
  };
  os << "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    os << "{\"name\":\"" << ev.name
       << "\",\"cat\":\"pmte\",\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.tid
       << ",\"ts\":";
    write_us(ev.ts_ns - base);
    os << ",\"dur\":";
    write_us(ev.dur_ns);
    if (ev.arg_name != nullptr) {
      os << ",\"args\":{\"" << ev.arg_name << "\":" << ev.arg << '}';
    }
    os << '}' << (i + 1 < events.size() ? "," : "") << '\n';
  }
  os << "]}\n";
}

}  // namespace pmte::obs
