#pragma once
// Metrics half of the observability layer (docs/OBSERVABILITY.md): named
// counters, gauges, and fixed-bucket log2 histograms behind a registry
// that exports Prometheus text exposition.
//
// Determinism contract.  Every instrument accumulates with commutative
// relaxed atomics, so a metric's value is a pure function of the *multiset*
// of recorded amounts — independent of thread count and scheduling.
// Whether that value is deterministic therefore depends only on what feeds
// it:
//
//   * counters/histograms fed *logical* quantities (shard pair counts,
//     batch sizes, level iterations) are bit-identical at any thread count
//     and are what tests/CI may gate;
//   * histograms fed *wall-time* (`*_duration_ns` by convention) have
//     deterministic bucket STRUCTURE (the log2 boundaries) but
//     machine-dependent counts — they are informational only, never gated.
//
// The registry itself is deterministic: instruments are keyed and exported
// in (name, sorted-labels) order, so two runs that register the same
// instruments — in any order — emit byte-identical exposition modulo the
// recorded values.
//
// Thread-safety: instrument *creation* takes the registry mutex; returned
// references are stable for the registry's lifetime (the global registry
// in obs.hpp never dies), so hot paths resolve a handle once and then
// record lock-free.  write_prometheus/reset are serial-phase only with
// respect to creation, but may race benignly with relaxed recording.

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace pmte::obs {

/// Instrument labels as (key, value) pairs.  The registry canonicalises
/// them (sorted by key) so {a=1,b=2} and {b=2,a=1} name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins signed level (resident ensembles, tenants, epoch).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket log2 histogram of u64 values.  Bucket b counts the values
/// whose bit_width is exactly b, i.e. value ∈ [2^(b-1), 2^b) (bucket 0
/// holds exactly the zeros), so the inclusive upper bound of bucket b is
/// 2^b − 1.  Bucket *counts* are sums of commutative increments — given a
/// deterministic multiset of recorded values they are bit-identical at any
/// thread count (pinned by test_obs.cpp at 1/2/8 threads).  Bucket
/// *boundaries* are value-domain constants; when the recorded value is
/// wall-time the counts are informational, never gated (see file comment).
class Histogram {
 public:
  /// bit_width of a u64 ranges over 0..64.
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t value) noexcept {
    const auto b = static_cast<std::size_t>(std::bit_width(value));
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t bucket_count(std::size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Inclusive upper bound of bucket b (every value in bucket b is ≤ it).
  [[nodiscard]] static constexpr std::uint64_t bucket_le(
      std::size_t b) noexcept {
    return b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1;
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Upper bound of the first bucket whose cumulative count reaches
  /// q·count — a log2-coarse percentile, good enough for the informational
  /// p50/p95/p99 bench keys.  0 when empty.
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;

  /// All bucket counts at once (the deterministic quantity tests compare).
  [[nodiscard]] std::array<std::uint64_t, kBuckets> snapshot() const noexcept;

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Deterministically ordered store of named instruments.  Lookup-or-create
/// by (name, canonical labels); the same key always returns the same
/// instrument, and a kind mismatch on an existing key is a PMTE_CHECK
/// failure.  reset() zeroes every value but keeps instruments registered,
/// so cached handles stay valid across test repetitions.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       const std::string& help = "");

  /// Prometheus text exposition (one # HELP/# TYPE pair per family,
  /// histogram _bucket{le=...} cumulative + _sum + _count).  Families and
  /// series emit in sorted order — byte-stable across runs.
  void write_prometheus(std::ostream& os) const;

  /// Zero all instrument values; registered instruments (and handles to
  /// them) survive.
  void reset();

  [[nodiscard]] std::size_t size() const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Instrument {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument& resolve(Kind kind, const std::string& name,
                      const Labels& labels, const std::string& help);

  mutable std::mutex mu_;
  /// (metric name, canonical rendered label set) → instrument.  The pair
  /// key keeps every family's series contiguous under map order, which is
  /// what lets write_prometheus emit # TYPE exactly once per family.
  std::map<std::pair<std::string, std::string>, Instrument> instruments_;
};

}  // namespace pmte::obs
