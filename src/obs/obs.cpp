#include "src/obs/obs.hpp"

#if PMTE_OBS

#include "src/parallel/parallel.hpp"
#include "src/util/timer.hpp"

namespace pmte::obs {

namespace detail {
std::atomic<bool> g_metrics_on{false};
std::atomic<bool> g_trace_on{false};
}  // namespace detail

MetricsRegistry& registry() {
  static MetricsRegistry r;
  return r;
}

TraceSink& trace_sink() {
  static TraceSink s;
  return s;
}

void configure(const ObsConfig& cfg) {
  if (cfg.trace) trace_sink().configure_capacity(cfg.trace_events_per_thread);
  detail::g_metrics_on.store(cfg.metrics, std::memory_order_relaxed);
  detail::g_trace_on.store(cfg.trace, std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(const char* name, std::int64_t arg,
                       const char* arg_name, Histogram* latency) noexcept
    : name_(name),
      arg_name_(arg_name),
      latency_(latency),
      arg_(arg),
      start_ns_(0) {
  // Read the clock only when someone will consume the measurement.
  if (trace_on() || (latency_ != nullptr && metrics_on())) {
    start_ns_ = now_ns();
  }
}

void ScopedSpan::finish() noexcept {
  if (start_ns_ == 0) return;
  const std::uint64_t end_ns = now_ns();
  const std::uint64_t dur_ns = end_ns - start_ns_;
  if (latency_ != nullptr && metrics_on()) latency_->record(dur_ns);
  if (trace_on()) {
    TraceEvent ev;
    ev.name = name_;
    ev.ts_ns = start_ns_;
    ev.dur_ns = dur_ns;
    ev.tid = static_cast<std::uint32_t>(thread_index());
    if (arg_ >= 0 && arg_name_ != nullptr) {
      ev.arg_name = arg_name_;
      ev.arg = arg_;
    }
    trace_sink().record(ev.tid, ev);
  }
  start_ns_ = 0;
}

}  // namespace pmte::obs

#endif  // PMTE_OBS
