#include "src/obs/metrics.hpp"

#include <algorithm>

#include "src/util/assertions.hpp"

namespace pmte::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

bool valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Canonical rendered label set: sorted by key, `k="v"` comma-joined.
/// Empty labels render as the empty string (a bare series).
std::string render_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    PMTE_CHECK(valid_label_name(labels[i].first),
               "obs: invalid label name: " + labels[i].first);
    PMTE_CHECK(i == 0 || labels[i].first != labels[i - 1].first,
               "obs: duplicate label key: " + labels[i].first);
    if (i > 0) out.push_back(',');
    out += labels[i].first;
    out += "=\"";
    out += escape_label_value(labels[i].second);
    out.push_back('"');
  }
  return out;
}

/// `name{labels}` / `name` — the exposition series head.  `extra` splices
/// an additional label (the histogram `le`) after the canonical set.
std::string series(const std::string& name, const std::string& labels,
                   const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return name;
  std::string out = name;
  out.push_back('{');
  out += labels;
  if (!labels.empty() && !extra.empty()) out.push_back(',');
  out += extra;
  out.push_back('}');
  return out;
}

const char* kind_name(bool is_counter, bool is_gauge) {
  return is_counter ? "counter" : (is_gauge ? "gauge" : "histogram");
}

}  // namespace

std::uint64_t Histogram::percentile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cum += bucket_count(b);
    if (cum >= target) return bucket_le(b);
  }
  return bucket_le(kBuckets - 1);
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::snapshot()
    const noexcept {
  std::array<std::uint64_t, kBuckets> out{};
  for (std::size_t b = 0; b < kBuckets; ++b) out[b] = bucket_count(b);
  return out;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry::Instrument& MetricsRegistry::resolve(
    Kind kind, const std::string& name, const Labels& labels,
    const std::string& help) {
  PMTE_CHECK(valid_metric_name(name), "obs: invalid metric name: " + name);
  const std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      instruments_.try_emplace({name, render_labels(labels)});
  Instrument& inst = it->second;
  if (inserted) {
    inst.kind = kind;
    inst.help = help;
    switch (kind) {
      case Kind::kCounter:
        inst.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        inst.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        inst.histogram = std::make_unique<Histogram>();
        break;
    }
  } else {
    PMTE_CHECK(inst.kind == kind,
               "obs: instrument '" + name +
                   "' re-registered with a different kind");
    if (inst.help.empty()) inst.help = help;
  }
  return inst;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels,
                                  const std::string& help) {
  return *resolve(Kind::kCounter, name, labels, help).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels,
                              const std::string& help) {
  return *resolve(Kind::kGauge, name, labels, help).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels,
                                      const std::string& help) {
  return *resolve(Kind::kHistogram, name, labels, help).histogram;
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return instruments_.size();
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, inst] : instruments_) {
    switch (inst.kind) {
      case Kind::kCounter:
        inst.counter->reset();
        break;
      case Kind::kGauge:
        inst.gauge->reset();
        break;
      case Kind::kHistogram:
        inst.histogram->reset();
        break;
    }
  }
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::string* last_family = nullptr;
  for (const auto& [key, inst] : instruments_) {
    const auto& [name, labels] = key;
    if (last_family == nullptr || *last_family != name) {
      // The pair key keeps a family's series contiguous, so the metadata
      // lines emit exactly once per family.
      os << "# HELP " << name << ' '
         << (inst.help.empty() ? "(no help registered)" : inst.help) << '\n';
      os << "# TYPE " << name << ' '
         << kind_name(inst.kind == Kind::kCounter, inst.kind == Kind::kGauge)
         << '\n';
      last_family = &name;
    }
    switch (inst.kind) {
      case Kind::kCounter:
        os << series(name, labels) << ' ' << inst.counter->value() << '\n';
        break;
      case Kind::kGauge:
        os << series(name, labels) << ' ' << inst.gauge->value() << '\n';
        break;
      case Kind::kHistogram: {
        const Histogram& h = *inst.histogram;
        const auto counts = h.snapshot();
        // Cumulative buckets up to the highest non-empty one; +Inf always
        // emits and equals _count (the grammar check_obs_export.py pins).
        std::size_t top = 0;
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
          if (counts[b] != 0) top = b;
        }
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b <= top; ++b) {
          cum += counts[b];
          os << series(name + "_bucket", labels,
                       "le=\"" + std::to_string(Histogram::bucket_le(b)) +
                           "\"")
             << ' ' << cum << '\n';
        }
        os << series(name + "_bucket", labels, "le=\"+Inf\"") << ' '
           << h.count() << '\n';
        os << series(name + "_sum", labels) << ' ' << h.sum() << '\n';
        os << series(name + "_count", labels) << ' ' << h.count() << '\n';
        break;
      }
    }
  }
}

}  // namespace pmte::obs
