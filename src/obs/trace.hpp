#pragma once
// Trace half of the observability layer (docs/OBSERVABILITY.md): a
// per-thread ring-buffer sink of completed spans, exported as Chrome
// trace-event JSON (load the file in chrome://tracing or Perfetto).
//
// Recording model.  Spans record on close as complete events (`ph: "X"`),
// so the sink never has to pair begin/end records: each event carries its
// own start timestamp and duration.  Every thread writes its own
// cache-line-separated ring (indexed by pmte::thread_index()), so
// recording inside parallel regions is wait-free and never contends;
// rings keep the most recent `capacity` events per thread (older ones are
// overwritten — a flight recorder, not a log).
//
// Thread-safety: record() is safe from any thread inside or outside
// parallel regions (each thread touches only its own ring; the OpenMP
// join barrier orders those writes before any post-region reader).
// configure_capacity() / clear() / write_chrome_trace() are serial-phase
// only — call them between batches, like every other Server mutation.
//
// Determinism: trace contents are wall-time and thread-schedule dependent
// by nature — they are an operator artefact, never an input to anything,
// and nothing in the export feeds back into algorithmic decisions (the
// bar documented in docs/DETERMINISM.md).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <vector>

namespace pmte::obs {

/// One completed span.  `name`/`arg_name` must point at static-storage
/// strings (span sites are compile-time literals); `arg` < 0 means "no
/// numeric argument".
struct TraceEvent {
  const char* name = nullptr;
  const char* arg_name = nullptr;
  std::uint64_t ts_ns = 0;   ///< start, pmte::now_ns() domain
  std::uint64_t dur_ns = 0;
  std::int64_t arg = -1;
  std::uint32_t tid = 0;
};

class TraceSink {
 public:
  /// Ring slots are preallocated per thread index on first use; indices
  /// beyond this are counted in dropped() instead of recorded (matches
  /// the WorkDepth per-thread-slot bound).
  static constexpr std::size_t kMaxThreads = 256;

  /// Resize every ring (existing events are discarded).  Serial only.
  void configure_capacity(std::size_t events_per_thread);

  /// Append one completed event to the calling thread's ring.  `tid` must
  /// be pmte::thread_index() of the caller.
  void record(std::uint32_t tid, const TraceEvent& ev) noexcept;

  /// Merge all rings and emit Chrome trace-event JSON: complete ("X")
  /// events sorted by timestamp (ties broken tid then longest-first so
  /// enclosing spans precede their children), timestamps rebased to the
  /// earliest event and expressed in microseconds at nanosecond precision.
  /// One event per line — line-oriented consumers (tests, the CI
  /// validator) can parse without a full JSON reader.  Serial only.
  void write_chrome_trace(std::ostream& os) const;

  /// Drop all recorded events (capacity retained).  Serial only.
  void clear();

  /// Events not recorded because the thread index exceeded kMaxThreads.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Events currently resident across all rings.
  [[nodiscard]] std::size_t num_events() const;

 private:
  struct alignas(64) Ring {
    std::vector<TraceEvent> buf;  ///< allocated lazily, sized capacity_
    std::size_t next = 0;
    bool wrapped = false;
  };

  std::vector<Ring> rings_ = std::vector<Ring>(kMaxThreads);
  std::size_t capacity_ = std::size_t{1} << 12;
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace pmte::obs
