#pragma once
// Incrementally maintained FRT sample (the dynamic-update path of the P-H
// pipeline, docs/DYNAMIC.md).
//
// sample_frt_oracle_on (pipelines.cpp) is build-once: it draws β and the
// vertex order, runs the LE-list oracle to its fixpoint, builds the tree,
// and throws the oracle away.  DynamicFrt performs the identical build —
// same RNG draw order, same iteration cap, bit-identical lists and tree —
// but *retains* the oracle with its per-level state caches, the order, β,
// and the current LE lists.  An edge-weight change of G' then costs only
// the level re-runs the change actually reaches (MbfOracle::update):
//
//   decrease — the caches warm-restart with the edge endpoints seeded
//              into every level's frontier; iteration continues in place
//              and converges to the new least fixpoint, which is unique,
//              so the lists are bit-identical to a full re-run.
//   increase — the caches reset and the oracle re-runs from r^V x⁽⁰⁾,
//              bit-identical to a freshly built oracle on the new weights.
//
// The tree (and hence the serving index) is rebuilt only when the LE
// lists or the minimum-edge-weight hint actually changed — FrtTree::build
// is a deterministic function of (lists, order, β, hint, rule), so an
// unchanged input means an unchanged tree.
//
// Ownership: the simulated graph H is shared and *mutable elsewhere* —
// the owner (serve::DynamicEnsemble) applies each weight change to the
// shared graph once, then calls apply_update on every maintainer.
// DynamicFrt never mutates H itself.  Not copyable/movable: the retained
// oracle points at internal members.

#include <vector>

#include "src/frt/pipelines.hpp"

namespace pmte {

class DynamicFrt {
 public:
  /// Replicates sample_frt_oracle_on(h, rng, opts) bit-for-bit: draws β
  /// then the order from `rng`, runs the LE oracle to its fixpoint and
  /// builds the tree.  Oracle pipeline only (`opts.mbf` feeds the retained
  /// oracle); `h` must outlive the maintainer.
  DynamicFrt(const SimulatedGraph& h, Rng& rng, const FrtOptions& opts = {});

  DynamicFrt(const DynamicFrt&) = delete;
  DynamicFrt& operator=(const DynamicFrt&) = delete;

  /// Absorb one already-applied G' edge-weight change (the owner mutates
  /// the shared graph *before* this call; `edge` carries the old weight).
  /// Re-runs the retained oracle to the new fixpoint — incrementally after
  /// a decrease, from scratch after an increase — and rebuilds the tree
  /// when the lists or the distance hint changed.  Returns whether the
  /// tree changed (the caller's serving index must then be rebuilt).
  bool apply_update(const WeightedEdge& edge, Weight new_weight);

  [[nodiscard]] const FrtTree& tree() const noexcept { return tree_; }
  [[nodiscard]] const std::vector<DistanceMap>& lists() const noexcept {
    return states_;
  }
  [[nodiscard]] const VertexOrder& order() const noexcept { return order_; }
  [[nodiscard]] double beta() const noexcept { return beta_; }
  /// Whether the last oracle run drained its changed set within the cap.
  [[nodiscard]] bool converged() const noexcept { return converged_; }
  /// Cumulative H-iterations across the initial build and every update.
  [[nodiscard]] unsigned iterations() const noexcept { return iterations_; }
  /// Cumulative level-run ledger of the retained oracle (skips/warm/full).
  [[nodiscard]] const OracleStats& oracle_stats() const noexcept {
    return oracle_.stats();
  }
  /// Whether the last apply_update took the incremental (decrease) path.
  [[nodiscard]] bool last_update_incremental() const noexcept {
    return last_incremental_;
  }

 private:
  /// oracle_run's loop shape on the *retained* oracle: step until the
  /// changed set drains or the automatic O(log² n) cap (le_lists_oracle's
  /// formula) is hit.  `changed0` threads the first step's changed list —
  /// nullptr stamps everything (fresh runs), an empty list stamps nothing
  /// (post-update continuations: the weights changed, not the states).
  void run_to_fixpoint(const std::vector<Vertex>* changed0);

  const SimulatedGraph* h_;
  FrtOptions opts_;
  LeListAlgebra alg_;
  double beta_;
  VertexOrder order_;
  MbfOracle<LeListAlgebra> oracle_;
  std::vector<DistanceMap> states_;  ///< current LE lists (keys are ranks)
  Weight hint_ = 1.0;                ///< dist-min hint the tree was built with
  FrtTree tree_;
  bool converged_ = false;
  bool last_incremental_ = false;
  unsigned iterations_ = 0;
};

}  // namespace pmte
