#include "src/frt/le_lists.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "src/parallel/parallel.hpp"
#include "src/util/assertions.hpp"

namespace pmte {

VertexOrder VertexOrder::random(Vertex n, Rng& rng) {
  VertexOrder o;
  o.vertex_of = random_permutation(n, rng);
  o.rank_of = invert_permutation(o.vertex_of);
  return o;
}

VertexOrder VertexOrder::identity(Vertex n) {
  VertexOrder o;
  o.vertex_of.resize(n);
  for (Vertex v = 0; v < n; ++v) o.vertex_of[v] = v;
  o.rank_of = o.vertex_of;
  return o;
}

std::vector<DistanceMap> le_initial_state(const VertexOrder& order) {
  std::vector<DistanceMap> x0(order.n());
  for (Vertex v = 0; v < order.n(); ++v) {
    x0[v] = DistanceMap::singleton(order.rank_of[v], 0.0);
  }
  return x0;
}

LeListsResult le_lists_iteration(const Graph& g, const VertexOrder& order,
                                 unsigned max_iterations) {
  PMTE_CHECK(order.n() == g.num_vertices(), "order size mismatch");
  if (max_iterations == 0) {
    max_iterations = g.num_vertices() > 0 ? g.num_vertices() : 1;
  }
  const LeListAlgebra alg;
  auto run = mbf_run(g, alg, le_initial_state(order), max_iterations);
  LeListsResult r;
  r.lists = std::move(run.states);
  r.iterations = run.iterations;
  r.converged = run.reached_fixpoint;
  return r;
}

LeListsResult le_lists_oracle(const SimulatedGraph& h,
                              const VertexOrder& order,
                              unsigned max_h_iterations, MbfOptions opts) {
  PMTE_CHECK(order.n() == h.num_vertices(), "order size mismatch");
  if (max_h_iterations == 0) {
    // SPD(H) ∈ O(log² n) w.h.p. (Theorem 4.5); the fixpoint check stops us
    // as soon as the lists stabilise, the cap is only a safety net.
    const double n = std::max<double>(h.num_vertices(), 2);
    const double log_n = std::log2(n);
    max_h_iterations =
        static_cast<unsigned>(std::max(8.0, 4.0 * log_n * log_n));
  }
  const LeListAlgebra alg;
  OracleStats stats;
  auto run = oracle_run(h, alg, le_initial_state(order), max_h_iterations,
                        &stats, opts);
  LeListsResult r;
  r.lists = std::move(run.states);
  r.iterations = stats.h_iterations;
  r.base_iterations = stats.base_iterations;
  r.converged = stats.reached_fixpoint;
  r.levels_skipped = stats.levels_skipped;
  r.levels_warm = stats.levels_warm;
  r.levels_full = stats.levels_full;
  return r;
}

namespace {

struct SeqHeapEntry {
  Weight d;
  Vertex v;
  friend bool operator>(const SeqHeapEntry& a, const SeqHeapEntry& b) {
    return a.d > b.d;
  }
};

}  // namespace

LeListsResult le_lists_sequential(const Graph& g, const VertexOrder& order) {
  PMTE_CHECK(order.n() == g.num_vertices(), "order size mismatch");
  const Vertex n = g.num_vertices();
  LeListsResult r;
  r.converged = true;
  std::vector<std::vector<DistEntry>> lists(n);
  // best[u] = min distance from u to any already-processed (lower-rank)
  // source.  A source's Dijkstra prunes at vertices it cannot improve:
  // by the triangle inequality no vertex beyond them can be improved either.
  std::vector<Weight> best(n, inf_weight());
  std::vector<Weight> dist(n, inf_weight());
  std::vector<Vertex> touched;

  std::priority_queue<SeqHeapEntry, std::vector<SeqHeapEntry>, std::greater<>>
      heap;

  for (Vertex rank = 0; rank < n; ++rank) {
    const Vertex s = order.vertex_of[rank];
    if (best[s] <= 0.0) continue;  // dominated at distance 0 — impossible
    heap.push({0.0, s});
    dist[s] = 0.0;
    touched.push_back(s);
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (d > dist[v]) continue;
      if (d >= best[v]) continue;  // dominated: prune subtree
      lists[v].push_back(DistEntry{rank, d});
      best[v] = d;
      for (const auto& e : g.neighbors(v)) {
        const Weight nd = d + e.weight;
        if (nd < dist[e.to] && nd < best[e.to]) {
          if (!is_finite(dist[e.to])) touched.push_back(e.to);
          dist[e.to] = nd;
          heap.push({nd, e.to});
        }
      }
    }
    for (Vertex v : touched) dist[v] = inf_weight();
    touched.clear();
    ++r.iterations;
  }
  r.lists.resize(n);
  for (Vertex v = 0; v < n; ++v) {
    // Entries were appended in ascending rank and (by domination) strictly
    // descending distance; sort by key to obtain DistanceMap's invariant.
    std::sort(lists[v].begin(), lists[v].end(),
              [](const DistEntry& a, const DistEntry& b) {
                return a.key < b.key;
              });
    r.lists[v] = DistanceMap::from_entries(std::move(lists[v]));
    PMTE_ASSERT(r.lists[v].is_least_element_list(),
                "sequential LE list violates the staircase invariant");
  }
  return r;
}

LeListsResult le_lists_from_metric(const std::vector<Weight>& dist,
                                   const VertexOrder& order) {
  const Vertex n = order.n();
  PMTE_CHECK(dist.size() == static_cast<std::size_t>(n) * n,
             "metric must be n x n");
  LeListsResult r;
  r.lists.resize(n);
  r.iterations = 1;
  r.converged = true;
  parallel_for(n, [&](std::size_t vi) {
    std::vector<DistEntry> entries;
    entries.reserve(n);
    for (Vertex w = 0; w < n; ++w) {
      const Weight d = dist[vi * n + w];
      if (is_finite(d)) entries.push_back(DistEntry{order.rank_of[w], d});
    }
    auto m = DistanceMap::from_entries(std::move(entries));
    m.keep_least_elements();
    r.lists[vi] = std::move(m);
  });
  return r;
}

}  // namespace pmte
