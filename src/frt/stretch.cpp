#include "src/frt/stretch.hpp"

#include <algorithm>

#include "src/graph/shortest_paths.hpp"
#include "src/parallel/parallel.hpp"
#include "src/util/assertions.hpp"

namespace pmte {

PairSample sample_pairs(const Graph& g, std::size_t num_sources,
                        std::size_t max_pairs, Rng& rng) {
  const Vertex n = g.num_vertices();
  PairSample ps;
  if (n < 2) return ps;
  std::vector<Vertex> sources;
  if (num_sources >= n) {
    sources.resize(n);
    for (Vertex v = 0; v < n; ++v) sources[v] = v;
  } else {
    while (sources.size() < num_sources) {
      sources.push_back(static_cast<Vertex>(rng.below(n)));
    }
    std::sort(sources.begin(), sources.end());
    sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  }
  const std::size_t per_source =
      std::max<std::size_t>(1, max_pairs / sources.size());
  std::vector<std::vector<Vertex>> targets(sources.size());
  std::vector<std::vector<Weight>> dists(sources.size());
  std::vector<Rng> rngs;
  rngs.reserve(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) rngs.push_back(rng.split());
  parallel_for(sources.size(), [&](std::size_t i) {
    const auto sp = dijkstra(g, sources[i]).dist;
    auto& local_rng = rngs[i];
    for (std::size_t t = 0; t < per_source; ++t) {
      const auto w = static_cast<Vertex>(local_rng.below(n));
      if (w == sources[i] || !is_finite(sp[w])) continue;
      targets[i].push_back(w);
      dists[i].push_back(sp[w]);
    }
  });
  for (std::size_t i = 0; i < sources.size(); ++i) {
    for (std::size_t t = 0; t < targets[i].size(); ++t) {
      ps.u.push_back(sources[i]);
      ps.v.push_back(targets[i][t]);
      ps.dist.push_back(dists[i][t]);
    }
  }
  return ps;
}

StretchReport measure_stretch(const PairSample& pairs,
                              const std::vector<FrtTree>& trees) {
  StretchReport rep;
  rep.pairs = pairs.u.size();
  rep.trees = trees.size();
  if (rep.pairs == 0 || rep.trees == 0) return rep;
  std::vector<double> expected(rep.pairs, 0.0);
  std::vector<double> worst(rep.pairs, 0.0);
  std::vector<double> best(rep.pairs, inf_weight());
  parallel_for(rep.pairs, [&](std::size_t p) {
    double sum = 0.0, hi = 0.0, lo = inf_weight();
    for (const auto& t : trees) {
      const double ratio = t.distance(pairs.u[p], pairs.v[p]) / pairs.dist[p];
      sum += ratio;
      hi = std::max(hi, ratio);
      lo = std::min(lo, ratio);
    }
    expected[p] = sum / static_cast<double>(trees.size());
    worst[p] = hi;
    best[p] = lo;
  });
  double total = 0.0;
  rep.min_single_ratio = inf_weight();
  for (std::size_t p = 0; p < rep.pairs; ++p) {
    total += expected[p];
    rep.max_expected_stretch = std::max(rep.max_expected_stretch, expected[p]);
    rep.max_single_ratio = std::max(rep.max_single_ratio, worst[p]);
    rep.min_single_ratio = std::min(rep.min_single_ratio, best[p]);
  }
  rep.avg_expected_stretch = total / static_cast<double>(rep.pairs);
  return rep;
}

}  // namespace pmte
