#include "src/frt/paths.hpp"

#include <algorithm>

#include "src/util/assertions.hpp"

namespace pmte {

PathUnfolder::PathUnfolder(const Graph& g, const FrtTree& tree)
    : g_(g), tree_(tree) {
  PMTE_CHECK(g.num_vertices() == tree.num_leaves(),
             "tree/graph vertex count mismatch");
}

const SsspResult& PathUnfolder::sssp_from(Vertex source) {
  auto it = cache_.find(source);
  if (it == cache_.end()) {
    it = cache_.emplace(source, dijkstra(g_, source)).first;
  }
  return it->second;
}

UnfoldedEdge PathUnfolder::unfold(FrtTree::NodeId child) {
  const auto& c = tree_.node(child);
  PMTE_CHECK(c.parent != FrtTree::invalid_node, "root has no parent edge");
  const auto& p = tree_.node(c.parent);
  const Vertex a = c.leading;
  const Vertex b = p.leading;
  const Vertex v0 = tree_.node(c.representative_leaf).leaf_vertex;
  PMTE_CHECK(v0 != no_vertex(), "representative leaf missing");

  const auto& sp = sssp_from(v0);
  auto trace = [&](Vertex target) {
    std::vector<Vertex> rev;
    PMTE_CHECK(is_finite(sp.dist[target]),
               "leading vertex unreachable from representative leaf");
    for (Vertex v = target; v != no_vertex(); v = sp.parent[v]) {
      rev.push_back(v);
      if (v == v0) break;
    }
    PMTE_CHECK(rev.back() == v0, "path trace did not reach the leaf");
    return rev;  // target … v0
  };

  UnfoldedEdge out;
  // a … v0 … b
  auto to_a = trace(a);           // a … v0
  const auto to_b = trace(b);     // b … v0
  out.path = std::move(to_a);
  out.path.insert(out.path.end(), to_b.rbegin() + 1, to_b.rend());
  std::reverse(out.path.begin(), out.path.end());  // cosmetic: b … v0 … a
  out.weight = sp.dist[a] + sp.dist[b];
  return out;
}

}  // namespace pmte
