#include "src/frt/dynamic_frt.hpp"

#include <algorithm>
#include <cmath>

#include "src/parallel/parallel.hpp"
#include "src/util/assertions.hpp"

namespace pmte {

namespace {

/// Minimum-distance hint for FrtTree::build — must match the P-H
/// pipeline's choice (pipelines.cpp: dist_hint of the base graph), so the
/// maintained tree is bit-identical to sample_frt_oracle_on's.
Weight dist_hint(const Graph& g) {
  const Weight w = g.min_edge_weight();
  return is_finite(w) ? w : 1.0;
}

}  // namespace

DynamicFrt::DynamicFrt(const SimulatedGraph& h, Rng& rng,
                       const FrtOptions& opts)
    : h_(&h),
      opts_(opts),
      beta_(sample_beta(rng)),  // β before the order — the pipeline's draw
      order_(VertexOrder::random(h.num_vertices(), rng)),
      oracle_(h, alg_, opts.mbf) {
  states_ = le_initial_state(order_);
  mbf_filter(alg_, states_);  // r^V x⁽⁰⁾, as oracle_run does
  run_to_fixpoint(nullptr);
  hint_ = dist_hint(h.base());
  tree_ = FrtTree::build(states_, order_, beta_, hint_, opts_.rule);
}

void DynamicFrt::run_to_fixpoint(const std::vector<Vertex>* changed0) {
  unsigned cap = opts_.max_iterations;
  if (cap == 0) {
    // le_lists_oracle's automatic bound: SPD(H) ∈ O(log² n) w.h.p.
    const double n = std::max<double>(h_->num_vertices(), 2);
    const double log_n = std::log2(n);
    cap = static_cast<unsigned>(std::max(8.0, 4.0 * log_n * log_n));
  }
  converged_ = false;
  PerThreadBuffers<Vertex> buffers;
  std::vector<Vertex> changed;
  const std::vector<Vertex>* changed_ptr = changed0;
  for (unsigned i = 0; i < cap; ++i) {
    auto next = oracle_.step(states_, changed_ptr);
    ++iterations_;
    buffers.clear();
    parallel_for(next.size(), [&](std::size_t v) {
      if (!alg_.equal(next[v], states_[v])) {
        buffers.local().push_back(static_cast<Vertex>(v));
      }
    });
    buffers.drain_sorted(changed);
    states_ = std::move(next);
    if (changed.empty()) {
      converged_ = true;
      break;
    }
    changed_ptr = &changed;
  }
}

bool DynamicFrt::apply_update(const WeightedEdge& edge, Weight new_weight) {
  const OracleUpdateKind kind = oracle_.update(edge, new_weight);
  last_incremental_ = kind == OracleUpdateKind::kIncremental;
  const std::vector<DistanceMap> before = states_;
  if (kind == OracleUpdateKind::kInvalidated) {
    // Increase: the oracle reset to its freshly-constructed state, so this
    // is bit-identical to a brand-new build on the mutated weights.
    states_ = le_initial_state(order_);
    mbf_filter(alg_, states_);
    run_to_fixpoint(nullptr);
  } else {
    // Decrease: continue from the retained caches.  The changed list is
    // *empty*, not nullptr — no state changed, the weights did; the
    // oracle's pending touch forces each level to re-run once.
    const std::vector<Vertex> none;
    run_to_fixpoint(&none);
  }
  const Weight hint = dist_hint(h_->base());
  const bool changed = hint != hint_ || states_ != before;
  if (changed) {
    hint_ = hint;
    tree_ = FrtTree::build(states_, order_, beta_, hint_, opts_.rule);
  }
  return changed;
}

}  // namespace pmte
