#pragma once
// Empirical stretch measurement for tree embeddings (Definition 7.1).
//
// The FRT guarantee is on the *expected* stretch: for every pair v,w,
// E_T[dist(v,w,T)] ≤ O(log n)·dist(v,w,G).  We estimate the expectation by
// sampling several trees and report, over a pair sample, the mean/max of
//    avg_T dist(v,w,T) / dist(v,w,G),
// plus the dominance ratio min dist_T/dist_G (≥ 1 must hold for the
// dominating weight rule).

#include <cstddef>
#include <vector>

#include "src/frt/frt_tree.hpp"
#include "src/graph/graph.hpp"
#include "src/util/rng.hpp"

namespace pmte {

struct StretchReport {
  std::size_t pairs = 0;
  std::size_t trees = 0;
  double avg_expected_stretch = 0.0;  ///< mean over pairs of E_T[ratio]
  double max_expected_stretch = 0.0;  ///< max over pairs of E_T[ratio]
  double max_single_ratio = 0.0;      ///< worst ratio of any (pair, tree)
  double min_single_ratio = 0.0;      ///< < 1 would falsify dominance
};

/// Vertex pairs with their exact distances in `g` (Dijkstra from sampled
/// sources); at most `max_pairs` pairs from `num_sources` sources.
struct PairSample {
  std::vector<Vertex> u, v;
  std::vector<Weight> dist;
};
[[nodiscard]] PairSample sample_pairs(const Graph& g, std::size_t num_sources,
                                      std::size_t max_pairs, Rng& rng);

/// Evaluate a set of sampled trees against exact distances.
[[nodiscard]] StretchReport measure_stretch(const PairSample& pairs,
                                            const std::vector<FrtTree>& trees);

}  // namespace pmte
