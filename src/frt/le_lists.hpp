#pragma once
// Least-Element (LE) lists (Section 7).
//
// Fixing a uniformly random total order on V, the LE list of v contains
// (dist(v,w), w) exactly for those w that are closer to v than every vertex
// preceding w in the order.  LE lists have length O(log n) w.h.p.
// (Lemma 7.6) and are exactly the information needed to build an FRT tree
// (Section 7.1, steps (3)–(4)).
//
// Computing LE lists is MBF-like (Definition 7.3 / Lemma 7.5): semiring
// Smin,+, semimodule D, filter r = "drop dominated entries".  We represent
// the random order by relabelling vertices with their *rank*: DistanceMap
// keys of all LE states are ranks, so the order comparison is integral.

#include <vector>

#include "src/algebra/distance_map.hpp"
#include "src/graph/graph.hpp"
#include "src/mbf/engine.hpp"
#include "src/oracle/mbf_oracle.hpp"
#include "src/simgraph/simulated_graph.hpp"
#include "src/util/rng.hpp"

namespace pmte {

/// The random vertex order: rank_of[v] and its inverse vertex_of[r].
struct VertexOrder {
  std::vector<Vertex> rank_of;    // vertex → rank
  std::vector<Vertex> vertex_of;  // rank → vertex

  static VertexOrder random(Vertex n, Rng& rng);
  static VertexOrder identity(Vertex n);

  [[nodiscard]] Vertex n() const noexcept {
    return static_cast<Vertex>(rank_of.size());
  }
};

/// The MBF-like algebra of Definition 7.3: distance maps with the
/// least-element filter.
struct LeListAlgebra {
  using State = DistanceMap;

  [[nodiscard]] State bottom() const { return DistanceMap{}; }

  void relax(State& acc, Weight w, Vertex /*from*/, Vertex /*to*/,
             const State& x_from) const {
    acc.merge_min(x_from, w);
  }

  void aggregate(State& acc, const State& y) const { acc.merge_min(y); }

  void filter(State& x) const { x.keep_least_elements(); }

  [[nodiscard]] bool equal(const State& a, const State& b) const {
    return a == b;
  }
};

static_assert(MbfAlgebra<LeListAlgebra>);
static_assert(OracleAlgebra<LeListAlgebra>);

/// x⁽⁰⁾ for LE-list computations: v starts knowing (rank(v), 0).
[[nodiscard]] std::vector<DistanceMap> le_initial_state(
    const VertexOrder& order);

/// LE lists with per-run metadata.
struct LeListsResult {
  std::vector<DistanceMap> lists;  ///< per vertex, keys are ranks
  unsigned iterations = 0;         ///< MBF-like iterations executed
  unsigned base_iterations = 0;    ///< iterations on G' (oracle pipeline)
  bool converged = false;
  /// Oracle-pipeline level-reuse accounting (zero elsewhere).
  unsigned levels_skipped = 0;
  unsigned levels_warm = 0;
  unsigned levels_full = 0;
};

/// Khan-et-al style pipeline (Section 8.1): iterate r^V A_G directly to the
/// fixpoint — Θ(SPD(G)) iterations.
[[nodiscard]] LeListsResult le_lists_iteration(const Graph& g,
                                               const VertexOrder& order,
                                               unsigned max_iterations = 0);

/// The paper's pipeline (Theorem 7.9): run the LE algebra on the simulated
/// graph H through the oracle — O(log² n) H-iterations w.h.p.  Levels are
/// reused across H-iterations (skips + warm restarts, see mbf_oracle.hpp);
/// pass `opts` with `oracle_level_reuse = false` for the pre-reuse
/// reference path (bit-identical lists, asymptotically more relaxations).
[[nodiscard]] LeListsResult le_lists_oracle(const SimulatedGraph& h,
                                            const VertexOrder& order,
                                            unsigned max_h_iterations = 0,
                                            MbfOptions opts = {});

/// Sequential baseline (Cohen [12] / Mendel–Schwob [33] style): sources in
/// ascending rank order, pruned Dijkstras.  Exact; O(m log² n) expected.
[[nodiscard]] LeListsResult le_lists_sequential(const Graph& g,
                                                const VertexOrder& order);

/// LE lists straight from an explicit metric (row-major n×n), the
/// Blelloch-et-al input model: one filtered pass per vertex, Θ(n²) work.
[[nodiscard]] LeListsResult le_lists_from_metric(
    const std::vector<Weight>& dist, const VertexOrder& order);

}  // namespace pmte
