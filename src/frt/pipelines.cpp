#include "src/frt/pipelines.hpp"

#include <algorithm>
#include <cmath>

#include "src/graph/shortest_paths.hpp"
#include "src/parallel/counters.hpp"
#include "src/util/assertions.hpp"
#include "src/util/timer.hpp"

namespace pmte {

double resolve_eps_hat(double requested, Vertex n) {
  if (requested > 0.0) return requested;
  // ε̂ = 1/⌈log₂ n⌉² keeps the embedding distortion
  // (1+ε̂)^{Λ+1} ≈ e^{O(1/log n)} = 1 + o(1)  (Equation (4.16)); the
  // exponent of the polylog is "under our control" per the paper.
  const double log_n = std::ceil(std::max(1.0, std::log2(std::max<double>(n, 2))));
  return 1.0 / (log_n * log_n);
}

namespace {

/// Minimum-distance hint for FrtTree::build; edgeless graphs (n ≤ 1) have
/// no minimum edge weight, any positive value works.
Weight dist_hint(const Graph& g) {
  const Weight w = g.min_edge_weight();
  return is_finite(w) ? w : 1.0;
}

std::size_t max_list_length(const LeListsResult& le) {
  std::size_t worst = 0;
  for (const auto& l : le.lists) worst = std::max(worst, l.size());
  return worst;
}

FrtSample finish_sample(LeListsResult le, VertexOrder order, double beta,
                        Weight dist_min_hint, const FrtOptions& opts,
                        const WorkDepthScope& scope, const Timer& timer) {
  FrtSample s;
  s.beta = beta;
  s.iterations = le.iterations;
  s.base_iterations = le.base_iterations;
  s.levels_skipped = le.levels_skipped;
  s.levels_warm = le.levels_warm;
  s.levels_full = le.levels_full;
  s.max_list_length = max_list_length(le);
  s.tree = FrtTree::build(le.lists, order, beta, dist_min_hint, opts.rule);
  s.order = std::move(order);
  s.work = scope.work_delta();
  s.relaxations = scope.relaxations_delta();
  s.edges_touched = scope.edges_touched_delta();
  s.seconds = timer.seconds();
  return s;
}

}  // namespace

FrtSample sample_frt_direct(const Graph& g, Rng& rng,
                            const FrtOptions& opts) {
  PMTE_CHECK(g.num_vertices() >= 1, "empty graph");
  const Timer timer;
  const WorkDepthScope scope;
  const double beta = sample_beta(rng);
  auto order = VertexOrder::random(g.num_vertices(), rng);
  auto le = le_lists_iteration(g, order, opts.max_iterations);
  return finish_sample(std::move(le), std::move(order), beta,
                       dist_hint(g), opts, scope, timer);
}

FrtSample sample_frt_oracle(const Graph& g, Rng& rng,
                            const FrtOptions& opts) {
  PMTE_CHECK(g.num_vertices() >= 1, "empty graph");
  const Timer timer;
  const WorkDepthScope scope;
  auto hopset = build_hub_hopset(g, opts.hopset, rng);
  const double eps = resolve_eps_hat(opts.eps_hat, g.num_vertices());
  auto h = build_simulated_graph(g, hopset, eps, rng);
  auto sample = sample_frt_oracle_on(h, rng, opts);
  sample.hopset_edges = hopset.edges.size();
  sample.seconds = timer.seconds();
  sample.work = scope.work_delta();
  sample.relaxations = scope.relaxations_delta();
  sample.edges_touched = scope.edges_touched_delta();
  return sample;
}

FrtSample sample_frt_oracle_on(const SimulatedGraph& h, Rng& rng,
                               const FrtOptions& opts) {
  const Timer timer;
  const WorkDepthScope scope;
  const double beta = sample_beta(rng);
  auto order = VertexOrder::random(h.num_vertices(), rng);
  auto le = le_lists_oracle(h, order, opts.max_iterations, opts.mbf);
  // Distances in H lower-bound to the minimum edge weight of G' (every H
  // edge weighs (1+ε̂)^{≥0}·dist^d ≥ dist ≥ min edge weight).
  return finish_sample(std::move(le), std::move(order), beta,
                       dist_hint(h.base()), opts, scope, timer);
}

FrtSample sample_frt_metric(const std::vector<Weight>& metric, Vertex n,
                            Weight dist_min_hint, Rng& rng,
                            const FrtOptions& opts) {
  const Timer timer;
  const WorkDepthScope scope;
  const double beta = sample_beta(rng);
  auto order = VertexOrder::random(n, rng);
  auto le = le_lists_from_metric(metric, order);
  return finish_sample(std::move(le), std::move(order), beta, dist_min_hint,
                       opts, scope, timer);
}

FrtSample sample_frt_sequential(const Graph& g, Rng& rng,
                                const FrtOptions& opts) {
  PMTE_CHECK(g.num_vertices() >= 1, "empty graph");
  const Timer timer;
  const WorkDepthScope scope;
  const double beta = sample_beta(rng);
  auto order = VertexOrder::random(g.num_vertices(), rng);
  auto le = le_lists_sequential(g, order);
  return finish_sample(std::move(le), std::move(order), beta,
                       dist_hint(g), opts, scope, timer);
}

}  // namespace pmte
