#pragma once
// Mapping tree edges back to graph paths (Section 7.5).
//
// A tree edge e between the level-i node (v_i,…,v_k) and its parent
// (v_{i+1},…,v_k) is realised by walking from a common descendant leaf v₀
// to both leading vertices: dist(v₀,v_i) ≤ β2^i and dist(v₀,v_{i+1}) ≤
// β2^{i+1}, so the concatenated path weighs at most 3·β2^i ≤ 3·ω_T(e)
// (with the dominating weight rule even ≤ 1.5·ω_T(e)).
//
// The paper traces these walks through H and unfolds H-edges via the
// oracle's lookup tables; since dist_G ≤ dist_H, tracing shortest paths
// directly in G preserves the same guarantee with simpler bookkeeping —
// we do that, caching one Dijkstra per representative leaf.

#include <unordered_map>
#include <vector>

#include "src/frt/frt_tree.hpp"
#include "src/graph/graph.hpp"
#include "src/graph/shortest_paths.hpp"

namespace pmte {

/// A tree edge realised in G.
struct UnfoldedEdge {
  std::vector<Vertex> path;  ///< vertex sequence in G (child-leading vertex
                             ///< … leaf … parent-leading vertex)
  Weight weight = 0.0;       ///< ω_G of the path
};

/// Unfolds tree edges into G paths on demand; memoises shortest-path trees
/// per representative leaf.
class PathUnfolder {
 public:
  PathUnfolder(const Graph& g, const FrtTree& tree);

  /// Realise the parent edge of `child` in G.
  [[nodiscard]] UnfoldedEdge unfold(FrtTree::NodeId child);

  /// Total number of Dijkstra runs performed (cost accounting).
  [[nodiscard]] std::size_t dijkstra_runs() const noexcept {
    return cache_.size();
  }

 private:
  const SsspResult& sssp_from(Vertex source);

  const Graph& g_;
  const FrtTree& tree_;
  // pmte-lint: ordered-ok(memo cache: find/emplace by leaf vertex only, never iterated — unfold order is the caller's)
  std::unordered_map<Vertex, SsspResult> cache_;
};

}  // namespace pmte
