#pragma once
// End-to-end FRT sampling pipelines (Section 7.4).
//
//   P-G  "direct"     — LE lists by iterating r^V A_G to the fixpoint:
//                        Θ(SPD(G)) iterations (Khan et al. [26], §8.1).
//   P-H  "oracle"     — the paper's algorithm (Theorem 7.9 / Cor. 7.10):
//                        hop set → simulated graph H → oracle; O(log² n)
//                        H-iterations w.h.p., subquadratic work.
//   P-M  "metric"     — explicit APSP, then one filtered pass per vertex:
//                        the Blelloch et al. [10] input model, Ω(n²) work.
//   P-S  "sequential" — pruned Dijkstras (Cohen [12]/Mendel–Schwob [33]):
//                        near-optimal sequential work, no parallel depth
//                        guarantee.
//
// All pipelines share step (1)–(2) randomness (β, vertex order) and
// construct the tree via FrtTree::build, so their outputs are directly
// comparable.

#include <cstdint>
#include <optional>

#include "src/frt/frt_tree.hpp"
#include "src/frt/le_lists.hpp"
#include "src/hopset/hopset.hpp"
#include "src/simgraph/simulated_graph.hpp"

namespace pmte {

struct FrtOptions {
  FrtWeightRule rule = FrtWeightRule::dominating;
  /// Penalty parameter ε̂ of the simulated graph (Section 4);
  /// 0 → auto 1/⌈log₂ n⌉², keeping the distortion (1+ε̂)^{Λ+1} = 1 + o(1)
  /// (Equation (4.16)).
  double eps_hat = 0.0;
  HubHopSetParams hopset;
  unsigned max_iterations = 0;  ///< 0 = automatic bound
  /// Engine/oracle tunables (P-H pipeline): mode, density threshold, and
  /// `oracle_level_reuse` — false selects the pre-reuse reference oracle.
  MbfOptions mbf;
};

/// One sampled tree plus run metadata (depth/work proxies for E4).
struct FrtSample {
  FrtTree tree;
  double beta = 1.0;
  VertexOrder order;
  unsigned iterations = 0;       ///< top-level MBF-like iterations
  unsigned base_iterations = 0;  ///< G'-level iterations (oracle pipeline)
  std::uint64_t work = 0;        ///< semiring ops (WorkDepth delta)
  std::uint64_t relaxations = 0;    ///< edge relax applications (WorkDepth)
  std::uint64_t edges_touched = 0;  ///< half-edges scanned (WorkDepth)
  double seconds = 0.0;
  std::size_t hopset_edges = 0;
  std::size_t max_list_length = 0;  ///< for Lemma 7.6 checks
  /// Oracle level-reuse accounting (P-H pipeline; zero elsewhere).
  unsigned levels_skipped = 0;
  unsigned levels_warm = 0;
  unsigned levels_full = 0;
};

/// P-G: direct fixpoint iteration on G.
[[nodiscard]] FrtSample sample_frt_direct(const Graph& g, Rng& rng,
                                          const FrtOptions& opts = {});

/// P-H: the paper's oracle pipeline.  Builds the hop set and H internally.
[[nodiscard]] FrtSample sample_frt_oracle(const Graph& g, Rng& rng,
                                          const FrtOptions& opts = {});

/// P-H with a pre-built simulated graph (amortise the hop set across
/// samples; the level sampling stays fixed, fresh β/permutation per call).
[[nodiscard]] FrtSample sample_frt_oracle_on(const SimulatedGraph& h,
                                             Rng& rng,
                                             const FrtOptions& opts = {});

/// P-M: from an explicit metric (row-major n×n).  `dist_min_hint` must
/// lower-bound the smallest positive entry.
[[nodiscard]] FrtSample sample_frt_metric(const std::vector<Weight>& metric,
                                          Vertex n, Weight dist_min_hint,
                                          Rng& rng,
                                          const FrtOptions& opts = {});

/// P-S: sequential pruned-Dijkstra pipeline on G.
[[nodiscard]] FrtSample sample_frt_sequential(const Graph& g, Rng& rng,
                                              const FrtOptions& opts = {});

/// Resolve the automatic ε̂ = 1/⌈log₂ n⌉² (Equation (4.16): the distortion
/// (1+ε̂)^{O(log n)} stays 1 + o(1); the polylog exponent is a free choice).
[[nodiscard]] double resolve_eps_hat(double requested, Vertex n);

}  // namespace pmte
