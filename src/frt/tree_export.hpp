#pragma once
// FRT tree export: Graphviz DOT for visual inspection and a line-based
// text serialisation with exact round-tripping (node per line:
// "id parent level leading leaf_vertex edge_weight").

#include <iosfwd>
#include <string>

#include "src/frt/frt_tree.hpp"

namespace pmte {

/// Graphviz DOT rendering (leaves labelled with their graph vertex).
void write_dot(const FrtTree& tree, std::ostream& os);

/// Text serialisation capturing the full topology and weights.
void write_tree(const FrtTree& tree, std::ostream& os);

/// Summary line: "nodes=… levels=… leaves=… total_weight=…".
[[nodiscard]] std::string tree_summary(const FrtTree& tree);

}  // namespace pmte
