#include "src/frt/frt_tree.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/parallel/parallel.hpp"
#include "src/util/assertions.hpp"

namespace pmte {

double sample_beta(Rng& rng) { return rng.uniform(1.0, 2.0); }

Weight FrtTree::scale(unsigned level) const noexcept {
  return beta_ * std::ldexp(1.0, scale_origin_ + static_cast<int>(level));
}

Weight FrtTree::edge_weight(unsigned level) const noexcept {
  const int shift = rule_ == FrtWeightRule::dominating ? 1 : 0;
  return beta_ *
         std::ldexp(1.0, scale_origin_ + static_cast<int>(level) + shift);
}

FrtTree FrtTree::build(const std::vector<DistanceMap>& le_lists,
                       const VertexOrder& order, double beta,
                       Weight dist_min_hint, FrtWeightRule rule) {
  const Vertex n = order.n();
  PMTE_CHECK(le_lists.size() == n, "LE list count mismatch");
  PMTE_CHECK(beta >= 1.0 && beta < 2.0, "beta must lie in [1,2)");
  PMTE_CHECK(dist_min_hint > 0.0 && is_finite(dist_min_hint),
             "dist_min_hint must be positive");
  PMTE_CHECK(n >= 1, "empty vertex set");

  FrtTree t;
  t.beta_ = beta;
  t.rule_ = rule;
  t.order_of_rank_ = order.vertex_of;

  // Scale range (Section 7.1, step (4)): bottom below the minimum pairwise
  // distance (leaves become singletons), top covering the largest LE-list
  // distance (a common root).  With β < 2, β·2^{i0} < 2^{i0+1} ≤ dmin.
  Weight dmax = dist_min_hint;
  for (Vertex v = 0; v < n; ++v) {
    PMTE_CHECK(!le_lists[v].empty(), "LE list of a vertex is empty");
    PMTE_CHECK(le_lists[v].is_least_element_list(),
               "input is not a valid LE list");
    // Sorted by ascending key = descending distance: front() is farthest.
    dmax = std::max(dmax, le_lists[v][0].dist);
  }
  t.scale_origin_ = static_cast<int>(std::floor(std::log2(dist_min_hint))) - 1;
  int i_top = t.scale_origin_;
  while (beta * std::ldexp(1.0, i_top) < dmax) ++i_top;
  t.levels_ = static_cast<unsigned>(i_top - t.scale_origin_) + 1;

  // Cache dist_T by LCA level: leaves all sit at level 0 and edge weights
  // are uniform per level, so dist_T(u,v) = Σ_{l<lca} 2·edge_weight(l).
  // The ascending accumulation order is load-bearing: distance() and the
  // flat serving index replay these exact doubles.
  t.dist_by_lca_level_.assign(t.levels_, 0.0);
  for (unsigned l = 1; l < t.levels_; ++l) {
    const Weight step = 2.0 * t.edge_weight(l - 1);
    t.dist_by_lca_level_[l] = t.dist_by_lca_level_[l - 1] + step;
  }

  // Leaf tuples: tuple[ℓ] = rank of min-order vertex within β·2^{i0+ℓ}.
  const unsigned levels = t.levels_;
  t.tuples_.assign(static_cast<std::size_t>(n) * levels, 0);
  parallel_for(n, [&](std::size_t vi) {
    const auto& list = le_lists[vi];
    // Ascending-distance order = reversed key order (staircase).
    const auto entries = list.entries();
    const std::size_t len = entries.size();
    // entries[len-1] is (rank(v), 0); entries[0] the farthest/min rank.
    std::size_t idx = len;  // points one past the current candidate
    Vertex* tuple = t.tuples_.data() + vi * levels;
    for (unsigned l = 0; l < levels; ++l) {
      const Weight radius =
          beta * std::ldexp(1.0, t.scale_origin_ + static_cast<int>(l));
      // Move to the farthest entry within `radius`; entries are scanned in
      // ascending distance as idx decreases.
      while (idx > 1 && entries[idx - 2].dist <= radius) --idx;
      tuple[l] = entries[idx - 1].key;
    }
  });

  // Materialise the tree top-down: nodes are identified by suffixes; a
  // child is keyed by (parent, leading rank at its level).
  t.root_ = 0;
  t.nodes_.push_back(Node{});
  t.nodes_[0].level = levels - 1;
  t.nodes_[0].leading =
      order.vertex_of[t.tuples_[(levels - 1)]];  // same for all leaves
  struct KeyHash {
    std::size_t operator()(const std::pair<NodeId, Vertex>& k) const {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.first) << 32) ^ k.second);
    }
  };
  // pmte-lint: ordered-ok(find/emplace only, never iterated — nodes are numbered by the deterministic v = 0..n-1 leaf walk)
  std::unordered_map<std::pair<NodeId, Vertex>, NodeId, KeyHash> child_index;
  t.leaf_of_.assign(n, invalid_node);
  for (Vertex v = 0; v < n; ++v) {
    const Vertex* tuple = t.tuples_.data() + static_cast<std::size_t>(v) * levels;
    PMTE_CHECK(tuple[levels - 1] == t.tuples_[levels - 1],
               "root tuple mismatch — is the graph connected?");
    NodeId cur = t.root_;
    for (int l = static_cast<int>(levels) - 2; l >= 0; --l) {
      const auto key = std::make_pair(cur, tuple[l]);
      auto it = child_index.find(key);
      if (it == child_index.end()) {
        const NodeId id = static_cast<NodeId>(t.nodes_.size());
        Node nd;
        nd.level = static_cast<unsigned>(l);
        nd.leading = order.vertex_of[tuple[l]];
        nd.parent = cur;
        nd.parent_edge = t.edge_weight(static_cast<unsigned>(l));
        t.nodes_.push_back(nd);
        t.nodes_[cur].children.push_back(id);
        it = child_index.emplace(key, id).first;
      }
      cur = it->second;
    }
    if (levels == 1) {
      // Degenerate single-level tree: the root is the unique leaf.
      PMTE_CHECK(n == 1, "single-level FRT tree requires n == 1");
    }
    t.nodes_[cur].leaf_vertex = v;
    t.leaf_of_[v] = cur;
  }
  // Representative leaves (Section 7.5 needs a common descendant per node).
  for (NodeId id = static_cast<NodeId>(t.nodes_.size()); id-- > 0;) {
    Node& nd = t.nodes_[id];
    if (nd.leaf_vertex != no_vertex()) {
      nd.representative_leaf = id;
    }
  }
  for (const NodeId id : t.bottom_up_order()) {
    const Node& nd = t.nodes_[id];
    if (nd.parent != invalid_node &&
        t.nodes_[nd.parent].representative_leaf == invalid_node) {
      t.nodes_[nd.parent].representative_leaf = nd.representative_leaf;
    }
  }
  return t;
}

Weight FrtTree::distance(Vertex u, Vertex v) const {
  PMTE_CHECK(u < leaf_of_.size() && v < leaf_of_.size(),
             "distance: vertex out of range");
  if (u == v) return 0.0;
  const Vertex* tu = tuples_.data() + static_cast<std::size_t>(u) * levels_;
  const Vertex* tv = tuples_.data() + static_cast<std::size_t>(v) * levels_;
  // Divergence level: the lowest ℓ with equal suffixes from ℓ upwards.
  unsigned diverge = 0;
  for (unsigned l = levels_; l-- > 0;) {
    if (tu[l] != tv[l]) {
      diverge = l + 1;
      break;
    }
  }
  return dist_by_lca_level_[diverge];
}

Weight FrtTree::total_edge_weight() const {
  Weight total = 0.0;
  for (const auto& nd : nodes_) {
    if (nd.parent != invalid_node) total += nd.parent_edge;
  }
  return total;
}

std::vector<FrtTree::NodeId> FrtTree::bottom_up_order() const {
  // Nodes are created top-down (parents before children), so the reverse
  // creation order is a valid bottom-up topological order.
  std::vector<NodeId> order(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    order[i] = static_cast<NodeId>(nodes_.size() - 1 - i);
  }
  return order;
}

void FrtTree::validate() const {
  PMTE_CHECK(!nodes_.empty(), "empty tree");
  PMTE_CHECK(nodes_[root_].parent == invalid_node, "root has a parent");
  std::size_t leaves_seen = 0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& nd = nodes_[id];
    if (id != root_) {
      PMTE_CHECK(nd.parent < nodes_.size(), "dangling parent");
      const Node& p = nodes_[nd.parent];
      PMTE_CHECK(p.level == nd.level + 1, "level must increase by 1");
      PMTE_CHECK(std::find(p.children.begin(), p.children.end(), id) !=
                     p.children.end(),
                 "parent does not list child");
      PMTE_CHECK(nd.parent_edge > 0.0, "non-positive edge weight");
    }
    if (nd.leaf_vertex != no_vertex()) {
      PMTE_CHECK(nd.level == 0, "leaf vertices only at level 0");
      PMTE_CHECK(leaf_of_[nd.leaf_vertex] == id, "leaf bijection broken");
      ++leaves_seen;
    }
    PMTE_CHECK(nd.representative_leaf < nodes_.size(),
               "missing representative leaf");
    PMTE_CHECK(
        nodes_[nd.representative_leaf].leaf_vertex != no_vertex(),
        "representative is not a leaf");
  }
  PMTE_CHECK(leaves_seen == leaf_of_.size(), "leaf count mismatch");
}

}  // namespace pmte
