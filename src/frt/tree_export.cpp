#include "src/frt/tree_export.hpp"

#include <ostream>
#include <sstream>

namespace pmte {

void write_dot(const FrtTree& tree, std::ostream& os) {
  os << "digraph frt {\n  rankdir=BT;\n  node [shape=circle];\n";
  for (FrtTree::NodeId id = 0; id < tree.num_nodes(); ++id) {
    const auto& nd = tree.node(id);
    if (nd.leaf_vertex != no_vertex()) {
      os << "  n" << id << " [shape=box,label=\"v" << nd.leaf_vertex
         << "\"];\n";
    } else {
      os << "  n" << id << " [label=\"L" << nd.level << "\"];\n";
    }
    if (nd.parent != FrtTree::invalid_node) {
      os << "  n" << id << " -> n" << nd.parent << " [label=\""
         << nd.parent_edge << "\"];\n";
    }
  }
  os << "}\n";
}

void write_tree(const FrtTree& tree, std::ostream& os) {
  os << "frt-tree " << tree.num_nodes() << ' ' << tree.num_levels() << ' '
     << tree.beta() << '\n';
  for (FrtTree::NodeId id = 0; id < tree.num_nodes(); ++id) {
    const auto& nd = tree.node(id);
    os << id << ' '
       << (nd.parent == FrtTree::invalid_node
               ? -1
               : static_cast<long long>(nd.parent))
       << ' ' << nd.level << ' ' << nd.leading << ' '
       << (nd.leaf_vertex == no_vertex()
               ? -1
               : static_cast<long long>(nd.leaf_vertex))
       << ' ' << nd.parent_edge << '\n';
  }
}

std::string tree_summary(const FrtTree& tree) {
  std::ostringstream os;
  os << "nodes=" << tree.num_nodes() << " levels=" << tree.num_levels()
     << " leaves=" << tree.num_leaves()
     << " total_weight=" << tree.total_edge_weight();
  return os.str();
}

}  // namespace pmte
