#pragma once
// FRT tree construction from LE lists (Section 7.1, steps (1)–(4), and
// Lemma 7.2).
//
// Fixing β ∈ [1,2) and the random order, the leaf of v is the tuple
// (v_{i0}, …, v_{itop}) with v_i = min{w | dist(v,w) ≤ β·2^i} (minimum
// w.r.t. the random order); ancestors are the suffixes.  The bottom scale
// i0 is chosen below the minimum pairwise distance, so leaves are
// singletons; the top scale covers the largest LE-list distance, so the
// root is shared.
//
// Edge-weight conventions (see DESIGN.md): the paper weights the edge
// between levels i and i+1 by β·2^i ("khan"); we default to β·2^{i+1}
// ("dominating"), which guarantees dist_T ≥ dist_G deterministically and
// keeps the expected stretch O(log n) (only the constant changes).

#include <cstdint>
#include <vector>

#include "src/algebra/distance_map.hpp"
#include "src/frt/le_lists.hpp"
#include "src/util/types.hpp"

namespace pmte {

enum class FrtWeightRule { dominating, khan };

class FrtTree {
 public:
  using NodeId = std::uint32_t;
  static constexpr NodeId invalid_node = static_cast<NodeId>(-1);

  struct Node {
    Vertex leading = no_vertex();  ///< leading graph vertex of the tuple
    unsigned level = 0;            ///< 0 = leaf layer
    NodeId parent = invalid_node;
    Weight parent_edge = 0.0;      ///< weight of the edge to the parent
    std::vector<NodeId> children;
    Vertex leaf_vertex = no_vertex();    ///< original vertex (leaves only)
    NodeId representative_leaf = invalid_node;
  };

  /// Build the FRT tree for the given LE lists (keys = ranks).
  /// `dist_min_hint` must lower-bound the minimum positive pairwise
  /// distance of the embedded metric (e.g. the minimum edge weight).
  static FrtTree build(const std::vector<DistanceMap>& le_lists,
                       const VertexOrder& order, double beta,
                       Weight dist_min_hint,
                       FrtWeightRule rule = FrtWeightRule::dominating);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_[id]; }
  [[nodiscard]] NodeId root() const noexcept { return root_; }
  [[nodiscard]] NodeId leaf_of(Vertex v) const { return leaf_of_[v]; }
  [[nodiscard]] Vertex num_leaves() const noexcept {
    return static_cast<Vertex>(leaf_of_.size());
  }

  /// Number of tuple positions = tree height + 1.
  [[nodiscard]] unsigned num_levels() const noexcept { return levels_; }
  [[nodiscard]] double beta() const noexcept { return beta_; }

  /// β·2^{i0+level} — the ball radius of clusters at `level`.
  [[nodiscard]] Weight scale(unsigned level) const noexcept;

  /// Weight of the edge from a level-`level` node to its parent.
  [[nodiscard]] Weight edge_weight(unsigned level) const noexcept;

  /// Tree distance between the leaves of u and v.  The divergence level is
  /// found by one suffix scan over the two tuples; the weight sum is a
  /// cached lookup (see distance_at_lca_level), so the per-query cost is
  /// the scan alone — Θ(log n) worst case, no recomputed root paths.
  [[nodiscard]] Weight distance(Vertex u, Vertex v) const;

  /// dist_T(u,v) for leaves whose lowest common ancestor sits at `level`:
  /// Σ_{l<level} 2·edge_weight(l), accumulated bottom-up once at build time
  /// (all leaves live at level 0, so the tree metric depends only on the
  /// LCA level).  serve::FrtIndex copies this table verbatim, which keeps
  /// flat-index queries bit-identical to FrtTree::distance.
  [[nodiscard]] Weight distance_at_lca_level(unsigned level) const {
    return dist_by_lca_level_[level];
  }
  [[nodiscard]] const std::vector<Weight>& distance_by_lca_level()
      const noexcept {
    return dist_by_lca_level_;
  }

  /// Sum of all parent-edge weights (used by cost sanity checks).
  [[nodiscard]] Weight total_edge_weight() const;

  /// Nodes in topological order (children before parents) for tree DPs.
  [[nodiscard]] std::vector<NodeId> bottom_up_order() const;

  /// Structural validation: parent/child symmetry, level monotonicity,
  /// leaf bijection, representative-leaf reachability.  Throws on error.
  void validate() const;

 private:
  std::vector<Node> nodes_;
  std::vector<NodeId> leaf_of_;       // vertex → leaf node
  std::vector<Vertex> tuples_;        // n × levels_, leading *ranks*
  std::vector<Weight> dist_by_lca_level_;  // level → Σ_{l<level} 2·w_l
  std::vector<Vertex> order_of_rank_; // rank → vertex
  NodeId root_ = invalid_node;
  unsigned levels_ = 1;
  int scale_origin_ = 0;  // i0
  double beta_ = 1.0;
  FrtWeightRule rule_ = FrtWeightRule::dominating;
};

/// Sample β ∈ [1, 2) as in Section 7.1, step (1).
[[nodiscard]] double sample_beta(Rng& rng);

}  // namespace pmte
