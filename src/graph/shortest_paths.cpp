#include "src/graph/shortest_paths.hpp"

#include <algorithm>
#include <queue>

#include "src/parallel/parallel.hpp"
#include "src/util/assertions.hpp"

namespace pmte {

namespace {

struct HeapEntry {
  Weight dist;
  Vertex v;
  friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
    return a.dist > b.dist;
  }
};

using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

/// Lexicographic (dist, hops) heap entry for min-hop shortest paths.
struct HopEntry {
  Weight dist;
  unsigned hops;
  Vertex v;
  friend bool operator>(const HopEntry& a, const HopEntry& b) {
    if (a.dist != b.dist) return a.dist > b.dist;
    return a.hops > b.hops;
  }
};

}  // namespace

SsspResult dijkstra(const Graph& g, Vertex source) {
  const Vertex n = g.num_vertices();
  PMTE_CHECK(source < n, "dijkstra: source out of range");
  SsspResult r;
  r.dist.assign(n, inf_weight());
  r.parent.assign(n, no_vertex());
  MinHeap heap;
  r.dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > r.dist[v]) continue;  // stale entry
    for (const auto& e : g.neighbors(v)) {
      const Weight nd = d + e.weight;
      if (nd < r.dist[e.to]) {
        r.dist[e.to] = nd;
        r.parent[e.to] = v;
        heap.push({nd, e.to});
      }
    }
  }
  return r;
}

MultiSourceResult multi_source_dijkstra(const Graph& g,
                                        std::span<const Vertex> sources) {
  const Vertex n = g.num_vertices();
  MultiSourceResult r;
  r.dist.assign(n, inf_weight());
  r.parent.assign(n, no_vertex());
  r.owner.assign(n, no_vertex());
  MinHeap heap;
  for (Vertex s : sources) {
    PMTE_CHECK(s < n, "multi_source_dijkstra: source out of range");
    if (r.dist[s] > 0.0) {
      r.dist[s] = 0.0;
      r.owner[s] = s;
      heap.push({0.0, s});
    }
  }
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > r.dist[v]) continue;
    for (const auto& e : g.neighbors(v)) {
      const Weight nd = d + e.weight;
      if (nd < r.dist[e.to]) {
        r.dist[e.to] = nd;
        r.parent[e.to] = v;
        r.owner[e.to] = r.owner[v];
        heap.push({nd, e.to});
      }
    }
  }
  return r;
}

std::vector<Weight> bellman_ford_hops(const Graph& g, Vertex source,
                                      unsigned hops) {
  const Vertex n = g.num_vertices();
  PMTE_CHECK(source < n, "bellman_ford_hops: source out of range");
  std::vector<Weight> cur(n, inf_weight());
  cur[source] = 0.0;
  std::vector<Weight> next(n);
  for (unsigned h = 0; h < hops; ++h) {
    bool changed = false;
    for (Vertex v = 0; v < n; ++v) {
      Weight best = cur[v];
      for (const auto& e : g.neighbors(v)) {
        if (is_finite(cur[e.to])) best = std::min(best, cur[e.to] + e.weight);
      }
      next[v] = best;
      changed |= best < cur[v];
    }
    cur.swap(next);
    if (!changed) break;  // fixpoint: dist^h == dist
  }
  return cur;
}

std::vector<unsigned> bfs_hops(const Graph& g, Vertex source) {
  const Vertex n = g.num_vertices();
  PMTE_CHECK(source < n, "bfs_hops: source out of range");
  constexpr unsigned kUnreached = ~0U;
  std::vector<unsigned> hops(n, kUnreached);
  std::vector<Vertex> frontier{source};
  hops[source] = 0;
  unsigned level = 0;
  while (!frontier.empty()) {
    ++level;
    std::vector<Vertex> next;
    for (Vertex v : frontier) {
      for (const auto& e : g.neighbors(v)) {
        if (hops[e.to] == kUnreached) {
          hops[e.to] = level;
          next.push_back(e.to);
        }
      }
    }
    frontier.swap(next);
  }
  return hops;
}

std::vector<unsigned> min_hops_on_shortest_paths(const Graph& g,
                                                 Vertex source) {
  // Dijkstra over the lexicographic key (dist, hops): relaxation keeps the
  // smaller hop count among equal-distance paths, giving hop(source,·,G).
  const Vertex n = g.num_vertices();
  PMTE_CHECK(source < n, "min_hops: source out of range");
  std::vector<Weight> dist(n, inf_weight());
  std::vector<unsigned> hops(n, ~0U);

  std::priority_queue<HopEntry, std::vector<HopEntry>, std::greater<>> heap;
  dist[source] = 0.0;
  hops[source] = 0;
  heap.push({0.0, 0, source});
  while (!heap.empty()) {
    const auto [d, h, v] = heap.top();
    heap.pop();
    if (d > dist[v] || (d == dist[v] && h > hops[v])) continue;
    for (const auto& e : g.neighbors(v)) {
      const Weight nd = d + e.weight;
      const unsigned nh = h + 1;
      if (nd < dist[e.to] || (nd == dist[e.to] && nh < hops[e.to])) {
        dist[e.to] = nd;
        hops[e.to] = nh;
        heap.push({nd, nh, e.to});
      }
    }
  }
  return hops;
}

DiameterInfo shortest_path_diameter(const Graph& g) {
  const Vertex n = g.num_vertices();
  DiameterInfo info;
  if (n == 0) return info;
  std::vector<unsigned> spd_per_source(n, 0);
  std::vector<unsigned> hop_per_source(n, 0);
  parallel_for(n, [&](std::size_t v) {
    const auto hops = min_hops_on_shortest_paths(g, static_cast<Vertex>(v));
    unsigned worst = 0;
    for (unsigned h : hops)
      if (h != ~0U) worst = std::max(worst, h);
    spd_per_source[v] = worst;
    const auto bfs = bfs_hops(g, static_cast<Vertex>(v));
    unsigned bworst = 0;
    for (unsigned h : bfs)
      if (h != ~0U) bworst = std::max(bworst, h);
    hop_per_source[v] = bworst;
  });
  for (Vertex v = 0; v < n; ++v) {
    info.spd = std::max(info.spd, spd_per_source[v]);
    info.hop_diam = std::max(info.hop_diam, hop_per_source[v]);
  }
  return info;
}

bool is_connected(const Graph& g) {
  const Vertex n = g.num_vertices();
  if (n == 0) return true;
  const auto hops = bfs_hops(g, 0);
  return std::none_of(hops.begin(), hops.end(),
                      [](unsigned h) { return h == ~0U; });
}

std::vector<Weight> exact_apsp(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<Weight> dist(static_cast<std::size_t>(n) * n, inf_weight());
  parallel_for(n, [&](std::size_t v) {
    const auto r = dijkstra(g, static_cast<Vertex>(v));
    std::copy(r.dist.begin(), r.dist.end(),
              dist.begin() + static_cast<std::ptrdiff_t>(v * n));
  });
  return dist;
}

}  // namespace pmte
