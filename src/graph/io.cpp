#include "src/graph/io.hpp"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "src/util/assertions.hpp"

namespace pmte {

namespace {

std::string format_weight(Weight w) {
  // Shortest decimal that round-trips a double.
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), w);
  PMTE_CHECK(ec == std::errc(), "weight formatting failed");
  return {buf, ptr};
}

}  // namespace

void write_dimacs(const Graph& g, std::ostream& os) {
  os << "c pmte graph\n";
  os << "p sp " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& e : g.edge_list()) {
    os << "e " << (e.u + 1) << ' ' << (e.v + 1) << ' '
       << format_weight(e.weight) << '\n';
  }
}

Graph read_dimacs(std::istream& is) {
  std::string line;
  Vertex n = 0;
  std::size_t m = 0;
  bool have_header = false;
  std::vector<WeightedEdge> edges;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "p") {
      std::string kind;
      ls >> kind >> n >> m;
      PMTE_CHECK(ls && kind == "sp",
                 "bad problem line at line " + std::to_string(line_no));
      have_header = true;
      edges.reserve(m);
    } else if (tag == "e") {
      PMTE_CHECK(have_header, "edge before problem line");
      std::uint64_t u = 0, v = 0;
      Weight w = 0;
      ls >> u >> v >> w;
      PMTE_CHECK(ls && u >= 1 && v >= 1 && u <= n && v <= n,
                 "bad edge line at line " + std::to_string(line_no));
      edges.push_back(WeightedEdge{static_cast<Vertex>(u - 1),
                                   static_cast<Vertex>(v - 1), w});
    } else {
      PMTE_CHECK(false, "unknown line tag '" + tag + "' at line " +
                            std::to_string(line_no));
    }
  }
  PMTE_CHECK(have_header, "missing problem line");
  PMTE_CHECK(edges.size() == m, "edge count does not match header");
  return Graph::from_edges(n, std::move(edges));
}

void save_graph(const Graph& g, const std::string& path) {
  std::ofstream os(path);
  PMTE_CHECK(os.good(), "cannot open " + path + " for writing");
  write_dimacs(g, os);
  PMTE_CHECK(os.good(), "write to " + path + " failed");
}

Graph load_graph(const std::string& path) {
  std::ifstream is(path);
  PMTE_CHECK(is.good(), "cannot open " + path);
  return read_dimacs(is);
}

}  // namespace pmte
