#include "src/graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/util/assertions.hpp"

namespace pmte {

namespace {

/// Random spanning tree via a random attachment order (uniform recursive
/// tree on a random permutation): guarantees connectivity.
std::vector<WeightedEdge> random_spanning_tree(Vertex n, WeightModel w,
                                               Rng& rng) {
  std::vector<WeightedEdge> edges;
  if (n < 2) return edges;
  auto order = random_permutation(n, rng);
  edges.reserve(n - 1);
  for (Vertex i = 1; i < n; ++i) {
    const Vertex parent = order[rng.below(i)];
    edges.push_back(WeightedEdge{order[i], parent, w.draw(rng)});
  }
  return edges;
}

}  // namespace

Graph make_path(Vertex n, WeightModel w, Rng rng) {
  PMTE_CHECK(n >= 1, "path needs at least one vertex");
  std::vector<WeightedEdge> edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (Vertex i = 0; i + 1 < n; ++i)
    edges.push_back(WeightedEdge{i, i + 1, w.draw(rng)});
  return Graph::from_edges(n, std::move(edges));
}

Graph make_cycle(Vertex n, WeightModel w, Rng rng) {
  PMTE_CHECK(n >= 3, "cycle needs at least three vertices");
  std::vector<WeightedEdge> edges;
  edges.reserve(n);
  for (Vertex i = 0; i < n; ++i)
    edges.push_back(WeightedEdge{i, static_cast<Vertex>((i + 1) % n), w.draw(rng)});
  return Graph::from_edges(n, std::move(edges));
}

Graph make_grid(Vertex rows, Vertex cols, WeightModel w, Rng rng) {
  PMTE_CHECK(rows >= 1 && cols >= 1, "grid dimensions must be positive");
  const Vertex n = rows * cols;
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(n) * 2);
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols)
        edges.push_back(WeightedEdge{id(r, c), id(r, c + 1), w.draw(rng)});
      if (r + 1 < rows)
        edges.push_back(WeightedEdge{id(r, c), id(r + 1, c), w.draw(rng)});
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph make_torus(Vertex rows, Vertex cols, WeightModel w, Rng rng) {
  PMTE_CHECK(rows >= 3 && cols >= 3, "torus dimensions must be >= 3");
  const Vertex n = rows * cols;
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(n) * 2);
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      edges.push_back(
          WeightedEdge{id(r, c), id(r, (c + 1) % cols), w.draw(rng)});
      edges.push_back(
          WeightedEdge{id(r, c), id((r + 1) % rows, c), w.draw(rng)});
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph make_star(Vertex n, WeightModel w, Rng rng) {
  PMTE_CHECK(n >= 2, "star needs at least two vertices");
  std::vector<WeightedEdge> edges;
  edges.reserve(n - 1);
  for (Vertex i = 1; i < n; ++i)
    edges.push_back(WeightedEdge{0, i, w.draw(rng)});
  return Graph::from_edges(n, std::move(edges));
}

Graph make_complete(Vertex n, WeightModel w, Rng rng) {
  PMTE_CHECK(n >= 2, "complete graph needs at least two vertices");
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v)
      edges.push_back(WeightedEdge{u, v, w.draw(rng)});
  return Graph::from_edges(n, std::move(edges));
}

Graph make_binary_tree(Vertex n, WeightModel w, Rng rng) {
  PMTE_CHECK(n >= 1, "tree needs at least one vertex");
  std::vector<WeightedEdge> edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (Vertex i = 1; i < n; ++i)
    edges.push_back(WeightedEdge{i, (i - 1) / 2, w.draw(rng)});
  return Graph::from_edges(n, std::move(edges));
}

Graph make_gnm(Vertex n, std::size_t m, WeightModel w, Rng rng) {
  PMTE_CHECK(n >= 2, "G(n,m) needs at least two vertices");
  const std::size_t max_m = static_cast<std::size_t>(n) * (n - 1) / 2;
  PMTE_CHECK(m >= n - 1 && m <= max_m, "G(n,m): m out of range");
  auto edges = random_spanning_tree(n, w, rng);
  std::set<std::pair<Vertex, Vertex>> present;
  for (const auto& e : edges)
    present.emplace(std::min(e.u, e.v), std::max(e.u, e.v));
  while (edges.size() < m) {
    const auto u = static_cast<Vertex>(rng.below(n));
    const auto v = static_cast<Vertex>(rng.below(n));
    if (u == v) continue;
    const auto key = std::make_pair(std::min(u, v), std::max(u, v));
    if (!present.insert(key).second) continue;
    edges.push_back(WeightedEdge{u, v, w.draw(rng)});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph make_geometric(Vertex n, double radius, Rng rng) {
  PMTE_CHECK(n >= 2, "geometric graph needs at least two vertices");
  PMTE_CHECK(radius > 0.0, "radius must be positive");
  std::vector<double> x(n), y(n);
  for (Vertex i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }
  auto dist = [&](Vertex a, Vertex b) {
    const double dx = x[a] - x[b];
    const double dy = y[a] - y[b];
    return std::sqrt(dx * dx + dy * dy);
  };
  // Weight floor keeps the max/min weight ratio polynomially bounded even if
  // two points coincide.
  const double floor_w = radius * 1e-3;
  std::vector<WeightedEdge> edges;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      const double d = dist(u, v);
      if (d <= radius)
        edges.push_back(WeightedEdge{u, v, std::max(d, floor_w)});
    }
  }
  // Connectivity fallback: chain each vertex i>0 to its nearest predecessor.
  for (Vertex i = 1; i < n; ++i) {
    Vertex best = 0;
    double bd = dist(i, 0);
    for (Vertex j = 1; j < i; ++j) {
      const double d = dist(i, j);
      if (d < bd) {
        bd = d;
        best = j;
      }
    }
    edges.push_back(WeightedEdge{i, best, std::max(bd, floor_w)});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph make_caterpillar(Vertex spine, Vertex legs, Weight spine_weight,
                       Weight leg_weight) {
  PMTE_CHECK(spine >= 2, "caterpillar needs spine >= 2");
  const Vertex n = spine * (1 + legs);
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(spine) * (1 + legs));
  for (Vertex s = 0; s + 1 < spine; ++s)
    edges.push_back(WeightedEdge{s, static_cast<Vertex>(s + 1), spine_weight});
  Vertex next = spine;
  for (Vertex s = 0; s < spine; ++s)
    for (Vertex l = 0; l < legs; ++l)
      edges.push_back(WeightedEdge{s, next++, leg_weight});
  return Graph::from_edges(n, std::move(edges));
}

Graph make_clique_chain(Vertex cliques, Vertex clique_size, WeightModel w,
                        Rng rng) {
  PMTE_CHECK(cliques >= 1 && clique_size >= 2, "clique chain parameters");
  const Vertex n = cliques * clique_size;
  std::vector<WeightedEdge> edges;
  for (Vertex c = 0; c < cliques; ++c) {
    const Vertex base = c * clique_size;
    for (Vertex i = 0; i < clique_size; ++i)
      for (Vertex j = i + 1; j < clique_size; ++j)
        edges.push_back(WeightedEdge{static_cast<Vertex>(base + i),
                                     static_cast<Vertex>(base + j),
                                     w.draw(rng)});
    if (c + 1 < cliques) {
      edges.push_back(
          WeightedEdge{static_cast<Vertex>(base + clique_size - 1),
                       static_cast<Vertex>(base + clique_size), w.draw(rng)});
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph make_from_metric(Vertex n, const std::vector<Weight>& dist) {
  PMTE_CHECK(dist.size() == static_cast<std::size_t>(n) * n,
             "metric matrix must be n x n");
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      const Weight d = dist[static_cast<std::size_t>(u) * n + v];
      PMTE_CHECK(is_finite(d) && d > 0.0, "metric entries must be positive");
      edges.push_back(WeightedEdge{u, v, d});
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph make_random_regular(Vertex n, unsigned degree, WeightModel w,
                          Rng rng) {
  PMTE_CHECK(n >= 3, "random regular graph needs n >= 3");
  PMTE_CHECK(degree >= 2 && degree % 2 == 0,
             "degree must be even and >= 2");
  PMTE_CHECK(degree < n, "degree must be below n");
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(n) * degree / 2);
  for (unsigned c = 0; c < degree / 2; ++c) {
    const auto cycle = random_permutation(n, rng);
    for (Vertex i = 0; i < n; ++i) {
      edges.push_back(WeightedEdge{cycle[i],
                                   cycle[(i + 1U) % n], w.draw(rng)});
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph make_dumbbell(Vertex k, Vertex bridge, WeightModel w, Rng rng) {
  PMTE_CHECK(k >= 2, "dumbbell cliques need k >= 2");
  const Vertex n = 2 * k + bridge;
  std::vector<WeightedEdge> edges;
  auto add_clique = [&](Vertex base) {
    for (Vertex i = 0; i < k; ++i)
      for (Vertex j = i + 1; j < k; ++j)
        edges.push_back(WeightedEdge{static_cast<Vertex>(base + i),
                                     static_cast<Vertex>(base + j),
                                     w.draw(rng)});
  };
  add_clique(0);
  add_clique(k + bridge);
  // Bridge path: vertex k−1 → k → … → k+bridge.
  for (Vertex i = 0; i <= bridge; ++i) {
    const Vertex a = static_cast<Vertex>(k - 1 + i);
    const Vertex b = static_cast<Vertex>(k + i);
    edges.push_back(WeightedEdge{a, b, w.draw(rng)});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph make_powerlaw(Vertex n, unsigned attach, std::uint64_t seed) {
  PMTE_CHECK(n >= 2 && attach >= 1, "make_powerlaw: degenerate parameters");
  Rng rng(seed);
  // Repeated-endpoint list: drawing a uniform element is a draw
  // proportional to degree.
  std::vector<Vertex> endpoints;
  std::vector<WeightedEdge> edges;
  edges.push_back(WeightedEdge{0, 1, rng.uniform(1.0, 2.0)});
  endpoints.push_back(0);
  endpoints.push_back(1);
  for (Vertex v = 2; v < n; ++v) {
    const auto k = std::min<std::size_t>(attach, v);
    std::vector<Vertex> targets;
    while (targets.size() < k) {
      const Vertex t = endpoints[rng.below(endpoints.size())];
      bool dup = false;
      for (const Vertex u : targets) dup = dup || u == t;
      if (!dup) targets.push_back(t);
    }
    for (const Vertex t : targets) {
      edges.push_back(WeightedEdge{v, t, rng.uniform(1.0, 2.0)});
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph make_family_graph(const std::string& family, Vertex n,
                        std::uint64_t seed) {
  Rng rng(seed);
  if (family == "path") return make_path(n, {1.0, 2.0}, rng);
  if (family == "cycle") return make_cycle(n, {1.0, 2.0}, rng);
  if (family == "grid") {
    Vertex side = 1;
    while (side * side < n) ++side;
    return make_grid(side, side, {1.0, 3.0}, rng);
  }
  if (family == "star") return make_star(n, {1.0, 5.0}, rng);
  if (family == "gnm") {
    return make_gnm(n, 3 * static_cast<std::size_t>(n), {1.0, 4.0}, rng);
  }
  if (family == "geometric") {
    const double radius = 2.2 / std::sqrt(static_cast<double>(n));
    return make_geometric(n, radius, rng);
  }
  if (family == "binary_tree") return make_binary_tree(n, {1.0, 2.0}, rng);
  if (family == "powerlaw") return make_powerlaw(n, 2, seed);
  if (family == "cliquechain") {
    return make_clique_chain(std::max<Vertex>(1, n / 8), 8, {1.0, 2.0}, rng);
  }
  PMTE_CHECK(false, "make_family_graph: unknown family " + family);
  return Graph{};  // unreachable
}

}  // namespace pmte
