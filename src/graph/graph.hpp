#pragma once
// Weighted undirected graph in compressed-sparse-row (CSR) form.
//
// Matches the paper's setting (Section 1.2): simple undirected graphs
// G = (V, E, ω) with positive edge weights, no loops or parallel edges,
// given as adjacency lists.  The CSR arrays are immutable after
// construction; augmentation (e.g. adding hop-set edges) builds a new Graph.

#include <span>
#include <tuple>
#include <vector>

#include "src/util/types.hpp"

namespace pmte {

/// Half-edge: target vertex and weight. Each undirected edge {u,v} is stored
/// twice (u→v and v→u).
struct HalfEdge {
  Vertex to;
  Weight weight;

  friend bool operator==(const HalfEdge&, const HalfEdge&) = default;
};

/// One undirected edge with both endpoints, used by builders and generators.
struct WeightedEdge {
  Vertex u;
  Vertex v;
  Weight weight;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

class Graph {
 public:
  Graph() = default;

  /// Build from an undirected edge list.  Self-loops are rejected; parallel
  /// edges are merged keeping the minimum weight.  Weights must be positive
  /// and finite.
  static Graph from_edges(Vertex n, std::vector<WeightedEdge> edges);

  [[nodiscard]] Vertex num_vertices() const noexcept {
    return static_cast<Vertex>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of undirected edges.
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return targets_.size() / 2;
  }

  [[nodiscard]] std::size_t degree(Vertex v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Neighbours of v as (target, weight) pairs, sorted by target id.
  [[nodiscard]] std::span<const HalfEdge> neighbors(Vertex v) const noexcept {
    return {edges_.data() + offsets_[v], edges_.data() + offsets_[v + 1]};
  }

  /// Weight of edge {u,v}; inf_weight() if absent, 0 if u == v.
  [[nodiscard]] Weight edge_weight(Vertex u, Vertex v) const noexcept;

  /// Smallest / largest edge weight (inf / 0 for edgeless graphs).
  [[nodiscard]] Weight min_edge_weight() const noexcept { return min_w_; }
  [[nodiscard]] Weight max_edge_weight() const noexcept { return max_w_; }

  /// Sum of all edge weights — a trivial upper bound on any distance in a
  /// connected graph.
  [[nodiscard]] Weight total_weight() const noexcept { return total_w_; }

  /// Mutate the weight of the existing edge {u,v} in place (both
  /// half-edges).  The CSR layout is untouched — only the two weight
  /// fields and the min/max/total aggregates change — so spans handed out
  /// by neighbors() stay valid and observe the new weight immediately
  /// (the dynamic-update path relies on this, see docs/DYNAMIC.md).
  /// PMTE_CHECK-fails when the edge is absent or the weight is not
  /// positive and finite.
  void set_edge_weight(Vertex u, Vertex v, Weight w);

  /// Recover the undirected edge list (u < v in every entry).
  [[nodiscard]] std::vector<WeightedEdge> edge_list() const;

  /// New graph with `extra` undirected edges merged in (minimum weight wins
  /// for duplicates).
  [[nodiscard]] Graph augmented(const std::vector<WeightedEdge>& extra) const;

 private:
  std::vector<EdgeIndex> offsets_;  // size n+1
  std::vector<Vertex> targets_;     // size 2m (kept for cheap edge iteration)
  std::vector<HalfEdge> edges_;     // size 2m, sorted per vertex
  Weight min_w_ = inf_weight();
  Weight max_w_ = 0.0;
  Weight total_w_ = 0.0;
};

}  // namespace pmte
