#pragma once
// Graph serialisation: a DIMACS-shortest-path-like text format
// ("p sp <n> <m>" header, "e <u> <v> <w>" edge lines, 1-based ids) plus a
// compact whitespace edge-list format.  Round-trips exactly via decimal
// shortest round-trip formatting.

#include <iosfwd>
#include <string>

#include "src/graph/graph.hpp"

namespace pmte {

/// Write g in DIMACS-like format.
void write_dimacs(const Graph& g, std::ostream& os);

/// Parse a DIMACS-like graph; throws std::logic_error on malformed input.
[[nodiscard]] Graph read_dimacs(std::istream& is);

/// Convenience file helpers.
void save_graph(const Graph& g, const std::string& path);
[[nodiscard]] Graph load_graph(const std::string& path);

}  // namespace pmte
