#include "src/graph/graph.hpp"

#include <algorithm>

#include "src/util/assertions.hpp"

namespace pmte {

Graph Graph::from_edges(Vertex n, std::vector<WeightedEdge> edges) {
  // Normalise: u < v, drop loops, validate weights.
  std::vector<WeightedEdge> clean;
  clean.reserve(edges.size());
  for (auto e : edges) {
    PMTE_CHECK(e.u < n && e.v < n, "edge endpoint out of range");
    PMTE_CHECK(is_finite(e.weight) && e.weight > 0.0,
               "edge weights must be positive and finite");
    if (e.u == e.v) continue;  // the paper's graphs are loop-free
    if (e.u > e.v) std::swap(e.u, e.v);
    clean.push_back(e);
  }
  std::sort(clean.begin(), clean.end(), [](const auto& a, const auto& b) {
    return std::tie(a.u, a.v, a.weight) < std::tie(b.u, b.v, b.weight);
  });
  // Merge parallel edges, keeping the lightest (min-plus semantics).
  std::vector<WeightedEdge> merged;
  merged.reserve(clean.size());
  for (const auto& e : clean) {
    if (!merged.empty() && merged.back().u == e.u && merged.back().v == e.v) {
      merged.back().weight = std::min(merged.back().weight, e.weight);
    } else {
      merged.push_back(e);
    }
  }

  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& e : merged) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i)
    g.offsets_[i] += g.offsets_[i - 1];
  g.targets_.resize(merged.size() * 2);
  g.edges_.resize(merged.size() * 2);
  std::vector<EdgeIndex> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& e : merged) {
    g.edges_[cursor[e.u]] = HalfEdge{e.v, e.weight};
    g.targets_[cursor[e.u]++] = e.v;
    g.edges_[cursor[e.v]] = HalfEdge{e.u, e.weight};
    g.targets_[cursor[e.v]++] = e.u;
    g.min_w_ = std::min(g.min_w_, e.weight);
    g.max_w_ = std::max(g.max_w_, e.weight);
    g.total_w_ += e.weight;
  }
  // Per-vertex adjacency comes out sorted because `merged` is sorted by
  // (u, v) and the reverse half-edges are appended in increasing u as well.
  for (Vertex v = 0; v < n; ++v) {
    auto* first = g.edges_.data() + g.offsets_[v];
    auto* last = g.edges_.data() + g.offsets_[v + 1];
    std::sort(first, last,
              [](const HalfEdge& a, const HalfEdge& b) { return a.to < b.to; });
    for (EdgeIndex i = g.offsets_[v]; i < g.offsets_[v + 1]; ++i)
      g.targets_[i] = g.edges_[i].to;
  }
  return g;
}

Weight Graph::edge_weight(Vertex u, Vertex v) const noexcept {
  if (u == v) return 0.0;
  const auto nb = neighbors(u);
  const auto it = std::lower_bound(
      nb.begin(), nb.end(), v,
      [](const HalfEdge& e, Vertex target) { return e.to < target; });
  if (it != nb.end() && it->to == v) return it->weight;
  return inf_weight();
}

void Graph::set_edge_weight(Vertex u, Vertex v, Weight w) {
  PMTE_CHECK(u < num_vertices() && v < num_vertices() && u != v,
             "set_edge_weight endpoints must be two distinct vertices");
  PMTE_CHECK(is_finite(w) && w > 0.0,
             "edge weights must be positive and finite");
  const auto update_half = [this, w](Vertex from, Vertex to) {
    auto* first = edges_.data() + offsets_[from];
    auto* last = edges_.data() + offsets_[from + 1];
    auto* it = std::lower_bound(
        first, last, to,
        [](const HalfEdge& e, Vertex target) { return e.to < target; });
    PMTE_CHECK(it != last && it->to == to,
               "set_edge_weight requires an existing edge");
    it->weight = w;
  };
  update_half(u, v);
  update_half(v, u);
  // Recompute the aggregates in the same (u, v)-ascending order as
  // from_edges so total_w_ stays bit-identical to a fresh build of the
  // mutated edge list (the rebuild-differential harness compares both).
  min_w_ = inf_weight();
  max_w_ = 0.0;
  total_w_ = 0.0;
  for (Vertex x = 0; x < num_vertices(); ++x) {
    for (const auto& e : neighbors(x)) {
      if (x < e.to) {
        min_w_ = std::min(min_w_, e.weight);
        max_w_ = std::max(max_w_, e.weight);
        total_w_ += e.weight;
      }
    }
  }
}

std::vector<WeightedEdge> Graph::edge_list() const {
  std::vector<WeightedEdge> out;
  out.reserve(num_edges());
  for (Vertex v = 0; v < num_vertices(); ++v) {
    for (const auto& e : neighbors(v)) {
      if (v < e.to) out.push_back(WeightedEdge{v, e.to, e.weight});
    }
  }
  return out;
}

Graph Graph::augmented(const std::vector<WeightedEdge>& extra) const {
  auto edges = edge_list();
  edges.insert(edges.end(), extra.begin(), extra.end());
  return from_edges(num_vertices(), std::move(edges));
}

}  // namespace pmte
