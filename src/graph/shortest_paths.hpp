#pragma once
// Classical shortest-path baselines: Dijkstra (exact distances), hop-limited
// Bellman-Ford (the h-hop distances dist^h of Section 1.2), and BFS hop
// counts.  These serve three roles: reference implementations for testing
// the MBF-like algebra, building blocks of the hub hop set, and the
// sequential baselines the benches compare against.

#include <functional>
#include <span>
#include <vector>

#include "src/graph/graph.hpp"

namespace pmte {

/// Result of a single-source run: per-vertex distance and predecessor.
struct SsspResult {
  std::vector<Weight> dist;
  std::vector<Vertex> parent;  // no_vertex() for unreached / source
};

/// Exact SSSP via binary-heap Dijkstra.  O((n+m) log n).
[[nodiscard]] SsspResult dijkstra(const Graph& g, Vertex source);

/// Multi-source Dijkstra: dist(v, S) for a set of sources (all start at 0).
/// parent points towards the closest source; `owner[v]` is that source.
struct MultiSourceResult {
  std::vector<Weight> dist;
  std::vector<Vertex> parent;
  std::vector<Vertex> owner;
};
[[nodiscard]] MultiSourceResult multi_source_dijkstra(
    const Graph& g, std::span<const Vertex> sources);

/// Exact h-hop distances dist^h(source, ·, G) via h rounds of Bellman-Ford
/// (Lemma 3.1 reference).  O(h·m) work.
[[nodiscard]] std::vector<Weight> bellman_ford_hops(const Graph& g,
                                                    Vertex source,
                                                    unsigned hops);

/// Unweighted hop distances (BFS levels).
[[nodiscard]] std::vector<unsigned> bfs_hops(const Graph& g, Vertex source);

/// Min-hop count among *shortest* (by weight) paths from `source`:
/// hop(source, v, G) of Section 1.2, computed by Dijkstra with
/// lexicographic (dist, hops) keys.
[[nodiscard]] std::vector<unsigned> min_hops_on_shortest_paths(const Graph& g,
                                                               Vertex source);

/// Shortest-Path Diameter SPD(G) = max_{v,w} hop(v,w,G) and unweighted hop
/// diameter D(G).  Exact; runs n (multi-criteria) Dijkstras in parallel, so
/// use on bench-sized graphs only.
struct DiameterInfo {
  unsigned spd = 0;      ///< SPD(G)
  unsigned hop_diam = 0; ///< D(G)
};
[[nodiscard]] DiameterInfo shortest_path_diameter(const Graph& g);

/// True iff the graph is connected (n == 0 counts as connected).
[[nodiscard]] bool is_connected(const Graph& g);

/// Exact all-pairs distances via n parallel Dijkstras; row-major n×n.
[[nodiscard]] std::vector<Weight> exact_apsp(const Graph& g);

}  // namespace pmte
