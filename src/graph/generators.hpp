#pragma once
// Synthetic graph families used throughout tests and benches.
//
// The paper's guarantees are worst-case over all graphs with polynomially
// bounded weight ratio; the families below stress its individual claims:
//   * path / cycle / caterpillar — SPD(G) = Θ(n), the worst case for
//     direct MBF-like iteration (motivates the simulated graph H, §4);
//   * grid / torus / random geometric — the "road network"-like workloads
//     tree embeddings are used on (k-median, buy-at-bulk, §§9–10);
//   * Erdős–Rényi G(n, m) — low diameter, tests generic behaviour;
//   * complete metric graphs — the Blelloch et al. input model (§1.1).

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/util/rng.hpp"

namespace pmte {

/// Weight model for generators.
struct WeightModel {
  Weight lo = 1.0;
  Weight hi = 1.0;  ///< weights drawn uniformly from [lo, hi]; lo==hi → unit

  [[nodiscard]] Weight draw(Rng& rng) const {
    return lo >= hi ? lo : rng.uniform(lo, hi);
  }
};

/// Simple path v0 − v1 − … − v_{n−1}.  SPD = n−1 for unit weights.
[[nodiscard]] Graph make_path(Vertex n, WeightModel w = {}, Rng rng = Rng(1));

/// Cycle on n vertices.
[[nodiscard]] Graph make_cycle(Vertex n, WeightModel w = {}, Rng rng = Rng(2));

/// rows × cols grid with 4-neighbourhood.
[[nodiscard]] Graph make_grid(Vertex rows, Vertex cols, WeightModel w = {},
                              Rng rng = Rng(3));

/// rows × cols torus (grid with wraparound).
[[nodiscard]] Graph make_torus(Vertex rows, Vertex cols, WeightModel w = {},
                               Rng rng = Rng(4));

/// Star: center 0 connected to all others.
[[nodiscard]] Graph make_star(Vertex n, WeightModel w = {}, Rng rng = Rng(5));

/// Complete graph K_n.
[[nodiscard]] Graph make_complete(Vertex n, WeightModel w = {},
                                  Rng rng = Rng(6));

/// Balanced binary tree on n vertices (vertex i has parent (i−1)/2).
[[nodiscard]] Graph make_binary_tree(Vertex n, WeightModel w = {},
                                     Rng rng = Rng(7));

/// Connected Erdős–Rényi-style G(n, m): a random spanning tree plus
/// m − (n−1) uniformly random extra edges.
[[nodiscard]] Graph make_gnm(Vertex n, std::size_t m, WeightModel w = {},
                             Rng rng = Rng(8));

/// Random geometric graph: n points in the unit square, edges between
/// points within `radius`, weight = Euclidean distance (scaled so the
/// minimum weight is ≥ `w.lo`); connected via a fallback spanning chain of
/// nearest neighbours.
[[nodiscard]] Graph make_geometric(Vertex n, double radius, Rng rng = Rng(9));

/// Caterpillar: a weighted spine of length `spine` with `legs` unit legs
/// per spine vertex.  Spine weights ≫ leg weights make SPD large while m/n
/// stays constant — the adversarial family for experiment E1/E4.
[[nodiscard]] Graph make_caterpillar(Vertex spine, Vertex legs,
                                     Weight spine_weight = 1.0,
                                     Weight leg_weight = 1.0);

/// Path of `cliques` cliques of size `clique_size`, consecutive cliques
/// joined by a bridge edge; large SPD with high edge density (E8).
[[nodiscard]] Graph make_clique_chain(Vertex cliques, Vertex clique_size,
                                      WeightModel w = {}, Rng rng = Rng(10));

/// Complete graph realising a given metric (distance matrix row-major,
/// n × n).  The Blelloch et al. input model: SPD = 1.
[[nodiscard]] Graph make_from_metric(Vertex n,
                                     const std::vector<Weight>& dist);

/// Dumbbell: two cliques of size k joined by a path of length `bridge`.
[[nodiscard]] Graph make_dumbbell(Vertex k, Vertex bridge, WeightModel w = {},
                                  Rng rng = Rng(11));

/// Preferential-attachment (Barabási–Albert style) graph: vertex i ≥
/// attach connects to `attach` distinct earlier vertices drawn
/// proportionally to degree.  Heavily skewed degrees — the adversarial
/// family for edge-balanced chunking (a few hubs carry most half-edges).
[[nodiscard]] Graph make_powerlaw(Vertex n, unsigned attach,
                                  std::uint64_t seed);

/// A graph by canonical family name, seeded — the one family dispatcher
/// shared by the test fixtures (tests/support) and the serve_queries CLI,
/// so a (family, n, seed) triple names the same graph everywhere (the
/// serving layer persists a fingerprint of it and refuses mismatches on
/// load).  Families: "path", "cycle", "grid", "star", "gnm", "geometric",
/// "binary_tree", "powerlaw", "cliquechain".  Throws on unknown names.
/// (bench_common's make_instance keeps separate bench-specific parameter
/// choices on purpose; everything else should use this.)
[[nodiscard]] Graph make_family_graph(const std::string& family, Vertex n,
                                      std::uint64_t seed);

/// Near-`degree`-regular expander-style graph: the union of degree/2
/// random Hamiltonian cycles (connected by construction; coinciding cycle
/// edges merge, so degrees can dip slightly below `degree`).  Expanders
/// realise the Ω(log n) lower bound for tree-embedding stretch [7].
/// `degree` must be even and ≥ 2.
[[nodiscard]] Graph make_random_regular(Vertex n, unsigned degree,
                                        WeightModel w = {},
                                        Rng rng = Rng(12));

}  // namespace pmte
