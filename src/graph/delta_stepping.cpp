#include "src/graph/delta_stepping.hpp"

#include <algorithm>
#include <cmath>

#include "src/parallel/parallel.hpp"
#include "src/util/assertions.hpp"

namespace pmte {

DeltaSteppingResult delta_stepping(const Graph& g, Vertex source,
                                   Weight delta) {
  const Vertex n = g.num_vertices();
  PMTE_CHECK(source < n, "delta_stepping: source out of range");
  DeltaSteppingResult r;
  r.dist.assign(n, inf_weight());
  if (delta <= 0.0) {
    delta = g.num_edges() > 0
                ? std::max(g.total_weight() /
                               static_cast<double>(g.num_edges()),
                           g.min_edge_weight())
                : 1.0;
  }

  // Buckets as a growable vector of vertex lists indexed by
  // floor(dist/Δ); duplicates are tolerated and filtered at pop time.
  std::vector<std::vector<Vertex>> buckets;
  auto bucket_of = [&](Weight d) {
    return static_cast<std::size_t>(d / delta);
  };
  auto push = [&](Vertex v, Weight d) {
    const std::size_t b = bucket_of(d);
    if (b >= buckets.size()) buckets.resize(b + 1);
    buckets[b].push_back(v);
  };
  r.dist[source] = 0.0;
  push(source, 0.0);

  for (std::size_t b = 0; b < buckets.size(); ++b) {
    // Settle bucket b: relax light edges until no vertex re-enters it.
    std::vector<Vertex> settled;
    while (b < buckets.size() && !buckets[b].empty()) {
      std::vector<Vertex> frontier;
      frontier.swap(buckets[b]);
      // Deduplicate stale entries.
      std::sort(frontier.begin(), frontier.end());
      frontier.erase(std::unique(frontier.begin(), frontier.end()),
                     frontier.end());
      std::erase_if(frontier, [&](Vertex v) {
        return bucket_of(r.dist[v]) != b;
      });
      if (frontier.empty()) break;
      ++r.relaxations;
      settled.insert(settled.end(), frontier.begin(), frontier.end());
      // Parallel relaxation of light edges: compute tentative updates per
      // frontier vertex, apply sequentially (requests are tiny).
      std::vector<std::vector<std::pair<Vertex, Weight>>> requests(
          frontier.size());
      parallel_for(frontier.size(), [&](std::size_t i) {
        const Vertex v = frontier[i];
        const Weight dv = r.dist[v];
        for (const auto& e : g.neighbors(v)) {
          if (e.weight < delta) {
            requests[i].emplace_back(e.to, dv + e.weight);
          }
        }
      });
      for (const auto& reqs : requests) {
        for (const auto& [to, nd] : reqs) {
          if (nd < r.dist[to]) {
            r.dist[to] = nd;
            push(to, nd);
          }
        }
      }
    }
    // One heavy-edge pass over everything settled in this bucket.
    if (!settled.empty()) {
      std::sort(settled.begin(), settled.end());
      settled.erase(std::unique(settled.begin(), settled.end()),
                    settled.end());
      std::vector<std::vector<std::pair<Vertex, Weight>>> requests(
          settled.size());
      parallel_for(settled.size(), [&](std::size_t i) {
        const Vertex v = settled[i];
        const Weight dv = r.dist[v];
        for (const auto& e : g.neighbors(v)) {
          if (e.weight >= delta) {
            requests[i].emplace_back(e.to, dv + e.weight);
          }
        }
      });
      for (const auto& reqs : requests) {
        for (const auto& [to, nd] : reqs) {
          if (nd < r.dist[to]) {
            r.dist[to] = nd;
            push(to, nd);
          }
        }
      }
    }
    ++r.phases;
  }
  return r;
}

}  // namespace pmte
