#pragma once
// Δ-stepping SSSP (Meyer & Sanders): the standard practical parallel
// shortest-path algorithm, bridging Dijkstra (work-efficient, sequential)
// and Bellman-Ford (parallel, work-hungry) — the trade-off the paper's
// related-work section calls the "sequential bottleneck" (§1.1).
//
// Vertices are kept in buckets of width Δ; each phase settles one bucket
// by repeatedly relaxing its *light* edges (weight < Δ) in parallel until
// the bucket empties, then relaxes heavy edges once.  With Δ ≈ average
// edge weight the number of phases is ≈ (max distance)/Δ.

#include <vector>

#include "src/graph/graph.hpp"

namespace pmte {

struct DeltaSteppingResult {
  std::vector<Weight> dist;
  unsigned phases = 0;       ///< buckets processed (depth proxy)
  unsigned relaxations = 0;  ///< inner light-edge rounds
};

/// Δ-stepping from `source`; delta = 0 picks max(avg edge weight, min).
[[nodiscard]] DeltaSteppingResult delta_stepping(const Graph& g,
                                                 Vertex source,
                                                 Weight delta = 0.0);

}  // namespace pmte
