#pragma once
// Fundamental scalar types shared across the PMTE library.
//
// The paper (Section 1.2) assumes edge weights whose max/min ratio is
// polynomially bounded in n and that a weight fits a machine word; we use
// IEEE doubles with +infinity as the "no edge / unreachable" element of the
// min-plus semiring.

#include <cstdint>
#include <limits>

namespace pmte {

/// Vertex identifier. Graphs are limited to 2^32-1 vertices.
using Vertex = std::uint32_t;

/// Index into edge arrays (CSR offsets).
using EdgeIndex = std::uint64_t;

/// Edge weight / distance value.
using Weight = double;

/// The additive-neutral element of the min-plus semiring: "unreachable".
[[nodiscard]] constexpr Weight inf_weight() noexcept {
  return std::numeric_limits<Weight>::infinity();
}

/// Sentinel for "no vertex".
[[nodiscard]] constexpr Vertex no_vertex() noexcept {
  return static_cast<Vertex>(-1);
}

/// True iff `w` represents a reachable (finite) distance.
[[nodiscard]] constexpr bool is_finite(Weight w) noexcept {
  return w < inf_weight();
}

}  // namespace pmte
