#pragma once
// Minimal command-line option parsing for benches/examples.
// Supported syntax: --key=value  or  --flag   (boolean true).

#include <cstdint>
#include <map>
#include <string>

namespace pmte {

class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::uint64_t seed(std::uint64_t fallback = 42) const;

 private:
  std::map<std::string, std::string> options_;
};

}  // namespace pmte
