#include "src/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "src/util/assertions.hpp"

namespace pmte {

double percentile_sorted(const std::vector<double>& sorted, double q) {
  PMTE_CHECK(!sorted.empty(), "percentile of empty sample");
  PMTE_CHECK(q >= 0.0 && q <= 1.0, "percentile q out of [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  double sum = 0.0;
  for (double x : samples) sum += x;
  s.mean = sum / static_cast<double>(samples.size());
  double sq = 0.0;
  for (double x : samples) sq += (x - s.mean) * (x - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(sq / static_cast<double>(samples.size() - 1))
                 : 0.0;
  s.p50 = percentile_sorted(samples, 0.50);
  s.p90 = percentile_sorted(samples, 0.90);
  s.p99 = percentile_sorted(samples, 0.99);
  return s;
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto total = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

std::string format_double(double v, int precision) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (std::isnan(v)) return "nan";
  std::ostringstream os;
  const double a = std::abs(v);
  if (a != 0.0 && (a >= 1e6 || a < 1e-3)) {
    os.setf(std::ios::scientific);
    os.precision(precision - 1);
  } else {
    os.setf(std::ios::fixed);
    os.precision(precision);
  }
  os << v;
  return os.str();
}

}  // namespace pmte
