#pragma once
// Deterministic, fast pseudo-random number generation.
//
// All randomised components of the library (level sampling, vertex
// permutations, beta in [1,2), graph generators) take an explicit RNG so
// experiments are reproducible from a single seed.  xoshiro256** is used as
// the main engine, seeded via splitmix64 as recommended by its authors.

#include <array>
#include <cstdint>
#include <numeric>
#include <vector>

#include "src/util/assertions.hpp"

namespace pmte {

/// splitmix64 step; used for seeding and cheap hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// 64-bit FNV-1a, word at a time: start from kFnv1aInit, fold each word.
/// Used for graph fingerprints and result checksums (serving layer).
inline constexpr std::uint64_t kFnv1aInit = 0xcbf29ce484222325ULL;
[[nodiscard]] constexpr std::uint64_t fnv1a_fold(std::uint64_t hash,
                                                 std::uint64_t word) noexcept {
  return (hash ^ word) * 0x100000001b3ULL;
}

/// Seed of the `stream`-th independent child RNG of a master seed.
///
/// The splitting scheme: two splitmix64 steps over the state
/// master ⊕ (stream+1)·φ64 (φ64 = 0x9e3779b97f4a7c15, the golden-ratio
/// increment; +1 keeps stream 0 distinct from the master itself).  Each
/// stream is a fixed function of (master, stream) alone, so consumers that
/// assign stream t to task t (e.g. one FRT tree per ensemble slot) get
/// results independent of construction order and thread count.
[[nodiscard]] constexpr std::uint64_t split_seed(std::uint64_t master,
                                                 std::uint64_t stream) noexcept {
  std::uint64_t state = master ^ ((stream + 1) * 0x9e3779b97f4a7c15ULL);
  (void)splitmix64(state);
  return splitmix64(state);
}

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). bound must be positive.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool flip(double p) noexcept { return uniform() < p; }

  /// Derive an independent child engine (for per-thread streams).
  [[nodiscard]] Rng split() noexcept { return Rng((*this)() ^ 0xd1342543de82ef95ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Fisher–Yates shuffle of [first, last).
template <typename It>
void shuffle(It first, It last, Rng& rng) {
  const auto n = static_cast<std::uint64_t>(last - first);
  for (std::uint64_t i = n; i > 1; --i) {
    const auto j = rng.below(i);
    using std::swap;
    swap(first[i - 1], first[j]);
  }
}

/// Uniformly random permutation of {0, …, n−1}.
[[nodiscard]] inline std::vector<std::uint32_t> random_permutation(
    std::uint32_t n, Rng& rng) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0U);
  shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

/// Inverse of a permutation: inv[perm[i]] = i.
[[nodiscard]] inline std::vector<std::uint32_t> invert_permutation(
    const std::vector<std::uint32_t>& perm) {
  std::vector<std::uint32_t> inv(perm.size());
  for (std::uint32_t i = 0; i < perm.size(); ++i) {
    PMTE_ASSERT(perm[i] < perm.size(), "permutation out of range");
    inv[perm[i]] = i;
  }
  return inv;
}

}  // namespace pmte
