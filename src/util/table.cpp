#include "src/util/table.hpp"

#include <algorithm>

#include "src/util/assertions.hpp"
#include "src/util/stats.hpp"

namespace pmte {

void Table::add_row(std::vector<std::string> row) {
  PMTE_CHECK(row.size() == header_.size(), "table row arity mismatch");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit(row);
  os.flush();
}

std::string cell(double v) { return format_double(v); }
std::string cell(std::size_t v) { return std::to_string(v); }
std::string cell(long long v) { return std::to_string(v); }
std::string cell(int v) { return std::to_string(v); }
std::string cell(unsigned v) { return std::to_string(v); }
std::string cell(const char* v) { return {v}; }
std::string cell(std::string v) { return v; }

}  // namespace pmte
