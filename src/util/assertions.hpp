#pragma once
// Lightweight runtime checks.
//
// PMTE_CHECK is always on (validates user-facing API contracts and throws
// std::invalid_argument / std::logic_error style exceptions); PMTE_ASSERT
// compiles out in NDEBUG builds and guards internal invariants.

#include <sstream>
#include <stdexcept>
#include <string>

namespace pmte::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "PMTE check failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace pmte::detail

#define PMTE_CHECK(expr, msg)                                             \
  do {                                                                    \
    if (!(expr)) ::pmte::detail::check_failed(#expr, __FILE__, __LINE__,  \
                                              (msg));                     \
  } while (false)

#ifdef NDEBUG
#define PMTE_ASSERT(expr, msg) \
  do {                         \
  } while (false)
#else
#define PMTE_ASSERT(expr, msg) PMTE_CHECK(expr, msg)
#endif
