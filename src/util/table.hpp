#pragma once
// Markdown table printer.  Every experiment bench prints one or more of these
// tables; EXPERIMENTS.md embeds the resulting rows.

#include <iostream>
#include <string>
#include <vector>

namespace pmte {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render as a GitHub-flavoured markdown table.
  void print(std::ostream& os = std::cout) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Convenience: to_string that also handles doubles via format_double.
[[nodiscard]] std::string cell(double v);
[[nodiscard]] std::string cell(std::size_t v);
[[nodiscard]] std::string cell(long long v);
[[nodiscard]] std::string cell(int v);
[[nodiscard]] std::string cell(unsigned v);
[[nodiscard]] std::string cell(const char* v);
[[nodiscard]] std::string cell(std::string v);

}  // namespace pmte
