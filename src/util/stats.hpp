#pragma once
// Small statistics helpers used by benches and tests: summary statistics
// (mean / max / percentiles) over samples of distances, stretches, list
// lengths, round counts, …

#include <cstddef>
#include <string>
#include <vector>

namespace pmte {

/// Summary of a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double stddev = 0.0;
};

/// Compute a Summary. The input is copied and sorted internally.
[[nodiscard]] Summary summarize(std::vector<double> samples);

/// Percentile (q in [0,1]) of a sorted sample via linear interpolation.
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double q);

/// Incremental mean/max accumulator (Welford) safe to merge across threads.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double variance() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Format a double compactly ("12.3", "1.2e+06", "inf").
[[nodiscard]] std::string format_double(double v, int precision = 3);

}  // namespace pmte
