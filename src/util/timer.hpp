#pragma once
// Wall-clock timing helper for benches and examples.

#include <chrono>

namespace pmte {

class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pmte
