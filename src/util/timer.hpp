#pragma once
// Wall-clock timing helpers.  This header and src/obs/ are the only
// sanctioned clock readers in the library (pmte-lint `wall-clock` rule);
// wall-time must never feed an algorithmic decision — see
// docs/DETERMINISM.md.

#include <chrono>
#include <cstdint>

namespace pmte {

/// Monotonic nanoseconds since an arbitrary epoch (steady_clock).  The
/// timestamp primitive the obs layer stamps spans with; only differences
/// are meaningful.
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pmte
