#pragma once
// The all-paths semiring Pmin,+ (Definition 3.17).
//
// An element stores a finite weight for every *contained* loop-free path
// (paths not contained are implicitly ∞).  Needed for problems that must
// distinguish different paths of equal weight — the k-Shortest Distance
// Problem and its distinct-weights variant (Section 3.3), which no
// semimodule over Smin,+ can express (Observation 3.16).
//
//   ⊕  pathwise minimum of weights,
//   ⊙  weight-summed concatenation over all concatenable splits,
//   0  the empty element (no paths),
//   1  all single-vertex paths (v) with weight 0.
//
// Because "1" is infinite as a set, elements carry a `has_trivial_paths`
// flag meaning "contains (v) with weight 0 for every v ∈ V"; the MBF-like
// machinery only ever multiplies by adjacency entries and unit vectors, for
// which this closure suffices (adjacency diagonals are exactly 1,
// Equation (3.18)).

#include <compare>
#include <span>
#include <vector>

#include "src/util/types.hpp"

namespace pmte {

/// A loop-free directed path as an explicit vertex tuple.
struct VertexPath {
  std::vector<Vertex> hops;

  [[nodiscard]] Vertex front() const { return hops.front(); }
  [[nodiscard]] Vertex back() const { return hops.back(); }
  [[nodiscard]] bool contains(Vertex v) const;

  friend auto operator<=>(const VertexPath&, const VertexPath&) = default;
};

struct PathEntry {
  VertexPath path;
  Weight weight;

  friend bool operator==(const PathEntry&, const PathEntry&) = default;
};

/// An element of Pmin,+ restricted to explicitly stored paths.
class PathSet {
 public:
  PathSet() = default;

  /// The semiring zero 0 = (∞, …, ∞).
  static PathSet zero() { return PathSet{}; }

  /// The semiring one 1 (all trivial paths at weight 0).
  static PathSet one() {
    PathSet p;
    p.has_trivial_ = true;
    return p;
  }

  /// {π ↦ w}; the adjacency entry a_vw = {(v,w) ↦ ω(v,w)} (Eq. 3.18) or
  /// the initialisation x⁽⁰⁾_v = {(v) ↦ 0} (Eq. 3.19).
  static PathSet single(VertexPath path, Weight w);

  [[nodiscard]] bool contains_trivial_paths() const noexcept {
    return has_trivial_;
  }
  [[nodiscard]] std::span<const PathEntry> entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Weight of π in this element; ∞ if not contained.
  [[nodiscard]] Weight weight_of(const VertexPath& p) const;

  /// x ⊕ y (Equation (3.14)).
  [[nodiscard]] PathSet plus(const PathSet& other) const;

  /// x ⊙ y (Equation (3.15)); only loop-free concatenations are kept, as P
  /// contains loop-free paths only.
  [[nodiscard]] PathSet times(const PathSet& other) const;

  /// k-SDP filter (Equation (3.24)): for every start vertex v keep the k
  /// lightest v→target paths (ties broken lexicographically); everything
  /// else (including paths not ending at `target`) is dropped.
  /// `distinct_weights` switches to the k-DSDP variant (Example 3.24):
  /// at most one path per distinct weight.
  [[nodiscard]] PathSet filter_k_shortest(Vertex target, std::size_t k,
                                          bool distinct_weights = false) const;

  friend bool operator==(const PathSet&, const PathSet&) = default;

 private:
  void normalize();

  std::vector<PathEntry> entries_;  // sorted by path, unique, finite weights
  bool has_trivial_ = false;
};

}  // namespace pmte
