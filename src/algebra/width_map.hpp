#pragma once
// The widest-path semimodule W over Smax,min (Corollary 3.11).
//
// An element assigns a *width* in R≥0 ∪ {∞} to every vertex; 0 ("no path")
// is the implicit default, so only positive-width entries are stored.
// Module operations (Equations (3.7)–(3.8)):
//   ⊕  pointwise max,
//   s⊙ pointwise min with the scalar (bottleneck along an edge),
//   ⊥  the all-zero vector (empty map).

#include <span>
#include <vector>

#include "src/util/types.hpp"

namespace pmte {

struct WidthEntry {
  Vertex key;
  Weight width;

  friend bool operator==(const WidthEntry&, const WidthEntry&) = default;
};

class WidthMap {
 public:
  WidthMap() = default;

  static WidthMap singleton(Vertex key, Weight width = inf_weight()) {
    WidthMap m;
    if (width > 0.0) m.entries_.push_back(WidthEntry{key, width});
    return m;
  }

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::span<const WidthEntry> entries() const noexcept {
    return entries_;
  }

  /// Width at `key` (0 when absent).
  [[nodiscard]] Weight at(Vertex key) const noexcept;

  /// s ⊙ x : cap all widths at s; s = 0 yields ⊥.
  void cap_at(Weight s);

  /// x ⊕ y : pointwise maximum (sorted merge); `cap` applies s⊙ to `other`
  /// on the fly.
  void merge_max(const WidthMap& other, Weight cap = inf_weight());

  friend bool operator==(const WidthMap&, const WidthMap&) = default;

 private:
  std::vector<WidthEntry> entries_;  // sorted by key, widths > 0
};

}  // namespace pmte
