#pragma once
// Algebraic axiom checkers (Definitions A.1–A.3).
//
// Used by the property-test suites: given concrete element samples, these
// verify the semiring laws, the zero-preserving-semimodule laws
// (Equations (2.1)–(2.5)) and the congruence-relation laws
// (Equations (2.12)–(2.13)) that the MBF-like framework relies on.

#include <functional>
#include <string>
#include <vector>

#include "src/algebra/semiring.hpp"

namespace pmte {

/// Result of an axiom check: empty `violation` means the law holds on the
/// given samples.
struct AxiomReport {
  bool ok = true;
  std::string violation;

  void fail(std::string what) {
    if (ok) {
      ok = false;
      violation = std::move(what);
    }
  }
};

/// Check all semiring axioms on the cartesian cube of `samples`.
/// `eq` compares semiring values (use exact equality for discrete
/// semirings; a tolerant comparison is fine for doubles since our ops are
/// min/max/+).
template <Semiring S>
[[nodiscard]] AxiomReport check_semiring_axioms(
    const std::vector<typename S::Value>& samples,
    const std::function<bool(const typename S::Value&,
                             const typename S::Value&)>& eq) {
  AxiomReport rep;
  const auto zero = S::zero();
  const auto one = S::one();
  for (const auto& x : samples) {
    if (!eq(S::plus(x, zero), x)) rep.fail("x ⊕ 0 != x");
    if (!eq(S::plus(zero, x), x)) rep.fail("0 ⊕ x != x");
    if (!eq(S::times(x, one), x)) rep.fail("x ⊙ 1 != x");
    if (!eq(S::times(one, x), x)) rep.fail("1 ⊙ x != x");
    if (!eq(S::times(x, zero), zero)) rep.fail("x ⊙ 0 != 0");
    if (!eq(S::times(zero, x), zero)) rep.fail("0 ⊙ x != 0");
    for (const auto& y : samples) {
      if (!eq(S::plus(x, y), S::plus(y, x))) rep.fail("⊕ not commutative");
      for (const auto& z : samples) {
        if (!eq(S::plus(S::plus(x, y), z), S::plus(x, S::plus(y, z))))
          rep.fail("⊕ not associative");
        if (!eq(S::times(S::times(x, y), z), S::times(x, S::times(y, z))))
          rep.fail("⊙ not associative");
        if (!eq(S::times(x, S::plus(y, z)),
                S::plus(S::times(x, y), S::times(x, z))))
          rep.fail("left distributivity fails");
        if (!eq(S::times(S::plus(y, z), x),
                S::plus(S::times(y, x), S::times(z, x))))
          rep.fail("right distributivity fails");
      }
    }
  }
  return rep;
}

/// Check the zero-preserving semimodule axioms (Definition A.3,
/// Equations (2.1)–(2.5)) for a semimodule with elements `M` over
/// semiring S.  The module operations are passed as callables:
///   madd(x, y)  — x ⊕ y in M
///   smul(s, x)  — s ⊙ x
///   bottom      — neutral element ⊥ of (M, ⊕)
template <Semiring S, typename M>
[[nodiscard]] AxiomReport check_semimodule_axioms(
    const std::vector<typename S::Value>& scalars,
    const std::vector<M>& elements,
    const std::function<M(const M&, const M&)>& madd,
    const std::function<M(const typename S::Value&, const M&)>& smul,
    const M& bottom, const std::function<bool(const M&, const M&)>& eq) {
  AxiomReport rep;
  for (const auto& x : elements) {
    if (!eq(smul(S::one(), x), x)) rep.fail("1 ⊙ x != x           (2.1)");
    if (!eq(smul(S::zero(), x), bottom))
      rep.fail("0 ⊙ x != ⊥           (2.2)");
    if (!eq(madd(x, bottom), x)) rep.fail("x ⊕ ⊥ != x");
    for (const auto& y : elements) {
      if (!eq(madd(x, y), madd(y, x))) rep.fail("module ⊕ not commutative");
      for (const auto& z : elements) {
        if (!eq(madd(madd(x, y), z), madd(x, madd(y, z))))
          rep.fail("module ⊕ not associative");
      }
      for (const auto& s : scalars) {
        if (!eq(smul(s, madd(x, y)), madd(smul(s, x), smul(s, y))))
          rep.fail("s(x ⊕ y) != sx ⊕ sy (2.3)");
      }
    }
    for (const auto& s : scalars) {
      for (const auto& t : scalars) {
        if (!eq(smul(S::plus(s, t), x), madd(smul(s, x), smul(t, x))))
          rep.fail("(s ⊕ t)x != sx ⊕ tx (2.4)");
        if (!eq(smul(S::times(s, t), x), smul(s, smul(t, x))))
          rep.fail("(s ⊙ t)x != s(tx)   (2.5)");
      }
    }
  }
  return rep;
}

/// Check that a projection r induces a congruence relation via Lemma 2.8:
///   (2.12)  r(x) = r(x') ⇒ r(sx) = r(sx')
///   (2.13)  r(x) = r(x') ∧ r(y) = r(y') ⇒ r(x ⊕ y) = r(x' ⊕ y')
/// All pairs (x, x') and (y, y') with equal representatives among
/// `elements` are exercised.
template <Semiring S, typename M>
[[nodiscard]] AxiomReport check_congruence(
    const std::vector<typename S::Value>& scalars,
    const std::vector<M>& elements,
    const std::function<M(const M&, const M&)>& madd,
    const std::function<M(const typename S::Value&, const M&)>& smul,
    const std::function<M(const M&)>& r,
    const std::function<bool(const M&, const M&)>& eq) {
  AxiomReport rep;
  for (const auto& x : elements) {
    if (!eq(r(r(x)), r(x))) rep.fail("r is not a projection (r∘r != r)");
  }
  for (const auto& x : elements) {
    for (const auto& x2 : elements) {
      if (!eq(r(x), r(x2))) continue;
      for (const auto& s : scalars) {
        if (!eq(r(smul(s, x)), r(smul(s, x2))))
          rep.fail("congruence (2.12) violated under scalar multiplication");
      }
      for (const auto& y : elements) {
        for (const auto& y2 : elements) {
          if (!eq(r(y), r(y2))) continue;
          if (!eq(r(madd(x, y)), r(madd(x2, y2))))
            rep.fail("congruence (2.13) violated under aggregation");
        }
      }
    }
  }
  return rep;
}

}  // namespace pmte
