#pragma once
// Dense matrices over an arbitrary semiring (Section 1.1, "Algebraic
// Distance Computations").
//
// The distance product over Smin,+ computes h-hop distances:
// (A^h)_vw = dist^h(v,w,G) (Equation (1.6), Lemma 3.1), and ⌈log₂ n⌉
// squarings reach the fixpoint — the classical polylog-depth / Ω(n³)-work
// approach the paper improves upon.  The template doubles as a reference
// model for the MBF engine: x^{(h)} = A^h x^{(0)} must agree with h
// engine iterations for every semiring (property-tested).

#include <vector>

#include "src/algebra/semiring.hpp"
#include "src/graph/graph.hpp"
#include "src/parallel/parallel.hpp"
#include "src/util/assertions.hpp"

namespace pmte {

template <Semiring S>
class SemiringMatrix {
 public:
  using Value = typename S::Value;

  SemiringMatrix() = default;
  explicit SemiringMatrix(Vertex n) : n_(n), data_(std::size_t{n} * n, S::zero()) {}

  /// Identity: one() on the diagonal, zero() elsewhere.
  static SemiringMatrix identity(Vertex n) {
    SemiringMatrix m(n);
    for (Vertex v = 0; v < n; ++v) m.at(v, v) = S::one();
    return m;
  }

  [[nodiscard]] Vertex dim() const noexcept { return n_; }

  [[nodiscard]] Value& at(Vertex r, Vertex c) {
    PMTE_ASSERT(r < n_ && c < n_, "matrix index out of range");
    return data_[std::size_t{r} * n_ + c];
  }
  [[nodiscard]] const Value& at(Vertex r, Vertex c) const {
    PMTE_ASSERT(r < n_ && c < n_, "matrix index out of range");
    return data_[std::size_t{r} * n_ + c];
  }

  /// C = A ⊙ B with the semiring's ⊕/⊙ (Equation (1.6)); OpenMP over rows.
  [[nodiscard]] SemiringMatrix multiply(const SemiringMatrix& other) const {
    PMTE_CHECK(n_ == other.n_, "matrix dimension mismatch");
    SemiringMatrix out(n_);
    parallel_for(n_, [&](std::size_t r) {
      for (Vertex k = 0; k < n_; ++k) {
        const Value a = at(static_cast<Vertex>(r), k);
        for (Vertex c = 0; c < n_; ++c) {
          Value& o = out.at(static_cast<Vertex>(r), c);
          o = S::plus(o, S::times(a, other.at(k, c)));
        }
      }
    });
    return out;
  }

  /// A ⊕ B entrywise.
  [[nodiscard]] SemiringMatrix add(const SemiringMatrix& other) const {
    PMTE_CHECK(n_ == other.n_, "matrix dimension mismatch");
    SemiringMatrix out(n_);
    for (std::size_t i = 0; i < data_.size(); ++i) {
      out.data_[i] = S::plus(data_[i], other.data_[i]);
    }
    return out;
  }

  /// y = A ⊙ x for a vector over the semiring (an SLF, Definition 2.12).
  [[nodiscard]] std::vector<Value> apply(const std::vector<Value>& x) const {
    PMTE_CHECK(x.size() == n_, "vector dimension mismatch");
    std::vector<Value> y(n_, S::zero());
    parallel_for(n_, [&](std::size_t r) {
      Value acc = S::zero();
      for (Vertex c = 0; c < n_; ++c) {
        acc = S::plus(acc, S::times(at(static_cast<Vertex>(r), c), x[c]));
      }
      y[r] = acc;
    });
    return y;
  }

  /// A^h by repeated squaring (h ≥ 0; A^0 = identity).
  [[nodiscard]] SemiringMatrix power(unsigned h) const {
    SemiringMatrix result = identity(n_);
    SemiringMatrix base = *this;
    while (h > 0) {
      if (h & 1U) result = result.multiply(base);
      base = base.multiply(base);
      h >>= 1U;
    }
    return result;
  }

  friend bool operator==(const SemiringMatrix&, const SemiringMatrix&) = default;

 private:
  Vertex n_ = 0;
  std::vector<Value> data_;
};

/// The adjacency matrix of G over Smin,+ (Equation (1.4)).
[[nodiscard]] inline SemiringMatrix<MinPlus> min_plus_adjacency(
    const Graph& g) {
  SemiringMatrix<MinPlus> a(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    a.at(v, v) = MinPlus::one();
    for (const auto& e : g.neighbors(v)) a.at(v, e.to) = e.weight;
  }
  return a;
}

/// The adjacency matrix of G over Smax,min (Equation (3.9)).
[[nodiscard]] inline SemiringMatrix<MaxMin> max_min_adjacency(const Graph& g) {
  SemiringMatrix<MaxMin> a(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    a.at(v, v) = MaxMin::one();
    for (const auto& e : g.neighbors(v)) a.at(v, e.to) = e.weight;
  }
  return a;
}

/// The adjacency matrix of G over the Boolean semiring (Equation (3.28)).
[[nodiscard]] inline SemiringMatrix<BooleanSemiring> boolean_adjacency(
    const Graph& g) {
  SemiringMatrix<BooleanSemiring> a(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    a.at(v, v) = true;
    for (const auto& e : g.neighbors(v)) a.at(v, e.to) = true;
  }
  return a;
}

}  // namespace pmte
