#include "src/algebra/distance_map.hpp"

#include <algorithm>
#include <cmath>

#include "src/parallel/parallel.hpp"  // PMTE_TSAN_ACTIVE
#include "src/util/assertions.hpp"

namespace pmte {

DistanceMap DistanceMap::from_entries(std::vector<DistEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const DistEntry& a, const DistEntry& b) {
              return a.key < b.key || (a.key == b.key && a.dist < b.dist);
            });
  DistanceMap m;
  m.entries_.reserve(entries.size());
  for (const auto& e : entries) {
    if (!is_finite(e.dist)) continue;  // ∞ entries are implicit
    if (!m.entries_.empty() && m.entries_.back().key == e.key) continue;
    m.entries_.push_back(e);
  }
  return m;
}

Weight DistanceMap::at(Vertex key) const noexcept {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const DistEntry& e, Vertex k) { return e.key < k; });
  if (it != entries_.end() && it->key == key) return it->dist;
  return inf_weight();
}

void DistanceMap::add_to_all(Weight s) {
  if (!is_finite(s)) {
    entries_.clear();  // ∞ ⊙ x = ⊥  (2.2)
    return;
  }
  for (auto& e : entries_) e.dist += s;
  WorkDepth::add_work(entries_.size());
}

void DistanceMap::merge_min(const DistanceMap& other, Weight shift) {
  if (!is_finite(shift) || other.empty()) return;
  WorkDepth::add_work(entries_.size() + other.entries_.size());
  // The merge is the innermost operation of every MBF-like iteration; a
  // thread-local scratch buffer avoids an allocation per relaxation.
  thread_local std::vector<DistEntry> scratch;
  scratch.clear();
  scratch.reserve(entries_.size() + other.entries_.size());
  std::size_t i = 0, j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    const auto& a = entries_[i];
    const DistEntry b{other.entries_[j].key, other.entries_[j].dist + shift};
    if (a.key < b.key) {
      scratch.push_back(a);
      ++i;
    } else if (b.key < a.key) {
      scratch.push_back(b);
      ++j;
    } else {
      scratch.push_back(DistEntry{a.key, std::min(a.dist, b.dist)});
      ++i;
      ++j;
    }
  }
  for (; i < entries_.size(); ++i) scratch.push_back(entries_[i]);
  for (; j < other.entries_.size(); ++j)
    scratch.push_back(
        DistEntry{other.entries_[j].key, other.entries_[j].dist + shift});
#if PMTE_TSAN_ACTIVE
  // swap() would hand the map a buffer allocated by this worker thread and
  // park the map's old buffer in this thread's TLS, where the TLS destructor
  // frees it at thread exit — a cross-thread handoff whose ordering runs
  // through OpenMP pool teardown, which TSan cannot see.  Copying keeps
  // buffer ownership with the map (same values, one extra memcpy).
  entries_.assign(scratch.begin(), scratch.end());
#else
  entries_.swap(scratch);  // scratch keeps its capacity for the next merge
#endif
}

void DistanceMap::drop_beyond(Weight bound) {
  std::erase_if(entries_,
                [bound](const DistEntry& e) { return e.dist > bound; });
}

void DistanceMap::keep_k_smallest(std::size_t k) {
  if (entries_.size() <= k) return;
  WorkDepth::add_work(entries_.size());
  std::vector<DistEntry> by_dist(entries_.begin(), entries_.end());
  std::nth_element(by_dist.begin(), by_dist.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   by_dist.end(), [](const DistEntry& a, const DistEntry& b) {
                     return a.dist < b.dist ||
                            (a.dist == b.dist && a.key < b.key);
                   });
  const DistEntry pivot = by_dist[k - 1];
  std::erase_if(entries_, [&pivot](const DistEntry& e) {
    return e.dist > pivot.dist ||
           (e.dist == pivot.dist && e.key > pivot.key);
  });
}

void DistanceMap::keep_least_elements() {
  if (entries_.size() <= 1) return;
  WorkDepth::add_work(entries_.size());
  // Sort a copy by (dist, key); keep entries whose key is a strict running
  // minimum (Lemma 7.7's tournament, done with one sort + scan).
  std::vector<DistEntry> by_dist(entries_.begin(), entries_.end());
  std::sort(by_dist.begin(), by_dist.end(),
            [](const DistEntry& a, const DistEntry& b) {
              return a.dist < b.dist || (a.dist == b.dist && a.key < b.key);
            });
  entries_.clear();
  Vertex min_key = no_vertex();
  for (const auto& e : by_dist) {
    if (e.key < min_key) {
      min_key = e.key;
      entries_.push_back(e);
    }
  }
  // Surviving entries have ascending dist and strictly descending key;
  // restore the sorted-by-key invariant by reversing.
  std::reverse(entries_.begin(), entries_.end());
}

bool DistanceMap::is_least_element_list() const noexcept {
  // Sorted by ascending key; LE lists additionally have strictly
  // *descending* distance along ascending key (the staircase).
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i - 1].key >= entries_[i].key) return false;
    if (entries_[i - 1].dist <= entries_[i].dist) return false;
  }
  return true;
}

bool approx_equal(const DistanceMap& a, const DistanceMap& b,
                  double rel_tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].key != b[i].key) return false;
    const double scale = std::max({1.0, std::abs(a[i].dist), std::abs(b[i].dist)});
    if (std::abs(a[i].dist - b[i].dist) > rel_tol * scale) return false;
  }
  return true;
}

}  // namespace pmte
