#include "src/algebra/path_set.hpp"

#include <algorithm>
#include <map>

#include "src/util/assertions.hpp"

namespace pmte {

bool VertexPath::contains(Vertex v) const {
  return std::find(hops.begin(), hops.end(), v) != hops.end();
}

PathSet PathSet::single(VertexPath path, Weight w) {
  PMTE_CHECK(!path.hops.empty(), "paths must be non-empty");
  PathSet p;
  if (is_finite(w)) p.entries_.push_back(PathEntry{std::move(path), w});
  return p;
}

Weight PathSet::weight_of(const VertexPath& p) const {
  if (has_trivial_ && p.hops.size() == 1) return 0.0;
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), p,
      [](const PathEntry& e, const VertexPath& q) { return e.path < q; });
  if (it != entries_.end() && it->path == p) return it->weight;
  return inf_weight();
}

void PathSet::normalize() {
  std::sort(entries_.begin(), entries_.end(),
            [](const PathEntry& a, const PathEntry& b) {
              return a.path < b.path ||
                     (a.path == b.path && a.weight < b.weight);
            });
  std::vector<PathEntry> out;
  out.reserve(entries_.size());
  for (auto& e : entries_) {
    if (!is_finite(e.weight)) continue;
    if (!out.empty() && out.back().path == e.path) continue;  // keep min
    out.push_back(std::move(e));
  }
  entries_ = std::move(out);
  if (has_trivial_) {
    // Trivial paths are implicit; an explicit (v) entry with weight 0 is
    // redundant, one with positive weight is dominated by the implicit 0.
    std::erase_if(entries_,
                  [](const PathEntry& e) { return e.path.hops.size() == 1; });
  }
}

PathSet PathSet::plus(const PathSet& other) const {
  PathSet out;
  out.has_trivial_ = has_trivial_ || other.has_trivial_;
  out.entries_.reserve(entries_.size() + other.entries_.size());
  out.entries_.insert(out.entries_.end(), entries_.begin(), entries_.end());
  out.entries_.insert(out.entries_.end(), other.entries_.begin(),
                      other.entries_.end());
  out.normalize();
  return out;
}

PathSet PathSet::times(const PathSet& other) const {
  PathSet out;
  // 1 ⊙ 1 = 1; trivial paths concatenate only with themselves trivially.
  out.has_trivial_ = has_trivial_ && other.has_trivial_;
  // trivial ⊙ y: (v) ◦ π works for π starting anywhere (prepending the
  // trivial path of π's first vertex), contributing y's entries verbatim.
  if (has_trivial_) {
    out.entries_.insert(out.entries_.end(), other.entries_.begin(),
                        other.entries_.end());
  }
  if (other.has_trivial_) {
    out.entries_.insert(out.entries_.end(), entries_.begin(), entries_.end());
  }
  for (const auto& a : entries_) {
    for (const auto& b : other.entries_) {
      if (a.path.back() != b.path.front()) continue;  // not concatenable
      VertexPath joined;
      joined.hops.reserve(a.path.hops.size() + b.path.hops.size() - 1);
      joined.hops = a.path.hops;
      bool loop_free = true;
      for (std::size_t i = 1; i < b.path.hops.size(); ++i) {
        const Vertex v = b.path.hops[i];
        if (joined.contains(v)) {
          loop_free = false;  // would leave P; such π are implicitly ∞
          break;
        }
        joined.hops.push_back(v);
      }
      if (!loop_free) continue;
      out.entries_.push_back(PathEntry{std::move(joined), a.weight + b.weight});
    }
  }
  out.normalize();
  return out;
}

PathSet PathSet::filter_k_shortest(Vertex target, std::size_t k,
                                   bool distinct_weights) const {
  // Group contained target-terminated paths by start vertex (the paper's
  // P_k(v, s, x) for every v, Equations (3.23)/(3.26)–(3.27)).
  std::map<Vertex, std::vector<PathEntry>> by_start;
  for (const auto& e : entries_) {
    if (e.path.back() != target) continue;
    by_start[e.path.front()].push_back(e);
  }
  if (has_trivial_) {
    // The implicit (target) path ends at target and starts there too.
    by_start[target].push_back(
        PathEntry{VertexPath{{target}}, 0.0});
  }
  PathSet out;
  for (auto& [start, paths] : by_start) {
    std::sort(paths.begin(), paths.end(),
              [](const PathEntry& a, const PathEntry& b) {
                return a.weight < b.weight ||
                       (a.weight == b.weight && a.path < b.path);
              });
    std::size_t kept = 0;
    for (std::size_t i = 0; i < paths.size() && kept < k; ++i) {
      if (distinct_weights && i > 0 &&
          paths[i].weight == paths[i - 1].weight) {
        continue;  // k-DSDP: one representative per distinct weight
      }
      out.entries_.push_back(paths[i]);
      ++kept;
    }
  }
  out.normalize();
  return out;
}

}  // namespace pmte
