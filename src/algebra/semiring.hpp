#pragma once
// Semirings (Definition A.2 of the paper).
//
// A semiring policy is a stateless struct exposing
//   Value  — the element type,
//   zero() — neutral element of ⊕ (annihilator of ⊙),
//   one()  — neutral element of ⊙,
//   plus(a, b)  — the "addition" ⊕,
//   times(a, b) — the "multiplication" ⊙.
//
// The library ships the three scalar semirings used in Sections 3.1, 3.2
// and 3.4 (min-plus, max-min, Boolean); the all-paths semiring Pmin,+ of
// Section 3.3 lives in path_set.hpp because its elements are dynamic.

#include <concepts>
#include <cstdint>

#include "src/util/types.hpp"

namespace pmte {

template <typename S>
concept Semiring = requires(typename S::Value a, typename S::Value b) {
  { S::zero() } -> std::convertible_to<typename S::Value>;
  { S::one() } -> std::convertible_to<typename S::Value>;
  { S::plus(a, b) } -> std::convertible_to<typename S::Value>;
  { S::times(a, b) } -> std::convertible_to<typename S::Value>;
};

/// The min-plus (tropical) semiring Smin,+ = (R≥0 ∪ {∞}, min, +)
/// (Section 1.2).  The distance product over this semiring yields h-hop
/// distances (Lemma 3.1).
struct MinPlus {
  using Value = Weight;
  [[nodiscard]] static constexpr Value zero() noexcept { return inf_weight(); }
  [[nodiscard]] static constexpr Value one() noexcept { return 0.0; }
  [[nodiscard]] static constexpr Value plus(Value a, Value b) noexcept {
    return a < b ? a : b;
  }
  [[nodiscard]] static constexpr Value times(Value a, Value b) noexcept {
    // +inf must annihilate even against itself.
    return (a == inf_weight() || b == inf_weight()) ? inf_weight() : a + b;
  }
};

/// The max-min semiring Smax,min = (R≥0 ∪ {∞}, max, min) for widest-path /
/// bottleneck problems (Definition 3.9, Lemma 3.10).
struct MaxMin {
  using Value = Weight;
  [[nodiscard]] static constexpr Value zero() noexcept { return 0.0; }
  [[nodiscard]] static constexpr Value one() noexcept { return inf_weight(); }
  [[nodiscard]] static constexpr Value plus(Value a, Value b) noexcept {
    return a > b ? a : b;
  }
  [[nodiscard]] static constexpr Value times(Value a, Value b) noexcept {
    return a < b ? a : b;
  }
};

/// The Boolean semiring B = ({0,1}, ∨, ∧) for connectivity (Section 3.4).
/// Value is uint8_t rather than bool so that vectors and matrices over B
/// expose real lvalue references (std::vector<bool> is a proxy type).
struct BooleanSemiring {
  using Value = std::uint8_t;
  [[nodiscard]] static constexpr Value zero() noexcept { return 0; }
  [[nodiscard]] static constexpr Value one() noexcept { return 1; }
  [[nodiscard]] static constexpr Value plus(Value a, Value b) noexcept {
    return (a || b) ? 1 : 0;
  }
  [[nodiscard]] static constexpr Value times(Value a, Value b) noexcept {
    return (a && b) ? 1 : 0;
  }
};

static_assert(Semiring<MinPlus>);
static_assert(Semiring<MaxMin>);
static_assert(Semiring<BooleanSemiring>);

}  // namespace pmte
