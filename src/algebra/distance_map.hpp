#pragma once
// The distance-map semimodule D (Definition 2.1).
//
// An element of D assigns a value of R≥0 ∪ {∞} to every vertex; we store
// only the finite entries as a vector of (key, dist) pairs sorted by key
// (the paper's "list of index–distance pairs", Lemma 2.3).  Keys are
// opaque 32-bit identifiers — plain vertex ids for source detection /
// APSP-style algorithms, *permutation ranks* for LE lists (so that the
// random order "u < v" is an integer comparison).
//
// Module operations:
//   ⊕  merge_min       — pointwise minimum (sorted merge)
//   s⊙ add_to_all      — uniform shift by the propagation distance
//   ⊥  the empty map   — all-∞ vector

#include <span>
#include <vector>

#include "src/parallel/counters.hpp"
#include "src/util/types.hpp"

namespace pmte {

/// One finite entry of a distance map.
struct DistEntry {
  Vertex key;
  Weight dist;

  friend bool operator==(const DistEntry&, const DistEntry&) = default;
};

/// Sparse distance map; invariant: entries sorted by strictly increasing
/// key, all distances finite.
class DistanceMap {
 public:
  DistanceMap() = default;

  /// {key ↦ d}; the typical MBF initialisation x⁽⁰⁾_v = unit vector at v.
  static DistanceMap singleton(Vertex key, Weight d = 0.0) {
    DistanceMap m;
    m.entries_.push_back(DistEntry{key, d});
    return m;
  }

  static DistanceMap from_entries(std::vector<DistEntry> entries);

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::span<const DistEntry> entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] const DistEntry& operator[](std::size_t i) const noexcept {
    return entries_[i];
  }

  /// Value at `key`; inf_weight() when absent.
  [[nodiscard]] Weight at(Vertex key) const noexcept;

  /// s ⊙ x : uniformly add `s` to all entries (Equation (2.7)).
  /// s = ∞ yields ⊥ (Equation (2.2)).
  void add_to_all(Weight s);

  /// x ⊕ y into *this (Equation (2.6)); `shift` adds a propagation distance
  /// to `other`'s entries on the fly, fusing s⊙y ⊕ x into one pass.
  void merge_min(const DistanceMap& other, Weight shift = 0.0);

  /// Remove all entries with dist > bound (used by distance-bounded
  /// filters; ⊥-preserving).
  void drop_beyond(Weight bound);

  /// Keep the k smallest entries under lexicographic (dist, key) order —
  /// the source-detection filter core (Example 3.2).
  void keep_k_smallest(std::size_t k);

  /// Keep only entries whose key is *not dominated*: entry (key, dist) is
  /// dominated iff some other entry (key', dist') has key' < key and
  /// dist' <= dist.  This is the LE-list filter r of Definition 7.3.
  /// Postcondition: sorted by key ascending ⇔ dist descending (staircase).
  void keep_least_elements();

  /// True iff no entry is dominated (LE staircase invariant).
  [[nodiscard]] bool is_least_element_list() const noexcept;

  void clear() noexcept { entries_.clear(); }

  friend bool operator==(const DistanceMap&, const DistanceMap&) = default;

 private:
  std::vector<DistEntry> entries_;
};

/// Approximate equality for testing: same keys, distances within rel. tol.
[[nodiscard]] bool approx_equal(const DistanceMap& a, const DistanceMap& b,
                                double rel_tol = 1e-9);

}  // namespace pmte
