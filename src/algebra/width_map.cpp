#include "src/algebra/width_map.hpp"

#include <algorithm>

namespace pmte {

Weight WidthMap::at(Vertex key) const noexcept {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const WidthEntry& e, Vertex k) { return e.key < k; });
  if (it != entries_.end() && it->key == key) return it->width;
  return 0.0;
}

void WidthMap::cap_at(Weight s) {
  if (s <= 0.0) {
    entries_.clear();
    return;
  }
  for (auto& e : entries_) e.width = std::min(e.width, s);
}

void WidthMap::merge_max(const WidthMap& other, Weight cap) {
  if (cap <= 0.0 || other.empty()) return;
  std::vector<WidthEntry> out;
  out.reserve(entries_.size() + other.entries_.size());
  std::size_t i = 0, j = 0;
  auto capped = [cap](const WidthEntry& e) {
    return WidthEntry{e.key, std::min(e.width, cap)};
  };
  while (i < entries_.size() && j < other.entries_.size()) {
    const auto& a = entries_[i];
    const WidthEntry b = capped(other.entries_[j]);
    if (a.key < b.key) {
      out.push_back(a);
      ++i;
    } else if (b.key < a.key) {
      out.push_back(b);
      ++j;
    } else {
      out.push_back(WidthEntry{a.key, std::max(a.width, b.width)});
      ++i;
      ++j;
    }
  }
  for (; i < entries_.size(); ++i) out.push_back(entries_[i]);
  for (; j < other.entries_.size(); ++j) out.push_back(capped(other.entries_[j]));
  entries_ = std::move(out);
}

}  // namespace pmte
