#include "src/metric/matrix_apsp.hpp"

#include "src/algebra/matrix.hpp"
#include "src/util/timer.hpp"

namespace pmte {

MatrixApspResult matrix_apsp(const Graph& g) {
  const Timer timer;
  MatrixApspResult r;
  const Vertex n = g.num_vertices();
  auto a = min_plus_adjacency(g);
  // Fixpoint iteration A ← A² (Section 1.1); at most ⌈log₂ n⌉ rounds.
  for (unsigned round = 0; (1ULL << round) < std::max<Vertex>(n, 2);
       ++round) {
    auto squared = a.multiply(a);
    ++r.squarings;
    if (squared == a) break;
    a = std::move(squared);
  }
  r.dist.resize(std::size_t{n} * n);
  for (Vertex i = 0; i < n; ++i) {
    for (Vertex j = 0; j < n; ++j) {
      r.dist[std::size_t{i} * n + j] = a.at(i, j);
    }
  }
  r.seconds = timer.seconds();
  return r;
}

}  // namespace pmte
