#include "src/metric/approx_metric.hpp"

#include <algorithm>
#include <cmath>

#include "src/frt/pipelines.hpp"  // resolve_eps_hat
#include "src/mbf/algebras.hpp"
#include "src/oracle/mbf_oracle.hpp"
#include "src/parallel/counters.hpp"
#include "src/simgraph/simulated_graph.hpp"
#include "src/spanner/baswana_sen.hpp"
#include "src/util/assertions.hpp"
#include "src/util/timer.hpp"

namespace pmte {

MetricResult approximate_metric(const Graph& g,
                                const ApproxMetricOptions& opts, Rng& rng) {
  const Vertex n = g.num_vertices();
  PMTE_CHECK(n >= 1, "empty graph");
  const Timer timer;
  const WorkDepthScope scope;
  MetricResult r;

  auto hopset = build_hub_hopset(g, opts.hopset, rng);
  r.hopset_edges = hopset.edges.size();
  const double eps = resolve_eps_hat(opts.eps_hat, n);
  const auto h = build_simulated_graph(g, hopset, eps, rng);

  // APSP is source detection with S = V, k = n, unbounded distance
  // (Example 3.5): the identity filter over D.
  SourceDetectionAlgebra alg;  // defaults: k = ∞, max_dist = ∞
  std::vector<DistanceMap> x0(n);
  for (Vertex v = 0; v < n; ++v) x0[v] = DistanceMap::singleton(v, 0.0);

  const double log_n = std::log2(std::max<double>(n, 2));
  const auto cap =
      static_cast<unsigned>(std::max(8.0, 4.0 * log_n * log_n));
  OracleStats stats;
  auto run = oracle_run(h, alg, std::move(x0), cap, &stats);

  r.dist.assign(static_cast<std::size_t>(n) * n, inf_weight());
  for (Vertex v = 0; v < n; ++v) {
    r.dist[static_cast<std::size_t>(v) * n + v] = 0.0;
    for (const auto& e : run.states[v].entries()) {
      r.dist[static_cast<std::size_t>(v) * n + e.key] = e.dist;
    }
  }
  r.h_iterations = stats.h_iterations;
  r.base_iterations = stats.base_iterations;
  r.work = scope.work_delta();
  r.seconds = timer.seconds();
  return r;
}

MetricResult approximate_metric_spanner(const Graph& g, unsigned spanner_k,
                                        const ApproxMetricOptions& opts,
                                        Rng& rng) {
  const Timer timer;
  auto sp = baswana_sen_spanner(g, spanner_k, rng);
  auto r = approximate_metric(sp.spanner, opts, rng);
  r.spanner_edges = sp.edges;
  r.seconds = timer.seconds();
  return r;
}

double metric_stretch(const std::vector<Weight>& approx,
                      const std::vector<Weight>& exact) {
  PMTE_CHECK(approx.size() == exact.size(), "metric size mismatch");
  double worst = 1.0;
  for (std::size_t i = 0; i < approx.size(); ++i) {
    if (!is_finite(exact[i]) || exact[i] <= 0.0) continue;
    worst = std::max(worst, approx[i] / exact[i]);
  }
  return worst;
}

}  // namespace pmte
