#pragma once
// APSP via the distance product (Section 1.1): squaring the min-plus
// adjacency matrix ⌈log₂ SPD(G)⌉ times reaches the distance fixpoint with
// polylogarithmic depth and Θ(n³ log n) work — the classical algebraic
// baseline the paper's oracle pipeline undercuts on sparse graphs.

#include <cstdint>
#include <vector>

#include "src/graph/graph.hpp"

namespace pmte {

struct MatrixApspResult {
  std::vector<Weight> dist;  ///< row-major n×n exact distances
  unsigned squarings = 0;    ///< matrix multiplications performed
  double seconds = 0.0;
};

/// Exact APSP by repeated squaring of the min-plus adjacency matrix.
/// Stops early at the fixpoint A² = A (i.e. after ⌈log₂ SPD(G)⌉ rounds).
[[nodiscard]] MatrixApspResult matrix_apsp(const Graph& g);

}  // namespace pmte
