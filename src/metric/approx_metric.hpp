#pragma once
// Approximate metric construction (Section 6).
//
// Theorem 6.1: querying the oracle with APSP on the simulated graph H
// yields a (1+o(1))-approximate metric of G at polylog depth — the first
// consequence of the oracle machinery and a template for how to use it.
//
// Theorem 6.2: preceding the construction with a Baswana–Sen (2k−1)-spanner
// trades approximation for work: an O(1)-approximate metric at Õ(n^{2+ε})
// work.

#include <cstdint>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/hopset/hopset.hpp"
#include "src/util/rng.hpp"

namespace pmte {

struct MetricResult {
  std::vector<Weight> dist;      ///< row-major n×n
  unsigned h_iterations = 0;     ///< oracle iterations on H
  unsigned base_iterations = 0;  ///< MBF iterations on G'
  std::uint64_t work = 0;
  double seconds = 0.0;
  std::size_t hopset_edges = 0;
  std::size_t spanner_edges = 0;  ///< 0 when no spanner stage ran
};

struct ApproxMetricOptions {
  double eps_hat = 0.0;  ///< 0 → auto 1/⌈log₂ n⌉
  HubHopSetParams hopset;
};

/// Theorem 6.1 pipeline: hop set → H → oracle APSP.
[[nodiscard]] MetricResult approximate_metric(const Graph& g,
                                              const ApproxMetricOptions& opts,
                                              Rng& rng);

/// Theorem 6.2 pipeline: (2k−1)-spanner → Theorem 6.1 on the spanner.
[[nodiscard]] MetricResult approximate_metric_spanner(
    const Graph& g, unsigned spanner_k, const ApproxMetricOptions& opts,
    Rng& rng);

/// max over finite pairs of approx/exact (≥ 1) — the measured stretch.
[[nodiscard]] double metric_stretch(const std::vector<Weight>& approx,
                                    const std::vector<Weight>& exact);

}  // namespace pmte
