#pragma once
// The simulated graph H (Definition 4.2).
//
// Given G' (the input graph augmented with a (d, ε̂)-hop set) and sampled
// vertex levels, H is the complete graph on V with
//     ω_Λ({v,w}) = (1+ε̂)^{Λ−λ(v,w)} · dist^d(v,w,G').
// High-level edges receive smaller penalties, which makes min-hop shortest
// paths climb and descend the level hierarchy monotonically (Lemma 4.3);
// consequently SPD(H) ∈ O(log² n) w.h.p. while every distance is preserved
// up to (1+ε̂)^{Λ+1} (Theorem 4.5).
//
// H has Θ(n²) edges and is *never* stored: the class keeps G', the levels
// and the parameters, which is all the oracle (Section 5) needs.  Explicit
// materialisation is provided for validation on small instances.

#include "src/graph/graph.hpp"
#include "src/hopset/hopset.hpp"
#include "src/simgraph/levels.hpp"
#include "src/util/rng.hpp"

namespace pmte {

class SimulatedGraph {
 public:
  SimulatedGraph(Graph g_prime, unsigned hop_bound, double eps_hat,
                 LevelAssignment levels);

  [[nodiscard]] const Graph& base() const noexcept { return g_prime_; }
  [[nodiscard]] Vertex num_vertices() const noexcept {
    return g_prime_.num_vertices();
  }
  [[nodiscard]] unsigned hop_bound() const noexcept { return d_; }
  [[nodiscard]] double eps_hat() const noexcept { return eps_hat_; }
  [[nodiscard]] const LevelAssignment& levels() const noexcept {
    return levels_;
  }
  [[nodiscard]] unsigned max_level() const noexcept {
    return levels_.max_level();
  }

  /// The level scaling factor (1+ε̂)^{Λ−λ} applied to A_λ (Lemma 5.1).
  [[nodiscard]] double level_scale(unsigned lambda) const noexcept;

  /// Mutate one G' edge weight in place — the dynamic-update hook (see
  /// docs/DYNAMIC.md).  H's other state (levels, scales, hop bound) is
  /// weight-independent, so only the CSR weight changes; oracles holding
  /// a pointer to this H observe the new weight on their next relaxation
  /// because the engine reads weights live from the graph.
  void set_base_edge_weight(Vertex u, Vertex v, Weight w) {
    g_prime_.set_edge_weight(u, v, w);
  }

  /// ω_Λ({v,w}) computed from explicit d-hop distances — O(d·m) per call;
  /// for tests.
  [[nodiscard]] Weight edge_weight_exact(Vertex v, Vertex w) const;

  /// Materialise H explicitly.  `use_true_hop_distances` selects the exact
  /// Definition 4.2 semantics via d-hop Bellman-Ford (Θ(n·d·m), tests) or
  /// the Dijkstra shortcut dist instead of dist^d (valid w.h.p. for exact
  /// hop sets; benches).
  [[nodiscard]] Graph materialize(bool use_true_hop_distances = true) const;

 private:
  Graph g_prime_;
  unsigned d_;
  double eps_hat_;
  LevelAssignment levels_;
  std::vector<double> scale_;  // scale_[λ] = (1+ε̂)^{Λ−λ}
};

/// End-to-end construction per the paper's pipeline (Section 4):
/// G  →(hop set)→  G'  →(levels, penalties)→  H.
[[nodiscard]] SimulatedGraph build_simulated_graph(const Graph& g,
                                                   const HopSet& hopset,
                                                   double eps_hat, Rng& rng);

}  // namespace pmte
