#include "src/simgraph/simulated_graph.hpp"

#include <cmath>

#include "src/graph/shortest_paths.hpp"
#include "src/mbf/algorithms.hpp"
#include "src/parallel/parallel.hpp"
#include "src/util/assertions.hpp"

namespace pmte {

SimulatedGraph::SimulatedGraph(Graph g_prime, unsigned hop_bound,
                               double eps_hat, LevelAssignment levels)
    : g_prime_(std::move(g_prime)),
      d_(hop_bound),
      eps_hat_(eps_hat),
      levels_(std::move(levels)) {
  PMTE_CHECK(levels_.num_vertices() == g_prime_.num_vertices(),
             "level assignment size mismatch");
  PMTE_CHECK(eps_hat_ >= 0.0, "eps_hat must be non-negative");
  PMTE_CHECK(d_ >= 1, "hop bound must be positive");
  scale_.resize(levels_.max_level() + 1);
  for (unsigned lambda = 0; lambda <= levels_.max_level(); ++lambda) {
    scale_[lambda] =
        std::pow(1.0 + eps_hat_,
                 static_cast<double>(levels_.max_level() - lambda));
  }
}

double SimulatedGraph::level_scale(unsigned lambda) const noexcept {
  return lambda < scale_.size() ? scale_[lambda] : 1.0;
}

Weight SimulatedGraph::edge_weight_exact(Vertex v, Vertex w) const {
  if (v == w) return 0.0;
  // dist^d via the frontier-driven scalar engine (== d-hop Bellman-Ford).
  const auto dists = mbf_sssp(g_prime_, v, d_);
  if (!is_finite(dists[w])) return inf_weight();
  return level_scale(levels_.edge_level(v, w)) * dists[w];
}

Graph SimulatedGraph::materialize(bool use_true_hop_distances) const {
  const Vertex n = g_prime_.num_vertices();
  std::vector<std::vector<Weight>> dist(n);
  parallel_for(n, [&](std::size_t v) {
    if (use_true_hop_distances) {
      dist[v] = mbf_sssp(g_prime_, static_cast<Vertex>(v), d_);
    } else {
      dist[v] = dijkstra(g_prime_, static_cast<Vertex>(v)).dist;
    }
  });
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (Vertex v = 0; v < n; ++v) {
    for (Vertex w = v + 1; w < n; ++w) {
      if (!is_finite(dist[v][w]) || dist[v][w] <= 0.0) continue;
      edges.push_back(WeightedEdge{
          v, w, level_scale(levels_.edge_level(v, w)) * dist[v][w]});
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

SimulatedGraph build_simulated_graph(const Graph& g, const HopSet& hopset,
                                     double eps_hat, Rng& rng) {
  Graph g_prime = hopset.apply(g);
  auto levels = LevelAssignment::sample(g.num_vertices(), rng);
  return SimulatedGraph(std::move(g_prime), hopset.d, eps_hat,
                        std::move(levels));
}

}  // namespace pmte
