#pragma once
// Vertex level sampling for the simulated graph H (Section 4).
//
// Every vertex starts at level 0; in step λ ≥ 1 each vertex of level λ−1
// is raised to level λ with probability 1/2, until a step raises nobody.
// Equivalently: λ(v) i.i.d. geometric, Λ = max_v λ(v) ∈ O(log n) w.h.p.
// (Lemma 4.1).  The level of an edge is the minimum level of its endpoints.

#include <cstdint>
#include <vector>

#include "src/util/rng.hpp"
#include "src/util/types.hpp"

namespace pmte {

class LevelAssignment {
 public:
  /// Run the paper's sampling process for n vertices.
  static LevelAssignment sample(Vertex n, Rng& rng);

  /// Deterministic assignment (testing / reproducing specific instances).
  static LevelAssignment from_levels(std::vector<unsigned> levels);

  [[nodiscard]] Vertex num_vertices() const noexcept {
    return static_cast<Vertex>(level_.size());
  }
  [[nodiscard]] unsigned level(Vertex v) const noexcept { return level_[v]; }

  /// λ({u,v}) = min(λ(u), λ(v)) (Section 4).
  [[nodiscard]] unsigned edge_level(Vertex u, Vertex v) const noexcept {
    return level_[u] < level_[v] ? level_[u] : level_[v];
  }

  /// Λ — the highest sampled level.
  [[nodiscard]] unsigned max_level() const noexcept { return max_level_; }

  /// V_λ = {v : λ(v) ≥ λ}, ascending.
  [[nodiscard]] std::vector<Vertex> vertices_at_or_above(unsigned lambda) const;

 private:
  std::vector<unsigned> level_;
  unsigned max_level_ = 0;
};

}  // namespace pmte
