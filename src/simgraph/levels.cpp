#include "src/simgraph/levels.hpp"

#include <algorithm>

#include "src/obs/obs.hpp"
#include "src/util/assertions.hpp"

namespace pmte {

LevelAssignment LevelAssignment::sample(Vertex n, Rng& rng) {
  PMTE_OBS_SPAN("simgraph.level_sample", static_cast<std::int64_t>(n),
                "vertices");
  LevelAssignment la;
  la.level_.assign(n, 0);
  // Step-synchronous process as in the paper; stops at the first step in
  // which no vertex advances.
  std::vector<Vertex> active(n);
  for (Vertex v = 0; v < n; ++v) active[v] = v;
  unsigned lambda = 0;
  while (!active.empty()) {
    ++lambda;
    std::vector<Vertex> next;
    next.reserve(active.size() / 2 + 1);
    for (Vertex v : active) {
      if (rng.flip(0.5)) {
        la.level_[v] = lambda;
        next.push_back(v);
      }
    }
    if (next.empty()) break;
    la.max_level_ = lambda;
    active = std::move(next);
  }
  return la;
}

LevelAssignment LevelAssignment::from_levels(std::vector<unsigned> levels) {
  LevelAssignment la;
  la.level_ = std::move(levels);
  la.max_level_ = la.level_.empty()
                      ? 0
                      : *std::max_element(la.level_.begin(), la.level_.end());
  return la;
}

std::vector<Vertex> LevelAssignment::vertices_at_or_above(
    unsigned lambda) const {
  std::vector<Vertex> out;
  for (Vertex v = 0; v < num_vertices(); ++v) {
    if (level_[v] >= lambda) out.push_back(v);
  }
  return out;
}

}  // namespace pmte
