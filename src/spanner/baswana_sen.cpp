#include "src/spanner/baswana_sen.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/util/assertions.hpp"

namespace pmte {

namespace {

constexpr std::int64_t kUnclustered = -1;

/// Lightest edge from v to each adjacent cluster among alive edges.
/// Ties are broken towards the lexicographically smaller neighbour so the
/// algorithm is deterministic given the sampling coins.  The map is
/// iterated when retiring a vertex (its entries become spanner edges), so
/// it must have a specified order: std::map walks clusters ascending,
/// identically on every standard library.
struct ClusterEdges {
  // cluster id → (weight, neighbour), ordered by cluster id
  std::map<std::int64_t, std::pair<Weight, Vertex>> lightest;

  void offer(std::int64_t cluster, Weight w, Vertex nb) {
    auto it = lightest.find(cluster);
    if (it == lightest.end() || w < it->second.first ||
        (w == it->second.first && nb < it->second.second)) {
      lightest[cluster] = {w, nb};
    }
  }
};

}  // namespace

SpannerResult baswana_sen_spanner(const Graph& g, unsigned k, Rng& rng) {
  PMTE_CHECK(k >= 1, "spanner parameter k must be >= 1");
  const Vertex n = g.num_vertices();
  SpannerResult out;
  out.k = k;
  if (k == 1 || n <= 2) {
    out.spanner = Graph::from_edges(n, g.edge_list());
    out.edges = out.spanner.num_edges();
    return out;
  }

  const double sample_p =
      std::pow(static_cast<double>(std::max<Vertex>(n, 2)), -1.0 / k);

  std::vector<std::int64_t> cluster(n);
  for (Vertex v = 0; v < n; ++v) cluster[v] = v;

  auto edges = g.edge_list();
  std::vector<bool> alive(edges.size(), true);
  std::vector<WeightedEdge> spanner_edges;

  auto adjacency = [&]() {
    std::vector<std::vector<std::size_t>> adj(n);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (!alive[i]) continue;
      adj[edges[i].u].push_back(i);
      adj[edges[i].v].push_back(i);
    }
    return adj;
  };

  for (unsigned round = 1; round <= k - 1; ++round) {
    // Sample surviving clusters.  Cluster ids live in [0, n) (they are
    // founding-vertex ids), so dense masks replace hash sets and the
    // sampling coins are consumed in ascending cluster order — the coin
    // sequence is a pure function of (graph, seed), not of any hash
    // table's iteration order.
    std::vector<char> current(n, 0);
    for (Vertex v = 0; v < n; ++v) {
      if (cluster[v] != kUnclustered) current[cluster[v]] = 1;
    }
    std::vector<char> sampled(n, 0);
    for (Vertex c = 0; c < n; ++c) {
      if (current[c] && rng.flip(sample_p)) sampled[c] = 1;
    }
    const auto adj = adjacency();
    std::vector<std::int64_t> next_cluster(cluster);
    for (Vertex v = 0; v < n; ++v) {
      if (cluster[v] == kUnclustered) continue;
      if (sampled[cluster[v]]) continue;  // carried over verbatim

      ClusterEdges ce;
      for (std::size_t ei : adj[v]) {
        const auto& e = edges[ei];
        const Vertex nb = e.u == v ? e.v : e.u;
        if (cluster[nb] == kUnclustered || cluster[nb] == cluster[v]) continue;
        ce.offer(cluster[nb], e.weight, nb);
      }
      // Lightest edge into a *sampled* adjacent cluster, if any.
      bool have_sampled = false;
      std::int64_t best_cluster = kUnclustered;
      Weight best_w = inf_weight();
      Vertex best_nb = no_vertex();
      for (const auto& [c, wn] : ce.lightest) {
        if (!sampled[c]) continue;
        if (!have_sampled || wn.first < best_w ||
            (wn.first == best_w && wn.second < best_nb)) {
          have_sampled = true;
          best_cluster = c;
          best_w = wn.first;
          best_nb = wn.second;
        }
      }
      auto discard_edges_to = [&](std::int64_t c) {
        for (std::size_t ei : adj[v]) {
          if (!alive[ei]) continue;
          const auto& e = edges[ei];
          const Vertex nb = e.u == v ? e.v : e.u;
          if (cluster[nb] == c) alive[ei] = false;
        }
      };
      if (!have_sampled) {
        // Retire v: keep the lightest edge to every adjacent cluster.
        for (const auto& [c, wn] : ce.lightest) {
          spanner_edges.push_back(WeightedEdge{v, wn.second, wn.first});
          discard_edges_to(c);
        }
        next_cluster[v] = kUnclustered;
      } else {
        // Join the sampled cluster; keep strictly lighter cluster edges.
        spanner_edges.push_back(WeightedEdge{v, best_nb, best_w});
        next_cluster[v] = best_cluster;
        discard_edges_to(best_cluster);
        for (const auto& [c, wn] : ce.lightest) {
          if (c == best_cluster) continue;
          if (wn.first < best_w) {
            spanner_edges.push_back(WeightedEdge{v, wn.second, wn.first});
            discard_edges_to(c);
          }
        }
      }
    }
    cluster = std::move(next_cluster);
    // Intra-cluster edges never re-enter consideration.
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (!alive[i]) continue;
      const auto cu = cluster[edges[i].u];
      const auto cv = cluster[edges[i].v];
      if (cu != kUnclustered && cu == cv) alive[i] = false;
    }
  }

  // Phase 2: lightest edge from every vertex to each adjacent final cluster.
  {
    const auto adj = adjacency();
    for (Vertex v = 0; v < n; ++v) {
      ClusterEdges ce;
      for (std::size_t ei : adj[v]) {
        const auto& e = edges[ei];
        const Vertex nb = e.u == v ? e.v : e.u;
        if (cluster[nb] == kUnclustered) continue;
        if (cluster[v] != kUnclustered && cluster[nb] == cluster[v]) continue;
        ce.offer(cluster[nb], e.weight, nb);
      }
      for (const auto& [c, wn] : ce.lightest) {
        spanner_edges.push_back(WeightedEdge{v, wn.second, wn.first});
      }
    }
  }

  // Cluster spanning trees: the join edges added in phase 1 already form
  // them (each member connected towards its centre chain).  Merging via
  // Graph::from_edges deduplicates.
  out.spanner = Graph::from_edges(n, std::move(spanner_edges));
  out.edges = out.spanner.num_edges();
  return out;
}

}  // namespace pmte
