#pragma once
// Baswana–Sen randomised (2k−1)-spanner [8], used by Theorem 6.2 and
// Corollary 7.11 to trade stretch for work: the spanner has O(k·n^{1+1/k})
// edges in expectation and preserves all distances up to factor 2k−1.
//
// Implementation follows the original two-phase clustering algorithm:
// k−1 rounds of cluster sampling at rate n^{−1/k} where every vertex either
// joins a sampled neighbouring cluster via its lightest edge (also keeping
// every strictly lighter inter-cluster edge) or, if none is adjacent,
// keeps its lightest edge to *every* adjacent cluster and retires; phase 2
// connects every vertex to each adjacent surviving cluster.

#include "src/graph/graph.hpp"
#include "src/util/rng.hpp"

namespace pmte {

struct SpannerResult {
  Graph spanner;           ///< subgraph of g on the same vertex set
  unsigned k = 1;          ///< stretch parameter: stretch ≤ 2k−1
  std::size_t edges = 0;   ///< |E_S|
};

/// Compute a (2k−1)-spanner of connected g.  k = 1 returns g itself.
[[nodiscard]] SpannerResult baswana_sen_spanner(const Graph& g, unsigned k,
                                                Rng& rng);

}  // namespace pmte
