#pragma once
// The oracle for MBF-like queries on the simulated graph H (Section 5).
//
// H is complete, so one true iteration A_H x would cost Ω(n²).  Lemma 5.1
// rewrites the adjacency matrix as
//     A_H = ⊕_{λ=0}^{Λ} P_λ A_λ^d P_λ,
// with A_λ = (1+ε̂)^{Λ−λ}·A_{G'} and P_λ the projection onto vertices of
// level ≥ λ.  Because filtering is congruent (Corollary 2.17), the oracle
// evaluates the ~-equivalent
//     (r^V ⊕_λ P_λ (r^V A_λ)^d P_λ)^h r^V x⁽⁰⁾            (Equation 5.9)
// using only the edges of G' — d·(Λ+1) cheap iterations per H-iteration,
// with intermediate filtering keeping every state small (Theorem 5.2).
//
// The oracle works for any algebra that additionally exposes an aggregation
// of two states (the module ⊕, needed to sum the per-level partials).

#include <concepts>
#include <vector>

#include "src/mbf/engine.hpp"
#include "src/simgraph/simulated_graph.hpp"

namespace pmte {

template <typename A>
concept OracleAlgebra =
    MbfAlgebra<A> && requires(const A& alg, typename A::State& acc,
                              const typename A::State& y) {
      { alg.aggregate(acc, y) };  // acc ⊕= y in the semimodule
    };

/// Statistics of an oracle run (depth/work proxies for Theorem 5.2).
struct OracleStats {
  unsigned h_iterations = 0;       ///< iterations on H
  unsigned base_iterations = 0;    ///< MBF iterations executed on G'
  bool reached_fixpoint = false;
};

/// One simulated H-iteration:  x ↦ r^V ⊕_λ P_λ (r^V A_λ)^d P_λ x.
template <OracleAlgebra Algebra>
[[nodiscard]] std::vector<typename Algebra::State> oracle_step(
    const SimulatedGraph& h, const Algebra& alg,
    const std::vector<typename Algebra::State>& x,
    unsigned* base_iterations = nullptr) {
  using State = typename Algebra::State;
  const Graph& gp = h.base();
  const Vertex n = gp.num_vertices();
  PMTE_CHECK(x.size() == n, "oracle_step: state size mismatch");

  auto project = [&](std::vector<State>& y, unsigned lambda) {
    // P_λ: discard entries at vertices below level λ (Equation (5.2)).
    parallel_for(y.size(), [&](std::size_t v) {
      if (h.levels().level(static_cast<Vertex>(v)) < lambda) {
        y[v] = alg.bottom();
      }
    });
  };

  std::vector<State> acc(n);
  parallel_for(n, [&](std::size_t v) { acc[v] = alg.bottom(); });

  // One frontier engine, reset per level: x is already filtered and P_λ
  // preserves that (r ⊥ = ⊥, r idempotent), so the initial filter is
  // skipped; the double buffers are recycled across all Λ+1 levels.
  MbfEngine<Algebra> engine(gp, alg, MbfOptions{.filter_initial = false});
  for (unsigned lambda = 0; lambda <= h.max_level(); ++lambda) {
    std::vector<State> y = x;
    project(y, lambda);
    engine.set_weight_scale(h.level_scale(lambda));
    engine.reset(std::move(y));
    // Early exit at the per-level fixpoint: r^V A_λ is idempotent once
    // the states stop changing, so the remaining d − step applications
    // are no-ops.  With hub hop sets the fixpoint typically arrives after
    // a handful of iterations although d ∈ Θ(√n) — and the frontier
    // collapses along the way, so late iterations relax almost no edges.
    for (unsigned step = 0; step < h.hop_bound(); ++step) {
      const bool changed = engine.step();
      if (base_iterations != nullptr) ++*base_iterations;
      if (!changed) break;
    }
    auto y_out = engine.take_states();
    project(y_out, lambda);
    parallel_for(n, [&](std::size_t v) { alg.aggregate(acc[v], y_out[v]); });
  }
  mbf_filter(alg, acc);
  return acc;
}

/// Run the MBF-like algorithm `alg` on H until its filtered fixpoint
/// (≤ SPD(H) ∈ O(log² n) iterations w.h.p., Theorem 4.5) or until
/// `max_h_iterations`.
template <OracleAlgebra Algebra>
[[nodiscard]] MbfRun<typename Algebra::State> oracle_run(
    const SimulatedGraph& h, const Algebra& alg,
    std::vector<typename Algebra::State> x0, unsigned max_h_iterations,
    OracleStats* stats = nullptr) {
  MbfRun<typename Algebra::State> run;
  mbf_filter(alg, x0);  // r^V x⁽⁰⁾
  run.states = std::move(x0);
  unsigned base_iters = 0;
  for (unsigned i = 0; i < max_h_iterations; ++i) {
    auto next = oracle_step(h, alg, run.states, &base_iters);
    ++run.iterations;
    const bool same = mbf_states_equal(alg, next, run.states);
    run.states = std::move(next);
    if (same) {
      run.reached_fixpoint = true;
      break;
    }
  }
  if (stats != nullptr) {
    stats->h_iterations = run.iterations;
    stats->base_iterations = base_iters;
    stats->reached_fixpoint = run.reached_fixpoint;
  }
  return run;
}

}  // namespace pmte
