#pragma once
// The oracle for MBF-like queries on the simulated graph H (Section 5).
//
// H is complete, so one true iteration A_H x would cost Ω(n²).  Lemma 5.1
// rewrites the adjacency matrix as
//     A_H = ⊕_{λ=0}^{Λ} P_λ A_λ^d P_λ,
// with A_λ = (1+ε̂)^{Λ−λ}·A_{G'} and P_λ the projection onto vertices of
// level ≥ λ.  Because filtering is congruent (Corollary 2.17), the oracle
// evaluates the ~-equivalent
//     (r^V ⊕_λ P_λ (r^V A_λ)^d P_λ)^h r^V x⁽⁰⁾            (Equation 5.9)
// using only the edges of G' — d·(Λ+1) cheap iterations per H-iteration,
// with intermediate filtering keeping every state small (Theorem 5.2).
//
// The oracle works for any algebra that additionally exposes an aggregation
// of two states (the module ⊕, needed to sum the per-level partials).
//
// == Level reuse (MbfOracle) ==
//
// The reference evaluation (MbfOptions::oracle_level_reuse = false, the
// pre-reuse behaviour) is a Jacobi iteration: every H-iteration restarts
// every level from a dense full-frontier copy of x — Θ(log n) full runs per
// H-iteration, Θ(log² n) overall, each re-deriving mostly what the previous
// one already knew.  With reuse enabled, MbfOracle instead computes the
// *same fixpoint* sparsely:
//
//   * Per-level state caches.  Each level keeps the (unprojected) final
//     states of its last run.  A run that reached its fixpoint cached the
//     closure of its input — the strongest possible domination context.
//   * Absorbed-input skips.  A level only re-runs for inputs its cached
//     closure does not already dominate: by congruence (Corollary 2.17),
//     merging absorbed entries and propagating them cannot change the
//     filtered result, so the run is skipped or warm-restarted with the
//     unabsorbed vertices as the frontier.  Warm restarts are exact by the
//     semimodule decomposition r(A^d(x ⊕ δ)) = r(A^d x ⊕ A^d δ): the
//     cached closure is A^d x, only the δ-wave needs propagating.  Levels
//     whose previous run was truncated by the d-step budget fall back to a
//     full support-seeded start (a truncation is not a closure).
//   * Support-seeded full starts.  P_λ x assigns ⊥ below level λ, and ⊥
//     makes no offers, so even a full (re)start seeds its frontier with
//     supp(P_λ x) — for high levels a vanishing fraction of V — instead of
//     the all-vertices frontier of the reference path.
//   * Gauss–Seidel sweeps.  One step() is a sweep over the levels in
//     *descending* order (largest λ first = smallest penalty (1+ε̂)^{Λ−λ}),
//     merging each level's projected output into the working vector
//     immediately.  Later levels therefore see the strongest entries
//     up front and absorb them instead of first deriving weaker ones that
//     the next Jacobi iteration would discard — this is what collapses the
//     per-H-iteration re-flooding.  Per-vertex change stamps tell every
//     level exactly which inputs changed since it last ran, across and
//     within sweeps (the cross-H-iteration frontier).
//
// Both schedules are fair monotone fixpoint iterations of the same
// component operators F_λ = P_λ (r^V A_λ)^d P_λ over an idempotent
// semimodule of finite height, so they converge to the same least fixpoint
// (chaotic-iteration theorem) — the final states are bit-identical, which
// the differential tests check.  Intermediate iterates differ: with reuse,
// step() is a sweep, not an application of Equation (5.9)'s operator.
//
// == Dynamic updates (update()) ==
//
// The change-stamp machinery doubles as the delta-propagation substrate
// for edge-weight updates of G' (docs/DYNAMIC.md).  The engine reads
// weights live from the graph on every relaxation, so after the caller
// mutates the shared graph, update() only has to decide what the caches
// are still worth: a *decrease* keeps every cached closure a dominated
// lower bound of the new fixpoint (cached entries are old-weight path
// sums, absorbed by the cheaper metric), so iteration continues in place
// with the edge endpoints forced into every level's frontier; an
// *increase* can strand entries the monotone iteration cannot revoke, so
// the caches reset wholesale and the caller re-runs from scratch —
// bit-identical to a freshly built oracle either way, which
// tests/test_dynamic.cpp pins against full rebuilds.

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

#include "src/mbf/engine.hpp"
#include "src/obs/obs.hpp"
#include "src/simgraph/simulated_graph.hpp"

namespace pmte {

#if PMTE_OBS
namespace obs_detail {

/// Oracle-wide instruments, bound once on first use.  The outcome-labelled
/// counters mirror OracleStats' per-run ledger as a cumulative process-wide
/// stream (all logical counts — deterministic, ungated; the per-scenario
/// values stay gated through BENCH_*.json).
struct OracleObs {
  obs::Counter& skipped;
  obs::Counter& warm;
  obs::Counter& full;
  obs::Histogram& level_base_iters;
};

inline OracleObs& oracle_obs() {
  auto& reg = obs::registry();
  static OracleObs o{
      reg.counter("pmte_oracle_levels_total", {{"outcome", "skipped"}},
                  "Per-(sweep, level) run outcomes"),
      reg.counter("pmte_oracle_levels_total", {{"outcome", "warm"}},
                  "Per-(sweep, level) run outcomes"),
      reg.counter("pmte_oracle_levels_total", {{"outcome", "full"}},
                  "Per-(sweep, level) run outcomes"),
      reg.histogram("pmte_oracle_level_base_iterations", {},
                    "Base MBF iterations per executed level run (logical "
                    "value — deterministic bucket counts)"),
  };
  return o;
}

}  // namespace obs_detail
#endif  // PMTE_OBS

template <typename A>
concept OracleAlgebra =
    MbfAlgebra<A> && requires(const A& alg, typename A::State& acc,
                              const typename A::State& y) {
      { alg.aggregate(acc, y) };  // acc ⊕= y in the semimodule
    };

/// Outcome of MbfOracle::update (see the member doc).
enum class OracleUpdateKind : std::uint8_t {
  kIncremental,  ///< weight decrease absorbed; continue stepping in place
  kInvalidated,  ///< weight increase; caches reset — restart from r^V x⁽⁰⁾
};

/// Statistics of an oracle run (depth/work proxies for Theorem 5.2).
struct OracleStats {
  unsigned h_iterations = 0;       ///< H-iterations (sweeps, with reuse)
  unsigned base_iterations = 0;    ///< MBF iterations executed on G'
  bool reached_fixpoint = false;
  /// Level-reuse accounting across all sweeps: per (sweep, level) pair
  /// exactly one of the three counters advances.
  unsigned levels_skipped = 0;  ///< runs skipped (input unchanged/absorbed)
  unsigned levels_warm = 0;     ///< warm restarts from a cached closure
  unsigned levels_full = 0;     ///< full support-seeded (re)starts
};

/// Stateful oracle: one engine plus per-level state caches, reused across
/// H-iterations.  The simulated graph and the algebra must outlive it.
template <OracleAlgebra Algebra>
class MbfOracle {
 public:
  using State = typename Algebra::State;

  MbfOracle(const SimulatedGraph& h, const Algebra& alg, MbfOptions opts = {})
      : h_(&h),
        alg_(&alg),
        opts_(opts),
        engine_(h.base(), alg, engine_options(opts)),
        bottom_(alg.bottom()) {
    const unsigned levels = h.max_level() + 1;
    cache_.resize(levels);
    cache_state_.assign(levels, CacheState::kEmpty);
    level_vertices_.resize(levels);
    for (unsigned lambda = 0; lambda < levels; ++lambda) {
      level_vertices_[lambda] = h.levels().vertices_at_or_above(lambda);
    }
    stamp_.assign(h.num_vertices(), 0);
    last_scan_.assign(levels, 0);
  }

  /// One H-iteration.  With reuse: a Gauss–Seidel sweep whose input `x`
  /// must be the previous step()'s return value, with `changed` the sorted
  /// vertex list where the caller's x differs from it (nullptr = treat
  /// every vertex as changed).  Without reuse: the Jacobi reference
  /// operator of Equation (5.9), x ↦ r^V ⊕_λ P_λ (r^V A_λ)^d P_λ x.
  [[nodiscard]] std::vector<State> step(
      const std::vector<State>& x,
      const std::vector<Vertex>* changed = nullptr) {
    PMTE_CHECK(x.size() == h_->base().num_vertices(),
               "MbfOracle::step: state size mismatch");
    ++stats_.h_iterations;
    PMTE_OBS_SPAN("oracle.step",
                  static_cast<std::int64_t>(stats_.h_iterations),
                  "h_iteration");
    return opts_.oracle_level_reuse ? sweep(x, changed) : jacobi_step(x);
  }

  /// Absorb one already-applied edge-weight change of G'.  The caller
  /// mutates the shared graph *first* (several oracles may observe one H,
  /// so the oracle never mutates it); `edge` carries the OLD weight and
  /// `new_weight` must equal the weight now stored in the graph.
  ///
  /// A decrease is incremental (kIncremental): every kFixpoint cache stays
  /// a valid warm-restart seed — its entries are old-weight path sums,
  /// each dominated by the same path under the cheaper metric, so the new
  /// least fixpoint absorbs them (r(F* ⊕ F_old) = F*) and monotone
  /// iteration from F_old converges to exactly F*.  The edge endpoints are
  /// the only vertices whose *offers* changed while their states did not,
  /// so they are forced into every level's frontier on the next sweep and
  /// the absorbed-input skips are suppressed until each level has re-run
  /// once.  Continue with step(x, &empty) — an empty changed list, not
  /// nullptr: the states did not change, the weights did — until the
  /// changed set drains (oracle_run's loop shape).
  ///
  /// An increase can strand too-strong cached entries that monotone
  /// iteration cannot revoke, so the oracle resets to its freshly
  /// constructed state (kInvalidated) and the caller re-runs from
  /// r^V x⁽⁰⁾ — bit-identical to a brand-new oracle on the mutated graph.
  OracleUpdateKind update(const WeightedEdge& edge, Weight new_weight) {
    PMTE_CHECK(edge.u != edge.v && edge.u < h_->num_vertices() &&
                   edge.v < h_->num_vertices(),
               "MbfOracle::update: invalid edge");
    PMTE_CHECK(h_->base().edge_weight(edge.u, edge.v) == new_weight,
               "MbfOracle::update: apply the new weight to the graph first");
    if (new_weight > edge.weight) {
      invalidate_all();
      return OracleUpdateKind::kInvalidated;
    }
    // Accumulate endpoints across updates (sorted, duplicate-free — the
    // engine's frontier contract).
    for (const Vertex v : {edge.u, edge.v}) {
      const auto it =
          std::lower_bound(pending_touch_.begin(), pending_touch_.end(), v);
      if (it == pending_touch_.end() || *it != v) pending_touch_.insert(it, v);
    }
    return OracleUpdateKind::kIncremental;
  }

  /// Reset every cache and stamp to the freshly-constructed state (only
  /// stats_ stays cumulative — snapshot it around the call to difference).
  /// The next step(x⁽⁰⁾, nullptr) sequence is bit-identical to a brand-new
  /// oracle on the graph's current weights.
  void invalidate_all() {
    for (auto& c : cache_) c.clear();
    std::fill(cache_state_.begin(), cache_state_.end(), CacheState::kEmpty);
    std::fill(stamp_.begin(), stamp_.end(), 0);
    std::fill(last_scan_.begin(), last_scan_.end(), 0);
    event_ = 1;
    sweep_count_ = 0;
    pending_touch_.clear();
  }

  [[nodiscard]] const OracleStats& stats() const noexcept { return stats_; }

 private:
  enum class CacheState : std::uint8_t { kEmpty, kTruncated, kFixpoint };

  static MbfOptions engine_options(MbfOptions opts) {
    // Per-level inputs are filtered (P_λ preserves that: r ⊥ = ⊥, r
    // idempotent) and warm seeds are filtered on merge.
    opts.filter_initial = false;
    // With reuse, force sparse gathers: a relax is a semimodule merge —
    // for the map-valued oracle algebras far more expensive than the
    // byte-sized frontier membership test the dense pull avoids — so the
    // kAuto density heuristic (tuned for scalar states) picks the slower
    // round shape here.  Measured on the 2048-path LE pipeline, sparse
    // rounds cut relaxations ~2× *and* wall time ~1.4×.  kDense remains
    // available as the escape hatch; the reference path (no reuse) keeps
    // the caller's mode to stay comparable with the pre-reuse behaviour.
    if (opts.oracle_level_reuse && opts.mode == MbfMode::kAuto) {
      opts.mode = MbfMode::kSparse;
    }
    return opts;
  }

  // Run the engine for at most d steps (the A_λ^d budget of Lemma 5.1)
  // and store the resulting states in the level cache, remembering whether
  // they are a genuine closure (fixpoint reached) or a d-truncation.
  void run_and_cache(unsigned lambda) {
    PMTE_OBS_SPAN("oracle.level_run", static_cast<std::int64_t>(lambda),
                  "level");
    PMTE_OBS_ONLY(const unsigned base_before = stats_.base_iterations);
    bool fixpoint = false;
    for (unsigned s = 0; s < h_->hop_bound(); ++s) {
      const bool stepped = engine_.step();
      ++stats_.base_iterations;
      if (!stepped) {
        fixpoint = true;
        break;
      }
    }
    fixpoint = fixpoint || engine_.at_fixpoint();
    cache_[lambda] = engine_.take_states();
    cache_state_[lambda] =
        fixpoint ? CacheState::kFixpoint : CacheState::kTruncated;
    PMTE_OBS_ONLY(if (obs::metrics_on()) {
      obs_detail::oracle_obs().level_base_iters.record(
          stats_.base_iterations - base_before);
    });
  }

  // Full support-seeded start: seed = P_λ x, frontier = supp(P_λ x) (⊥
  // entries make no offers, so they need not enter the frontier).
  void full_start(unsigned lambda, const std::vector<State>& x) {
    ++stats_.levels_full;
    PMTE_OBS_ONLY(if (obs::metrics_on()) obs_detail::oracle_obs().full.add(1));
    std::vector<State> seed = std::move(cache_[lambda]);
    seed.resize(x.size());
    buffers_.clear();
    parallel_for(x.size(), [&](std::size_t vi) {
      const auto v = static_cast<Vertex>(vi);
      if (h_->levels().level(v) >= lambda) {
        seed[vi] = x[vi];
        if (!alg_->equal(seed[vi], bottom_)) buffers_.local().push_back(v);
      } else {
        seed[vi] = alg_->bottom();
      }
    });
    buffers_.drain_sorted(support_);
    engine_.reset_with_frontier(std::move(seed), support_);
    run_and_cache(lambda);
  }

  // ---------------------------------------------------------------------
  // Reference path (oracle_level_reuse = false): the pre-reuse Jacobi
  // operator — every level restarts from a full-frontier copy of x.
  std::vector<State> jacobi_step(const std::vector<State>& x) {
    const std::size_t n = x.size();
    std::vector<State> acc(n);
    parallel_for(n, [&](std::size_t v) { acc[v] = alg_->bottom(); });
    for (unsigned lambda = 0; lambda <= h_->max_level(); ++lambda) {
      engine_.set_weight_scale(h_->level_scale(lambda));
      ++stats_.levels_full;
      PMTE_OBS_ONLY(
          if (obs::metrics_on()) obs_detail::oracle_obs().full.add(1));
      std::vector<State> seed = std::move(cache_[lambda]);
      seed.resize(n);
      parallel_for(n, [&](std::size_t vi) {
        seed[vi] = h_->levels().level(static_cast<Vertex>(vi)) >= lambda
                       ? x[vi]
                       : alg_->bottom();
      });
      engine_.reset(std::move(seed));
      run_and_cache(lambda);
      // acc ⊕= P_λ cache: the projection applied on the fly — vertices
      // below level λ are simply not aggregated.
      const auto& z = cache_[lambda];
      parallel_for(n, [&](std::size_t vi) {
        if (h_->levels().level(static_cast<Vertex>(vi)) >= lambda) {
          alg_->aggregate(acc[vi], z[vi]);
        }
      });
      WorkDepth::add_depth_serial(1);
    }
    mbf_filter(*alg_, acc);
    return acc;
  }

  // ---------------------------------------------------------------------
  // Reuse path: one Gauss–Seidel sweep over the levels.  Sweep directions
  // alternate (ascending λ first): min-hop shortest paths in H climb the
  // level hierarchy monotonically and then descend (Lemma 4.3), so an
  // ascending sweep cascades the whole climb — every level consumes the
  // fresh output of the levels below it — and the following descending
  // sweep cascades the whole descent.  One up/down pair propagates an
  // entire H-path where the Jacobi operator needs Θ(SPD(H)) iterations.
  std::vector<State> sweep(const std::vector<State>& x,
                           const std::vector<Vertex>* changed) {
    const std::size_t n = x.size();
    std::vector<State> y = x;  // the working vector the sweep improves

    // Record the caller's changes (everything on the first call / when the
    // changed set is unknown) so each level picks them up via its stamp.
    if (changed == nullptr) {
      for (std::size_t v = 0; v < n; ++v) stamp_[v] = event_;
    } else {
      for (const Vertex v : *changed) stamp_[v] = event_;
    }
    ++event_;

    const unsigned top = h_->max_level();
    // A pending edge touch (update(): a decrease already applied to the
    // graph) suppresses the skip fast paths for one full sweep: the
    // caches are still dominated seeds, but the endpoints' offers changed
    // without any state changing, which the stamps cannot see.  Every
    // level re-runs once with the endpoints in its frontier; after the
    // sweep the stamps carry all remaining propagation.
    const bool touched = !pending_touch_.empty();
    const bool ascending = (sweep_count_++ % 2 == 0);
    for (unsigned idx = 0; idx <= top; ++idx) {
      const unsigned lambda = ascending ? idx : top - idx;
      engine_.set_weight_scale(h_->level_scale(lambda));
      const std::uint64_t since = last_scan_[lambda];

      if (cache_state_[lambda] == CacheState::kEmpty) {
        full_start(lambda, y);
      } else {
        // C_λ: inputs that changed since this level last consumed them.
        // The level's own merged output is deliberately invisible (see
        // merge_output): every other component of y at a V_λ vertex was
        // stamped when it arrived and consumed in that sweep, so only
        // genuinely external changes survive here.
        changed_level_.clear();
        for (const Vertex v : level_vertices_[lambda]) {
          if (stamp_[v] >= since) changed_level_.push_back(v);
        }
        if (changed_level_.empty() && !touched) {
          // Unchanged input — and y already absorbed this cache when it
          // was last merged, so even the output merge is a no-op.
          ++stats_.levels_skipped;
          PMTE_OBS_ONLY(
              if (obs::metrics_on()) obs_detail::oracle_obs().skipped.add(1));
          last_scan_[lambda] = event_;
          continue;
        }
        if (cache_state_[lambda] == CacheState::kTruncated) {
          // A truncation is not a closure — no exact warm restart exists;
          // redo the level from the projected input.
          full_start(lambda, y);
        } else {
          // Warm restart from the cached closure.  The frontier is not
          // C_λ but its *unabsorbed* subset: the cache is the closure of
          // the previous input, so inputs it dominates are entries the
          // level's own run already derived — merging them is a no-op and
          // an absorbed vertex makes no new offers.
          std::vector<State> seed = std::move(cache_[lambda]);
          buffers_.clear();
          parallel_for(changed_level_.size(), [&](std::size_t i) {
            const Vertex v = changed_level_[i];
            State merged = seed[v];
            alg_->aggregate(merged, y[v]);
            alg_->filter(merged);
            if (!alg_->equal(merged, seed[v])) {
              seed[v] = std::move(merged);
              buffers_.local().push_back(v);
            }
          });
          buffers_.drain_sorted(delta_);
          if (touched) {
            // The endpoints re-offer over the re-weighted edge even when
            // their own states are absorbed (their seeds are the cached
            // values — it is the incident weight that changed).
            scratch_union_.clear();
            std::set_union(delta_.begin(), delta_.end(),
                           pending_touch_.begin(), pending_touch_.end(),
                           std::back_inserter(scratch_union_));
            delta_.swap(scratch_union_);
          }
          if (delta_.empty()) {
            // y ⊆ cache modulo domination: the run would reproduce the
            // cache (r(cache ⊕ A^d δ) = cache for absorbed δ) — skip.
            ++stats_.levels_skipped;
            PMTE_OBS_ONLY(if (obs::metrics_on()) {
              obs_detail::oracle_obs().skipped.add(1);
            });
            cache_[lambda] = std::move(seed);
            last_scan_[lambda] = event_;
            continue;
          }
          ++stats_.levels_warm;
          PMTE_OBS_ONLY(
              if (obs::metrics_on()) obs_detail::oracle_obs().warm.add(1));
          engine_.reset_with_frontier(std::move(seed), delta_);
          run_and_cache(lambda);
        }
      }
      merge_output(lambda, y);
      // Post-merge: the level's own output stamps (event_ − 1) stay below
      // the new scan mark, so it will not re-consume them next sweep.
      last_scan_[lambda] = event_;
    }
    // Every level consumed the touch exactly once this sweep.
    if (touched) pending_touch_.clear();
    return y;
  }

  // y ⊕= P_λ cache_[λ] (Gauss–Seidel: the level's output feeds every
  // later level of this sweep).  Vertices whose y improves are stamped so
  // the other levels see them as changed inputs; the caller then advances
  // its own scan mark past the stamp, so a level never re-consumes its
  // own output — which its own closure would absorb anyway.
  void merge_output(unsigned lambda, std::vector<State>& y) {
    const auto& z = cache_[lambda];
    const auto& verts = level_vertices_[lambda];
    buffers_.clear();
    parallel_for(verts.size(), [&](std::size_t i) {
      const Vertex v = verts[i];
      State merged = y[v];
      alg_->aggregate(merged, z[v]);
      alg_->filter(merged);
      if (!alg_->equal(merged, y[v])) {
        y[v] = std::move(merged);
        buffers_.local().push_back(v);
      }
    });
    buffers_.drain_sorted(merged_);
    for (const Vertex v : merged_) stamp_[v] = event_;
    ++event_;
    WorkDepth::add_depth_serial(1);
  }

  const SimulatedGraph* h_;
  const Algebra* alg_;
  MbfOptions opts_;
  MbfEngine<Algebra> engine_;
  State bottom_;
  std::vector<std::vector<State>> cache_;  // per level, unprojected
  std::vector<CacheState> cache_state_;
  std::vector<std::vector<Vertex>> level_vertices_;  // V_λ, ascending
  std::vector<std::uint64_t> stamp_;      // per vertex: last y change
  std::vector<std::uint64_t> last_scan_;  // per level: last consumption
  std::uint64_t event_ = 1;
  std::uint64_t sweep_count_ = 0;
  std::vector<Vertex> changed_level_;  // C_λ scratch
  std::vector<Vertex> delta_;          // unabsorbed subset of C_λ scratch
  std::vector<Vertex> support_;        // supp(P_λ x) scratch
  std::vector<Vertex> merged_;         // per-merge changed list scratch
  std::vector<Vertex> pending_touch_;  // update() endpoints, sorted unique
  std::vector<Vertex> scratch_union_;  // delta_ ∪ pending_touch_ scratch
  PerThreadBuffers<Vertex> buffers_;
  OracleStats stats_;
};

/// One stateless simulated H-iteration per Equation (5.9) (reference
/// semantics, no reuse — a fresh Jacobi MbfOracle per call).  Prefer
/// MbfOracle / oracle_run when iterating to a fixpoint.
template <OracleAlgebra Algebra>
[[nodiscard]] std::vector<typename Algebra::State> oracle_step(
    const SimulatedGraph& h, const Algebra& alg,
    const std::vector<typename Algebra::State>& x,
    unsigned* base_iterations = nullptr) {
  MbfOracle<Algebra> oracle(h, alg, MbfOptions{.oracle_level_reuse = false});
  auto out = oracle.step(x);
  if (base_iterations != nullptr) {
    *base_iterations += oracle.stats().base_iterations;
  }
  return out;
}

/// Run the MBF-like algorithm `alg` on H until its filtered fixpoint
/// (≤ SPD(H) ∈ O(log² n) iterations w.h.p., Theorem 4.5) or until
/// `max_h_iterations`.  The changed set between consecutive H-iterations
/// is threaded into MbfOracle::step, so levels whose inputs did not change
/// (or are absorbed by their cached closure) are skipped wholesale and the
/// rest warm-restart.
template <OracleAlgebra Algebra>
[[nodiscard]] MbfRun<typename Algebra::State> oracle_run(
    const SimulatedGraph& h, const Algebra& alg,
    std::vector<typename Algebra::State> x0, unsigned max_h_iterations,
    OracleStats* stats = nullptr, MbfOptions opts = {}) {
  MbfRun<typename Algebra::State> run;
  mbf_filter(alg, x0);  // r^V x⁽⁰⁾
  run.states = std::move(x0);
  MbfOracle<Algebra> oracle(h, alg, opts);
  PerThreadBuffers<Vertex> buffers;
  std::vector<Vertex> changed;  // vs the previous H-iteration, sorted
  const std::vector<Vertex>* changed_ptr = nullptr;
  for (unsigned i = 0; i < max_h_iterations; ++i) {
    auto next = oracle.step(run.states, changed_ptr);
    ++run.iterations;
    // Fixpoint test and cross-H-iteration frontier in one pass.
    buffers.clear();
    parallel_for(next.size(), [&](std::size_t v) {
      if (!alg.equal(next[v], run.states[v])) {
        buffers.local().push_back(static_cast<Vertex>(v));
      }
    });
    buffers.drain_sorted(changed);
    run.states = std::move(next);
    if (changed.empty()) {
      run.reached_fixpoint = true;
      break;
    }
    changed_ptr = &changed;
  }
  if (stats != nullptr) {
    *stats = oracle.stats();
    stats->h_iterations = run.iterations;
    stats->reached_fixpoint = run.reached_fixpoint;
  }
  return run;
}

}  // namespace pmte
