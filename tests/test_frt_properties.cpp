// Randomized FRT-embedding property tests (Sections 7.1–7.4) over the
// shared small-graph corpus: on ~50 seeded connected graphs the sampled
// tree metric must dominate the graph metric (the `dominating` weight rule
// guarantees dist_T ≥ dist_G deterministically, DESIGN.md), every
// per-sample stretch must be finite, and the scale hierarchy must shrink
// geometrically (ball radii double per level, cluster counts are
// monotone, and the number of levels is logarithmic in the weight spread).
#include <gtest/gtest.h>

#include <cmath>

#include "src/frt/pipelines.hpp"
#include "src/graph/shortest_paths.hpp"
#include "tests/support/fixtures.hpp"

namespace pmte {
namespace {

constexpr std::size_t kCorpusSize = 50;
constexpr std::uint64_t kCorpusSeed = 7001;

struct PairStats {
  double mean_stretch = 0.0;
  double max_stretch = 0.0;
};

/// Check dist_T ≥ dist_G and finiteness over all pairs; returns stretch
/// aggregates.  `slack` absorbs the floating-point associativity of the
/// oracle pipeline's scaled distances.
PairStats check_dominance(const Graph& g, const FrtSample& s,
                          const std::vector<Weight>& apsp,
                          const char* what, double slack = 1e-9) {
  const Vertex n = g.num_vertices();
  PairStats stats;
  std::size_t pairs = 0;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      const Weight dg = apsp[static_cast<std::size_t>(u) * n + v];
      EXPECT_TRUE(is_finite(dg)) << what << ": corpus graph disconnected";
      const Weight dt = s.tree.distance(u, v);
      EXPECT_TRUE(is_finite(dt))
          << what << ": infinite tree distance " << u << "-" << v;
      if (!is_finite(dg) || !is_finite(dt)) continue;
      EXPECT_GE(dt, dg * (1.0 - slack))
          << what << ": tree fails to dominate pair " << u << "-" << v;
      const double stretch = dt / dg;
      stats.mean_stretch += stretch;
      stats.max_stretch = std::max(stats.max_stretch, stretch);
      ++pairs;
    }
  }
  if (pairs > 0) stats.mean_stretch /= static_cast<double>(pairs);
  return stats;
}

TEST(FrtProperties, DirectPipelineDominatesGraphMetric) {
  const auto corpus = test::small_graph_corpus(kCorpusSize, kCorpusSeed);
  for (const auto& c : corpus) {
    Rng rng(c.seed);
    const auto s = sample_frt_direct(c.graph, rng);
    s.tree.validate();
    const auto apsp = exact_apsp(c.graph);
    const auto stats = check_dominance(c.graph, s, apsp, c.name.c_str());
    // Expected stretch is O(log n) (Theorem 7.1 via [16]); a single sample
    // fluctuates, so only a generous per-sample mean bound is asserted —
    // failures here mean the embedding, not bad luck (seeds are fixed).
    const double log_n =
        std::log(static_cast<double>(c.graph.num_vertices()));
    EXPECT_LT(stats.mean_stretch, 16.0 * (1.0 + log_n)) << c.name;
    EXPECT_GE(stats.max_stretch, 1.0 - 1e-9) << c.name;
  }
}

TEST(FrtProperties, OraclePipelineDominatesGraphMetric) {
  // The oracle pipeline embeds H whose distances dominate G's (every
  // H-edge weighs (1+ε̂)^{≥0}·dist^d ≥ dist), so dominance carries over.
  // A corpus slice keeps the hop-set construction affordable.
  const auto corpus = test::small_graph_corpus(kCorpusSize, kCorpusSeed);
  for (std::size_t i = 0; i < corpus.size(); i += 7) {
    const auto& c = corpus[i];
    Rng rng(c.seed);
    const auto s = sample_frt_oracle(c.graph, rng);
    s.tree.validate();
    const auto apsp = exact_apsp(c.graph);
    (void)check_dominance(c.graph, s, apsp, c.name.c_str(), 1e-6);
  }
}

TEST(FrtProperties, LevelsShrinkGeometrically) {
  const auto corpus = test::small_graph_corpus(kCorpusSize, kCorpusSeed);
  for (const auto& c : corpus) {
    Rng rng(c.seed);
    const auto s = sample_frt_direct(c.graph, rng);
    const Vertex n = c.graph.num_vertices();

    // Ball radii double per level...
    for (unsigned level = 0; level + 1 < s.tree.num_levels(); ++level) {
      EXPECT_DOUBLE_EQ(s.tree.scale(level + 1), 2.0 * s.tree.scale(level))
          << c.name;
    }

    // ...cluster counts shrink monotonically from n leaves to one root...
    std::vector<std::size_t> per_level(s.tree.num_levels(), 0);
    for (FrtTree::NodeId id = 0; id < s.tree.num_nodes(); ++id) {
      ++per_level[s.tree.node(id).level];
    }
    EXPECT_EQ(per_level.front(), static_cast<std::size_t>(n)) << c.name;
    EXPECT_EQ(per_level.back(), 1U) << c.name;
    for (std::size_t i = 0; i + 1 < per_level.size(); ++i) {
      EXPECT_LE(per_level[i + 1], per_level[i]) << c.name << ", level " << i;
    }

    // ...and the hierarchy height is logarithmic in the distance spread
    // (scales are geometric, so ⌈log₂(max/min)⌉ + O(1) levels suffice).
    const auto apsp = exact_apsp(c.graph);
    Weight dmin = inf_weight();
    Weight dmax = 0.0;
    for (const Weight d : apsp) {
      if (d > 0.0 && is_finite(d)) {
        dmin = std::min(dmin, d);
        dmax = std::max(dmax, d);
      }
    }
    const double spread_levels = std::ceil(std::log2(dmax / dmin));
    EXPECT_LE(static_cast<double>(s.tree.num_levels()), spread_levels + 4.0)
        << c.name;
  }
}

TEST(FrtProperties, SamplesAreSeedDeterministic) {
  const auto corpus = test::small_graph_corpus(6, kCorpusSeed + 1);
  for (const auto& c : corpus) {
    Rng rng_a(c.seed);
    Rng rng_b(c.seed);
    const auto a = sample_frt_direct(c.graph, rng_a);
    const auto b = sample_frt_direct(c.graph, rng_b);
    ASSERT_EQ(a.tree.num_nodes(), b.tree.num_nodes()) << c.name;
    for (Vertex u = 0; u < c.graph.num_vertices(); ++u) {
      for (Vertex v = u + 1; v < c.graph.num_vertices(); ++v) {
        EXPECT_EQ(a.tree.distance(u, v), b.tree.distance(u, v)) << c.name;
      }
    }
  }
}

}  // namespace
}  // namespace pmte
