// Cross-module consistency: independent implementations of the same
// quantity must agree (MBF engine vs matrix semiring vs Dijkstra vs
// Δ-stepping vs oracle), closing the loop across the whole library.
#include <gtest/gtest.h>

#include "src/frt/le_lists.hpp"
#include "src/graph/delta_stepping.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/mbf/algorithms.hpp"
#include "src/metric/matrix_apsp.hpp"

namespace pmte {
namespace {

class CrossModule : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Graph graph() {
    Rng rng(GetParam());
    return make_gnm(40, 90, {1.0, 6.0}, rng);
  }
};

TEST_P(CrossModule, FourApspImplementationsAgree) {
  const auto g = graph();
  const Vertex n = g.num_vertices();
  const auto a = exact_apsp(g);       // n Dijkstras
  const auto b = mbf_apsp(g);         // MBF engine over D
  const auto c = matrix_apsp(g).dist; // min-plus matrix squaring
  std::vector<Weight> d(static_cast<std::size_t>(n) * n);
  for (Vertex v = 0; v < n; ++v) {    // Δ-stepping rows
    const auto row = delta_stepping(g, v).dist;
    std::copy(row.begin(), row.end(),
              d.begin() + static_cast<std::ptrdiff_t>(v) * n);
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (is_finite(a[i])) {
      EXPECT_NEAR(b[i], a[i], 1e-9);
      EXPECT_NEAR(c[i], a[i], 1e-9);
      EXPECT_NEAR(d[i], a[i], 1e-9);
    } else {
      EXPECT_FALSE(is_finite(b[i]));
      EXPECT_FALSE(is_finite(c[i]));
      EXPECT_FALSE(is_finite(d[i]));
    }
  }
}

TEST_P(CrossModule, LeListsAreConsistentWithApsp) {
  // Every LE-list entry must equal the true distance, and every non-entry
  // must be dominated — cross-checked against exact APSP.
  const auto g = graph();
  Rng rng(GetParam() + 1);
  const auto order = VertexOrder::random(g.num_vertices(), rng);
  const auto le = le_lists_iteration(g, order);
  const auto apsp = exact_apsp(g);
  const Vertex n = g.num_vertices();
  for (Vertex v = 0; v < n; ++v) {
    for (const auto& e : le.lists[v].entries()) {
      const Vertex w = order.vertex_of[e.key];
      EXPECT_NEAR(e.dist, apsp[static_cast<std::size_t>(v) * n + w], 1e-9);
    }
    for (Vertex w = 0; w < n; ++w) {
      if (is_finite(le.lists[v].at(order.rank_of[w]))) continue;
      // Dominated: some u with smaller rank at distance ≤ dist(v,w).
      const Weight dw = apsp[static_cast<std::size_t>(v) * n + w];
      bool dominated = false;
      for (Vertex u = 0; u < n && !dominated; ++u) {
        dominated = order.rank_of[u] < order.rank_of[w] &&
                    apsp[static_cast<std::size_t>(v) * n + u] <= dw + 1e-12;
      }
      EXPECT_TRUE(dominated) << "missing undominated entry";
    }
  }
}

TEST_P(CrossModule, SourceDetectionSubsumesSssp) {
  // Example 3.3's remark: SSSP == ({s}, h, ∞, 1)-source detection.
  const auto g = graph();
  const Vertex s = 7;
  const auto direct = mbf_sssp(g, s);
  const std::vector<Vertex> sources{s};
  const auto det = mbf_source_detection(g, sources, g.num_vertices(), 1);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const Weight lhs = det[v].at(s);
    if (is_finite(direct[v])) {
      EXPECT_NEAR(lhs, direct[v], 1e-9);
    } else {
      EXPECT_FALSE(is_finite(lhs));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossModule,
                         ::testing::Values(1601, 1602, 1603));

}  // namespace
}  // namespace pmte
