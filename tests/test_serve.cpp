// Serving-layer suite: the flat FrtIndex must answer exactly what the
// source FrtTree answers (bit-for-bit — the index copies the tree's
// LCA-level distance table instead of re-deriving floating-point sums),
// the ensemble policies must match brute-force folds over the per-tree
// values, persisted ensembles must round-trip exactly, and batch serving
// must be bit-identical across thread counts and build parallelism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <vector>

#include "src/frt/pipelines.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/serve/frt_ensemble.hpp"
#include "src/serve/frt_index.hpp"
#include "src/serve/hot_pair_cache.hpp"
#include "src/serve/serialize.hpp"
#include "src/serve/stretch_report.hpp"
#include "src/serve/workloads.hpp"
#include "tests/support/fixtures.hpp"

namespace pmte {
namespace {

constexpr std::size_t kCorpusSize = 50;
constexpr std::uint64_t kCorpusSeed = 7001;  // same corpus as frt_properties

/// Brute-force tree distance: climb both leaves to their common ancestor
/// along parent pointers — independent of both FrtTree::distance and the
/// index math (different summation order, hence EXPECT_NEAR).
Weight brute_force_tree_distance(const FrtTree& t, Vertex u, Vertex v) {
  auto root_path = [&](Vertex leaf) {
    std::vector<FrtTree::NodeId> path{t.leaf_of(leaf)};
    while (t.node(path.back()).parent != FrtTree::invalid_node) {
      path.push_back(t.node(path.back()).parent);
    }
    return path;
  };
  const auto pu = root_path(u);
  const auto pv = root_path(v);
  // Walk down from the root while the paths agree.
  std::size_t i = pu.size();
  std::size_t j = pv.size();
  while (i > 0 && j > 0 && pu[i - 1] == pv[j - 1]) {
    --i;
    --j;
  }
  Weight d = 0.0;
  for (std::size_t a = 0; a < i; ++a) d += t.node(pu[a]).parent_edge;
  for (std::size_t b = 0; b < j; ++b) d += t.node(pv[b]).parent_edge;
  return d;
}

FrtTree::NodeId brute_force_lca(const FrtTree& t, Vertex u, Vertex v) {
  std::vector<bool> ancestor(t.num_nodes(), false);
  for (FrtTree::NodeId id = t.leaf_of(u);; id = t.node(id).parent) {
    ancestor[id] = true;
    if (t.node(id).parent == FrtTree::invalid_node) break;
  }
  FrtTree::NodeId id = t.leaf_of(v);
  while (!ancestor[id]) id = t.node(id).parent;
  return id;
}

TEST(FrtIndex, BitIdenticalToTreeOnPropertyCorpus) {
  const auto corpus = test::small_graph_corpus(kCorpusSize, kCorpusSeed);
  for (const auto& c : corpus) {
    Rng rng(c.seed);
    const auto s = sample_frt_direct(c.graph, rng);
    const auto idx = serve::FrtIndex::build(s.tree);
    idx.validate();
    ASSERT_EQ(idx.num_leaves(), c.graph.num_vertices()) << c.name;
    EXPECT_EQ(idx.num_nodes(), s.tree.num_nodes()) << c.name;
    EXPECT_EQ(idx.num_levels(), s.tree.num_levels()) << c.name;
    const Vertex n = c.graph.num_vertices();
    for (Vertex u = 0; u < n; ++u) {
      for (Vertex v = u; v < n; ++v) {
        const Weight dt = s.tree.distance(u, v);
        const Weight di = idx.distance(u, v);
        // Bit-for-bit: both read the same cached LCA-level table.
        EXPECT_EQ(dt, di) << c.name << " pair " << u << "-" << v;
        EXPECT_EQ(di, idx.distance(v, u)) << c.name << " symmetry";
      }
    }
  }
}

TEST(FrtIndex, MatchesBruteForceTreeMetricAndLca) {
  const auto corpus = test::small_graph_corpus(12, kCorpusSeed + 2);
  for (const auto& c : corpus) {
    Rng rng(c.seed);
    const auto s = sample_frt_direct(c.graph, rng);
    const auto idx = serve::FrtIndex::build(s.tree);
    const Vertex n = c.graph.num_vertices();
    for (Vertex u = 0; u < n; ++u) {
      for (Vertex v = u + 1; v < n; ++v) {
        const Weight ref = brute_force_tree_distance(s.tree, u, v);
        const Weight got = idx.distance(u, v);
        EXPECT_NEAR(got, ref, 1e-9 * (1.0 + ref))
            << c.name << " pair " << u << "-" << v;
        EXPECT_EQ(idx.lca(u, v), brute_force_lca(s.tree, u, v))
            << c.name << " pair " << u << "-" << v;
      }
    }
  }
}

TEST(FrtIndex, WeightedDepthsAreRootPathPrefixSums) {
  const auto corpus = test::small_graph_corpus(8, kCorpusSeed + 3);
  for (const auto& c : corpus) {
    Rng rng(c.seed);
    const auto s = sample_frt_direct(c.graph, rng);
    const auto idx = serve::FrtIndex::build(s.tree);
    EXPECT_EQ(idx.weighted_depth(s.tree.root()), 0.0) << c.name;
    for (FrtTree::NodeId id = 0; id < s.tree.num_nodes(); ++id) {
      const auto& nd = s.tree.node(id);
      if (nd.parent == FrtTree::invalid_node) continue;
      EXPECT_EQ(idx.weighted_depth(id),
                idx.weighted_depth(nd.parent) + nd.parent_edge)
          << c.name << " node " << id;
    }
  }
}

TEST(FrtIndex, SingleVertexTree) {
  std::vector<DistanceMap> lists{DistanceMap::singleton(0, 0.0)};
  const auto order = VertexOrder::identity(1);
  const auto t = FrtTree::build(lists, order, 1.5, 1.0);
  const auto idx = serve::FrtIndex::build(t);
  idx.validate();
  EXPECT_EQ(idx.num_leaves(), 1U);
  EXPECT_EQ(idx.distance(0, 0), 0.0);
}

TEST(FrtIndex, SaveLoadRoundTripIsExact) {
  const auto corpus = test::serve_graph_corpus(4, 909);
  for (const auto& c : corpus) {
    Rng rng(c.seed);
    const auto s = sample_frt_direct(c.graph, rng);
    const auto idx = serve::FrtIndex::build(s.tree);
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    idx.save(buf);
    const std::string bytes = buf.str();
    const auto loaded = serve::FrtIndex::load(buf);
    EXPECT_TRUE(loaded == idx) << c.name;
    // Re-saving the loaded index reproduces the bytes exactly.
    std::stringstream buf2(std::ios::in | std::ios::out | std::ios::binary);
    loaded.save(buf2);
    EXPECT_EQ(buf2.str(), bytes) << c.name;
    // And queries agree bit-for-bit.
    const Vertex n = c.graph.num_vertices();
    Rng qrng(c.seed ^ 0xabcdULL);
    for (int i = 0; i < 200; ++i) {
      const auto u = static_cast<Vertex>(qrng.below(n));
      const auto v = static_cast<Vertex>(qrng.below(n));
      EXPECT_EQ(loaded.distance(u, v), idx.distance(u, v)) << c.name;
    }
  }
}

TEST(FrtIndex, LoadRejectsGarbage) {
  std::stringstream empty(std::ios::in | std::ios::out | std::ios::binary);
  EXPECT_THROW((void)serve::FrtIndex::load(empty), std::logic_error);

  std::stringstream junk(std::ios::in | std::ios::out | std::ios::binary);
  junk << "definitely not a PMTE index file, padded to be long enough";
  EXPECT_THROW((void)serve::FrtIndex::load(junk), std::logic_error);

  // Truncated but well-prefixed input must throw, not misparse.
  std::vector<DistanceMap> lists{DistanceMap::singleton(0, 0.0)};
  const auto order = VertexOrder::identity(1);
  const auto idx =
      serve::FrtIndex::build(FrtTree::build(lists, order, 1.5, 1.0));
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  idx.save(full);
  const std::string bytes = full.str();
  std::stringstream cut(std::ios::in | std::ios::out | std::ios::binary);
  cut << bytes.substr(0, bytes.size() / 2);
  EXPECT_THROW((void)serve::FrtIndex::load(cut), std::logic_error);
}

TEST(FrtIndex, FlatStructureMatchesTree) {
  // The CSR children / leaf maps / per-level edge weights are the apps'
  // substitute for FrtTree::Node — they must mirror the tree exactly,
  // including child order (the apps' floating-point folds depend on it).
  const auto corpus = test::small_graph_corpus(12, kCorpusSeed + 4);
  for (const auto& c : corpus) {
    Rng rng(c.seed);
    const auto s = sample_frt_direct(c.graph, rng);
    const auto idx = serve::FrtIndex::build(s.tree);
    EXPECT_EQ(idx.root(), s.tree.root()) << c.name;
    for (FrtTree::NodeId id = 0; id < s.tree.num_nodes(); ++id) {
      const auto& nd = s.tree.node(id);
      const auto kids = idx.children(id);
      ASSERT_EQ(kids.size(), nd.children.size()) << c.name << " node " << id;
      for (std::size_t i = 0; i < kids.size(); ++i) {
        EXPECT_EQ(kids[i], nd.children[i]) << c.name << " node " << id;
      }
      EXPECT_EQ(idx.leaf_vertex(id), nd.leaf_vertex) << c.name;
      if (nd.parent != FrtTree::invalid_node) {
        EXPECT_EQ(idx.edge_weight(nd.level), nd.parent_edge)
            << c.name << " node " << id;
      }
    }
    for (Vertex v = 0; v < c.graph.num_vertices(); ++v) {
      EXPECT_EQ(idx.leaf_node(v), s.tree.leaf_of(v)) << c.name;
    }
    for (unsigned l = 0; l + 1 < idx.num_levels(); ++l) {
      EXPECT_EQ(idx.edge_weight(l), s.tree.edge_weight(l)) << c.name;
    }
  }
}

TEST(FrtIndex, LoadRejectsUnsupportedFormatVersion) {
  // The reader refuses versions it does not understand (v1 files predate
  // the per-level edge-weight table and would misparse as v2).
  const auto g = test::support_graph("gnm", 24, 33);
  Rng rng(33);
  const auto s = sample_frt_direct(g, rng);
  const auto idx = serve::FrtIndex::build(s.tree);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  idx.save(buf);
  std::string bytes = buf.str();
  // Header: magic(8) + endian probe(4) + version(4).
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 12, sizeof(version));
  ASSERT_EQ(version, serve::kFormatVersion) << "layout drifted; fix offset";
  const std::uint32_t old_version = 1;
  std::memcpy(bytes.data() + 12, &old_version, sizeof(old_version));
  std::stringstream stale(std::ios::in | std::ios::out | std::ios::binary);
  stale << bytes;
  EXPECT_THROW((void)serve::FrtIndex::load(stale), std::logic_error);
}

TEST(FrtIndex, LoadRejectsTourThatIsNotASingleDfs) {
  // A crafted tour with ±1 level steps that re-enters a node as a child
  // twice (levels [2,1,0,1,0] over nodes [0,1,2,1,2]) satisfies the naive
  // shape checks but has 3 down-steps where a 3-node tree has 2 — before
  // the closed-DFS validation this overflowed the child CSR on load.
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  serve::BinaryWriter w(buf);
  w.magic(serve::kIndexMagic);
  w.u32(3);                      // levels
  w.f64(1.5);                    // beta
  w.vec_u32({2, 1, 0});          // node_level
  w.vec_f64({0.0, 2.0, 3.0});    // wdepth (root, +w1=2, +w0=1)
  w.vec_u32({0, 1, 2, 1, 2});    // euler_node — node 2 entered twice
  w.vec_u32({2, 1, 0, 1, 0});    // euler_level — adjacent steps are ±1
  w.vec_u32({2});                // leaf_pos → position 2, level 0
  w.vec_f64({0.0, 2.0, 6.0});    // dist_by_lca_level = [0, 2w0, 2w0+2w1]
  w.vec_f64({1.0, 2.0, 4.0});    // edge_weight_by_level
  EXPECT_THROW((void)serve::FrtIndex::load(buf), std::logic_error);
}

TEST(FrtIndex, LoadRejectsAliasedLeafPositions) {
  // Two vertices sharing a leaf position would serve distance 0.0 for a
  // distinct pair; validate() (run on load) must reject such a file.
  const auto g = test::support_graph("gnm", 24, 31);
  Rng rng(31);
  const auto s = sample_frt_direct(g, rng);
  const auto idx = serve::FrtIndex::build(s.tree);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  idx.save(buf);
  std::string bytes = buf.str();
  // Layout: magic block(16) + levels(4) + beta(8), then the length-
  // prefixed vectors node_level_(u32×N), wdepth_(f64×N),
  // euler_node_/euler_level_(u32×(2N−1) each), leaf_pos_(u32×n).  In v3
  // each u64 prefix is followed by zero padding up to the next 64-byte
  // file offset, so walk the layout instead of summing sizes.
  std::size_t pos = 16 + 4 + 8;
  const auto pad64 = [](std::size_t p) { return (64 - p % 64) % 64; };
  const auto skip_vec = [&](std::size_t elem) {
    std::uint64_t len = 0;
    std::memcpy(&len, bytes.data() + pos, sizeof(len));
    pos += 8 + pad64(pos + 8) + len * elem;
  };
  skip_vec(4);  // node_level_
  skip_vec(8);  // wdepth_
  skip_vec(4);  // euler_node_
  skip_vec(4);  // euler_level_
  std::uint64_t decoded_len = 0;
  std::memcpy(&decoded_len, bytes.data() + pos, sizeof(decoded_len));
  ASSERT_EQ(decoded_len, idx.num_leaves()) << "layout drifted; fix offset";
  const std::size_t leaf_data_off = pos + 8 + pad64(pos + 8);
  // Alias leaf 1 onto leaf 0's position.
  std::memcpy(bytes.data() + leaf_data_off + 4, bytes.data() + leaf_data_off,
              4);
  std::stringstream corrupt(std::ios::in | std::ios::out | std::ios::binary);
  corrupt << bytes;
  EXPECT_THROW((void)serve::FrtIndex::load(corrupt), std::logic_error);
}

// --- Ensemble -------------------------------------------------------------

serve::EnsembleOptions small_ensemble_options(std::size_t trees) {
  serve::EnsembleOptions opts;
  opts.trees = trees;
  // The direct pipeline keeps corpus-wide ensemble tests fast; oracle
  // coverage runs on a slice below.
  opts.pipeline = serve::EnsemblePipeline::direct;
  return opts;
}

TEST(FrtEnsemble, PoliciesMatchBruteForceFolds) {
  const auto corpus = test::serve_graph_corpus(6, 911);
  for (const auto& c : corpus) {
    const auto e =
        serve::FrtEnsemble::build(c.graph, c.seed, small_ensemble_options(5));
    const Vertex n = c.graph.num_vertices();
    Rng qrng(c.seed + 17);
    for (int i = 0; i < 300; ++i) {
      const auto u = static_cast<Vertex>(qrng.below(n));
      const auto v = static_cast<Vertex>(qrng.below(n));
      std::vector<Weight> per_tree;
      for (std::size_t t = 0; t < e.num_trees(); ++t) {
        per_tree.push_back(e.index(t).distance(u, v));
      }
      const Weight ref_min =
          *std::min_element(per_tree.begin(), per_tree.end());
      std::nth_element(per_tree.begin(),
                       per_tree.begin() + per_tree.size() / 2,
                       per_tree.end());
      const Weight ref_median = per_tree[per_tree.size() / 2];
      EXPECT_EQ(e.query(u, v, serve::AggregatePolicy::min), ref_min)
          << c.name;
      EXPECT_EQ(e.query(u, v, serve::AggregatePolicy::median), ref_median)
          << c.name;
    }
  }
}

TEST(FrtEnsemble, MinPolicyDominatesAndTightensWithMoreTrees) {
  // Every tree dominates dist_G, so min over trees still does — and more
  // trees can only lower (never raise) the served min.
  const auto corpus = test::serve_graph_corpus(3, 912);
  for (const auto& c : corpus) {
    const auto big =
        serve::FrtEnsemble::build(c.graph, c.seed, small_ensemble_options(8));
    const Vertex n = c.graph.num_vertices();
    Rng qrng(c.seed + 5);
    for (int i = 0; i < 200; ++i) {
      const auto u = static_cast<Vertex>(qrng.below(n));
      const auto v = static_cast<Vertex>(qrng.below(n));
      Weight min4 = big.index(0).distance(u, v);
      for (std::size_t t = 1; t < 4; ++t) {
        min4 = std::min(min4, big.index(t).distance(u, v));
      }
      const Weight min8 = big.query(u, v, serve::AggregatePolicy::min);
      EXPECT_LE(min8, min4) << c.name;
      if (u != v) {
        EXPECT_GT(min8, 0.0) << c.name;
      }
    }
  }
}

TEST(FrtEnsemble, OraclePipelineEnsembleWorks) {
  const auto corpus = test::serve_graph_corpus(2, 913);
  for (const auto& c : corpus) {
    serve::EnsembleOptions opts;
    opts.trees = 3;
    opts.pipeline = serve::EnsemblePipeline::oracle;
    const auto e = serve::FrtEnsemble::build(c.graph, c.seed, opts);
    EXPECT_EQ(e.num_trees(), 3U) << c.name;
    EXPECT_EQ(e.num_vertices(), c.graph.num_vertices()) << c.name;
    EXPECT_GT(e.build_stats().relaxations, 0U) << c.name;
    for (std::size_t t = 0; t < e.num_trees(); ++t) e.index(t).validate();
    EXPECT_GT(e.query(0, c.graph.num_vertices() - 1,
                      serve::AggregatePolicy::min),
              0.0)
        << c.name;
  }
}

TEST(FrtEnsemble, ReproducibleAcrossBuildParallelism) {
  // Satellite fix: per-tree RNG streams split from the master seed, so the
  // ensemble is a pure function of (graph, seed) — independent of build
  // order and thread count.
  const auto corpus = test::serve_graph_corpus(3, 914);
  const int saved_threads = num_threads();
  for (const auto& c : corpus) {
    auto opts = small_ensemble_options(4);
    opts.parallel_build = false;
    const auto serial = serve::FrtEnsemble::build(c.graph, c.seed, opts);
    opts.parallel_build = true;
    for (const int threads : {1, 2, 8}) {
      set_num_threads(threads);
      const auto parallel = serve::FrtEnsemble::build(c.graph, c.seed, opts);
      EXPECT_TRUE(parallel == serial)
          << c.name << " at " << threads << " threads";
    }
    set_num_threads(saved_threads);
  }
}

TEST(FrtEnsemble, BatchMatchesSingleQueriesAndIsThreadDeterministic) {
  const auto corpus = test::serve_graph_corpus(3, 915);
  const int saved_threads = num_threads();
  for (const auto& c : corpus) {
    const auto e =
        serve::FrtEnsemble::build(c.graph, c.seed, small_ensemble_options(5));
    Rng wrng(c.seed + 99);
    serve::WorkloadOptions wopts;
    wopts.pairs = 2000;
    const auto pairs = serve::make_workload(
        c.graph, serve::WorkloadKind::uniform, wopts, wrng);

    for (const auto policy :
         {serve::AggregatePolicy::min, serve::AggregatePolicy::median}) {
      std::vector<Weight> reference;
      auto ref_stats = e.query_batch(pairs, policy, reference);
      EXPECT_EQ(ref_stats.pairs, pairs.size());
      EXPECT_EQ(ref_stats.tree_lookups, pairs.size() * e.num_trees());
      for (std::size_t i = 0; i < 50; ++i) {
        EXPECT_EQ(reference[i],
                  e.query(pairs[i].first, pairs[i].second, policy))
            << c.name << " pair " << i;
      }
      for (const int threads : {1, 2, 8}) {
        set_num_threads(threads);
        std::vector<Weight> out;
        const auto stats = e.query_batch(pairs, policy, out);
        EXPECT_EQ(out, reference)
            << c.name << " at " << threads << " threads";
        EXPECT_EQ(stats.pairs, ref_stats.pairs);
        EXPECT_EQ(stats.tree_lookups, ref_stats.tree_lookups);
        EXPECT_EQ(stats.lca_probes, ref_stats.lca_probes);
      }
      set_num_threads(saved_threads);
    }
  }
}

TEST(FrtEnsemble, SaveLoadRoundTripIsExact) {
  const auto corpus = test::serve_graph_corpus(2, 916);
  for (const auto& c : corpus) {
    const auto e =
        serve::FrtEnsemble::build(c.graph, c.seed, small_ensemble_options(4));
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    e.save(buf);
    const std::string bytes = buf.str();
    const auto loaded = serve::FrtEnsemble::load(buf);
    EXPECT_TRUE(loaded == e) << c.name;
    EXPECT_EQ(loaded.master_seed(), e.master_seed()) << c.name;
    std::stringstream buf2(std::ios::in | std::ios::out | std::ios::binary);
    loaded.save(buf2);
    EXPECT_EQ(buf2.str(), bytes) << c.name;

    Rng wrng(c.seed + 3);
    serve::WorkloadOptions wopts;
    wopts.pairs = 500;
    const auto pairs = serve::make_workload(
        c.graph, serve::WorkloadKind::zipf, wopts, wrng);
    std::vector<Weight> a, b;
    e.query_batch(pairs, serve::AggregatePolicy::median, a);
    loaded.query_batch(pairs, serve::AggregatePolicy::median, b);
    EXPECT_EQ(a, b) << c.name;
  }
}

TEST(FrtEnsemble, FingerprintIdentifiesTheBuildGraph) {
  // The persisted fingerprint lets loaders refuse to serve a different
  // graph's distances (serve_queries --load hard-fails on mismatch).
  const auto a = test::support_graph("gnm", 64, 21);
  const auto b = test::support_graph("gnm", 64, 22);   // same family/size
  const auto c = test::support_graph("grid", 64, 21);  // same seed
  EXPECT_EQ(serve::FrtEnsemble::fingerprint(a),
            serve::FrtEnsemble::fingerprint(a));
  EXPECT_NE(serve::FrtEnsemble::fingerprint(a),
            serve::FrtEnsemble::fingerprint(b));
  EXPECT_NE(serve::FrtEnsemble::fingerprint(a),
            serve::FrtEnsemble::fingerprint(c));

  const auto e = serve::FrtEnsemble::build(a, 21, small_ensemble_options(2));
  EXPECT_EQ(e.graph_fingerprint(), serve::FrtEnsemble::fingerprint(a));
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  e.save(buf);
  EXPECT_EQ(serve::FrtEnsemble::load(buf).graph_fingerprint(),
            e.graph_fingerprint());
}

TEST(FrtEnsemble, LoadRejectsCorruptLengthPrefix) {
  // A corrupt (not merely truncated) length field must be rejected before
  // any allocation is attempted.
  const auto corpus = test::serve_graph_corpus(1, 919);
  const auto& c = corpus.front();
  const auto e =
      serve::FrtEnsemble::build(c.graph, c.seed, small_ensemble_options(2));
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  e.save(buf);
  std::string bytes = buf.str();
  // The first index payload starts right after the ensemble header —
  // magic(8) + endian probe(4) + version(4) + seed(8) + fingerprint(8) +
  // count(8) — and its own magic block(16) + levels(4) + beta(8); the
  // next 8 bytes are node_level_'s length prefix — blow it up.
  const std::size_t len_off = 16 + 8 + 8 + 8 + 16 + 4 + 8;
  // Large enough that len·4 bytes cannot fit in the file, small enough
  // that a missing pre-allocation guard would really try to allocate.
  const std::uint64_t absurd = 1ULL << 33;
  // Guard the offset arithmetic: the bytes being corrupted must currently
  // decode to the index's node count (the length of node_level_).
  const auto e_nodes = static_cast<std::uint64_t>(e.index(0).num_nodes());
  std::uint64_t decoded = 0;
  std::memcpy(&decoded, bytes.data() + len_off, sizeof(decoded));
  ASSERT_EQ(decoded, e_nodes) << "layout drifted; fix len_off";
  std::memcpy(bytes.data() + len_off, &absurd, sizeof(absurd));
  std::stringstream corrupt(std::ios::in | std::ios::out | std::ios::binary);
  corrupt << bytes;
  EXPECT_THROW((void)serve::FrtEnsemble::load(corrupt), std::logic_error);
}

TEST(FrtEnsemble, LoadRejectsWrongArtefactKind) {
  // An index file is not an ensemble file and vice versa.
  const auto corpus = test::serve_graph_corpus(1, 917);
  const auto& c = corpus.front();
  const auto e =
      serve::FrtEnsemble::build(c.graph, c.seed, small_ensemble_options(2));
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  e.save(buf);
  EXPECT_THROW((void)serve::FrtIndex::load(buf), std::logic_error);

  std::stringstream ibuf(std::ios::in | std::ios::out | std::ios::binary);
  e.index(0).save(ibuf);
  EXPECT_THROW((void)serve::FrtEnsemble::load(ibuf), std::logic_error);
}

// --- Hot-pair cache -------------------------------------------------------

TEST(HotPairCache, ServedValuesBitIdenticalCacheOnAndOff) {
  const auto corpus = test::serve_graph_corpus(4, 920);
  for (const auto& c : corpus) {
    const auto e =
        serve::FrtEnsemble::build(c.graph, c.seed, small_ensemble_options(5));
    for (const auto kind :
         {serve::WorkloadKind::zipf, serve::WorkloadKind::uniform}) {
      Rng wrng(c.seed + 31);
      serve::WorkloadOptions wopts;
      wopts.pairs = 3000;
      const auto pairs = serve::make_workload(c.graph, kind, wopts, wrng);
      for (const auto policy :
           {serve::AggregatePolicy::min, serve::AggregatePolicy::median}) {
        std::vector<Weight> plain, cached;
        const auto ref = e.query_batch(pairs, policy, plain);
        serve::HotPairCache cache(1024);
        const auto st = e.query_batch(pairs, policy, cached, &cache);
        EXPECT_EQ(cached, plain)
            << c.name << " " << serve::workload_name(kind);
        EXPECT_EQ(st.pairs, ref.pairs);
        EXPECT_EQ(st.cache_hits + st.cache_misses, cache.stats().lookups);
        // The cache only ever removes lookups, never adds them.
        EXPECT_LE(st.tree_lookups, ref.tree_lookups) << c.name;
        EXPECT_LE(st.lca_probes, ref.lca_probes) << c.name;
        // A second pass over the same pairs serves every cacheable pair
        // from the warm cache (capacity permitting: conflicts stay
        // conflicts) — values still bit-identical.
        std::vector<Weight> warm;
        const auto st2 = e.query_batch(pairs, policy, warm, &cache);
        EXPECT_EQ(warm, plain) << c.name;
        EXPECT_GE(st2.cache_hits, st.cache_hits) << c.name;
        EXPECT_LE(st2.tree_lookups, st.tree_lookups) << c.name;
      }
    }
  }
}

TEST(HotPairCache, CountersAndValuesDeterministicAcrossThreads) {
  // Satellite requirement: hit/miss counters and served values are
  // bit-identical at 1/2/8 threads, cache on and off, over the corpus.
  const auto corpus = test::serve_graph_corpus(3, 921);
  const int saved_threads = num_threads();
  for (const auto& c : corpus) {
    const auto e =
        serve::FrtEnsemble::build(c.graph, c.seed, small_ensemble_options(4));
    Rng wrng(c.seed + 77);
    serve::WorkloadOptions wopts;
    wopts.pairs = 4000;
    const auto pairs = serve::make_workload(
        c.graph, serve::WorkloadKind::zipf, wopts, wrng);
    for (const auto policy :
         {serve::AggregatePolicy::min, serve::AggregatePolicy::median}) {
      // Reference at the ambient thread count.
      serve::HotPairCache ref_cache(512);
      std::vector<Weight> ref_out;
      const auto ref = e.query_batch(pairs, policy, ref_out, &ref_cache);
      std::vector<Weight> ref_plain;
      const auto ref_plain_stats = e.query_batch(pairs, policy, ref_plain);
      for (const int threads : {1, 2, 8}) {
        set_num_threads(threads);
        serve::HotPairCache cache(512);
        std::vector<Weight> out;
        const auto st = e.query_batch(pairs, policy, out, &cache);
        EXPECT_EQ(out, ref_out) << c.name << " at " << threads << " threads";
        EXPECT_EQ(st.cache_hits, ref.cache_hits) << c.name;
        EXPECT_EQ(st.cache_misses, ref.cache_misses) << c.name;
        EXPECT_EQ(st.tree_lookups, ref.tree_lookups) << c.name;
        EXPECT_EQ(st.lca_probes, ref.lca_probes) << c.name;
        EXPECT_EQ(cache.stats().hits, ref_cache.stats().hits) << c.name;
        EXPECT_EQ(cache.stats().admissions, ref_cache.stats().admissions);
        EXPECT_EQ(cache.stats().conflicts, ref_cache.stats().conflicts);
        // Cache off at this thread count too.
        std::vector<Weight> plain;
        const auto pst = e.query_batch(pairs, policy, plain);
        EXPECT_EQ(plain, ref_plain) << c.name;
        EXPECT_EQ(pst.tree_lookups, ref_plain_stats.tree_lookups);
        EXPECT_EQ(out, plain) << c.name << " cache on vs off";
      }
      set_num_threads(saved_threads);
    }
  }
}

TEST(HotPairCache, FirstTouchAdmissionAndConflicts) {
  // Two pairs colliding in a 2-slot cache: the first keeps the slot, the
  // second bypasses forever (deterministic first-touch, no eviction).
  const auto g = test::support_graph("gnm", 64, 35);
  const auto e = serve::FrtEnsemble::build(g, 35, small_ensemble_options(3));
  serve::HotPairCache cache(2);
  EXPECT_EQ(cache.capacity(), 2U);
  std::vector<std::pair<Vertex, Vertex>> pairs;
  for (Vertex v = 1; v < 40; ++v) pairs.emplace_back(0, v);
  std::vector<Weight> out, plain;
  const auto st =
      e.query_batch(pairs, serve::AggregatePolicy::min, out, &cache);
  (void)e.query_batch(pairs, serve::AggregatePolicy::min, plain);
  EXPECT_EQ(out, plain);
  // 39 distinct pairs into 2 slots: 2 admissions, the rest conflicts.
  EXPECT_EQ(cache.stats().admissions, 2U);
  EXPECT_EQ(cache.stats().conflicts, pairs.size() - 2);
  EXPECT_EQ(st.cache_hits, 0U);
  // Replay: the two admitted pairs hit, everything else still conflicts.
  std::vector<Weight> again;
  const auto st2 =
      e.query_batch(pairs, serve::AggregatePolicy::min, again, &cache);
  EXPECT_EQ(again, plain);
  EXPECT_EQ(st2.cache_hits, 2U);
  // clear() resets contents and counters.
  cache.clear();
  EXPECT_EQ(cache.stats().lookups, 0U);
  std::vector<Weight> fresh;
  const auto st3 =
      e.query_batch(pairs, serve::AggregatePolicy::min, fresh, &cache);
  EXPECT_EQ(fresh, plain);
  EXPECT_EQ(st3.cache_hits, 0U);
}

TEST(HotPairCache, ReuseAcrossEnsemblesCannotServeStaleDistances) {
  // The batch salt folds in the ensemble's seed + graph fingerprint, so a
  // cache warmed by ensemble A can only miss (stale slots conflict) when
  // handed to ensemble B — it must never return A's doubles for B.
  const auto g = test::support_graph("gnm", 96, 44);
  const auto a = serve::FrtEnsemble::build(g, 44, small_ensemble_options(3));
  const auto b = serve::FrtEnsemble::build(g, 45, small_ensemble_options(3));
  Rng wrng(91);
  serve::WorkloadOptions wopts;
  wopts.pairs = 2000;
  const auto pairs =
      serve::make_workload(g, serve::WorkloadKind::zipf, wopts, wrng);
  serve::HotPairCache cache(4096);
  std::vector<Weight> from_a, from_b, b_plain;
  (void)a.query_batch(pairs, serve::AggregatePolicy::min, from_a, &cache);
  // B may hit its *own* same-batch fills (Zipf repeats pairs), but every
  // served value must be B's — bit-identical to the uncached run.
  (void)b.query_batch(pairs, serve::AggregatePolicy::min, from_b, &cache);
  (void)b.query_batch(pairs, serve::AggregatePolicy::min, b_plain);
  EXPECT_EQ(from_b, b_plain);
  EXPECT_NE(from_a, from_b) << "distinct seeds should serve distinct values";
}

TEST(HotPairCache, KeyNormalisesPairOrder) {
  EXPECT_EQ(serve::HotPairCache::pair_key(3, 9, 0),
            serve::HotPairCache::pair_key(9, 3, 0));
  EXPECT_NE(serve::HotPairCache::pair_key(3, 9, 0),
            serve::HotPairCache::pair_key(3, 8, 0));
  // Distinct salts (aggregation policies) never share entries.
  EXPECT_NE(serve::HotPairCache::pair_key(3, 9, 0),
            serve::HotPairCache::pair_key(3, 9, 1));
}

// --- Stretch report -------------------------------------------------------

TEST(StretchReport, MatchesNaiveAllPairsEvaluation) {
  const auto corpus = test::serve_graph_corpus(3, 922);
  for (const auto& c : corpus) {
    const auto e =
        serve::FrtEnsemble::build(c.graph, c.seed, small_ensemble_options(4));
    for (const auto policy :
         {serve::AggregatePolicy::min, serve::AggregatePolicy::median}) {
      const auto q = serve::measure_stretch_quality(c.graph, e, policy);
      // Naive reference: all pairs, exact Dijkstra, direct queries.
      const Vertex n = c.graph.num_vertices();
      double sum_exact = 0.0, sum_served = 0.0, sum_ratio = 0.0;
      double max_ratio = 0.0, min_ratio = inf_weight();
      std::size_t pairs = 0;
      for (Vertex u = 0; u < n; ++u) {
        const auto sp = dijkstra(c.graph, u);
        for (Vertex v = u + 1; v < n; ++v) {
          if (!is_finite(sp.dist[v]) || sp.dist[v] <= 0.0) continue;
          const double served = e.query(u, v, policy);
          const double ratio = served / sp.dist[v];
          sum_exact += sp.dist[v];
          sum_served += served;
          sum_ratio += ratio;
          max_ratio = std::max(max_ratio, ratio);
          min_ratio = std::min(min_ratio, ratio);
          ++pairs;
        }
      }
      ASSERT_GT(pairs, 0U) << c.name;
      EXPECT_EQ(q.pairs, pairs) << c.name;
      // max/min are accumulation-order independent: exact equality.  The
      // sums fold per-row then across rows, so compare to tight relative
      // tolerance.
      EXPECT_EQ(q.max_stretch, max_ratio) << c.name;
      EXPECT_EQ(q.min_stretch, min_ratio) << c.name;
      EXPECT_NEAR(q.sum_exact, sum_exact, 1e-9 * sum_exact) << c.name;
      EXPECT_NEAR(q.sum_served, sum_served, 1e-9 * sum_served) << c.name;
      EXPECT_NEAR(q.weighted_stretch, sum_served / sum_exact,
                  1e-12 * (sum_served / sum_exact))
          << c.name;
      EXPECT_NEAR(q.mean_stretch,
                  sum_ratio / static_cast<double>(pairs), 1e-9)
          << c.name;
      // Dominating policies serve dominating values.
      EXPECT_GE(q.min_stretch, 1.0) << c.name;
      EXPECT_GE(q.weighted_stretch, 1.0) << c.name;
      EXPECT_LE(q.weighted_stretch, q.max_stretch) << c.name;
    }
  }
}

TEST(StretchReport, DeterministicAcrossThreads) {
  const auto corpus = test::serve_graph_corpus(2, 923);
  const int saved_threads = num_threads();
  for (const auto& c : corpus) {
    const auto e =
        serve::FrtEnsemble::build(c.graph, c.seed, small_ensemble_options(3));
    const auto ref = serve::measure_stretch_quality(
        c.graph, e, serve::AggregatePolicy::min);
    for (const int threads : {1, 2, 8}) {
      set_num_threads(threads);
      const auto q = serve::measure_stretch_quality(
          c.graph, e, serve::AggregatePolicy::min);
      EXPECT_EQ(q.pairs, ref.pairs) << c.name;
      EXPECT_EQ(q.weighted_stretch, ref.weighted_stretch) << c.name;
      EXPECT_EQ(q.mean_stretch, ref.mean_stretch) << c.name;
      EXPECT_EQ(q.max_stretch, ref.max_stretch) << c.name;
      EXPECT_EQ(q.min_stretch, ref.min_stretch) << c.name;
      EXPECT_EQ(q.sum_exact, ref.sum_exact) << c.name;
      EXPECT_EQ(q.sum_served, ref.sum_served) << c.name;
    }
    set_num_threads(saved_threads);
  }
}

TEST(StretchReport, MinPolicyNeverWorseThanSingleTree) {
  // min over k trees can only improve on the first tree alone — both the
  // weighted and the max stretch must be ≤ the 1-tree ensemble's.
  const auto corpus = test::serve_graph_corpus(2, 924);
  for (const auto& c : corpus) {
    const auto big =
        serve::FrtEnsemble::build(c.graph, c.seed, small_ensemble_options(6));
    const auto one =
        serve::FrtEnsemble::build(c.graph, c.seed, small_ensemble_options(1));
    const auto qb = serve::measure_stretch_quality(
        c.graph, big, serve::AggregatePolicy::min);
    const auto q1 = serve::measure_stretch_quality(
        c.graph, one, serve::AggregatePolicy::min);
    EXPECT_LE(qb.weighted_stretch, q1.weighted_stretch) << c.name;
    EXPECT_LE(qb.max_stretch, q1.max_stretch) << c.name;
  }
}

// --- Workloads & seeding --------------------------------------------------

TEST(Workloads, AreDeterministicAndInRange) {
  const auto corpus = test::serve_graph_corpus(2, 918);
  for (const auto& c : corpus) {
    for (const auto kind :
         {serve::WorkloadKind::uniform, serve::WorkloadKind::bfs_local,
          serve::WorkloadKind::zipf}) {
      serve::WorkloadOptions opts;
      opts.pairs = 777;
      Rng a(c.seed), b(c.seed);
      const auto pa = serve::make_workload(c.graph, kind, opts, a);
      const auto pb = serve::make_workload(c.graph, kind, opts, b);
      EXPECT_EQ(pa, pb) << c.name << " " << serve::workload_name(kind);
      EXPECT_EQ(pa.size(), opts.pairs);
      for (const auto& [u, v] : pa) {
        EXPECT_LT(u, c.graph.num_vertices());
        EXPECT_LT(v, c.graph.num_vertices());
      }
    }
  }
}

TEST(Workloads, ZipfIsSkewedUniformIsNot) {
  const auto g = test::support_graph("gnm", 256, 4242);
  serve::WorkloadOptions opts;
  opts.pairs = 20000;
  opts.zipf_s = 1.2;
  Rng rng(5);
  const auto zipf =
      serve::make_workload(g, serve::WorkloadKind::zipf, opts, rng);
  std::vector<std::size_t> freq(g.num_vertices(), 0);
  for (const auto& [u, v] : zipf) {
    ++freq[u];
    ++freq[v];
  }
  std::sort(freq.rbegin(), freq.rend());
  const auto total = 2 * opts.pairs;
  // The hottest 16 of 256 vertices should carry far more than their
  // uniform share (16/256 ≈ 6%).
  std::size_t hot = 0;
  for (std::size_t i = 0; i < 16; ++i) hot += freq[i];
  EXPECT_GT(hot, total / 3);
}

TEST(SplitSeed, StreamsAreDistinctAndOrderFree) {
  // Documented scheme: stream i is a pure function of (master, i).
  EXPECT_EQ(split_seed(42, 7), split_seed(42, 7));
  EXPECT_NE(split_seed(42, 7), split_seed(42, 8));
  EXPECT_NE(split_seed(42, 7), split_seed(43, 7));
  EXPECT_NE(split_seed(42, 0), 42U);  // stream 0 ≠ master itself
  // No short-range collisions over a realistic ensemble size.
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t t = 0; t < 4096; ++t) seeds.push_back(split_seed(1, t));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

}  // namespace
}  // namespace pmte
