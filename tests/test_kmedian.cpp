// Tests for the k-median application (Section 9): the exact HST dynamic
// program against brute force, and end-to-end quality against baselines.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>

#include "src/apps/kmedian.hpp"
#include "src/frt/pipelines.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/serve/frt_index.hpp"
#include "tests/support/fixtures.hpp"

namespace pmte {
namespace {

/// Brute-force weighted k-median on the tree metric restricted to leaves.
double brute_tree_kmedian(const FrtTree& tree,
                          const std::vector<double>& weight, std::size_t k) {
  const Vertex n = tree.num_leaves();
  std::vector<Vertex> leaves(n);
  for (Vertex v = 0; v < n; ++v) leaves[v] = v;
  double best = inf_weight();
  std::vector<Vertex> subset;
  // Enumerate all subsets of size ≤ k (n choose k small in tests).
  std::function<void(Vertex, std::size_t)> rec = [&](Vertex start,
                                                     std::size_t left) {
    if (!subset.empty()) {
      double cost = 0.0;
      for (Vertex v = 0; v < n; ++v) {
        double d = inf_weight();
        for (Vertex c : subset) d = std::min(d, tree.distance(v, c));
        cost += weight[v] * d;
      }
      best = std::min(best, cost);
    }
    if (left == 0) return;
    for (Vertex c = start; c < n; ++c) {
      subset.push_back(c);
      rec(c + 1, left - 1);
      subset.pop_back();
    }
  };
  rec(0, k);
  return best;
}

class TreeDpBrute : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeDpBrute, DpMatchesBruteForce) {
  Rng rng(GetParam());
  const auto g = make_gnm(12, 26, {1.0, 6.0}, rng);
  const auto sample = sample_frt_direct(g, rng);
  std::vector<double> weight(12);
  for (auto& w : weight) w = std::floor(rng.uniform(0.0, 4.0));
  for (std::size_t k : {1U, 2U, 3U}) {
    const auto sol = solve_kmedian_on_tree(sample.tree, weight, k);
    const double brute = brute_tree_kmedian(sample.tree, weight, k);
    EXPECT_NEAR(sol.cost, brute, 1e-6) << "k=" << k;
    // Reported centers must realise the reported cost.
    double check = 0.0;
    for (Vertex v = 0; v < 12; ++v) {
      double d = inf_weight();
      for (Vertex c : sol.centers) d = std::min(d, sample.tree.distance(v, c));
      check += weight[v] * d;
    }
    EXPECT_NEAR(check, sol.cost, 1e-6) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeDpBrute,
                         ::testing::Values(1001, 1002, 1003, 1004, 1005));

TEST(TreeDp, SingleFacilityCoversAll) {
  Rng rng(1);
  const auto g = make_star(10, {1.0, 3.0}, rng);
  const auto sample = sample_frt_direct(g, rng);
  std::vector<double> weight(10, 1.0);
  const auto sol = solve_kmedian_on_tree(sample.tree, weight, 1);
  EXPECT_EQ(sol.centers.size(), 1U);
  EXPECT_GT(sol.cost, 0.0);
}

TEST(TreeDp, KEqualsLeavesIsFree) {
  Rng rng(2);
  const auto g = make_path(8);
  const auto sample = sample_frt_direct(g, rng);
  std::vector<double> weight(8, 1.0);
  const auto sol = solve_kmedian_on_tree(sample.tree, weight, 8);
  EXPECT_DOUBLE_EQ(sol.cost, 0.0);
  EXPECT_EQ(sol.centers.size(), 8U);
}

TEST(KMedian, CostFunctionMatchesDefinition) {
  const auto g = make_path(5);  // 0-1-2-3-4 unit weights
  EXPECT_DOUBLE_EQ(kmedian_cost(g, {2}), 1.0 + 2.0 + 0.0 + 1.0 + 2.0);
  EXPECT_DOUBLE_EQ(kmedian_cost(g, {0, 4}), 0.0 + 1.0 + 2.0 + 1.0 + 0.0);
  EXPECT_THROW((void)kmedian_cost(g, {}), std::logic_error);
}

TEST(KMedian, FrtPipelineBeatsRandomAndTracksLocalSearch) {
  Rng rng(3);
  const auto g = make_grid(9, 9, {1.0, 2.0}, rng);
  const std::size_t k = 5;
  KMedianOptions opts;
  opts.trees = 4;
  const auto frt = kmedian_frt(g, k, opts, rng);
  const auto rnd = kmedian_random(g, k, rng);
  const auto ls = kmedian_local_search(g, k, 6, rng);
  EXPECT_LE(frt.centers.size(), k);
  EXPECT_GT(frt.candidates, k);
  // Sanity: at most O(log k) worse than local search (generous factor),
  // and no worse than 1.5× a random solution.
  EXPECT_LE(frt.cost, 4.0 * ls.cost);
  EXPECT_LE(frt.cost, 1.5 * rnd.cost);
}

TEST(KMedian, ExactForKEqualsN) {
  Rng rng(4);
  const auto g = make_gnm(16, 34, {1.0, 2.0}, rng);
  KMedianOptions opts;
  opts.trees = 2;
  const auto r = kmedian_frt(g, 16, opts, rng);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);  // every vertex can host a center
}

TEST(KMedian, RejectsBadK) {
  const auto g = make_path(4);
  Rng rng(5);
  EXPECT_THROW((void)kmedian_frt(g, 0, {}, rng), std::logic_error);
  EXPECT_THROW((void)kmedian_frt(g, 9, {}, rng), std::logic_error);
}

// --- Flat serving-index backend (differential pins) -----------------------

TEST(KMedianFlat, IndexDpBitIdenticalToTreeDpOnCorpus) {
  // The tentpole contract: solving the HST DP over the flat FrtIndex
  // yields the exact centers and the exact cost doubles of the
  // pointer-based reference, on every corpus graph and several k.
  const auto corpus = test::small_graph_corpus(50, 7001);
  for (const auto& c : corpus) {
    Rng rng(c.seed);
    const auto s = sample_frt_direct(c.graph, rng);
    const auto idx = serve::FrtIndex::build(s.tree);
    std::vector<double> weight(c.graph.num_vertices());
    for (auto& w : weight) w = std::floor(rng.uniform(0.0, 5.0));
    for (const std::size_t k : {1U, 2U, 4U}) {
      const auto ref = solve_kmedian_on_tree(s.tree, weight, k);
      const auto flat = solve_kmedian_on_index(idx, weight, k);
      EXPECT_EQ(flat.cost, ref.cost) << c.name << " k=" << k;
      EXPECT_EQ(flat.centers, ref.centers) << c.name << " k=" << k;
      // The flat path never touches a FrtTree::Node; the reference walks
      // one per condensed-traversal step.  Both walk the same nodes.
      EXPECT_EQ(flat.counters.tree_node_visits, 0U) << c.name;
      EXPECT_GT(ref.counters.tree_node_visits, 0U) << c.name;
      EXPECT_EQ(flat.counters.tree_lookups, ref.counters.tree_node_visits)
          << c.name;
      EXPECT_LT(flat.counters.tree_node_visits,
                ref.counters.tree_node_visits)
          << c.name << " flat path must beat the pointer-climbing baseline";
    }
  }
}

TEST(KMedianFlat, EndToEndPipelineIdenticalEitherBackend) {
  // kmedian_frt consumes randomness identically on both paths, so the
  // full pipeline (sampling, weights, DP, evaluation) returns the same
  // solution with use_flat_index on or off.
  Rng grng(71);
  const auto g = make_grid(8, 8, {1.0, 2.0}, grng);
  for (const std::uint64_t seed : {901ULL, 902ULL}) {
    KMedianOptions flat_opts, tree_opts;
    flat_opts.trees = tree_opts.trees = 3;
    flat_opts.use_flat_index = true;
    tree_opts.use_flat_index = false;
    Rng r1(seed), r2(seed);
    const auto a = kmedian_frt(g, 6, flat_opts, r1);
    const auto b = kmedian_frt(g, 6, tree_opts, r2);
    EXPECT_EQ(a.cost, b.cost);
    EXPECT_EQ(a.tree_cost, b.tree_cost);
    EXPECT_EQ(a.centers, b.centers);
    EXPECT_EQ(a.candidates, b.candidates);
    EXPECT_EQ(a.counters.tree_node_visits, 0U);
    EXPECT_GT(b.counters.tree_node_visits, 0U);
  }
}

}  // namespace
}  // namespace pmte
