// Tests for the distance-map semimodule D (Definition 2.1) and its filters,
// including the semimodule axioms (Lemma A.4 / Corollary 2.2) and the
// congruence laws of the LE and source-detection filters (Lemma 2.8,
// Lemma 7.5) on randomised samples.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/algebra/axioms.hpp"
#include "src/algebra/distance_map.hpp"
#include "src/util/rng.hpp"

namespace pmte {
namespace {

DistanceMap random_map(Rng& rng, Vertex key_range, std::size_t max_entries) {
  std::vector<DistEntry> entries;
  const auto count = rng.below(max_entries + 1);
  for (std::uint64_t i = 0; i < count; ++i) {
    entries.push_back(DistEntry{static_cast<Vertex>(rng.below(key_range)),
                                std::floor(rng.uniform(0.0, 20.0))});
  }
  return DistanceMap::from_entries(std::move(entries));
}

TEST(DistanceMap, FromEntriesNormalises) {
  auto m = DistanceMap::from_entries(
      {{3, 5.0}, {1, 2.0}, {3, 4.0}, {2, inf_weight()}});
  ASSERT_EQ(m.size(), 2U);
  EXPECT_EQ(m[0].key, 1U);
  EXPECT_DOUBLE_EQ(m[0].dist, 2.0);
  EXPECT_EQ(m[1].key, 3U);
  EXPECT_DOUBLE_EQ(m[1].dist, 4.0);  // duplicate keeps the minimum
  EXPECT_DOUBLE_EQ(m.at(1), 2.0);
  EXPECT_FALSE(is_finite(m.at(7)));
}

TEST(DistanceMap, MergeMinMatchesBruteForce) {
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    auto a = random_map(rng, 12, 8);
    const auto b = random_map(rng, 12, 8);
    const double shift = std::floor(rng.uniform(0.0, 5.0));
    std::map<Vertex, Weight> expect;
    for (const auto& e : a.entries()) expect[e.key] = e.dist;
    for (const auto& e : b.entries()) {
      const auto it = expect.find(e.key);
      const Weight val = e.dist + shift;
      if (it == expect.end() || val < it->second) expect[e.key] = val;
    }
    a.merge_min(b, shift);
    ASSERT_EQ(a.size(), expect.size());
    for (const auto& [k, v] : expect) EXPECT_DOUBLE_EQ(a.at(k), v);
  }
}

TEST(DistanceMap, AddToAllInfinityYieldsBottom) {
  auto m = DistanceMap::from_entries({{0, 1.0}, {5, 2.0}});
  m.add_to_all(inf_weight());
  EXPECT_TRUE(m.empty());  // Equation (2.2)
}

TEST(DistanceMap, KeepKSmallestLexicographic) {
  auto m = DistanceMap::from_entries({{0, 5.0}, {1, 3.0}, {2, 3.0}, {3, 1.0}});
  m.keep_k_smallest(2);
  ASSERT_EQ(m.size(), 2U);
  EXPECT_DOUBLE_EQ(m.at(3), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1), 3.0);  // ties broken towards smaller key
}

TEST(DistanceMap, KeepKSmallestNoOpWhenSmall) {
  auto m = DistanceMap::from_entries({{0, 1.0}});
  m.keep_k_smallest(5);
  EXPECT_EQ(m.size(), 1U);
}

TEST(DistanceMap, DropBeyond) {
  auto m = DistanceMap::from_entries({{0, 1.0}, {1, 5.0}, {2, 3.0}});
  m.drop_beyond(3.0);
  EXPECT_EQ(m.size(), 2U);
  EXPECT_TRUE(is_finite(m.at(2)));
  EXPECT_FALSE(is_finite(m.at(1)));
}

TEST(DistanceMap, LeFilterStaircase) {
  // Ranks: 0 far, 4 owns distance 0; dominated entries must vanish.
  auto m = DistanceMap::from_entries(
      {{4, 0.0}, {2, 4.0}, {3, 4.0}, {1, 9.0}, {0, 12.0}});
  m.keep_least_elements();
  EXPECT_TRUE(m.is_least_element_list());
  // (3,4) dominated by (2,4); (4,0) survives (nothing smaller).
  EXPECT_DOUBLE_EQ(m.at(4), 0.0);
  EXPECT_DOUBLE_EQ(m.at(2), 4.0);
  EXPECT_FALSE(is_finite(m.at(3)));
  EXPECT_DOUBLE_EQ(m.at(0), 12.0);
}

TEST(DistanceMap, LeFilterMatchesBruteForce) {
  Rng rng(32);
  for (int trial = 0; trial < 300; ++trial) {
    const auto m = random_map(rng, 10, 10);
    auto filtered = m;
    filtered.keep_least_elements();
    EXPECT_TRUE(filtered.is_least_element_list());
    // Brute force: (k, d) survives iff no k' < k with d' <= d.
    for (const auto& e : m.entries()) {
      bool dominated = false;
      for (const auto& f : m.entries()) {
        if (f.key < e.key && f.dist <= e.dist) dominated = true;
      }
      if (dominated) {
        EXPECT_FALSE(is_finite(filtered.at(e.key)))
            << "dominated key " << e.key << " kept";
      } else {
        EXPECT_DOUBLE_EQ(filtered.at(e.key), e.dist);
      }
    }
  }
}

TEST(DistanceMap, LeFilterIdempotent) {
  Rng rng(33);
  for (int trial = 0; trial < 100; ++trial) {
    auto m = random_map(rng, 15, 12);
    m.keep_least_elements();
    auto twice = m;
    twice.keep_least_elements();
    EXPECT_EQ(m, twice);  // Observation 2.7: r² = r
  }
}

// --- Semimodule axioms for D over Smin,+ (Corollary 2.2) --------------

class DistanceMapSemimodule : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DistanceMapSemimodule, Axioms) {
  Rng rng(GetParam());
  std::vector<Weight> scalars{0.0, 1.0, inf_weight(),
                              std::floor(rng.uniform(0.0, 9.0))};
  std::vector<DistanceMap> elems{DistanceMap{}};
  for (int i = 0; i < 5; ++i) elems.push_back(random_map(rng, 8, 6));
  const auto madd = [](const DistanceMap& a, const DistanceMap& b) {
    auto out = a;
    out.merge_min(b);
    return out;
  };
  const auto smul = [](const Weight& s, const DistanceMap& x) {
    auto out = x;
    out.add_to_all(s);
    return out;
  };
  const auto eq = [](const DistanceMap& a, const DistanceMap& b) {
    return a == b;
  };
  const auto rep = check_semimodule_axioms<MinPlus, DistanceMap>(
      scalars, elems, madd, smul, DistanceMap{}, eq);
  EXPECT_TRUE(rep.ok) << rep.violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceMapSemimodule,
                         ::testing::Values(41, 42, 43, 44, 45));

// --- Congruence of the filters (Lemma 2.8 / Lemma 7.5) ----------------

class FilterCongruence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FilterCongruence, LeFilterIsCongruent) {
  Rng rng(GetParam());
  std::vector<Weight> scalars{0.0, 2.0, 5.0, inf_weight()};
  std::vector<DistanceMap> elems{DistanceMap{}};
  for (int i = 0; i < 7; ++i) elems.push_back(random_map(rng, 6, 6));
  const auto madd = [](const DistanceMap& a, const DistanceMap& b) {
    auto out = a;
    out.merge_min(b);
    return out;
  };
  const auto smul = [](const Weight& s, const DistanceMap& x) {
    auto out = x;
    out.add_to_all(s);
    return out;
  };
  const auto r = [](const DistanceMap& x) {
    auto out = x;
    out.keep_least_elements();
    return out;
  };
  const auto eq = [](const DistanceMap& a, const DistanceMap& b) {
    return a == b;
  };
  const auto rep =
      check_congruence<MinPlus, DistanceMap>(scalars, elems, madd, smul, r, eq);
  EXPECT_TRUE(rep.ok) << rep.violation;
}

TEST_P(FilterCongruence, SourceDetectionFilterIsCongruent) {
  Rng rng(GetParam() + 1000);
  std::vector<Weight> scalars{0.0, 1.0, 3.0, inf_weight()};
  std::vector<DistanceMap> elems{DistanceMap{}};
  for (int i = 0; i < 7; ++i) elems.push_back(random_map(rng, 6, 6));
  const auto madd = [](const DistanceMap& a, const DistanceMap& b) {
    auto out = a;
    out.merge_min(b);
    return out;
  };
  const auto smul = [](const Weight& s, const DistanceMap& x) {
    auto out = x;
    out.add_to_all(s);
    return out;
  };
  // (S, h, d, k)-source-detection filter with d = 12, k = 3 (Example 3.2).
  const auto r = [](const DistanceMap& x) {
    auto out = x;
    out.drop_beyond(12.0);
    out.keep_k_smallest(3);
    return out;
  };
  const auto eq = [](const DistanceMap& a, const DistanceMap& b) {
    return a == b;
  };
  const auto rep =
      check_congruence<MinPlus, DistanceMap>(scalars, elems, madd, smul, r, eq);
  EXPECT_TRUE(rep.ok) << rep.violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterCongruence,
                         ::testing::Values(51, 52, 53, 54));

}  // namespace
}  // namespace pmte
