// Tests for path unfolding (Section 7.5): every tree edge maps to a real
// walk in G whose weight respects the 3·ω_T(e) bound.
#include <gtest/gtest.h>

#include "src/frt/paths.hpp"
#include "src/frt/pipelines.hpp"
#include "src/graph/generators.hpp"

namespace pmte {
namespace {

class Unfolding : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Unfolding, PathsAreValidWalks) {
  Rng rng(GetParam());
  const auto g = make_gnm(36, 80, {1.0, 5.0}, rng);
  const auto sample = sample_frt_direct(g, rng);
  PathUnfolder unfolder(g, sample.tree);
  for (FrtTree::NodeId id = 0; id < sample.tree.num_nodes(); ++id) {
    const auto& nd = sample.tree.node(id);
    if (nd.parent == FrtTree::invalid_node) continue;
    const auto u = unfolder.unfold(id);
    ASSERT_FALSE(u.path.empty());
    // Endpoints are the leading vertices of parent and child.
    EXPECT_EQ(u.path.front(), sample.tree.node(nd.parent).leading);
    EXPECT_EQ(u.path.back(), nd.leading);
    // Consecutive path vertices are joined by edges; weights add up.
    Weight total = 0.0;
    for (std::size_t i = 1; i < u.path.size(); ++i) {
      const Weight w = g.edge_weight(u.path[i - 1], u.path[i]);
      ASSERT_TRUE(is_finite(w)) << "non-edge on unfolded path";
      total += w;
    }
    EXPECT_NEAR(total, u.weight, 1e-9);
  }
}

TEST_P(Unfolding, WeightWithinPaperBound) {
  // dist(v0, v_i) + dist(v0, v_{i+1}) ≤ β2^i + β2^{i+1} = 3·β2^i; with the
  // dominating rule ω_T(e) = β2^{i+1}, so the walk weighs ≤ 1.5·ω_T(e).
  Rng rng(GetParam() + 10);
  const auto g = make_grid(6, 6, {1.0, 2.0}, rng);
  const auto sample = sample_frt_direct(g, rng);
  PathUnfolder unfolder(g, sample.tree);
  for (FrtTree::NodeId id = 0; id < sample.tree.num_nodes(); ++id) {
    const auto& nd = sample.tree.node(id);
    if (nd.parent == FrtTree::invalid_node) continue;
    const auto u = unfolder.unfold(id);
    EXPECT_LE(u.weight, 1.5 * nd.parent_edge + 1e-9)
        << "tree edge at level " << nd.level;
  }
}

TEST_P(Unfolding, DijkstraCacheIsShared) {
  Rng rng(GetParam() + 20);
  const auto g = make_gnm(30, 70, {1.0, 2.0}, rng);
  const auto sample = sample_frt_direct(g, rng);
  PathUnfolder unfolder(g, sample.tree);
  std::size_t edges = 0;
  for (FrtTree::NodeId id = 0; id < sample.tree.num_nodes(); ++id) {
    if (sample.tree.node(id).parent == FrtTree::invalid_node) continue;
    (void)unfolder.unfold(id);
    ++edges;
  }
  // One Dijkstra per distinct representative leaf, never per edge.
  EXPECT_LT(unfolder.dijkstra_runs(), edges);
  EXPECT_LE(unfolder.dijkstra_runs(), g.num_vertices());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Unfolding, ::testing::Values(701, 702, 703));

TEST(Unfolding, RootHasNoParentEdge) {
  Rng rng(1);
  const auto g = make_path(8);
  const auto sample = sample_frt_direct(g, rng);
  PathUnfolder unfolder(g, sample.tree);
  EXPECT_THROW((void)unfolder.unfold(sample.tree.root()), std::logic_error);
}

}  // namespace
}  // namespace pmte
