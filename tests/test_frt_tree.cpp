// Tests for FRT tree construction (Section 7.1, Lemma 7.2): structural
// validity, the dominance property of the default weight rule, and the
// O(log n) expected stretch on sampled instances.
#include <gtest/gtest.h>

#include <cmath>

#include "src/frt/pipelines.hpp"
#include "src/frt/stretch.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/shortest_paths.hpp"

namespace pmte {
namespace {

class FrtTreeBuild : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Graph random_graph() {
    Rng rng(GetParam());
    return make_gnm(40, 90, {1.0, 7.0}, rng);
  }
};

TEST_P(FrtTreeBuild, TreeIsStructurallyValid) {
  const auto g = random_graph();
  Rng rng(GetParam() + 1);
  const auto sample = sample_frt_direct(g, rng);
  sample.tree.validate();
  EXPECT_EQ(sample.tree.num_leaves(), g.num_vertices());
  EXPECT_GE(sample.tree.num_levels(), 2U);
  EXPECT_GE(sample.beta, 1.0);
  EXPECT_LT(sample.beta, 2.0);
}

TEST_P(FrtTreeBuild, DominanceHolds) {
  // dist_T ≥ dist_G for the dominating weight rule (Definition 7.1).
  const auto g = random_graph();
  Rng rng(GetParam() + 2);
  const auto sample = sample_frt_direct(g, rng);
  for (Vertex s : {0U, 13U, 29U}) {
    const auto d = dijkstra(g, s).dist;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (v == s) continue;
      EXPECT_GE(sample.tree.distance(s, v), d[v] - 1e-9)
          << "pair (" << s << ", " << v << ")";
    }
  }
}

TEST_P(FrtTreeBuild, TreeDistanceIsAMetric) {
  const auto g = random_graph();
  Rng rng(GetParam() + 3);
  const auto t = sample_frt_direct(g, rng).tree;
  for (Vertex a = 0; a < 12; ++a) {
    EXPECT_DOUBLE_EQ(t.distance(a, a), 0.0);
    for (Vertex b = 0; b < 12; ++b) {
      EXPECT_DOUBLE_EQ(t.distance(a, b), t.distance(b, a));
      if (a != b) {
        EXPECT_GT(t.distance(a, b), 0.0);
      }
      for (Vertex c = 0; c < 12; ++c) {
        EXPECT_LE(t.distance(a, b),
                  t.distance(a, c) + t.distance(c, b) + 1e-9);
      }
    }
  }
}

TEST_P(FrtTreeBuild, KhanRuleHalvesWeights) {
  const auto g = random_graph();
  Rng rng1(GetParam() + 4);
  Rng rng2(GetParam() + 4);  // identical randomness for both rules
  FrtOptions dom;
  dom.rule = FrtWeightRule::dominating;
  FrtOptions khan;
  khan.rule = FrtWeightRule::khan;
  const auto a = sample_frt_direct(g, rng1, dom);
  const auto b = sample_frt_direct(g, rng2, khan);
  for (Vertex v = 1; v < 10; ++v) {
    EXPECT_NEAR(a.tree.distance(0, v), 2.0 * b.tree.distance(0, v), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrtTreeBuild,
                         ::testing::Values(601, 602, 603, 604));

TEST(FrtTree, ExpectedStretchIsLogarithmic) {
  // [19]: E[stretch] ∈ O(log n).  With the dominating rule the constant
  // roughly doubles; 8·log2(n) is a generous non-flaky envelope for the
  // *average* expected stretch.
  Rng rng(42);
  const Vertex n = 64;
  const auto g = make_gnm(n, 160, {1.0, 4.0}, rng);
  const auto pairs = sample_pairs(g, 16, 256, rng);
  std::vector<FrtTree> trees;
  for (int t = 0; t < 24; ++t) {
    trees.push_back(sample_frt_direct(g, rng).tree);
  }
  const auto rep = measure_stretch(pairs, trees);
  EXPECT_GE(rep.min_single_ratio, 1.0 - 1e-9);  // dominance, every sample
  EXPECT_LE(rep.avg_expected_stretch, 8.0 * std::log2(n));
  EXPECT_GT(rep.avg_expected_stretch, 1.0);
}

TEST(FrtTree, WorstCaseCycleStretchStaysModerate) {
  // The cycle is the classic bad instance for deterministic tree
  // embeddings; randomisation keeps the *expected* stretch logarithmic.
  Rng rng(43);
  const Vertex n = 48;
  const auto g = make_cycle(n);
  const auto pairs = sample_pairs(g, n, 512, rng);
  std::vector<FrtTree> trees;
  for (int t = 0; t < 32; ++t) {
    trees.push_back(sample_frt_direct(g, rng).tree);
  }
  const auto rep = measure_stretch(pairs, trees);
  EXPECT_GE(rep.min_single_ratio, 1.0 - 1e-9);
  EXPECT_LE(rep.avg_expected_stretch, 10.0 * std::log2(n));
}

TEST(FrtTree, SingleVertexTree) {
  std::vector<DistanceMap> lists{DistanceMap::singleton(0, 0.0)};
  const auto order = VertexOrder::identity(1);
  const auto t = FrtTree::build(lists, order, 1.5, 1.0);
  t.validate();
  EXPECT_EQ(t.num_leaves(), 1U);
  EXPECT_DOUBLE_EQ(t.distance(0, 0), 0.0);
}

TEST(FrtTree, TwoVertexTreeDistances) {
  // Two vertices at distance 5, β = 1: leaves diverge below the scale
  // covering 5.
  auto g = Graph::from_edges(2, {{0, 1, 5.0}});
  const auto order = VertexOrder::identity(2);
  const auto le = le_lists_sequential(g, order);
  const auto t = FrtTree::build(le.lists, order, 1.0, 5.0,
                                FrtWeightRule::dominating);
  t.validate();
  const double dt = t.distance(0, 1);
  EXPECT_GE(dt, 5.0);
  // Divergence happens within a constant factor of the true distance:
  // scales are geometric, so dist_T ≤ 8·dist (dominating rule, β = 1).
  EXPECT_LE(dt, 8.0 * 5.0);
}

TEST(FrtTree, RejectsInvalidInputs) {
  std::vector<DistanceMap> lists{DistanceMap::singleton(0, 0.0)};
  const auto order = VertexOrder::identity(1);
  EXPECT_THROW((void)FrtTree::build(lists, order, 2.5, 1.0),
               std::logic_error);  // beta out of range
  EXPECT_THROW((void)FrtTree::build(lists, order, 1.0, 0.0),
               std::logic_error);  // bad dmin
  std::vector<DistanceMap> empty_list{DistanceMap{}};
  EXPECT_THROW((void)FrtTree::build(empty_list, order, 1.0, 1.0),
               std::logic_error);  // empty LE list
}

TEST(FrtTree, DisconnectedGraphIsRejected) {
  const auto g = Graph::from_edges(4, {{0, 1, 1.0}, {2, 3, 1.0}});
  Rng rng(5);
  const auto order = VertexOrder::random(4, rng);
  const auto le = le_lists_sequential(g, order);
  EXPECT_THROW((void)FrtTree::build(le.lists, order, 1.0, 1.0),
               std::logic_error);
}

TEST(FrtTree, CachedDistanceMatchesPerQueryRecomputationBitForBit) {
  // distance() now looks the weight sum up in the per-build LCA-level
  // cache instead of re-summing both root paths per call.  This pins the
  // new values to the pre-cache formula (ascending Σ 2·edge_weight(l) up
  // to the divergence level) bit-for-bit, for every pair and several
  // graph families.
  for (const std::uint64_t seed : {901ULL, 902ULL, 903ULL}) {
    Rng gr(seed);
    const auto g = make_gnm(48, 110, {1.0, 6.0}, gr);
    Rng rng(seed + 1);
    const auto t = sample_frt_direct(g, rng).tree;
    for (Vertex u = 0; u < g.num_vertices(); ++u) {
      for (Vertex v = u + 1; v < g.num_vertices(); ++v) {
        const Weight got = t.distance(u, v);
        // Divergence level = LCA level, recovered structurally (leaves sit
        // at level 0 and every edge climbs exactly one level, so lockstep
        // parent walks meet at the LCA).
        FrtTree::NodeId a = t.leaf_of(u);
        FrtTree::NodeId b = t.leaf_of(v);
        while (a != b) {
          a = t.node(a).parent;
          b = t.node(b).parent;
        }
        const unsigned diverge = t.node(a).level;
        Weight ref = 0.0;
        for (unsigned l = 0; l < diverge; ++l) {
          const Weight step = 2.0 * t.edge_weight(l);
          ref += step;
        }
        EXPECT_EQ(ref, got) << "pair " << u << "-" << v;
      }
    }
  }
}

TEST(FrtTree, BottomUpOrderIsTopological) {
  Rng rng(6);
  const auto g = make_gnm(20, 40, {1.0, 2.0}, rng);
  const auto t = sample_frt_direct(g, rng).tree;
  std::vector<bool> seen(t.num_nodes(), false);
  for (const auto id : t.bottom_up_order()) {
    for (const auto c : t.node(id).children) {
      EXPECT_TRUE(seen[c]) << "child visited after parent";
    }
    seen[id] = true;
  }
}

}  // namespace
}  // namespace pmte
