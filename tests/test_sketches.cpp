// Tests for LE-list distance sketches (src/apps/distance_sketches).
#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/distance_sketches.hpp"
#include "src/frt/pipelines.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/serve/workloads.hpp"
#include "tests/support/fixtures.hpp"

namespace pmte {
namespace {

class Sketches : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Sketches, EstimatesAreUpperBoundsAndFinite) {
  Rng rng(GetParam());
  const auto g = make_gnm(60, 150, {1.0, 5.0}, rng);
  const auto sk = DistanceSketches::build(g, 4, rng);
  const auto apsp = exact_apsp(g);
  for (Vertex u = 0; u < 60; u += 7) {
    for (Vertex v = 0; v < 60; v += 5) {
      const Weight est = sk.query(u, v);
      const Weight exact = apsp[static_cast<std::size_t>(u) * 60 + v];
      if (u == v) {
        EXPECT_DOUBLE_EQ(est, 0.0);
        continue;
      }
      EXPECT_TRUE(is_finite(est)) << "rank-0 vertex is in every list";
      EXPECT_GE(est, exact - 1e-9) << "sketch underestimated";
      // Symmetric by construction.
      EXPECT_DOUBLE_EQ(est, sk.query(v, u));
    }
  }
}

TEST_P(Sketches, MorePermutationsNeverHurt) {
  Rng rng(GetParam() + 10);
  const auto g = make_grid(8, 8, {1.0, 3.0}, rng);
  // Build 1-permutation and 6-permutation sketches from the same stream:
  // the larger sketch contains more chances to hit a good common vertex.
  Rng r1(GetParam() + 11), r2(GetParam() + 11);
  const auto small = DistanceSketches::build(g, 1, r1);
  const auto large = DistanceSketches::build(g, 6, r2);
  const auto apsp = exact_apsp(g);
  double err_small = 0.0, err_large = 0.0;
  std::size_t pairs = 0;
  for (Vertex u = 0; u < 64; u += 3) {
    for (Vertex v = u + 1; v < 64; v += 5) {
      const Weight exact = apsp[static_cast<std::size_t>(u) * 64 + v];
      err_small += small.query(u, v) / exact;
      err_large += large.query(u, v) / exact;
      ++pairs;
    }
  }
  EXPECT_LE(err_large / static_cast<double>(pairs),
            err_small / static_cast<double>(pairs) + 1e-9);
}

TEST_P(Sketches, StretchStaysModerate) {
  // LE-list sketches give O(log n)-ish multiplicative error in practice.
  Rng rng(GetParam() + 20);
  const auto g = make_gnm(100, 260, {1.0, 4.0}, rng);
  const auto sk = DistanceSketches::build(g, 6, rng);
  const auto apsp = exact_apsp(g);
  double worst = 1.0;
  for (Vertex u = 0; u < 100; u += 3) {
    for (Vertex v = u + 1; v < 100; v += 7) {
      const Weight exact = apsp[static_cast<std::size_t>(u) * 100 + v];
      worst = std::max(worst, sk.query(u, v) / exact);
    }
  }
  EXPECT_LE(worst, 30.0);  // generous non-flaky envelope (log2 n ≈ 6.6)
}

INSTANTIATE_TEST_SUITE_P(Seeds, Sketches,
                         ::testing::Values(1401, 1402, 1403));

TEST(Sketches, SizeIsLogarithmicPerPermutation) {
  Rng rng(1);
  const auto g = make_gnm(400, 1200, {1.0, 2.0}, rng);
  const auto sk = DistanceSketches::build(g, 3, rng);
  // 3 permutations × ~ln(400) ≈ 18 entries expected.
  EXPECT_LT(sk.average_entries_per_vertex(),
            3.0 * 3.0 * std::log(400.0));
  EXPECT_EQ(sk.permutations(), 3U);
}

TEST(Sketches, RejectsBadInput) {
  Rng rng(2);
  const auto g = make_path(5);
  EXPECT_THROW((void)DistanceSketches::build(g, 0, rng), std::logic_error);
  const auto sk = DistanceSketches::build(g, 1, rng);
  EXPECT_THROW((void)sk.query(0, 9), std::logic_error);
  EXPECT_THROW((void)DistanceSketches::from_lists({}, 5), std::logic_error);
}

// --- Ensemble-served sketches (the serving-layer rebase) ------------------

TEST(EnsembleSketches, BitIdenticalToFoldingFrtTreeDistances) {
  // The sketch's answers are served through flat indices; they must equal
  // — bit for bit — the min over FrtTree::distance of the same k trees
  // (re-sampled here with the ensemble's split-seed scheme).
  const auto corpus = test::small_graph_corpus(50, 7001);
  for (const auto& c : corpus) {
    const std::size_t k = 3;
    serve::EnsembleOptions opts;
    opts.pipeline = serve::EnsemblePipeline::direct;
    const auto sk = EnsembleSketches::build(c.graph, k, c.seed, opts);
    std::vector<FrtTree> trees;
    for (std::size_t t = 0; t < k; ++t) {
      Rng rng(split_seed(c.seed, 1 + t));
      trees.push_back(sample_frt_direct(c.graph, rng).tree);
    }
    const Vertex n = c.graph.num_vertices();
    for (Vertex u = 0; u < n; ++u) {
      for (Vertex v = u; v < n; ++v) {
        Weight ref = inf_weight();
        for (const auto& t : trees) ref = std::min(ref, t.distance(u, v));
        EXPECT_EQ(sk.query(u, v), ref)
            << c.name << " pair " << u << "-" << v;
      }
    }
  }
}

TEST(EnsembleSketches, EstimatesAreUpperBoundsAndTightenWithTrees) {
  Rng grng(61);
  const auto g = make_gnm(80, 200, {1.0, 4.0}, grng);
  const auto small = EnsembleSketches::build(g, 1, 777);
  const auto large = EnsembleSketches::build(g, 6, 777);
  const auto apsp = exact_apsp(g);
  for (Vertex u = 0; u < 80; u += 3) {
    for (Vertex v = 0; v < 80; v += 5) {
      const Weight exact = apsp[static_cast<std::size_t>(u) * 80 + v];
      if (u == v) {
        EXPECT_DOUBLE_EQ(large.query(u, v), 0.0);
        continue;
      }
      // Dominating trees → upper bounds; tree 0 is shared, so more trees
      // can only tighten the min.
      EXPECT_GE(large.query(u, v), exact - 1e-9);
      EXPECT_LE(large.query(u, v), small.query(u, v));
      EXPECT_DOUBLE_EQ(large.query(u, v), large.query(v, u));
    }
  }
}

TEST(EnsembleSketches, BatchMatchesPointQueriesAndThreadDeterministic) {
  const auto corpus = test::serve_graph_corpus(2, 925);
  const int saved_threads = num_threads();
  for (const auto& c : corpus) {
    serve::EnsembleOptions opts;
    opts.pipeline = serve::EnsemblePipeline::direct;
    auto sk = EnsembleSketches::build(c.graph, 4, c.seed, opts);
    Rng wrng(c.seed + 13);
    serve::WorkloadOptions wopts;
    wopts.pairs = 1500;
    const auto pairs = serve::make_workload(
        c.graph, serve::WorkloadKind::zipf, wopts, wrng);
    std::vector<Weight> reference;
    const auto ref = sk.query_batch(pairs, reference);
    EXPECT_EQ(ref.pairs, pairs.size()) << c.name;
    EXPECT_EQ(ref.tree_lookups, pairs.size() * sk.trees()) << c.name;
    for (std::size_t i = 0; i < 40; ++i) {
      EXPECT_EQ(reference[i], sk.query(pairs[i].first, pairs[i].second))
          << c.name;
    }
    for (const int threads : {1, 2, 8}) {
      set_num_threads(threads);
      std::vector<Weight> out;
      const auto st = sk.query_batch(pairs, out);
      EXPECT_EQ(out, reference) << c.name << " at " << threads;
      EXPECT_EQ(st.tree_lookups, ref.tree_lookups) << c.name;
    }
    set_num_threads(saved_threads);
  }
}

TEST(EnsembleSketches, HotPairCacheKeepsValuesAndSavesLookups) {
  const auto corpus = test::serve_graph_corpus(2, 926);
  for (const auto& c : corpus) {
    serve::EnsembleOptions opts;
    opts.pipeline = serve::EnsemblePipeline::direct;
    auto sk = EnsembleSketches::build(c.graph, 4, c.seed, opts);
    Rng wrng(c.seed + 29);
    serve::WorkloadOptions wopts;
    wopts.pairs = 3000;
    const auto pairs = serve::make_workload(
        c.graph, serve::WorkloadKind::zipf, wopts, wrng);
    std::vector<Weight> plain;
    const auto ref = sk.query_batch(pairs, plain);
    EXPECT_EQ(sk.cache(), nullptr);
    sk.enable_cache(4096);
    ASSERT_NE(sk.cache(), nullptr);
    std::vector<Weight> cached;
    const auto st = sk.query_batch(pairs, cached);
    EXPECT_EQ(cached, plain) << c.name;
    EXPECT_GT(st.cache_hits, 0U) << c.name << " (zipf repeats pairs)";
    EXPECT_LT(st.tree_lookups, ref.tree_lookups) << c.name;
    sk.enable_cache(0);
    EXPECT_EQ(sk.cache(), nullptr);
  }
}

TEST(Sketches, WorksWithOraclePipelineLists) {
  // The sketches can be built from any LE-list pipeline, including the
  // oracle pipeline on H — distances are then H-distances (≥ G-distances).
  Rng rng(3);
  const auto g = make_gnm(40, 90, {1.0, 3.0}, rng);
  const auto hopset = build_hub_hopset(g, {}, rng);
  const auto h = build_simulated_graph(g, hopset, 0.02, rng);
  std::vector<LeListsResult> runs;
  for (int t = 0; t < 2; ++t) {
    const auto order = VertexOrder::random(40, rng);
    runs.push_back(le_lists_oracle(h, order));
  }
  const auto sk = DistanceSketches::from_lists(std::move(runs), 40);
  const auto exact = dijkstra(g, 0).dist;
  for (Vertex v = 1; v < 40; ++v) {
    EXPECT_GE(sk.query(0, v), exact[v] - 1e-9);
  }
}

}  // namespace
}  // namespace pmte
