// Tests for LE-list distance sketches (src/apps/distance_sketches).
#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/distance_sketches.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/shortest_paths.hpp"

namespace pmte {
namespace {

class Sketches : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Sketches, EstimatesAreUpperBoundsAndFinite) {
  Rng rng(GetParam());
  const auto g = make_gnm(60, 150, {1.0, 5.0}, rng);
  const auto sk = DistanceSketches::build(g, 4, rng);
  const auto apsp = exact_apsp(g);
  for (Vertex u = 0; u < 60; u += 7) {
    for (Vertex v = 0; v < 60; v += 5) {
      const Weight est = sk.query(u, v);
      const Weight exact = apsp[static_cast<std::size_t>(u) * 60 + v];
      if (u == v) {
        EXPECT_DOUBLE_EQ(est, 0.0);
        continue;
      }
      EXPECT_TRUE(is_finite(est)) << "rank-0 vertex is in every list";
      EXPECT_GE(est, exact - 1e-9) << "sketch underestimated";
      // Symmetric by construction.
      EXPECT_DOUBLE_EQ(est, sk.query(v, u));
    }
  }
}

TEST_P(Sketches, MorePermutationsNeverHurt) {
  Rng rng(GetParam() + 10);
  const auto g = make_grid(8, 8, {1.0, 3.0}, rng);
  // Build 1-permutation and 6-permutation sketches from the same stream:
  // the larger sketch contains more chances to hit a good common vertex.
  Rng r1(GetParam() + 11), r2(GetParam() + 11);
  const auto small = DistanceSketches::build(g, 1, r1);
  const auto large = DistanceSketches::build(g, 6, r2);
  const auto apsp = exact_apsp(g);
  double err_small = 0.0, err_large = 0.0;
  std::size_t pairs = 0;
  for (Vertex u = 0; u < 64; u += 3) {
    for (Vertex v = u + 1; v < 64; v += 5) {
      const Weight exact = apsp[static_cast<std::size_t>(u) * 64 + v];
      err_small += small.query(u, v) / exact;
      err_large += large.query(u, v) / exact;
      ++pairs;
    }
  }
  EXPECT_LE(err_large / static_cast<double>(pairs),
            err_small / static_cast<double>(pairs) + 1e-9);
}

TEST_P(Sketches, StretchStaysModerate) {
  // LE-list sketches give O(log n)-ish multiplicative error in practice.
  Rng rng(GetParam() + 20);
  const auto g = make_gnm(100, 260, {1.0, 4.0}, rng);
  const auto sk = DistanceSketches::build(g, 6, rng);
  const auto apsp = exact_apsp(g);
  double worst = 1.0;
  for (Vertex u = 0; u < 100; u += 3) {
    for (Vertex v = u + 1; v < 100; v += 7) {
      const Weight exact = apsp[static_cast<std::size_t>(u) * 100 + v];
      worst = std::max(worst, sk.query(u, v) / exact);
    }
  }
  EXPECT_LE(worst, 30.0);  // generous non-flaky envelope (log2 n ≈ 6.6)
}

INSTANTIATE_TEST_SUITE_P(Seeds, Sketches,
                         ::testing::Values(1401, 1402, 1403));

TEST(Sketches, SizeIsLogarithmicPerPermutation) {
  Rng rng(1);
  const auto g = make_gnm(400, 1200, {1.0, 2.0}, rng);
  const auto sk = DistanceSketches::build(g, 3, rng);
  // 3 permutations × ~ln(400) ≈ 18 entries expected.
  EXPECT_LT(sk.average_entries_per_vertex(),
            3.0 * 3.0 * std::log(400.0));
  EXPECT_EQ(sk.permutations(), 3U);
}

TEST(Sketches, RejectsBadInput) {
  Rng rng(2);
  const auto g = make_path(5);
  EXPECT_THROW((void)DistanceSketches::build(g, 0, rng), std::logic_error);
  const auto sk = DistanceSketches::build(g, 1, rng);
  EXPECT_THROW((void)sk.query(0, 9), std::logic_error);
  EXPECT_THROW((void)DistanceSketches::from_lists({}, 5), std::logic_error);
}

TEST(Sketches, WorksWithOraclePipelineLists) {
  // The sketches can be built from any LE-list pipeline, including the
  // oracle pipeline on H — distances are then H-distances (≥ G-distances).
  Rng rng(3);
  const auto g = make_gnm(40, 90, {1.0, 3.0}, rng);
  const auto hopset = build_hub_hopset(g, {}, rng);
  const auto h = build_simulated_graph(g, hopset, 0.02, rng);
  std::vector<LeListsResult> runs;
  for (int t = 0; t < 2; ++t) {
    const auto order = VertexOrder::random(40, rng);
    runs.push_back(le_lists_oracle(h, order));
  }
  const auto sk = DistanceSketches::from_lists(std::move(runs), 40);
  const auto exact = dijkstra(g, 0).dist;
  for (Vertex v = 1; v < 40; ++v) {
    EXPECT_GE(sk.query(0, v), exact[v] - 1e-9);
  }
}

}  // namespace
}  // namespace pmte
