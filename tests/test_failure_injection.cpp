// Failure-injection and edge-case suite: degenerate parameters,
// disconnected inputs, extreme weights, and cross-module error handling.
// Every failure mode must be a clean exception, never UB or a wrong
// silent answer.
#include <gtest/gtest.h>

#include "src/apps/buyatbulk.hpp"
#include "src/apps/kmedian.hpp"
#include "src/congest/congest.hpp"
#include "src/frt/pipelines.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/hopset/hopset.hpp"
#include "src/metric/approx_metric.hpp"
#include "src/simgraph/simulated_graph.hpp"

namespace pmte {
namespace {

TEST(FailureInjection, SingleVertexGraphWorksEverywhere) {
  const auto g = Graph::from_edges(1, {});
  Rng rng(1);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(shortest_path_diameter(g).spd, 0U);
  const auto sample = sample_frt_direct(g, rng);
  sample.tree.validate();
  EXPECT_DOUBLE_EQ(sample.tree.distance(0, 0), 0.0);
  const auto km = kmedian_frt(g, 1, {}, rng);
  EXPECT_DOUBLE_EQ(km.cost, 0.0);
}

TEST(FailureInjection, TwoVertexGraph) {
  const auto g = Graph::from_edges(2, {{0, 1, 3.5}});
  Rng rng(2);
  const auto sample = sample_frt_oracle(g, rng);
  sample.tree.validate();
  EXPECT_GE(sample.tree.distance(0, 1), 3.5 - 1e-9);
}

TEST(FailureInjection, DisconnectedGraphsFailLoudly) {
  const auto g = Graph::from_edges(4, {{0, 1, 1.0}, {2, 3, 1.0}});
  Rng rng(3);
  // FRT requires connectivity; the failure is a clean exception.
  EXPECT_THROW((void)sample_frt_direct(g, rng), std::logic_error);
  EXPECT_THROW((void)kmedian_frt(g, 2, {}, rng), std::logic_error);
  const std::vector<Demand> demands{{0, 2, 1.0}};  // across components
  const std::vector<CableType> cables{{1.0, 1.0}};
  EXPECT_THROW((void)buy_at_bulk(g, demands, cables, {}, rng),
               std::logic_error);
}

TEST(FailureInjection, ExtremeWeightRatios) {
  // 1e-6 … 1e6 spans 12 decades; scales stay finite and trees valid.
  std::vector<WeightedEdge> edges;
  Rng rng(4);
  for (Vertex i = 0; i + 1 < 30; ++i) {
    edges.push_back(WeightedEdge{
        i, static_cast<Vertex>(i + 1),
        (i % 2 == 0) ? 1e-6 * rng.uniform(1, 2) : 1e6 * rng.uniform(1, 2)});
  }
  const auto g = Graph::from_edges(30, edges);
  const auto sample = sample_frt_direct(g, rng);
  sample.tree.validate();
  EXPECT_LT(sample.tree.num_levels(), 64U);  // log of the weight spread
  const auto d = dijkstra(g, 0).dist;
  for (Vertex v = 1; v < 30; ++v) {
    EXPECT_GE(sample.tree.distance(0, v), d[v] - 1e-9);
  }
}

TEST(FailureInjection, HopsetOnTinyGraphs) {
  Rng rng(5);
  const auto g = Graph::from_edges(2, {{0, 1, 1.0}});
  const auto hs = build_hub_hopset(g, {}, rng);
  EXPECT_DOUBLE_EQ(measure_hopset_stretch(g, hs, 2, rng), 1.0);
  const auto h = build_simulated_graph(g, hs, 0.1, rng);
  EXPECT_GE(h.hop_bound(), 1U);
}

TEST(FailureInjection, OracleOnStarGraph) {
  // Star: SPD 2 — the oracle must not be slower than two H-iterations.
  Rng rng(6);
  const auto g = make_star(50, {1.0, 4.0}, rng);
  const auto hs = build_hub_hopset(g, {}, rng);
  const auto h = build_simulated_graph(g, hs, 0.05, rng);
  const auto order = VertexOrder::random(50, rng);
  const auto le = le_lists_oracle(h, order);
  EXPECT_TRUE(le.converged);
  EXPECT_LE(le.iterations, 4U);
}

TEST(FailureInjection, KMedianDegenerateParameters) {
  Rng rng(7);
  const auto g = make_path(6);
  EXPECT_THROW((void)kmedian_frt(g, 0, {}, rng), std::logic_error);
  EXPECT_THROW((void)kmedian_local_search(g, 7, 2, rng), std::logic_error);
  EXPECT_THROW((void)kmedian_random(g, 0, rng), std::logic_error);
  // k == n is legal and free.
  EXPECT_DOUBLE_EQ(kmedian_random(g, 6, rng).cost, 0.0);
}

TEST(FailureInjection, BuyAtBulkSelfDemandIsFree) {
  Rng rng(8);
  const auto g = make_path(5);
  const std::vector<CableType> cables{{1.0, 1.0}};
  const std::vector<Demand> demands{{2, 2, 10.0}};  // s == t
  const auto r = buy_at_bulk(g, demands, cables, {}, rng);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
  EXPECT_DOUBLE_EQ(r.lower_bound, 0.0);
}

TEST(FailureInjection, CongestOnMinimalGraphs) {
  Rng rng(9);
  const auto g = Graph::from_edges(2, {{0, 1, 1.0}});
  const auto order = VertexOrder::random(2, rng);
  const auto khan = congest_frt_khan(g, order);
  EXPECT_TRUE(khan.le.converged);
  EXPECT_GE(khan.rounds, 1U);
  const auto sk = congest_frt_skeleton(g, {}, rng);
  EXPECT_FALSE(sk.run.le.lists.empty());
}

TEST(FailureInjection, ApproxMetricOnPathEnds) {
  Rng rng(10);
  const auto g = make_path(12, {1.0, 1.0});
  ApproxMetricOptions opts;
  opts.eps_hat = 0.02;
  const auto r = approximate_metric(g, opts, rng);
  // Endpoint distance 11 must be representable and ≥ exact.
  EXPECT_GE(r.dist[11], 11.0 - 1e-9);
  EXPECT_LE(r.dist[11], 11.0 * 1.6);
}

TEST(FailureInjection, LevelAssignmentZeroVertices) {
  Rng rng(11);
  const auto la = LevelAssignment::sample(0, rng);
  EXPECT_EQ(la.num_vertices(), 0U);
  EXPECT_EQ(la.max_level(), 0U);
}

TEST(FailureInjection, RandomRegularGeneratorContracts) {
  Rng rng(12);
  const auto g = make_random_regular(50, 4, {1.0, 2.0}, rng);
  EXPECT_TRUE(is_connected(g));
  for (Vertex v = 0; v < 50; ++v) EXPECT_LE(g.degree(v), 4U);
  EXPECT_THROW((void)make_random_regular(50, 3, {}, rng), std::logic_error);
  EXPECT_THROW((void)make_random_regular(50, 0, {}, rng), std::logic_error);
  EXPECT_THROW((void)make_random_regular(4, 4, {}, rng), std::logic_error);
}

TEST(FailureInjection, ExpanderStretchIsWorstCaseFamily) {
  // Expanders witness the Ω(log n) lower bound [7]: measured expected
  // stretch should clearly exceed 1 yet stay O(log n).
  Rng rng(13);
  const auto g = make_random_regular(64, 4, {1.0, 1.0}, rng);
  double total = 0.0;
  const auto d0 = dijkstra(g, 0).dist;
  int trees = 6, pairs = 0;
  std::vector<FrtTree> ts;
  for (int t = 0; t < trees; ++t) ts.push_back(sample_frt_direct(g, rng).tree);
  for (Vertex v = 1; v < 64; v += 3) {
    double avg = 0;
    for (const auto& t : ts) avg += t.distance(0, v) / d0[v];
    total += avg / trees;
    ++pairs;
  }
  const double mean = total / pairs;
  EXPECT_GT(mean, 1.5);
  EXPECT_LT(mean, 60.0);
}

}  // namespace
}  // namespace pmte
