// Observability-layer contracts (src/obs/, docs/OBSERVABILITY.md):
//
//   * histogram bucket counts are a pure function of the recorded
//     multiset — bit-identical at 1/2/8 threads (the quantity tests and
//     CI may compare; wall-time *values* never are);
//   * the registry canonicalises label order and exports byte-stable
//     Prometheus text exposition with valid histogram series;
//   * spans record complete trace events from inside nested
//     parallel_for_balanced regions, one per-thread ring each;
//   * and the load-bearing one: turning the runtime switches on changes
//     no served double and no logical counter — BatchStats,
//     TenantCounters, and result_hash32 are bit-identical with the obs
//     layer off, metrics on, and metrics+trace on.
//
// The suite carries the `tsan-par` CTest label: concurrent histogram
// recording and per-thread ring writes run under ThreadSanitizer at 8
// threads in CI.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/trace.hpp"
#include "src/parallel/parallel.hpp"
#include "src/serve/frt_ensemble.hpp"
#include "src/serve/server.hpp"
#include "src/serve/workloads.hpp"

namespace pmte {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

class ThreadGuard {
 public:
  ThreadGuard() : saved_(num_threads()) {}
  ~ThreadGuard() { set_num_threads(saved_); }

 private:
  int saved_;
};

TEST(ObsHistogram, Log2BucketPlacementAndBounds) {
  obs::Histogram h;
  // bit_width: 0 → bucket 0, 1 → 1, 2..3 → 2, 4..7 → 3, ...
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(7);
  h.record((std::uint64_t{1} << 40));
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.bucket_count(41), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 7 + (std::uint64_t{1} << 40));
  // Every recorded value is ≤ the inclusive upper bound of its bucket and
  // > the bound of the previous one.
  EXPECT_EQ(obs::Histogram::bucket_le(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_le(3), 7u);
  EXPECT_EQ(obs::Histogram::bucket_le(64), ~std::uint64_t{0});
}

TEST(ObsHistogram, PercentileWalksCumulativeCounts) {
  obs::Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0u);  // empty
  for (int i = 0; i < 90; ++i) h.record(3);    // bucket 2, le 3
  for (int i = 0; i < 10; ++i) h.record(200);  // bucket 8, le 255
  EXPECT_EQ(h.percentile(0.50), 3u);
  EXPECT_EQ(h.percentile(0.90), 3u);
  EXPECT_EQ(h.percentile(0.95), 255u);
  EXPECT_EQ(h.percentile(0.99), 255u);
}

TEST(ObsHistogram, BucketCountsAreThreadCountInvariant) {
  // The determinism contract: the same multiset of logical values —
  // recorded concurrently under any thread count — yields bit-identical
  // bucket counts.  The recorded value depends only on the index, never
  // on time or scheduling.
  const ThreadGuard guard;
  const std::size_t n = 20000;
  std::array<std::uint64_t, obs::Histogram::kBuckets> reference{};
  bool have_reference = false;
  for (const int threads : kThreadCounts) {
    set_num_threads(threads);
    obs::Histogram h;
    parallel_for_balanced(
        n, [](std::size_t i) { return (i * 31) % 97; },
        [&](std::size_t i) { h.record((i * i) % 4093); });
    const auto snap = h.snapshot();
    EXPECT_EQ(h.count(), n);
    if (!have_reference) {
      reference = snap;
      have_reference = true;
    } else {
      EXPECT_EQ(snap, reference) << "threads " << threads;
    }
  }
}

TEST(ObsRegistry, LabelOrderIsCanonicalised) {
  obs::MetricsRegistry reg;
  auto& a = reg.counter("test_labels_total",
                        {{"tenant", "3"}, {"policy", "min"}});
  auto& b = reg.counter("test_labels_total",
                        {{"policy", "min"}, {"tenant", "3"}});
  EXPECT_EQ(&a, &b);  // same series regardless of label order
  auto& c = reg.counter("test_labels_total",
                        {{"policy", "median"}, {"tenant", "3"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(ObsRegistry, ResetKeepsHandlesValid) {
  obs::MetricsRegistry reg;
  auto& ctr = reg.counter("test_reset_total");
  auto& h = reg.histogram("test_reset_sizes");
  ctr.add(5);
  h.record(9);
  reg.reset();
  EXPECT_EQ(ctr.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  ctr.add(2);  // the handle still points at the registered instrument
  EXPECT_EQ(reg.counter("test_reset_total").value(), 2u);
}

TEST(ObsRegistry, PrometheusExpositionGrammar) {
  obs::MetricsRegistry reg;
  reg.counter("test_requests_total", {{"tenant", "0"}}, "requests").add(7);
  reg.counter("test_requests_total", {{"tenant", "1"}}, "requests").add(3);
  reg.gauge("test_resident", {}, "resident things").set(-2);
  auto& h = reg.histogram("test_sizes", {}, "batch sizes");
  h.record(0);
  h.record(5);
  h.record(1000);

  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();

  // One # HELP/# TYPE pair per family even with several series.
  auto count_of = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count_of("# TYPE test_requests_total counter"), 1u);
  EXPECT_EQ(count_of("# TYPE test_resident gauge"), 1u);
  EXPECT_EQ(count_of("# TYPE test_sizes histogram"), 1u);
  EXPECT_NE(text.find("test_requests_total{tenant=\"0\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("test_requests_total{tenant=\"1\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_resident -2"), std::string::npos);
  // Histogram series: cumulative buckets end at +Inf == _count, plus _sum.
  EXPECT_NE(text.find("test_sizes_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_sizes_count 3"), std::string::npos);
  EXPECT_NE(text.find("test_sizes_sum 1005"), std::string::npos);

  // Byte-stable: a registry populated in a different order exports the
  // identical text.
  obs::MetricsRegistry reg2;
  auto& h2 = reg2.histogram("test_sizes", {}, "batch sizes");
  reg2.gauge("test_resident", {}, "resident things").set(-2);
  reg2.counter("test_requests_total", {{"tenant", "1"}}, "requests").add(3);
  reg2.counter("test_requests_total", {{"tenant", "0"}}, "requests").add(7);
  h2.record(1000);
  h2.record(5);
  h2.record(0);
  std::ostringstream os2;
  reg2.write_prometheus(os2);
  EXPECT_EQ(text, os2.str());
}

TEST(ObsTrace, RingKeepsMostRecentEvents) {
  obs::TraceSink sink;
  sink.configure_capacity(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    sink.record(0, obs::TraceEvent{"ev", nullptr, 100 + i, 1,
                                   static_cast<std::int64_t>(i), 0});
  }
  EXPECT_EQ(sink.num_events(), 4u);  // flight recorder: last 4 survive
  EXPECT_EQ(sink.dropped(), 0u);
  sink.record(static_cast<std::uint32_t>(obs::TraceSink::kMaxThreads),
              obs::TraceEvent{"ev"});
  EXPECT_EQ(sink.dropped(), 1u);
  sink.clear();
  EXPECT_EQ(sink.num_events(), 0u);
}

#if PMTE_OBS

/// Restores the obs layer to its all-off default and drops recorded
/// events, so tests never leak runtime state into each other.
class ObsGuard {
 public:
  ObsGuard() = default;
  ~ObsGuard() {
    obs::configure({});
    obs::trace_sink().clear();
  }
  ObsGuard(const ObsGuard&) = delete;
  ObsGuard& operator=(const ObsGuard&) = delete;
};

TEST(ObsSpan, InactiveWhenEverythingOff) {
  const ObsGuard guard;
  obs::trace_sink().clear();
  {
    PMTE_OBS_SPAN("obs_test.off", 7, "arg");
  }
  EXPECT_EQ(obs::trace_sink().num_events(), 0u);
}

TEST(ObsSpan, NestedSpansUnderNestedParallelFor) {
  const ObsGuard guard;
  const ThreadGuard threads;
  set_num_threads(8);
  obs::ObsConfig cfg;
  cfg.trace = true;
  obs::configure(cfg);
  obs::trace_sink().clear();

  constexpr std::size_t kOuter = 8, kInner = 8;
  std::atomic<std::uint64_t> sink{0};
  {
    PMTE_OBS_SPAN("obs_test.root");
    parallel_for_balanced(
        kOuter, [](std::size_t) { return 1; },
        [&](std::size_t o) {
          PMTE_OBS_SPAN("obs_test.outer", static_cast<std::int64_t>(o),
                        "outer");
          parallel_for_balanced(
              kInner, [](std::size_t) { return 1; },
              [&](std::size_t i) {
                PMTE_OBS_SPAN("obs_test.inner",
                              static_cast<std::int64_t>(i), "inner");
                sink.fetch_add(o * kInner + i, std::memory_order_relaxed);
              });
        });
  }
  obs::configure({});

  EXPECT_EQ(obs::trace_sink().dropped(), 0u);
  EXPECT_EQ(obs::trace_sink().num_events(), 1 + kOuter + kOuter * kInner);

  std::ostringstream os;
  obs::trace_sink().write_chrome_trace(os);
  const std::string text = os.str();
  EXPECT_EQ(text.rfind("{\"traceEvents\":", 0), 0u);
  std::size_t events = 0, inner = 0;
  std::istringstream lines(text);
  for (std::string line; std::getline(lines, line);) {
    if (line.find("\"ph\":\"X\"") == std::string::npos) continue;
    ++events;  // one complete event per line
    if (line.find("\"name\":\"obs_test.inner\"") != std::string::npos) {
      ++inner;
      EXPECT_NE(line.find("\"args\":{\"inner\":"), std::string::npos);
    }
  }
  EXPECT_EQ(events, 1 + kOuter + kOuter * kInner);
  EXPECT_EQ(inner, kOuter * kInner);
}

#endif  // PMTE_OBS

// ---------------------------------------------------------------------------
// The on/off differential: enabling the obs layer at runtime must not
// change a single served bit or logical counter.  (At PMTE_OBS=0 the
// configure() calls are no-ops and the test degenerates to running the
// scenario three times — which must STILL agree, so it stays meaningful.)

Graph test_graph() {
  Rng rng(4242);
  return make_gnm(256, 1024, {1.0, 9.0}, rng);
}

serve::EnsembleOptions ensemble_options() {
  serve::EnsembleOptions opts;
  opts.trees = 4;
  opts.pipeline = serve::EnsemblePipeline::direct;
  return opts;
}

::testing::AssertionResult bits_equal(const std::vector<Weight>& a,
                                      const std::vector<Weight>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(Weight)) != 0) {
    return ::testing::AssertionFailure() << "served doubles differ";
  }
  return ::testing::AssertionSuccess();
}

TEST(ObsDifferential, BatchStatsAndOutputsIdenticalOnAndOff) {
#if PMTE_OBS
  const ObsGuard guard;
#endif
  const auto g = test_graph();
  const auto e = serve::FrtEnsemble::build(g, 9001, ensemble_options());
  serve::WorkloadOptions wopts;
  wopts.pairs = 20000;
  Rng wrng(9002);
  const auto workload =
      serve::make_workload(g, serve::WorkloadKind::zipf, wopts, wrng);

  struct Run {
    std::vector<Weight> out;
    serve::FrtEnsemble::BatchStats stats;
  };
  auto run_once = [&] {
    Run r;
    r.stats = e.query_batch(workload, serve::AggregatePolicy::min, r.out);
    return r;
  };

  obs::configure({});
  const Run off = run_once();
  obs::ObsConfig metrics_cfg;
  metrics_cfg.metrics = true;
  obs::configure(metrics_cfg);
  const Run metrics = run_once();
  obs::ObsConfig full_cfg;
  full_cfg.metrics = true;
  full_cfg.trace = true;
  obs::configure(full_cfg);
  const Run full = run_once();
  obs::configure({});

  for (const Run* r : {&metrics, &full}) {
    EXPECT_TRUE(bits_equal(off.out, r->out));
    EXPECT_EQ(off.stats.pairs, r->stats.pairs);
    EXPECT_EQ(off.stats.tree_lookups, r->stats.tree_lookups);
    EXPECT_EQ(off.stats.lca_probes, r->stats.lca_probes);
    EXPECT_EQ(off.stats.cache_hits, r->stats.cache_hits);
    EXPECT_EQ(off.stats.cache_misses, r->stats.cache_misses);
    EXPECT_EQ(off.stats.cache_admissions, r->stats.cache_admissions);
    EXPECT_EQ(off.stats.cache_conflicts, r->stats.cache_conflicts);
  }
}

TEST(ObsDifferential, TenantCountersAndHashIdenticalOnAndOff) {
#if PMTE_OBS
  const ObsGuard guard;
#endif
  const auto g = test_graph();
  constexpr std::size_t kTenants = 4, kBatches = 4, kSwapAt = 2;

  std::vector<serve::TenantStreamSpec> specs(kTenants);
  for (std::size_t t = 0; t < kTenants; ++t) {
    specs[t].kind = (t % 2 == 0) ? serve::WorkloadKind::zipf
                                 : serve::WorkloadKind::uniform;
    specs[t].opts.pairs = 5000;
    specs[t].opts.zipf_s = 1.2;
  }
  const auto stream = serve::make_multi_tenant_workload(g, specs, 9003);

  struct Run {
    std::vector<Weight> out;
    std::vector<serve::TenantCounters> counters;
  };
  // A fresh Server per run: tenant state is cumulative, and the swap
  // exercises the server.swap span site as well as the phase spans.
  auto run_scenario = [&] {
    serve::Server server;
    const auto fp_a =
        server.load(serve::FrtEnsemble::build(g, 9001, ensemble_options()));
    const auto fp_b =
        server.load(serve::FrtEnsemble::build(g, 9004, ensemble_options()));
    for (std::size_t t = 0; t < kTenants; ++t) {
      serve::TenantConfig cfg;
      cfg.ensemble = fp_a;
      cfg.policy = (t < 2) ? serve::AggregatePolicy::min
                           : serve::AggregatePolicy::median;
      cfg.cache_capacity = 1 << 10;
      server.add_tenant(cfg);
    }
    Run r;
    std::vector<Weight> batch_out;
    for (std::size_t b = 0; b < kBatches; ++b) {
      if (b == kSwapAt) server.stage_swap(0, fp_b);
      const std::size_t lo = stream.size() * b / kBatches;
      const std::size_t hi = stream.size() * (b + 1) / kBatches;
      server.serve(std::span(stream).subspan(lo, hi - lo), batch_out);
      r.out.insert(r.out.end(), batch_out.begin(), batch_out.end());
    }
    for (std::size_t t = 0; t < kTenants; ++t) {
      r.counters.push_back(server.counters(static_cast<serve::TenantId>(t)));
    }
    return r;
  };

  obs::configure({});
  const Run off = run_scenario();
  obs::ObsConfig full_cfg;
  full_cfg.metrics = true;
  full_cfg.trace = true;
  obs::configure(full_cfg);
  const Run on = run_scenario();
  obs::configure({});

  EXPECT_TRUE(bits_equal(off.out, on.out));
  ASSERT_EQ(off.counters.size(), on.counters.size());
  for (std::size_t t = 0; t < kTenants; ++t) {
    const auto& a = off.counters[t];
    const auto& b = on.counters[t];
    EXPECT_EQ(a.batches, b.batches) << "tenant " << t;
    EXPECT_EQ(a.pairs, b.pairs) << "tenant " << t;
    EXPECT_EQ(a.tree_lookups, b.tree_lookups) << "tenant " << t;
    EXPECT_EQ(a.lca_probes, b.lca_probes) << "tenant " << t;
    EXPECT_EQ(a.cache_hits, b.cache_hits) << "tenant " << t;
    EXPECT_EQ(a.cache_misses, b.cache_misses) << "tenant " << t;
    EXPECT_EQ(a.cache_admissions, b.cache_admissions) << "tenant " << t;
    EXPECT_EQ(a.cache_conflicts, b.cache_conflicts) << "tenant " << t;
    EXPECT_EQ(a.epoch, b.epoch) << "tenant " << t;
    EXPECT_EQ(a.result_hash64, b.result_hash64) << "tenant " << t;
    EXPECT_EQ(a.result_hash32(), b.result_hash32()) << "tenant " << t;
  }
}

}  // namespace
}  // namespace pmte
