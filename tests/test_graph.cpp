// Unit tests for the CSR graph substrate (src/graph/graph.*).
#include <gtest/gtest.h>

#include "src/graph/graph.hpp"

namespace pmte {
namespace {

TEST(Graph, BasicConstruction) {
  auto g = Graph::from_edges(
      4, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}, {0, 3, 4.0}});
  EXPECT_EQ(g.num_vertices(), 4U);
  EXPECT_EQ(g.num_edges(), 4U);
  EXPECT_EQ(g.degree(0), 2U);
  EXPECT_EQ(g.degree(1), 2U);
  EXPECT_DOUBLE_EQ(g.min_edge_weight(), 1.0);
  EXPECT_DOUBLE_EQ(g.max_edge_weight(), 4.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 10.0);
}

TEST(Graph, NeighborsSortedAndSymmetric) {
  auto g = Graph::from_edges(5, {{3, 1, 1.0}, {3, 0, 2.0}, {3, 4, 0.5}});
  const auto nb = g.neighbors(3);
  ASSERT_EQ(nb.size(), 3U);
  EXPECT_EQ(nb[0].to, 0U);
  EXPECT_EQ(nb[1].to, 1U);
  EXPECT_EQ(nb[2].to, 4U);
  // Symmetry: each neighbour lists 3 back with the same weight.
  for (const auto& e : nb) {
    EXPECT_DOUBLE_EQ(g.edge_weight(e.to, 3), e.weight);
  }
}

TEST(Graph, ParallelEdgesKeepMinimum) {
  auto g = Graph::from_edges(2, {{0, 1, 5.0}, {1, 0, 2.0}, {0, 1, 9.0}});
  EXPECT_EQ(g.num_edges(), 1U);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 2.0);
}

TEST(Graph, SelfLoopsDropped) {
  auto g = Graph::from_edges(3, {{0, 0, 1.0}, {0, 1, 1.0}});
  EXPECT_EQ(g.num_edges(), 1U);
  EXPECT_EQ(g.degree(0), 1U);
}

TEST(Graph, EdgeWeightLookup) {
  auto g = Graph::from_edges(3, {{0, 1, 1.5}});
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 0), 1.5);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 0), 0.0);
  EXPECT_FALSE(is_finite(g.edge_weight(0, 2)));
}

TEST(Graph, EdgeListRoundTrips) {
  const std::vector<WeightedEdge> edges{{0, 1, 1.0}, {1, 2, 2.0}, {0, 2, 3.0}};
  auto g = Graph::from_edges(3, edges);
  const auto out = g.edge_list();
  ASSERT_EQ(out.size(), 3U);
  auto g2 = Graph::from_edges(3, out);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  for (Vertex v = 0; v < 3; ++v) {
    EXPECT_EQ(g2.degree(v), g.degree(v));
  }
}

TEST(Graph, AugmentedMergesEdges) {
  auto g = Graph::from_edges(3, {{0, 1, 1.0}});
  auto g2 = g.augmented({{1, 2, 2.0}, {0, 1, 0.5}});
  EXPECT_EQ(g2.num_edges(), 2U);
  EXPECT_DOUBLE_EQ(g2.edge_weight(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(g2.edge_weight(1, 2), 2.0);
  // Original untouched.
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 1.0);
  EXPECT_EQ(g.num_edges(), 1U);
}

TEST(Graph, RejectsInvalidInput) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 5, 1.0}}), std::logic_error);
  EXPECT_THROW(Graph::from_edges(2, {{0, 1, 0.0}}), std::logic_error);
  EXPECT_THROW(Graph::from_edges(2, {{0, 1, -1.0}}), std::logic_error);
  EXPECT_THROW(Graph::from_edges(2, {{0, 1, inf_weight()}}),
               std::logic_error);
}

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0U);
  EXPECT_EQ(g.num_edges(), 0U);
  auto g1 = Graph::from_edges(1, {});
  EXPECT_EQ(g1.num_vertices(), 1U);
  EXPECT_EQ(g1.degree(0), 0U);
}

}  // namespace
}  // namespace pmte
