// Tests for the k-Shortest Distance Problem over the all-paths semiring
// (Section 3.3, Examples 3.23/3.24).
//
// Note on test strength (see DESIGN.md): because Pmin,+ contains loop-free
// paths only, a dominating suffix at an intermediate vertex may be
// non-extendable (it would close a loop), so for 2 ≤ k < ∞ the filtered
// fixpoint is not always the brute-force list of k shortest *simple*
// paths.  The exactly-checkable regimes are k = 1 (a dominating suffix
// always yields a strictly better competitor, extendable or not) and the
// unbounded filter (nothing is ever dropped except non-target paths).  For
// intermediate k we assert soundness: every reported path is a real path
// with its true weight, and the best reported path is the true optimum.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "src/graph/generators.hpp"
#include "src/mbf/algorithms.hpp"

namespace pmte {
namespace {

/// All simple start→target paths with weights (exponential; tiny graphs).
std::vector<PathEntry> enumerate_paths(const Graph& g, Vertex start,
                                       Vertex target) {
  std::vector<PathEntry> out;
  std::vector<Vertex> cur{start};
  std::vector<bool> used(g.num_vertices(), false);
  used[start] = true;
  std::function<void(Vertex, double)> dfs = [&](Vertex v, double w) {
    if (v == target) {
      out.push_back(PathEntry{VertexPath{cur}, w});
      return;  // simple paths cannot revisit the target
    }
    for (const auto& e : g.neighbors(v)) {
      if (used[e.to]) continue;
      used[e.to] = true;
      cur.push_back(e.to);
      dfs(e.to, w + e.weight);
      cur.pop_back();
      used[e.to] = false;
    }
  };
  dfs(start, 0.0);
  std::sort(out.begin(), out.end(), [](const PathEntry& a, const PathEntry& b) {
    return a.weight < b.weight || (a.weight == b.weight && a.path < b.path);
  });
  return out;
}

class KsdpBrute : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Graph random_graph(std::uint64_t salt = 0) {
    Rng rng(GetParam() + salt);
    return make_gnm(8, 14, {1.0, 4.0}, rng);
  }
};

TEST_P(KsdpBrute, KOneMatchesEnumeration) {
  const auto g = random_graph();
  const Vertex target = 0;
  const auto result = mbf_ksdp(g, target, 1);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto all = enumerate_paths(g, v, target);
    if (all.empty()) {
      EXPECT_EQ(result[v].size(), 0U);
      continue;
    }
    ASSERT_EQ(result[v].size(), 1U) << "vertex " << v;
    const auto& got = result[v].entries()[0];
    EXPECT_EQ(got.path, all[0].path) << "vertex " << v;
    EXPECT_NEAR(got.weight, all[0].weight, 1e-9);
  }
}

TEST_P(KsdpBrute, UnboundedFilterFindsAllPaths) {
  const auto g = random_graph(1);
  const Vertex target = 2;
  const auto result = mbf_ksdp(g, target, static_cast<std::size_t>(-1));
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto all = enumerate_paths(g, v, target);
    ASSERT_EQ(result[v].size(), all.size()) << "vertex " << v;
    for (const auto& pe : all) {
      EXPECT_NEAR(result[v].weight_of(pe.path), pe.weight, 1e-9)
          << "vertex " << v;
    }
  }
}

TEST_P(KsdpBrute, IntermediateKIsSound) {
  const auto g = random_graph(2);
  const Vertex target = 1;
  const std::size_t k = 3;
  const auto result = mbf_ksdp(g, target, k);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto all = enumerate_paths(g, v, target);
    EXPECT_LE(result[v].size(), k);
    // Soundness: every reported path is a true path with its true weight.
    for (const auto& e : result[v].entries()) {
      EXPECT_EQ(e.path.front(), v);
      EXPECT_EQ(e.path.back(), target);
      const auto it =
          std::find_if(all.begin(), all.end(), [&](const PathEntry& pe) {
            return pe.path == e.path;
          });
      ASSERT_NE(it, all.end()) << "fabricated path at vertex " << v;
      EXPECT_NEAR(it->weight, e.weight, 1e-9);
    }
    // The best reported path is the true optimum.
    if (!all.empty()) {
      ASSERT_GE(result[v].size(), 1U);
      double best = inf_weight();
      for (const auto& e : result[v].entries()) best = std::min(best, e.weight);
      EXPECT_NEAR(best, all[0].weight, 1e-9) << "vertex " << v;
    }
  }
}

TEST_P(KsdpBrute, DistinctWeightsAreDistinct) {
  Rng rng(GetParam() + 7);
  // Unit weights force ties; k-DSDP must report pairwise distinct weights.
  const auto g = make_gnm(8, 13, {1.0, 1.0}, rng);
  const Vertex target = 1;
  const auto result = mbf_ksdp(g, target, 2, ~0U, /*distinct=*/true);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    std::vector<double> ws;
    for (const auto& e : result[v].entries()) ws.push_back(e.weight);
    std::sort(ws.begin(), ws.end());
    EXPECT_TRUE(std::adjacent_find(ws.begin(), ws.end()) == ws.end())
        << "duplicate weights at vertex " << v;
    // Shortest distance is exact (k=1-strength guarantee).
    const auto all = enumerate_paths(g, v, target);
    if (!all.empty()) {
      ASSERT_FALSE(ws.empty());
      EXPECT_NEAR(ws.front(), all[0].weight, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KsdpBrute,
                         ::testing::Values(201, 202, 203, 204));

TEST(Ksdp, PathGraphExactPaths) {
  // On a path graph there is exactly one simple path per pair.
  auto g = make_path(5, {2.0, 2.0});
  const auto result = mbf_ksdp(g, 0, 3);
  for (Vertex v = 1; v < 5; ++v) {
    ASSERT_EQ(result[v].size(), 1U);
    const auto& e = result[v].entries()[0];
    EXPECT_EQ(e.path.front(), v);
    EXPECT_EQ(e.path.back(), 0U);
    EXPECT_EQ(e.path.hops.size(), v + 1U);
    EXPECT_DOUBLE_EQ(e.weight, 2.0 * v);
  }
}

TEST(Ksdp, TargetKeepsTrivialPath) {
  auto g = make_path(3);
  const auto result = mbf_ksdp(g, 2, 2);
  EXPECT_DOUBLE_EQ(result[2].weight_of(VertexPath{{2}}), 0.0);
}

TEST(Ksdp, CycleOffersTwoPaths) {
  // A 4-cycle with distinct weights: both directions are simple paths.
  auto g = Graph::from_edges(
      4, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 4.0}, {3, 0, 8.0}});
  const auto result = mbf_ksdp(g, 0, 2);
  // Vertex 2 reaches 0 clockwise (2,1,0): 3 and counter-clockwise (2,3,0): 12.
  ASSERT_EQ(result[2].size(), 2U);
  EXPECT_DOUBLE_EQ(result[2].weight_of(VertexPath{{2, 1, 0}}), 3.0);
  EXPECT_DOUBLE_EQ(result[2].weight_of(VertexPath{{2, 3, 0}}), 12.0);
}

}  // namespace
}  // namespace pmte
