// Tests for LE lists (Section 7.2): pipeline agreement, structural
// invariants, and the O(log n) length bound (Lemma 7.6).
#include <gtest/gtest.h>

#include <cmath>

#include "src/frt/le_lists.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/shortest_paths.hpp"
#include "tests/support/reference.hpp"

namespace pmte {
namespace {

using test::brute_force_le_lists;
using test::expect_valid_le_lists;

class LePipelines : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Graph random_graph() {
    Rng rng(GetParam());
    return make_gnm(48, 110, {1.0, 6.0}, rng);
  }
};

TEST_P(LePipelines, IterationMatchesBruteForce) {
  const auto g = random_graph();
  Rng rng(GetParam() + 1);
  const auto order = VertexOrder::random(g.num_vertices(), rng);
  const auto le = le_lists_iteration(g, order);
  EXPECT_TRUE(le.converged);
  expect_valid_le_lists(le.lists, order);
  const auto brute = brute_force_le_lists(g, order);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(approx_equal(le.lists[v], brute[v])) << "vertex " << v;
  }
}

TEST_P(LePipelines, SequentialMatchesIteration) {
  const auto g = random_graph();
  Rng rng(GetParam() + 2);
  const auto order = VertexOrder::random(g.num_vertices(), rng);
  const auto a = le_lists_iteration(g, order);
  const auto b = le_lists_sequential(g, order);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(approx_equal(a.lists[v], b.lists[v])) << "vertex " << v;
  }
}

TEST_P(LePipelines, MetricPipelineMatchesOnCompleteGraph) {
  Rng rng(GetParam() + 3);
  const auto g = make_complete(30, {1.0, 9.0}, rng);
  const auto order = VertexOrder::random(30, rng);
  const auto apsp = exact_apsp(g);
  const auto a = le_lists_from_metric(apsp, order);
  const auto b = le_lists_sequential(g, order);
  for (Vertex v = 0; v < 30; ++v) {
    EXPECT_TRUE(approx_equal(a.lists[v], b.lists[v])) << "vertex " << v;
  }
  EXPECT_EQ(a.iterations, 1U);  // a metric is a graph of SPD 1
}

INSTANTIATE_TEST_SUITE_P(Seeds, LePipelines,
                         ::testing::Values(501, 502, 503, 504, 505, 506));

TEST(LeLists, IterationCountTracksSpd) {
  // On a path graph the fixpoint needs Θ(n) iterations (Section 8.1's
  // weakness that motivates the oracle).
  const auto g = make_path(60);
  Rng rng(1);
  const auto order = VertexOrder::random(60, rng);
  const auto le = le_lists_iteration(g, order);
  EXPECT_TRUE(le.converged);
  EXPECT_GE(le.iterations, 30U);
}

TEST(LeLists, LengthIsLogarithmic) {
  // Lemma 7.6: E[|list|] ≈ H_n ≈ ln n; check the mean over vertices on a
  // few permutations and a generous whp-style max.
  Rng rng(2);
  const Vertex n = 400;
  const auto g = make_gnm(n, 1200, {1.0, 3.0}, rng);
  const double ln_n = std::log(static_cast<double>(n));
  for (int trial = 0; trial < 3; ++trial) {
    const auto order = VertexOrder::random(n, rng);
    const auto le = le_lists_sequential(g, order);
    double total = 0.0;
    std::size_t worst = 0;
    for (const auto& l : le.lists) {
      total += static_cast<double>(l.size());
      worst = std::max(worst, l.size());
    }
    EXPECT_LT(total / n, 3.0 * ln_n);
    EXPECT_LT(static_cast<double>(worst), 8.0 * ln_n);
  }
}

TEST(LeLists, RankZeroListIsSingleton) {
  // The minimum-order vertex dominates everything: its own list is {(0,0)}.
  Rng rng(3);
  const auto g = make_gnm(25, 60, {1.0, 2.0}, rng);
  const auto order = VertexOrder::random(25, rng);
  const auto le = le_lists_sequential(g, order);
  const Vertex lowest = order.vertex_of[0];
  ASSERT_EQ(le.lists[lowest].size(), 1U);
  EXPECT_DOUBLE_EQ(le.lists[lowest].at(0), 0.0);
}

TEST(LeLists, IdentityOrderOnPath) {
  // With the identity order on a path 0-1-2-…, vertex v's list is exactly
  // {(w, v−w) : w ≤ v}: every left vertex is strictly closer than all
  // smaller ids, while every right vertex is dominated (the identity order
  // is the worst case — length Θ(n), unlike random orders, Lemma 7.6).
  const auto g = make_path(10);
  const auto order = VertexOrder::identity(10);
  const auto le = le_lists_sequential(g, order);
  for (Vertex v = 0; v < 10; ++v) {
    ASSERT_EQ(le.lists[v].size(), static_cast<std::size_t>(v) + 1)
        << "vertex " << v;
    for (Vertex w = 0; w <= v; ++w) {
      EXPECT_DOUBLE_EQ(le.lists[v].at(w), static_cast<double>(v - w));
    }
  }
}

TEST(LeLists, OrderSizeMismatchThrows) {
  const auto g = make_path(5);
  const auto order = VertexOrder::identity(4);
  EXPECT_THROW((void)le_lists_iteration(g, order), std::logic_error);
  EXPECT_THROW((void)le_lists_sequential(g, order), std::logic_error);
}

}  // namespace
}  // namespace pmte
