// Tests for level sampling (Lemma 4.1) and the simulated graph H
// (Definition 4.2, Theorem 4.5).
#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/generators.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/simgraph/simulated_graph.hpp"

namespace pmte {
namespace {

TEST(Levels, SamplingBasicProperties) {
  Rng rng(1);
  const auto la = LevelAssignment::sample(1000, rng);
  EXPECT_EQ(la.num_vertices(), 1000U);
  unsigned max_seen = 0;
  std::size_t level0 = 0;
  for (Vertex v = 0; v < 1000; ++v) {
    max_seen = std::max(max_seen, la.level(v));
    level0 += (la.level(v) == 0);
  }
  EXPECT_EQ(max_seen, la.max_level());
  // Roughly half the vertices stay at level 0.
  EXPECT_NEAR(static_cast<double>(level0), 500.0, 100.0);
}

TEST(Levels, LambdaIsLogarithmic) {
  // Lemma 4.1: Λ ∈ O(log n) w.h.p. — over many runs Λ stays ≤ 3·log2(n).
  Rng rng(2);
  const Vertex n = 512;
  for (int run = 0; run < 50; ++run) {
    const auto la = LevelAssignment::sample(n, rng);
    EXPECT_LE(la.max_level(), 3 * static_cast<unsigned>(std::log2(n)));
  }
}

TEST(Levels, GeometricDecay) {
  Rng rng(3);
  const auto la = LevelAssignment::sample(4000, rng);
  for (unsigned lam = 0; lam + 1 <= la.max_level(); ++lam) {
    const auto upper = la.vertices_at_or_above(lam + 1).size();
    const auto lower = la.vertices_at_or_above(lam).size();
    EXPECT_LT(upper, lower);  // strictly fewer at each higher level
  }
}

TEST(Levels, EdgeLevelIsMin) {
  auto la = LevelAssignment::from_levels({0, 2, 1});
  EXPECT_EQ(la.max_level(), 2U);
  EXPECT_EQ(la.edge_level(0, 1), 0U);
  EXPECT_EQ(la.edge_level(1, 2), 1U);
}

TEST(SimGraph, EdgeWeightFormula) {
  // Hand-checkable instance: path 0-1-2, unit weights, fixed levels.
  const auto g = make_path(3);
  auto levels = LevelAssignment::from_levels({0, 1, 0});
  const double eps = 0.5;
  SimulatedGraph h(g, /*d=*/2, eps, std::move(levels));
  // Λ = 1; scale(λ) = 1.5^{1−λ}.
  EXPECT_DOUBLE_EQ(h.level_scale(1), 1.0);
  EXPECT_DOUBLE_EQ(h.level_scale(0), 1.5);
  // ω_Λ(0,1): λ(0,1)=0 → 1.5 · dist²(0,1)=1 → 1.5.
  EXPECT_DOUBLE_EQ(h.edge_weight_exact(0, 1), 1.5);
  // ω_Λ(0,2): λ=0 → 1.5 · dist²(0,2)=2 → 3.
  EXPECT_DOUBLE_EQ(h.edge_weight_exact(0, 2), 3.0);
  const auto mat = h.materialize(true);
  EXPECT_DOUBLE_EQ(mat.edge_weight(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(mat.edge_weight(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(mat.edge_weight(1, 2), 1.5);
}

TEST(SimGraph, HopBoundLimitsMaterialisedEdges) {
  // With d = 1 only direct edges materialise.
  const auto g = make_path(4);
  auto levels = LevelAssignment::from_levels({0, 0, 0, 0});
  SimulatedGraph h(g, /*d=*/1, 0.0, std::move(levels));
  const auto mat = h.materialize(true);
  EXPECT_EQ(mat.num_edges(), 3U);  // the path's own edges only
}

class SimGraphSandwich : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimGraphSandwich, DistanceSandwichHolds) {
  // Theorem 4.5: dist_G ≤ dist_H ≤ (1+ε̂)^{Λ+1} dist_G  (with an exact
  // hop set, so dist^d = dist).
  Rng rng(GetParam());
  const auto g = make_gnm(60, 150, {1.0, 4.0}, rng);
  const auto hs = build_exact_hopset(g);
  const double eps = 0.1;
  const auto h = build_simulated_graph(g, hs, eps, rng);
  const auto mat = h.materialize(true);
  const double bound =
      std::pow(1.0 + eps, static_cast<double>(h.max_level()) + 1.0);
  for (Vertex s : {0U, 11U, 37U}) {
    const auto dg = dijkstra(g, s).dist;
    const auto dh = dijkstra(mat, s).dist;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (v == s) continue;
      EXPECT_GE(dh[v], dg[v] - 1e-9) << "H must dominate G";
      EXPECT_LE(dh[v], bound * dg[v] + 1e-9) << "H must not stretch too far";
    }
  }
}

TEST_P(SimGraphSandwich, SpdCollapsesOnPathGraphs) {
  // The headline structural effect (Theorem 4.5): SPD(H) ∈ O(log² n)
  // although SPD(G) = n−1.
  Rng rng(GetParam() + 10);
  const Vertex n = 128;
  const auto g = make_path(n);
  const auto hs = build_hub_hopset(g, {}, rng);
  const auto h = build_simulated_graph(g, hs, 1.0 / std::log2(n), rng);
  const auto mat = h.materialize(false);  // Dijkstra distances (fast path)
  const auto info = shortest_path_diameter(mat);
  const auto log2n = std::log2(static_cast<double>(n));
  EXPECT_EQ(shortest_path_diameter(g).spd, n - 1);
  EXPECT_LE(info.spd, static_cast<unsigned>(4.0 * log2n * log2n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimGraphSandwich,
                         ::testing::Values(301, 302, 303));

TEST(SimGraph, RejectsBadParameters) {
  const auto g = make_path(3);
  EXPECT_THROW(SimulatedGraph(g, 0, 0.1, LevelAssignment::from_levels({0, 0, 0})),
               std::logic_error);
  EXPECT_THROW(SimulatedGraph(g, 1, -0.5, LevelAssignment::from_levels({0, 0, 0})),
               std::logic_error);
  EXPECT_THROW(SimulatedGraph(g, 1, 0.1, LevelAssignment::from_levels({0, 0})),
               std::logic_error);
}

}  // namespace
}  // namespace pmte
