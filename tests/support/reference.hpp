#pragma once
// Brute-force reference oracles shared by the test suites: Dijkstra
// distances, exact APSP-based LE lists, and the structural LE-list
// validator — previously copied per suite.

#include <vector>

#include "src/algebra/distance_map.hpp"
#include "src/frt/le_lists.hpp"
#include "src/graph/graph.hpp"

namespace pmte::test {

/// Reference single-source distances (binary-heap Dijkstra).
[[nodiscard]] std::vector<Weight> dijkstra_reference(const Graph& g,
                                                     Vertex source);

/// Brute-force LE lists from exact APSP: per vertex collect every finite
/// (rank, distance) pair and apply the least-element filter — Θ(n² log n).
[[nodiscard]] std::vector<DistanceMap> brute_force_le_lists(
    const Graph& g, const VertexOrder& order);

/// Structural LE-list invariants: staircase property, own entry at
/// distance 0, rank-0 vertex present (connected graphs).  Reports gtest
/// failures on violation.
void expect_valid_le_lists(const std::vector<DistanceMap>& lists,
                           const VertexOrder& order);

}  // namespace pmte::test
