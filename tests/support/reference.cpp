#include "tests/support/reference.hpp"

#include <gtest/gtest.h>

#include "src/graph/shortest_paths.hpp"

namespace pmte::test {

std::vector<Weight> dijkstra_reference(const Graph& g, Vertex source) {
  return dijkstra(g, source).dist;
}

std::vector<DistanceMap> brute_force_le_lists(const Graph& g,
                                              const VertexOrder& order) {
  const Vertex n = g.num_vertices();
  const auto apsp = exact_apsp(g);
  std::vector<DistanceMap> lists(n);
  for (Vertex v = 0; v < n; ++v) {
    std::vector<DistEntry> entries;
    for (Vertex w = 0; w < n; ++w) {
      const Weight d = apsp[static_cast<std::size_t>(v) * n + w];
      if (is_finite(d)) entries.push_back(DistEntry{order.rank_of[w], d});
    }
    auto m = DistanceMap::from_entries(std::move(entries));
    m.keep_least_elements();
    lists[v] = std::move(m);
  }
  return lists;
}

void expect_valid_le_lists(const std::vector<DistanceMap>& lists,
                           const VertexOrder& order) {
  ASSERT_EQ(lists.size(), order.n());
  for (Vertex v = 0; v < order.n(); ++v) {
    EXPECT_TRUE(lists[v].is_least_element_list()) << "vertex " << v;
    // Own entry at distance 0.
    EXPECT_DOUBLE_EQ(lists[v].at(order.rank_of[v]), 0.0) << "vertex " << v;
    // Rank-0 vertex present in every list of a connected graph.
    EXPECT_TRUE(is_finite(lists[v].at(0))) << "vertex " << v;
  }
}

}  // namespace pmte::test
