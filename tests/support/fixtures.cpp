#include "tests/support/fixtures.hpp"

#include <cmath>
#include <stdexcept>

namespace pmte::test {

std::vector<std::uint64_t> test_seeds(std::size_t count, std::uint64_t base) {
  std::uint64_t state = base * 0x100000001b3ULL + 0x51ed270b3a4f9b17ULL;
  std::vector<std::uint64_t> seeds(count);
  for (std::size_t i = 0; i < count; ++i) seeds[i] = splitmix64(state);
  return seeds;
}

Graph support_graph(const std::string& family, Vertex n,
                    std::uint64_t seed) {
  return make_family_graph(family, n, seed);
}

std::vector<SmallGraphCase> small_graph_corpus(std::size_t count,
                                               std::uint64_t base_seed) {
  static const char* kFamilies[] = {"path",        "cycle",    "grid",
                                    "star",        "gnm",      "geometric",
                                    "binary_tree", "powerlaw"};
  constexpr std::size_t kNumFamilies = std::size(kFamilies);
  const auto seeds = test_seeds(count, base_seed);
  std::vector<SmallGraphCase> corpus;
  corpus.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const char* family = kFamilies[i % kNumFamilies];
    const auto n = static_cast<Vertex>(8 + (seeds[i] % 57));  // 8..64
    std::uint64_t child = seeds[i];
    corpus.push_back(SmallGraphCase{
        std::string(family) + "#" + std::to_string(i),
        support_graph(family, n, seeds[i]), splitmix64(child)});
  }
  return corpus;
}

std::vector<SmallGraphCase> serve_graph_corpus(std::size_t count,
                                               std::uint64_t base_seed) {
  static const char* kFamilies[] = {"gnm",      "grid",        "powerlaw",
                                    "geometric", "cliquechain", "cycle"};
  constexpr std::size_t kNumFamilies = std::size(kFamilies);
  const auto seeds = test_seeds(count, base_seed ^ 0x5e7fe5e7fe5e7fe5ULL);
  std::vector<SmallGraphCase> corpus;
  corpus.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const char* family = kFamilies[i % kNumFamilies];
    const auto n = static_cast<Vertex>(64 + (seeds[i] % 129));  // 64..192
    std::uint64_t child = seeds[i];
    corpus.push_back(SmallGraphCase{
        std::string(family) + "#" + std::to_string(i),
        support_graph(family, n, seeds[i]), splitmix64(child)});
  }
  return corpus;
}

SimulatedGraph make_test_simgraph(const Graph& g, std::uint64_t seed,
                                  bool exact_hopset, double eps_hat) {
  Rng rng(seed);
  const auto hs =
      exact_hopset ? build_exact_hopset(g) : build_hub_hopset(g, {}, rng);
  return build_simulated_graph(g, hs, eps_hat, rng);
}

}  // namespace pmte::test
