#include "tests/support/fixtures.hpp"

#include <cmath>
#include <stdexcept>

namespace pmte::test {

std::vector<std::uint64_t> test_seeds(std::size_t count, std::uint64_t base) {
  std::uint64_t state = base * 0x100000001b3ULL + 0x51ed270b3a4f9b17ULL;
  std::vector<std::uint64_t> seeds(count);
  for (std::size_t i = 0; i < count; ++i) seeds[i] = splitmix64(state);
  return seeds;
}

Graph support_graph(const std::string& family, Vertex n,
                    std::uint64_t seed) {
  Rng rng(seed);
  if (family == "path") return make_path(n, {1.0, 2.0}, rng);
  if (family == "cycle") return make_cycle(n, {1.0, 2.0}, rng);
  if (family == "grid") {
    Vertex side = 1;
    while (side * side < n) ++side;
    return make_grid(side, side, {1.0, 3.0}, rng);
  }
  if (family == "star") return make_star(n, {1.0, 5.0}, rng);
  if (family == "gnm") {
    return make_gnm(n, 3 * static_cast<std::size_t>(n), {1.0, 4.0}, rng);
  }
  if (family == "geometric") {
    const double radius = 2.2 / std::sqrt(static_cast<double>(n));
    return make_geometric(n, radius, rng);
  }
  if (family == "binary_tree") return make_binary_tree(n, {1.0, 2.0}, rng);
  if (family == "powerlaw") return make_powerlaw(n, 2, seed);
  if (family == "cliquechain") {
    return make_clique_chain(std::max<Vertex>(1, n / 8), 8, {1.0, 2.0}, rng);
  }
  throw std::invalid_argument("support_graph: unknown family " + family);
}

Graph make_powerlaw(Vertex n, unsigned attach, std::uint64_t seed) {
  PMTE_CHECK(n >= 2 && attach >= 1, "make_powerlaw: degenerate parameters");
  Rng rng(seed);
  // Repeated-endpoint list: drawing a uniform element is a draw
  // proportional to degree.
  std::vector<Vertex> endpoints;
  std::vector<WeightedEdge> edges;
  edges.push_back(WeightedEdge{0, 1, rng.uniform(1.0, 2.0)});
  endpoints.push_back(0);
  endpoints.push_back(1);
  for (Vertex v = 2; v < n; ++v) {
    const auto k = std::min<std::size_t>(attach, v);
    std::vector<Vertex> targets;
    while (targets.size() < k) {
      const Vertex t = endpoints[rng.below(endpoints.size())];
      bool dup = false;
      for (const Vertex u : targets) dup = dup || u == t;
      if (!dup) targets.push_back(t);
    }
    for (const Vertex t : targets) {
      edges.push_back(WeightedEdge{v, t, rng.uniform(1.0, 2.0)});
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

std::vector<SmallGraphCase> small_graph_corpus(std::size_t count,
                                               std::uint64_t base_seed) {
  static const char* kFamilies[] = {"path",        "cycle",    "grid",
                                    "star",        "gnm",      "geometric",
                                    "binary_tree", "powerlaw"};
  constexpr std::size_t kNumFamilies = std::size(kFamilies);
  const auto seeds = test_seeds(count, base_seed);
  std::vector<SmallGraphCase> corpus;
  corpus.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const char* family = kFamilies[i % kNumFamilies];
    const auto n = static_cast<Vertex>(8 + (seeds[i] % 57));  // 8..64
    std::uint64_t child = seeds[i];
    corpus.push_back(SmallGraphCase{
        std::string(family) + "#" + std::to_string(i),
        support_graph(family, n, seeds[i]), splitmix64(child)});
  }
  return corpus;
}

SimulatedGraph make_test_simgraph(const Graph& g, std::uint64_t seed,
                                  bool exact_hopset, double eps_hat) {
  Rng rng(seed);
  const auto hs =
      exact_hopset ? build_exact_hopset(g) : build_hub_hopset(g, {}, rng);
  return build_simulated_graph(g, hs, eps_hat, rng);
}

}  // namespace pmte::test
