#pragma once
// Shared graph fixtures for the test suites.
//
// Before this library every suite carried its own copy of the family
// switch, the small-graph corpus, and the seed plumbing; tests now share
// one deterministic source so fixtures, seeds, and family coverage stay in
// sync across suites.

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/graph/graph.hpp"
#include "src/hopset/hopset.hpp"
#include "src/simgraph/simulated_graph.hpp"
#include "src/util/rng.hpp"

namespace pmte::test {

/// Deterministic per-case seeds: splitmix64 of (base, index) — well spread
/// even for consecutive bases, unlike base + index.
[[nodiscard]] std::vector<std::uint64_t> test_seeds(std::size_t count,
                                                    std::uint64_t base);

/// A graph by family name, seeded — thin alias of the library's shared
/// dispatcher (src/graph/generators.hpp: make_family_graph), kept so the
/// suites read uniformly.  Families: "path", "cycle", "grid", "star",
/// "gnm", "geometric", "binary_tree", "powerlaw", "cliquechain".
[[nodiscard]] Graph support_graph(const std::string& family, Vertex n,
                                  std::uint64_t seed);

/// One corpus entry for randomized property tests.
struct SmallGraphCase {
  std::string name;     ///< family plus index, for failure messages
  Graph graph;          ///< connected, n ∈ [8, 64]
  std::uint64_t seed;   ///< per-case seed for downstream randomness
};

/// A deterministic corpus of `count` small connected graphs cycling
/// through the families above with varying sizes and weights.
[[nodiscard]] std::vector<SmallGraphCase> small_graph_corpus(
    std::size_t count, std::uint64_t base_seed);

/// Medium-size corpus for the serving layer (index/ensemble suites and
/// their round-trip tests): same families, n ∈ [64, 192] — big enough for
/// multi-level trees and meaningful batches, small enough for brute-force
/// cross-checks.
[[nodiscard]] std::vector<SmallGraphCase> serve_graph_corpus(
    std::size_t count, std::uint64_t base_seed);

/// Build the simulated graph H for `g` the way the pipelines do: hub hop
/// set (or the exact d = 1 hop set, keeping oracle arithmetic bit-exact)
/// plus sampled levels.  `eps_hat` = 0 keeps all level scales at 1.0.
[[nodiscard]] SimulatedGraph make_test_simgraph(const Graph& g,
                                                std::uint64_t seed,
                                                bool exact_hopset = true,
                                                double eps_hat = 0.0);

}  // namespace pmte::test
