// Reference-model tests for Dijkstra / Bellman-Ford / BFS / SPD
// (src/graph/shortest_paths.*), including cross-validation sweeps on random
// graphs: the rest of the library treats these as ground truth.
#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/generators.hpp"
#include "src/graph/shortest_paths.hpp"

namespace pmte {
namespace {

TEST(Dijkstra, PathGraphDistances) {
  auto g = make_path(6, {2.0, 2.0});
  const auto r = dijkstra(g, 0);
  for (Vertex v = 0; v < 6; ++v) EXPECT_DOUBLE_EQ(r.dist[v], 2.0 * v);
  EXPECT_EQ(r.parent[0], no_vertex());
  EXPECT_EQ(r.parent[3], 2U);
}

TEST(Dijkstra, DisconnectedReportsInfinity) {
  auto g = Graph::from_edges(4, {{0, 1, 1.0}, {2, 3, 1.0}});
  const auto r = dijkstra(g, 0);
  EXPECT_TRUE(is_finite(r.dist[1]));
  EXPECT_FALSE(is_finite(r.dist[2]));
  EXPECT_FALSE(is_finite(r.dist[3]));
}

TEST(Dijkstra, AgreesWithBellmanFordFixpoint) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    Rng rng(seed);
    auto g = make_gnm(60, 150, {0.5, 5.0}, rng);
    const auto d = dijkstra(g, 0).dist;
    const auto bf = bellman_ford_hops(g, 0, 60);
    for (Vertex v = 0; v < 60; ++v) EXPECT_NEAR(d[v], bf[v], 1e-9);
  }
}

TEST(BellmanFord, HopLimitedMonotone) {
  Rng rng(5);
  auto g = make_gnm(40, 80, {1.0, 3.0}, rng);
  std::vector<Weight> prev = bellman_ford_hops(g, 0, 0);
  for (unsigned h = 1; h <= 8; ++h) {
    const auto cur = bellman_ford_hops(g, 0, h);
    for (Vertex v = 0; v < 40; ++v) EXPECT_LE(cur[v], prev[v]);
    prev = cur;
  }
}

TEST(BellmanFord, ExactHopSemantics) {
  // Path graph: dist^h(0, v) is finite iff v <= h.
  auto g = make_path(10);
  for (unsigned h = 0; h < 10; ++h) {
    const auto d = bellman_ford_hops(g, 0, h);
    for (Vertex v = 0; v < 10; ++v) {
      if (v <= h) {
        EXPECT_DOUBLE_EQ(d[v], static_cast<double>(v));
      } else {
        EXPECT_FALSE(is_finite(d[v]));
      }
    }
  }
}

TEST(MultiSource, MatchesMinOverSingleSources) {
  Rng rng(6);
  auto g = make_gnm(50, 120, {1.0, 4.0}, rng);
  const std::vector<Vertex> sources{3, 17, 42};
  const auto ms = multi_source_dijkstra(g, sources);
  std::vector<std::vector<Weight>> single;
  for (Vertex s : sources) single.push_back(dijkstra(g, s).dist);
  for (Vertex v = 0; v < 50; ++v) {
    Weight best = inf_weight();
    Vertex who = no_vertex();
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (single[i][v] < best) {
        best = single[i][v];
        who = sources[i];
      }
    }
    EXPECT_NEAR(ms.dist[v], best, 1e-9);
    // The owner must achieve the optimal distance (ties may differ).
    bool owner_ok = false;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (sources[i] == ms.owner[v] && std::abs(single[i][v] - best) < 1e-9) {
        owner_ok = true;
      }
    }
    EXPECT_TRUE(owner_ok) << "vertex " << v << " owner " << ms.owner[v];
    (void)who;
  }
}

TEST(Bfs, LevelsOnGrid) {
  auto g = make_grid(3, 3);
  const auto h = bfs_hops(g, 0);
  EXPECT_EQ(h[0], 0U);
  EXPECT_EQ(h[4], 2U);  // centre of the 3x3 grid
  EXPECT_EQ(h[8], 4U);  // opposite corner
}

TEST(MinHops, PrefersFewerHopsAmongEqualWeight) {
  // Two shortest 0→3 paths of weight 3: 0-1-2-3 (3 hops) and 0-3 via a
  // direct edge of weight 3 (1 hop).
  auto g = Graph::from_edges(
      4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {0, 3, 3.0}});
  const auto hops = min_hops_on_shortest_paths(g, 0);
  EXPECT_EQ(hops[3], 1U);
  EXPECT_EQ(hops[1], 1U);
  EXPECT_EQ(hops[2], 2U);
}

TEST(Spd, KnownTopologies) {
  EXPECT_EQ(shortest_path_diameter(make_path(17)).spd, 16U);
  EXPECT_EQ(shortest_path_diameter(make_complete(12)).spd, 1U);
  EXPECT_EQ(shortest_path_diameter(make_star(9)).spd, 2U);
  // Unit cycle of even length n: SPD = n/2.
  EXPECT_EQ(shortest_path_diameter(make_cycle(10)).spd, 5U);
}

TEST(Spd, HopDiameterVsSpd) {
  // Weighted caterpillar: hop diameter small relative to SPD when spine
  // weights force shortest paths along many hops.
  auto g = make_caterpillar(30, 1, 1.0, 100.0);
  const auto info = shortest_path_diameter(g);
  EXPECT_GE(info.spd, 29U);
  EXPECT_GE(info.hop_diam, 29U);
}

TEST(Apsp, MatchesPerSourceDijkstra) {
  Rng rng(8);
  auto g = make_gnm(30, 70, {1.0, 2.0}, rng);
  const auto apsp = exact_apsp(g);
  for (Vertex s : {0U, 7U, 29U}) {
    const auto d = dijkstra(g, s).dist;
    for (Vertex v = 0; v < 30; ++v) {
      EXPECT_NEAR(apsp[static_cast<std::size_t>(s) * 30 + v], d[v], 1e-9);
    }
  }
}

TEST(Apsp, SymmetricAndTriangle) {
  Rng rng(9);
  auto g = make_gnm(25, 60, {1.0, 9.0}, rng);
  const auto d = exact_apsp(g);
  const auto at = [&](Vertex i, Vertex j) {
    return d[static_cast<std::size_t>(i) * 25 + j];
  };
  for (Vertex i = 0; i < 25; ++i) {
    EXPECT_DOUBLE_EQ(at(i, i), 0.0);
    for (Vertex j = 0; j < 25; ++j) {
      EXPECT_NEAR(at(i, j), at(j, i), 1e-9);
      for (Vertex k = 0; k < 25; ++k) {
        EXPECT_LE(at(i, j), at(i, k) + at(k, j) + 1e-9);
      }
    }
  }
}

TEST(Connectivity, DetectsDisconnected) {
  EXPECT_TRUE(is_connected(make_path(5)));
  EXPECT_FALSE(is_connected(Graph::from_edges(4, {{0, 1, 1.0}, {2, 3, 1.0}})));
  EXPECT_TRUE(is_connected(Graph::from_edges(1, {})));
}

TEST(Dijkstra, RejectsBadSource) {
  auto g = make_path(3);
  EXPECT_THROW(dijkstra(g, 7), std::logic_error);
  EXPECT_THROW(bellman_ford_hops(g, 9, 2), std::logic_error);
  EXPECT_THROW(bfs_hops(g, 3), std::logic_error);
}

}  // namespace
}  // namespace pmte
