// 1/2/8-thread determinism cross-check for the serving hot path:
// FrtEnsemble build, query_batch (all three workload shapes × both
// policies), and HotPairCache admission/fill behaviour.  Every double and
// every logical counter must be bit-identical whatever OMP_NUM_THREADS
// says — this is the determinism contract (docs/DETERMINISM.md) checked
// end to end on the layer the many-tenant server will sit on.
//
// The suite carries the `tsan-par` CTest label: the ThreadSanitizer CI job
// builds it under the `tsan` preset and runs it at 8 threads, so the same
// assertions double as a race detector workload (parallel ensemble build,
// parallel batch serving, concurrent cache fills into disjoint slots).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/parallel/parallel.hpp"
#include "src/serve/frt_ensemble.hpp"
#include "src/serve/hot_pair_cache.hpp"
#include "src/serve/workloads.hpp"

namespace pmte {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

Graph test_graph() {
  Rng rng(4242);
  return make_gnm(384, 1600, {1.0, 9.0}, rng);
}

serve::EnsembleOptions ensemble_options() {
  serve::EnsembleOptions opts;
  opts.trees = 8;
  opts.pipeline = serve::EnsemblePipeline::direct;
  return opts;
}

/// Bitwise equality for served doubles: EXPECT_EQ on doubles compares
/// values (and would accept -0.0 == 0.0); the contract is stronger.
::testing::AssertionResult bits_equal(const std::vector<Weight>& a,
                                      const std::vector<Weight>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(Weight)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(Weight)) != 0) {
        return ::testing::AssertionFailure()
               << "first bit difference at index " << i << ": " << a[i]
               << " vs " << b[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

class ThreadGuard {
 public:
  ThreadGuard() : saved_(num_threads()) {}
  ~ThreadGuard() { set_num_threads(saved_); }

 private:
  int saved_;
};

TEST(ServeDeterminism, EnsembleBuildIdenticalAcrossThreadCounts) {
  const auto g = test_graph();
  ThreadGuard guard;
  set_num_threads(1);
  const auto reference = serve::FrtEnsemble::build(g, 99, ensemble_options());
  for (int threads : kThreadCounts) {
    set_num_threads(threads);
    const auto e = serve::FrtEnsemble::build(g, 99, ensemble_options());
    EXPECT_TRUE(e == reference) << "build diverged at " << threads
                                << " threads";
    EXPECT_EQ(e.build_stats().relaxations, reference.build_stats().relaxations);
    EXPECT_EQ(e.build_stats().work, reference.build_stats().work);
    EXPECT_EQ(e.build_stats().index_nodes, reference.build_stats().index_nodes);
  }
}

TEST(ServeDeterminism, QueryBatchBitIdenticalAcrossThreadCounts) {
  const auto g = test_graph();
  ThreadGuard guard;
  set_num_threads(1);
  const auto e = serve::FrtEnsemble::build(g, 171, ensemble_options());

  for (auto kind : {serve::WorkloadKind::uniform, serve::WorkloadKind::bfs_local,
                    serve::WorkloadKind::zipf}) {
    serve::WorkloadOptions wopts;
    wopts.pairs = 6000;
    Rng wrng(split_seed(171, 77));
    const auto pairs = serve::make_workload(g, kind, wopts, wrng);
    for (auto policy :
         {serve::AggregatePolicy::min, serve::AggregatePolicy::median}) {
      set_num_threads(1);
      std::vector<Weight> reference;
      const auto ref_stats = e.query_batch(pairs, policy, reference);
      for (int threads : kThreadCounts) {
        set_num_threads(threads);
        std::vector<Weight> out;
        const auto stats = e.query_batch(pairs, policy, out);
        EXPECT_TRUE(bits_equal(reference, out))
            << serve::workload_name(kind) << "/" << serve::policy_name(policy)
            << " at " << threads << " threads";
        EXPECT_EQ(stats.pairs, ref_stats.pairs);
        EXPECT_EQ(stats.tree_lookups, ref_stats.tree_lookups);
        EXPECT_EQ(stats.lca_probes, ref_stats.lca_probes);
      }
    }
  }
}

TEST(ServeDeterminism, HotPairCacheIdenticalAcrossThreadCounts) {
  const auto g = test_graph();
  ThreadGuard guard;
  set_num_threads(1);
  const auto e = serve::FrtEnsemble::build(g, 5150, ensemble_options());

  serve::WorkloadOptions wopts;
  wopts.pairs = 6000;
  wopts.zipf_s = 1.2;
  Rng wrng(split_seed(5150, 13));
  const auto pairs =
      serve::make_workload(g, serve::WorkloadKind::zipf, wopts, wrng);

  // Reference: serial, cache on; and serial, cache off (same values).
  serve::HotPairCache ref_cache(1024);
  std::vector<Weight> reference, plain;
  const auto ref_stats = e.query_batch(pairs, serve::AggregatePolicy::min,
                                       reference, &ref_cache);
  e.query_batch(pairs, serve::AggregatePolicy::min, plain);
  ASSERT_TRUE(bits_equal(reference, plain));
  EXPECT_GT(ref_stats.cache_hits, 0u);

  // Warm-batch reference: replaying the batch over the filled cache serves
  // every admitted pair from its slot (only conflict bypasses recompute).
  std::vector<Weight> ref_warm;
  const auto ref_warm_stats = e.query_batch(pairs, serve::AggregatePolicy::min,
                                            ref_warm, &ref_cache);
  ASSERT_TRUE(bits_equal(reference, ref_warm));

  for (int threads : kThreadCounts) {
    set_num_threads(threads);
    serve::HotPairCache cache(1024);
    std::vector<Weight> out;
    const auto stats =
        e.query_batch(pairs, serve::AggregatePolicy::min, out, &cache);
    EXPECT_TRUE(bits_equal(reference, out)) << threads << " threads";
    EXPECT_EQ(stats.cache_hits, ref_stats.cache_hits) << threads;
    EXPECT_EQ(stats.cache_misses, ref_stats.cache_misses) << threads;
    EXPECT_EQ(stats.tree_lookups, ref_stats.tree_lookups) << threads;
    // A second (warm) batch over the same cache must hit identically too.
    std::vector<Weight> warm;
    const auto warm_stats =
        e.query_batch(pairs, serve::AggregatePolicy::min, warm, &cache);
    EXPECT_TRUE(bits_equal(reference, warm));
    EXPECT_EQ(warm_stats.cache_hits, ref_warm_stats.cache_hits) << threads;
    EXPECT_EQ(warm_stats.cache_misses, ref_warm_stats.cache_misses) << threads;
    EXPECT_EQ(cache.stats().admissions, ref_cache.stats().admissions);
    EXPECT_EQ(cache.stats().conflicts, ref_cache.stats().conflicts);
    EXPECT_EQ(cache.stats().hits, ref_cache.stats().hits);
  }
}

}  // namespace
}  // namespace pmte
