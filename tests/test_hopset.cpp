// Tests for the (d, ε̂)-hop-set constructions (src/hopset): the defining
// inequality (1.3) and structural properties.
#include <gtest/gtest.h>

#include "src/graph/generators.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/hopset/hopset.hpp"

namespace pmte {
namespace {

class HopsetFamilies : public ::testing::TestWithParam<int> {
 protected:
  Graph family_graph() {
    switch (GetParam()) {
      case 0:
        return make_path(120, {1.0, 3.0}, Rng(1));
      case 1:
        return make_cycle(100, {0.5, 2.0}, Rng(2));
      case 2:
        return make_grid(10, 12, {1.0, 2.0}, Rng(3));
      case 3:
        return make_gnm(100, 240, {1.0, 5.0}, Rng(4));
      default:
        return make_caterpillar(40, 2, 4.0, 1.0);
    }
  }
};

TEST_P(HopsetFamilies, HubHopSetIsExact) {
  const auto g = family_graph();
  Rng rng(77);
  const auto hs = build_hub_hopset(g, {}, rng);
  EXPECT_GT(hs.num_hubs, 0U);
  EXPECT_GE(hs.d, 2U);
  // ε̂ = 0: d-hop distances in G' must equal exact distances (w.h.p.).
  const double stretch =
      measure_hopset_stretch(g, hs, g.num_vertices(), rng);
  EXPECT_DOUBLE_EQ(stretch, 1.0);
}

TEST_P(HopsetFamilies, HopSetNeverShortensDistances) {
  const auto g = family_graph();
  Rng rng(78);
  const auto hs = build_hub_hopset(g, {}, rng);
  const auto gp = hs.apply(g);
  const auto before = dijkstra(g, 0).dist;
  const auto after = dijkstra(gp, 0).dist;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(after[v], before[v], 1e-9) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, HopsetFamilies,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(Hopset, ExactHopSetHasHopBoundOne) {
  const auto g = make_path(40, {1.0, 2.0}, Rng(5));
  const auto hs = build_exact_hopset(g);
  EXPECT_EQ(hs.d, 1U);
  Rng rng(6);
  EXPECT_DOUBLE_EQ(measure_hopset_stretch(g, hs, g.num_vertices(), rng), 1.0);
  // One shortcut per connected pair (duplicates of graph edges merge away
  // when applied).
  EXPECT_EQ(hs.edges.size(), static_cast<std::size_t>(40) * 39 / 2);
}

TEST(Hopset, TrivialHopSetAddsNothing) {
  const auto g = make_cycle(30);
  const auto hs = build_trivial_hopset(g);
  EXPECT_TRUE(hs.edges.empty());
  EXPECT_EQ(hs.d, 29U);
  Rng rng(7);
  EXPECT_DOUBLE_EQ(measure_hopset_stretch(g, hs, 5, rng), 1.0);
}

TEST(Hopset, WindowParameterControlsHopBound) {
  const auto g = make_path(200);
  Rng rng(8);
  HubHopSetParams params;
  params.window = 10;
  const auto hs = build_hub_hopset(g, params, rng);
  EXPECT_EQ(hs.d, 20U);
  // Dense sampling at window 10: expect plenty of hubs on a 200-path.
  EXPECT_GT(hs.num_hubs, 20U);
  EXPECT_DOUBLE_EQ(measure_hopset_stretch(g, hs, 20, rng), 1.0);
}

TEST(Hopset, MaxHubsCapRespected) {
  const auto g = make_path(150);
  Rng rng(9);
  HubHopSetParams params;
  params.window = 5;
  params.max_hubs = 7;
  const auto hs = build_hub_hopset(g, params, rng);
  EXPECT_LE(hs.num_hubs, 7U);
  EXPECT_LE(hs.edges.size(), 7U * 6 / 2);
}

TEST(Hopset, HopDistancesActuallyShrink) {
  // The point of the exercise: d-hop distances in G' reach what needs
  // SPD(G) hops in G.
  const auto g = make_path(256);
  Rng rng(10);
  const auto hs = build_hub_hopset(g, {}, rng);
  const auto gp = hs.apply(g);
  const auto hop_limited = bellman_ford_hops(gp, 0, hs.d);
  EXPECT_TRUE(is_finite(hop_limited[255]));
  EXPECT_DOUBLE_EQ(hop_limited[255], 255.0);
  // Without the hop set, d hops see only a prefix.
  const auto plain = bellman_ford_hops(g, 0, hs.d);
  EXPECT_FALSE(is_finite(plain[255]));
}

}  // namespace
}  // namespace pmte
