// Tests for the buy-at-bulk application (Section 10).
#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/buyatbulk.hpp"
#include "src/graph/generators.hpp"
#include "tests/support/fixtures.hpp"

namespace pmte {
namespace {

const std::vector<CableType> kCables{
    {1.0, 1.0},    // thin: capacity 1, cost 1
    {8.0, 4.0},    // medium: 8 units for the price of 4 thin
    {64.0, 16.0},  // thick: strong economies of scale
};

TEST(CableCost, PicksCheapestMix) {
  EXPECT_DOUBLE_EQ(cable_cost_per_unit_length(0.0, kCables), 0.0);
  EXPECT_DOUBLE_EQ(cable_cost_per_unit_length(1.0, kCables), 1.0);
  EXPECT_DOUBLE_EQ(cable_cost_per_unit_length(3.0, kCables), 3.0);
  EXPECT_DOUBLE_EQ(cable_cost_per_unit_length(5.0, kCables), 4.0);   // medium
  EXPECT_DOUBLE_EQ(cable_cost_per_unit_length(60.0, kCables), 16.0); // thick
  // Single-type pricing (the rule of [10], Section 10 step (2)):
  // 65 units need 2 thick cables (32), cheaper than 9 medium (36).
  EXPECT_DOUBLE_EQ(cable_cost_per_unit_length(65.0, kCables), 32.0);
}

TEST(CableCost, RejectsInvalidTypes) {
  EXPECT_THROW((void)cable_cost_per_unit_length(1.0, {}), std::logic_error);
  EXPECT_THROW((void)cable_cost_per_unit_length(1.0, {{0.0, 1.0}}),
               std::logic_error);
}

TEST(PricePaths, ManualExample) {
  const auto g = make_path(4, {2.0, 2.0});  // edges of weight 2
  // Two demands share edge 1-2.
  const std::vector<std::vector<Vertex>> paths{{0, 1, 2}, {1, 2, 3}};
  const std::vector<double> amounts{1.0, 1.0};
  // Flows: (0,1):1, (1,2):2, (2,3):1 → costs 1, 2, 1 thin cables × weight 2.
  EXPECT_DOUBLE_EQ(price_paths(g, paths, amounts, kCables), 2.0 + 4.0 + 2.0);
}

TEST(PricePaths, RejectsNonEdges) {
  const auto g = make_path(4);
  EXPECT_THROW(
      (void)price_paths(g, {{0, 2}}, {1.0}, kCables),  // 0-2 is not an edge
      std::logic_error);
}

class BuyAtBulk : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<Demand> random_demands(const Graph& g, std::size_t count,
                                     Rng& rng) {
    std::vector<Demand> ds;
    while (ds.size() < count) {
      const auto s = static_cast<Vertex>(rng.below(g.num_vertices()));
      const auto t = static_cast<Vertex>(rng.below(g.num_vertices()));
      if (s == t) continue;
      ds.push_back(Demand{s, t, std::floor(rng.uniform(1.0, 5.0))});
    }
    return ds;
  }
};

TEST_P(BuyAtBulk, SolutionsRespectLowerBound) {
  Rng rng(GetParam());
  const auto g = make_grid(7, 7, {1.0, 2.0}, rng);
  const auto demands = random_demands(g, 20, rng);
  const auto r = buy_at_bulk(g, demands, kCables, {}, rng);
  EXPECT_GT(r.lower_bound, 0.0);
  EXPECT_GE(r.cost, r.lower_bound - 1e-9);
  EXPECT_GE(r.direct_cost, r.lower_bound - 1e-9);
  EXPECT_GT(r.tree_cost, 0.0);
  EXPECT_GT(r.loaded_tree_edges, 0U);
}

TEST_P(BuyAtBulk, ApproximationStaysReasonable) {
  Rng rng(GetParam() + 10);
  const auto g = make_geometric(64, 0.25, rng);
  const auto demands = random_demands(g, 30, rng);
  const auto r = buy_at_bulk(g, demands, kCables, {}, rng);
  // O(log n) expected approximation vs the fractional LB; generous
  // deterministic envelope to avoid flakes: 64 → log2 = 6.
  EXPECT_LE(r.cost, 40.0 * r.lower_bound);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuyAtBulk,
                         ::testing::Values(1101, 1102, 1103));

TEST(BuyAtBulkBasics, SingleDemandUsesTreePath) {
  Rng rng(1);
  const auto g = make_path(6);
  const std::vector<Demand> demands{{0, 5, 1.0}};
  const auto r = buy_at_bulk(g, demands, kCables, {}, rng);
  // Direct routing on a path graph is optimal: 5 edges × 1 thin cable.
  EXPECT_DOUBLE_EQ(r.direct_cost, 5.0);
  EXPECT_GE(r.cost, 5.0 - 1e-9);  // tree solution can only add detours
}

TEST(BuyAtBulkBasics, ConsolidationBeatsDirectOnStars) {
  // Many unit demands from leaves to leaf 1 of a star: all routes share
  // the centre.  Tree and direct routing coincide here, but both must
  // exploit the thick cable on shared edges.
  Rng rng(2);
  const Vertex n = 40;
  const auto g = make_star(n);
  std::vector<Demand> demands;
  for (Vertex v = 2; v < n; ++v) demands.push_back(Demand{v, 1, 1.0});
  const auto r = buy_at_bulk(g, demands, kCables, {}, rng);
  // Edge (0,1) carries 38 units: a thick cable (cost 16) beats 38 thin.
  EXPECT_LT(r.direct_cost, 38.0 + 38.0);
  EXPECT_GE(r.cost, r.lower_bound);
}

TEST(BuyAtBulkBasics, RejectsEmptyDemands) {
  Rng rng(3);
  const auto g = make_path(4);
  EXPECT_THROW((void)buy_at_bulk(g, {}, kCables, {}, rng), std::logic_error);
}

// --- Flat serving-index backend (differential pins) -----------------------

TEST(BuyAtBulkFlat, FlatRoutingBitIdenticalToPointerClimbOnCorpus) {
  // The tentpole contract: routing over the flat FrtIndex (O(1) LCA, CSR
  // flow fold) produces the exact cost doubles and loaded-edge counts of
  // the parent-climbing reference, across the 50-graph corpus.
  const auto corpus = test::small_graph_corpus(50, 7001);
  for (const auto& c : corpus) {
    Rng drng(c.seed + 7);
    std::vector<Demand> demands;
    while (demands.size() < 12) {
      const auto s = static_cast<Vertex>(drng.below(c.graph.num_vertices()));
      const auto t = static_cast<Vertex>(drng.below(c.graph.num_vertices()));
      if (s == t) continue;
      demands.push_back(Demand{s, t, std::floor(drng.uniform(1.0, 5.0))});
    }
    BabOptions flat_opts, tree_opts;
    flat_opts.use_flat_index = true;
    tree_opts.use_flat_index = false;
    Rng r1(c.seed), r2(c.seed);
    const auto a = buy_at_bulk(c.graph, demands, kCables, flat_opts, r1);
    const auto b = buy_at_bulk(c.graph, demands, kCables, tree_opts, r2);
    EXPECT_EQ(a.cost, b.cost) << c.name;
    EXPECT_EQ(a.tree_cost, b.tree_cost) << c.name;
    EXPECT_EQ(a.direct_cost, b.direct_cost) << c.name;
    EXPECT_EQ(a.lower_bound, b.lower_bound) << c.name;
    EXPECT_EQ(a.loaded_tree_edges, b.loaded_tree_edges) << c.name;
    EXPECT_EQ(a.dijkstra_runs, b.dijkstra_runs) << c.name;
    // Counters: the flat path replaces every pointer chase with O(1)
    // probes and flat reads.
    EXPECT_EQ(a.counters.tree_node_visits, 0U) << c.name;
    EXPECT_GT(b.counters.tree_node_visits, 0U) << c.name;
    EXPECT_LT(a.counters.tree_node_visits, b.counters.tree_node_visits)
        << c.name << " flat path must beat the pointer-climbing baseline";
    // 2 RMQ probes per routed (s ≠ t) demand, nothing for the flow walk.
    std::size_t routed = 0;
    for (const auto& d : demands) routed += d.s != d.t ? 1 : 0;
    EXPECT_EQ(a.counters.lca_probes, 2 * routed) << c.name;
    EXPECT_EQ(b.counters.lca_probes, 0U) << c.name;
  }
}

}  // namespace
}  // namespace pmte
