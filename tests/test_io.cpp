// Tests for graph serialisation (src/graph/io) and FRT tree export
// (src/frt/tree_export).
#include <gtest/gtest.h>

#include <sstream>

#include "src/frt/pipelines.hpp"
#include "src/frt/tree_export.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/io.hpp"

namespace pmte {
namespace {

TEST(GraphIo, RoundTripsExactly) {
  Rng rng(1);
  const auto g = make_gnm(40, 100, {0.125, 17.25}, rng);
  std::stringstream ss;
  write_dimacs(g, ss);
  const auto back = read_dimacs(ss);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  for (const auto& e : g.edge_list()) {
    EXPECT_DOUBLE_EQ(back.edge_weight(e.u, e.v), e.weight);
  }
}

TEST(GraphIo, RoundTripsIrrationalWeights) {
  // Shortest round-trip formatting must reproduce doubles bit-exactly.
  Rng rng(2);
  std::vector<WeightedEdge> edges;
  for (Vertex i = 0; i + 1 < 20; ++i) {
    edges.push_back(WeightedEdge{i, static_cast<Vertex>(i + 1),
                                 rng.uniform(1e-6, 1e6)});
  }
  const auto g = Graph::from_edges(20, edges);
  std::stringstream ss;
  write_dimacs(g, ss);
  const auto back = read_dimacs(ss);
  for (const auto& e : g.edge_list()) {
    EXPECT_EQ(back.edge_weight(e.u, e.v), e.weight);  // exact, not near
  }
}

TEST(GraphIo, RejectsMalformedInput) {
  {
    std::stringstream ss("e 1 2 1.0\n");  // edge before header
    EXPECT_THROW((void)read_dimacs(ss), std::logic_error);
  }
  {
    std::stringstream ss("p sp 3 1\ne 1 9 1.0\n");  // endpoint out of range
    EXPECT_THROW((void)read_dimacs(ss), std::logic_error);
  }
  {
    std::stringstream ss("p sp 3 2\ne 1 2 1.0\n");  // wrong edge count
    EXPECT_THROW((void)read_dimacs(ss), std::logic_error);
  }
  {
    std::stringstream ss("x nonsense\n");
    EXPECT_THROW((void)read_dimacs(ss), std::logic_error);
  }
  {
    std::stringstream ss("");
    EXPECT_THROW((void)read_dimacs(ss), std::logic_error);
  }
}

TEST(GraphIo, CommentsAreIgnored) {
  std::stringstream ss("c hello\np sp 2 1\nc mid\ne 1 2 2.5\n");
  const auto g = read_dimacs(ss);
  EXPECT_EQ(g.num_vertices(), 2U);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1), 2.5);
}

TEST(GraphIo, FileHelpers) {
  Rng rng(3);
  const auto g = make_grid(4, 4, {1.0, 2.0}, rng);
  const std::string path = "/tmp/pmte_io_test.gr";
  save_graph(g, path);
  const auto back = load_graph(path);
  EXPECT_EQ(back.num_edges(), g.num_edges());
  EXPECT_THROW((void)load_graph("/nonexistent/dir/x.gr"), std::logic_error);
}

TEST(TreeExport, DotContainsAllLeaves) {
  Rng rng(4);
  const auto g = make_gnm(15, 30, {1.0, 3.0}, rng);
  const auto sample = sample_frt_direct(g, rng);
  std::stringstream ss;
  write_dot(sample.tree, ss);
  const auto dot = ss.str();
  EXPECT_NE(dot.find("digraph frt"), std::string::npos);
  for (Vertex v = 0; v < 15; ++v) {
    EXPECT_NE(dot.find("\"v" + std::to_string(v) + "\""), std::string::npos)
        << "leaf " << v << " missing from DOT output";
  }
}

TEST(TreeExport, TextFormatHasOneLinePerNode) {
  Rng rng(5);
  const auto g = make_path(10);
  const auto sample = sample_frt_direct(g, rng);
  std::stringstream ss;
  write_tree(sample.tree, ss);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(ss, line)) ++lines;
  EXPECT_EQ(lines, sample.tree.num_nodes() + 1);  // header + nodes
}

TEST(TreeExport, SummaryMentionsCounts) {
  Rng rng(6);
  const auto g = make_cycle(12);
  const auto sample = sample_frt_direct(g, rng);
  const auto s = tree_summary(sample.tree);
  EXPECT_NE(s.find("leaves=12"), std::string::npos);
  EXPECT_NE(s.find("nodes="), std::string::npos);
}

}  // namespace
}  // namespace pmte
