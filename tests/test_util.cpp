// Unit tests for src/util: RNG, permutations, statistics, tables, CLI.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "src/util/cli.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"

namespace pmte {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_NEAR(sum / trials, 0.5, 0.02);
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(13);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) ++hits[rng.below(10)];
  for (int h : hits) EXPECT_GT(h, 700);
}

TEST(Rng, FlipProbability) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 20000; ++i) heads += rng.flip(0.25);
  EXPECT_NEAR(heads / 20000.0, 0.25, 0.02);
}

TEST(Permutation, IsBijection) {
  Rng rng(3);
  const auto perm = random_permutation(257, rng);
  auto sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Permutation, InverseRoundTrips) {
  Rng rng(5);
  const auto perm = random_permutation(100, rng);
  const auto inv = invert_permutation(perm);
  for (std::uint32_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(inv[perm[i]], i);
    EXPECT_EQ(perm[inv[i]], i);
  }
}

TEST(Permutation, LooksUniform) {
  // Position of element 0 should be roughly uniform across many draws.
  Rng rng(9);
  std::vector<int> pos_count(8, 0);
  for (int t = 0; t < 8000; ++t) {
    const auto perm = random_permutation(8, rng);
    for (int i = 0; i < 8; ++i) {
      if (perm[i] == 0) ++pos_count[i];
    }
  }
  for (int c : pos_count) EXPECT_NEAR(c, 1000, 150);
}

TEST(Stats, SummarizeBasics) {
  const auto s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5U);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> sorted{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 1.0), 10.0);
}

TEST(Stats, PercentileRejectsEmpty) {
  EXPECT_THROW((void)percentile_sorted({}, 0.5), std::logic_error);
}

TEST(Stats, RunningStatsMatchesSummarize) {
  Rng rng(21);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 5);
    xs.push_back(x);
    rs.add(x);
  }
  const auto s = summarize(xs);
  EXPECT_NEAR(rs.mean(), s.mean, 1e-9);
  EXPECT_DOUBLE_EQ(rs.max(), s.max);
  EXPECT_DOUBLE_EQ(rs.min(), s.min);
  EXPECT_NEAR(std::sqrt(rs.variance()), s.stddev, 1e-9);
}

TEST(Stats, RunningStatsMerge) {
  Rng rng(22);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 1);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, FormatDouble) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(1.5), "1.500");
  EXPECT_EQ(format_double(0.0), "0.000");
}

TEST(Table, PrintsMarkdown) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("| a"), std::string::npos);
  EXPECT_NE(text.find("|---"), std::string::npos);
  EXPECT_EQ(t.rows(), 1U);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(Cli, ParsesOptions) {
  const char* argv[] = {"prog", "--n=42", "--flag", "--rate=1.5",
                        "positional"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 42);
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 1.5);
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_FALSE(cli.has("positional"));
  EXPECT_EQ(cli.seed(99), 99U);
}

}  // namespace
}  // namespace pmte
