// The oracle equivalence tests (Section 5): simulating an MBF-like
// algorithm on the *implicit* H through the decomposition of Lemma 5.1
// must produce exactly what the generic engine computes on the explicitly
// materialised H.  This validates Lemma 5.1, Equation (5.9) and the
// intermediate-filtering argument end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "src/frt/le_lists.hpp"
#include "src/graph/generators.hpp"
#include "src/mbf/algebras.hpp"
#include "src/oracle/mbf_oracle.hpp"

namespace pmte {
namespace {

SimulatedGraph make_h(const Graph& g, double eps_hat, std::uint64_t seed) {
  Rng rng(seed);
  const auto hs = build_exact_hopset(g);  // d = 1 keeps the test exact
  return build_simulated_graph(g, hs, eps_hat, rng);
}

class OracleEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleEquivalence, LeListsMatchExplicitH) {
  Rng rng(GetParam());
  const auto g = make_gnm(40, 90, {1.0, 4.0}, rng);
  // ε̂ = 0 keeps all level scales exactly 1.0, so floating-point results
  // on the implicit and explicit sides are bit-identical.
  const auto h = make_h(g, 0.0, GetParam() + 1);
  const auto explicit_h = h.materialize(true);
  const auto order = VertexOrder::random(40, rng);
  const LeListAlgebra alg;

  auto via_oracle = oracle_run(h, alg, le_initial_state(order), 64);
  auto via_engine = mbf_run(explicit_h, alg, le_initial_state(order), 64);
  ASSERT_TRUE(via_oracle.reached_fixpoint);
  ASSERT_TRUE(via_engine.reached_fixpoint);
  for (Vertex v = 0; v < 40; ++v) {
    EXPECT_EQ(via_oracle.states[v], via_engine.states[v]) << "vertex " << v;
  }
}

TEST_P(OracleEquivalence, LeListsMatchWithPenalties) {
  Rng rng(GetParam() + 50);
  const auto g = make_gnm(32, 70, {1.0, 3.0}, rng);
  const double eps = 0.25;
  const auto h = make_h(g, eps, GetParam() + 51);
  const auto explicit_h = h.materialize(true);
  const auto order = VertexOrder::random(32, rng);
  const LeListAlgebra alg;

  auto via_oracle = oracle_run(h, alg, le_initial_state(order), 64);
  auto via_engine = mbf_run(explicit_h, alg, le_initial_state(order), 64);
  ASSERT_TRUE(via_oracle.reached_fixpoint);
  for (Vertex v = 0; v < 32; ++v) {
    // Same key sets; distances agree up to FP association differences
    // (scale·(a+b) vs scale·a + scale·b).
    ASSERT_EQ(via_oracle.states[v].size(), via_engine.states[v].size())
        << "vertex " << v;
    EXPECT_TRUE(approx_equal(via_oracle.states[v], via_engine.states[v], 1e-9))
        << "vertex " << v;
  }
}

TEST_P(OracleEquivalence, SourceDetectionMatchesExplicitH) {
  Rng rng(GetParam() + 100);
  const auto g = make_gnm(36, 80, {1.0, 5.0}, rng);
  const auto h = make_h(g, 0.0, GetParam() + 101);
  const auto explicit_h = h.materialize(true);
  SourceDetectionAlgebra alg{.k = 4, .max_dist = inf_weight()};
  std::vector<DistanceMap> x0(36);
  for (Vertex s : {0U, 9U, 20U, 33U}) x0[s] = DistanceMap::singleton(s, 0.0);

  auto via_oracle = oracle_run(h, alg, x0, 64);
  auto via_engine = mbf_run(explicit_h, alg, x0, 64);
  ASSERT_TRUE(via_oracle.reached_fixpoint);
  for (Vertex v = 0; v < 36; ++v) {
    EXPECT_EQ(via_oracle.states[v], via_engine.states[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleEquivalence,
                         ::testing::Values(401, 402, 403, 404, 405));

TEST(Oracle, ForestFireOnHMatchesExplicit) {
  // Section 9 queries the oracle with the forest-fire algebra to compute
  // dist(·, S, H) during candidate sampling — exercise that combination.
  Rng rng(21);
  const auto g = make_gnm(30, 64, {1.0, 3.0}, rng);
  const auto h = make_h(g, 0.0, 22);
  const auto explicit_h = h.materialize(true);
  ScalarDistanceAlgebra alg;  // unbounded radius
  std::vector<Weight> x0(30, inf_weight());
  x0[4] = 0.0;
  x0[17] = 0.0;
  auto via_oracle = oracle_run(h, alg, x0, 64);
  auto via_engine = mbf_run(explicit_h, alg, x0, 64);
  ASSERT_TRUE(via_oracle.reached_fixpoint);
  for (Vertex v = 0; v < 30; ++v) {
    EXPECT_DOUBLE_EQ(via_oracle.states[v], via_engine.states[v])
        << "vertex " << v;
  }
}

TEST(Oracle, HopBoundGreaterThanOne) {
  // A hub hop set with a real window: the oracle must still match the
  // explicit H built from true d-hop distances.  Integer weights keep the
  // two sides' sums bit-identical: multi-hop H-paths associate additions
  // differently (whole-shortcut sums vs per-edge accumulation).
  Rng rng(7);
  auto g = make_path(48);
  {
    auto edges = g.edge_list();
    for (auto& e : edges) e.weight = std::floor(rng.uniform(1.0, 4.0));
    g = Graph::from_edges(48, std::move(edges));
  }
  HubHopSetParams params;
  params.window = 4;
  const auto hs = build_hub_hopset(g, params, rng);
  const auto h = build_simulated_graph(g, hs, 0.0, rng);
  const auto explicit_h = h.materialize(true);  // d-hop Bellman-Ford
  const auto order = VertexOrder::random(48, rng);
  const LeListAlgebra alg;
  auto via_oracle = oracle_run(h, alg, le_initial_state(order), 128);
  auto via_engine = mbf_run(explicit_h, alg, le_initial_state(order), 128);
  ASSERT_TRUE(via_oracle.reached_fixpoint);
  for (Vertex v = 0; v < 48; ++v) {
    EXPECT_EQ(via_oracle.states[v], via_engine.states[v]) << "vertex " << v;
  }
}

TEST(Oracle, StatsAreAccounted) {
  Rng rng(8);
  const auto g = make_gnm(24, 50, {1.0, 2.0}, rng);
  const auto h = make_h(g, 0.0, 9);
  const LeListAlgebra alg;
  const auto order = VertexOrder::random(24, rng);
  OracleStats stats;
  (void)oracle_run(h, alg, le_initial_state(order), 64, &stats);
  EXPECT_TRUE(stats.reached_fixpoint);
  EXPECT_GT(stats.h_iterations, 0U);
  // Each H-iteration runs at most d·(Λ+1) iterations on G' (per-level
  // fixpoints may terminate a level early) and at least one per level.
  EXPECT_LE(stats.base_iterations,
            stats.h_iterations * h.hop_bound() * (h.max_level() + 1));
  EXPECT_GE(stats.base_iterations,
            stats.h_iterations * (h.max_level() + 1));
}

TEST(Oracle, FixpointIsFastOnHighSpdGraph) {
  // SPD(G) = n−1 would force Θ(n) direct iterations; the oracle needs
  // O(log² n) H-iterations (Theorem 4.5 + Theorem 5.2).
  Rng rng(10);
  const Vertex n = 200;
  const auto g = make_path(n);
  const auto hs = build_hub_hopset(g, {}, rng);
  const auto h = build_simulated_graph(g, hs, 1.0 / std::log2(n), rng);
  const LeListAlgebra alg;
  const auto order = VertexOrder::random(n, rng);
  OracleStats stats;
  auto run = oracle_run(h, alg, le_initial_state(order), 256, &stats);
  EXPECT_TRUE(stats.reached_fixpoint);
  const double log2n = std::log2(static_cast<double>(n));
  EXPECT_LE(stats.h_iterations,
            static_cast<unsigned>(4.0 * log2n * log2n));
  // Direct iteration on G by comparison: the rank-0 entry must traverse at
  // least half the path before the lists can stabilise.
  auto direct = le_lists_iteration(g, order);
  EXPECT_GE(direct.iterations, n / 2 - 4);
  (void)run;
}

}  // namespace
}  // namespace pmte
