// The oracle equivalence tests (Section 5): simulating an MBF-like
// algorithm on the *implicit* H through the decomposition of Lemma 5.1
// must produce exactly what the generic engine computes on the explicitly
// materialised H.  This validates Lemma 5.1, Equation (5.9) and the
// intermediate-filtering argument end to end.
//
// The level-reuse differential tests additionally pin the reuse pipeline
// (Gauss–Seidel sweeps, per-level caches, warm restarts) to the pre-reuse
// Jacobi reference bit for bit: both are fair monotone iterations of the
// same per-level operators, so their fixpoints must coincide exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "src/frt/le_lists.hpp"
#include "src/graph/generators.hpp"
#include "src/mbf/algebras.hpp"
#include "src/oracle/mbf_oracle.hpp"
#include "src/parallel/counters.hpp"
#include "tests/support/fixtures.hpp"
#include "tests/support/reference.hpp"

namespace pmte {
namespace {

SimulatedGraph make_h(const Graph& g, double eps_hat, std::uint64_t seed) {
  return test::make_test_simgraph(g, seed, /*exact_hopset=*/true, eps_hat);
}

class OracleEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleEquivalence, LeListsMatchExplicitH) {
  Rng rng(GetParam());
  const auto g = make_gnm(40, 90, {1.0, 4.0}, rng);
  // ε̂ = 0 keeps all level scales exactly 1.0, so floating-point results
  // on the implicit and explicit sides are bit-identical.
  const auto h = make_h(g, 0.0, GetParam() + 1);
  const auto explicit_h = h.materialize(true);
  const auto order = VertexOrder::random(40, rng);
  const LeListAlgebra alg;

  auto via_oracle = oracle_run(h, alg, le_initial_state(order), 64);
  auto via_engine = mbf_run(explicit_h, alg, le_initial_state(order), 64);
  ASSERT_TRUE(via_oracle.reached_fixpoint);
  ASSERT_TRUE(via_engine.reached_fixpoint);
  for (Vertex v = 0; v < 40; ++v) {
    EXPECT_EQ(via_oracle.states[v], via_engine.states[v]) << "vertex " << v;
  }
}

TEST_P(OracleEquivalence, LeListsMatchWithPenalties) {
  Rng rng(GetParam() + 50);
  const auto g = make_gnm(32, 70, {1.0, 3.0}, rng);
  const double eps = 0.25;
  const auto h = make_h(g, eps, GetParam() + 51);
  const auto explicit_h = h.materialize(true);
  const auto order = VertexOrder::random(32, rng);
  const LeListAlgebra alg;

  auto via_oracle = oracle_run(h, alg, le_initial_state(order), 64);
  auto via_engine = mbf_run(explicit_h, alg, le_initial_state(order), 64);
  ASSERT_TRUE(via_oracle.reached_fixpoint);
  for (Vertex v = 0; v < 32; ++v) {
    // Same key sets; distances agree up to FP association differences
    // (scale·(a+b) vs scale·a + scale·b).
    ASSERT_EQ(via_oracle.states[v].size(), via_engine.states[v].size())
        << "vertex " << v;
    EXPECT_TRUE(approx_equal(via_oracle.states[v], via_engine.states[v], 1e-9))
        << "vertex " << v;
  }
}

TEST_P(OracleEquivalence, SourceDetectionMatchesExplicitH) {
  Rng rng(GetParam() + 100);
  const auto g = make_gnm(36, 80, {1.0, 5.0}, rng);
  const auto h = make_h(g, 0.0, GetParam() + 101);
  const auto explicit_h = h.materialize(true);
  SourceDetectionAlgebra alg{.k = 4, .max_dist = inf_weight()};
  std::vector<DistanceMap> x0(36);
  for (Vertex s : {0U, 9U, 20U, 33U}) x0[s] = DistanceMap::singleton(s, 0.0);

  auto via_oracle = oracle_run(h, alg, x0, 64);
  auto via_engine = mbf_run(explicit_h, alg, x0, 64);
  ASSERT_TRUE(via_oracle.reached_fixpoint);
  for (Vertex v = 0; v < 36; ++v) {
    EXPECT_EQ(via_oracle.states[v], via_engine.states[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleEquivalence,
                         ::testing::Values(401, 402, 403, 404, 405));

TEST(Oracle, ForestFireOnHMatchesExplicit) {
  // Section 9 queries the oracle with the forest-fire algebra to compute
  // dist(·, S, H) during candidate sampling — exercise that combination.
  Rng rng(21);
  const auto g = make_gnm(30, 64, {1.0, 3.0}, rng);
  const auto h = make_h(g, 0.0, 22);
  const auto explicit_h = h.materialize(true);
  ScalarDistanceAlgebra alg;  // unbounded radius
  std::vector<Weight> x0(30, inf_weight());
  x0[4] = 0.0;
  x0[17] = 0.0;
  auto via_oracle = oracle_run(h, alg, x0, 64);
  auto via_engine = mbf_run(explicit_h, alg, x0, 64);
  ASSERT_TRUE(via_oracle.reached_fixpoint);
  for (Vertex v = 0; v < 30; ++v) {
    EXPECT_DOUBLE_EQ(via_oracle.states[v], via_engine.states[v])
        << "vertex " << v;
  }
}

TEST(Oracle, HopBoundGreaterThanOne) {
  // A hub hop set with a real window: the oracle must still match the
  // explicit H built from true d-hop distances.  Integer weights keep the
  // two sides' sums bit-identical: multi-hop H-paths associate additions
  // differently (whole-shortcut sums vs per-edge accumulation).
  Rng rng(7);
  auto g = make_path(48);
  {
    auto edges = g.edge_list();
    for (auto& e : edges) e.weight = std::floor(rng.uniform(1.0, 4.0));
    g = Graph::from_edges(48, std::move(edges));
  }
  HubHopSetParams params;
  params.window = 4;
  const auto hs = build_hub_hopset(g, params, rng);
  const auto h = build_simulated_graph(g, hs, 0.0, rng);
  const auto explicit_h = h.materialize(true);  // d-hop Bellman-Ford
  const auto order = VertexOrder::random(48, rng);
  const LeListAlgebra alg;
  auto via_oracle = oracle_run(h, alg, le_initial_state(order), 128);
  auto via_engine = mbf_run(explicit_h, alg, le_initial_state(order), 128);
  ASSERT_TRUE(via_oracle.reached_fixpoint);
  for (Vertex v = 0; v < 48; ++v) {
    EXPECT_EQ(via_oracle.states[v], via_engine.states[v]) << "vertex " << v;
  }
}

TEST(Oracle, StatsAreAccounted) {
  Rng rng(8);
  const auto g = make_gnm(24, 50, {1.0, 2.0}, rng);
  const auto h = make_h(g, 0.0, 9);
  const LeListAlgebra alg;
  const auto order = VertexOrder::random(24, rng);
  // The reference (Jacobi) semantics of Equation (5.9): every level runs
  // every H-iteration, at most d and at least one G'-iteration each.
  OracleStats ref;
  (void)oracle_run(h, alg, le_initial_state(order), 64, &ref,
                   MbfOptions{.oracle_level_reuse = false});
  EXPECT_TRUE(ref.reached_fixpoint);
  EXPECT_GT(ref.h_iterations, 0U);
  EXPECT_EQ(ref.levels_full, ref.h_iterations * (h.max_level() + 1));
  EXPECT_EQ(ref.levels_skipped + ref.levels_warm, 0U);
  EXPECT_LE(ref.base_iterations,
            ref.h_iterations * h.hop_bound() * (h.max_level() + 1));
  EXPECT_GE(ref.base_iterations, ref.h_iterations * (h.max_level() + 1));

  // With reuse, every (sweep, level) pair is accounted exactly once.
  OracleStats reuse;
  (void)oracle_run(h, alg, le_initial_state(order), 64, &reuse);
  EXPECT_TRUE(reuse.reached_fixpoint);
  EXPECT_EQ(reuse.levels_skipped + reuse.levels_warm + reuse.levels_full,
            reuse.h_iterations * (h.max_level() + 1));
  EXPECT_LE(reuse.base_iterations, ref.base_iterations);
}

TEST(Oracle, FixpointIsFastOnHighSpdGraph) {
  // SPD(G) = n−1 would force Θ(n) direct iterations; the oracle needs
  // O(log² n) H-iterations (Theorem 4.5 + Theorem 5.2).
  Rng rng(10);
  const Vertex n = 200;
  const auto g = make_path(n);
  const auto hs = build_hub_hopset(g, {}, rng);
  const auto h = build_simulated_graph(g, hs, 1.0 / std::log2(n), rng);
  const LeListAlgebra alg;
  const auto order = VertexOrder::random(n, rng);
  OracleStats stats;
  auto run = oracle_run(h, alg, le_initial_state(order), 256, &stats);
  EXPECT_TRUE(stats.reached_fixpoint);
  const double log2n = std::log2(static_cast<double>(n));
  EXPECT_LE(stats.h_iterations,
            static_cast<unsigned>(4.0 * log2n * log2n));
  // Direct iteration on G by comparison: the rank-0 entry must traverse at
  // least half the path before the lists can stabilise.
  auto direct = le_lists_iteration(g, order);
  EXPECT_GE(direct.iterations, n / 2 - 4);
  (void)run;
}

// ---------------------------------------------------------------------------
// Differential tests: the level-reusing oracle against the pre-reuse
// reference path (MbfOptions::oracle_level_reuse = false).

class LevelReuseDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LevelReuseDifferential, LeListsBitIdenticalAcrossFamilies) {
  // Hub hop sets (d > 1, truncating levels) and ε̂ > 0 (distinct level
  // scales) exercise every reuse mechanism: skips, warm restarts, and the
  // truncation fallback.
  for (const char* family : {"gnm", "grid", "powerlaw", "path"}) {
    const auto g = test::support_graph(family, 96, GetParam());
    const auto h =
        test::make_test_simgraph(g, GetParam() + 13, /*exact_hopset=*/false,
                                 /*eps_hat=*/0.08);
    Rng rng(GetParam() + 29);
    const auto order = VertexOrder::random(g.num_vertices(), rng);
    const auto reuse = le_lists_oracle(h, order, 0);
    const auto ref = le_lists_oracle(
        h, order, 0, MbfOptions{.oracle_level_reuse = false});
    ASSERT_TRUE(reuse.converged) << family;
    ASSERT_TRUE(ref.converged) << family;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(reuse.lists[v], ref.lists[v]) << family << " vertex " << v;
    }
  }
}

TEST_P(LevelReuseDifferential, ScalarAndSourceDetectionBitIdentical) {
  const auto g = test::support_graph("gnm", 72, GetParam() + 1);
  const auto h = test::make_test_simgraph(g, GetParam() + 2,
                                          /*exact_hopset=*/false,
                                          /*eps_hat=*/0.1);
  {
    ScalarDistanceAlgebra alg;
    std::vector<Weight> x0(g.num_vertices(), inf_weight());
    x0[3] = 0.0;
    x0[40] = 0.0;
    auto a = oracle_run(h, alg, x0, 256);
    auto b = oracle_run(h, alg, x0, 256, nullptr,
                        MbfOptions{.oracle_level_reuse = false});
    ASSERT_TRUE(a.reached_fixpoint && b.reached_fixpoint);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(a.states[v], b.states[v]) << "vertex " << v;
    }
  }
  {
    SourceDetectionAlgebra alg{.k = 3, .max_dist = inf_weight()};
    std::vector<DistanceMap> x0(g.num_vertices());
    for (Vertex s : {1U, 17U, 33U, 64U}) {
      x0[s] = DistanceMap::singleton(s, 0.0);
    }
    auto a = oracle_run(h, alg, x0, 256);
    auto b = oracle_run(h, alg, x0, 256, nullptr,
                        MbfOptions{.oracle_level_reuse = false});
    ASSERT_TRUE(a.reached_fixpoint && b.reached_fixpoint);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(a.states[v], b.states[v]) << "vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevelReuseDifferential,
                         ::testing::Values(601, 602, 603));

TEST(LevelReuse, OracleMatchesBruteForceOnSmallGraphs) {
  // End-to-end: LE lists through the level-reusing oracle against the
  // APSP brute force, on the shared corpus (n ≤ 64).  The exact d = 1 hop
  // set and ε̂ = 0 make H's metric equal G's.
  const auto corpus = test::small_graph_corpus(12, 7100);
  for (const auto& c : corpus) {
    const auto h = make_h(c.graph, 0.0, c.seed);
    Rng rng(c.seed + 1);
    const auto order = VertexOrder::random(c.graph.num_vertices(), rng);
    const auto le = le_lists_oracle(h, order);
    ASSERT_TRUE(le.converged) << c.name;
    test::expect_valid_le_lists(le.lists, order);
    const auto brute = test::brute_force_le_lists(c.graph, order);
    for (Vertex v = 0; v < c.graph.num_vertices(); ++v) {
      EXPECT_TRUE(approx_equal(le.lists[v], brute[v]))
          << c.name << " vertex " << v;
    }
  }
}

TEST(LevelReuse, ThreadDeterminism) {
  // Lists and WorkDepth counters of the reuse pipeline must be
  // bit-identical at 1, 2, and 8 OpenMP threads — including on the
  // skewed-degree families that edge-balanced chunking repartitions.
  const int restore = num_threads();
  for (const char* family : {"star", "powerlaw", "gnm"}) {
    const auto g = test::support_graph(family, 160, 7200);
    const auto h = test::make_test_simgraph(g, 7201, /*exact_hopset=*/false,
                                            /*eps_hat=*/0.07);
    Rng rng(7202);
    const auto order = VertexOrder::random(g.num_vertices(), rng);

    std::vector<DistanceMap> ref_lists;
    std::uint64_t ref_relax = 0;
    std::uint64_t ref_edges = 0;
    std::uint64_t ref_work = 0;
    for (const int threads : {1, 2, 8}) {
      set_num_threads(threads);
      const WorkDepthScope scope;
      auto le = le_lists_oracle(h, order);
      const std::uint64_t relax = scope.relaxations_delta();
      const std::uint64_t edges = scope.edges_touched_delta();
      const std::uint64_t work = scope.work_delta();
      ASSERT_TRUE(le.converged) << family;
      if (ref_lists.empty()) {
        ref_lists = std::move(le.lists);
        ref_relax = relax;
        ref_edges = edges;
        ref_work = work;
        continue;
      }
      EXPECT_EQ(relax, ref_relax) << family << " @ " << threads;
      EXPECT_EQ(edges, ref_edges) << family << " @ " << threads;
      EXPECT_EQ(work, ref_work) << family << " @ " << threads;
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        EXPECT_EQ(le.lists[v], ref_lists[v])
            << family << " @ " << threads << " vertex " << v;
      }
    }
  }
  set_num_threads(restore);
}

TEST(LevelReuse, SweepsSkipWarmRestartAndCutRelaxations) {
  // The asymptotic claim behind the tentpole: on a high-SPD path the
  // reuse pipeline must beat the reference by a widening factor (measured
  // ~10× at n = 512, ~12× at n = 2048 — the CI bench gate pins the 2048
  // numbers; here a conservative 6× keeps the test robust).
  Rng rng(7300);
  const Vertex n = 512;
  const auto g = make_path(n);
  const auto hs = build_hub_hopset(g, {}, rng);
  const auto h = build_simulated_graph(g, hs, 0.01, rng);
  const auto order = VertexOrder::random(n, rng);

  const WorkDepthScope reuse_scope;
  const auto reuse = le_lists_oracle(h, order);
  const std::uint64_t reuse_relax = reuse_scope.relaxations_delta();

  const WorkDepthScope ref_scope;
  const auto ref = le_lists_oracle(h, order, 0,
                                   MbfOptions{.oracle_level_reuse = false});
  const std::uint64_t ref_relax = ref_scope.relaxations_delta();

  ASSERT_TRUE(reuse.converged);
  ASSERT_TRUE(ref.converged);
  for (Vertex v = 0; v < n; ++v) {
    EXPECT_EQ(reuse.lists[v], ref.lists[v]) << "vertex " << v;
  }
  EXPECT_GT(reuse.levels_skipped, 0U);
  EXPECT_GT(reuse.levels_warm, 0U);
  EXPECT_LT(reuse.iterations, ref.iterations);
  EXPECT_LE(reuse_relax * 6, ref_relax);
}

}  // namespace
}  // namespace pmte
