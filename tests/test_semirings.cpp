// Property tests for the semiring axioms (Definition A.2) of all four
// semirings, using the generic checkers from src/algebra/axioms.hpp.
#include <gtest/gtest.h>

#include <cmath>

#include "src/algebra/axioms.hpp"
#include "src/algebra/path_set.hpp"
#include "src/util/rng.hpp"

namespace pmte {
namespace {

// Dyadic-rational samples (multiples of 1/4): sums of these are exact in
// binary floating point, so the semiring laws can be checked with exact
// equality (real-valued `+` is only associative up to rounding).
std::vector<Weight> weight_samples(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  std::vector<Weight> xs{0.0, 1.0, inf_weight()};
  while (xs.size() < count) {
    xs.push_back(std::floor(rng.uniform(0.0, 400.0)) / 4.0);
  }
  return xs;
}

class ScalarSemiringAxioms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalarSemiringAxioms, MinPlus) {
  const auto xs = weight_samples(GetParam(), 9);
  const auto eq = [](const Weight& a, const Weight& b) { return a == b; };
  const auto rep = check_semiring_axioms<MinPlus>(xs, eq);
  EXPECT_TRUE(rep.ok) << rep.violation;
}

TEST_P(ScalarSemiringAxioms, MaxMin) {
  const auto xs = weight_samples(GetParam() + 100, 9);
  const auto eq = [](const Weight& a, const Weight& b) { return a == b; };
  const auto rep = check_semiring_axioms<MaxMin>(xs, eq);
  EXPECT_TRUE(rep.ok) << rep.violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalarSemiringAxioms,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(BooleanSemiringAxioms, Exhaustive) {
  using B = BooleanSemiring::Value;
  const std::vector<B> xs{0, 1};
  const auto eq = [](const B& a, const B& b) { return a == b; };
  const auto rep = check_semiring_axioms<BooleanSemiring>(xs, eq);
  EXPECT_TRUE(rep.ok) << rep.violation;
}

TEST(ScalarFilter, ForestFireCapIsCongruent) {
  // Example 3.7's filter r(x) = x if x ≤ d else ∞ on M = Smin,+ must be a
  // congruence (Lemma 2.8) — checked with the generic axiom machinery.
  const double d = 10.0;
  const auto r = [d](const Weight& x) { return x <= d ? x : inf_weight(); };
  std::vector<Weight> elems{0.0, 2.0, 9.75, 10.0, 10.25, 40.0, inf_weight()};
  const std::vector<Weight> scalars{0.0, 1.0, 8.0, 64.0, inf_weight()};
  const auto madd = [](const Weight& a, const Weight& b) {
    return MinPlus::plus(a, b);
  };
  const auto smul = [](const Weight& s, const Weight& x) {
    return MinPlus::times(s, x);
  };
  const auto eq = [](const Weight& a, const Weight& b) { return a == b; };
  const auto rep = check_congruence<MinPlus, Weight>(
      scalars, elems, madd, smul, r, eq);
  EXPECT_TRUE(rep.ok) << rep.violation;
}

TEST(SemiringConstants, NeutralElements) {
  EXPECT_DOUBLE_EQ(MinPlus::zero(), inf_weight());
  EXPECT_DOUBLE_EQ(MinPlus::one(), 0.0);
  EXPECT_DOUBLE_EQ(MaxMin::zero(), 0.0);
  EXPECT_DOUBLE_EQ(MaxMin::one(), inf_weight());
  // ∞ ⊙ ∞ = ∞ in min-plus (annihilation, not NaN).
  EXPECT_DOUBLE_EQ(MinPlus::times(inf_weight(), inf_weight()), inf_weight());
  EXPECT_DOUBLE_EQ(MinPlus::times(0.0, inf_weight()), inf_weight());
}

// ---------------------------------------------------------------------
// All-paths semiring Pmin,+ (Definition 3.17, Lemma 3.18).
// Elements are built over a tiny vertex universe so ⊙ stays concatenable.

PathSet sample_pathset(Rng& rng) {
  PathSet p = rng.flip(0.3) ? PathSet::one() : PathSet::zero();
  const int entries = static_cast<int>(rng.below(3));
  for (int e = 0; e < entries; ++e) {
    // Random loop-free path over vertices {0..4}, 1..3 hops.
    std::vector<Vertex> hops;
    const int len = 1 + static_cast<int>(rng.below(3));
    std::vector<Vertex> universe{0, 1, 2, 3, 4};
    shuffle(universe.begin(), universe.end(), rng);
    hops.assign(universe.begin(), universe.begin() + len);
    // Dyadic weights keep ⊙ (weight addition) exactly associative.
    p = p.plus(PathSet::single(VertexPath{hops},
                               std::floor(rng.uniform(0.0, 40.0)) / 4.0));
  }
  return p;
}

class AllPathsAxioms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllPathsAxioms, SemiringLaws) {
  Rng rng(GetParam());
  std::vector<PathSet> xs{PathSet::zero(), PathSet::one()};
  for (int i = 0; i < 4; ++i) xs.push_back(sample_pathset(rng));
  const auto eq = [](const PathSet& a, const PathSet& b) { return a == b; };

  for (const auto& x : xs) {
    EXPECT_TRUE(eq(x.plus(PathSet::zero()), x)) << "x ⊕ 0 != x";
    EXPECT_TRUE(eq(x.times(PathSet::one()), x)) << "x ⊙ 1 != x";
    EXPECT_TRUE(eq(PathSet::one().times(x), x)) << "1 ⊙ x != x";
    EXPECT_TRUE(eq(x.times(PathSet::zero()), PathSet::zero()))
        << "x ⊙ 0 != 0";
    EXPECT_TRUE(eq(PathSet::zero().times(x), PathSet::zero()))
        << "0 ⊙ x != 0";
    for (const auto& y : xs) {
      EXPECT_TRUE(eq(x.plus(y), y.plus(x))) << "⊕ not commutative";
      for (const auto& z : xs) {
        EXPECT_TRUE(eq(x.plus(y).plus(z), x.plus(y.plus(z))))
            << "⊕ not associative";
        EXPECT_TRUE(eq(x.times(y).times(z), x.times(y.times(z))))
            << "⊙ not associative";
        EXPECT_TRUE(eq(x.times(y.plus(z)), x.times(y).plus(x.times(z))))
            << "left distributivity";
        EXPECT_TRUE(eq(y.plus(z).times(x), y.times(x).plus(z.times(x))))
            << "right distributivity";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllPathsAxioms,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

TEST(AllPaths, ConcatenationSemantics) {
  // (0,1)·1 ⊙ (1,2)·2 = (0,1,2)·3.
  const auto a = PathSet::single(VertexPath{{0, 1}}, 1.0);
  const auto b = PathSet::single(VertexPath{{1, 2}}, 2.0);
  const auto ab = a.times(b);
  EXPECT_DOUBLE_EQ(ab.weight_of(VertexPath{{0, 1, 2}}), 3.0);
  EXPECT_EQ(ab.size(), 1U);
  // Non-concatenable product is empty.
  const auto c = PathSet::single(VertexPath{{3, 4}}, 1.0);
  EXPECT_EQ(a.times(c).size(), 0U);
}

TEST(AllPaths, LoopsAreExcluded) {
  // (0,1) ⊙ (1,0) would close a loop (0,1,0) ∉ P.
  const auto a = PathSet::single(VertexPath{{0, 1}}, 1.0);
  const auto b = PathSet::single(VertexPath{{1, 0}}, 1.0);
  EXPECT_EQ(a.times(b).size(), 0U);
}

TEST(AllPaths, PlusTakesMinimumWeight) {
  const auto a = PathSet::single(VertexPath{{0, 1}}, 5.0);
  const auto b = PathSet::single(VertexPath{{0, 1}}, 3.0);
  const auto s = a.plus(b);
  EXPECT_EQ(s.size(), 1U);
  EXPECT_DOUBLE_EQ(s.weight_of(VertexPath{{0, 1}}), 3.0);
}

TEST(AllPaths, FilterKeepsKShortestPerStart) {
  PathSet x;
  x = x.plus(PathSet::single(VertexPath{{0, 1, 2}}, 3.0));
  x = x.plus(PathSet::single(VertexPath{{0, 2}}, 5.0));
  x = x.plus(PathSet::single(VertexPath{{0, 3, 2}}, 7.0));
  x = x.plus(PathSet::single(VertexPath{{1, 2}}, 1.0));
  x = x.plus(PathSet::single(VertexPath{{0, 3}}, 1.0));  // wrong target
  const auto f = x.filter_k_shortest(/*target=*/2, /*k=*/2);
  EXPECT_EQ(f.size(), 3U);  // two starting at 0, one at 1
  EXPECT_TRUE(is_finite(f.weight_of(VertexPath{{0, 1, 2}})));
  EXPECT_TRUE(is_finite(f.weight_of(VertexPath{{0, 2}})));
  EXPECT_FALSE(is_finite(f.weight_of(VertexPath{{0, 3, 2}})));
  EXPECT_FALSE(is_finite(f.weight_of(VertexPath{{0, 3}})));
}

TEST(AllPaths, DistinctWeightFilter) {
  PathSet x;
  x = x.plus(PathSet::single(VertexPath{{0, 1, 2}}, 3.0));
  x = x.plus(PathSet::single(VertexPath{{0, 3, 2}}, 3.0));  // same weight
  x = x.plus(PathSet::single(VertexPath{{0, 2}}, 4.0));
  const auto f = x.filter_k_shortest(2, 2, /*distinct=*/true);
  EXPECT_EQ(f.size(), 2U);
  // Lexicographically smaller path represents weight 3.
  EXPECT_TRUE(is_finite(f.weight_of(VertexPath{{0, 1, 2}})));
  EXPECT_TRUE(is_finite(f.weight_of(VertexPath{{0, 2}})));
}

}  // namespace
}  // namespace pmte
