// Tests for the Congest-model simulation (Section 8): round accounting of
// the Khan et al. algorithm and the skeleton-based algorithm.  Graphs and
// the Dijkstra reference come from the shared tests/support library.
#include <gtest/gtest.h>

#include <cmath>

#include "src/congest/congest.hpp"
#include "src/frt/frt_tree.hpp"
#include "src/graph/generators.hpp"
#include "tests/support/fixtures.hpp"
#include "tests/support/reference.hpp"

namespace pmte {
namespace {

TEST(CongestKhan, ListsMatchDirectIteration) {
  const auto g = test::support_graph("gnm", 40, 1);
  Rng rng(1);
  const auto order = VertexOrder::random(40, rng);
  const auto run = congest_frt_khan(g, order);
  const auto direct = le_lists_iteration(g, order);
  ASSERT_TRUE(run.le.converged);
  for (Vertex v = 0; v < 40; ++v) {
    EXPECT_EQ(run.le.lists[v], direct.lists[v]) << "vertex " << v;
  }
  test::expect_valid_le_lists(run.le.lists, order);
}

TEST(CongestKhan, RoundsScaleWithSpdTimesListSize) {
  // Each iteration costs max list length rounds; Θ(SPD) iterations.
  const auto g = test::support_graph("path", 100, 2);
  Rng rng(2);
  const auto order = VertexOrder::random(100, rng);
  const auto run = congest_frt_khan(g, order);
  EXPECT_GE(run.le.iterations, 50U);
  EXPECT_GE(run.rounds, run.le.iterations);  // ≥ 1 round per iteration
  // O(SPD·log n) w.h.p.: generous envelope.
  EXPECT_LE(run.rounds,
            static_cast<std::uint64_t>(100 * 8 * std::log2(100.0)));
}

TEST(CongestSkeleton, ProducesValidListsAndEmbedding) {
  const auto g = test::support_graph("cliquechain", 72, 3);
  Rng rng(3);
  SkeletonOptions opts;
  opts.spanner_k = 2;
  const auto sk = congest_frt_skeleton(g, opts, rng);
  ASSERT_EQ(sk.run.le.lists.size(), g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(sk.run.le.lists[v].is_least_element_list()) << "vertex " << v;
    EXPECT_FALSE(sk.run.le.lists[v].empty());
  }
  EXPECT_GT(sk.run.skeleton_size, 0U);
  EXPECT_DOUBLE_EQ(sk.run.embedding_stretch, 3.0);  // 2k−1
  // The virtual graph dominates G and stays within (2k−1)·(1+o(1)).
  const auto dg = test::dijkstra_reference(g, 0);
  const auto dh = test::dijkstra_reference(sk.virtual_graph, 0);
  for (Vertex v = 1; v < g.num_vertices(); ++v) {
    EXPECT_GE(dh[v], dg[v] - 1e-9);
    EXPECT_LE(dh[v], 3.0 * dg[v] + 1e-9);
  }
}

TEST(CongestSkeleton, ListsAreListsOfVirtualGraph) {
  // With ℓ = n the final phase runs to the fixpoint, so the produced lists
  // must match sequential LE lists of the explicit virtual graph.
  const auto g = test::support_graph("gnm", 30, 4);
  Rng rng(4);
  SkeletonOptions opts;
  opts.ell = 30;  // full propagation
  opts.spanner_k = 2;
  const auto sk = congest_frt_skeleton(g, opts, rng);
  const auto ref = le_lists_sequential(sk.virtual_graph, sk.order);
  std::size_t agree = 0;
  for (Vertex v = 0; v < 30; ++v) {
    agree += approx_equal(sk.run.le.lists[v], ref.lists[v]) ? 1 : 0;
  }
  // Equation (8.9) holds w.h.p.; demand near-total agreement.
  EXPECT_GE(agree, 28U);
}

TEST(CongestSkeleton, BeatsKhanOnHighSpdGraphs) {
  // The motivating regime (Section 8): SPD(G) ≈ n but D(G) tiny.  A long
  // unit path plus a prohibitively heavy star centre keeps every shortest
  // path on the path (SPD = n−1) while D(G) = 2.  Khan pays
  // Θ(SPD·|list|) rounds; the skeleton algorithm Õ(√n + D).  (The graph
  // stays hand-built — it is deliberately adversarial, not a fixture
  // family.)
  Rng rng(5);
  const Vertex n = 400;
  auto edges = make_path(n).edge_list();
  for (Vertex v = 0; v + 1 < n; ++v) {
    edges.push_back(WeightedEdge{v, static_cast<Vertex>(n - 1), 1e6});
  }
  const auto g = Graph::from_edges(n, std::move(edges));
  const auto order = VertexOrder::random(g.num_vertices(), rng);
  const auto khan = congest_frt_khan(g, order);
  SkeletonOptions opts;
  opts.size_constant = 0.15;  // |S| ≈ ℓ keeps the broadcast term small
  const auto sk = congest_frt_skeleton(g, opts, rng);
  EXPECT_LT(sk.run.rounds, khan.rounds);
}

TEST(CongestSkeleton, TreeFromListsIsUsable) {
  const auto g = test::support_graph("gnm", 36, 6);
  Rng rng(6);
  const auto sk = congest_frt_skeleton(g, {}, rng);
  const auto tree =
      FrtTree::build(sk.run.le.lists, sk.order, 1.3,
                     sk.virtual_graph.min_edge_weight());
  tree.validate();
  EXPECT_EQ(tree.num_leaves(), g.num_vertices());
}

TEST(CongestKhan, MatchesBruteForceOverCorpusSlice) {
  // Cross-check against the shared brute-force LE-list reference on a
  // slice of the common corpus (the direct-iteration equivalence above
  // covers one graph; this covers the families).
  const auto corpus = test::small_graph_corpus(12, 8101);
  for (std::size_t i = 0; i < corpus.size(); i += 3) {
    const auto& c = corpus[i];
    Rng rng(c.seed);
    const auto order = VertexOrder::random(c.graph.num_vertices(), rng);
    const auto run = congest_frt_khan(c.graph, order);
    ASSERT_TRUE(run.le.converged) << c.name;
    const auto ref = test::brute_force_le_lists(c.graph, order);
    for (Vertex v = 0; v < c.graph.num_vertices(); ++v) {
      EXPECT_TRUE(approx_equal(run.le.lists[v], ref[v]))
          << c.name << " vertex " << v;
    }
  }
}

}  // namespace
}  // namespace pmte
