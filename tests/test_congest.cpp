// Tests for the Congest-model simulation (Section 8): round accounting of
// the Khan et al. algorithm and the skeleton-based algorithm.
#include <gtest/gtest.h>

#include <cmath>

#include "src/congest/congest.hpp"
#include "src/frt/frt_tree.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/shortest_paths.hpp"

namespace pmte {
namespace {

TEST(CongestKhan, ListsMatchDirectIteration) {
  Rng rng(1);
  const auto g = make_gnm(40, 90, {1.0, 4.0}, rng);
  const auto order = VertexOrder::random(40, rng);
  const auto run = congest_frt_khan(g, order);
  const auto direct = le_lists_iteration(g, order);
  ASSERT_TRUE(run.le.converged);
  for (Vertex v = 0; v < 40; ++v) {
    EXPECT_EQ(run.le.lists[v], direct.lists[v]) << "vertex " << v;
  }
}

TEST(CongestKhan, RoundsScaleWithSpdTimesListSize) {
  // Each iteration costs max list length rounds; Θ(SPD) iterations.
  const auto g = make_path(100);
  Rng rng(2);
  const auto order = VertexOrder::random(100, rng);
  const auto run = congest_frt_khan(g, order);
  EXPECT_GE(run.le.iterations, 50U);
  EXPECT_GE(run.rounds, run.le.iterations);  // ≥ 1 round per iteration
  // O(SPD·log n) w.h.p.: generous envelope.
  EXPECT_LE(run.rounds,
            static_cast<std::uint64_t>(100 * 8 * std::log2(100.0)));
}

TEST(CongestSkeleton, ProducesValidListsAndEmbedding) {
  Rng rng(3);
  const auto g = make_clique_chain(12, 6, {1.0, 2.0}, rng);
  SkeletonOptions opts;
  opts.spanner_k = 2;
  const auto sk = congest_frt_skeleton(g, opts, rng);
  ASSERT_EQ(sk.run.le.lists.size(), g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(sk.run.le.lists[v].is_least_element_list()) << "vertex " << v;
    EXPECT_FALSE(sk.run.le.lists[v].empty());
  }
  EXPECT_GT(sk.run.skeleton_size, 0U);
  EXPECT_DOUBLE_EQ(sk.run.embedding_stretch, 3.0);  // 2k−1
  // The virtual graph dominates G and stays within (2k−1)·(1+o(1)).
  const auto dg = dijkstra(g, 0).dist;
  const auto dh = dijkstra(sk.virtual_graph, 0).dist;
  for (Vertex v = 1; v < g.num_vertices(); ++v) {
    EXPECT_GE(dh[v], dg[v] - 1e-9);
    EXPECT_LE(dh[v], 3.0 * dg[v] + 1e-9);
  }
}

TEST(CongestSkeleton, ListsAreListsOfVirtualGraph) {
  // With ℓ = n the final phase runs to the fixpoint, so the produced lists
  // must match sequential LE lists of the explicit virtual graph.
  Rng rng(4);
  const auto g = make_gnm(30, 70, {1.0, 3.0}, rng);
  SkeletonOptions opts;
  opts.ell = 30;  // full propagation
  opts.spanner_k = 2;
  const auto sk = congest_frt_skeleton(g, opts, rng);
  const auto ref = le_lists_sequential(sk.virtual_graph, sk.order);
  std::size_t agree = 0;
  for (Vertex v = 0; v < 30; ++v) {
    agree += approx_equal(sk.run.le.lists[v], ref.lists[v]) ? 1 : 0;
  }
  // Equation (8.9) holds w.h.p.; demand near-total agreement.
  EXPECT_GE(agree, 28U);
}

TEST(CongestSkeleton, BeatsKhanOnHighSpdGraphs) {
  // The motivating regime (Section 8): SPD(G) ≈ n but D(G) tiny.  A long
  // unit path plus a prohibitively heavy star centre keeps every shortest
  // path on the path (SPD = n−1) while D(G) = 2.  Khan pays
  // Θ(SPD·|list|) rounds; the skeleton algorithm Õ(√n + D).
  Rng rng(5);
  const Vertex n = 400;
  auto edges = make_path(n).edge_list();
  for (Vertex v = 0; v + 1 < n; ++v) {
    edges.push_back(WeightedEdge{v, static_cast<Vertex>(n - 1), 1e6});
  }
  const auto g = Graph::from_edges(n, std::move(edges));
  const auto order = VertexOrder::random(g.num_vertices(), rng);
  const auto khan = congest_frt_khan(g, order);
  SkeletonOptions opts;
  opts.size_constant = 0.15;  // |S| ≈ ℓ keeps the broadcast term small
  const auto sk = congest_frt_skeleton(g, opts, rng);
  EXPECT_LT(sk.run.rounds, khan.rounds);
}

TEST(CongestSkeleton, TreeFromListsIsUsable) {
  Rng rng(6);
  const auto g = make_gnm(36, 80, {1.0, 4.0}, rng);
  const auto sk = congest_frt_skeleton(g, {}, rng);
  const auto tree =
      FrtTree::build(sk.run.le.lists, sk.order, 1.3,
                     sk.virtual_graph.min_edge_weight());
  tree.validate();
  EXPECT_EQ(tree.num_leaves(), g.num_vertices());
}

}  // namespace
}  // namespace pmte
