// Tests for Δ-stepping SSSP against Dijkstra.
#include <gtest/gtest.h>

#include "src/graph/delta_stepping.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/shortest_paths.hpp"

namespace pmte {
namespace {

class DeltaStepping : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeltaStepping, MatchesDijkstraOnRandomGraphs) {
  Rng rng(GetParam());
  const auto g = make_gnm(120, 400, {0.5, 8.0}, rng);
  const auto ref = dijkstra(g, 0).dist;
  for (const Weight delta : {0.0, 0.5, 2.0, 100.0}) {
    const auto ds = delta_stepping(g, 0, delta);
    for (Vertex v = 0; v < 120; ++v) {
      if (is_finite(ref[v])) {
        EXPECT_NEAR(ds.dist[v], ref[v], 1e-9)
            << "vertex " << v << " delta " << delta;
      } else {
        EXPECT_FALSE(is_finite(ds.dist[v]));
      }
    }
  }
}

TEST_P(DeltaStepping, WorksOnAllFamilies) {
  Rng rng(GetParam() + 50);
  for (const auto& g :
       {make_path(80, {1.0, 3.0}, rng), make_grid(9, 9, {1.0, 2.0}, rng),
        make_star(60, {1.0, 9.0}, rng),
        make_geometric(70, 0.25, rng)}) {
    const auto ref = dijkstra(g, 0).dist;
    const auto ds = delta_stepping(g, 0);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (is_finite(ref[v])) {
        EXPECT_NEAR(ds.dist[v], ref[v], 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaStepping,
                         ::testing::Values(1501, 1502, 1503, 1504));

TEST(DeltaSteppingBasics, PhaseCountScalesWithDelta) {
  // Larger Δ → fewer buckets (Bellman-Ford limit); smaller Δ → more
  // buckets (Dijkstra limit).
  const auto g = make_path(200);
  const auto coarse = delta_stepping(g, 0, 1000.0);
  const auto fine = delta_stepping(g, 0, 1.0);
  EXPECT_LT(coarse.phases, fine.phases);
  EXPECT_DOUBLE_EQ(coarse.dist[199], 199.0);
  EXPECT_DOUBLE_EQ(fine.dist[199], 199.0);
}

TEST(DeltaSteppingBasics, DisconnectedStaysInfinite) {
  const auto g = Graph::from_edges(4, {{0, 1, 1.0}, {2, 3, 1.0}});
  const auto ds = delta_stepping(g, 0);
  EXPECT_FALSE(is_finite(ds.dist[2]));
  EXPECT_TRUE(is_finite(ds.dist[1]));
}

TEST(DeltaSteppingBasics, RejectsBadSource) {
  const auto g = make_path(3);
  EXPECT_THROW((void)delta_stepping(g, 5), std::logic_error);
}

}  // namespace
}  // namespace pmte
