// pmte-lint-fixture-path: src/frt/clean_stable_ids.cpp
// The deterministic alternative: key on stable integer ids, never on
// addresses.
#include <cstdint>
#include <functional>

struct Node {
  std::uint32_t id;
};

std::size_t good_hash(const Node& n) {
  return std::hash<std::uint32_t>{}(n.id);
}
