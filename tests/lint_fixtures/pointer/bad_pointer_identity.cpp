// pmte-lint-fixture-path: src/frt/bad_pointer_identity.cpp
// Pointer values change run to run (ASLR, allocator state); hashing them
// or folding them into keys makes layout and iteration irreproducible.
#include <cstdint>
#include <functional>

struct Node {
  int id;
};

std::size_t bad_hash(Node* n) {
  return std::hash<Node*>{}(n);  // expect-lint: pointer-hash-order
}

std::uint64_t bad_key(const Node* n) {
  return reinterpret_cast<std::uintptr_t>(n);  // expect-lint: pointer-hash-order
}
