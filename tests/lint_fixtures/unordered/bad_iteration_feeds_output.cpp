// pmte-lint-fixture-path: src/apps/bad_iteration_feeds_output.cpp
// Unwaived unordered containers: iteration order is implementation-defined
// and here it feeds both an FP accumulation and an output vector.
#include <unordered_map>
#include <unordered_set>
#include <vector>

double bad_fold() {
  std::unordered_map<int, double> acc;           // expect-lint: unordered-container
  acc[3] = 0.25;
  acc[7] = 0.5;
  double total = 0.0;
  for (const auto& [k, v] : acc) total += v;  // order-dependent rounding
  return total;
}

std::vector<int> bad_output(const std::unordered_set<int>& keys) {  // expect-lint: unordered-container
  std::vector<int> out;
  for (int k : keys) out.push_back(k);  // order leaks into the result
  return out;
}
