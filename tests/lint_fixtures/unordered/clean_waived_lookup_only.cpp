// pmte-lint-fixture-path: src/apps/clean_waived_lookup_only.cpp
// Both waiver placements: same line, and a comment-only line directly
// above the declaration.  Lookup-only caches never iterate, so no
// iteration order can leak — that is exactly what the reason must say.
#include <unordered_map>

struct Memo {
  // pmte-lint: ordered-ok(lookup-only memo cache: find/emplace by key, never iterated)
  std::unordered_map<int, double> per_source;

  std::unordered_map<int, int> ids;  // pmte-lint: ordered-ok(find-only id lookup, never iterated)

  double get(int k) const {
    auto it = per_source.find(k);
    return it == per_source.end() ? -1.0 : it->second;
  }
};
