// pmte-lint-fixture-path: src/apps/bad_waiver_forms.cpp
// Waivers must carry a reason and name a real rule; otherwise they are
// findings themselves and do NOT silence anything.
#include <unordered_map>

std::unordered_map<int, int> a;  // pmte-lint: ordered-ok() expect-lint: bad-waiver, unordered-container

// pmte-lint: allow(no-such-rule: reasons do not help unknown rules) expect-lint: bad-waiver
std::unordered_map<int, int> b;  // expect-lint: unordered-container
