// pmte-lint-fixture-path: src/util/clean_strings_and_comments.cpp
// Lexer specificity test: banned tokens inside comments, string literals,
// char literals, and raw strings are NOT code and must not be flagged.
// Mentions here like rand(), std::mt19937, omp_get_thread_num() and
// #pragma omp parallel are commentary, not violations.
#include <string>

/* Block comments too: std::random_device, unordered_map<int,int>,
   reinterpret_cast<std::uintptr_t>(p), std::chrono::steady_clock. */

std::string docs() {
  const char* a = "call rand() and srand(1) inside a string";
  const char* b = "#pragma omp critical in a string is fine";
  std::string c = R"(raw string: std::unordered_set<int> s; time(nullptr))";
  char d = '"';  // a quote char must not derail the lexer: rand stays text
  return std::string(a) + b + c + d;
}
