// pmte-lint-fixture-path: src/parallel/parallel.hpp
// The audited OpenMP home: raw worksharing pragmas and the thread-count
// APIs are legitimate here (and only here).
#include <omp.h>

int allowed_thread_count() { return omp_get_max_threads(); }
int allowed_thread_index() { return omp_get_thread_num(); }

void allowed_parallel_for(int n, int* out) {
#pragma omp parallel for schedule(dynamic, 64)
  for (int i = 0; i < n; ++i) out[i] = i;
}
