// pmte-lint-fixture-path: src/parallel/bad_atomic_inside_parallel_dir.cpp
// Inside src/parallel/ raw pragmas are allowed (that is the audited home
// of all OpenMP), but FP accumulation via atomic/critical is banned
// EVERYWHERE — scheduling order changes the rounding.
double still_bad_here(int n) {
  double total = 0.0;
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
#pragma omp atomic  // expect-lint: omp-fp-atomic
    total += 0.25 * i;
  }
  return total;
}
