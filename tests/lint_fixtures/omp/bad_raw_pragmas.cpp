// pmte-lint-fixture-path: src/mbf/bad_raw_pragmas.cpp
// Raw OpenMP outside src/parallel/: bypasses the audited deterministic
// chunking/merge helpers.  `critical`/`atomic` additionally commit FP
// updates in scheduling order, and the thread-id APIs make behaviour a
// function of OMP_NUM_THREADS.
#include <omp.h>

double bad_parallel_sum(int n) {
  double total = 0.0;
#pragma omp parallel for  // expect-lint: raw-omp-pragma
  for (int i = 0; i < n; ++i) {
#pragma omp critical  // expect-lint: raw-omp-pragma, omp-fp-atomic
    total += 1.0 / (1.0 + i);
  }
  return total;
}

double bad_atomic_accumulate(int n) {
  double total = 0.0;
#pragma omp parallel for  // expect-lint: raw-omp-pragma
  for (int i = 0; i < n; ++i) {
#pragma omp atomic  // expect-lint: raw-omp-pragma, omp-fp-atomic
    total += 0.5 * i;
  }
  return total;
}

int bad_thread_id() {
  return omp_get_thread_num() + omp_get_max_threads();  // expect-lint: omp-thread-api
}
