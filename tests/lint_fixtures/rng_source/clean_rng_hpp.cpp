// pmte-lint-fixture-path: src/util/rng.hpp
// The one file allowed to talk about raw entropy sources: rng.hpp is the
// audited boundary, so mentions of std::random_device here are exempt.
#include <random>

unsigned long long hardware_entropy_for_docs_only() {
  std::random_device rd;  // exempt: this pretend-file IS src/util/rng.hpp
  return rd();
}
