// pmte-lint-fixture-path: src/graph/bad_adhoc_rng.cpp
// Ad-hoc randomness: every line below is irreproducible from the master
// seed and must flow through src/util/rng.hpp instead.
#include <cstdlib>
#include <random>

int bad_seed() {
  std::srand(42);                                // expect-lint: rng-source
  int a = rand();                                // expect-lint: rng-source
  std::random_device rd;                         // expect-lint: rng-source
  std::mt19937 gen(rd());                        // expect-lint: rng-source
  std::mt19937_64 wide(time(nullptr));           // expect-lint: rng-source
  std::default_random_engine eng;                // expect-lint: rng-source
  return a + static_cast<int>(gen() + wide() + eng());
}
