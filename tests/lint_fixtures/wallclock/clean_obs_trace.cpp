// pmte-lint-fixture-path: src/obs/clean_obs_trace.cpp
// The observability layer is the second audited wall-clock exemption
// (with src/util/timer.hpp): spans and latency histograms *record* time
// but never feed it back into an algorithmic decision — the obs layer is
// write-only with respect to logical state (docs/DETERMINISM.md).
#include <chrono>
#include <cstdint>

std::uint64_t obs_span_timestamp_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
