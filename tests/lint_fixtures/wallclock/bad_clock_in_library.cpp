// pmte-lint-fixture-path: src/serve/bad_clock_in_library.cpp
// Clock reads in library code: wall time leaking into any decision
// (seed, threshold, tie-break) makes runs irreproducible.
#include <chrono>
#include <cstdint>

std::uint64_t bad_time_based_seed() {
  auto now = std::chrono::steady_clock::now();  // expect-lint: wall-clock
  return static_cast<std::uint64_t>(now.time_since_epoch().count());
}
