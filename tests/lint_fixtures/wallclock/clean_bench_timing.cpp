// pmte-lint-fixture-path: bench/clean_bench_timing.cpp
// Benches and tests may measure wall time — the wall-clock rule scopes to
// src/ only (and src/util/timer.hpp is its audited exemption).
#include <chrono>

double bench_seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
