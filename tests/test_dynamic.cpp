// Rebuild-differential harness for the incremental update path
// (docs/DYNAMIC.md).  The dynamic contract is total: after any sequence of
// edge re-weightings, a DynamicEnsemble must be *bit-identical* — LE
// lists, FRT trees, serving indices, served doubles, and logical counters
// — to rebuilding from scratch over the same built H with the final
// weights applied.  The harness replays randomized update sequences over
// the 50-graph serving corpus and pins that equivalence at 1/2/8 threads,
// including updates interleaved with Server epoch hot-swaps and snapshots
// round-tripped through the mapped (v3) load path.
//
// The suite carries the `tsan-par` CTest label: the 8-thread replays run
// the concurrent pieces of the update path (parallel maintainer builds,
// per-level engine rounds, parallel apply over trees) under
// ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/frt/dynamic_frt.hpp"
#include "src/frt/le_lists.hpp"
#include "src/frt/pipelines.hpp"
#include "src/parallel/parallel.hpp"
#include "src/serve/dynamic_ensemble.hpp"
#include "src/serve/frt_ensemble.hpp"
#include "src/serve/hot_pair_cache.hpp"
#include "src/serve/server.hpp"
#include "src/serve/workloads.hpp"
#include "tests/support/fixtures.hpp"

namespace pmte {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

::testing::AssertionResult bits_equal(const std::vector<Weight>& a,
                                      const std::vector<Weight>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(Weight)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(Weight)) != 0) {
        return ::testing::AssertionFailure()
               << "first bit difference at index " << i << ": " << a[i]
               << " vs " << b[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

class ThreadGuard {
 public:
  ThreadGuard() : saved_(num_threads()) {}
  ~ThreadGuard() { set_num_threads(saved_); }

 private:
  int saved_;
};

serve::EnsembleOptions dyn_options(std::size_t trees) {
  serve::EnsembleOptions opts;
  opts.trees = trees;
  opts.pipeline = serve::EnsemblePipeline::oracle;
  return opts;
}

/// One step of a randomized update sequence.  The factor is relative to
/// the weight at apply time, so sequences compose (repeated hits on the
/// same edge compound).
struct EdgeUpdate {
  Vertex u = 0;
  Vertex v = 0;
  double factor = 1.0;
};

/// k randomized re-weightings: the first is always a decrease (the warm
/// path must be exercised in every sequence), the rest flip between
/// decreases and increases so invalidation and its recovery are hit too.
std::vector<EdgeUpdate> make_sequence(const Graph& g, std::size_t k,
                                      Rng& rng) {
  const auto edges = g.edge_list();
  std::vector<EdgeUpdate> seq(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto& e = edges[rng.below(edges.size())];
    const bool decrease = i == 0 || rng.flip(0.5);
    seq[i].u = e.u;
    seq[i].v = e.v;
    seq[i].factor =
        decrease ? rng.uniform(0.3, 0.95) : rng.uniform(1.05, 1.8);
  }
  return seq;
}

std::vector<std::pair<Vertex, Vertex>> make_pairs(Vertex n, std::size_t k,
                                                  Rng& rng) {
  std::vector<std::pair<Vertex, Vertex>> pairs(k);
  for (auto& p : pairs) {
    p.first = static_cast<Vertex>(rng.below(n));
    p.second = static_cast<Vertex>(rng.below(n));
  }
  return pairs;
}

/// The stream-0 simulated graph exactly as DynamicEnsemble::make_h (and
/// FrtEnsemble::build) derives it from the *original* weights.  The update
/// contract re-weights this built H's base in place — hop-set shortcuts
/// are never re-derived — so the rebuild reference shares the H and only
/// swaps the base weights (serve/dynamic_ensemble.hpp).
SimulatedGraph make_reference_h(const Graph& g, std::uint64_t master_seed,
                                const serve::EnsembleOptions& opts) {
  Rng shared(split_seed(master_seed, 0));
  const auto hopset = build_hub_hopset(g, opts.frt.hopset, shared);
  return build_simulated_graph(
      g, hopset, resolve_eps_hat(opts.frt.eps_hat, g.num_vertices()),
      shared);
}

/// Apply exactly the edges whose weight changed, as the dynamic path does.
/// Writing *every* original edge would clobber G'-merged weights where a
/// cheaper hop-set shortcut undercut the edge (augmented() keeps the
/// minimum of parallel edges) — an untouched edge must keep the merged
/// weight.
void reweight_base(SimulatedGraph& h, const Graph& original,
                   const Graph& current) {
  const auto before = original.edge_list();
  const auto after = current.edge_list();
  for (std::size_t i = 0; i < after.size(); ++i) {
    if (after[i].weight != before[i].weight) {
      h.set_base_edge_weight(after[i].u, after[i].v, after[i].weight);
    }
  }
}

/// Full from-scratch rebuild over the (re-weighted) reference H: fresh
/// per-tree RNG streams, fresh oracle runs, fresh trees and indices.
/// This is the ground truth every post-update snapshot is pinned against.
serve::FrtEnsemble rebuild_reference(const SimulatedGraph& h,
                                     const Graph& current,
                                     std::uint64_t master_seed,
                                     const serve::EnsembleOptions& opts) {
  std::vector<serve::FrtIndex> indices(opts.trees);
  for (std::size_t t = 0; t < opts.trees; ++t) {
    Rng rng(split_seed(master_seed, 1 + t));
    const auto s = sample_frt_oracle_on(h, rng, opts.frt);
    indices[t] = serve::FrtIndex::build(s.tree);
  }
  return serve::FrtEnsemble::assemble(std::move(indices), master_seed,
                                      serve::FrtEnsemble::fingerprint(current));
}

/// Apply `seq` through a DynamicEnsemble at the current thread count,
/// recording the post-update snapshot and logical counters of every step
/// plus a served batch over the final state.
struct SequenceResult {
  std::vector<serve::FrtEnsemble> snaps;
  std::vector<serve::DynamicEnsemble::UpdateStats> stats;
  std::vector<Weight> served;
};

SequenceResult replay_sequence(const Graph& g, std::uint64_t seed,
                               const std::vector<EdgeUpdate>& seq,
                               const std::vector<std::pair<Vertex, Vertex>>&
                                   pairs,
                               const serve::EnsembleOptions& opts) {
  SequenceResult r;
  serve::DynamicEnsemble dyn(g, seed, opts);
  for (const auto& ev : seq) {
    const Weight w_new = dyn.graph().edge_weight(ev.u, ev.v) * ev.factor;
    r.stats.push_back(dyn.update(ev.u, ev.v, w_new));
    r.snaps.push_back(dyn.snapshot());
  }
  r.snaps.back().query_batch(pairs, serve::AggregatePolicy::min, r.served);
  return r;
}

/// The headline differential: 50 corpus graphs x 4 seeds = 200 randomized
/// update sequences.  At 1 thread every post-update snapshot is pinned
/// against a full rebuild (ensemble equality covers trees, index arrays,
/// and fingerprints) and the final LE lists are pinned per tree against a
/// fresh oracle run with the maintainer's own beta/order; the 2- and
/// 8-thread replays must then reproduce the 1-thread snapshots, counters,
/// and served doubles bit-for-bit.
TEST(Dynamic, RebuildDifferentialOverCorpus) {
  ThreadGuard guard;
  const auto opts = dyn_options(2);
  const auto corpus = test::serve_graph_corpus(50, 0xD15C0);
  std::size_t sequences = 0;
  for (const auto& cse : corpus) {
    for (const std::uint64_t seed : test::test_seeds(4, cse.seed)) {
      ++sequences;
      Rng rng(split_seed(seed, 9001));
      const auto seq = make_sequence(cse.graph, 2, rng);
      const auto pairs = make_pairs(cse.graph.num_vertices(), 48, rng);

      set_num_threads(1);
      const auto ref = replay_sequence(cse.graph, seed, seq, pairs, opts);

      // Rebuild differential at every step: shared H, final weights of
      // the step, fresh trees.
      auto h = make_reference_h(cse.graph, seed, opts);
      Graph current = cse.graph;
      for (std::size_t i = 0; i < seq.size(); ++i) {
        current.set_edge_weight(
            seq[i].u, seq[i].v,
            current.edge_weight(seq[i].u, seq[i].v) * seq[i].factor);
        reweight_base(h, cse.graph, current);
        const auto rebuilt = rebuild_reference(h, current, seed, opts);
        ASSERT_TRUE(ref.snaps[i] == rebuilt)
            << cse.name << " seed " << seed << " update " << i;
        ASSERT_EQ(ref.snaps[i].registry_fingerprint(),
                  rebuilt.registry_fingerprint())
            << cse.name << " seed " << seed << " update " << i;
      }

      // LE-list differential on the final state, one maintainer at a
      // time: same beta/order draws, fresh oracle run on the re-weighted
      // H, bit-identical lists.
      {
        serve::DynamicEnsemble dyn(cse.graph, seed, opts);
        for (const auto& ev : seq) {
          dyn.update(ev.u, ev.v,
                     dyn.graph().edge_weight(ev.u, ev.v) * ev.factor);
        }
        for (std::size_t t = 0; t < opts.trees; ++t) {
          const DynamicFrt& m = dyn.maintainer(t);
          Rng tree_rng(split_seed(seed, 1 + t));
          EXPECT_EQ(sample_beta(tree_rng), m.beta()) << cse.name;
          const auto order =
              VertexOrder::random(cse.graph.num_vertices(), tree_rng);
          ASSERT_EQ(order.rank_of, m.order().rank_of) << cse.name;
          const auto le = le_lists_oracle(h, m.order(),
                                          opts.frt.max_iterations,
                                          opts.frt.mbf);
          EXPECT_TRUE(le.converged);
          EXPECT_TRUE(m.converged());
          ASSERT_EQ(le.lists, m.lists())
              << cse.name << " seed " << seed << " tree " << t;
        }
      }

      // Thread-count replays: snapshots, logical counters, and served
      // doubles must all reproduce the 1-thread record bit-for-bit.
      for (const int threads : kThreadCounts) {
        if (threads == 1) continue;
        set_num_threads(threads);
        const auto r = replay_sequence(cse.graph, seed, seq, pairs, opts);
        for (std::size_t i = 0; i < seq.size(); ++i) {
          ASSERT_TRUE(r.snaps[i] == ref.snaps[i])
              << cse.name << " seed " << seed << " update " << i << " at "
              << threads << " threads";
          EXPECT_EQ(r.stats[i].incremental, ref.stats[i].incremental);
          EXPECT_EQ(r.stats[i].trees_rebuilt, ref.stats[i].trees_rebuilt);
          EXPECT_EQ(r.stats[i].levels_recomputed,
                    ref.stats[i].levels_recomputed)
              << cse.name << " seed " << seed << " update " << i << " at "
              << threads << " threads";
          EXPECT_EQ(r.stats[i].levels_skipped, ref.stats[i].levels_skipped);
          EXPECT_EQ(r.stats[i].relaxations, ref.stats[i].relaxations);
        }
        EXPECT_TRUE(bits_equal(ref.served, r.served))
            << cse.name << " seed " << seed << " at " << threads
            << " threads";
      }
      set_num_threads(1);
    }
  }
  EXPECT_EQ(sequences, 200u);
}

/// With zero updates the maintained state must be indistinguishable from
/// the static build: same indices, same registry fingerprint (so
/// Server::load of either is idempotent in the registry).
TEST(Dynamic, FreshSnapshotEqualsStaticBuild) {
  const auto g = test::support_graph("gnm", 128, 0xF00D);
  ThreadGuard guard;
  set_num_threads(1);
  const auto opts = dyn_options(3);
  const serve::DynamicEnsemble dyn(g, 4711, opts);
  const auto built = serve::FrtEnsemble::build(g, 4711, opts);
  EXPECT_TRUE(dyn.snapshot() == built);
  EXPECT_EQ(dyn.snapshot().registry_fingerprint(),
            built.registry_fingerprint());

  serve::EnsembleRegistry registry;
  const auto fp = registry.add(serve::FrtEnsemble::build(g, 4711, opts));
  EXPECT_EQ(registry.add(dyn.snapshot()), fp);
  EXPECT_EQ(registry.size(), 1u);
}

/// Path selection and accounting: a decrease rides the warm caches, an
/// increase invalidates, a no-op re-weighting changes nothing.
TEST(Dynamic, UpdatePathSelectionAndCounters) {
  const auto g = test::support_graph("geometric", 96, 0xCAFE);
  ThreadGuard guard;
  set_num_threads(1);
  serve::DynamicEnsemble dyn(g, 99, dyn_options(2));
  const auto before = dyn.snapshot();
  const auto e = g.edge_list().front();

  // Re-weighting to the current weight is a (degenerate) decrease: every
  // oracle converges immediately back to its fixpoint, no tree changes,
  // and the snapshot stays content-identical.
  const auto noop = dyn.update(e.u, e.v, e.weight);
  EXPECT_TRUE(noop.incremental);
  EXPECT_EQ(noop.trees_rebuilt, 0u);
  EXPECT_TRUE(dyn.snapshot() == before);
  EXPECT_EQ(dyn.updates_applied(), 1u);

  const auto dec = dyn.update(e.u, e.v, e.weight * 0.5);
  EXPECT_TRUE(dec.incremental);
  EXPECT_GT(dec.levels_recomputed, 0u);
  for (std::size_t t = 0; t < dyn.num_trees(); ++t) {
    EXPECT_TRUE(dyn.maintainer(t).last_update_incremental());
    EXPECT_TRUE(dyn.maintainer(t).converged());
  }

  const auto inc = dyn.update(e.u, e.v, e.weight * 2.0);
  EXPECT_FALSE(inc.incremental);
  EXPECT_GT(inc.levels_recomputed, 0u);
  for (std::size_t t = 0; t < dyn.num_trees(); ++t) {
    EXPECT_FALSE(dyn.maintainer(t).last_update_incremental());
    EXPECT_TRUE(dyn.maintainer(t).converged());
  }
  EXPECT_EQ(dyn.updates_applied(), 3u);
  // The warm path must do strictly less level work than invalidation
  // recovery on the same edge (the bench_dynamic gate pins the ratio).
  EXPECT_LT(dec.levels_recomputed, inc.levels_recomputed);
}

/// Regression for the warm/invalidate decision point: G' can merge a
/// cheaper hop-set shortcut into an existing edge, so lowering the
/// *graph* weight to a value still above the merged G' weight raises the
/// metric the engines iterate on — the update must invalidate (the warm
/// path's caches would be too strong), and the result must still match a
/// full rebuild bit-for-bit.
TEST(Dynamic, GraphDecreaseOverMergedShortcutInvalidates) {
  ThreadGuard guard;
  set_num_threads(1);
  const auto opts = dyn_options(2);
  const auto corpus = test::serve_graph_corpus(50, 0xD15C0);
  bool found = false;
  for (const auto& cse : corpus) {
    for (const std::uint64_t seed : test::test_seeds(2, cse.seed)) {
      auto h = make_reference_h(cse.graph, seed, opts);
      for (const auto& e : cse.graph.edge_list()) {
        const Weight w_prime = h.base().edge_weight(e.u, e.v);
        if (w_prime >= e.weight) continue;  // no shortcut undercut {u,v}
        found = true;
        const Weight w_new = 0.5 * (w_prime + e.weight);
        ASSERT_LT(w_new, e.weight);  // graph-level decrease...
        ASSERT_GT(w_new, w_prime);   // ...that raises the G' weight
        serve::DynamicEnsemble dyn(cse.graph, seed, opts);
        const auto stats = dyn.update(e.u, e.v, w_new);
        EXPECT_FALSE(stats.incremental) << cse.name << " seed " << seed;
        Graph current = cse.graph;
        current.set_edge_weight(e.u, e.v, w_new);
        reweight_base(h, cse.graph, current);
        const auto rebuilt = rebuild_reference(h, current, seed, opts);
        EXPECT_TRUE(dyn.snapshot() == rebuilt)
            << cse.name << " seed " << seed;
        break;
      }
      if (found) break;
    }
    if (found) break;
  }
  // The serve corpus is dense enough that some shortcut always undercuts
  // an existing edge; if this ever stops holding, the search (not the
  // update contract) needs a new fixture.
  EXPECT_TRUE(found);
}

/// Scenario driver for the swap-interleaved test: two tenants served in 6
/// batches; before batch 2 a decrease is applied and *both* tenants are
/// staged onto the new snapshot, before batch 4 an increase is applied
/// and only tenant 0 follows.
struct SwapScenario {
  std::vector<Weight> out;
  std::vector<serve::TenantCounters> counters;
  std::vector<serve::FrtEnsemble> snaps;  ///< epoch ensembles, in order
  std::size_t registry_size = 0;
  std::uint64_t retired = 0;
};

SwapScenario run_swap_scenario(const Graph& g,
                               const std::vector<serve::TenantQuery>& stream,
                               std::size_t batches) {
  constexpr std::size_t kTenants = 2;
  SwapScenario r;
  serve::DynamicEnsemble dyn(g, 606, dyn_options(3));
  serve::Server server;
  r.snaps.push_back(dyn.snapshot());
  const auto fp0 = server.load(dyn.snapshot());
  for (std::size_t t = 0; t < kTenants; ++t) {
    serve::TenantConfig cfg;
    cfg.ensemble = fp0;
    cfg.policy = (t % 2 == 0) ? serve::AggregatePolicy::min
                              : serve::AggregatePolicy::median;
    cfg.cache_capacity = 256;
    server.add_tenant(cfg);
  }
  const auto edges = g.edge_list();
  std::vector<Weight> out;
  for (std::size_t b = 0; b < batches; ++b) {
    if (b == 2) {
      const auto& e = edges[3 % edges.size()];
      dyn.update(e.u, e.v, dyn.graph().edge_weight(e.u, e.v) * 0.5);
      r.snaps.push_back(dyn.snapshot());
      const auto fp = server.load(dyn.snapshot());
      server.stage_swap(0, fp);
      server.stage_swap(1, fp);
    }
    if (b == 4) {
      const auto& e = edges[7 % edges.size()];
      dyn.update(e.u, e.v, dyn.graph().edge_weight(e.u, e.v) * 1.7);
      r.snaps.push_back(dyn.snapshot());
      const auto fp = server.load(dyn.snapshot());
      server.stage_swap(0, fp);
    }
    const std::size_t lo = stream.size() * b / batches;
    const std::size_t hi = stream.size() * (b + 1) / batches;
    server.serve(std::span(stream).subspan(lo, hi - lo), out);
    r.out.insert(r.out.end(), out.begin(), out.end());
  }
  for (std::size_t t = 0; t < kTenants; ++t) {
    r.counters.push_back(server.counters(static_cast<serve::TenantId>(t)));
  }
  r.registry_size = server.registry().size();
  r.retired = server.epochs_retired();
  return r;
}

/// Tenant t's queries from the stream slice [0, size) split at batch
/// boundaries, as query_batch input per epoch segment.
std::vector<std::vector<std::pair<Vertex, Vertex>>> split_tenant(
    const std::vector<serve::TenantQuery>& stream, serve::TenantId t,
    std::size_t batches, const std::vector<std::size_t>& boundaries) {
  std::vector<std::vector<std::pair<Vertex, Vertex>>> segments(
      boundaries.size() + 1);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (stream[i].tenant != t) continue;
    std::size_t seg = 0;
    for (const std::size_t b : boundaries) {
      if (i >= stream.size() * b / batches) ++seg;
    }
    segments[seg].emplace_back(stream[i].u, stream[i].v);
  }
  return segments;
}

/// Updates interleaved with epoch hot-swaps: the interleaved scenario is
/// thread-count invariant, and every tenant's served values equal a
/// serial replay of its stream split at its own swap points, each segment
/// against the matching dynamic snapshot with a fresh cache.
TEST(Dynamic, UpdatesInterleavedWithEpochSwaps) {
  const auto g = test::support_graph("gnm", 144, 0xABBA);
  constexpr std::size_t kBatches = 6;
  std::vector<serve::TenantStreamSpec> specs(2);
  specs[0].kind = serve::WorkloadKind::zipf;
  specs[0].opts.pairs = 900;
  specs[0].opts.zipf_s = 1.2;
  specs[1].kind = serve::WorkloadKind::uniform;
  specs[1].opts.pairs = 900;
  const auto stream = serve::make_multi_tenant_workload(g, specs, 606);

  ThreadGuard guard;
  set_num_threads(1);
  const auto reference = run_swap_scenario(g, stream, kBatches);
  ASSERT_EQ(reference.snaps.size(), 3u);
  // fp0 drained once both tenants flipped at batch 2; the increase
  // snapshot joins at batch 4 with tenant 1 still on the middle epoch.
  EXPECT_EQ(reference.retired, 1u);
  EXPECT_EQ(reference.registry_size, 2u);
  EXPECT_EQ(reference.counters[0].epoch, 2u);
  EXPECT_EQ(reference.counters[1].epoch, 1u);

  for (const int threads : kThreadCounts) {
    set_num_threads(threads);
    const auto r = run_swap_scenario(g, stream, kBatches);
    EXPECT_TRUE(bits_equal(reference.out, r.out)) << threads << " threads";
    for (std::size_t t = 0; t < 2; ++t) {
      EXPECT_EQ(reference.counters[t].result_hash64,
                r.counters[t].result_hash64)
          << "tenant " << t << ", " << threads << " threads";
      EXPECT_EQ(reference.counters[t].cache_admissions,
                r.counters[t].cache_admissions);
      EXPECT_EQ(reference.counters[t].cache_conflicts,
                r.counters[t].cache_conflicts);
    }
    EXPECT_EQ(r.retired, reference.retired);
    EXPECT_EQ(r.registry_size, reference.registry_size);
  }
  set_num_threads(1);

  // Serial replay differential.  Tenant 0 swaps at batches 2 and 4 —
  // three epoch segments; tenant 1 swaps at batch 2 only — the increase
  // snapshot never reaches it.
  std::vector<Weight> served0, served1;
  std::size_t consumed = 0;
  for (std::size_t b = 0; b < kBatches; ++b) {
    const std::size_t lo = stream.size() * b / kBatches;
    const std::size_t hi = stream.size() * (b + 1) / kBatches;
    for (std::size_t i = lo; i < hi; ++i) {
      (stream[i].tenant == 0 ? served0 : served1)
          .push_back(reference.out[consumed + i - lo]);
    }
    consumed += hi - lo;
  }
  const auto seg0 = split_tenant(stream, 0, kBatches, {2, 4});
  const auto seg1 = split_tenant(stream, 1, kBatches, {2});
  std::vector<Weight> replay0, replay1, part;
  for (std::size_t s = 0; s < seg0.size(); ++s) {
    serve::HotPairCache cache(256);
    reference.snaps[s].query_batch(seg0[s], serve::AggregatePolicy::min,
                                   part, &cache);
    replay0.insert(replay0.end(), part.begin(), part.end());
  }
  for (std::size_t s = 0; s < seg1.size(); ++s) {
    serve::HotPairCache cache(256);
    reference.snaps[s].query_batch(seg1[s], serve::AggregatePolicy::median,
                                   part, &cache);
    replay1.insert(replay1.end(), part.begin(), part.end());
  }
  EXPECT_TRUE(bits_equal(served0, replay0));
  EXPECT_TRUE(bits_equal(served1, replay1));
}

/// Updated snapshots survive the mapped (v3) serving path: save → mmap
/// load is content-identical, serves the same doubles, and hot-swapping a
/// tenant onto a mapped post-update epoch equals querying the snapshot
/// directly.
TEST(Dynamic, MappedSnapshotServesUpdatedMetric) {
  const auto g = test::support_graph("geometric", 112, 0x31AB);
  ThreadGuard guard;
  set_num_threads(1);
  serve::DynamicEnsemble dyn(g, 808, dyn_options(2));
  const auto edges = g.edge_list();

  dyn.update(edges[1].u, edges[1].v, edges[1].weight * 0.4);
  const auto snap1 = dyn.snapshot();
  dyn.update(edges[5].u, edges[5].v, edges[5].weight * 1.6);
  const auto snap2 = dyn.snapshot();
  ASSERT_NE(snap1.registry_fingerprint(), snap2.registry_fingerprint());

  const std::string path1 = "test_dynamic_mapped1.tmp";
  const std::string path2 = "test_dynamic_mapped2.tmp";
  {
    std::ofstream out1(path1, std::ios::binary | std::ios::trunc);
    snap1.save(out1);
    std::ofstream out2(path2, std::ios::binary | std::ios::trunc);
    snap2.save(out2);
  }
  auto mapped1 = serve::FrtEnsemble::load_mapped(path1);
  auto mapped2 = serve::FrtEnsemble::load_mapped(path2);
  EXPECT_TRUE(mapped1 == snap1);
  EXPECT_TRUE(mapped2 == snap2);

  Rng rng(split_seed(808, 1234));
  const auto pairs = make_pairs(g.num_vertices(), 400, rng);
  std::vector<Weight> want1, want2, got;
  snap1.query_batch(pairs, serve::AggregatePolicy::min, want1);
  snap2.query_batch(pairs, serve::AggregatePolicy::min, want2);
  mapped1.query_batch(pairs, serve::AggregatePolicy::min, got);
  EXPECT_TRUE(bits_equal(want1, got));
  mapped2.query_batch(pairs, serve::AggregatePolicy::min, got);
  EXPECT_TRUE(bits_equal(want2, got));

  // Serve both epochs through a Server holding the *mapped* images.
  serve::Server server;
  const auto fp1 = server.load(std::move(mapped1));
  const auto fp2 = server.load(std::move(mapped2));
  serve::TenantConfig cfg;
  cfg.ensemble = fp1;
  cfg.cache_capacity = 128;
  const auto tid = server.add_tenant(cfg);
  std::vector<serve::TenantQuery> batch(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    batch[i] = {tid, pairs[i].first, pairs[i].second};
  }
  std::vector<Weight> out;
  server.serve(batch, out);
  EXPECT_TRUE(bits_equal(want1, out));
  server.stage_swap(tid, fp2);
  server.serve(batch, out);
  EXPECT_TRUE(bits_equal(want2, out));
  EXPECT_EQ(server.counters(tid).epoch, 1u);

  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

}  // namespace
}  // namespace pmte
