// Tests for the generic MBF-like engine (Section 2): matrix-vector
// semantics, fixpoint behaviour, and Corollary 2.17 (intermediate filtering
// does not change the filtered result).
#include <gtest/gtest.h>

#include "src/frt/le_lists.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/mbf/algebras.hpp"
#include "src/mbf/engine.hpp"

namespace pmte {
namespace {

TEST(MbfEngine, SingleStepIsMatrixVectorProduct) {
  // x⁽¹⁾ = A x⁽⁰⁾ over Smin,+/D must equal one Bellman-Ford round.
  auto g = Graph::from_edges(4, {{0, 1, 1.0}, {1, 2, 2.0}, {0, 3, 7.0}});
  SourceDetectionAlgebra alg;  // identity filter
  std::vector<DistanceMap> x(4);
  x[0] = DistanceMap::singleton(0, 0.0);
  const auto y = mbf_step(g, alg, x);
  EXPECT_DOUBLE_EQ(y[0].at(0), 0.0);
  EXPECT_DOUBLE_EQ(y[1].at(0), 1.0);
  EXPECT_DOUBLE_EQ(y[3].at(0), 7.0);
  EXPECT_TRUE(y[2].empty());  // two hops away
}

TEST(MbfEngine, WeightScaleStretchesEdges) {
  auto g = Graph::from_edges(2, {{0, 1, 3.0}});
  SourceDetectionAlgebra alg;
  std::vector<DistanceMap> x(2);
  x[0] = DistanceMap::singleton(0, 0.0);
  const auto y = mbf_step(g, alg, x, /*weight_scale=*/2.5);
  EXPECT_DOUBLE_EQ(y[1].at(0), 7.5);
}

TEST(MbfEngine, FixpointAfterSpdIterations) {
  auto g = make_path(9);
  SourceDetectionAlgebra alg;
  std::vector<DistanceMap> x0(9);
  x0[0] = DistanceMap::singleton(0, 0.0);
  auto run = mbf_run(g, alg, std::move(x0), 100);
  EXPECT_TRUE(run.reached_fixpoint);
  // Fixpoint detection needs SPD + 1 iterations: 8 productive + 1 check.
  EXPECT_EQ(run.iterations, 9U);
  for (Vertex v = 0; v < 9; ++v) {
    EXPECT_DOUBLE_EQ(run.states[v].at(0), static_cast<double>(v));
  }
}

TEST(MbfEngine, IterationBudgetRespected) {
  auto g = make_path(50);
  SourceDetectionAlgebra alg;
  std::vector<DistanceMap> x0(50);
  x0[0] = DistanceMap::singleton(0, 0.0);
  auto run = mbf_run(g, alg, std::move(x0), 5);
  EXPECT_FALSE(run.reached_fixpoint);
  EXPECT_EQ(run.iterations, 5U);
  // dist^5 semantics: vertex 7 not reached yet.
  EXPECT_FALSE(is_finite(run.states[7].at(0)));
  EXPECT_DOUBLE_EQ(run.states[5].at(0), 5.0);
}

TEST(MbfEngine, StateSizeMismatchThrows) {
  auto g = make_path(3);
  SourceDetectionAlgebra alg;
  std::vector<DistanceMap> x(2);  // wrong size
  EXPECT_THROW((void)mbf_step(g, alg, x), std::logic_error);
}

// Corollary 2.17: r^V A^h x⁽⁰⁾ = (r^V A)^h x⁽⁰⁾ — running with or without
// intermediate filtering must produce the same *filtered* end state.
class FilterExchange : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FilterExchange, SourceDetection) {
  Rng rng(GetParam());
  auto g = make_gnm(24, 50, {1.0, 4.0}, rng);
  SourceDetectionAlgebra alg{.k = 3, .max_dist = 9.0};
  std::vector<DistanceMap> x0(24);
  for (Vertex s : {0U, 5U, 11U, 17U}) {
    x0[s] = DistanceMap::singleton(s, 0.0);
  }
  const unsigned h = 6;
  auto filtered = x0;
  auto raw = x0;
  for (unsigned i = 0; i < h; ++i) {
    filtered = mbf_step(g, alg, filtered, 1.0, /*filter=*/true);
    raw = mbf_step(g, alg, raw, 1.0, /*filter=*/false);
  }
  mbf_filter(alg, raw);
  for (Vertex v = 0; v < 24; ++v) {
    EXPECT_EQ(filtered[v], raw[v]) << "vertex " << v;
  }
}

TEST_P(FilterExchange, LeLists) {
  Rng rng(GetParam() + 500);
  auto g = make_gnm(20, 40, {1.0, 3.0}, rng);
  const auto order = VertexOrder::random(20, rng);
  const LeListAlgebra alg;
  auto filtered = le_initial_state(order);
  auto raw = filtered;
  const unsigned h = 5;
  for (unsigned i = 0; i < h; ++i) {
    filtered = mbf_step(g, alg, filtered, 1.0, true);
    raw = mbf_step(g, alg, raw, 1.0, false);
  }
  mbf_filter(alg, raw);
  for (Vertex v = 0; v < 20; ++v) {
    EXPECT_EQ(filtered[v], raw[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterExchange,
                         ::testing::Values(61, 62, 63, 64, 65, 66, 67, 68));

TEST(MbfEngine, WorkCountersAdvance) {
  WorkDepth::reset();
  auto g = make_gnm(30, 60, {1.0, 2.0}, Rng(9));
  SourceDetectionAlgebra alg;
  std::vector<DistanceMap> x0(30);
  x0[0] = DistanceMap::singleton(0, 0.0);
  const WorkDepthScope scope;
  (void)mbf_run(g, alg, std::move(x0), 10);
  EXPECT_GT(scope.work_delta(), 0U);
  EXPECT_GT(scope.depth_delta(), 0U);
  EXPECT_GT(scope.relaxations_delta(), 0U);
  EXPECT_GE(scope.edges_touched_delta(), scope.relaxations_delta());
}

// The point of the frontier: on long-diameter graphs the changed set is a
// narrow wavefront, so a full fixpoint run must relax asymptotically fewer
// edges than the dense engine's iterations × 2m.  Counter counts are
// deterministic, so the bound is exact, not statistical.
TEST(MbfEngine, FrontierRelaxesAsymptoticallyFewerEdgesOnPath) {
  const Vertex n = 512;
  const auto g = make_path(n);
  ScalarDistanceAlgebra alg;
  std::vector<Weight> x0(n, inf_weight());
  x0[0] = 0.0;

  const WorkDepthScope dense_scope;
  const auto dense = mbf_run(g, alg, x0, n, 1.0, MbfMode::kDense);
  const std::uint64_t dense_relax = dense_scope.relaxations_delta();

  const WorkDepthScope sparse_scope;
  const auto sparse = mbf_run(g, alg, x0, n, 1.0, MbfMode::kAuto);
  const std::uint64_t sparse_relax = sparse_scope.relaxations_delta();

  ASSERT_TRUE(dense.reached_fixpoint);
  ASSERT_TRUE(sparse.reached_fixpoint);
  EXPECT_EQ(dense.iterations, sparse.iterations);
  for (Vertex v = 0; v < n; ++v) {
    EXPECT_EQ(dense.states[v], sparse.states[v]) << "vertex " << v;
  }
  // Dense: SPD(G)+1 iterations × 2m ≈ 2n² relaxations.  Frontier: one
  // dense first round + an O(1)-wide wavefront per round ≈ O(n).
  EXPECT_EQ(dense_relax,
            static_cast<std::uint64_t>(dense.iterations) * 2 * g.num_edges());
  EXPECT_LT(sparse_relax * 20, dense_relax);
}

TEST(MbfEngine, FrontierRelaxesFewerEdgesOnGrid) {
  const auto g = make_grid(20, 20, {1.0, 2.0}, Rng(13));
  ScalarDistanceAlgebra alg;
  std::vector<Weight> x0(g.num_vertices(), inf_weight());
  x0[0] = 0.0;

  const WorkDepthScope dense_scope;
  const auto dense =
      mbf_run(g, alg, x0, g.num_vertices(), 1.0, MbfMode::kDense);
  const std::uint64_t dense_relax = dense_scope.relaxations_delta();

  const WorkDepthScope sparse_scope;
  const auto sparse =
      mbf_run(g, alg, x0, g.num_vertices(), 1.0, MbfMode::kAuto);
  const std::uint64_t sparse_relax = sparse_scope.relaxations_delta();

  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(dense.states[v], sparse.states[v]) << "vertex " << v;
  }
  EXPECT_LT(sparse_relax * 2, dense_relax);
}

// Acceptance: frontier-driven runs are bit-identical to the dense engine
// at 1, 2, and 8 OpenMP threads — states, iteration counts, and the
// deterministic relaxation counters.
TEST(MbfEngine, FrontierBitIdenticalAcrossThreadCounts) {
  const int restore = num_threads();
  const auto g = make_grid(16, 16, {1.0, 3.0}, Rng(17));
  Rng rng(23);
  const auto order = VertexOrder::random(g.num_vertices(), rng);
  const LeListAlgebra alg;
  const auto x0 = le_initial_state(order);

  const auto dense =
      mbf_run(g, alg, x0, g.num_vertices(), 1.0, MbfMode::kDense);
  std::uint64_t relax1 = 0;
  for (const int threads : {1, 2, 8}) {
    set_num_threads(threads);
    const WorkDepthScope scope;
    const auto sparse =
        mbf_run(g, alg, x0, g.num_vertices(), 1.0, MbfMode::kAuto);
    EXPECT_EQ(sparse.iterations, dense.iterations) << threads << " threads";
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(sparse.states[v], dense.states[v])
          << threads << " threads, vertex " << v;
    }
    if (threads == 1) {
      relax1 = scope.relaxations_delta();
    } else {
      EXPECT_EQ(scope.relaxations_delta(), relax1) << threads << " threads";
    }
  }
  set_num_threads(restore);
}

}  // namespace
}  // namespace pmte
