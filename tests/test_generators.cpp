// Tests for the synthetic graph families (src/graph/generators.*), plus
// the workload-stream property that the serving tests lean on: per-tenant
// substreams are pinned to their own split_seed stream and stay stable
// while a DynamicEnsemble replays weight updates on the same graph.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/serve/dynamic_ensemble.hpp"
#include "src/serve/workloads.hpp"
#include "src/util/rng.hpp"

namespace pmte {
namespace {

TEST(Generators, PathShape) {
  auto g = make_path(10);
  EXPECT_EQ(g.num_vertices(), 10U);
  EXPECT_EQ(g.num_edges(), 9U);
  EXPECT_TRUE(is_connected(g));
  const auto info = shortest_path_diameter(g);
  EXPECT_EQ(info.spd, 9U);
  EXPECT_EQ(info.hop_diam, 9U);
}

TEST(Generators, CycleShape) {
  auto g = make_cycle(8);
  EXPECT_EQ(g.num_edges(), 8U);
  for (Vertex v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 2U);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, GridShapeAndDistance) {
  auto g = make_grid(4, 5);
  EXPECT_EQ(g.num_vertices(), 20U);
  EXPECT_EQ(g.num_edges(), 4U * 4 + 5U * 3);  // h: 4*4, v: 3*5
  EXPECT_TRUE(is_connected(g));
  // Unit-weight grid: distance = Manhattan distance.
  const auto d = dijkstra(g, 0).dist;
  EXPECT_DOUBLE_EQ(d[19], 3.0 + 4.0);
}

TEST(Generators, TorusDegrees) {
  auto g = make_torus(4, 4);
  for (Vertex v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), 4U);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, StarAndComplete) {
  auto star = make_star(6);
  EXPECT_EQ(star.num_edges(), 5U);
  EXPECT_EQ(star.degree(0), 5U);
  auto kn = make_complete(6);
  EXPECT_EQ(kn.num_edges(), 15U);
  const auto info = shortest_path_diameter(kn);
  EXPECT_EQ(info.spd, 1U);
}

TEST(Generators, BinaryTree) {
  auto g = make_binary_tree(15);
  EXPECT_EQ(g.num_edges(), 14U);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, GnmConnectedWithRequestedEdges) {
  Rng rng(42);
  auto g = make_gnm(50, 120, {1.0, 2.0}, rng);
  EXPECT_EQ(g.num_vertices(), 50U);
  EXPECT_EQ(g.num_edges(), 120U);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GE(g.min_edge_weight(), 1.0);
  EXPECT_LE(g.max_edge_weight(), 2.0);
}

TEST(Generators, GnmRejectsBadM) {
  Rng rng(1);
  EXPECT_THROW(make_gnm(10, 5, {}, rng), std::logic_error);    // < n-1
  EXPECT_THROW(make_gnm(10, 100, {}, rng), std::logic_error);  // > n(n-1)/2
}

TEST(Generators, GeometricConnected) {
  auto g = make_geometric(80, 0.18, Rng(7));
  EXPECT_EQ(g.num_vertices(), 80U);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GT(g.min_edge_weight(), 0.0);
}

TEST(Generators, CaterpillarHighSpd) {
  auto g = make_caterpillar(20, 3, 10.0, 1.0);
  EXPECT_EQ(g.num_vertices(), 20U * 4);
  EXPECT_TRUE(is_connected(g));
  const auto info = shortest_path_diameter(g);
  // Leg–spine–leg paths traverse the whole spine plus two legs.
  EXPECT_GE(info.spd, 20U);
}

TEST(Generators, CliqueChain) {
  auto g = make_clique_chain(4, 5);
  EXPECT_EQ(g.num_vertices(), 20U);
  EXPECT_TRUE(is_connected(g));
  // 4 cliques of C(5,2)=10 edges plus 3 bridges.
  EXPECT_EQ(g.num_edges(), 43U);
}

TEST(Generators, MetricGraphHasSpdOne) {
  // A valid metric: points on a line.
  const Vertex n = 6;
  std::vector<Weight> d(n * n, 0.0);
  for (Vertex i = 0; i < n; ++i) {
    for (Vertex j = 0; j < n; ++j) {
      d[i * n + j] = std::abs(static_cast<double>(i) - j);
    }
  }
  for (Vertex i = 0; i < n; ++i) d[i * n + i] = 0.0;
  auto g = make_from_metric(n, d);
  EXPECT_EQ(g.num_edges(), n * (n - 1) / 2);
  const auto info = shortest_path_diameter(g);
  EXPECT_EQ(info.spd, 1U);
}

TEST(Generators, Dumbbell) {
  auto g = make_dumbbell(5, 6);
  EXPECT_EQ(g.num_vertices(), 16U);
  EXPECT_TRUE(is_connected(g));
  const auto info = shortest_path_diameter(g);
  EXPECT_GE(info.spd, 7U);
}

TEST(Generators, TenantSubstreamsStableUnderUpdateReplay) {
  // make_multi_tenant_workload promises tenant t's subsequence is exactly
  // make_workload on Rng(split_seed(seed, kTenantWorkloadStreamBase + t)),
  // independent of the other tenants.  The serving tests additionally
  // lean on the stream being a pure function of the graph *structure*:
  // replaying edge-weight updates through a DynamicEnsemble between
  // generation calls must not perturb a single query — weights feed the
  // metric, never the workload draws.
  Rng graph_rng(2024);
  const auto g = make_gnm(128, 512, {1.0, 9.0}, graph_rng);
  std::vector<serve::TenantStreamSpec> specs(3);
  specs[0].kind = serve::WorkloadKind::zipf;
  specs[0].opts.pairs = 220;
  specs[0].opts.zipf_s = 1.3;
  specs[1].kind = serve::WorkloadKind::uniform;
  specs[1].opts.pairs = 150;
  specs[2].kind = serve::WorkloadKind::bfs_local;
  specs[2].opts.pairs = 260;
  specs[2].opts.bfs_hops = 2;
  const std::uint64_t seed = 77;

  const auto same_stream = [](const std::vector<serve::TenantQuery>& a,
                              const std::vector<serve::TenantQuery>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].tenant != b[i].tenant || a[i].u != b[i].u ||
          a[i].v != b[i].v) {
        return false;
      }
    }
    return true;
  };
  const auto check_substreams =
      [&](const Graph& graph, const std::vector<serve::TenantQuery>& stream) {
        for (std::size_t t = 0; t < specs.size(); ++t) {
          std::vector<std::pair<Vertex, Vertex>> sub;
          for (const auto& q : stream) {
            if (q.tenant == static_cast<serve::TenantId>(t)) {
              sub.emplace_back(q.u, q.v);
            }
          }
          Rng rng(split_seed(seed, serve::kTenantWorkloadStreamBase + t));
          const auto standalone =
              serve::make_workload(graph, specs[t].kind, specs[t].opts, rng);
          EXPECT_EQ(sub, standalone) << "tenant " << t;
        }
      };

  const auto stream = serve::make_multi_tenant_workload(g, specs, seed);
  ASSERT_EQ(stream.size(), 220u + 150u + 260u);
  check_substreams(g, stream);

  // Interleave update replay with regeneration: one warm decrease, one
  // invalidating increase, one more decrease.
  serve::EnsembleOptions opts;
  opts.trees = 2;
  opts.pipeline = serve::EnsemblePipeline::oracle;
  serve::DynamicEnsemble dyn(g, seed, opts);
  const auto edges = g.edge_list();
  const double factors[] = {0.5, 1.6, 0.8};
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& e = edges[(7 * i + 3) % edges.size()];
    dyn.update(e.u, e.v, dyn.graph().edge_weight(e.u, e.v) * factors[i]);
    const auto replayed =
        serve::make_multi_tenant_workload(dyn.graph(), specs, seed);
    EXPECT_TRUE(same_stream(stream, replayed)) << "after update " << i;
    check_substreams(dyn.graph(), replayed);
  }
}

TEST(Generators, WeightModelUnit) {
  Rng rng(3);
  WeightModel unit;  // lo == hi == 1
  EXPECT_DOUBLE_EQ(unit.draw(rng), 1.0);
  WeightModel range{2.0, 4.0};
  for (int i = 0; i < 100; ++i) {
    const double w = range.draw(rng);
    EXPECT_GE(w, 2.0);
    EXPECT_LT(w, 4.0);
  }
}

}  // namespace
}  // namespace pmte
