// Tests for the OpenMP helpers and work/depth instrumentation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "src/parallel/counters.hpp"
#include "src/parallel/parallel.hpp"

namespace pmte {
namespace {

TEST(Parallel, ForCoversEveryIndexOnce) {
  const std::size_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, ForHandlesSmallRangesSerially) {
  int count = 0;  // intentionally unsynchronised: small ranges run serially
  parallel_for(10, [&](std::size_t) { ++count; }, 64);
  EXPECT_EQ(count, 10);
}

TEST(Parallel, BalancedForCoversEveryIndexOnce) {
  // Skewed costs (one huge item, many tiny ones) and zero costs must not
  // change coverage: every index exactly once.
  for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                              std::size_t{1000}, std::size_t{10000}}) {
    std::vector<std::atomic<int>> hits(n);
    parallel_for_balanced(
        n, [&](std::size_t i) { return i == 0 ? 100000 : i % 3; },
        [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(Parallel, BalancedForMatchesPlainForAcrossThreadCounts) {
  const int restore = num_threads();
  const std::size_t n = 5000;
  std::vector<double> reference(n);
  for (std::size_t i = 0; i < n; ++i) {
    reference[i] = static_cast<double>(i) * 1.5 + 1.0;
  }
  for (const int threads : {1, 2, 8}) {
    set_num_threads(threads);
    std::vector<double> out(n, 0.0);
    parallel_for_balanced(
        n, [&](std::size_t i) { return (i * 37) % 101; },
        [&](std::size_t i) { out[i] = static_cast<double>(i) * 1.5 + 1.0; });
    EXPECT_EQ(out, reference) << "threads " << threads;
  }
  set_num_threads(restore);
}

TEST(Parallel, BalancedForCountersAreThreadCountInvariant) {
  // WorkDepth adds from inside a balanced loop must total the same at any
  // thread count — the counters are logical-operation counts.
  const int restore = num_threads();
  const std::size_t n = 4000;
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < n; ++i) expected += i % 17;
  for (const int threads : {1, 2, 8}) {
    set_num_threads(threads);
    const WorkDepthScope scope;
    parallel_for_balanced(
        n, [&](std::size_t i) { return i % 17; },
        [&](std::size_t i) { WorkDepth::add_relaxations(i % 17); });
    EXPECT_EQ(scope.relaxations_delta(), expected) << "threads " << threads;
  }
  set_num_threads(restore);
}

TEST(Parallel, ReduceSum) {
  const double s =
      parallel_reduce_sum(1000, [](std::size_t i) { return double(i); });
  EXPECT_DOUBLE_EQ(s, 999.0 * 1000.0 / 2.0);
}

TEST(Parallel, ReduceMax) {
  const double m = parallel_reduce_max(
      512, [](std::size_t i) { return i == 77 ? 1e9 : double(i); });
  EXPECT_DOUBLE_EQ(m, 1e9);
}

TEST(Parallel, ThreadCountControls) {
  const int before = num_threads();
  EXPECT_GE(before, 1);
  set_num_threads(1);
  EXPECT_EQ(num_threads(), 1);
  set_num_threads(before);
  EXPECT_EQ(num_threads(), before);
}

TEST(WorkDepthCounters, AccumulateAcrossThreads) {
  WorkDepth::reset();
  parallel_for(1000, [](std::size_t) { WorkDepth::add_work(3); });
  EXPECT_EQ(WorkDepth::work(), 3000U);
  WorkDepth::add_depth(5);
  EXPECT_EQ(WorkDepth::depth(), 5U);
}

TEST(WorkDepthCounters, ScopeMeasuresDeltas) {
  WorkDepth::reset();
  WorkDepth::add_work(100);
  const WorkDepthScope scope;
  WorkDepth::add_work(42);
  WorkDepth::add_depth(2);
  EXPECT_EQ(scope.work_delta(), 42U);
  EXPECT_EQ(scope.depth_delta(), 2U);
}

TEST(WorkDepthCounters, RelaxationAndEdgeCountersAreIndependent) {
  WorkDepth::reset();
  const WorkDepthScope scope;
  parallel_for(500, [](std::size_t) {
    WorkDepth::add_relaxations(2);
    WorkDepth::add_edges_touched(7);
  });
  EXPECT_EQ(scope.relaxations_delta(), 1000U);
  EXPECT_EQ(scope.edges_touched_delta(), 3500U);
  EXPECT_EQ(scope.work_delta(), 0U);
}

TEST(PerThreadBuffers, DrainSortedIsDeterministic) {
  const int restore = num_threads();
  const std::size_t n = 20000;
  std::vector<std::uint32_t> reference;
  for (const int threads : {1, 2, 8}) {
    set_num_threads(threads);
    PerThreadBuffers<std::uint32_t> buffers;
    buffers.clear();
    parallel_for(n, [&](std::size_t i) {
      if (i % 3 == 0) buffers.local().push_back(static_cast<std::uint32_t>(i));
    });
    std::vector<std::uint32_t> out;
    buffers.drain_sorted(out);
    ASSERT_EQ(out.size(), (n + 2) / 3) << threads << " threads";
    for (std::size_t j = 0; j < out.size(); ++j) {
      ASSERT_EQ(out[j], 3 * j) << threads << " threads";
    }
    if (threads == 1) {
      reference = out;
    } else {
      EXPECT_EQ(out, reference) << threads << " threads";
    }
  }
  set_num_threads(restore);
}

TEST(PerThreadBuffers, DrainSortedUniqueDeduplicates) {
  PerThreadBuffers<std::uint32_t> buffers;
  buffers.clear();
  parallel_for(999, [&](std::size_t i) {
    buffers.local().push_back(static_cast<std::uint32_t>(i % 10));
  });
  std::vector<std::uint32_t> out;
  buffers.drain_sorted_unique(out);
  ASSERT_EQ(out.size(), 10U);
  for (std::uint32_t j = 0; j < 10; ++j) EXPECT_EQ(out[j], j);
}

TEST(PerThreadBuffers, DrainEmptiesBuffers) {
  PerThreadBuffers<int> buffers;
  buffers.clear();
  buffers.local().push_back(4);
  buffers.local().push_back(1);
  std::vector<int> out;
  buffers.drain_sorted(out);
  EXPECT_EQ(out, (std::vector<int>{1, 4}));
  buffers.drain_sorted(out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace pmte
