// Integration tests: the four FRT sampling pipelines of Section 7.4
// produce comparable, valid embeddings end to end.  Graphs come from the
// shared tests/support fixture library so families, sizes, and seeds stay
// consistent across suites.
#include <gtest/gtest.h>

#include <cmath>

#include "src/frt/pipelines.hpp"
#include "src/frt/stretch.hpp"
#include "src/graph/shortest_paths.hpp"
#include "tests/support/fixtures.hpp"

namespace pmte {
namespace {

class Pipelines : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Graph random_graph() { return test::support_graph("gnm", 56, GetParam()); }
};

TEST_P(Pipelines, AllFourProduceDominatingTrees) {
  const auto g = random_graph();
  Rng rng(GetParam() + 1);
  const auto apsp = exact_apsp(g);

  std::vector<FrtSample> samples;
  samples.push_back(sample_frt_direct(g, rng));
  samples.push_back(sample_frt_oracle(g, rng));
  samples.push_back(
      sample_frt_metric(apsp, g.num_vertices(), g.min_edge_weight(), rng));
  samples.push_back(sample_frt_sequential(g, rng));

  const auto pairs = sample_pairs(g, 12, 120, rng);
  for (const auto& s : samples) {
    s.tree.validate();
    EXPECT_EQ(s.tree.num_leaves(), g.num_vertices());
    std::vector<FrtTree> one;
    one.push_back(s.tree);
    const auto rep = measure_stretch(pairs, one);
    EXPECT_GE(rep.min_single_ratio, 1.0 - 1e-9) << "pipeline not dominating";
  }
}

TEST_P(Pipelines, OracleNeedsFarFewerIterations) {
  // The paper's headline: polylog iterations instead of SPD(G).
  Rng rng(GetParam() + 2);
  const Vertex n = 192;
  const auto g = test::support_graph("path", n, GetParam() + 2);
  auto direct = sample_frt_direct(g, rng);
  auto oracle = sample_frt_oracle(g, rng);
  EXPECT_GE(direct.iterations, n / 2 - 4);
  const double log2n = std::log2(static_cast<double>(n));
  EXPECT_LE(oracle.iterations, static_cast<unsigned>(4.0 * log2n * log2n));
  EXPECT_GT(oracle.hopset_edges, 0U);
}

TEST_P(Pipelines, ListLengthStaysLogarithmic) {
  const auto g = random_graph();
  Rng rng(GetParam() + 3);
  const auto s = sample_frt_oracle(g, rng);
  const double ln_n = std::log(static_cast<double>(g.num_vertices()));
  EXPECT_LE(static_cast<double>(s.max_list_length), 10.0 * ln_n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Pipelines,
                         ::testing::Values(1201, 1202, 1203));

TEST(Pipelines, OracleStretchComparableToDirect) {
  // Corollary 7.10: the oracle pipeline pays only (1+o(1)) extra stretch.
  const auto g = test::support_graph("grid", 72, 7);  // 9×9
  const Vertex n = g.num_vertices();
  Rng rng(7);
  const auto pairs = sample_pairs(g, 16, 200, rng);
  std::vector<FrtTree> direct_trees, oracle_trees;
  // Share one simulated graph across oracle samples (fresh β/order each).
  const auto hopset = build_hub_hopset(g, {}, rng);
  const auto h = build_simulated_graph(
      g, hopset, resolve_eps_hat(0.0, g.num_vertices()), rng);
  for (int t = 0; t < 12; ++t) {
    direct_trees.push_back(sample_frt_direct(g, rng).tree);
    oracle_trees.push_back(sample_frt_oracle_on(h, rng).tree);
  }
  const auto rd = measure_stretch(pairs, direct_trees);
  const auto ro = measure_stretch(pairs, oracle_trees);
  EXPECT_GE(ro.min_single_ratio, 1.0 - 1e-9);
  // Same order of magnitude (sampling noise allowance).
  EXPECT_LE(ro.avg_expected_stretch, 2.0 * rd.avg_expected_stretch + 2.0);
  EXPECT_LE(ro.avg_expected_stretch, 8.0 * std::log2(n));
}

TEST(Pipelines, EpsHatResolution) {
  EXPECT_DOUBLE_EQ(resolve_eps_hat(0.25, 100), 0.25);
  EXPECT_DOUBLE_EQ(resolve_eps_hat(0.0, 1024), 0.01);  // 1/ceil(log2 n)^2
  EXPECT_GT(resolve_eps_hat(0.0, 3), 0.0);
  // The induced distortion bound stays 1 + o(1): (1+eps)^(2 log n) small.
  const double eps = resolve_eps_hat(0.0, 1024);
  EXPECT_LT(std::pow(1.0 + eps, 2.0 * 10.0), 1.25);
}

TEST(Pipelines, WorkAccountingMonotonicInSize) {
  const auto small = test::support_graph("gnm", 32, 8);
  const auto large = test::support_graph("gnm", 128, 8);
  Rng rng(8);
  auto ws = sample_frt_direct(small, rng).work;
  auto wl = sample_frt_direct(large, rng).work;
  EXPECT_GT(ws, 0U);
  EXPECT_GT(wl, ws);
}

TEST(Pipelines, DirectPipelineValidOverSupportCorpus) {
  // Corpus smoke: every family/size the shared fixtures produce yields a
  // structurally valid dominating embedding (detailed dominance checks
  // live in test_frt_properties; this pins the fixtures themselves).
  for (const auto& c : test::small_graph_corpus(16, 1204)) {
    Rng rng(c.seed);
    const auto s = sample_frt_direct(c.graph, rng);
    s.tree.validate();
    EXPECT_EQ(s.tree.num_leaves(), c.graph.num_vertices()) << c.name;
  }
}

}  // namespace
}  // namespace pmte
