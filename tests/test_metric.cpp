// Tests for approximate metric construction (Section 6, Theorems 6.1/6.2).
#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/generators.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/metric/approx_metric.hpp"

namespace pmte {
namespace {

class ApproxMetric : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproxMetric, DominatesAndApproximates) {
  Rng rng(GetParam());
  const auto g = make_gnm(50, 120, {1.0, 6.0}, rng);
  ApproxMetricOptions opts;
  opts.eps_hat = 0.1;
  const auto approx = approximate_metric(g, opts, rng);
  const auto exact = exact_apsp(g);
  ASSERT_EQ(approx.dist.size(), exact.size());
  // Never underestimates (H dominates G), bounded overestimation.
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_GE(approx.dist[i], exact[i] - 1e-9);
  }
  const double stretch = metric_stretch(approx.dist, exact);
  // (1+ε̂)^{Λ+1} with Λ ≤ ~2·log2 n: generous non-flaky envelope.
  const double envelope = std::pow(1.1, 2.0 * std::log2(50.0) + 1.0);
  EXPECT_LE(stretch, envelope);
  EXPECT_GT(approx.h_iterations, 0U);
  EXPECT_GT(approx.work, 0U);
}

TEST_P(ApproxMetric, SmallEpsTightens) {
  Rng rng(GetParam() + 10);
  const auto g = make_grid(7, 7, {1.0, 3.0}, rng);
  const auto exact = exact_apsp(g);
  ApproxMetricOptions tight;
  tight.eps_hat = 0.01;
  Rng r1(GetParam() + 11);
  const auto a = approximate_metric(g, tight, r1);
  const double s_tight = metric_stretch(a.dist, exact);
  EXPECT_LE(s_tight, 1.35);  // (1.01)^{Λ+1} stays close to 1
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxMetric,
                         ::testing::Values(901, 902, 903));

TEST(ApproxMetric, SpannerVariantTradesStretchForSize) {
  Rng rng(42);
  const auto g = make_gnm(60, 400, {1.0, 4.0}, rng);
  ApproxMetricOptions opts;
  opts.eps_hat = 0.05;
  const unsigned k = 2;
  const auto approx = approximate_metric_spanner(g, k, opts, rng);
  const auto exact = exact_apsp(g);
  EXPECT_GT(approx.spanner_edges, 0U);
  EXPECT_LT(approx.spanner_edges, g.num_edges());
  // Stretch ≤ (2k−1)·(1+ε̂)^{O(log n)}.
  const double stretch = metric_stretch(approx.dist, exact);
  const double envelope =
      (2.0 * k - 1.0) * std::pow(1.05, 2.0 * std::log2(60.0) + 1.0);
  EXPECT_LE(stretch, envelope);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_GE(approx.dist[i], exact[i] - 1e-9);
  }
}

TEST(ApproxMetric, DiagonalIsZero) {
  Rng rng(7);
  const auto g = make_path(20);
  ApproxMetricOptions opts;
  const auto approx = approximate_metric(g, opts, rng);
  for (Vertex v = 0; v < 20; ++v) {
    EXPECT_DOUBLE_EQ(approx.dist[static_cast<std::size_t>(v) * 20 + v], 0.0);
  }
}

TEST(ApproxMetric, StretchHelperBasics) {
  EXPECT_DOUBLE_EQ(metric_stretch({2.0, 0.0}, {1.0, 0.0}), 2.0);
  EXPECT_DOUBLE_EQ(metric_stretch({1.0}, {1.0}), 1.0);
  EXPECT_THROW((void)metric_stretch({1.0}, {1.0, 2.0}), std::logic_error);
}

}  // namespace
}  // namespace pmte
