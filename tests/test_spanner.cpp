// Tests for the Baswana–Sen (2k−1)-spanner (src/spanner): subgraph
// property, stretch bound, and size behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "src/graph/generators.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/spanner/baswana_sen.hpp"

namespace pmte {
namespace {

struct SpannerCase {
  std::uint64_t seed;
  unsigned k;

  friend void PrintTo(const SpannerCase& c, std::ostream* os) {
    *os << "seed" << c.seed << "_k" << c.k;
  }
};

class SpannerStretch : public ::testing::TestWithParam<SpannerCase> {};

TEST_P(SpannerStretch, SubgraphAndStretch) {
  const auto [seed, k] = GetParam();
  Rng rng(seed);
  const auto g = make_gnm(80, 600, {1.0, 8.0}, rng);
  const auto sp = baswana_sen_spanner(g, k, rng);
  EXPECT_TRUE(is_connected(sp.spanner));
  // Subgraph: every spanner edge exists in g with the same weight.
  for (const auto& e : sp.spanner.edge_list()) {
    EXPECT_DOUBLE_EQ(g.edge_weight(e.u, e.v), e.weight);
  }
  // Stretch ≤ 2k−1 (checked from a handful of sources).
  const double bound = 2.0 * k - 1.0;
  for (Vertex s : {0U, 17U, 55U}) {
    const auto dg = dijkstra(g, s).dist;
    const auto ds = dijkstra(sp.spanner, s).dist;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_GE(ds[v], dg[v] - 1e-9);  // subgraph distances dominate
      EXPECT_LE(ds[v], bound * dg[v] + 1e-9)
          << "pair (" << s << "," << v << ") k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SpannerStretch,
    ::testing::Values(SpannerCase{801, 2}, SpannerCase{802, 2},
                      SpannerCase{803, 3}, SpannerCase{804, 3},
                      SpannerCase{805, 4}, SpannerCase{806, 5}));

TEST(Spanner, KOneReturnsGraphItself) {
  Rng rng(1);
  const auto g = make_gnm(30, 100, {1.0, 2.0}, rng);
  const auto sp = baswana_sen_spanner(g, 1, rng);
  EXPECT_EQ(sp.edges, g.num_edges());
}

TEST(Spanner, SparsifiesDenseGraphs) {
  Rng rng(2);
  const auto g = make_complete(64, {1.0, 4.0}, rng);
  const auto sp = baswana_sen_spanner(g, 2, rng);
  // K_64 has 2016 edges; a 3-spanner should use O(n^{1.5}) ≈ 512·c.
  EXPECT_LT(sp.edges, g.num_edges() / 2);
  EXPECT_TRUE(is_connected(sp.spanner));
}

TEST(Spanner, SizeScalesWithK) {
  Rng rng(3);
  const auto g = make_complete(80, {1.0, 2.0}, rng);
  Rng r1(4), r2(4);
  const auto s2 = baswana_sen_spanner(g, 2, r1);
  const auto s4 = baswana_sen_spanner(g, 4, r2);
  // Higher k buys sparser spanners (on average; generous slack).
  EXPECT_LT(static_cast<double>(s4.edges), 1.2 * s2.edges);
}

TEST(Spanner, WorksOnSparseTrees) {
  Rng rng(5);
  const auto g = make_binary_tree(63, {1.0, 2.0}, rng);
  const auto sp = baswana_sen_spanner(g, 3, rng);
  // A tree is its own unique connected subgraph: all edges must stay.
  EXPECT_EQ(sp.edges, g.num_edges());
}

// The spanner consumes sampling coins in ascending cluster order and walks
// per-vertex cluster maps in key order (std::map) — both orders are
// *specified*, not implementation-defined, so the exact output edge set is
// a pure function of (graph, seed) on every platform and standard library.
// Pin it: if someone reintroduces hash-order iteration (the pre-lint code
// iterated unordered_set/unordered_map here), this fingerprint moves.
TEST(Spanner, OutputBitsArePinnedAcrossPlatforms) {
  Rng graph_rng(42);
  const auto g = make_gnm(32, 120, {1.0, 4.0}, graph_rng);
  Rng rng(7);
  const auto sp = baswana_sen_spanner(g, 2, rng);
  const std::vector<WeightedEdge> edges = sp.spanner.edge_list();
  std::uint64_t hash = kFnv1aInit;
  for (const auto& e : edges) {
    hash = fnv1a_fold(hash, e.u);
    hash = fnv1a_fold(hash, e.v);
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof e.weight);
    std::memcpy(&bits, &e.weight, sizeof bits);
    hash = fnv1a_fold(hash, bits);
  }
  EXPECT_EQ(sp.edges, 112u);
  EXPECT_EQ(hash, 0x588dcf9266ce15cfULL) << "spanner edge fingerprint drifted";

  // Same seed, fresh RNG: bit-identical rerun.
  Rng rng2(7);
  const auto sp2 = baswana_sen_spanner(g, 2, rng2);
  EXPECT_EQ(sp2.edges, sp.edges);
  const std::vector<WeightedEdge> edges2 = sp2.spanner.edge_list();
  ASSERT_EQ(edges.size(), edges2.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto& a = edges[i];
    const auto& b = edges2[i];
    EXPECT_EQ(a.u, b.u);
    EXPECT_EQ(a.v, b.v);
    EXPECT_EQ(a.weight, b.weight);  // exact double equality, deliberately
  }
}

TEST(Spanner, RejectsKZero) {
  Rng rng(6);
  const auto g = make_path(5);
  EXPECT_THROW((void)baswana_sen_spanner(g, 0, rng), std::logic_error);
}

}  // namespace
}  // namespace pmte
