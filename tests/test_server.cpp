// Many-tenant server determinism: registry identity, shard routing vs
// direct per-tenant replay, 1/2/8-thread bit-identity of the full
// interleaved scenario, and the epoch hot-swap contract — a swap staged at
// batch boundary B is equivalent to serially replaying the tenant's stream
// split at B (fresh cache per epoch), and drained epochs retire from the
// registry.
//
// The suite carries the `tsan-par` CTest label: the ThreadSanitizer CI job
// runs it at 8 threads, so the parallel shard execution phase (concurrent
// query_batch over disjoint tenant shards and caches) doubles as a race
// detector workload.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/parallel/parallel.hpp"
#include "src/serve/dynamic_ensemble.hpp"
#include "src/serve/frt_ensemble.hpp"
#include "src/serve/server.hpp"
#include "src/serve/workloads.hpp"

namespace pmte {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

Graph test_graph() {
  Rng rng(4242);
  return make_gnm(384, 1600, {1.0, 9.0}, rng);
}

serve::EnsembleOptions ensemble_options() {
  serve::EnsembleOptions opts;
  opts.trees = 4;
  opts.pipeline = serve::EnsemblePipeline::direct;
  return opts;
}

::testing::AssertionResult bits_equal(const std::vector<Weight>& a,
                                      const std::vector<Weight>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(Weight)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(Weight)) != 0) {
        return ::testing::AssertionFailure()
               << "first bit difference at index " << i << ": " << a[i]
               << " vs " << b[i];
      }
    }
  }
  return ::testing::AssertionSuccess();
}

class ThreadGuard {
 public:
  ThreadGuard() : saved_(num_threads()) {}
  ~ThreadGuard() { set_num_threads(saved_); }

 private:
  int saved_;
};

/// The four-tenant mixed stream every scenario test serves: alternating
/// zipf/uniform shapes, matching what serve_queries --tenants generates.
std::vector<serve::TenantStreamSpec> test_specs(std::size_t tenants,
                                                std::size_t per_tenant) {
  std::vector<serve::TenantStreamSpec> specs(tenants);
  for (std::size_t t = 0; t < tenants; ++t) {
    specs[t].kind = (t % 2 == 0) ? serve::WorkloadKind::zipf
                                 : serve::WorkloadKind::uniform;
    specs[t].opts.pairs = per_tenant;
    specs[t].opts.zipf_s = 1.2;
  }
  return specs;
}

/// Tenant t's subsequence of an interleaved stream, as query_batch input.
std::vector<std::pair<Vertex, Vertex>> subsequence(
    const std::vector<serve::TenantQuery>& stream, serve::TenantId t) {
  std::vector<std::pair<Vertex, Vertex>> pairs;
  for (const auto& q : stream) {
    if (q.tenant == t) pairs.emplace_back(q.u, q.v);
  }
  return pairs;
}

/// Tenant t's served values, extracted from interleaved batch order.
std::vector<Weight> extract(const std::vector<serve::TenantQuery>& stream,
                            const std::vector<Weight>& out,
                            serve::TenantId t) {
  std::vector<Weight> values;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (stream[i].tenant == t) values.push_back(out[i]);
  }
  return values;
}

TEST(Server, RegistryFingerprintIsHostIndependentValue) {
  // The fingerprint packs the 8 magic bytes explicitly little-endian
  // (byte i into bits 8i) — never via a native-order memcpy, which would
  // make the same artefact fingerprint differently on big-endian hosts.
  // The pinned literal is the ground truth for 'PMTEENS1' + the v3 header
  // words; it changes exactly when kFormatVersion does (the version is
  // folded in), so a format bump re-pins it deliberately.
  EXPECT_EQ(serve::registry_fingerprint(serve::kEnsembleMagic,
                                        0xfeedfacecafebeefULL,
                                        0x0123456789abcdefULL, 4),
            0x4957d7613a1797a8ULL);
}

TEST(Server, RegistryFingerprintIsContentIdentity) {
  const auto g = test_graph();
  const auto e = serve::FrtEnsemble::build(g, 99, ensemble_options());

  // save→load round-trips fingerprint identically: the fingerprint is a
  // function of the serialized identity, not of which process built it.
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  e.save(buf);
  const auto reloaded = serve::FrtEnsemble::load(buf);
  EXPECT_EQ(e.registry_fingerprint(), reloaded.registry_fingerprint());

  // Any identity word moving changes the fingerprint.
  auto other_seed = serve::FrtEnsemble::build(g, 100, ensemble_options());
  EXPECT_NE(e.registry_fingerprint(), other_seed.registry_fingerprint());
  auto fewer = ensemble_options();
  fewer.trees = 2;
  const auto other_trees = serve::FrtEnsemble::build(g, 99, fewer);
  EXPECT_NE(e.registry_fingerprint(), other_trees.registry_fingerprint());

  serve::EnsembleRegistry registry;
  const auto fp = registry.add(serve::FrtEnsemble::build(g, 99, ensemble_options()));
  EXPECT_EQ(fp, e.registry_fingerprint());
  EXPECT_TRUE(registry.contains(fp));
  EXPECT_NE(registry.find(fp), nullptr);
  // Idempotent for equal content (fresh build and round-trip alike).
  buf.clear();
  buf.seekg(0);
  EXPECT_EQ(registry.add(serve::FrtEnsemble::load(buf)), fp);
  EXPECT_EQ(registry.size(), 1u);
  registry.add(std::move(other_seed));
  EXPECT_EQ(registry.size(), 2u);
  const auto fps = registry.fingerprints();
  ASSERT_EQ(fps.size(), 2u);
  EXPECT_LT(fps[0], fps[1]);
}

TEST(Server, RoutedShardsMatchDirectPerTenantReplay) {
  const auto g = test_graph();
  ThreadGuard guard;
  set_num_threads(1);
  const auto e = serve::FrtEnsemble::build(g, 171, ensemble_options());

  constexpr std::size_t kTenants = 4;
  const auto specs = test_specs(kTenants, 1500);
  const auto stream = serve::make_multi_tenant_workload(g, specs, 171);

  serve::Server server;
  const auto fp = server.load(serve::FrtEnsemble::build(g, 171, ensemble_options()));
  for (std::size_t t = 0; t < kTenants; ++t) {
    serve::TenantConfig cfg;
    cfg.ensemble = fp;
    cfg.policy = (t % 2 == 0) ? serve::AggregatePolicy::min
                              : serve::AggregatePolicy::median;
    cfg.cache_capacity = 512;
    server.add_tenant(cfg);
  }
  std::vector<Weight> out;
  server.serve(stream, out);
  ASSERT_EQ(out.size(), stream.size());

  // Each tenant's interleaved slice must equal a direct serial replay of
  // its subsequence against the same ensemble with its own fresh cache —
  // the router adds nothing and loses nothing.
  for (std::size_t t = 0; t < kTenants; ++t) {
    const auto tid = static_cast<serve::TenantId>(t);
    const auto pairs = subsequence(stream, tid);
    serve::HotPairCache cache(512);
    std::vector<Weight> direct;
    const auto stats = e.query_batch(
        pairs, server.tenant_config(tid).policy, direct, &cache);
    EXPECT_TRUE(bits_equal(extract(stream, out, tid), direct))
        << "tenant " << t;
    const auto& c = server.counters(tid);
    EXPECT_EQ(c.pairs, stats.pairs) << t;
    EXPECT_EQ(c.tree_lookups, stats.tree_lookups) << t;
    EXPECT_EQ(c.lca_probes, stats.lca_probes) << t;
    EXPECT_EQ(c.cache_hits, stats.cache_hits) << t;
    EXPECT_EQ(c.cache_misses, stats.cache_misses) << t;
    EXPECT_EQ(c.batches, 1u) << t;
    EXPECT_EQ(c.epoch, 0u) << t;
  }
}

/// Full scenario driver: `tenants` streams over ensemble A, served in
/// `batches` equal chunks, tenant 0 hot-swapped to ensemble B at the start
/// of batch `swap_at`.  Returns the concatenated interleaved outputs and
/// the final per-tenant counters.
struct ScenarioResult {
  std::vector<Weight> out;
  std::vector<serve::TenantCounters> counters;
  std::size_t registry_size = 0;
  std::uint64_t retired = 0;
};

ScenarioResult run_scenario(const Graph& g,
                            const std::vector<serve::TenantQuery>& stream,
                            std::size_t tenants, std::size_t batches,
                            std::size_t swap_at) {
  serve::Server server;
  const auto fp_a =
      server.load(serve::FrtEnsemble::build(g, 300, ensemble_options()));
  const auto fp_b =
      server.load(serve::FrtEnsemble::build(g, 301, ensemble_options()));
  for (std::size_t t = 0; t < tenants; ++t) {
    serve::TenantConfig cfg;
    cfg.ensemble = fp_a;
    cfg.policy = (t % 2 == 0) ? serve::AggregatePolicy::min
                              : serve::AggregatePolicy::median;
    cfg.cache_capacity = 512;
    server.add_tenant(cfg);
  }
  ScenarioResult r;
  std::vector<Weight> out;
  for (std::size_t b = 0; b < batches; ++b) {
    if (b == swap_at) server.stage_swap(0, fp_b);
    const std::size_t lo = stream.size() * b / batches;
    const std::size_t hi = stream.size() * (b + 1) / batches;
    server.serve(std::span(stream).subspan(lo, hi - lo), out);
    r.out.insert(r.out.end(), out.begin(), out.end());
  }
  for (std::size_t t = 0; t < tenants; ++t) {
    r.counters.push_back(server.counters(static_cast<serve::TenantId>(t)));
  }
  r.registry_size = server.registry().size();
  r.retired = server.epochs_retired();
  return r;
}

TEST(Server, ScenarioBitIdenticalAcrossThreadCounts) {
  const auto g = test_graph();
  constexpr std::size_t kTenants = 4, kBatches = 6, kSwapAt = 3;
  const auto stream =
      serve::make_multi_tenant_workload(g, test_specs(kTenants, 1500), 300);

  ThreadGuard guard;
  set_num_threads(1);
  const auto reference = run_scenario(g, stream, kTenants, kBatches, kSwapAt);
  for (int threads : kThreadCounts) {
    set_num_threads(threads);
    const auto r = run_scenario(g, stream, kTenants, kBatches, kSwapAt);
    EXPECT_TRUE(bits_equal(reference.out, r.out)) << threads << " threads";
    ASSERT_EQ(r.counters.size(), reference.counters.size());
    for (std::size_t t = 0; t < kTenants; ++t) {
      const auto& a = reference.counters[t];
      const auto& b = r.counters[t];
      EXPECT_EQ(a.batches, b.batches) << "tenant " << t << ", " << threads;
      EXPECT_EQ(a.pairs, b.pairs) << t << ", " << threads;
      EXPECT_EQ(a.tree_lookups, b.tree_lookups) << t << ", " << threads;
      EXPECT_EQ(a.lca_probes, b.lca_probes) << t << ", " << threads;
      EXPECT_EQ(a.cache_hits, b.cache_hits) << t << ", " << threads;
      EXPECT_EQ(a.cache_misses, b.cache_misses) << t << ", " << threads;
      EXPECT_EQ(a.cache_admissions, b.cache_admissions)
          << t << ", " << threads;
      EXPECT_EQ(a.cache_conflicts, b.cache_conflicts)
          << t << ", " << threads;
      EXPECT_EQ(a.epoch, b.epoch) << t << ", " << threads;
      EXPECT_EQ(a.result_hash64, b.result_hash64) << t << ", " << threads;
    }
    EXPECT_EQ(r.registry_size, reference.registry_size);
    EXPECT_EQ(r.retired, reference.retired);
  }
  // The swap actually happened for tenant 0 only.
  EXPECT_EQ(reference.counters[0].epoch, 1u);
  EXPECT_EQ(reference.counters[1].epoch, 0u);
}

TEST(Server, SwapEqualsSerialReplaySplitAtSwapPoint) {
  const auto g = test_graph();
  ThreadGuard guard;
  set_num_threads(1);
  const auto e_old = serve::FrtEnsemble::build(g, 300, ensemble_options());
  const auto e_new = serve::FrtEnsemble::build(g, 301, ensemble_options());

  constexpr std::size_t kTenants = 4, kBatches = 6, kSwapAt = 3;
  const auto stream =
      serve::make_multi_tenant_workload(g, test_specs(kTenants, 1500), 300);
  const auto scenario = run_scenario(g, stream, kTenants, kBatches, kSwapAt);

  // Tenant 0's served values across the whole scenario, in stream order.
  std::vector<Weight> served;
  std::size_t consumed = 0;
  for (std::size_t b = 0; b < kBatches; ++b) {
    const std::size_t lo = stream.size() * b / kBatches;
    const std::size_t hi = stream.size() * (b + 1) / kBatches;
    for (std::size_t i = lo; i < hi; ++i) {
      if (stream[i].tenant == 0) served.push_back(scenario.out[consumed + i - lo]);
    }
    consumed += hi - lo;
  }

  // Serial replay split at the swap boundary: old epoch (fresh cache) for
  // queries before batch kSwapAt, new epoch (fresh cache) after.
  const std::size_t split = stream.size() * kSwapAt / kBatches;
  std::vector<std::pair<Vertex, Vertex>> before, after;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (stream[i].tenant != 0) continue;
    (i < split ? before : after).emplace_back(stream[i].u, stream[i].v);
  }
  std::vector<Weight> replay, part;
  serve::HotPairCache cache_old(512);
  const auto s_before = e_old.query_batch(before, serve::AggregatePolicy::min,
                                          part, &cache_old);
  replay.insert(replay.end(), part.begin(), part.end());
  serve::HotPairCache cache_new(512);
  const auto s_after = e_new.query_batch(after, serve::AggregatePolicy::min,
                                         part, &cache_new);
  replay.insert(replay.end(), part.begin(), part.end());

  EXPECT_TRUE(bits_equal(served, replay));
  const auto& c = scenario.counters[0];
  EXPECT_EQ(c.pairs, s_before.pairs + s_after.pairs);
  EXPECT_EQ(c.tree_lookups, s_before.tree_lookups + s_after.tree_lookups);
  EXPECT_EQ(c.lca_probes, s_before.lca_probes + s_after.lca_probes);
  EXPECT_EQ(c.cache_hits, s_before.cache_hits + s_after.cache_hits);
  EXPECT_EQ(c.cache_misses, s_before.cache_misses + s_after.cache_misses);
  // The admission/conflict ledger is cumulative across the swap: the flip
  // resets the *cache* (and its own stats), but every batch folds its
  // BatchStats into TenantCounters first, so the pre-swap share survives.
  // Both epochs must have admitted entries for this to prove anything —
  // a ledger zeroed at the flip would report only the s_after share.
  EXPECT_EQ(c.cache_admissions,
            s_before.cache_admissions + s_after.cache_admissions);
  EXPECT_EQ(c.cache_conflicts,
            s_before.cache_conflicts + s_after.cache_conflicts);
  EXPECT_GT(s_before.cache_admissions, 0u);
  EXPECT_GT(s_after.cache_admissions, 0u);
  EXPECT_EQ(c.cache_misses, c.cache_admissions + c.cache_conflicts);
  EXPECT_EQ(c.epoch, 1u);
}

TEST(Server, UpdateTriggeredSwapPreservesCounterLedger) {
  // Regression for the HotPairCache::clear() + epoch-swap interaction when
  // the new epoch comes from DynamicEnsemble::update → snapshot() rather
  // than a static rebuild: the flip clears the tenant's cache (and the
  // cache's own stats), but TenantCounters is a fold of per-batch
  // BatchStats, so the pre-swap admissions/conflicts share must survive
  // the update-triggered republish.  Pinned against a serial replay split
  // at the swap boundary, old snapshot before, updated snapshot after.
  Rng graph_rng(515151);
  const auto g = make_gnm(160, 640, {1.0, 9.0}, graph_rng);
  ThreadGuard guard;
  set_num_threads(1);

  serve::EnsembleOptions opts;
  opts.trees = 3;
  opts.pipeline = serve::EnsemblePipeline::oracle;
  serve::DynamicEnsemble dyn(g, 515, opts);
  const auto snap_old = dyn.snapshot();

  constexpr std::size_t kTenants = 2, kBatches = 6, kSwapAt = 3;
  const auto stream =
      serve::make_multi_tenant_workload(g, test_specs(kTenants, 1200), 515);
  const std::size_t split = stream.size() * kSwapAt / kBatches;

  serve::Server server;
  const auto fp_old = server.load(snap_old);
  for (std::size_t t = 0; t < kTenants; ++t) {
    serve::TenantConfig cfg;
    cfg.ensemble = fp_old;
    cfg.policy = serve::AggregatePolicy::min;
    cfg.cache_capacity = 512;
    server.add_tenant(cfg);
  }
  std::vector<Weight> scenario_out, out;
  std::uint64_t fp_new = fp_old;
  for (std::size_t b = 0; b < kBatches; ++b) {
    if (b == kSwapAt) {
      // The mid-sequence weight change that forces the republish.
      const auto& e = g.edge_list()[11];
      const auto stats =
          dyn.update(e.u, e.v, g.edge_weight(e.u, e.v) * 0.5);
      EXPECT_TRUE(stats.incremental);
      fp_new = server.load(dyn.snapshot());
      ASSERT_NE(fp_new, fp_old) << "update must change the fingerprint";
      server.stage_swap(0, fp_new);
    }
    const std::size_t lo = stream.size() * b / kBatches;
    const std::size_t hi = stream.size() * (b + 1) / kBatches;
    server.serve(std::span(stream).subspan(lo, hi - lo), out);
    scenario_out.insert(scenario_out.end(), out.begin(), out.end());
  }
  const auto c = server.counters(0);

  // Tenant 0's served values in stream order.
  const auto served = extract(stream, scenario_out, 0);
  const auto snap_new = dyn.snapshot();
  std::vector<std::pair<Vertex, Vertex>> before, after;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (stream[i].tenant != 0) continue;
    (i < split ? before : after).emplace_back(stream[i].u, stream[i].v);
  }
  std::vector<Weight> replay, part;
  serve::HotPairCache cache_old(512);
  const auto s_before = snap_old.query_batch(
      before, serve::AggregatePolicy::min, part, &cache_old);
  replay.insert(replay.end(), part.begin(), part.end());
  serve::HotPairCache cache_new(512);
  const auto s_after = snap_new.query_batch(
      after, serve::AggregatePolicy::min, part, &cache_new);
  replay.insert(replay.end(), part.begin(), part.end());

  EXPECT_TRUE(bits_equal(served, replay));
  EXPECT_EQ(c.pairs, s_before.pairs + s_after.pairs);
  EXPECT_EQ(c.cache_hits, s_before.cache_hits + s_after.cache_hits);
  EXPECT_EQ(c.cache_misses, s_before.cache_misses + s_after.cache_misses);
  EXPECT_EQ(c.cache_admissions,
            s_before.cache_admissions + s_after.cache_admissions);
  EXPECT_EQ(c.cache_conflicts,
            s_before.cache_conflicts + s_after.cache_conflicts);
  // Both epochs must have admitted entries, or additivity proves nothing.
  EXPECT_GT(s_before.cache_admissions, 0u);
  EXPECT_GT(s_after.cache_admissions, 0u);
  EXPECT_EQ(c.cache_misses, c.cache_admissions + c.cache_conflicts);
  EXPECT_EQ(c.epoch, 1u);
}

TEST(Server, DrainedEpochsRetireFromRegistry) {
  const auto g = test_graph();
  ThreadGuard guard;
  set_num_threads(1);

  serve::Server server;
  const auto fp_a =
      server.load(serve::FrtEnsemble::build(g, 400, ensemble_options()));
  const auto fp_b =
      server.load(serve::FrtEnsemble::build(g, 401, ensemble_options()));
  serve::TenantConfig cfg;
  cfg.ensemble = fp_a;
  cfg.cache_capacity = 64;
  const auto t0 = server.add_tenant(cfg);
  const auto t1 = server.add_tenant(cfg);

  const auto stream =
      serve::make_multi_tenant_workload(g, test_specs(2, 200), 400);
  std::vector<Weight> out;
  server.serve(stream, out);
  EXPECT_EQ(server.registry().size(), 2u);

  // t0 flips to B; A is still served by t1, so nothing retires.
  server.stage_swap(t0, fp_b);
  EXPECT_TRUE(server.swap_pending(t0));
  server.serve(stream, out);
  EXPECT_FALSE(server.swap_pending(t0));
  EXPECT_EQ(server.tenant_fingerprint(t0), fp_b);
  EXPECT_EQ(server.tenant_fingerprint(t1), fp_a);
  EXPECT_EQ(server.registry().size(), 2u);
  EXPECT_EQ(server.epochs_retired(), 0u);
  EXPECT_EQ(server.counters(t0).epoch, 1u);

  // t1 flips too; A drains and retires from the registry.
  server.stage_swap(t1, fp_b);
  server.serve(stream, out);
  EXPECT_EQ(server.tenant_fingerprint(t1), fp_b);
  EXPECT_EQ(server.registry().size(), 1u);
  EXPECT_FALSE(server.registry().contains(fp_a));
  EXPECT_EQ(server.epochs_retired(), 1u);

  // Re-staging the *current* fingerprint is a cache/epoch reset, not a
  // registry event.
  server.stage_swap(t0, fp_b);
  server.serve(stream, out);
  EXPECT_EQ(server.counters(t0).epoch, 2u);
  EXPECT_EQ(server.registry().size(), 1u);
  EXPECT_EQ(server.epochs_retired(), 1u);
}

TEST(Server, MultiTenantWorkloadIsDeterministicAndOrderPreserving) {
  const auto g = test_graph();
  const auto specs = test_specs(3, 500);
  const auto a = serve::make_multi_tenant_workload(g, specs, 7);
  const auto b = serve::make_multi_tenant_workload(g, specs, 7);
  ASSERT_EQ(a.size(), 1500u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].u, b[i].u);
    EXPECT_EQ(a[i].v, b[i].v);
  }
  // Every tenant's subsequence equals its standalone stream: the
  // interleaving permutes positions, never queries.
  for (serve::TenantId t = 0; t < 3; ++t) {
    Rng rng(split_seed(7, serve::kTenantWorkloadStreamBase + t));
    const auto standalone = serve::make_workload(g, specs[t].kind,
                                                 specs[t].opts, rng);
    EXPECT_EQ(subsequence(a, t), standalone) << "tenant " << t;
  }
  // A different seed moves the interleaving.
  const auto c = serve::make_multi_tenant_workload(g, specs, 8);
  bool any_differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_differs |= a[i].tenant != c[i].tenant;
  }
  EXPECT_TRUE(any_differs);
}

}  // namespace
}  // namespace pmte
