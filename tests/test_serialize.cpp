// Format v3 + zero-copy load path: section alignment invariants, v2
// compatibility, loader hostility (truncation, bad magic, endianness,
// unknown versions, corrupt lengths, shaved padding, misaligned bases) on
// BOTH the stream and the mmap path, a seeded bit-flip/truncation fuzz
// sweep pinning "reject or load, never crash", and a corpus-wide
// differential that
// pins mapped and copied loads to bit-identical served doubles and
// logical counters at several thread counts.  The registry/swap lifetime
// test leans on ASan: any read of a retired mapping is a use-after-free.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/parallel/parallel.hpp"
#include "src/serve/frt_ensemble.hpp"
#include "src/serve/frt_index.hpp"
#include "src/serve/serialize.hpp"
#include "src/serve/server.hpp"
#include "src/serve/workloads.hpp"
#include "src/util/rng.hpp"
#include "tests/support/fixtures.hpp"

namespace pmte {
namespace {

serve::EnsembleOptions tiny_options(std::size_t trees) {
  serve::EnsembleOptions opts;
  opts.trees = trees;
  opts.pipeline = serve::EnsemblePipeline::direct;
  return opts;
}

/// Serialized bytes of an ensemble at a given format version.
std::string save_bytes(const serve::FrtEnsemble& e,
                       std::uint32_t version = serve::kFormatVersion) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  e.save(buf, version);
  return buf.str();
}

serve::FrtEnsemble load_stream(const std::string& bytes) {
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  buf << bytes;
  return serve::FrtEnsemble::load(buf);
}

/// Write bytes to a temp file (current dir; ctest runs each suite in its
/// own process, so the suite-unique names below never collide).
class TempFile {
 public:
  TempFile(std::string name, const std::string& bytes)
      : path_(std::move(name)) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ~TempFile() { std::remove(path_.c_str()); }
  TempFile(const TempFile&) = delete;
  TempFile& operator=(const TempFile&) = delete;
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// Both load paths must reject the image (the mapped path may reject at
/// mapping time already, e.g. for an empty file).
void expect_rejected_both(const std::string& bytes, const std::string& why) {
  EXPECT_THROW((void)load_stream(bytes), std::logic_error) << why;
  const TempFile f("test_serialize_hostile.tmp", bytes);
  EXPECT_THROW((void)serve::FrtEnsemble::load_mapped(f.path()),
               std::logic_error)
      << why;
}

class ThreadGuard {
 public:
  ThreadGuard() : saved_(num_threads()) {}
  ~ThreadGuard() { set_num_threads(saved_); }

 private:
  int saved_;
};

constexpr std::size_t kPad64Base = 64;
std::size_t pad64(std::size_t pos) {
  return (kPad64Base - pos % kPad64Base) % kPad64Base;
}

TEST(Serialize, PrimitivesAndEmptyArraysRoundTrip) {
  // The writer/reader primitives, including the n == 0 edge: an empty
  // array's data() may be null, and neither side may touch it (the v3
  // padding is still emitted, keeping the layout walkable).
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  serve::BinaryWriter w(buf);
  w.magic(serve::kIndexMagic);
  w.u32(7);
  w.u64(0xfeedfacecafebeefULL);
  w.f64(2.5);
  w.vec_u32(std::vector<std::uint32_t>{});
  w.vec_f64({1.5, -2.25});
  w.vec_u32({3, 2, 1});

  serve::BinaryReader r(buf);
  r.expect_magic(serve::kIndexMagic);
  EXPECT_EQ(r.version(), serve::kFormatVersion);
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.u64(), 0xfeedfacecafebeefULL);
  EXPECT_EQ(r.f64(), 2.5);
  EXPECT_TRUE(r.vec_u32().empty());
  EXPECT_EQ(r.vec_f64(), (std::vector<double>{1.5, -2.25}));
  EXPECT_EQ(r.vec_u32(), (std::vector<std::uint32_t>{3, 2, 1}));
}

TEST(Serialize, V3PayloadsSitAt64ByteOffsetsWithZeroPadding) {
  const auto g = test::support_graph("gnm", 48, 51);
  const auto e = serve::FrtEnsemble::build(g, 51, tiny_options(2));
  const std::string bytes = save_bytes(e);

  // Walk the normative layout (docs/FORMAT.md): ensemble prelude, then
  // per index the scalar block and seven length-prefixed sections whose
  // payloads must each start at a 64-byte file offset, preceded by zero
  // padding only.
  // Prelude: magic block(16) + master seed(8) + graph fingerprint(8) +
  // tree count(8).
  std::size_t pos = 16 + 8 + 8 + 8;
  std::uint64_t trees = 0;
  std::memcpy(&trees, bytes.data() + 16 + 8 + 8, sizeof(trees));
  ASSERT_EQ(trees, 2u);
  const std::size_t elem[7] = {4, 8, 4, 4, 4, 8, 8};
  for (std::uint64_t t = 0; t < trees; ++t) {
    pos += 16 + 4 + 8;  // index magic block + levels + beta
    for (const std::size_t es : elem) {
      std::uint64_t len = 0;
      ASSERT_LE(pos + 8, bytes.size());
      std::memcpy(&len, bytes.data() + pos, sizeof(len));
      pos += 8;
      const std::size_t pad = pad64(pos);
      for (std::size_t i = 0; i < pad; ++i) {
        ASSERT_EQ(bytes[pos + i], '\0') << "padding byte not zero";
      }
      pos += pad;
      EXPECT_EQ(pos % 64, 0u) << "payload misaligned";
      pos += static_cast<std::size_t>(len) * es;
    }
  }
  EXPECT_EQ(pos, bytes.size()) << "layout walk must consume the artefact";
}

TEST(Serialize, V2ArtefactsStayLoadableAndEquivalent) {
  // The previous on-disk generation (unpadded) loads through the stream
  // reader and yields the exact same ensemble; the mmap path refuses it
  // (only v3 guarantees the alignment the views need).
  const auto g = test::support_graph("geometric", 40, 53);
  const auto e = serve::FrtEnsemble::build(g, 53, tiny_options(3));
  const std::string v2 = save_bytes(e, 2);
  const std::string v3 = save_bytes(e);
  EXPECT_LT(v2.size(), v3.size()) << "v2 must be the unpadded layout";

  const auto from_v2 = load_stream(v2);
  const auto from_v3 = load_stream(v3);
  EXPECT_TRUE(from_v2 == e);
  EXPECT_TRUE(from_v3 == e);
  EXPECT_EQ(from_v2.registry_fingerprint(), e.registry_fingerprint());

  const TempFile f("test_serialize_v2.tmp", v2);
  EXPECT_THROW((void)serve::FrtEnsemble::load_mapped(f.path()),
               std::logic_error);
}

TEST(Serialize, HostileImagesAreRejectedOnBothPaths) {
  const auto g = test::support_graph("gnm", 40, 57);
  const auto e = serve::FrtEnsemble::build(g, 57, tiny_options(2));
  const std::string good = save_bytes(e);
  ASSERT_TRUE(load_stream(good) == e) << "baseline artefact must load";

  // Truncations at a spread of prefix lengths, including 0, mid-header,
  // mid-padding, mid-payload, and one byte short.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{20}, std::size_t{70},
        std::size_t{100}, good.size() / 3, good.size() / 2,
        good.size() - 9, good.size() - 1}) {
    expect_rejected_both(good.substr(0, keep),
                         "truncated to " + std::to_string(keep));
  }

  // Wrong artefact kind / corrupted magic byte.
  std::string bad = good;
  bad[0] = 'X';
  expect_rejected_both(bad, "corrupt magic");

  // Opposite-endianness probe (a byte-swapped u32 at offset 8).
  bad = good;
  std::swap(bad[8], bad[11]);
  std::swap(bad[9], bad[10]);
  expect_rejected_both(bad, "foreign endianness");

  // Versions outside [kMinFormatVersion, kFormatVersion].
  for (const std::uint32_t v : {std::uint32_t{1}, std::uint32_t{4}}) {
    bad = good;
    std::memcpy(bad.data() + 12, &v, sizeof(v));
    expect_rejected_both(bad, "version " + std::to_string(v));
  }

  // Oversized length prefix on the first vec section (ensemble prelude 40
  // bytes + index magic block 16 + levels 4 + beta 8).
  bad = good;
  const std::uint64_t absurd = 1ULL << 33;
  std::memcpy(bad.data() + 40 + 16 + 4 + 8, &absurd, sizeof(absurd));
  expect_rejected_both(bad, "absurd length prefix");

  // Shaved padding: removing 8 zero bytes from the first padding run
  // desyncs every later offset; both readers must fail closed, not serve
  // shifted garbage.  The first prefix ends at 76, so padding runs to the
  // next 64-byte boundary (128).
  ASSERT_EQ(good[76], '\0') << "layout drifted; fix the padding offset";
  bad = good.substr(0, 76) + good.substr(84);
  expect_rejected_both(bad, "shaved section padding");
}

TEST(Serialize, RandomizedHostileImageSweep) {
  // Seeded fuzz over a valid v3 artefact: single-bit flips at random
  // offsets plus random truncations.  The contract on both readers is
  // "reject (std::logic_error) or load" — never crash, never any other
  // exception type.  A flip that lands in bulk payload (doubles carry no
  // checksum) may load on both paths; then the two loads must agree, so a
  // mutant can never split the stream and mmap views of one image.
  const auto g = test::support_graph("geometric", 48, 61);
  const auto e = serve::FrtEnsemble::build(g, 61, tiny_options(2));
  const std::string good = save_bytes(e);
  ASSERT_TRUE(load_stream(good) == e) << "baseline artefact must load";

  const auto try_stream =
      [](const std::string& bytes) -> std::optional<serve::FrtEnsemble> {
    try {
      return load_stream(bytes);
    } catch (const std::logic_error&) {
      return std::nullopt;
    }
  };
  const auto try_mapped =
      [](const std::string& path) -> std::optional<serve::FrtEnsemble> {
    try {
      return serve::FrtEnsemble::load_mapped(path);
    } catch (const std::logic_error&) {
      return std::nullopt;
    }
  };

  Rng rng(split_seed(0xF1207, 0));
  std::size_t rejected = 0;
  std::size_t loaded = 0;
  for (std::size_t iter = 0; iter < 200; ++iter) {
    std::string bad = good;
    std::string what;
    if (rng.flip(0.25)) {
      // Truncation anywhere, including empty and one-short.
      const auto keep = static_cast<std::size_t>(rng.below(good.size()));
      bad = good.substr(0, keep);
      what = "truncated to " + std::to_string(keep);
    } else {
      const auto at = static_cast<std::size_t>(rng.below(good.size()));
      const auto bit = static_cast<unsigned>(rng.below(8));
      bad[at] = static_cast<char>(static_cast<unsigned char>(bad[at]) ^
                                  (1u << bit));
      what = "bit " + std::to_string(bit) + " flipped at byte " +
             std::to_string(at);
    }
    const auto from_stream = try_stream(bad);
    const TempFile f("test_serialize_fuzz.tmp", bad);
    const auto from_mapped = try_mapped(f.path());
    if (from_stream.has_value() && from_mapped.has_value()) {
      EXPECT_TRUE(*from_stream == *from_mapped) << what;
      ++loaded;
    } else {
      ++rejected;
    }
  }
  // The sweep must exercise both outcomes, or it degenerates into either
  // a pure-rejection or a pure-roundtrip test.
  EXPECT_GT(rejected, std::size_t{0});
  EXPECT_GT(loaded, std::size_t{0});
}

TEST(Serialize, MappedReaderRequiresAlignedBase) {
  const auto g = test::support_graph("gnm", 32, 59);
  const auto e = serve::FrtEnsemble::build(g, 59, tiny_options(2));
  const TempFile f("test_serialize_align.tmp", save_bytes(e));
  const serve::MappedFile file(f.path());
  // A misaligned base violates the constructor contract outright.
  EXPECT_THROW(serve::MappedReader r(file.bytes().subspan(1)),
               std::logic_error);
  // An aligned interior base is structurally valid but is not an
  // artefact start — the magic check fires.
  ASSERT_GT(file.size(), std::size_t{128});
  serve::MappedReader interior(file.bytes().subspan(64));
  EXPECT_THROW(interior.expect_magic(serve::kEnsembleMagic),
               std::logic_error);
}

TEST(Serialize, MappedAndCopiedLoadsAgreeAcrossCorpusAndThreads) {
  // The tentpole differential: over a 50-graph corpus, the mmap load must
  // (a) copy zero bulk payload bytes, (b) compare equal to the stream
  // load, and (c) serve bit-identical doubles with identical logical
  // counters at 1/2/8 threads.
  const auto corpus = test::serve_graph_corpus(50, 6101);
  ThreadGuard guard;
  std::uint64_t total_mapped_sections = 0;
  for (const auto& c : corpus) {
    const auto built =
        serve::FrtEnsemble::build(c.graph, c.seed, tiny_options(2));
    const TempFile f("test_serialize_diff.tmp", save_bytes(built));

    serve::reset_load_path_counters();
    const auto copied = load_stream(save_bytes(built));
    const auto copy_counters = serve::load_path_counters();
    EXPECT_GT(copy_counters.bulk_bytes_copied, 0u) << c.name;
    EXPECT_GT(copy_counters.sections_copied, 0u) << c.name;
    EXPECT_EQ(copy_counters.sections_mapped, 0u) << c.name;

    serve::reset_load_path_counters();
    const auto mapped = serve::FrtEnsemble::load_mapped(f.path());
    const auto map_counters = serve::load_path_counters();
    EXPECT_EQ(map_counters.bulk_bytes_copied, 0u) << c.name;
    EXPECT_EQ(map_counters.sections_copied, 0u) << c.name;
    EXPECT_EQ(map_counters.sections_mapped, copy_counters.sections_copied)
        << c.name;
    total_mapped_sections += map_counters.sections_mapped;

    EXPECT_TRUE(mapped.is_mapped()) << c.name;
    EXPECT_GT(mapped.mapped_bytes(), 0u) << c.name;
    EXPECT_TRUE(mapped.index(0).is_mapped()) << c.name;
    EXPECT_FALSE(copied.is_mapped()) << c.name;
    EXPECT_TRUE(mapped == copied) << c.name;
    EXPECT_TRUE(mapped == built) << c.name;
    EXPECT_EQ(mapped.registry_fingerprint(), built.registry_fingerprint())
        << c.name;

    // Query differential: same pairs, both policies, several thread
    // counts — outputs bitwise equal, counters identical.
    const Vertex n = c.graph.num_vertices();
    Rng qrng(c.seed + 23);
    std::vector<std::pair<Vertex, Vertex>> pairs;
    for (int i = 0; i < 128; ++i) {
      pairs.emplace_back(static_cast<Vertex>(qrng.below(n)),
                         static_cast<Vertex>(qrng.below(n)));
    }
    for (const auto policy :
         {serve::AggregatePolicy::min, serve::AggregatePolicy::median}) {
      for (const int threads : {1, 2, 8}) {
        set_num_threads(threads);
        std::vector<Weight> out_copied, out_mapped;
        const auto s_copied = copied.query_batch(pairs, policy, out_copied);
        const auto s_mapped = mapped.query_batch(pairs, policy, out_mapped);
        ASSERT_EQ(out_copied.size(), out_mapped.size());
        EXPECT_EQ(std::memcmp(out_copied.data(), out_mapped.data(),
                              out_copied.size() * sizeof(Weight)),
                  0)
            << c.name << " threads=" << threads;
        EXPECT_EQ(s_copied.tree_lookups, s_mapped.tree_lookups) << c.name;
        EXPECT_EQ(s_copied.lca_probes, s_mapped.lca_probes) << c.name;
      }
    }
  }
  // 7 sections per index, 2 indices per ensemble, 50 ensembles.
  EXPECT_EQ(total_mapped_sections, 7u * 2u * 50u);
}

TEST(Serialize, MappedEnsembleSurvivesRegistrySwapAndFileUnlink) {
  // Lifetime contract under ASan: the mapping must stay valid while any
  // registry entry or tenant serves from it — across the backing file
  // being unlinked, a copy (which deep-copies into owned storage), an
  // epoch hot-swap, and retirement from the registry.
  const auto g = test::support_graph("gnm", 64, 61);
  const auto built = serve::FrtEnsemble::build(g, 61, tiny_options(2));
  const auto replacement =
      serve::FrtEnsemble::build(g, 62, tiny_options(2));

  serve::Server server;
  std::uint64_t fp_mapped = 0;
  {
    const TempFile f("test_serialize_life.tmp", save_bytes(built));
    auto mapped = serve::FrtEnsemble::load_mapped(f.path());
    // A deep copy owns its arrays — it must outlive the mapping on its
    // own (checked implicitly: we query it after retirement below).
    fp_mapped = server.load(std::move(mapped));
  }  // backing file unlinked here; the mapping keeps the inode alive

  const std::uint64_t fp_new = server.load(replacement);
  serve::TenantConfig cfg;
  cfg.ensemble = fp_mapped;
  cfg.cache_capacity = 64;
  const auto t0 = server.add_tenant(cfg);

  const auto specs = std::vector<serve::TenantStreamSpec>{
      {serve::WorkloadKind::uniform, {}}};
  auto stream = serve::make_multi_tenant_workload(g, specs, 61);
  std::vector<Weight> out_mapped_epoch, out_new_epoch;
  server.serve(stream, out_mapped_epoch);

  // Flip away: the mapped epoch drains and retires from the registry —
  // its shared_ptr (and the mapping) die here.  Serving afterwards must
  // not touch freed memory.
  server.stage_swap(t0, fp_new);
  server.serve(stream, out_new_epoch);
  EXPECT_FALSE(server.registry().contains(fp_mapped));
  EXPECT_EQ(server.epochs_retired(), 1u);

  // The post-swap epoch serves the replacement's values.
  std::vector<std::pair<Vertex, Vertex>> pairs;
  for (const auto& q : stream) pairs.emplace_back(q.u, q.v);
  std::vector<Weight> expect_new;
  serve::HotPairCache fresh(64);
  (void)replacement.query_batch(pairs, serve::AggregatePolicy::min,
                                expect_new, &fresh);
  ASSERT_EQ(out_new_epoch.size(), expect_new.size());
  EXPECT_EQ(std::memcmp(out_new_epoch.data(), expect_new.data(),
                        expect_new.size() * sizeof(Weight)),
            0);
}

}  // namespace
}  // namespace pmte
