// Reference-model tests for the MBF-like algorithm collection (Section 3):
// every instance is validated against a classical baseline.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/graph/generators.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/mbf/algorithms.hpp"

namespace pmte {
namespace {

class MbfVsBaseline : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Graph random_graph() {
    Rng rng(GetParam());
    return make_gnm(28, 60, {1.0, 5.0}, rng);
  }
};

TEST_P(MbfVsBaseline, SsspMatchesDijkstra) {
  const auto g = random_graph();
  const auto mbf = mbf_sssp(g, 0);
  const auto ref = dijkstra(g, 0).dist;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(mbf[v], ref[v], 1e-9) << "vertex " << v;
  }
}

TEST_P(MbfVsBaseline, HopLimitedSsspMatchesBellmanFord) {
  const auto g = random_graph();
  for (unsigned h : {0U, 1U, 2U, 4U}) {
    const auto mbf = mbf_sssp(g, 3, h);
    const auto ref = bellman_ford_hops(g, 3, h);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (is_finite(ref[v])) {
        EXPECT_NEAR(mbf[v], ref[v], 1e-9);
      } else {
        EXPECT_FALSE(is_finite(mbf[v]));
      }
    }
  }
}

TEST_P(MbfVsBaseline, ApspMatchesExact) {
  const auto g = random_graph();
  const Vertex n = g.num_vertices();
  const auto mbf = mbf_apsp(g);
  const auto ref = exact_apsp(g);
  for (std::size_t i = 0; i < mbf.size(); ++i) {
    EXPECT_NEAR(mbf[i], ref[i], 1e-9);
  }
  (void)n;
}

TEST_P(MbfVsBaseline, KsspContainsKClosest) {
  const auto g = random_graph();
  const Vertex n = g.num_vertices();
  const std::size_t k = 4;
  const auto maps = mbf_kssp(g, k);
  const auto ref = exact_apsp(g);
  for (Vertex v = 0; v < n; ++v) {
    // Expected: k smallest (dist, w) pairs.
    std::vector<DistEntry> all;
    for (Vertex w = 0; w < n; ++w) {
      const Weight d = ref[static_cast<std::size_t>(v) * n + w];
      if (is_finite(d)) all.push_back(DistEntry{w, d});
    }
    std::sort(all.begin(), all.end(), [](const DistEntry& a, const DistEntry& b) {
      return a.dist < b.dist || (a.dist == b.dist && a.key < b.key);
    });
    // Keep the k closest; erase (not resize) so GCC 12's -Warray-bounds does
    // not flag the never-taken growth path of resize under -O2.
    if (all.size() > k) {
      all.erase(all.begin() + static_cast<std::ptrdiff_t>(k), all.end());
    }
    ASSERT_EQ(maps[v].size(), all.size());
    for (const auto& e : all) {
      EXPECT_NEAR(maps[v].at(e.key), e.dist, 1e-9)
          << "vertex " << v << " target " << e.key;
    }
  }
}

TEST_P(MbfVsBaseline, SourceDetectionDefinition) {
  const auto g = random_graph();
  const Vertex n = g.num_vertices();
  const std::vector<Vertex> sources{1, 7, 13, 20};
  const std::size_t k = 2;
  const auto maps = mbf_source_detection(g, sources, n, k);
  const auto ref = exact_apsp(g);
  for (Vertex v = 0; v < n; ++v) {
    std::vector<DistEntry> all;
    for (Vertex s : sources) {
      const Weight d = ref[static_cast<std::size_t>(v) * n + s];
      if (is_finite(d)) all.push_back(DistEntry{s, d});
    }
    std::sort(all.begin(), all.end(), [](const DistEntry& a, const DistEntry& b) {
      return a.dist < b.dist || (a.dist == b.dist && a.key < b.key);
    });
    if (all.size() > k) {
      all.erase(all.begin() + static_cast<std::ptrdiff_t>(k), all.end());
    }
    ASSERT_EQ(maps[v].size(), all.size()) << "vertex " << v;
    for (const auto& e : all) EXPECT_NEAR(maps[v].at(e.key), e.dist, 1e-9);
  }
}

TEST_P(MbfVsBaseline, ForestFireRadius) {
  const auto g = random_graph();
  const std::vector<Vertex> burning{2, 19};
  const Weight radius = 4.0;
  const auto ff = mbf_forest_fire(g, burning, radius);
  const auto ms = multi_source_dijkstra(g, burning);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const bool expect_alarm = ms.dist[v] <= radius;
    EXPECT_EQ(ff.alarmed[v], expect_alarm) << "vertex " << v;
    if (expect_alarm) {
      EXPECT_NEAR(ff.dist[v], ms.dist[v], 1e-9);
    }
  }
}

// Brute-force widest paths via Floyd–Warshall over Smax,min.
std::vector<Weight> widest_reference(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<Weight> w(static_cast<std::size_t>(n) * n, 0.0);
  for (Vertex v = 0; v < n; ++v) {
    w[static_cast<std::size_t>(v) * n + v] = inf_weight();
    for (const auto& e : g.neighbors(v)) {
      w[static_cast<std::size_t>(v) * n + e.to] = e.weight;
    }
  }
  for (Vertex k = 0; k < n; ++k) {
    for (Vertex i = 0; i < n; ++i) {
      for (Vertex j = 0; j < n; ++j) {
        const Weight via = std::min(w[static_cast<std::size_t>(i) * n + k],
                                    w[static_cast<std::size_t>(k) * n + j]);
        auto& cur = w[static_cast<std::size_t>(i) * n + j];
        cur = std::max(cur, via);
      }
    }
  }
  return w;
}

void expect_weight_near(Weight a, Weight b, const char* what,
                        std::size_t index) {
  if (is_finite(a) || is_finite(b)) {
    EXPECT_NEAR(a, b, 1e-9) << what << " " << index;
  } else {
    SUCCEED();  // both infinite (∞ − ∞ is NaN, so EXPECT_NEAR can't be used)
  }
}

TEST_P(MbfVsBaseline, WidestPathsMatchFloydWarshall) {
  const auto g = random_graph();
  const Vertex n = g.num_vertices();
  const auto ref = widest_reference(g);
  const auto apwp = mbf_apwp(g);
  for (std::size_t i = 0; i < apwp.size(); ++i) {
    expect_weight_near(apwp[i], ref[i], "entry", i);
  }
  const auto sswp = mbf_sswp(g, 5);
  for (Vertex v = 0; v < n; ++v) {
    expect_weight_near(sswp[v], ref[static_cast<std::size_t>(5) * n + v],
                       "vertex", v);
  }
}

TEST_P(MbfVsBaseline, ReachabilityMatchesBfs) {
  // Disconnect the graph by splitting it in two halves.
  Rng rng(GetParam() + 99);
  auto g1 = make_gnm(12, 20, {1.0, 1.0}, rng);
  auto edges = g1.edge_list();
  for (auto& e : edges) {
    e.u += 12;
    e.v += 12;
  }
  auto g2 = make_gnm(12, 18, {1.0, 1.0}, rng);
  auto all = g2.edge_list();
  all.insert(all.end(), edges.begin(), edges.end());
  const auto g = Graph::from_edges(24, all);

  const std::vector<Vertex> sources{0, 15};
  const auto reach = mbf_reachability(g, sources, 24);
  for (Vertex v = 0; v < 24; ++v) {
    for (Vertex s : sources) {
      const auto hops = bfs_hops(g, s);
      const bool connected = hops[v] != ~0U;
      const bool found = std::find(reach[v].begin(), reach[v].end(), s) !=
                         reach[v].end();
      EXPECT_EQ(found, connected) << "v=" << v << " s=" << s;
    }
  }
}

TEST_P(MbfVsBaseline, HopBoundedReachability) {
  const auto g = random_graph();
  const std::vector<Vertex> sources{0};
  for (unsigned h : {1U, 2U, 3U}) {
    const auto reach = mbf_reachability(g, sources, h);
    const auto hops = bfs_hops(g, 0);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const bool expect = hops[v] <= h;
      const bool found = !reach[v].empty();
      EXPECT_EQ(found, expect) << "v=" << v << " h=" << h;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MbfVsBaseline,
                         ::testing::Values(101, 102, 103, 104, 105));

TEST(MbfAlgorithms, MswpSourcesOnly) {
  auto g = make_path(5, {3.0, 3.0});
  const std::vector<Vertex> sources{0, 4};
  const auto maps = mbf_mswp(g, sources);
  for (Vertex v = 0; v < 5; ++v) {
    EXPECT_EQ(maps[v].size(), 2U);
    for (const auto& e : maps[v].entries()) {
      EXPECT_TRUE(e.key == 0U || e.key == 4U);
    }
  }
  // Width along a uniform path is the edge weight (or ∞ to itself).
  EXPECT_DOUBLE_EQ(maps[2].at(0), 3.0);
  EXPECT_DOUBLE_EQ(maps[0].at(0), inf_weight());
}

TEST(MbfAlgorithms, RejectsBadArguments) {
  auto g = make_path(4);
  EXPECT_THROW((void)mbf_sssp(g, 9), std::logic_error);
  EXPECT_THROW((void)mbf_forest_fire(g, std::vector<Vertex>{9}, 1.0),
               std::logic_error);
  EXPECT_THROW((void)mbf_ksdp(g, 9, 1), std::logic_error);
}

}  // namespace
}  // namespace pmte
