// Sparse/dense equivalence of the frontier-driven MBF engine.
//
// The frontier optimisation must be *exact*: for every algebra of the
// framework, mbf_run in frontier mode (kAuto / forced kSparse) has to
// produce states bit-identical to the dense reference (kDense), with the
// same iteration count and fixpoint flag — on every graph family, at every
// OpenMP thread count.  These are randomized cross-checks at fixed seeds
// over ER, grid, and star graphs (plus paths, the frontier's best case) at
// 1, 2, and 8 threads.
#include <gtest/gtest.h>

#include <vector>

#include "src/frt/le_lists.hpp"
#include "src/graph/generators.hpp"
#include "src/mbf/algebras.hpp"
#include "src/mbf/engine.hpp"
#include "src/parallel/counters.hpp"
#include "tests/support/fixtures.hpp"

namespace pmte {
namespace {

/// Compare two runs entry-by-entry with operator== (bit-level for the
/// scalar algebras, representation-level for the map/set states).
template <typename State>
void expect_identical_runs(const MbfRun<State>& a, const MbfRun<State>& b,
                           const char* what) {
  ASSERT_EQ(a.states.size(), b.states.size()) << what;
  EXPECT_EQ(a.iterations, b.iterations) << what;
  EXPECT_EQ(a.reached_fixpoint, b.reached_fixpoint) << what;
  for (std::size_t v = 0; v < a.states.size(); ++v) {
    EXPECT_EQ(a.states[v], b.states[v]) << what << ", vertex " << v;
  }
}

/// Run dense / auto / forced-sparse at 1, 2, and 8 threads and check all
/// seven runs agree (dense @ max threads is the reference).
template <MbfAlgebra Algebra>
void cross_check(const Graph& g, const Algebra& alg,
                 const std::vector<typename Algebra::State>& x0,
                 unsigned max_iterations, const char* what) {
  const int restore = num_threads();
  auto reference = mbf_run(g, alg, x0, max_iterations, 1.0, MbfMode::kDense);
  for (const int threads : {1, 2, 8}) {
    set_num_threads(threads);
    auto dense = mbf_run(g, alg, x0, max_iterations, 1.0, MbfMode::kDense);
    auto sparse = mbf_run(g, alg, x0, max_iterations, 1.0, MbfMode::kSparse);
    auto hybrid = mbf_run(g, alg, x0, max_iterations, 1.0, MbfMode::kAuto);
    expect_identical_runs(reference, dense, what);
    expect_identical_runs(reference, sparse, what);
    expect_identical_runs(reference, hybrid, what);
  }
  set_num_threads(restore);
}

Graph family_graph(const std::string& family, Vertex n, std::uint64_t seed) {
  // Shared fixtures (tests/support): "er" is the historical local alias.
  return test::support_graph(family == "er" ? "gnm" : family, n, seed);
}

class FrontierEquivalence
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {
 protected:
  [[nodiscard]] const char* family() const {
    return std::get<0>(GetParam());
  }
  [[nodiscard]] std::uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(FrontierEquivalence, ScalarDistances) {
  const auto g = family_graph(family(), 72, seed());
  ScalarDistanceAlgebra alg;
  std::vector<Weight> x0(g.num_vertices(), inf_weight());
  Rng rng(seed() + 1);
  x0[rng.below(g.num_vertices())] = 0.0;
  cross_check(g, alg, x0, g.num_vertices(), "scalar sssp");
}

TEST_P(FrontierEquivalence, CappedForestFire) {
  const auto g = family_graph(family(), 72, seed());
  ScalarDistanceAlgebra alg{.cap = 6.0};
  std::vector<Weight> x0(g.num_vertices(), inf_weight());
  x0[0] = 0.0;
  x0[g.num_vertices() / 2] = 0.0;
  cross_check(g, alg, x0, g.num_vertices(), "forest fire");
}

TEST_P(FrontierEquivalence, SourceDetection) {
  const auto g = family_graph(family(), 64, seed());
  SourceDetectionAlgebra alg{.k = 3, .max_dist = 8.0};
  std::vector<DistanceMap> x0(g.num_vertices());
  Rng rng(seed() + 2);
  for (int s = 0; s < 6; ++s) {
    const auto v = static_cast<Vertex>(rng.below(g.num_vertices()));
    x0[v] = DistanceMap::singleton(v, 0.0);
  }
  cross_check(g, alg, x0, g.num_vertices(), "source detection");
}

TEST_P(FrontierEquivalence, LeLists) {
  const auto g = family_graph(family(), 64, seed());
  Rng rng(seed() + 3);
  const auto order = VertexOrder::random(g.num_vertices(), rng);
  const LeListAlgebra alg;
  cross_check(g, alg, le_initial_state(order), g.num_vertices(), "LE lists");
}

TEST_P(FrontierEquivalence, WidestPaths) {
  const auto g = family_graph(family(), 56, seed());
  WidestPathAlgebra alg;
  std::vector<WidthMap> x0(g.num_vertices());
  x0[0] = WidthMap::singleton(0, inf_weight());
  x0[g.num_vertices() - 1] =
      WidthMap::singleton(g.num_vertices() - 1, inf_weight());
  cross_check(g, alg, x0, g.num_vertices(), "widest paths");
}

TEST_P(FrontierEquivalence, Reachability) {
  const auto g = family_graph(family(), 64, seed());
  ReachabilityAlgebra alg;
  std::vector<std::vector<Vertex>> x0(g.num_vertices());
  x0[0] = {0};
  cross_check(g, alg, x0, /*max_iterations=*/7, "reachability");
}

TEST_P(FrontierEquivalence, KShortestDistinctPaths) {
  // Path sets are heavy; a small instance keeps the 9 runs fast.
  const auto g = family_graph(family(), 20, seed());
  KsdpAlgebra alg{.target = 0, .k = 2, .distinct_weights = false};
  std::vector<PathSet> x0;
  x0.reserve(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    x0.push_back(PathSet::single(VertexPath{{v}}, 0.0));
  }
  cross_check(g, alg, x0, g.num_vertices(), "k-SDP");
}

INSTANTIATE_TEST_SUITE_P(
    Families, FrontierEquivalence,
    ::testing::Combine(::testing::Values("er", "grid", "star", "path"),
                       ::testing::Values(101U, 202U, 303U)));

TEST(FrontierEquivalence, WeightScaleMatchesDense) {
  Rng rng(7);
  const auto g = make_gnm(48, 144, {1.0, 4.0}, rng);
  const auto order = VertexOrder::random(g.num_vertices(), rng);
  const LeListAlgebra alg;
  const auto x0 = le_initial_state(order);
  auto dense = mbf_run(g, alg, x0, 64, 1.75, MbfMode::kDense);
  auto sparse = mbf_run(g, alg, x0, 64, 1.75, MbfMode::kSparse);
  expect_identical_runs(dense, sparse, "weight scale");
}

TEST(FrontierEquivalence, EngineResetReusesBuffers) {
  // One engine, two runs from different sources: the second run must be
  // unaffected by the first (reset reinstalls a full frontier).
  const auto g = make_grid(8, 8, {1.0, 2.0}, Rng(11));
  ScalarDistanceAlgebra alg;
  MbfEngine<ScalarDistanceAlgebra> engine(g, alg);
  for (const Vertex source : {Vertex{0}, Vertex{63}, Vertex{27}}) {
    std::vector<Weight> x0(g.num_vertices(), inf_weight());
    x0[source] = 0.0;
    engine.reset(x0);
    while (engine.step()) {
    }
    EXPECT_TRUE(engine.at_fixpoint());
    const auto expect =
        mbf_run(g, alg, std::move(x0), g.num_vertices(), 1.0,
                MbfMode::kDense);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(engine.states()[v], expect.states[v]) << "vertex " << v;
    }
  }
}

TEST(FrontierEquivalence, BalancedChunkingIsThreadDeterministic) {
  // The engine's rounds now run through parallel_for_balanced; on skewed
  // degree distributions (star centre, power-law hubs) the chunk layout
  // differs per thread count, but states AND WorkDepth counters must stay
  // bit-identical — the chunking only re-partitions, never re-orders the
  // logical work.
  const int restore = num_threads();
  for (const char* family : {"star", "powerlaw"}) {
    const auto g = test::support_graph(family, 2048, 909);
    Rng rng(910);
    const auto order = VertexOrder::random(g.num_vertices(), rng);
    const LeListAlgebra alg;
    const auto x0 = le_initial_state(order);

    std::vector<DistanceMap> ref_states;
    std::uint64_t ref_relax = 0;
    std::uint64_t ref_edges = 0;
    for (const int threads : {1, 2, 8}) {
      set_num_threads(threads);
      for (const MbfMode mode : {MbfMode::kAuto, MbfMode::kSparse}) {
        const WorkDepthScope scope;
        auto run = mbf_run(g, alg, x0, g.num_vertices(), 1.0, mode);
        ASSERT_TRUE(run.reached_fixpoint) << family;
        if (ref_states.empty()) {
          ref_states = std::move(run.states);
          ref_relax = scope.relaxations_delta();
          ref_edges = scope.edges_touched_delta();
          continue;
        }
        if (mode == MbfMode::kAuto) {
          EXPECT_EQ(scope.relaxations_delta(), ref_relax)
              << family << " @ " << threads;
          EXPECT_EQ(scope.edges_touched_delta(), ref_edges)
              << family << " @ " << threads;
        }
        for (Vertex v = 0; v < g.num_vertices(); ++v) {
          EXPECT_EQ(run.states[v], ref_states[v])
              << family << " @ " << threads << " vertex " << v;
        }
      }
    }
  }
  set_num_threads(restore);
}

}  // namespace
}  // namespace pmte
