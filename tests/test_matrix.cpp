// Tests for dense semiring matrices (src/algebra/matrix.hpp) and matrix
// APSP (Section 1.1): the distance product is the reference model the
// MBF-like engine must agree with (Lemma 3.1), over every semiring.
#include <gtest/gtest.h>

#include "src/algebra/matrix.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/mbf/algorithms.hpp"
#include "src/metric/matrix_apsp.hpp"

namespace pmte {
namespace {

TEST(SemiringMatrix, IdentityIsNeutral) {
  Rng rng(1);
  const auto g = make_gnm(12, 25, {1.0, 4.0}, rng);
  const auto a = min_plus_adjacency(g);
  const auto id = SemiringMatrix<MinPlus>::identity(12);
  EXPECT_EQ(a.multiply(id), a);
  EXPECT_EQ(id.multiply(a), a);
}

TEST(SemiringMatrix, PowerZeroIsIdentity) {
  Rng rng(2);
  const auto g = make_gnm(8, 15, {1.0, 2.0}, rng);
  const auto a = min_plus_adjacency(g);
  EXPECT_EQ(a.power(0), SemiringMatrix<MinPlus>::identity(8));
  EXPECT_EQ(a.power(1), a);
}

TEST(SemiringMatrix, DistanceProductGivesHopDistances) {
  // Lemma 3.1 / Equation (1.6): (A^h)_vw = dist^h(v,w,G).
  Rng rng(3);
  const auto g = make_gnm(16, 34, {1.0, 5.0}, rng);
  const auto a = min_plus_adjacency(g);
  for (unsigned h : {1U, 2U, 3U, 5U}) {
    const auto ah = a.power(h);
    for (Vertex v = 0; v < 16; ++v) {
      const auto ref = bellman_ford_hops(g, v, h);
      for (Vertex w = 0; w < 16; ++w) {
        if (is_finite(ref[w])) {
          EXPECT_NEAR(ah.at(v, w), ref[w], 1e-9) << "h=" << h;
        } else {
          EXPECT_FALSE(is_finite(ah.at(v, w)));
        }
      }
    }
  }
}

TEST(SemiringMatrix, ApplyIsSimpleLinearFunction) {
  // A(x) = Ax over Smin,+ equals one unfiltered MBF step (Def. 2.12).
  Rng rng(4);
  const auto g = make_gnm(14, 28, {1.0, 3.0}, rng);
  const auto a = min_plus_adjacency(g);
  std::vector<Weight> x(14, inf_weight());
  x[3] = 0.0;
  x[7] = 2.0;
  const auto y = a.apply(x);
  // Reference: y_v = min(x_v, min over edges (v,u) of w + x_u).
  for (Vertex v = 0; v < 14; ++v) {
    Weight ref = x[v];
    for (const auto& e : g.neighbors(v)) {
      ref = std::min(ref, MinPlus::times(e.weight, x[e.to]));
    }
    EXPECT_DOUBLE_EQ(y[v], ref);
  }
}

TEST(SemiringMatrix, BooleanPowerIsReachability) {
  Rng rng(5);
  const auto g = make_gnm(15, 24, {1.0, 1.0}, rng);
  const auto a = boolean_adjacency(g);
  for (unsigned h : {1U, 2U, 4U}) {
    const auto ah = a.power(h);
    const auto hops = bfs_hops(g, 0);
    for (Vertex v = 0; v < 15; ++v) {
      EXPECT_EQ(ah.at(0, v) != 0, hops[v] <= h) << "h=" << h << " v=" << v;
    }
  }
}

TEST(SemiringMatrix, MaxMinPowerIsWidestPath) {
  Rng rng(6);
  const auto g = make_gnm(12, 26, {1.0, 9.0}, rng);
  const auto a = max_min_adjacency(g);
  const auto fix = a.power(12);
  const auto ref = mbf_apwp(g);
  for (Vertex v = 0; v < 12; ++v) {
    for (Vertex w = 0; w < 12; ++w) {
      const Weight lhs = fix.at(v, w);
      const Weight rhs = ref[static_cast<std::size_t>(v) * 12 + w];
      if (is_finite(lhs) || is_finite(rhs)) {
        EXPECT_NEAR(lhs, rhs, 1e-9);
      }
    }
  }
}

TEST(SemiringMatrix, DimensionMismatchThrows) {
  SemiringMatrix<MinPlus> a(3), b(4);
  EXPECT_THROW((void)a.multiply(b), std::logic_error);
  EXPECT_THROW((void)a.add(b), std::logic_error);
  EXPECT_THROW((void)a.apply(std::vector<Weight>(4)), std::logic_error);
}

class MatrixApsp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatrixApsp, MatchesDijkstra) {
  Rng rng(GetParam());
  const auto g = make_gnm(24, 50, {1.0, 6.0}, rng);
  const auto mr = matrix_apsp(g);
  const auto ref = exact_apsp(g);
  ASSERT_EQ(mr.dist.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(mr.dist[i], ref[i], 1e-9);
  }
  EXPECT_GE(mr.squarings, 1U);
  EXPECT_LE(mr.squarings, 6U);  // ceil(log2 SPD) + 1
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixApsp,
                         ::testing::Values(1301, 1302, 1303, 1304));

TEST(MatrixApsp, FixpointCountTracksSpd) {
  // Path of length 33: SPD 32, so 5–6 squarings reach the fixpoint.
  const auto g = make_path(33);
  const auto mr = matrix_apsp(g);
  EXPECT_GE(mr.squarings, 5U);
  EXPECT_DOUBLE_EQ(mr.dist[32], 32.0);
}

}  // namespace
}  // namespace pmte
