// Network backbone provisioning with buy-at-bulk (Section 10).
//
//   ./buyatbulk_backbone [--n=300] [--demands=80] [--seed=13]
//
// Data centres scattered in the plane must exchange fixed traffic volumes;
// link capacity comes in three cable sizes with economies of scale.  The
// FRT-based algorithm (Theorem 10.2) consolidates traffic on a sampled
// tree; we compare against per-demand shortest-path routing and the
// fractional lower bound.

#include <cmath>
#include <iostream>

#include "src/apps/buyatbulk.hpp"
#include "src/graph/generators.hpp"
#include "src/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace pmte;
  const Cli cli(argc, argv);
  Rng rng(cli.seed(13));
  const auto n = static_cast<Vertex>(cli.get_int("n", 300));
  const auto demand_count =
      static_cast<std::size_t>(cli.get_int("demands", 80));

  const Graph net =
      make_geometric(n, 2.0 / std::sqrt(static_cast<double>(n)), rng);
  std::cout << "fibre network: " << net.num_vertices() << " sites, "
            << net.num_edges() << " possible links\n";

  const std::vector<CableType> cables{
      {1.0, 1.0},    // OC-1 : 1 unit of capacity, unit cost/km
      {12.0, 5.0},   // OC-12: 12 units for 5x the cost
      {96.0, 20.0},  // OC-96: 96 units for 20x the cost
  };

  std::vector<Demand> demands;
  while (demands.size() < demand_count) {
    const auto s = static_cast<Vertex>(rng.below(n));
    const auto t = static_cast<Vertex>(rng.below(n));
    if (s == t) continue;
    demands.push_back(Demand{s, t, std::floor(rng.uniform(1.0, 16.0))});
  }

  const auto r = buy_at_bulk(net, demands, cables, {}, rng);
  std::cout << "\nprovisioning " << demands.size() << " demands:\n";
  std::cout << "  FRT consolidation (Thm 10.2): " << r.cost << "\n";
  std::cout << "  direct shortest-path routing: " << r.direct_cost << "\n";
  std::cout << "  fractional lower bound      : " << r.lower_bound << "\n";
  std::cout << "  FRT / LB = " << r.cost / r.lower_bound
            << ", direct / LB = " << r.direct_cost / r.lower_bound << "\n";
  std::cout << "  tree edges carrying traffic : " << r.loaded_tree_edges
            << " (unfolded with " << r.dijkstra_runs << " Dijkstra runs)\n";
  return 0;
}
