// Facility planning with k-median on a road-like network (Section 9).
//
//   ./kmedian_facility_planning [--k=8] [--n=600] [--seed=11]
//
// Models a city street grid with variable travel times and places k
// facilities minimising the total travel time of all residents
// (Definition 9.1), comparing the FRT-based approximation against local
// search and random placement.

#include <iostream>

#include "src/apps/kmedian.hpp"
#include "src/graph/generators.hpp"
#include "src/util/cli.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pmte;
  const Cli cli(argc, argv);
  Rng rng(cli.seed(11));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 8));
  const auto n = static_cast<Vertex>(cli.get_int("n", 600));

  Vertex side = 1;
  while (side * side < n) ++side;
  const Graph city = make_grid(side, side, {1.0, 5.0}, rng);
  std::cout << "street grid: " << side << "x" << side << " ("
            << city.num_vertices() << " intersections, "
            << city.num_edges() << " street segments)\n";

  Timer timer;
  const auto frt = kmedian_frt(city, k, {}, rng);
  const double frt_ms = timer.millis();

  timer.reset();
  const auto ls = kmedian_local_search(city, k, 8, rng);
  const double ls_ms = timer.millis();

  const auto random = kmedian_random(city, k, rng);

  std::cout << "\nplacing k=" << k << " facilities:\n";
  std::cout << "  FRT embedding (Thm 9.2): cost " << frt.cost << " ["
            << frt_ms << " ms, " << frt.candidates << " candidates]\n";
  std::cout << "  local search baseline  : cost " << ls.cost << " [" << ls_ms
            << " ms]\n";
  std::cout << "  random placement       : cost " << random.cost << "\n";
  std::cout << "  FRT / local-search ratio: " << frt.cost / ls.cost << "\n";

  std::cout << "\nchosen facility intersections:";
  for (const Vertex c : frt.centers) std::cout << " " << c;
  std::cout << "\n";
  return 0;
}
