// A lightweight "distance oracle service" built from LE-list sketches.
//
//   ./distance_oracle_service [--n=2000] [--T=8] [--seed=19]
//
// Preprocess a large sparse graph once into per-vertex sketches of
// T·O(log n) entries, then answer arbitrary point-to-point distance
// queries in microseconds without touching the graph again — the LE lists
// of Cohen [12] / Cohen–Kaplan [14] worn as distance labels, computed with
// this library's pipelines.

#include <cmath>
#include <iostream>

#include "src/apps/distance_sketches.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/util/cli.hpp"
#include "src/util/stats.hpp"
#include "src/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace pmte;
  const Cli cli(argc, argv);
  Rng rng(cli.seed(19));
  const auto n = static_cast<Vertex>(cli.get_int("n", 2000));
  const auto T = static_cast<std::size_t>(cli.get_int("T", 8));

  const Graph g =
      make_geometric(n, 2.0 / std::sqrt(static_cast<double>(n)), rng);
  std::cout << "road network: " << g.num_vertices() << " vertices, "
            << g.num_edges() << " edges\n";

  Timer timer;
  const auto sketches = DistanceSketches::build(g, T, rng);
  std::cout << "preprocessing: " << T << " permutations in "
            << timer.millis() << " ms, "
            << sketches.average_entries_per_vertex()
            << " entries/vertex (ln n = "
            << std::log(static_cast<double>(n)) << ")\n";

  // Serve queries; compare against on-demand Dijkstra.
  RunningStats ratio;
  timer.reset();
  const int queries = 300;
  std::vector<std::pair<Vertex, Vertex>> qs;
  for (int i = 0; i < queries; ++i) {
    qs.emplace_back(static_cast<Vertex>(rng.below(n)),
                    static_cast<Vertex>(rng.below(n)));
  }
  double query_ms;
  {
    Timer qt;
    double sink = 0;
    for (const auto& [u, v] : qs) sink += sketches.query(u, v);
    query_ms = qt.millis();
    (void)sink;
  }
  for (const auto& [u, v] : qs) {
    if (u == v) continue;
    const auto exact = dijkstra(g, u).dist[v];
    if (is_finite(exact) && exact > 0) {
      ratio.add(sketches.query(u, v) / exact);
    }
  }
  std::cout << queries << " queries in " << query_ms << " ms ("
            << query_ms * 1000.0 / queries << " us/query)\n";
  std::cout << "estimate/exact ratio: mean " << ratio.mean() << ", max "
            << ratio.max() << " (always >= 1: estimates are upper bounds)\n";
  return 0;
}
