// The algebraic MBF-like toolbox (Section 3 of the paper) in action:
// one engine, many algorithms — distances, detection, bottleneck paths,
// k-shortest paths and reachability on the same graph.
//
//   ./algebraic_toolbox [--seed=7]

#include <iostream>

#include "src/graph/generators.hpp"
#include "src/mbf/algorithms.hpp"
#include "src/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace pmte;
  const Cli cli(argc, argv);
  Rng rng(cli.seed(7));

  // A small "sensor network": random geometric graph in the unit square.
  const Graph g = make_geometric(60, 0.25, rng);
  std::cout << "sensor network: n=" << g.num_vertices()
            << " m=" << g.num_edges() << "\n\n";

  // --- SSSP over Smin,+ (Example 3.3) --------------------------------
  const auto dist = mbf_sssp(g, 0);
  std::cout << "[SSSP] dist(0, 30) = " << dist[30] << "\n";

  // --- Source detection (Example 3.2): 3 gateways, 2 nearest each -----
  const std::vector<Vertex> gateways{5, 25, 45};
  const auto det = mbf_source_detection(g, gateways, g.num_vertices(), 2);
  std::cout << "[source detection] vertex 30 sees gateways:";
  for (const auto& e : det[30].entries()) {
    std::cout << " (" << e.key << " at " << e.dist << ")";
  }
  std::cout << "\n";

  // --- Forest fire (Example 3.7): who is within radius 0.3 of a fire? --
  const auto fire = mbf_forest_fire(g, std::vector<Vertex>{10}, 0.3);
  std::size_t alarmed = 0;
  for (const bool b : fire.alarmed) alarmed += b;
  std::cout << "[forest fire] " << alarmed << "/" << g.num_vertices()
            << " sensors within 0.3 of the fire at vertex 10\n";

  // --- Widest path over Smax,min (Example 3.13): trust propagation -----
  const auto width = mbf_sswp(g, 0);
  std::cout << "[widest path] bottleneck capacity 0 -> 30 = " << width[30]
            << "\n";

  // --- k-SDP over Pmin,+ (Example 3.23): 2 shortest routes to vertex 0 -
  const auto routes = mbf_ksdp(g, 0, 2);
  std::cout << "[k-SDP] routes from 30 to 0:\n";
  for (const auto& e : routes[30].entries()) {
    std::cout << "  weight " << e.weight << " via";
    for (const Vertex v : e.path.hops) std::cout << " " << v;
    std::cout << "\n";
  }

  // --- Boolean reachability (Example 3.25) ----------------------------
  const auto reach = mbf_reachability(g, std::vector<Vertex>{0}, 3);
  std::size_t within3 = 0;
  for (const auto& r : reach) within3 += !r.empty();
  std::cout << "[reachability] " << within3
            << " vertices within 3 hops of vertex 0\n";
  return 0;
}
