// Quickstart: sample a metric tree embedding of a weighted graph and
// inspect its quality.
//
//   ./quickstart [--n=400] [--seed=42]
//
// Walks through the library's main entry points: build a graph, sample an
// FRT tree with the paper's oracle pipeline (hop set → simulated graph H →
// LE lists → tree), and measure the embedding's stretch.

#include <cmath>
#include <iostream>

#include "src/frt/pipelines.hpp"
#include "src/frt/stretch.hpp"
#include "src/graph/generators.hpp"
#include "src/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace pmte;
  const Cli cli(argc, argv);
  Rng rng(cli.seed());
  const auto n = static_cast<Vertex>(cli.get_int("n", 400));

  // A sparse random weighted graph; any connected pmte::Graph works.
  const Graph g = make_gnm(n, 3 * static_cast<std::size_t>(n), {1.0, 10.0},
                           rng);
  std::cout << "graph: n=" << g.num_vertices() << " m=" << g.num_edges()
            << " weights in [" << g.min_edge_weight() << ", "
            << g.max_edge_weight() << "]\n";

  // One call samples a tree from the FRT distribution via the oracle
  // pipeline (Theorem 7.9): expected stretch O(log n), polylog iterations.
  const FrtSample sample = sample_frt_oracle(g, rng);
  std::cout << "sampled FRT tree: " << sample.tree.num_nodes() << " nodes, "
            << sample.tree.num_levels() << " levels, beta=" << sample.beta
            << "\n";
  std::cout << "pipeline: " << sample.iterations << " H-iterations ("
            << sample.base_iterations << " iterations on G'), "
            << sample.hopset_edges << " hop-set edges, longest LE list "
            << sample.max_list_length << "\n";

  // Tree distances dominate graph distances; expected stretch is O(log n).
  const auto pairs = sample_pairs(g, 16, 300, rng);
  std::vector<FrtTree> trees;
  trees.push_back(sample.tree);
  for (int i = 0; i < 7; ++i) {
    trees.push_back(sample_frt_oracle(g, rng).tree);
  }
  const auto rep = measure_stretch(pairs, trees);
  std::cout << "over " << rep.pairs << " vertex pairs and " << rep.trees
            << " sampled trees:\n"
            << "  avg expected stretch = " << rep.avg_expected_stretch
            << "  (log2 n = " << std::log2(static_cast<double>(n)) << ")\n"
            << "  max expected stretch = " << rep.max_expected_stretch << "\n"
            << "  min single ratio     = " << rep.min_single_ratio
            << "  (>= 1: tree distances dominate)\n";
  return 0;
}
