// Distributed tree embedding in the Congest model (Section 8).
//
//   ./congest_distributed_embedding [--n=400] [--seed=17]
//
// Simulates both distributed FRT algorithms on a network with large
// shortest-path diameter but small hop diameter — the regime where the
// skeleton-based algorithm (Theorem 8.1) beats direct iteration
// (Khan et al.).

#include <cmath>
#include <iostream>

#include "src/congest/congest.hpp"
#include "src/frt/frt_tree.hpp"
#include "src/graph/generators.hpp"
#include "src/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace pmte;
  const Cli cli(argc, argv);
  Rng rng(cli.seed(17));
  const auto n = static_cast<Vertex>(cli.get_int("n", 400));

  // A long chain of unit links plus a satellite uplink: every vertex can
  // reach every other in 2 hops (via the expensive satellite), but all
  // *shortest* paths crawl along the chain — SPD = n−1, D(G) = 2.
  auto edges = make_path(n - 1).edge_list();
  for (Vertex v = 0; v + 1 < n; ++v) {
    edges.push_back(WeightedEdge{v, static_cast<Vertex>(n - 1), 1e6});
  }
  const Graph g = Graph::from_edges(n, std::move(edges));
  std::cout << "network: " << n << " nodes, " << g.num_edges()
            << " links (chain + satellite)\n";

  const auto order = VertexOrder::random(n, rng);
  const auto khan = congest_frt_khan(g, order);
  std::cout << "\nKhan et al. (direct iteration, Section 8.1):\n"
            << "  " << khan.le.iterations << " MBF iterations, "
            << khan.rounds << " Congest rounds\n";

  SkeletonOptions opts;
  opts.size_constant = 0.15;
  const auto sk = congest_frt_skeleton(g, opts, rng);
  std::cout << "skeleton algorithm (Section 8.3):\n"
            << "  |S| = " << sk.run.skeleton_size << ", spanner edges = "
            << sk.run.skeleton_spanner_edges << "\n"
            << "  rounds: " << sk.run.rounds << " (setup "
            << sk.run.rounds_setup << " + iterations "
            << sk.run.rounds_iterations << ")\n"
            << "  embedding stretch factor: " << sk.run.embedding_stretch
            << " (times the O(log n) FRT stretch)\n";
  std::cout << "\nspeedup: " << static_cast<double>(khan.rounds) /
                                   static_cast<double>(sk.run.rounds)
            << "x fewer rounds (sqrt(n) = "
            << std::sqrt(static_cast<double>(n)) << ")\n";

  // Both round counts come with usable LE lists — build one tree.
  const auto tree = FrtTree::build(sk.run.le.lists, sk.order, 1.4,
                                   sk.virtual_graph.min_edge_weight());
  std::cout << "\nFRT tree from the skeleton run: " << tree.num_nodes()
            << " nodes, " << tree.num_levels() << " levels\n";
  return 0;
}
