#!/usr/bin/env python3
"""Validate the observability exports of serve_queries.

Runs `serve_queries --metrics-out --trace-out` on a toy graph and checks
both artefacts against their format contracts (docs/OBSERVABILITY.md):

Prometheus text exposition:
  - every non-comment line is `series[{labels}] value`
  - every series is preceded by exactly one # HELP and # TYPE line for its
    family, with a valid type (counter | gauge | histogram)
  - label sets parse as comma-separated key="escaped value" pairs
  - histogram families carry `_bucket{le=...}` series with nondecreasing
    cumulative counts, a final le="+Inf" bucket, plus `_sum` and `_count`,
    and the +Inf bucket equals `_count`

Chrome trace-event JSON:
  - the file parses as {"traceEvents": [...]}
  - every event is a complete event (ph == "X") with the required fields,
    nonnegative ts/dur, and a nonnegative integer tid
  - events are sorted by ts (monotone — the writer merges the per-thread
    rings into one timeline) and rebased so the earliest ts is 0

Usage:
  scripts/check_obs_export.py --serve-bin build/src/serve_queries
      [--keep-dir DIR]

Exit status: 0 = both exports valid, 1 = any violation (each is printed).
Wired into CI (obs-export job) and CTest (obs_export).
"""

import argparse
import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})?\s+(-?\d+(?:\.\d+)?)$")
VALID_TYPES = ("counter", "gauge", "histogram")


def family_of(series_name, declared_types):
    """Map a sample's series name to its declared family: histogram
    samples append _bucket/_sum/_count to the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if series_name.endswith(suffix):
            base = series_name[: -len(suffix)]
            if declared_types.get(base) == "histogram":
                return base
    return series_name


def check_prometheus(path, errors):
    declared_help = {}
    declared_types = {}
    # (family, labels-without-le) -> list of (le, cumulative value)
    buckets = {}
    sums = {}
    counts = {}
    n_samples = 0

    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue

        def err(msg):
            errors.append(f"{path.name}:{lineno}: {msg}: {line!r}")

        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not METRIC_NAME_RE.match(parts[2]):
                err("malformed # HELP line")
                continue
            if parts[2] in declared_help:
                err(f"duplicate # HELP for family {parts[2]}")
            declared_help[parts[2]] = parts[3]
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not METRIC_NAME_RE.match(parts[2]):
                err("malformed # TYPE line")
                continue
            if parts[3] not in VALID_TYPES:
                err(f"invalid metric type {parts[3]!r}")
            if parts[2] in declared_types:
                err(f"duplicate # TYPE for family {parts[2]}")
            declared_types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # other comments are legal

        m = SAMPLE_RE.match(line)
        if not m:
            err("unparseable sample line")
            continue
        n_samples += 1
        series, labelstr, value = m.group(1), m.group(2) or "", m.group(3)
        family = family_of(series, declared_types)
        if family not in declared_types:
            err(f"sample of undeclared family {family!r} (no # TYPE)")
            continue
        if family not in declared_help:
            err(f"sample of family {family!r} with no # HELP")

        labels = {}
        if labelstr:
            for lm in LABEL_RE.finditer(labelstr):
                labels[lm.group(1)] = lm.group(2)
            rest = LABEL_RE.sub("", labelstr).replace(",", "")
            if rest.strip():
                err(f"unparseable label set {labelstr!r}")
                continue

        if declared_types[family] == "histogram":
            key = (family,
                   tuple(sorted((k, v) for k, v in labels.items()
                                if k != "le")))
            if series.endswith("_bucket"):
                if "le" not in labels:
                    err("histogram _bucket sample without le label")
                    continue
                buckets.setdefault(key, []).append(
                    (labels["le"], float(value)))
            elif series.endswith("_sum"):
                sums[key] = float(value)
            elif series.endswith("_count"):
                counts[key] = float(value)
            else:
                err("bare sample of a histogram family")

    for key, bs in sorted(buckets.items()):
        family = key[0]
        if bs[-1][0] != "+Inf":
            errors.append(f"{path.name}: {family}: last bucket is "
                          f"le={bs[-1][0]!r}, expected +Inf")
        prev = -1.0
        for le, v in bs:
            if v < prev:
                errors.append(f"{path.name}: {family}: cumulative bucket "
                              f"counts decrease at le={le}")
            prev = v
        if key not in counts:
            errors.append(f"{path.name}: {family}: missing _count")
        elif bs[-1][0] == "+Inf" and bs[-1][1] != counts[key]:
            errors.append(f"{path.name}: {family}: +Inf bucket "
                          f"({bs[-1][1]}) != _count ({counts[key]})")
        if key not in sums:
            errors.append(f"{path.name}: {family}: missing _sum")

    if n_samples == 0:
        errors.append(f"{path.name}: no samples at all — the obs layer "
                      "was not enabled?")
    return n_samples


REQUIRED_EVENT_FIELDS = ("name", "cat", "ph", "pid", "tid", "ts", "dur")


def check_trace(path, errors):
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as e:
        errors.append(f"{path.name}: not valid JSON: {e}")
        return 0
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        errors.append(f"{path.name}: missing traceEvents array")
        return 0

    open_by_tid = {}  # tid -> stack, for B/E matching if ever emitted
    prev_ts = -1.0
    saw_zero_ts = False
    for i, ev in enumerate(events):
        def err(msg):
            errors.append(f"{path.name}: event {i}: {msg}")

        missing = [f for f in REQUIRED_EVENT_FIELDS
                   if f not in ev and not (f == "dur" and
                                           ev.get("ph") in ("B", "E"))]
        if missing:
            err(f"missing fields {missing}")
            continue
        ph = ev["ph"]
        if ph not in ("X", "B", "E"):
            err(f"unexpected phase {ph!r} (complete or begin/end only)")
            continue
        if not isinstance(ev["tid"], int) or ev["tid"] < 0:
            err(f"bad tid {ev['tid']!r}")
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            err(f"negative or non-numeric ts {ts!r}")
            continue
        if ts == 0:
            saw_zero_ts = True
        if ts < prev_ts:
            err(f"ts not monotone ({ts} after {prev_ts})")
        prev_ts = ts
        if ph == "X":
            dur = ev["dur"]
            if not isinstance(dur, (int, float)) or dur < 0:
                err(f"negative or non-numeric dur {dur!r}")
        elif ph == "B":
            open_by_tid.setdefault(ev["tid"], []).append(ev["name"])
        elif ph == "E":
            stack = open_by_tid.get(ev["tid"], [])
            if not stack:
                err("E event with no matching B on this tid")
            else:
                stack.pop()

    for tid, stack in sorted(open_by_tid.items()):
        if stack:
            errors.append(f"{path.name}: tid {tid}: {len(stack)} B "
                          f"event(s) never closed: {stack}")
    if events and not saw_zero_ts:
        errors.append(f"{path.name}: no event at ts=0 — timestamps are "
                      "not rebased to the earliest event")
    if not events:
        errors.append(f"{path.name}: no trace events at all — tracing "
                      "was not enabled?")
    return len(events)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--serve-bin", required=True,
                    help="path to the serve_queries binary")
    ap.add_argument("--keep-dir",
                    help="write the exports here (kept) instead of a "
                         "temp dir")
    args = ap.parse_args()

    serve_bin = Path(args.serve_bin)
    if not serve_bin.exists():
        print(f"error: {serve_bin} not found (build serve_queries first)",
              file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory(prefix="pmte-obs-") as tmp:
        outdir = Path(args.keep_dir) if args.keep_dir else Path(tmp)
        outdir.mkdir(parents=True, exist_ok=True)
        metrics = outdir / "metrics.prom"
        trace = outdir / "trace.json"

        # Toy graph, both run modes: a single-workload replay with a cache
        # (exercises ensemble/cache instruments) and a many-tenant run with
        # a hot-swap (exercises server phase spans + per-tenant series).
        runs = [
            ["--graph=gnm", "--n=256", "--seed=7", "--trees=4",
             "--queries=5000", "--repeat=1", "--cache",
             "--cache-capacity=1024",
             f"--metrics-out={metrics}", f"--trace-out={trace}"],
            ["--graph=gnm", "--n=256", "--seed=7", "--trees=4",
             "--queries=5000", "--tenants=2", "--batches=4", "--swap-at=2",
             f"--metrics-out={metrics}", f"--trace-out={trace}"],
        ]
        errors = []
        for extra in runs:
            cmd = [str(serve_bin)] + extra
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=600)
            if proc.returncode != 0:
                print(proc.stdout)
                print(proc.stderr, file=sys.stderr)
                print(f"error: {' '.join(cmd)} exited "
                      f"{proc.returncode}", file=sys.stderr)
                return 1
            n_samples = check_prometheus(metrics, errors)
            n_events = check_trace(trace, errors)
            mode = "tenant" if any("--tenants" in a for a in extra) \
                else "single"
            print(f"{mode} run: {n_samples} metric samples, "
                  f"{n_events} trace events")

        if errors:
            print(f"\n{len(errors)} export violation(s):", file=sys.stderr)
            for e in errors:
                print(f"  {e}", file=sys.stderr)
            return 1
    print("obs export OK: Prometheus grammar and trace schema both valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
