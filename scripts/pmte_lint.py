#!/usr/bin/env python3
"""pmte-lint — determinism static analysis for the pmte source tree.

The repo's determinism contract (docs/DETERMINISM.md, docs/ARCHITECTURE.md)
says outputs and logical counters are bit-identical at any thread count and
reproducible from a single seed.  Differential tests catch violations only
when a specific input happens to expose them; this linter rejects the code
patterns that *create* the exposure in the first place:

  rng-source           ad-hoc / time-seeded randomness outside src/util/rng.hpp
  unordered-container  std::unordered_{map,set} use without an ordered-ok waiver
  raw-omp-pragma       #pragma omp outside src/parallel/
  omp-fp-atomic        omp atomic/critical (unordered FP accumulation)
  omp-thread-api       omp_get_thread_num & friends outside parallel.hpp
  pointer-hash-order   hashing/ordering on pointer values (ASLR-dependent)
  wall-clock           clock reads outside src/util/timer.hpp and src/obs/

Waivers (must carry a non-empty reason; an empty reason is itself an error):

  // pmte-lint: ordered-ok(<why iteration order cannot leak>)
  // pmte-lint: allow(<rule-id>: <reason>)

A waiver silences findings of its rule on the same line, or — when it is
the only thing on its line — on the next line that contains code.

Engines: `--engine clang` tokenises with libclang (python clang.cindex) so
comments and string literals are classified exactly; `--engine token` is a
dependency-free lexer doing the same job.  `--engine auto` (default) tries
libclang and falls back, loudly, to the token lexer — CI therefore never
silently skips the pass.  Both engines blank comment/literal characters in
place and apply identical rules, so findings agree wherever both run.

Usage:
  scripts/pmte_lint.py [paths...]         lint the tree (default roots:
                                          src tests bench examples)
  scripts/pmte_lint.py --list-rules       machine-readable JSON rule table
  scripts/pmte_lint.py --self-test        run the fixture suite under
                                          tests/lint_fixtures/ (CTest: lint_selftest)

Exit status: 0 clean, 1 findings or self-test failure, 2 usage error.
"""

import argparse
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CXX_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc", ".cxx")
DEFAULT_ROOTS = ("src", "tests", "bench", "examples")
FIXTURE_DIR = os.path.join("tests", "lint_fixtures")


class Rule:
    """One named determinism rule: regexes applied to comment-stripped code."""

    def __init__(self, rule_id, summary, rationale, patterns,
                 scope=("src", "tests", "bench", "examples"), exempt=()):
        self.id = rule_id
        self.summary = summary
        self.rationale = rationale
        self.patterns = [re.compile(p) for p in patterns]
        self.scope = scope          # path prefixes the rule applies to
        self.exempt = exempt        # path prefixes exempt from the rule

    def applies_to(self, relpath):
        path = relpath.replace(os.sep, "/")
        if not any(path.startswith(s + "/") or path == s for s in self.scope):
            return False
        return not any(path.startswith(e) for e in self.exempt)

    def describe(self):
        return {
            "id": self.id,
            "summary": self.summary,
            "rationale": self.rationale,
            "patterns": [p.pattern for p in self.patterns],
            "scope": list(self.scope),
            "exempt": list(self.exempt),
            "waiver": "// pmte-lint: ordered-ok(<reason>)" if self.id ==
                      "unordered-container" else
                      "// pmte-lint: allow(%s: <reason>)" % self.id,
        }


RULES = [
    Rule(
        "rng-source",
        "all randomness flows from src/util/rng.hpp (seeded xoshiro256**)",
        "rand()/std::random_device/std::mt19937/time-seeded generators are "
        "not reproducible from the experiment master seed; every randomised "
        "component must take an explicit pmte::Rng (or a split_seed stream) "
        "so results are a pure function of (input, seed).",
        [r"\brand\s*\(", r"\bsrand\s*\(",
         r"\b(?:std::)?random_device\b",
         r"\b(?:std::)?mt19937(?:_64)?\b",
         r"\b(?:std::)?default_random_engine\b",
         r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"],
        exempt=("src/util/rng.hpp",),
    ),
    Rule(
        "unordered-container",
        "std::unordered_{map,set} use requires an ordered-ok(<reason>) waiver",
        "hash-container iteration order is implementation-defined; when it "
        "feeds results, counters, FP accumulation order, or serialized "
        "bytes, outputs silently depend on the standard library build. "
        "Every use must either be restructured (sorted iteration, std::map, "
        "dense arrays) or carry a waiver proving no iteration order leaks "
        "(e.g. find/emplace-only memo caches).",
        [r"\bunordered_(?:map|set|multimap|multiset)\s*<"],
    ),
    Rule(
        "raw-omp-pragma",
        "no raw #pragma omp outside src/parallel/",
        "all data parallelism goes through parallel_for / "
        "parallel_for_balanced / PerThreadBuffers so that deterministic "
        "chunking, nested-region detection, and thread-count-invariant "
        "merges are implemented once and audited once. A raw pragma "
        "bypasses that audit.",
        [r"#\s*pragma\s+omp\b"],
        exempt=("src/parallel/",),
    ),
    Rule(
        "omp-fp-atomic",
        "no omp atomic/critical accumulation (unordered FP reduction)",
        "atomic/critical sections commit updates in scheduling order; for "
        "floating-point accumulation that makes the rounding, and hence the "
        "result, depend on thread timing. Use per-thread partials merged in "
        "index order (PerThreadBuffers) or the reduction helpers in "
        "src/parallel/parallel.hpp, whose chunk-ordered folds are pinned by "
        "determinism tests.",
        [r"#\s*pragma\s+omp\s.*\b(?:atomic|critical)\b"],
    ),
    Rule(
        "omp-thread-api",
        "no omp_get_thread_num/omp_get_max_threads etc. outside parallel.hpp",
        "code keyed on the calling thread's id or the machine's thread "
        "count is exactly the code whose behaviour changes with "
        "OMP_NUM_THREADS. The wrappers in src/parallel/parallel.hpp "
        "(num_threads, thread_index, PerThreadBuffers) exist so such "
        "dependence stays confined to one reviewed file.",
        [r"\bomp_(?:get_thread_num|get_max_threads|get_num_threads|"
         r"set_num_threads|in_parallel|get_num_procs)\s*\("],
        exempt=("src/parallel/parallel.hpp",),
    ),
    Rule(
        "pointer-hash-order",
        "no hashing or ordering on raw pointer values",
        "pointer values differ run to run under ASLR and allocator "
        "nondeterminism; hashing them (std::hash<T*>) or casting them to "
        "integers for keys/comparison makes container layout and iteration "
        "order irreproducible. Key on stable ids (vertex, node, slot) "
        "instead.",
        [r"\bstd::hash\s*<[^>]*\*[^>]*>",
         r"\breinterpret_cast\s*<\s*(?:std::)?u?intptr_t\s*>"],
    ),
    Rule(
        "wall-clock",
        "no clock reads in library code outside src/util/timer.hpp and "
        "src/obs/",
        "wall-clock values leaking into algorithmic decisions (seeds, "
        "thresholds, tie-breaks) make runs irreproducible; library code "
        "measures time only through pmte::Timer / pmte::now_ns, and the "
        "observability layer (src/obs/) is write-only — spans and latency "
        "histograms record time but never feed it back into control flow "
        "(the bar documented in docs/DETERMINISM.md). Instrument with "
        "PMTE_OBS_SPAN instead of reading a clock.",
        [r"\bstd::chrono\b",
         r"\b(?:steady|system|high_resolution)_clock\b",
         r"\bgettimeofday\s*\(", r"\bclock\s*\(\s*\)"],
        scope=("src",),
        exempt=("src/util/timer.hpp", "src/obs/"),
    ),
]

RULE_IDS = {r.id for r in RULES}

WAIVER_RE = re.compile(
    r"pmte-lint:\s*(?:(ordered-ok)\(([^)]*)\)|allow\(\s*([a-z-]+)\s*:([^)]*)\))")
EXPECT_RE = re.compile(r"expect-lint:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")
FIXTURE_PATH_RE = re.compile(r"pmte-lint-fixture-path:\s*(\S+)")


class Finding:
    def __init__(self, path, line, rule_id, message, snippet=""):
        self.path = path
        self.line = line
        self.rule_id = rule_id
        self.message = message
        self.snippet = snippet

    def render(self):
        loc = "%s:%d" % (self.path, self.line)
        out = "%s: [%s] %s" % (loc, self.rule_id, self.message)
        if self.snippet:
            out += "\n    %s" % self.snippet.strip()
        return out


# --------------------------------------------------------------------------
# Lexers: both produce (code_lines, comment_lines) — the original source
# split per line with comment/string-literal characters blanked out of the
# code channel and comment text preserved in the comment channel.

def _lex_token(text):
    """Dependency-free C++ lexer: tracks //, /* */, "...", '...', and raw
    strings well enough to blank comments and literals per line."""
    code_lines, comment_lines = [], []
    code, comment = [], []
    state = "code"          # code | line_comment | block_comment | str | chr | raw
    raw_delim = ""
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            code_lines.append("".join(code))
            comment_lines.append("".join(comment))
            code, comment = [], []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                code.append("  ")
                i += 2
                continue
            if c == '"':
                m = re.match(r'R"([^(\s\\]{0,16})\(', text[i - 1:i + 20]) \
                    if i > 0 and text[i - 1] == "R" else None
                if m:
                    state = "raw"
                    raw_delim = ")%s\"" % m.group(1)
                else:
                    state = "str"
                code.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                code.append(" ")
                i += 1
                continue
            code.append(c)
            i += 1
        elif state == "line_comment":
            comment.append(c)
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                comment.append(c)
                i += 1
        elif state in ("str", "chr"):
            if c == "\\":
                i += 2
                continue
            if (state == "str" and c == '"') or (state == "chr" and c == "'"):
                state = "code"
            i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                i += len(raw_delim)
            else:
                i += 1
    code_lines.append("".join(code))
    comment_lines.append("".join(comment))
    return code_lines, comment_lines


def _lex_clang(path, text):
    """libclang lexer: classify tokens, then blank comment/literal extents
    from the raw lines (preserving original spacing for the regexes)."""
    import clang.cindex as ci  # noqa: F401 — optional dependency
    index = ci.Index.create()
    tu = index.parse(
        path, args=["-x", "c++", "-std=c++20", "-I", REPO_ROOT],
        unsaved_files=[(path, text)],
        options=ci.TranslationUnit.PARSE_DETAILED_PREPROCESSING_RECORD)
    lines = text.split("\n")
    code_lines = list(lines)
    comment_lines = [""] * len(lines)

    def blank(start, end, keep_as_comment):
        for ln in range(start[0], end[0] + 1):
            if ln - 1 >= len(code_lines):
                continue
            raw = lines[ln - 1]
            lo = start[1] - 1 if ln == start[0] else 0
            hi = end[1] - 1 if ln == end[0] else len(raw)
            segment = raw[lo:hi]
            row = code_lines[ln - 1]
            code_lines[ln - 1] = row[:lo] + " " * (hi - lo) + row[hi:]
            if keep_as_comment:
                comment_lines[ln - 1] += segment

    for tok in tu.get_tokens(extent=tu.cursor.extent):
        if tok.kind == ci.TokenKind.COMMENT:
            s, e = tok.extent.start, tok.extent.end
            blank((s.line, s.column), (e.line, e.column), True)
        elif tok.kind == ci.TokenKind.LITERAL and (
                tok.spelling.startswith('"') or tok.spelling.startswith("'")
                or tok.spelling.startswith('R"')):
            s, e = tok.extent.start, tok.extent.end
            blank((s.line, s.column), (e.line, e.column), False)
    return code_lines, comment_lines


def lex_file(path, text, engine):
    if engine == "clang":
        return _lex_clang(path, text)
    return _lex_token(text)


def resolve_engine(requested, quiet=False):
    """auto → clang if python bindings import, else token (announced)."""
    if requested == "token":
        return "token"
    try:
        import clang.cindex  # noqa: F401
        clang.cindex.Index.create()
        return "clang"
    except Exception as exc:  # pragma: no cover — environment-dependent
        if requested == "clang":
            raise SystemExit(
                "pmte-lint: --engine clang requested but libclang is "
                "unavailable (%s)" % exc)
        if not quiet:
            print("pmte-lint: libclang unavailable, using token engine",
                  file=sys.stderr)
        return "token"


# --------------------------------------------------------------------------
# Rule application.

def parse_waivers(comment_lines, code_lines):
    """Map line number (1-based) → {rule_id: reason}; bad waivers become
    findings.  A waiver on a comment-only line covers the next code line."""
    waivers = {}
    bad = []
    pending = {}  # comment-only-line waivers waiting for the next code line
    for idx, comment in enumerate(comment_lines):
        lineno = idx + 1
        has_code = bool(code_lines[idx].strip())
        line_waivers = {}
        for m in WAIVER_RE.finditer(comment):
            rule_id = "unordered-container" if m.group(1) else m.group(3)
            reason = (m.group(2) if m.group(1) else m.group(4)).strip()
            if rule_id not in RULE_IDS:
                bad.append((lineno, "waiver names unknown rule '%s'" % rule_id))
                continue
            if not reason:
                bad.append((lineno, "waiver for '%s' has an empty reason — "
                                    "say why the pattern is safe" % rule_id))
                continue
            line_waivers[rule_id] = reason
        if has_code:
            if pending:
                waivers.setdefault(lineno, {}).update(pending)
                pending = {}
            if line_waivers:
                waivers.setdefault(lineno, {}).update(line_waivers)
        elif line_waivers:
            pending.update(line_waivers)
    return waivers, bad


def lint_text(relpath, text, engine, rules=None):
    """Lint one file's contents; relpath decides rule scoping."""
    code_lines, comment_lines = lex_file(relpath, text, engine)
    waivers, bad_waivers = parse_waivers(comment_lines, code_lines)
    findings = [Finding(relpath, ln, "bad-waiver", msg)
                for ln, msg in bad_waivers]
    for rule in (rules or RULES):
        if not rule.applies_to(relpath):
            continue
        for idx, code in enumerate(code_lines):
            lineno = idx + 1
            if not any(p.search(code) for p in rule.patterns):
                continue
            if rule.id in waivers.get(lineno, {}):
                continue
            findings.append(Finding(relpath, lineno, rule.id, rule.summary,
                                    snippet=code))
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return findings


def iter_tree_files(roots):
    for root in roots:
        absroot = os.path.join(REPO_ROOT, root)
        if os.path.isfile(absroot):
            if absroot.endswith(CXX_EXTENSIONS):
                yield os.path.relpath(absroot, REPO_ROOT)
            continue
        for dirpath, dirnames, filenames in os.walk(absroot):
            dirnames[:] = sorted(d for d in dirnames if d != "lint_fixtures"
                                 and not d.startswith("build"))
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    yield os.path.relpath(os.path.join(dirpath, name),
                                          REPO_ROOT)


def lint_tree(roots, engine):
    findings = []
    scanned = 0
    for relpath in iter_tree_files(roots):
        with open(os.path.join(REPO_ROOT, relpath), encoding="utf-8") as fh:
            text = fh.read()
        findings.extend(lint_text(relpath, text, engine))
        scanned += 1
    return findings, scanned


# --------------------------------------------------------------------------
# Fixture self-test: each fixture declares its pretend repo path (so rule
# scoping is exercised) and marks expected findings with `expect-lint:`.

def self_test(engine):
    fixture_root = os.path.join(REPO_ROOT, FIXTURE_DIR)
    if not os.path.isdir(fixture_root):
        print("pmte-lint: fixture directory missing: %s" % FIXTURE_DIR)
        return 1
    failures = 0
    total = 0
    for dirpath, dirnames, filenames in os.walk(fixture_root):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(CXX_EXTENSIONS):
                continue
            total += 1
            path = os.path.join(dirpath, name)
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
            m = FIXTURE_PATH_RE.search(text)
            if not m:
                print("FAIL %s: missing 'pmte-lint-fixture-path:' header"
                      % os.path.relpath(path, REPO_ROOT))
                failures += 1
                continue
            pretend = m.group(1)
            expected = set()
            for idx, line in enumerate(text.split("\n")):
                em = EXPECT_RE.search(line)
                if em:
                    for rule_id in re.split(r"\s*,\s*", em.group(1)):
                        expected.add((idx + 1, rule_id))
            got = {(f.line, f.rule_id)
                   for f in lint_text(pretend, text, engine)}
            rel = os.path.relpath(path, REPO_ROOT)
            if got == expected:
                print("ok   %s (%d expected findings)" % (rel, len(expected)))
            else:
                failures += 1
                print("FAIL %s" % rel)
                for line, rule_id in sorted(expected - got):
                    print("  missing: line %d [%s]" % (line, rule_id))
                for line, rule_id in sorted(got - expected):
                    print("  spurious: line %d [%s]" % (line, rule_id))
    print("self-test: %d fixtures, %d failures (engine=%s)"
          % (total, failures, engine))
    return 1 if failures or total == 0 else 0


def main(argv):
    parser = argparse.ArgumentParser(
        prog="pmte_lint.py",
        description="determinism static analysis for the pmte tree")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: %s)"
                             % " ".join(DEFAULT_ROOTS))
    parser.add_argument("--engine", choices=("auto", "token", "clang"),
                        default="auto")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table as JSON and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run the tests/lint_fixtures/ suite")
    args = parser.parse_args(argv)

    if args.list_rules:
        engine = resolve_engine(args.engine, quiet=True)
        print(json.dumps({"engine": engine,
                          "waiver_syntax": [
                              "// pmte-lint: ordered-ok(<reason>)",
                              "// pmte-lint: allow(<rule-id>: <reason>)"],
                          "rules": [r.describe() for r in RULES]}, indent=2))
        return 0

    engine = resolve_engine(args.engine)
    if args.self_test:
        return self_test(engine)

    roots = args.paths or list(DEFAULT_ROOTS)
    findings, scanned = lint_tree(roots, engine)
    for f in findings:
        print(f.render())
    status = "clean" if not findings else "%d finding(s)" % len(findings)
    print("pmte-lint: scanned %d files, %s (engine=%s)"
          % (scanned, status, engine))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
