#!/usr/bin/env bash
# Run the curated clang-tidy gate (.clang-tidy) over the compilation
# database, with a content-addressed per-TU result cache so CI reruns only
# pay for translation units whose inputs actually changed.
#
# Usage:
#   scripts/run_clang_tidy.sh [BUILD_DIR]
#
# BUILD_DIR defaults to ./build and must contain compile_commands.json
# (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON — the top-level
# CMakeLists.txt sets it unconditionally).
#
# Environment:
#   CLANG_TIDY        clang-tidy binary (default: clang-tidy)
#   PMTE_TIDY_JOBS    parallel TU jobs (default: nproc)
#   PMTE_TIDY_CACHE   cache directory (default: BUILD_DIR/clang-tidy-cache)
#
# Cache key per TU: sha256 over clang-tidy --version, the .clang-tidy
# config, the TU's compile command, and the preprocessed source the TU
# actually sees (so edits to headers invalidate their includers).  A key
# file exists iff that TU passed cleanly; findings always re-run.

set -euo pipefail

root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-"${root}/build"}"
clang_tidy="${CLANG_TIDY:-clang-tidy}"
jobs="${PMTE_TIDY_JOBS:-$(nproc)}"
cache_dir="${PMTE_TIDY_CACHE:-"${build_dir}/clang-tidy-cache"}"

db="${build_dir}/compile_commands.json"
if [ ! -f "${db}" ]; then
  echo "error: ${db} not found — configure cmake first (CMAKE_EXPORT_COMPILE_COMMANDS is ON by default)" >&2
  exit 2
fi
if ! command -v "${clang_tidy}" >/dev/null 2>&1; then
  echo "error: '${clang_tidy}' not found on PATH; install clang-tidy or set CLANG_TIDY" >&2
  exit 2
fi

tidy_version="$("${clang_tidy}" --version | tr -d '\n')"
config_hash="$(sha256sum "${root}/.clang-tidy" | cut -d' ' -f1)"
mkdir -p "${cache_dir}"

# TUs under src/ only: that is the shipped library + apps surface.  Tests
# and benches build under the same -Werror flags but lean on gtest macros
# that trip bugprone checks with no actionable signal.
mapfile -t files < <(python3 - "${db}" "${root}" <<'PY'
import json, sys
db_path, root = sys.argv[1], sys.argv[2]
seen = set()
for entry in json.load(open(db_path)):
    f = entry["file"]
    if f.startswith(root + "/src/") and f not in seen:
        seen.add(f)
        print(f)
PY
)
if [ "${#files[@]}" -eq 0 ]; then
  echo "error: no src/ translation units in ${db}" >&2
  exit 2
fi

check_one() {
  # $1 = source file.  Exit 0 on clean (cached or fresh), 1 on findings.
  local src="$1" key keyfile
  key="$(
    {
      printf '%s\n%s\n' "${tidy_version}" "${config_hash}"
      python3 - "${db}" "${src}" <<'PY'
import json, sys
db_path, src = sys.argv[1], sys.argv[2]
for entry in json.load(open(db_path)):
    if entry["file"] == src:
        print(entry.get("command") or " ".join(entry["arguments"]))
        break
PY
      # Preprocess to fold in every header this TU includes; fall back to
      # the raw source if preprocessing fails (still a sound, coarser key).
      g++ -std=c++20 -E -P -I"${root}" "${src}" 2>/dev/null || cat "${src}"
    } | sha256sum | cut -d' ' -f1
  )"
  keyfile="${cache_dir}/${key}"
  if [ -f "${keyfile}" ]; then
    echo "cached  ${src#"${root}"/}"
    return 0
  fi
  if "${clang_tidy}" -p "${build_dir}" --quiet "${src}"; then
    touch "${keyfile}"
    echo "clean   ${src#"${root}"/}"
    return 0
  fi
  echo "FAILED  ${src#"${root}"/}" >&2
  return 1
}
export -f check_one
export db root build_dir cache_dir clang_tidy tidy_version config_hash

echo "clang-tidy gate: ${#files[@]} TUs, ${jobs} jobs (${tidy_version})"
status=0
if ! printf '%s\0' "${files[@]}" \
    | xargs -0 -n1 -P "${jobs}" bash -c 'check_one "$1"' _; then
  status=1
fi

if [ "${status}" -ne 0 ]; then
  echo "clang-tidy gate: FAILED — fix the findings or add a reasoned check disable in .clang-tidy" >&2
  exit 1
fi
echo "clang-tidy gate: clean"
