#!/usr/bin/env python3
"""Diff deterministic WorkDepth counters against the committed baseline.

The MBF engine counts relaxations, edges touched, semiring work, and depth
as logical operations, so `bench_micro_ops --counters` produces the exact
same numbers on every machine, compiler, and thread count.  That makes a
hard CI gate possible: any scenario whose counter grows by more than
--tolerance (default 5%) over the committed baseline fails the build — no
noise margins, no flaky timing thresholds.

Usage:
  scripts/check_bench_regression.py \
      --baseline BENCH_micro_ops.json \
      --current  bench-out/BENCH_micro_ops.json \
      [--tolerance 0.05]

Both files may be either the raw `--counters` output
({"schema": 1, "scenarios": {...}}) or a scripts/run_benches.sh wrapper
that embeds it under the "counters" key.

Exit status: 0 = within tolerance, 1 = regression (or malformed input).
After an intentional algorithmic change, regenerate the baseline with
  build/bench/bench_<name> --counters      (see scripts/run_benches.sh)
and commit the updated BENCH_<name>.json.  Gated baselines: micro_ops
(engine micro scenarios), le_lists and frt_pipelines (the sparse oracle /
FRT pipeline scenarios), serve (ensemble build work + batch-query
counters: queries, per-tree lookups, sparse-table LCA probes, hot-pair
cache misses), server (the many-tenant scenario: per-tenant cumulative
query counters across interleaved streams and a mid-stream epoch
hot-swap), and the application query paths — kmedian, buyatbulk,
sketches (tree_node_visits = FrtTree pointer chases, zero on the flat
serving paths; tree_lookups / lca_probes = flat index reads / RMQ probes).
cache_conflicts (misses that bypassed the cache because another pair owns
the slot) is gated like cache_misses: growth means the hot set stopped
fitting.  bulk_bytes_copied gates the load path: the copied-load scenario
pins how many payload bytes a stream load moves, and the mapped-load
baseline is 0 — ANY copied byte on the mmap path fails the gate (a zero
baseline allows zero growth), which is the zero-copy contract in CI form.
cache_hits, sections_copied/sections_mapped, and result_hash32 are emitted
but deliberately NOT gated: hits growing is an improvement, the section
counts are structural (a format change legitimately moves them), and the
hashes pin served values whose every drift should be reviewed in the JSON
diff rather than thresholded.
"""

import argparse
import json
import sys

GATED_METRICS = ("relaxations", "edges_touched", "work", "depth",
                 "iterations", "base_iterations",
                 "queries", "tree_lookups", "lca_probes",
                 "tree_node_visits", "cache_misses", "cache_conflicts",
                 "bulk_bytes_copied")


def load_scenarios(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if "counters" in doc:  # run_benches.sh wrapper
        doc = doc["counters"]
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        raise ValueError(f"{path}: no counter scenarios found "
                         "(expected .scenarios or .counters.scenarios)")
    return scenarios


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSON (e.g. BENCH_micro_ops.json)")
    ap.add_argument("--current", required=True,
                    help="freshly produced counters JSON")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="maximum allowed relative growth per counter "
                         "(default 0.05 = 5%%)")
    args = ap.parse_args()

    try:
        baseline = load_scenarios(args.baseline)
        current = load_scenarios(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1

    regressions = []
    improvements = []
    for name, base_metrics in sorted(baseline.items()):
        cur_metrics = current.get(name)
        if cur_metrics is None:
            regressions.append(f"{name}: scenario missing from current run")
            continue
        for metric in GATED_METRICS:
            if metric not in base_metrics:
                continue
            base = base_metrics[metric]
            cur = cur_metrics.get(metric)
            if cur is None:
                regressions.append(f"{name}.{metric}: missing from current run")
                continue
            limit = base * (1.0 + args.tolerance)
            if cur > limit:
                pct = 100.0 * (cur - base) / base if base else float("inf")
                regressions.append(
                    f"{name}.{metric}: {base} -> {cur} (+{pct:.1f}%, "
                    f"limit +{100.0 * args.tolerance:.1f}%)")
            elif cur < base:
                pct = 100.0 * (base - cur) / base
                improvements.append(
                    f"{name}.{metric}: {base} -> {cur} (-{pct:.1f}%)")

    new_scenarios = sorted(set(current) - set(baseline))
    if new_scenarios:
        print("note: scenarios not in baseline (add them by regenerating "
              f"the baseline): {', '.join(new_scenarios)}")
    for line in improvements:
        print(f"improved: {line}")
    if regressions:
        print(f"\n{len(regressions)} counter regression(s) beyond "
              f"{100.0 * args.tolerance:.1f}%:", file=sys.stderr)
        for line in regressions:
            print(f"  REGRESSION {line}", file=sys.stderr)
        print("\nIf the growth is an intentional algorithmic change, "
              "regenerate and commit the baseline "
              "(bench_micro_ops --counters).", file=sys.stderr)
        return 1
    print(f"bench gate OK: {len(baseline)} scenarios within "
          f"{100.0 * args.tolerance:.1f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
