#!/usr/bin/env python3
"""Diff deterministic WorkDepth counters against the committed baseline.

The MBF engine counts relaxations, edges touched, semiring work, and depth
as logical operations, so `bench_micro_ops --counters` produces the exact
same numbers on every machine, compiler, and thread count.  That makes a
hard CI gate possible: any scenario whose counter grows by more than
--tolerance (default 5%) over the committed baseline fails the build — no
noise margins, no flaky timing thresholds.

Usage:
  scripts/check_bench_regression.py \
      --baseline BENCH_micro_ops.json \
      --current  bench-out/BENCH_micro_ops.json \
      [--tolerance 0.05]
  scripts/check_bench_regression.py --self-test

Both files may be either the raw `--counters` output
({"schema": 1, "scenarios": {...}}) or a scripts/run_benches.sh wrapper
that embeds it under the "counters" key.

Every key is classified, and the class decides the policy:

  gated          logical counters — fail the build on >tolerance growth;
                 a zero baseline allows zero growth (the bulk_bytes_copied
                 zero-copy contract in CI form).
  ungated        emitted for review, never thresholded: improvements
                 (cache_hits), structural counts (sections_*, trees,
                 index_nodes, the oracle level-outcome split), lifecycle
                 values (epoch, ensembles_resident, epochs_retired), and
                 result_hash32 — the hash pins served doubles bit-for-bit
                 and any drift should be reviewed in the JSON diff, not
                 thresholded.
  informational  wall-time keys (`*_ns/_us/_ms/_seconds`, optionally with
                 a `_pNN` percentile suffix — the obs-layer latency
                 percentiles): machine-dependent by nature, so drift only
                 warns, it never fails.
  unknown        a hard error in either file.  A typo'd or unclassified
                 key silently bypassing the gate is exactly the failure
                 mode this prevents: adding a bench key now requires
                 deciding its class here.

Exit status: 0 = within tolerance, 1 = regression, unknown key, or
malformed input.  After an intentional algorithmic change, regenerate the
baseline with `build/bench/bench_<name> --counters` (see
scripts/run_benches.sh) and commit the updated BENCH_<name>.json.
"""

import argparse
import json
import re
import sys

GATED_METRICS = frozenset((
    "relaxations", "edges_touched", "work", "depth",
    "iterations", "base_iterations",
    "queries", "tree_lookups", "lca_probes",
    "tree_node_visits", "cache_misses", "cache_conflicts",
    "bulk_bytes_copied",
))

KNOWN_UNGATED = frozenset((
    "cache_hits", "cache_admissions", "result_hash32",
    "sections_copied", "sections_mapped",
    "index_nodes", "trees",
    "levels_skipped", "levels_warm", "levels_full",
    "levels_recomputed", "trees_rebuilt", "incremental",
    "epoch", "ensembles_resident", "epochs_retired",
))

# Wall-time keys: a time-unit suffix, optionally followed by a percentile
# (batch_ns_p50), or a bare percentile suffix.
INFORMATIONAL_RE = re.compile(
    r".*_(?:ns|us|ms|seconds)(?:_p\d{1,3})?$|.*_p\d{1,3}$")


def classify(key):
    if key in GATED_METRICS:
        return "gated"
    if key in KNOWN_UNGATED:
        return "ungated"
    if INFORMATIONAL_RE.fullmatch(key):
        return "informational"
    return "unknown"


def load_scenarios(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if "counters" in doc:  # run_benches.sh wrapper
        doc = doc["counters"]
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        raise ValueError(f"{path}: no counter scenarios found "
                         "(expected .scenarios or .counters.scenarios)")
    return scenarios


def compare(baseline, current, tolerance):
    """Classify and diff every key.  Returns (regressions, improvements,
    warnings, unknowns) as printable strings; regressions or unknowns
    being non-empty means the gate fails."""
    regressions = []
    improvements = []
    warnings = []
    unknowns = []

    for name in sorted(set(baseline) | set(current)):
        for metric in sorted(set(baseline.get(name, {})) |
                             set(current.get(name, {}))):
            if classify(metric) == "unknown":
                unknowns.append(
                    f"{name}.{metric}: unknown key — classify it in "
                    "scripts/check_bench_regression.py (gated, ungated, or "
                    "informational)")

    for name, base_metrics in sorted(baseline.items()):
        cur_metrics = current.get(name)
        if cur_metrics is None:
            regressions.append(f"{name}: scenario missing from current run")
            continue
        for metric, base in sorted(base_metrics.items()):
            kind = classify(metric)
            cur = cur_metrics.get(metric)
            if kind == "gated":
                if cur is None:
                    regressions.append(
                        f"{name}.{metric}: missing from current run")
                    continue
                limit = base * (1.0 + tolerance)
                if cur > limit:
                    pct = (100.0 * (cur - base) / base if base
                           else float("inf"))
                    regressions.append(
                        f"{name}.{metric}: {base} -> {cur} (+{pct:.1f}%, "
                        f"limit +{100.0 * tolerance:.1f}%)")
                elif cur < base:
                    pct = 100.0 * (base - cur) / base
                    improvements.append(
                        f"{name}.{metric}: {base} -> {cur} (-{pct:.1f}%)")
            elif kind == "informational":
                if cur is not None and cur != base:
                    warnings.append(
                        f"{name}.{metric}: {base} -> {cur} "
                        "(informational, not gated)")
            # ungated keys: reviewed through the JSON diff, nothing to do.

    return regressions, improvements, warnings, unknowns


def run_gate(baseline_path, current_path, tolerance):
    try:
        baseline = load_scenarios(baseline_path)
        current = load_scenarios(current_path)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1

    regressions, improvements, warnings, unknowns = compare(
        baseline, current, tolerance)

    new_scenarios = sorted(set(current) - set(baseline))
    if new_scenarios:
        print("note: scenarios not in baseline (add them by regenerating "
              f"the baseline): {', '.join(new_scenarios)}")
    for line in improvements:
        print(f"improved: {line}")
    for line in warnings:
        print(f"warning: {line}")
    if unknowns:
        print(f"\n{len(unknowns)} unknown counter key(s):", file=sys.stderr)
        for line in unknowns:
            print(f"  UNKNOWN {line}", file=sys.stderr)
    if regressions:
        print(f"\n{len(regressions)} counter regression(s) beyond "
              f"{100.0 * tolerance:.1f}%:", file=sys.stderr)
        for line in regressions:
            print(f"  REGRESSION {line}", file=sys.stderr)
        print("\nIf the growth is an intentional algorithmic change, "
              "regenerate and commit the baseline "
              "(bench_micro_ops --counters).", file=sys.stderr)
    if regressions or unknowns:
        return 1
    print(f"bench gate OK: {len(baseline)} scenarios within "
          f"{100.0 * tolerance:.1f}% of baseline")
    return 0


def self_test():
    """Unit-test the classification and comparison logic on synthetic
    scenarios (invoked from CTest as bench_gate_selftest)."""
    failures = []

    def check(label, cond):
        if not cond:
            failures.append(label)

    # Classification table.
    check("gated key", classify("relaxations") == "gated")
    check("ungated key", classify("result_hash32") == "ungated")
    check("latency percentile", classify("batch_ns_p50") == "informational")
    check("bare time unit", classify("build_ms") == "informational")
    check("seconds unit", classify("elapsed_seconds") == "informational")
    check("bare percentile", classify("stretch_p99") == "informational")
    check("unknown key", classify("typo_counter") == "unknown")
    check("unknown prefix of gated",
          classify("relaxations_extra") == "unknown")

    def diff(base, cur, tolerance=0.05):
        return compare({"s": base}, {"s": cur}, tolerance)

    # Gated growth beyond tolerance fails.
    reg, imp, warn, unk = diff({"work": 100}, {"work": 106})
    check("gated regression detected", len(reg) == 1 and not unk)
    # Growth within tolerance passes.
    reg, imp, warn, unk = diff({"work": 100}, {"work": 105})
    check("tolerated growth passes", not reg)
    # Improvement passes and is reported.
    reg, imp, warn, unk = diff({"work": 100}, {"work": 90})
    check("improvement passes", not reg and len(imp) == 1)
    # Zero baseline allows zero growth only.
    reg, imp, warn, unk = diff({"bulk_bytes_copied": 0},
                               {"bulk_bytes_copied": 1})
    check("zero baseline gates any growth", len(reg) == 1)
    reg, imp, warn, unk = diff({"bulk_bytes_copied": 0},
                               {"bulk_bytes_copied": 0})
    check("zero baseline passes at zero", not reg)
    # Informational drift warns but never fails.
    reg, imp, warn, unk = diff({"batch_ns_p99": 1000},
                               {"batch_ns_p99": 900000})
    check("informational drift warns only",
          not reg and not unk and len(warn) == 1)
    # Unknown keys hard-error, from either side.
    reg, imp, warn, unk = diff({"mystery": 1}, {})
    check("unknown key in baseline errors", len(unk) == 1)
    reg, imp, warn, unk = diff({}, {"mystery": 1})
    check("unknown key in current errors", len(unk) == 1)
    # A gated key missing from the current run fails.
    reg, imp, warn, unk = diff({"queries": 5}, {"result_hash32": 1})
    check("missing gated key fails", any("missing" in r for r in reg))
    # A missing scenario fails.
    reg, imp, warn, unk = compare({"gone": {"work": 1}}, {}, 0.05)
    check("missing scenario fails", len(reg) == 1)
    # Ungated drift is silent.
    reg, imp, warn, unk = diff({"cache_hits": 10}, {"cache_hits": 0})
    check("ungated drift is silent", not reg and not warn and not unk)
    # Every key currently emitted by the benches must classify.
    emitted = GATED_METRICS | KNOWN_UNGATED | {
        "batch_ns_p50", "batch_ns_p95", "batch_ns_p99"}
    for key in sorted(emitted):
        check(f"key {key} classifies", classify(key) != "unknown")

    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL: {f}", file=sys.stderr)
        return 1
    print("bench gate self-test OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline",
                    help="committed baseline JSON (e.g. BENCH_micro_ops.json)")
    ap.add_argument("--current",
                    help="freshly produced counters JSON")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="maximum allowed relative growth per gated counter "
                         "(default 0.05 = 5%%)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in unit tests and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        ap.error("--baseline and --current are required "
                 "(or use --self-test)")
    return run_gate(args.baseline, args.current, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
