#!/usr/bin/env python3
"""Fail on dead relative links and dead #anchors in the repo's markdown.

Scans every tracked *.md file (the repo root and docs/, excluding build
trees) for inline markdown links and images `[text](target)`, and checks:

  targets    — each *relative* target exists on disk.  External links
               (http/https/mailto) and absolute paths are skipped — this
               is a repo-consistency check, not a crawler.
  fragments  — each `#anchor` fragment (in-page `#section` links and
               cross-file `docs/FORMAT.md#header` links into markdown
               files) names a real heading of the target document.
               Anchors are derived GitHub-style: lowercase, punctuation
               stripped, spaces become hyphens, repeated headings get
               -1/-2/... suffixes; fenced code blocks are ignored, so a
               `# comment` inside a transcript is not a heading.

Usage:
  scripts/check_docs_links.py [--root DIR]

Exit status: 0 = all relative links and anchors resolve, 1 = at least one
is dead (each is printed as file:line: target).  Run locally before
committing doc changes; CI runs it as the docs-links job.
"""

import argparse
import os
import re
import sys

# Inline links/images; deliberately simple — no reference-style links are
# used in this repo.  Group 1 is the target inside the parentheses.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")

SKIP_PREFIXES = ("http://", "https://", "mailto:")
SKIP_DIRS = {".git", "build", ".ccache", "bench-out"}


def github_slug(heading):
    """GitHub's anchor id for a heading (before duplicate suffixing)."""
    # Inline links contribute their text, not their target; emphasis and
    # code markers are punctuation and fall to the strip below.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    slug = text.strip().lower()
    slug = re.sub(r"[^\w\s-]", "", slug)
    return re.sub(r"\s", "-", slug)


def document_anchors(path):
    """All anchor ids of a markdown file, fenced code blocks excluded."""
    anchors = set()
    counts = {}
    in_fence = False
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def iter_markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in SKIP_DIRS and not d.startswith("build")]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root, anchor_cache):
    def anchors_of(md_path):
        key = os.path.normpath(md_path)
        if key not in anchor_cache:
            anchor_cache[key] = document_anchors(key)
        return anchor_cache[key]

    dead = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_PREFIXES):
                    continue
                if os.path.isabs(target):
                    continue
                rel = os.path.relpath(path, root)
                target_path, _, fragment = target.partition("#")
                if target_path:
                    resolved = os.path.normpath(
                        os.path.join(os.path.dirname(path), target_path))
                    if not os.path.exists(resolved):
                        dead.append(f"{rel}:{lineno}: {target}")
                        continue
                else:
                    resolved = path  # pure in-page anchor
                if fragment and resolved.endswith(".md"):
                    if fragment not in anchors_of(resolved):
                        dead.append(f"{rel}:{lineno}: {target} "
                                    f"(no such anchor)")
    return dead


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repository root to scan (default: cwd)")
    args = ap.parse_args()

    dead = []
    files = 0
    anchor_cache = {}
    for path in iter_markdown_files(args.root):
        files += 1
        dead.extend(check_file(path, args.root, anchor_cache))

    if dead:
        print(f"{len(dead)} dead relative link(s)/anchor(s):",
              file=sys.stderr)
        for entry in dead:
            print(f"  DEAD {entry}", file=sys.stderr)
        return 1
    print(f"docs links OK: {files} markdown files, all relative links "
          "and anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
