#!/usr/bin/env python3
"""Fail on dead relative links in the repository's markdown files.

Scans every tracked *.md file (the repo root and docs/, excluding build
trees) for inline markdown links and images `[text](target)`, and checks
that each *relative* target exists on disk.  External links (http/https/
mailto), pure in-page anchors (#...), and absolute paths are skipped —
this is a repo-consistency check, not a crawler.  Targets may carry a
#fragment (README.md#serving) and an optional `path:line` suffix is NOT
treated specially: link to files, not lines.

Usage:
  scripts/check_docs_links.py [--root DIR]

Exit status: 0 = all relative links resolve, 1 = at least one is dead
(each dead link is printed as file:line: target).  Run locally before
committing doc changes; CI runs it as the docs-links job.
"""

import argparse
import os
import re
import sys

# Inline links/images; deliberately simple — no reference-style links are
# used in this repo.  Group 1 is the target inside the parentheses.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
SKIP_DIRS = {".git", "build", ".ccache", "bench-out"}


def iter_markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in SKIP_DIRS and not d.startswith("build")]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    dead = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_PREFIXES):
                    continue
                if os.path.isabs(target):
                    continue
                # Drop an in-page fragment: docs/FORMAT.md#header.
                target_path = target.split("#", 1)[0]
                if not target_path:
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), target_path))
                if not os.path.exists(resolved):
                    rel = os.path.relpath(path, root)
                    dead.append(f"{rel}:{lineno}: {target}")
    return dead


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repository root to scan (default: cwd)")
    args = ap.parse_args()

    dead = []
    files = 0
    for path in iter_markdown_files(args.root):
        files += 1
        dead.extend(check_file(path, args.root))

    if dead:
        print(f"{len(dead)} dead relative link(s):", file=sys.stderr)
        for entry in dead:
            print(f"  DEAD {entry}", file=sys.stderr)
        return 1
    print(f"docs links OK: {files} markdown files, all relative links "
          "resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
