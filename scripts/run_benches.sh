#!/usr/bin/env bash
# Run the experiment benches and emit one BENCH_<name>.json per binary.
#
# Usage:
#   scripts/run_benches.sh [--build-dir=build] [--out-dir=.] \
#                          [--scale=small|full] [--filter=REGEX]
#
# Each BENCH_<name>.json records the bench name, scale, exit code, wall
# time, and the full (markdown-table) stdout, so the benchmark trajectory
# across PRs can be diffed mechanically.  bench_micro_ops additionally
# embeds its deterministic WorkDepth counter report under .counters (the
# CI bench-gate baseline, see scripts/check_bench_regression.py) and — when
# built with google-benchmark — that library's native JSON report under
# .google_benchmark.

set -euo pipefail

# Numeric formatting (awk %.3f, jq --argjson) must use '.' decimals
# regardless of the caller's locale.
export LC_ALL=C

BUILD_DIR=build
OUT_DIR=.
SCALE=small
FILTER=.

for arg in "$@"; do
  case "$arg" in
    --build-dir=*) BUILD_DIR="${arg#*=}" ;;
    --out-dir=*)   OUT_DIR="${arg#*=}" ;;
    --scale=*)     SCALE="${arg#*=}" ;;
    --filter=*)    FILTER="${arg#*=}" ;;
    -h|--help)     sed -n '2,12p' "$0"; exit 0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

if ! command -v jq >/dev/null; then
  echo "run_benches.sh: jq is required to assemble the JSON reports" >&2
  exit 1
fi

BENCH_DIR="$BUILD_DIR/bench"
if [ ! -d "$BENCH_DIR" ]; then
  echo "run_benches.sh: $BENCH_DIR not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j --target benches" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
failures=0
ran=0

for bin in "$BENCH_DIR"/bench_*; do
  [ -f "$bin" ] && [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  echo "$name" | grep -Eq "$FILTER" || continue
  ran=$((ran + 1))

  out_file="$OUT_DIR/BENCH_${name#bench_}.json"
  tmp_out="$(mktemp)"
  gb_json="$(mktemp)"
  ctr_json="$(mktemp)"

  echo "== $name (scale=$SCALE) =="
  start_s="$(date +%s.%N)"
  status=0
  if [ "$name" = "bench_micro_ops" ]; then
    # Deterministic counter report first (the CI gate baseline), then the
    # google-benchmark timings (the binary prints {} when built without
    # the library); no --scale flag.
    "$bin" --counters >"$ctr_json" 2>"$tmp_out" || status=$?
    if [ "$status" -eq 0 ]; then
      "$bin" --benchmark_format=json >"$gb_json" 2>>"$tmp_out" || status=$?
    else
      echo '{}' >"$gb_json"
    fi
  else
    case "$name" in
      # Benches with a deterministic counter mode (the CI gate baselines,
      # see bench_common.hpp): embed the --counters report, then run the
      # regular markdown-table sweep.
      bench_dynamic|bench_le_lists|bench_frt_pipelines|bench_serve|bench_server|bench_kmedian|bench_buyatbulk|bench_sketches)
        "$bin" --counters >"$ctr_json" 2>"$tmp_out" || status=$?
        ;;
      *)
        echo '{}' >"$ctr_json"
        ;;
    esac
    if [ "$status" -eq 0 ]; then
      "$bin" --scale="$SCALE" >"$tmp_out" 2>&1 || status=$?
    fi
    echo '{}' >"$gb_json"
  fi
  end_s="$(date +%s.%N)"
  seconds="$(echo "$end_s $start_s" | awk '{printf "%.3f", $1 - $2}')"

  if ! jq -n \
    --arg bench "$name" \
    --arg scale "$SCALE" \
    --argjson exit_code "$status" \
    --argjson seconds "$seconds" \
    --rawfile output "$tmp_out" \
    --slurpfile gb "$gb_json" \
    --slurpfile ctr "$ctr_json" \
    '{bench: $bench, scale: $scale, exit_code: $exit_code,
      seconds: $seconds, output: $output}
     + (if ($ctr[0] | length) > 0 then {counters: $ctr[0]} else {} end)
     + (if ($gb[0] | length) > 0 then {google_benchmark: $gb[0]} else {} end)' \
    >"$out_file"; then
    echo "   FAILED to assemble $out_file" >&2
    status=1
  fi

  rm -f "$tmp_out" "$gb_json" "$ctr_json"
  if [ "$status" -ne 0 ]; then
    echo "   FAILED (exit $status) — see $out_file" >&2
    failures=$((failures + 1))
  else
    echo "   ok (${seconds}s) -> $out_file"
  fi
done

if [ "$ran" -eq 0 ]; then
  echo "run_benches.sh: no bench binaries matched filter '$FILTER'" >&2
  exit 1
fi

echo
echo "ran $ran benches, $failures failed"
exit "$((failures > 0))"
