// E4 — depth/work comparison of the FRT sampling pipelines (Section 7.4).
//
// Claims: the oracle pipeline (Theorem 7.9 / Corollary 7.10) needs only
// polylog(n) top-level iterations where direct iteration pays Θ(SPD(G)),
// and its work stays subquadratic where the metric pipeline (Blelloch et
// al.) pays Ω(n²).  Columns report iteration counts (depth proxy),
// semiring operations (work proxy), relaxations, and wall time.
//
// `--counters` instead emits deterministic WorkDepth scenarios for the CI
// bench gate: full FRT sampling through the level-reusing oracle on the
// 2048-path / 45×45-grid, plus reuse-vs-reference at 512 so the saved
// relaxations stay visible in the committed baseline.

#include <cmath>

#include "bench/bench_common.hpp"
#include "src/frt/pipelines.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/parallel/counters.hpp"

namespace pmte::bench {
namespace {

CounterScenario frt_oracle_scenario(const std::string& name, const Graph& g,
                                    std::uint64_t seed, bool level_reuse) {
  Rng rng(seed);
  WorkDepth::reset();
  FrtOptions opts;
  opts.mbf.oracle_level_reuse = level_reuse;
  const WorkDepthScope scope;
  const auto s = sample_frt_oracle(g, rng, opts);
  return CounterScenario{name,
                         {{"relaxations", s.relaxations},
                          {"edges_touched", s.edges_touched},
                          {"work", s.work},
                          {"depth", scope.depth_delta()},
                          {"iterations", s.iterations},
                          {"base_iterations", s.base_iterations},
                          {"levels_skipped", s.levels_skipped},
                          {"levels_warm", s.levels_warm},
                          {"levels_full", s.levels_full}}};
}

CounterScenario frt_direct_scenario(const std::string& name, const Graph& g,
                                    std::uint64_t seed) {
  Rng rng(seed);
  WorkDepth::reset();
  const WorkDepthScope scope;
  const auto s = sample_frt_direct(g, rng);
  return CounterScenario{name,
                         {{"relaxations", s.relaxations},
                          {"edges_touched", s.edges_touched},
                          {"work", s.work},
                          {"depth", scope.depth_delta()},
                          {"iterations", s.iterations}}};
}

void run_counters() {
  std::vector<CounterScenario> scenarios;
  scenarios.push_back(
      frt_oracle_scenario("frt_oracle_path_2048", make_path(2048), 2001, true));
  scenarios.push_back(frt_oracle_scenario(
      "frt_oracle_grid_2025", make_grid(45, 45, {1.0, 2.0}, Rng(42)), 2002,
      true));
  scenarios.push_back(frt_oracle_scenario("frt_oracle_path_512_noreuse",
                                          make_path(512), 2003, false));
  scenarios.push_back(
      frt_oracle_scenario("frt_oracle_path_512", make_path(512), 2003, true));
  scenarios.push_back(
      frt_direct_scenario("frt_direct_path_2048", make_path(2048), 2004));
  emit_counters(std::cout, scenarios);
}

void run(const Cli& cli) {
  print_header(
      "E4: pipeline depth & work",
      "Theorem 7.9 — polylog depth, ~O(m^(1+eps)) work vs Theta(SPD) "
      "iterations (direct, Khan et al.) and Omega(n^2) work (metric)");
  // Note: P-H pays the Θ̃(√n)-depth price of the hub hop-set substitution
  // (DESIGN.md §3), so its wall-clock only wins asymptotically; iteration
  // counts carry the paper's depth claim.  Sizes are kept moderate so the
  // whole sweep finishes in minutes.
  const std::vector<Vertex> sizes =
      quick(cli) ? std::vector<Vertex>{128, 256}
                 : std::vector<Vertex>{128, 256, 384};
  Rng rng(cli.seed());
  Table t({"family", "n", "pipeline", "iterations", "G'-iterations",
           "work [ops]", "relax", "time [ms]", "max |list|"});

  auto report = [&](const Instance& inst, const char* name,
                    const FrtSample& s) {
    t.add_row({inst.name, cell(std::size_t{inst.graph.num_vertices()}), name,
               cell(std::size_t{s.iterations}),
               cell(std::size_t{s.base_iterations}),
               cell(static_cast<double>(s.work)),
               cell(static_cast<std::size_t>(s.relaxations)),
               cell(s.seconds * 1e3), cell(s.max_list_length)});
  };

  for (const auto* family : {"path", "cliquechain", "gnm"}) {
    for (const Vertex n : sizes) {
      auto inst = make_instance(family, n, rng());
      const auto& g = inst.graph;

      report(inst, "P-G direct", sample_frt_direct(g, rng));
      report(inst, "P-H oracle", sample_frt_oracle(g, rng));
      {
        FrtOptions noreuse;
        noreuse.mbf.oracle_level_reuse = false;
        report(inst, "P-H no-reuse", sample_frt_oracle(g, rng, noreuse));
      }
      {
        // P-M: the Ω(n²) metric has to be produced first — its cost is
        // part of the pipeline (n Dijkstras here, a metric oracle in [10]).
        const Timer timer;
        const WorkDepthScope scope;
        const auto apsp = exact_apsp(g);
        auto s = sample_frt_metric(apsp, g.num_vertices(),
                                   g.min_edge_weight(), rng);
        s.seconds = timer.seconds();
        s.work = scope.work_delta() +
                 static_cast<std::uint64_t>(g.num_vertices()) *
                     g.num_vertices();
        report(inst, "P-M metric", s);
      }
      report(inst, "P-S sequential", sample_frt_sequential(g, rng));
    }
  }
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  if (pmte::bench::wants_counters(argc, argv)) {
    pmte::bench::run_counters();
    return 0;
  }
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
