// E4 — depth/work comparison of the FRT sampling pipelines (Section 7.4).
//
// Claims: the oracle pipeline (Theorem 7.9 / Corollary 7.10) needs only
// polylog(n) top-level iterations where direct iteration pays Θ(SPD(G)),
// and its work stays subquadratic where the metric pipeline (Blelloch et
// al.) pays Ω(n²).  Columns report iteration counts (depth proxy),
// semiring operations (work proxy) and wall time.

#include <cmath>

#include "bench/bench_common.hpp"
#include "src/frt/pipelines.hpp"
#include "src/graph/shortest_paths.hpp"
#include "src/parallel/counters.hpp"

namespace pmte::bench {
namespace {

void run(const Cli& cli) {
  print_header(
      "E4: pipeline depth & work",
      "Theorem 7.9 — polylog depth, ~O(m^(1+eps)) work vs Theta(SPD) "
      "iterations (direct, Khan et al.) and Omega(n^2) work (metric)");
  // Note: P-H pays the Θ̃(√n)-depth price of the hub hop-set substitution
  // (DESIGN.md §3), so its wall-clock only wins asymptotically; iteration
  // counts carry the paper's depth claim.  Sizes are kept moderate so the
  // whole sweep finishes in minutes.
  const std::vector<Vertex> sizes =
      quick(cli) ? std::vector<Vertex>{128, 256}
                 : std::vector<Vertex>{128, 256, 384};
  Rng rng(cli.seed());
  Table t({"family", "n", "pipeline", "iterations", "G'-iterations",
           "work [ops]", "time [ms]", "max |list|"});

  auto report = [&](const Instance& inst, const char* name,
                    const FrtSample& s) {
    t.add_row({inst.name, cell(std::size_t{inst.graph.num_vertices()}), name,
               cell(std::size_t{s.iterations}),
               cell(std::size_t{s.base_iterations}),
               cell(static_cast<double>(s.work)), cell(s.seconds * 1e3),
               cell(s.max_list_length)});
  };

  for (const auto* family : {"path", "cliquechain", "gnm"}) {
    for (const Vertex n : sizes) {
      auto inst = make_instance(family, n, rng());
      const auto& g = inst.graph;

      report(inst, "P-G direct", sample_frt_direct(g, rng));
      report(inst, "P-H oracle", sample_frt_oracle(g, rng));
      {
        // P-M: the Ω(n²) metric has to be produced first — its cost is
        // part of the pipeline (n Dijkstras here, a metric oracle in [10]).
        const Timer timer;
        const WorkDepthScope scope;
        const auto apsp = exact_apsp(g);
        auto s = sample_frt_metric(apsp, g.num_vertices(),
                                   g.min_edge_weight(), rng);
        s.seconds = timer.seconds();
        s.work = scope.work_delta() +
                 static_cast<std::uint64_t>(g.num_vertices()) *
                     g.num_vertices();
        report(inst, "P-M metric", s);
      }
      report(inst, "P-S sequential", sample_frt_sequential(g, rng));
    }
  }
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
