// E-dynamic — incremental FRT maintenance (src/serve/dynamic_ensemble.*):
// the cost of absorbing one edge-weight update into a retained oracle
// ensemble versus rebuilding the ensemble from scratch.
//
// Claims carried: a local weight decrease warm-restarts only the levels
// the change reaches (relaxations a small fraction of a rebuild — the
// <10%-of-rebuild figure is the headline of BENCH_dynamic.json), while an
// increase invalidates and re-runs every level, bounding the worst case by
// one fresh oracle build.  All counts are logical and thread-invariant;
// the maintained metric is pinned against the static build by
// tests/test_dynamic.cpp.
//
// `--counters` emits the deterministic scenarios for the CI bench gate
// (the ninth gated baseline, BENCH_dynamic.json): build work, update-path
// relaxations for a warm decrease and an invalidating increase, and the
// relaxation bill of the rebuild they are measured against.

#include <cstdio>
#include <iostream>
#include <utility>
#include <vector>

#include "bench/bench_common.hpp"
#include "src/parallel/counters.hpp"
#include "src/serve/dynamic_ensemble.hpp"
#include "src/serve/workloads.hpp"

namespace pmte::bench {
namespace {

serve::EnsembleOptions dynamic_options(std::size_t trees) {
  serve::EnsembleOptions opts;
  opts.trees = trees;
  opts.pipeline = serve::EnsemblePipeline::oracle;  // retained-oracle path
  return opts;
}

/// Append an UpdateStats row.  relaxations is the gate metric; the level
/// split and trees_rebuilt are ungated shape counters (see
/// scripts/check_bench_regression.py).
CounterScenario update_scenario(
    const std::string& name,
    const serve::DynamicEnsemble::UpdateStats& st) {
  return CounterScenario{name,
                         {{"relaxations", st.relaxations},
                          {"levels_recomputed", st.levels_recomputed},
                          {"levels_skipped", st.levels_skipped},
                          {"trees_rebuilt", st.trees_rebuilt},
                          {"incremental", st.incremental ? 1u : 0u}}};
}

void run_counters() {
  std::vector<CounterScenario> scenarios;
  Rng grng(42);
  const auto g = make_gnm(512, 1536, {1.0, 4.0}, grng);
  const std::uint64_t seed = 4001;
  constexpr std::size_t kTrees = 4;

  {
    const WorkDepthScope scope;
    serve::DynamicEnsemble dyn(g, seed, dynamic_options(kTrees));
    scenarios.push_back(
        CounterScenario{"dynamic_build_oracle_gnm_512",
                        {{"relaxations", scope.relaxations_delta()},
                         {"work", scope.work_delta()},
                         {"edges_touched", scope.edges_touched_delta()},
                         {"trees", kTrees}}});

    // One local decrease: the warm path touches only the levels the edge
    // reaches, so its relaxation bill must stay a small fraction of the
    // rebuild row below (<10% is the figure docs/DYNAMIC.md quotes).
    const auto& dec_edge = g.edge_list()[17];
    const auto dec = dyn.update(dec_edge.u, dec_edge.v,
                                g.edge_weight(dec_edge.u, dec_edge.v) * 0.5);
    scenarios.push_back(update_scenario("dynamic_update_local_decrease", dec));

    // One increase on another edge: invalidates and re-runs every level —
    // the worst case, bounded by one fresh oracle build.
    const auto& inc_edge = g.edge_list()[91];
    const auto inc =
        dyn.update(inc_edge.u, inc_edge.v,
                   dyn.graph().edge_weight(inc_edge.u, inc_edge.v) * 1.5);
    scenarios.push_back(
        update_scenario("dynamic_update_increase_invalidate", inc));

    // Pin the maintained metric's served doubles (ungated hash; the
    // bit-level contract lives in tests/test_dynamic.cpp).
    Rng wrng(4002);
    serve::WorkloadOptions wopts;
    wopts.pairs = 20000;
    const auto workload =
        serve::make_workload(g, serve::WorkloadKind::uniform, wopts, wrng);
    std::vector<Weight> out;
    const auto qs = dyn.snapshot().query_batch(
        workload, serve::AggregatePolicy::min, out);
    scenarios.push_back(CounterScenario{"dynamic_snapshot_query_uniform_min",
                                        {{"queries", qs.pairs},
                                         {"tree_lookups", qs.tree_lookups},
                                         {"result_hash32", result_hash32(out)}}});
  }

  // The rebuild both update rows are measured against: a fresh static
  // build on the post-update graph (same seed/options — the cost an
  // update-free deployment would pay per change).
  {
    Graph updated = g;
    const auto& e = g.edge_list()[17];
    updated.set_edge_weight(e.u, e.v, g.edge_weight(e.u, e.v) * 0.5);
    const auto built =
        serve::FrtEnsemble::build(updated, seed, dynamic_options(kTrees));
    const auto& st = built.build_stats();
    scenarios.push_back(
        CounterScenario{"dynamic_rebuild_reference_gnm_512",
                        {{"relaxations", st.relaxations},
                         {"work", st.work},
                         {"edges_touched", st.edges_touched},
                         {"iterations", st.iterations}}});
  }

  emit_counters(std::cout, scenarios);
}

void run(const Cli& cli) {
  print_header(
      "E-dynamic: incremental FRT maintenance",
      "a local weight decrease warm-restarts only the affected oracle "
      "levels (relaxations a small fraction of a rebuild); an increase "
      "invalidates and is bounded by one fresh build; snapshots stay "
      "bit-identical to the maintained metric at any thread count");
  const std::size_t trees = quick(cli) ? 2 : 4;
  Rng rng(cli.seed());
  Table t({"family", "n", "op", "relaxations", "levels", "time [ms]",
           "vs rebuild"});
  for (const Vertex n : quick(cli)
                            ? std::vector<Vertex>{256, 512}
                            : std::vector<Vertex>{256, 512, 1024, 2048}) {
    auto inst = make_instance("gnm", n, rng());
    const std::uint64_t seed = rng();
    const auto opts = dynamic_options(trees);

    const Timer build_t;
    serve::DynamicEnsemble dyn(inst.graph, seed, opts);
    const double build_ms = build_t.seconds() * 1e3;
    const auto rebuild_relax =
        serve::FrtEnsemble::build(inst.graph, seed, opts)
            .build_stats()
            .relaxations;
    t.add_row({inst.name, cell(std::size_t{n}), "build", "-", "-",
               cell(build_ms), "1.000x"});

    const auto& edges = inst.graph.edge_list();
    const auto time_update = [&](const char* op, std::size_t idx,
                                 double factor) {
      const auto& e = edges[idx % edges.size()];
      const Timer ut;
      const auto st = dyn.update(
          e.u, e.v, dyn.graph().edge_weight(e.u, e.v) * factor);
      const double ms = ut.seconds() * 1e3;
      const double frac = rebuild_relax
                              ? static_cast<double>(st.relaxations) /
                                    static_cast<double>(rebuild_relax)
                              : 0.0;
      t.add_row({inst.name, cell(std::size_t{n}), op,
                 cell(std::size_t{st.relaxations}),
                 cell(std::size_t{st.levels_recomputed}), cell(ms),
                 cell(frac) + "x"});
    };
    time_update("decrease", 17, 0.5);
    time_update("increase", 91, 1.5);
  }
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  if (pmte::bench::wants_counters(argc, argv)) {
    pmte::bench::run_counters();
    return 0;
  }
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
