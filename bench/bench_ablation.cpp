// E17 — ablations of the design choices called out in DESIGN.md:
//   (a) FRT edge-weight rule: dominating (ours) vs khan (paper's constant);
//   (b) penalty parameter ε̂: distortion of H and resulting stretch;
//   (c) hop-set window: oracle iteration count vs hop-set size.

#include <cmath>

#include "bench/bench_common.hpp"
#include "src/frt/pipelines.hpp"
#include "src/frt/stretch.hpp"
#include "src/graph/shortest_paths.hpp"

namespace pmte::bench {
namespace {

void weight_rule_ablation(const Cli& cli, Rng& rng) {
  print_header("E17a: FRT weight rule",
               "dominating rule doubles distances but guarantees "
               "dist_T >= dist_G; khan rule can undershoot");
  const Vertex n = quick(cli) ? 96 : 192;
  const auto g = make_gnm(n, 3 * static_cast<std::size_t>(n), {1.0, 5.0},
                          rng);
  const auto pairs = sample_pairs(g, 24, 400, rng);
  Table t({"rule", "avg E[stretch]", "max E[stretch]", "min ratio",
           "dominance violations"});
  for (const auto rule : {FrtWeightRule::dominating, FrtWeightRule::khan}) {
    FrtOptions opts;
    opts.rule = rule;
    std::vector<FrtTree> trees;
    for (int i = 0; i < 12; ++i) {
      trees.push_back(sample_frt_direct(g, rng, opts).tree);
    }
    const auto rep = measure_stretch(pairs, trees);
    std::size_t violations = 0;
    for (std::size_t p = 0; p < pairs.u.size(); ++p) {
      for (const auto& tree : trees) {
        if (tree.distance(pairs.u[p], pairs.v[p]) < pairs.dist[p] * (1 - 1e-9)) {
          ++violations;
        }
      }
    }
    t.add_row({rule == FrtWeightRule::dominating ? "dominating" : "khan",
               cell(rep.avg_expected_stretch), cell(rep.max_expected_stretch),
               cell(rep.min_single_ratio), cell(violations)});
  }
  t.print();
}

void eps_hat_ablation(const Cli& cli, Rng& rng) {
  print_header("E17b: penalty parameter",
               "eps controls H's distortion (1+eps)^(Lambda+1); the auto "
               "default 1/ceil(log2 n)^2 keeps it 1+o(1)");
  const Vertex n = quick(cli) ? 96 : 192;
  const auto g = make_gnm(n, 3 * static_cast<std::size_t>(n), {1.0, 4.0},
                          rng);
  const auto pairs = sample_pairs(g, 16, 300, rng);
  const auto hopset = build_hub_hopset(g, {}, rng);
  Table t({"eps", "avg E[stretch]", "H-iterations (mean)",
           "distortion bound"});
  for (const double eps :
       {resolve_eps_hat(0.0, n), 0.05, 0.2, 0.5}) {
    auto h = build_simulated_graph(g, hopset, eps, rng);
    std::vector<FrtTree> trees;
    double iters = 0;
    for (int i = 0; i < 10; ++i) {
      auto s = sample_frt_oracle_on(h, rng);
      iters += s.iterations;
      trees.push_back(std::move(s.tree));
    }
    const auto rep = measure_stretch(pairs, trees);
    t.add_row({cell(eps), cell(rep.avg_expected_stretch),
               cell(iters / 10.0),
               cell(std::pow(1.0 + eps,
                             static_cast<double>(h.max_level()) + 1))});
  }
  t.print();
}

void window_ablation(const Cli& cli, Rng& rng) {
  print_header("E17c: hop-set window",
               "smaller windows buy fewer G'-iterations per H-iteration "
               "with more shortcut edges");
  const Vertex n = quick(cli) ? 128 : 256;
  const auto g = make_path(n, {1.0, 2.0}, rng);
  Table t({"window", "d", "hopset edges", "H-iterations", "G'-iterations",
           "time [ms]"});
  for (const unsigned window : {8U, 16U, 32U, 64U, 0U}) {
    FrtOptions opts;
    opts.hopset.window = window;
    auto s = sample_frt_oracle(g, rng, opts);
    t.add_row({cell(std::size_t{window}),
               cell(std::size_t{window == 0 ? 0 : 2 * window}),
               cell(s.hopset_edges), cell(std::size_t{s.iterations}),
               cell(std::size_t{s.base_iterations}), cell(s.seconds * 1e3)});
  }
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  const pmte::Cli cli(argc, argv);
  pmte::Rng rng(cli.seed());
  pmte::bench::weight_rule_ablation(cli, rng);
  pmte::bench::eps_hat_ablation(cli, rng);
  pmte::bench::window_ablation(cli, rng);
  return 0;
}
