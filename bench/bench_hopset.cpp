// E12 — hop-set quality and cost (Equation (1.3); DESIGN.md substitution).
//
// Claim: the hub hop set satisfies dist^d(v,w,G') ≤ (1+ε̂)·dist(v,w,G)
// with ε̂ = 0 w.h.p.; size/hop-bound trade-off is controlled by the
// sampling window.

#include "bench/bench_common.hpp"
#include "src/hopset/hopset.hpp"

namespace pmte::bench {
namespace {

void run(const Cli& cli) {
  print_header("E12: hop sets",
               "Equation (1.3) — dist^d(v,w,G') <= (1+eps) dist(v,w,G); hub "
               "substitution is exact (eps = 0) w.h.p.");
  Rng rng(cli.seed());
  const std::vector<Vertex> sizes =
      quick(cli) ? std::vector<Vertex>{256} : std::vector<Vertex>{256, 1024};
  Table t({"family", "n", "window", "d", "hubs", "added edges",
           "measured stretch", "build [ms]"});

  for (const auto* family : {"path", "grid", "gnm"}) {
    for (const Vertex n : sizes) {
      auto inst = make_instance(family, n, rng());
      const auto& g = inst.graph;
      for (const unsigned window :
           {0U, static_cast<unsigned>(n) / 16, static_cast<unsigned>(n) / 4}) {
        HubHopSetParams params;
        params.window = window;
        const Timer timer;
        const auto hs = build_hub_hopset(g, params, rng);
        const double ms = timer.millis();
        const double stretch = measure_hopset_stretch(g, hs, 16, rng);
        t.add_row({inst.name, cell(std::size_t{g.num_vertices()}),
                   cell(std::size_t{window}), cell(std::size_t{hs.d}),
                   cell(hs.num_hubs), cell(hs.edges.size()), cell(stretch),
                   cell(ms)});
      }
    }
  }
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
