// E5 — expected stretch of the sampled embeddings (Section 7.1, [19]).
//
// Claims: E[stretch] ∈ O(log n) for FRT sampling, and the oracle pipeline
// inflates the stretch only by (1+o(1)) relative to exact-metric sampling
// (Corollary 7.10).  We sample T trees per pipeline and report the mean and
// max (over pairs) of the empirical expected stretch, plus the dominance
// ratio min dist_T/dist_G (must stay ≥ 1).

#include <cmath>

#include "bench/bench_common.hpp"
#include "src/frt/pipelines.hpp"
#include "src/frt/stretch.hpp"
#include "src/graph/shortest_paths.hpp"

namespace pmte::bench {
namespace {

void run(const Cli& cli) {
  print_header("E5: expected stretch",
               "[19] via Section 7 — expected stretch O(log n); oracle "
               "pipeline within (1+o(1)) of the exact-metric pipeline");
  const std::vector<Vertex> sizes =
      quick(cli) ? std::vector<Vertex>{64, 128}
                 : std::vector<Vertex>{64, 128, 256};
  const std::size_t trees = quick(cli) ? 8 : 12;
  Rng rng(cli.seed());
  Table t({"family", "n", "log2(n)", "pipeline", "avg E[stretch]",
           "max E[stretch]", "max ratio", "min ratio"});

  for (const auto* family : {"gnm", "grid", "cycle", "geometric"}) {
    for (const Vertex n : sizes) {
      auto inst = make_instance(family, n, rng());
      const auto& g = inst.graph;
      const auto pairs = sample_pairs(g, 24, 600, rng);
      const double log2n = std::log2(static_cast<double>(g.num_vertices()));

      std::vector<FrtTree> direct, oracle, metric;
      const auto hopset = build_hub_hopset(g, {}, rng);
      const auto h = build_simulated_graph(
          g, hopset, resolve_eps_hat(0.0, g.num_vertices()), rng);
      const auto apsp = exact_apsp(g);
      for (std::size_t i = 0; i < trees; ++i) {
        direct.push_back(sample_frt_direct(g, rng).tree);
        oracle.push_back(sample_frt_oracle_on(h, rng).tree);
        metric.push_back(sample_frt_metric(apsp, g.num_vertices(),
                                           g.min_edge_weight(), rng)
                             .tree);
      }
      auto report = [&](const char* name, const std::vector<FrtTree>& ts) {
        const auto rep = measure_stretch(pairs, ts);
        t.add_row({inst.name, cell(std::size_t{g.num_vertices()}),
                   cell(log2n), name, cell(rep.avg_expected_stretch),
                   cell(rep.max_expected_stretch), cell(rep.max_single_ratio),
                   cell(rep.min_single_ratio)});
      };
      report("P-G direct", direct);
      report("P-H oracle", oracle);
      report("P-M metric", metric);
    }
  }
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
