// E3 — LE-list lengths (Lemma 7.6).
//
// Claim: under a uniformly random vertex order every LE list has length
// O(log n) w.h.p. (expected length ≈ H_n ≈ ln n).  We sweep families and
// sizes and report mean/max list length against ln n, plus the runtime of
// the sequential baseline (Cohen/Mendel–Schwob style).
//
// `--counters` instead emits deterministic WorkDepth scenarios for the CI
// bench gate: direct fixpoint iteration and the level-reusing oracle
// pipeline on the 2048-path / 45×45-grid (see bench_common.hpp).

#include <cmath>

#include "bench/bench_common.hpp"
#include "src/frt/le_lists.hpp"
#include "src/frt/pipelines.hpp"
#include "src/parallel/counters.hpp"

namespace pmte::bench {
namespace {

CounterScenario iteration_scenario(const std::string& name, const Graph& g,
                                   std::uint64_t seed) {
  Rng rng(seed);
  const auto order = VertexOrder::random(g.num_vertices(), rng);
  WorkDepth::reset();
  const WorkDepthScope scope;
  const auto le = le_lists_iteration(g, order);
  return CounterScenario{name,
                         {{"relaxations", scope.relaxations_delta()},
                          {"edges_touched", scope.edges_touched_delta()},
                          {"work", scope.work_delta()},
                          {"depth", scope.depth_delta()},
                          {"iterations", le.iterations}}};
}

CounterScenario oracle_scenario(const std::string& name, const Graph& g,
                                std::uint64_t seed, bool level_reuse) {
  Rng rng(seed);
  const auto hopset = build_hub_hopset(g, {}, rng);
  const auto h = build_simulated_graph(
      g, hopset, resolve_eps_hat(0.0, g.num_vertices()), rng);
  const auto order = VertexOrder::random(g.num_vertices(), rng);
  WorkDepth::reset();
  const WorkDepthScope scope;
  const auto le = le_lists_oracle(h, order, 0,
                                  MbfOptions{.oracle_level_reuse = level_reuse});
  return CounterScenario{name,
                         {{"relaxations", scope.relaxations_delta()},
                          {"edges_touched", scope.edges_touched_delta()},
                          {"work", scope.work_delta()},
                          {"depth", scope.depth_delta()},
                          {"iterations", le.iterations},
                          {"base_iterations", le.base_iterations},
                          {"levels_skipped", le.levels_skipped},
                          {"levels_warm", le.levels_warm},
                          {"levels_full", le.levels_full}}};
}

void run_counters() {
  std::vector<CounterScenario> scenarios;
  scenarios.push_back(
      iteration_scenario("le_iteration_path_2048", make_path(2048), 1001));
  scenarios.push_back(iteration_scenario(
      "le_iteration_grid_2025", make_grid(45, 45, {1.0, 2.0}, Rng(42)), 1002));
  scenarios.push_back(
      oracle_scenario("le_oracle_path_2048", make_path(2048), 1003, true));
  scenarios.push_back(oracle_scenario(
      "le_oracle_grid_2025", make_grid(45, 45, {1.0, 2.0}, Rng(42)), 1004,
      true));
  // The pre-reuse reference at a smaller size (it pays Θ(log n) dense
  // rounds per H-iteration; committing it keeps the reuse-vs-reference
  // relaxation ratio visible in the baseline).
  scenarios.push_back(oracle_scenario("le_oracle_path_512_noreuse",
                                      make_path(512), 1005, false));
  scenarios.push_back(
      oracle_scenario("le_oracle_path_512", make_path(512), 1005, true));
  emit_counters(std::cout, scenarios);
}

void run(const Cli& cli) {
  print_header("E3: LE-list length",
               "Lemma 7.6 — |LE list| in O(log n) w.h.p.; expected ~ ln n; "
               "plus the frontier-driven MBF iteration vs the sequential "
               "baseline");
  const std::vector<Vertex> sizes =
      quick(cli) ? std::vector<Vertex>{256, 1024}
                 : std::vector<Vertex>{256, 1024, 4096, 16384};
  Rng rng(cli.seed());
  Table t({"family", "n", "ln(n)", "avg |list|", "p99 |list|", "max |list|",
           "seq time [ms]", "iter time [ms]", "iter relax", "iter == seq"});
  for (const auto* family : {"gnm", "grid", "path", "geometric"}) {
    for (const Vertex n : sizes) {
      auto inst = make_instance(family, n, rng());
      const auto& g = inst.graph;
      const auto order = VertexOrder::random(g.num_vertices(), rng);
      const Timer timer;
      const auto le = le_lists_sequential(g, order);
      const double ms = timer.millis();
      // The same lists via the frontier-driven engine (Khan-style
      // fixpoint iteration, Section 8.1) with its relaxation counter.
      const WorkDepthScope scope;
      const Timer it_timer;
      const auto le_it = le_lists_iteration(g, order);
      const double it_ms = it_timer.millis();
      std::vector<double> lens;
      lens.reserve(le.lists.size());
      for (const auto& l : le.lists) {
        lens.push_back(static_cast<double>(l.size()));
      }
      const auto s = summarize(std::move(lens));
      t.add_row({inst.name, cell(std::size_t{g.num_vertices()}),
                 cell(std::log(static_cast<double>(g.num_vertices()))),
                 cell(s.mean), cell(s.p99), cell(s.max), cell(ms),
                 cell(it_ms),
                 cell(static_cast<std::size_t>(scope.relaxations_delta())),
                 cell(le_it.lists == le.lists ? "yes" : "NO")});
    }
  }
  t.print();
}

}  // namespace
}  // namespace pmte::bench

int main(int argc, char** argv) {
  if (pmte::bench::wants_counters(argc, argv)) {
    pmte::bench::run_counters();
    return 0;
  }
  const pmte::Cli cli(argc, argv);
  pmte::bench::run(cli);
  return 0;
}
